(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md §3 for the experiment
   index).  Run with no argument for everything, or name experiments:

     dune exec bench/main.exe -- fig5 table1 fig6 fig7 fig8 table2 \
         table3 table45 fig10 table78 fig1 speed bechamel

   Absolute numbers differ from the paper (the substrate is the VX
   toolchain, not GCC/LLVM on a Xeon); EXPERIMENTS.md records the
   paper-vs-measured comparison for every artifact. *)

let section = Util.Render.section

let printf = Printf.printf

(* ------------------------------------------------------------------ *)
(* Shared tuning runs (used by fig5, table1, fig6, fig7, fig10, …)     *)
(* ------------------------------------------------------------------ *)

let bench_termination =
  (* scaled-down search budget; the paper's runs take 279-1881 iterations
     on a 36-core Xeon — ours are sized for a laptop-minutes run.  The
     [-quick] flag shrinks it further for CI smoke runs. *)
  ref
    {
      Search.max_evaluations = 300;
      plateau_window = 110;
      plateau_epsilon = 0.0035;
    }

(* the worker pool every tuning job runs on; sized by [-j N] (default:
   the machine's domain count).  Tuning results are bit-identical at
   every [-j] — see the determinism sentinel under table1. *)
let pool = ref (Parallel.Pool.create 1)

(* [-only NAME]* restricts the evaluation set the sweep drivers (fig5,
   table1, table3, tables 7/8) iterate over — the CI trace smoke runs
   fig5 on a single benchmark this way.  Experiments that name specific
   benchmarks (fig6, fig8, …) are unaffected. *)
let only : string list ref = ref []

(* [-quick] also shrinks the ncd microbench's measurement window *)
let quick_mode = ref false

let eval_set () =
  match !only with
  | [] -> Corpus.evaluation_set
  | names ->
    List.filter (fun b -> List.mem b.Corpus.bname names) Corpus.evaluation_set

let in_eval_set name = List.exists (fun b -> b.Corpus.bname = name) (eval_set ())

let tune_cache : (string * string * Isa.Insn.arch, Bintuner.Tuner.result) Hashtbl.t =
  Hashtbl.create 64

let report_tuned bench (profile : Toolchain.Flags.profile)
    (r : Bintuner.Tuner.result) =
  printf
    "  [tuned] %-18s %-9s iters=%-4d NCD=%.3f functional=%b memo=%d/%d ncd-cache=%d/%d incr=%d/%d\n%!"
    bench.Corpus.bname profile.profile_name r.iterations r.best_ncd
    r.functional_ok r.cache_hits
    (r.cache_hits + r.compilations)
    r.ncd_cache_hits
    (r.ncd_cache_hits + r.ncd_cache_misses)
    r.incr_hits
    (r.incr_hits + r.incr_misses)

let tuned ?(arch = Isa.Insn.X86_64) profile bench =
  let key = (profile.Toolchain.Flags.profile_name, bench.Corpus.bname, arch) in
  match Hashtbl.find_opt tune_cache key with
  | Some r -> r
  | None ->
    let r =
      Bintuner.Tuner.tune ~arch ~termination:!bench_termination ~pool:!pool
        ~profile bench
    in
    report_tuned bench profile r;
    Hashtbl.replace tune_cache key r;
    r

(* Fan whole (benchmark × profile × arch) tuning jobs out across the
   pool.  Each job is an independent deterministic run (its RNG stream
   is derived from the global seed and the job identity, never from
   scheduling), so the cache fill and the progress lines come out in
   list order no matter which worker ran what. *)
let pretune ?(arch = Isa.Insn.X86_64) jobs =
  let missing =
    List.filter
      (fun (profile, bench) ->
        not
          (Hashtbl.mem tune_cache
             (profile.Toolchain.Flags.profile_name, bench.Corpus.bname, arch)))
      jobs
  in
  let results =
    Parallel.Pool.map_list ~chunk_size:1 !pool
      (fun (profile, bench) ->
        Bintuner.Tuner.tune ~arch ~termination:!bench_termination ~pool:!pool
          ~profile bench)
      missing
  in
  List.iter2
    (fun (profile, bench) r ->
      report_tuned bench profile r;
      Hashtbl.replace tune_cache
        (profile.Toolchain.Flags.profile_name, bench.Corpus.bname, arch)
        r)
    missing results

let preset_binary ?(arch = Isa.Insn.X86_64) profile name bench =
  Toolchain.Pipeline.compile_preset profile ~arch name (Corpus.program bench)

let binhunt_cache : (string * string, float) Hashtbl.t = Hashtbl.create 256

let binhunt a b =
  let key = (a.Isa.Binary.text, b.Isa.Binary.text) in
  let skey = (Digest.string (fst key), Digest.string (snd key)) in
  match Hashtbl.find_opt binhunt_cache skey with
  | Some s -> s
  | None ->
    let s = Diffing.Binhunt.diff_score a b in
    Hashtbl.replace binhunt_cache skey s;
    s

(* ------------------------------------------------------------------ *)
(* Figure 5: BinHunt difference scores under both profiles             *)
(* ------------------------------------------------------------------ *)

let fig5_profile profile ~first_bar =
  pretune (List.map (fun b -> (profile, b)) (eval_set ()));
  let series = [ first_bar; "O2 vs O0"; "O3 vs O0"; "BinTuner vs O0"; "BinTuner vs O3" ] in
  let rows =
    List.map
      (fun bench ->
        let o0 = preset_binary profile "O0" bench in
        let first =
          preset_binary profile
            (if first_bar = "Os vs O0" then "Os" else "O1")
            bench
        in
        let o2 = preset_binary profile "O2" bench in
        let o3 = preset_binary profile "O3" bench in
        let tuned_bin = (tuned profile bench).refined_binary in
        ( bench.Corpus.bname,
          [
            binhunt first o0;
            binhunt o2 o0;
            binhunt o3 o0;
            binhunt tuned_bin o0;
            binhunt tuned_bin o3;
          ] ))
      (eval_set ())
  in
  print_string
    (Util.Render.grouped_bars
       ~title:
         (Printf.sprintf
            "Figure 5 (%s): BinHunt difference scores (larger = more different)"
            profile.Toolchain.Flags.profile_name)
       ~series rows);
  (* the paper's headline aggregates *)
  let improvements =
    List.filter_map
      (fun (_, vs) ->
        match vs with
        | [ _; _; o3; tuner; _ ] when o3 > 0.0 -> Some ((tuner -. o3) /. o3)
        | _ -> None)
      rows
  in
  printf
    "BinTuner vs O3-vs-O0 improvement: avg %+.1f%%, peak %+.1f%% (paper: +15~18%% avg, 55~60%% peak)\n"
    (100.0 *. Util.Stats.mean improvements)
    (100.0 *. List.fold_left max neg_infinity improvements);
  let beats =
    List.length
      (List.filter
         (fun (_, vs) ->
           match vs with [ _; _; o3; t; _ ] -> t >= o3 | _ -> false)
         rows)
  in
  printf "BinTuner ≥ O3-vs-O0 in %d/%d cases (paper: all cases)\n" beats
    (List.length rows);
  (* the NCD view of the same comparisons, batched through one shared
     size cache — the kernel the GA fitness itself runs on.  Every
     benchmark's baseline and candidate streams are scored with
     [Ncd.against], so repeated terms (the O0 baseline of each row) are
     compressed once and hit thereafter. *)
  let cache = Compress.Sizecache.create () in
  let presets = (if first_bar = "Os vs O0" then "Os" else "O1") :: [ "O2"; "O3" ] in
  List.iter
    (fun bench ->
      let stream name =
        Bintuner.Tuner.code_stream (preset_binary profile name bench)
      in
      let baseline = stream "O0" in
      let candidates =
        Array.of_list
          (List.map stream presets
          @ [ Bintuner.Tuner.code_stream (tuned profile bench).refined_binary ])
      in
      let ds = Compress.Ncd.against ~pool:!pool ~cache ~baseline candidates in
      printf "  [ncd] %-18s %s BinTuner=%.3f\n" bench.Corpus.bname
        (String.concat " "
           (List.mapi (fun i p -> Printf.sprintf "%s=%.3f" p ds.(i)) presets))
        ds.(Array.length ds - 1))
    (eval_set ());
  printf "ncd size cache: %d hits / %d lookups (level %s)\n"
    (Compress.Sizecache.hits cache)
    (Compress.Sizecache.hits cache + Compress.Sizecache.misses cache)
    (Compress.Lz.level_name (Compress.Sizecache.level cache))

let fig5 () =
  print_string (section "Figure 5(a): LLVM 11.0 profile");
  fig5_profile Toolchain.Flags.llvm ~first_bar:"O1 vs O0";
  print_string (section "Figure 5(b): GCC 10.2 profile");
  fig5_profile Toolchain.Flags.gcc ~first_bar:"Os vs O0";
  (* the wrong-pair sanity check the paper reports: BinTuner-vs-O0 close
     to a cross-program comparison.  Needs both programs, so it is
     skipped when [-only] filters either out. *)
  if in_eval_set "coreutils" && in_eval_set "openssl" then begin
    let cu = Corpus.find "coreutils" and ssl = Corpus.find "openssl" in
    let gcc = Toolchain.Flags.gcc in
    let wrong =
      binhunt (preset_binary gcc "O0" cu) (preset_binary gcc "O0" ssl)
    in
    let tuned_cu = (tuned gcc cu).refined_binary in
    printf
      "Wrong-pair check: BinHunt(coreutils-BinTuner, coreutils-O0)=%.2f vs BinHunt(coreutils-O0, openssl-O0)=%.2f (paper: 0.77 vs 0.79)\n"
      (binhunt tuned_cu (preset_binary gcc "O0" cu))
      wrong
  end

(* ------------------------------------------------------------------ *)
(* Table 1: iterations and wall time                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_string (section "Table 1: BinTuner search iterations / running time");
  (* the searched space: universe growth (e.g. the flag-gated optimizer
     passes) legitimately moves the sentinels below, so the size is part
     of the record *)
  List.iter
    (fun p ->
      printf "flag universe: %s %d flags, %d constraint rules\n"
        p.Toolchain.Flags.profile_name
        (Array.length p.Toolchain.Flags.flags)
        (List.length p.Toolchain.Flags.constraints))
    [ Toolchain.Flags.llvm; Toolchain.Flags.gcc ];
  pretune
    (List.concat_map
       (fun profile -> List.map (fun b -> (profile, b)) (eval_set ()))
       [ Toolchain.Flags.llvm; Toolchain.Flags.gcc ]);
  let group profile suite =
    let benches =
      List.filter (fun b -> b.Corpus.suite = suite) (eval_set ())
    in
    if benches = [] then "-"
    else
    let rs = List.map (fun b -> tuned profile b) benches in
    let iters = List.map (fun r -> float_of_int r.Bintuner.Tuner.iterations) rs in
    let secs = List.map (fun r -> r.Bintuner.Tuner.wall_seconds) rs in
    let imn, imx, imd = Util.Stats.min_max_median iters in
    let smn, smx, smd = Util.Stats.min_max_median secs in
    if List.length benches = 1 then
      Printf.sprintf "%.0f | %.1fs" imd smd
    else
      Printf.sprintf "(%.0f, %.0f, %.0f) | (%.1fs, %.1fs, %.1fs)" imn imx imd
        smn smx smd
  in
  let rows =
    List.map
      (fun profile ->
        [
          profile.Toolchain.Flags.profile_name;
          group profile Corpus.Spec2006;
          group profile Corpus.Spec2017;
          group profile Corpus.Coreutils;
          group profile Corpus.Openssl;
        ])
      [ Toolchain.Flags.llvm; Toolchain.Flags.gcc ]
  in
  print_string
    (Util.Render.table
       ~header:
         [
           "profile";
           "SPECint2006 iters|time (min,max,median)";
           "SPECspeed2017";
           "Coreutils";
           "OpenSSL";
         ]
       ~rows);
  printf
    "(paper: 279-1881 iterations, 0.3-70.9 hours on SPEC; scale reduced here)\n";
  (* determinism sentinel: a digest over every deterministic field of
     every tuning run above.  Identical at every [-j] and with the
     compile memo on or off — tools/ci.sh greps for it, and the
     differential test suite asserts the underlying property per run. *)
  let hits = ref 0 and requests = ref 0 in
  let ihits = ref 0 and ilookups = ref 0 in
  let buf = Buffer.create 4096 in
  List.iter
    (fun profile ->
      List.iter
        (fun b ->
          let r = tuned profile b in
          hits := !hits + r.Bintuner.Tuner.cache_hits;
          requests := !requests + r.cache_hits + r.compilations;
          ihits := !ihits + r.incr_hits;
          ilookups := !ilookups + r.incr_hits + r.incr_misses;
          Buffer.add_string buf
            (Printf.sprintf "%s/%s best=%s ncd=%.6f iters=%d memo=%d+%d %s\n"
               r.benchmark r.profile_name
               (Bintuner.Database.vector_to_string r.best_vector)
               r.best_ncd r.iterations r.cache_hits r.compilations
               (String.concat ","
                  (List.map
                     (fun (i, f) -> Printf.sprintf "%d:%.6f" i f)
                     r.history))))
        (eval_set ()))
    [ Toolchain.Flags.llvm; Toolchain.Flags.gcc ];
  printf "compile memo: %d of %d compile requests served from cache\n" !hits
    !requests;
  (* the sentinel above is computed over runs with the prefix store on
     (the tuner's default): lossless caching means it must not drift *)
  printf "prefix cache: %d of %d snapshot lookups hit\n" !ihits !ilookups;
  printf "table1 determinism sentinel: %s\n"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

(* ------------------------------------------------------------------ *)
(* Figure 6: NCD trajectory over iterations                            *)
(* ------------------------------------------------------------------ *)

let fig6_cases =
  [
    ("462.libquantum", Toolchain.Flags.llvm);
    ("445.gobmk", Toolchain.Flags.llvm);
    ("coreutils", Toolchain.Flags.gcc);
    ("429.mcf", Toolchain.Flags.gcc);
  ]

let pretune_cases cases =
  pretune (List.map (fun (name, profile) -> (profile, Corpus.find name)) cases)

let fig6 () =
  print_string (section "Figure 6: NCD variation over BinTuner iterations");
  pretune_cases fig6_cases;
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let r = tuned profile bench in
      let traj = Array.of_list (List.map snd r.history) in
      let preset_lines =
        List.filter_map
          (fun (p, v) ->
            if p = "O0" then None
            else Some (p ^ " (reference)", Array.make (Array.length traj) v))
          r.preset_ncd
      in
      print_string
        (Util.Render.series_plot
           ~title:
             (Printf.sprintf "NCD over iterations — %s / %s (best %.3f)" name
                profile.Toolchain.Flags.profile_name r.best_ncd)
           (("BinTuner best-so-far", traj) :: preset_lines)))
    fig6_cases

(* ------------------------------------------------------------------ *)
(* Figure 7: flag potency                                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print_string
    (section "Figure 7: top-10 most potent optimization flags (leave-one-out)");
  pretune_cases fig6_cases;
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let r = tuned profile bench in
      let ast = Corpus.program bench in
      let o0 = preset_binary profile "O0" bench in
      let full_score = binhunt r.refined_binary o0 in
      let drops =
        List.filter_map
          (fun i ->
            if r.refined_vector.(i) then begin
              let v = Array.copy r.refined_vector in
              v.(i) <- false;
              (* removing one flag may break a dependency: skip invalid *)
              if Toolchain.Constraints.valid profile v then begin
                let bin = Toolchain.Pipeline.compile_flags profile v ast in
                let drop = full_score -. binhunt bin o0 in
                Some (profile.flags.(i).name, max 0.0 drop)
              end
              else None
            end
            else None)
          (List.init (Array.length profile.flags) (fun i -> i))
      in
      let total = List.fold_left (fun a (_, d) -> a +. d) 0.0 drops in
      let total = if total <= 0.0 then 1.0 else total in
      let ranked =
        List.sort (fun (_, a) (_, b) -> compare b a) drops
        |> List.filteri (fun i _ -> i < 10)
        |> List.map (fun (n, d) -> (n, 100.0 *. d /. total))
      in
      print_string
        (Util.Render.bar_chart
           ~title:
             (Printf.sprintf "%s / %s — flag potency (%% of total drop)" name
                profile.Toolchain.Flags.profile_name)
           ranked);
      (* Jaccard between O3's flag set and BinTuner's *)
      let o3 = Option.get (Toolchain.Flags.preset profile "O3") in
      let set v =
        List.filteri (fun i _ -> v.(i)) (Array.to_list profile.flags)
        |> List.map (fun f -> f.Toolchain.Flags.name)
      in
      printf "Jaccard(O3, BinTuner) = %.2f (paper: 0.54-0.63)\n"
        (Util.Stats.jaccard compare (set o3) (set r.refined_vector)))
    fig6_cases

(* ------------------------------------------------------------------ *)
(* Figure 8: Precision@1 of the prominent diffing tools                *)
(* ------------------------------------------------------------------ *)

let ollvm_binary profile bench =
  let cfg =
    Toolchain.Flags.resolve profile profile.Toolchain.Flags.preset_o1
  in
  let ir = Toolchain.Pipeline.apply_passes cfg (Corpus.program bench) in
  Obf.Ollvm.apply_all ~seed:1 ir;
  Codegen.Emit.compile_program
    ~options:(Toolchain.Config.codegen_options cfg)
    ~arch:Isa.Insn.X86_64 ~profile:profile.profile_name ~opt_label:"O-LLVM" ir

let fig8_setting title bench profile settings =
  let o0 = preset_binary profile "O0" bench in
  let rows =
    List.map
      (fun (label, bin) ->
        let reports = Diffing.Precision.evaluate_all bin o0 in
        (label, List.map (fun r -> r.Diffing.Precision.precision) reports))
      settings
  in
  let tool_names =
    List.map (fun t -> t.Diffing.Tools.tool_name) Diffing.Tools.all
  in
  print_string
    (Util.Render.grouped_bars ~title ~series:tool_names
       (List.map (fun (l, vs) -> (l, vs)) rows))

let fig8 () =
  print_string (section "Figure 8: Precision@1 of prominent binary diffing tools");
  let gcc = Toolchain.Flags.gcc and llvm = Toolchain.Flags.llvm in
  let cu = Corpus.find "coreutils" and ssl = Corpus.find "openssl" in
  pretune [ (gcc, cu); (llvm, ssl) ];
  fig8_setting "Figure 8(a): GCC & Coreutils (vs O0)" cu gcc
    [
      ("O1 vs O0", preset_binary gcc "O1" cu);
      ("Os vs O0", preset_binary gcc "Os" cu);
      ("O3 vs O0", preset_binary gcc "O3" cu);
      ("BinTuner vs O0", (tuned gcc cu).refined_binary);
    ];
  fig8_setting "Figure 8(b): LLVM & OpenSSL (vs O0)" ssl llvm
    [
      ("O1 vs O0", preset_binary llvm "O1" ssl);
      ("O3 vs O0", preset_binary llvm "O3" ssl);
      ("O-LLVM vs O0", ollvm_binary llvm ssl);
      ("BinTuner vs O0", (tuned llvm ssl).refined_binary);
    ]

(* ------------------------------------------------------------------ *)
(* Table 2: anti-virus detection of tuned IoT malware                  *)
(* ------------------------------------------------------------------ *)

let av_goodware arch =
  List.map
    (fun n -> preset_binary ~arch Toolchain.Flags.gcc "O2" (Corpus.find n))
    [ "429.mcf"; "coreutils"; "620.omnetpp_s"; "openssl" ]

let table2 () =
  print_string
    (section "Table 2: AV scanners flagging IoT malware variants (of 60)");
  let gcc = Toolchain.Flags.gcc in
  List.iter
    (fun arch ->
      pretune ~arch
        (List.map (fun n -> (gcc, Corpus.find n)) [ "lightaidra"; "bashlife" ]))
    Isa.Insn.all_arches;
  let rows =
    List.concat_map
      (fun bname ->
        let bench = Corpus.find bname in
        let per_arch setting =
          List.map
            (fun arch ->
              let reference = preset_binary ~arch gcc "O2" bench in
              let fleet =
                Av.Scanner.train ~goodware:(av_goodware arch) ~seed:11
                  reference
              in
              let bin =
                match setting with
                | `O2 -> reference
                | `O3 -> preset_binary ~arch gcc "O3" bench
                | `Tuned -> (tuned ~arch gcc bench).best_binary
              in
              string_of_int (Av.Scanner.detections fleet bin))
            Isa.Insn.all_arches
        in
        [
          (bname ^ " default (GCC -O2)") :: per_arch `O2;
          (bname ^ " GCC -O3") :: per_arch `O3;
          (bname ^ " BinTuner") :: per_arch `Tuned;
        ])
      [ "lightaidra"; "bashlife" ]
  in
  print_string
    (Util.Render.table
       ~header:[ "variant"; "x86-32"; "x86-64"; "ARM"; "MIPS" ]
       ~rows);
  printf
    "(paper: detection falls from ~40-46 to ~11-15 of ~60 scanners under BinTuner)\n";
  (* how far apart the three build settings of each malware really are,
     as the fitness kernel sees them: a pairwise NCD matrix over one
     shared size cache (solo terms compressed once, pairs fanned over
     the pool) *)
  let cache = Compress.Sizecache.create () in
  List.iter
    (fun bname ->
      let bench = Corpus.find bname in
      let streams =
        [|
          Bintuner.Tuner.code_stream (preset_binary gcc "O2" bench);
          Bintuner.Tuner.code_stream (preset_binary gcc "O3" bench);
          Bintuner.Tuner.code_stream (tuned gcc bench).best_binary;
        |]
      in
      let m = Compress.Ncd.matrix ~pool:!pool ~cache streams in
      printf "  [ncd-matrix] %-12s O2/O3=%.3f O2/BinTuner=%.3f O3/BinTuner=%.3f\n"
        bname m.(0).(1) m.(0).(2) m.(1).(2))
    [ "lightaidra"; "bashlife" ]

(* ------------------------------------------------------------------ *)
(* Table 3: execution speedup                                          *)
(* ------------------------------------------------------------------ *)

let table3 () =
  print_string (section "Table 3: average execution speedup vs -O0 (dynamic instructions)");
  pretune
    (List.concat_map
       (fun profile -> List.map (fun b -> (profile, b)) (eval_set ()))
       [ Toolchain.Flags.gcc; Toolchain.Flags.llvm ]);
  let speedup bin0 bin bench =
    let steps which =
      List.fold_left
        (fun acc input ->
          acc + (Vm.Machine.run which ~input).Vm.Machine.steps)
        0 bench.Corpus.workloads
    in
    let s0 = steps bin0 and s1 = steps bin in
    100.0 *. (1.0 -. (float_of_int s1 /. float_of_int s0))
  in
  let suites =
    [
      (Corpus.Spec2006, "SPECint 2006");
      (Corpus.Spec2017, "SPECspeed 2017");
      (Corpus.Coreutils, "Coreutils");
      (Corpus.Openssl, "OpenSSL");
    ]
  in
  let rows =
    List.map
      (fun (suite, label) ->
        let benches =
          List.filter (fun b -> b.Corpus.suite = suite) (eval_set ())
        in
        let cell profile setting =
          if benches = [] then "-"
          else
          let vals =
            List.map
              (fun bench ->
                let o0 = preset_binary profile "O0" bench in
                let bin =
                  match setting with
                  | `O3 -> preset_binary profile "O3" bench
                  | `Tuned -> (tuned profile bench).best_binary
                in
                speedup o0 bin bench)
              benches
          in
          Printf.sprintf "%.1f%%" (Util.Stats.mean vals)
        in
        [
          label;
          cell Toolchain.Flags.gcc `O3;
          cell Toolchain.Flags.gcc `Tuned;
          cell Toolchain.Flags.llvm `O3;
          cell Toolchain.Flags.llvm `Tuned;
        ])
      suites
  in
  print_string
    (Util.Render.table
       ~header:[ "suite"; "GCC O3"; "GCC BinTuner"; "LLVM O3"; "LLVM BinTuner" ]
       ~rows);
  printf
    "(shape check: BinTuner keeps most of O3's speedup but rarely beats it — paper Table 3)\n"

(* ------------------------------------------------------------------ *)
(* Tables 4/5: cross comparisons                                       *)
(* ------------------------------------------------------------------ *)

let cross_table title profile bench settings =
  let bins =
    List.map
      (fun s ->
        match s with
        | "BinTuner" -> (s, (tuned profile bench).refined_binary)
        | _ -> (s, preset_binary profile s bench))
      settings
  in
  let rows =
    List.map
      (fun (name_a, bin_a) ->
        let cells =
          List.map
            (fun (name_b, bin_b) ->
              if name_a = name_b then "-"
              else Printf.sprintf "%.2f" (binhunt bin_a bin_b))
            bins
        in
        let sum =
          List.fold_left
            (fun acc (name_b, bin_b) ->
              if name_a = name_b then acc else acc +. binhunt bin_a bin_b)
            0.0 bins
        in
        (name_a :: cells) @ [ Printf.sprintf "%.2f" sum ])
      bins
  in
  print_string (section title);
  print_string
    (Util.Render.table ~header:(("" :: settings) @ [ "Sum" ]) ~rows)

let table45 () =
  pretune
    [
      (Toolchain.Flags.llvm, Corpus.find "462.libquantum");
      (Toolchain.Flags.gcc, Corpus.find "coreutils");
    ];
  cross_table "Table 4: LLVM 11.0 & 462.libquantum cross comparison"
    Toolchain.Flags.llvm
    (Corpus.find "462.libquantum")
    [ "O0"; "O1"; "O2"; "O3"; "BinTuner" ];
  cross_table "Table 5: GCC 10.2 & Coreutils cross comparison"
    Toolchain.Flags.gcc (Corpus.find "coreutils")
    [ "O0"; "O1"; "Os"; "O2"; "O3"; "BinTuner" ]

(* ------------------------------------------------------------------ *)
(* Figure 10: Pearson correlation between NCD and BinHunt              *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  print_string
    (section "Figure 10: Pearson correlation between NCD and BinHunt scores");
  pretune
    [
      (Toolchain.Flags.llvm, Corpus.find "462.libquantum");
      (Toolchain.Flags.gcc, Corpus.find "429.mcf");
    ];
  let correlations = ref [] in
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let r = tuned profile bench in
      let o0 = preset_binary profile "O0" bench in
      let ast = Corpus.program bench in
      (* sample the iteration database, chunked; one correlation each *)
      let entries = Array.of_list r.database in
      let nsample = min 30 (Array.length entries) in
      let stride = max 1 (Array.length entries / max 1 nsample) in
      let samples =
        List.init nsample (fun k ->
            let e = entries.(min (k * stride) (Array.length entries - 1)) in
            let bin = Toolchain.Pipeline.compile_flags profile e.vector ast in
            (e.fitness.(0), binhunt bin o0))
      in
      let rec chunks = function
        | a :: b :: c :: d :: e :: f' :: rest ->
          [ a; b; c; d; e; f' ] :: chunks rest
        | [] -> []
        | small -> [ small ]
      in
      List.iter
        (fun chunk ->
          if List.length chunk >= 4 then begin
            let xs = List.map fst chunk and ys = List.map snd chunk in
            correlations := Util.Stats.pearson xs ys :: !correlations
          end)
        (chunks samples))
    [ ("462.libquantum", Toolchain.Flags.llvm); ("429.mcf", Toolchain.Flags.gcc) ];
  let cdf = Util.Stats.cdf !correlations in
  let arr = Array.of_list (List.map fst cdf) in
  print_string
    (Util.Render.series_plot ~title:"CDF of Pearson(NCD, BinHunt) across sample windows"
       [ ("pearson (sorted)", arr) ]);
  let signif =
    List.length (List.filter (fun c -> c > 0.4) !correlations)
  in
  printf "correlations > 0.4: %d/%d (paper: ~70%% significant positive)\n"
    signif (List.length !correlations)

(* ------------------------------------------------------------------ *)
(* Tables 7/8: matched code-representation ratios                      *)
(* ------------------------------------------------------------------ *)

let table78_profile profile ~first_bar =
  pretune (List.map (fun b -> (profile, b)) (eval_set ()));
  let rows =
    List.map
      (fun bench ->
        let o0 = preset_binary profile "O0" bench in
        let cell bin = Diffing.Metrics.to_string (Diffing.Metrics.compute bin o0) in
        let first =
          preset_binary profile
            (if first_bar = "Os" then "Os" else "O1")
            bench
        in
        [
          bench.Corpus.bname;
          cell first;
          cell (preset_binary profile "O2" bench);
          cell (preset_binary profile "O3" bench);
          cell (tuned profile bench).refined_binary;
        ])
      (eval_set ())
  in
  print_string
    (Util.Render.table
       ~header:
         [
           "program";
           first_bar ^ " vs O0";
           "O2 vs O0";
           "O3 vs O0";
           "BinTuner vs O0";
         ]
       ~rows);
  printf "(tuples are matched (blocks, CFG edges, non-library functions))\n"

let table78 () =
  print_string (section "Table 7: matched ratios, LLVM 11.0");
  table78_profile Toolchain.Flags.llvm ~first_bar:"O1";
  print_string (section "Table 8: matched ratios, GCC 10.2");
  table78_profile Toolchain.Flags.gcc ~first_bar:"Os"

(* ------------------------------------------------------------------ *)
(* Figure 1: the Mirai provenance + detection study                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  print_string (section "Figure 1: Mirai botnet compiler-provenance study");
  let gcc = Toolchain.Flags.gcc and llvm = Toolchain.Flags.llvm in
  let bench = Corpus.find "mirai" in
  let ast = Corpus.program bench in
  (* train the provenance classifier on all presets of the corpus *)
  let training =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun profile ->
            List.map
              (fun preset ->
                ( {
                    Provenance.Classify.profile = profile.Toolchain.Flags.profile_name;
                    preset;
                  },
                  preset_binary profile preset b ))
              Toolchain.Flags.preset_names)
          [ gcc; llvm ])
      [ Corpus.find "lightaidra"; Corpus.find "bashlife"; Corpus.find "coreutils" ]
  in
  let model = Provenance.Classify.train training in
  (* synthesize the variant population: 58% default presets, 42% random
     valid custom vectors (the paper observed 42% non-default) *)
  let rng = Util.Rng.create 2019 in
  let population = 300 in
  let variants =
    List.init population (fun i ->
        if i mod 100 < 58 then begin
          let preset =
            List.nth [ "O1"; "O2"; "O3"; "Os"; "O2"; "O2" ] (Util.Rng.int rng 6)
          in
          (`Default preset, preset_binary gcc preset bench)
        end
        else begin
          let n = Array.length gcc.Toolchain.Flags.flags in
          let v =
            Toolchain.Constraints.repair gcc rng
              (Array.init n (fun _ -> Util.Rng.bool rng))
          in
          (`Custom, Toolchain.Pipeline.compile_flags gcc v ast)
        end)
  in
  (* 1(a): classify *)
  let default_count = ref 0 and nondefault_count = ref 0 and correct = ref 0 in
  List.iter
    (fun (truth, bin) ->
      let lbl, _ = Provenance.Classify.classify model bin in
      if lbl.preset = "non-default" then incr nondefault_count
      else incr default_count;
      match truth with
      | `Default p when lbl.preset = p -> incr correct
      | `Custom when lbl.preset = "non-default" -> incr correct
      | _ -> ())
    variants;
  printf
    "Figure 1(a): %d/%d variants classified as non-default settings (%.0f%%, paper: 42%%); classifier agreement with ground truth: %.0f%%\n"
    !nondefault_count population
    (100.0 *. float_of_int !nondefault_count /. float_of_int population)
    (100.0 *. float_of_int !correct /. float_of_int population);
  (* 1(b): detection-count CDF for the two sub-populations *)
  let reference = preset_binary gcc "O2" bench in
  let fleet =
    Av.Scanner.train ~goodware:(av_goodware Isa.Insn.X86_64) ~seed:11
      reference
  in
  let det_default, det_custom =
    List.partition (fun (t, _) -> t <> `Custom) variants
  in
  let counts l =
    List.map (fun (_, bin) -> float_of_int (Av.Scanner.detections fleet bin)) l
  in
  let cd = counts det_default and cc = counts det_custom in
  printf
    "Figure 1(b): mean detections — default-compiled %.1f vs custom-compiled %.1f (of %d scanners)\n"
    (Util.Stats.mean cd) (Util.Stats.mean cc) Av.Scanner.fleet_size;
  let cdf_arr l = Array.of_list (List.map fst (Util.Stats.cdf l)) in
  print_string
    (Util.Render.series_plot
       ~title:"Figure 1(b): VirusTotal-style detection counts (sorted, lower = more evasive)"
       [ ("default -Ox", cdf_arr cd); ("custom flags", cdf_arr cc) ])

(* ------------------------------------------------------------------ *)
(* §4.2: fitness-function cost comparison + Bechamel microbenchmarks   *)
(* ------------------------------------------------------------------ *)

let speed () =
  print_string
    (section "Fitness function cost: NCD vs BinHunt (paper §4.2: 2 orders of magnitude)");
  let bench = Corpus.find "462.libquantum" in
  let gcc = Toolchain.Flags.gcc in
  let o0 = preset_binary gcc "O0" bench in
  let o3 = preset_binary gcc "O3" bench in
  let time f =
    let t0 = Sys.time () in
    let iters = ref 0 in
    while Sys.time () -. t0 < 0.5 do
      f ();
      incr iters
    done;
    (Sys.time () -. t0) /. float_of_int !iters
  in
  let t_ncd =
    time (fun () -> ignore (Bintuner.Tuner.ncd_of_binaries o3 o0))
  in
  let t_binhunt = time (fun () -> ignore (Diffing.Binhunt.diff_score o3 o0)) in
  printf "NCD:     %.2f ms per comparison\n" (t_ncd *. 1000.0);
  printf "BinHunt: %.2f ms per comparison (%.1fx slower)\n"
    (t_binhunt *. 1000.0) (t_binhunt /. t_ncd)

let bechamel () =
  print_string (section "Bechamel microbenchmarks (one per regenerated table/figure kernel)");
  let open Bechamel in
  let open Toolkit in
  let bench = Corpus.find "462.libquantum" in
  let gcc = Toolchain.Flags.gcc in
  let ast = Corpus.program bench in
  let o0 = preset_binary gcc "O0" bench in
  let o3 = preset_binary gcc "O3" bench in
  let o2v = Option.get (Toolchain.Flags.preset gcc "O2") in
  let fleet = Av.Scanner.train ~goodware:(av_goodware Isa.Insn.X86_64) ~seed:11 o0 in
  let rng = Util.Rng.create 3 in
  let tests =
    Test.make_grouped ~name:"bintuner"
      [
        (* fig5 / tables 4-5 / tables 7-8 kernel *)
        Test.make ~name:"binhunt-compare"
          (Staged.stage (fun () -> ignore (Diffing.Binhunt.diff_score o3 o0)));
        (* fig6 / table1 kernel: one GA fitness evaluation *)
        Test.make ~name:"compile+ncd-fitness"
          (Staged.stage (fun () ->
               let bin = Toolchain.Pipeline.compile_flags gcc o2v ast in
               ignore (Bintuner.Tuner.ncd_of_binaries bin o0)));
        (* fig8 kernel: one tool similarity matrix row *)
        Test.make ~name:"precision-asm2vec"
          (Staged.stage (fun () ->
               ignore (Diffing.Precision.evaluate Diffing.Tools.asm2vec o3 o0)));
        (* table2 / fig1(b) kernel *)
        Test.make ~name:"av-scan"
          (Staged.stage (fun () -> ignore (Av.Scanner.detections fleet o3)));
        (* fig1(a) kernel *)
        Test.make ~name:"provenance-features"
          (Staged.stage (fun () -> ignore (Provenance.Classify.features o3)));
        (* table3 kernel *)
        Test.make ~name:"vm-run-workload"
          (Staged.stage (fun () ->
               ignore (Vm.Machine.run o3 ~input:[| 3 |])));
        (* constraint repair (GA inner loop) *)
        Test.make ~name:"constraint-repair"
          (Staged.stage (fun () ->
               let n = Array.length gcc.Toolchain.Flags.flags in
               ignore
                 (Toolchain.Constraints.repair gcc rng
                    (Array.init n (fun _ -> Util.Rng.bool rng)))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> printf "  %-28s %10.1f ns/run\n" name est
      | _ -> printf "  %-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Search strategies: ablation + strategy sweep (paper §3.2, §4.1, §7)  *)
(* ------------------------------------------------------------------ *)

(* Shared runner for the strategy experiments: every strategy goes
   through the same batched evaluation path as [Tuner.tune] — compile +
   code-stream projection fanned over the pool, compressed sizes
   memoized in a per-run size cache — with the -Ox preset seeds and a
   per-run rng fixed by [seed], so strategies differ only in what they
   propose. *)
type strategy_run = {
  outcome : Search.outcome;
  wall_seconds : float;
  evals_per_sec : float;
  improvements : (float * float) list;
      (* (wall seconds since start, best-so-far) at batch granularity;
         the last entry is the wall-clock-to-final-fitness *)
  incr_hits : int;
  incr_misses : int;
}

let run_strategy ?(seed = 77) ?(incremental = false) ?(ncd_bound = false)
    ~budget ~plateau profile bench strategy_name =
  let ast = Corpus.program bench in
  let baseline = preset_binary profile "O0" bench in
  let baseline_stream = Bintuner.Tuner.code_stream baseline in
  let ncd_cache = Compress.Sizecache.create () in
  let store = if incremental then Some (Bintuner.Incremental.create ()) else None in
  let snapshot = Option.map Bintuner.Incremental.snapshot_store store in
  let incumbent = ref neg_infinity in
  let t0 = Unix.gettimeofday () in
  let best = ref neg_infinity in
  let improvements = ref [] in
  let batch_fitness vectors =
    let streams =
      Parallel.Pool.map !pool
        (fun v ->
          Bintuner.Tuner.code_stream
            (Toolchain.Pipeline.compile_flags profile v ?snapshot ast))
        vectors
    in
    let ncds =
      Compress.Ncd.against ~pool:!pool ~cache:ncd_cache
        ?incumbent:(if ncd_bound then Some !incumbent else None)
        ~baseline:baseline_stream streams
    in
    let bmax = Array.fold_left max neg_infinity ncds in
    if bmax > !best then begin
      best := bmax;
      improvements := (Unix.gettimeofday () -. t0, bmax) :: !improvements
    end;
    ncds
  in
  let fitness v = (batch_fitness [| v |]).(0) in
  let rng = Util.Rng.create seed in
  let problem =
    {
      Search.ngenes = Array.length profile.Toolchain.Flags.flags;
      seeds =
        List.filter_map
          (fun n -> Toolchain.Flags.preset profile n)
          [ "O1"; "O2"; "O3"; "Os" ];
      repair = Toolchain.Constraints.repair profile rng;
    }
  in
  let termination =
    match plateau with
    | Some (window, epsilon) ->
      { Search.max_evaluations = budget;
        plateau_window = window;
        plateau_epsilon = epsilon }
    | None ->
      (* budget-only: every strategy spends the full allowance, so the
         comparison is spend-for-spend *)
      { Search.max_evaluations = budget;
        plateau_window = budget;
        plateau_epsilon = 0.0 }
  in
  let outcome =
    Search.run_scalar ~batch_fitness
      ~notify_incumbent:(fun f -> incumbent := f)
      ~rng ~termination ~problem ~fitness
      (Search.of_name strategy_name)
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    outcome;
    wall_seconds;
    evals_per_sec = float_of_int outcome.Search.evaluations /. wall_seconds;
    improvements = List.rev !improvements;
    incr_hits = (match store with Some s -> Bintuner.Incremental.hits s | None -> 0);
    incr_misses =
      (match store with Some s -> Bintuner.Incremental.misses s | None -> 0);
  }

let ablation () =
  print_string
    (section
       "Ablation: search strategies (§4.1: GA beats local search; §3.2: ensemble)");
  let budget = if !quick_mode then 60 else 300 in
  List.iter
    (fun (bname, profile) ->
      let bench = Corpus.find bname in
      List.iter
        (fun sname ->
          let r = run_strategy ~budget ~plateau:None profile bench sname in
          printf "  %-14s %-10s best fitness %.3f in %d evaluations\n%!" bname
            sname r.outcome.Search.best_fitness r.outcome.evaluations)
        Search.all_names)
    [ ("462.libquantum", Toolchain.Flags.llvm); ("coreutils", Toolchain.Flags.gcc) ]

(* The strategy sweep microbench: best-NCD-vs-evaluations for every
   registered strategy on a small benchmark × profile grid, emitted
   machine-readably to BENCH_search.json (the search-layer analogue of
   BENCH_ncd.json).  Budgets follow [-quick]; [-only] narrows the
   benchmark set. *)
let search_bench () =
  print_string
    (section "Search strategy sweep (best NCD vs evaluations per strategy)");
  let budget = !bench_termination.Search.max_evaluations in
  let benches =
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    take 2 (eval_set ())
  in
  let profiles = [ Toolchain.Flags.llvm; Toolchain.Flags.gcc ] in
  let runs =
    List.concat_map
      (fun bench ->
        List.concat_map
          (fun profile ->
            List.map
              (fun sname ->
                let r = run_strategy ~budget ~plateau:None profile bench sname in
                printf
                  "  %-18s %-9s %-10s best NCD %.3f in %d evaluations \
                   (%.1f evals/s)\n%!"
                  bench.Corpus.bname profile.Toolchain.Flags.profile_name sname
                  r.outcome.Search.best_fitness r.outcome.Search.evaluations
                  r.evals_per_sec;
                (bench, profile, sname, r))
              Search.all_names)
          profiles)
      benches
  in
  (* The incremental-compilation ablation: hill at the same fixed budget
     with the pass-prefix snapshot store off, then on.  Hill's ask is
     the full single-bit-flip neighbourhood of the current point, the
     best case for prefix resume — and the store is lossless, so the two
     outcomes must be identical and only throughput may move. *)
  print_string
    (section "Incremental compilation: hill evals/sec, prefix store off vs on");
  let time_to_best r =
    match List.rev r.improvements with (t, _) :: _ -> t | [] -> r.wall_seconds
  in
  let incr_cases =
    List.concat_map
      (fun bench ->
        List.map
          (fun profile ->
            let off =
              run_strategy ~incremental:false ~budget ~plateau:None profile
                bench "hill"
            in
            let on =
              run_strategy ~incremental:true ~budget ~plateau:None profile
                bench "hill"
            in
            let identical =
              off.outcome.Search.best = on.outcome.Search.best
              && off.outcome.best_fitness = on.outcome.best_fitness
              && off.outcome.evaluations = on.outcome.evaluations
              && off.outcome.history = on.outcome.history
            in
            let speedup = on.evals_per_sec /. off.evals_per_sec in
            printf
              "  %-18s %-9s hill  %6.1f -> %6.1f evals/s (%.2fx)  \
               to-best %.2fs -> %.2fs  prefix hits %d/%d  identical=%b\n%!"
              bench.Corpus.bname profile.Toolchain.Flags.profile_name
              off.evals_per_sec on.evals_per_sec speedup (time_to_best off)
              (time_to_best on) on.incr_hits
              (on.incr_hits + on.incr_misses)
              identical;
            (bench, profile, off, on, speedup, identical))
          profiles)
      benches
  in
  let speedup_min =
    List.fold_left (fun a (_, _, _, _, s, _) -> min a s) infinity incr_cases
  in
  printf "  minimum hill evals/sec speedup: %.2fx\n" speedup_min;
  let oc = open_out "BENCH_search.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"budget\": %d,\n" budget;
  out "  \"runs\": [\n";
  List.iteri
    (fun i (bench, profile, sname, r) ->
      let outcome = r.outcome in
      let history =
        String.concat ","
          (List.map
             (fun (e, f) -> Printf.sprintf "[%d,%.4f]" e f)
             outcome.Search.history)
      in
      out
        "    {\"benchmark\": %S, \"profile\": %S, \"strategy\": %S, \
         \"best_ncd\": %.4f, \"evaluations\": %d, \"wall_seconds\": %.3f, \
         \"evals_per_sec\": %.2f, \"time_to_best_seconds\": %.3f, \
         \"history\": [%s]}%s\n"
        bench.Corpus.bname profile.Toolchain.Flags.profile_name sname
        outcome.Search.best_fitness outcome.Search.evaluations r.wall_seconds
        r.evals_per_sec (time_to_best r) history
        (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ],\n";
  out "  \"incremental\": [\n";
  List.iteri
    (fun i (bench, profile, off, on, speedup, identical) ->
      let side (r : strategy_run) =
        Printf.sprintf
          "{\"wall_seconds\": %.3f, \"evals_per_sec\": %.2f, \
           \"time_to_best_seconds\": %.3f, \"incr_hits\": %d, \
           \"incr_misses\": %d}"
          r.wall_seconds r.evals_per_sec (time_to_best r) r.incr_hits
          r.incr_misses
      in
      out
        "    {\"benchmark\": %S, \"profile\": %S, \"strategy\": \"hill\", \
         \"off\": %s, \"on\": %s, \"evals_per_sec_speedup\": %.2f, \
         \"identical_outcome\": %b}%s\n"
        bench.Corpus.bname profile.Toolchain.Flags.profile_name (side off)
        (side on) speedup identical
        (if i = List.length incr_cases - 1 then "" else ","))
    incr_cases;
  out "  ],\n";
  out "  \"hill_incremental_speedup_min\": %.2f\n" speedup_min;
  out "}\n";
  close_out oc;
  printf "  wrote BENCH_search.json (%d runs, %d incremental ablations)\n"
    (List.length runs) (List.length incr_cases)

(* ------------------------------------------------------------------ *)
(* Multi-objective tuning (paper §7 future work: NCD and speed)        *)
(* ------------------------------------------------------------------ *)

let multiobj () =
  print_string
    (section
       "Extension: multi-objective tuning (§7 future work — difference AND speed)");
  let bench = Corpus.find "462.libquantum" in
  let profile = Toolchain.Flags.gcc in
  let ast = Corpus.program bench in
  let baseline = preset_binary profile "O0" bench in
  let baseline_stream = Bintuner.Tuner.code_stream baseline in
  let input = List.hd bench.workloads in
  let o0_steps = (Vm.Machine.run baseline ~input).Vm.Machine.steps in
  let measure bin =
    let ncd =
      Compress.Ncd.distance (Bintuner.Tuner.code_stream bin) baseline_stream
    in
    let steps =
      try (Vm.Machine.run ~fuel:20_000_000 bin ~input).Vm.Machine.steps
      with Vm.Machine.Out_of_fuel | Vm.Machine.Trap _ -> o0_steps * 2
    in
    let speedup = 1.0 -. (float_of_int steps /. float_of_int o0_steps) in
    (ncd, speedup)
  in
  let run alpha =
    let rng = Util.Rng.create 99 in
    let fitness vector =
      let bin = Toolchain.Pipeline.compile_flags profile vector ast in
      let ncd, speedup = measure bin in
      (alpha *. ncd) +. ((1.0 -. alpha) *. speedup)
    in
    let outcome =
      let problem =
        {
          Search.ngenes = Array.length profile.flags;
          seeds =
            List.filter_map
              (fun n -> Toolchain.Flags.preset profile n)
              [ "O2"; "O3" ];
          repair = Toolchain.Constraints.repair profile rng;
        }
      in
      Search.run_scalar ~rng
        ~termination:
          {
            Search.max_evaluations = 200;
            plateau_window = 100;
            plateau_epsilon = 0.0035;
          }
        ~problem ~fitness
        (Search.Genetic.strategy ())
    in
    let bin = Toolchain.Pipeline.compile_flags profile outcome.best ast in
    let ncd, speedup = measure bin in
    printf "  alpha=%.2f → NCD %.3f, speedup vs O0 %+.1f%% (%d evaluations)
%!"
      alpha ncd (100.0 *. speedup) outcome.evaluations
  in
  let o3 = preset_binary profile "O3" bench in
  let n3, s3 = measure o3 in
  printf "  -O3 reference → NCD %.3f, speedup vs O0 %+.1f%%
%!" n3 (100.0 *. s3);
  List.iter run [ 1.0; 0.5 ];
  printf
    "  (the paper's Table 3 point: pure-NCD tuning sacrifices some of O3's speedup;
    \   weighting both objectives recovers it at a small difference cost)
"

(* ------------------------------------------------------------------ *)
(* Pareto tuning: NCD vs gadget census (BENCH_pareto.json)             *)
(* ------------------------------------------------------------------ *)

(* The vector-fitness engine end to end: tune each benchmark × profile
   under [ncd,gadgets] and report the non-dominated front the archive
   kept — how much NCD a defender must give up to also shrink the
   candidate's ROP-gadget surface.  The headline per run is the NCD
   forfeited at a 50% gadget cut: best front NCD minus the best NCD
   among front points whose gadget count is at most half the count at
   the NCD-optimal point (the trade the paper's §7 "other objectives"
   future work asks about).  Emits BENCH_pareto.json. *)
let pareto_bench () =
  print_string
    (section "Pareto tuning: NCD vs gadget census (vector fitness engine)");
  let objectives = Search.Objective.parse "ncd,gadgets" in
  let benches =
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    take 3 (eval_set ())
  in
  let profiles = [ Toolchain.Flags.gcc; Toolchain.Flags.llvm ] in
  let cases =
    List.concat_map
      (fun bench ->
        List.map
          (fun profile ->
            let t0 = Unix.gettimeofday () in
            let r =
              Bintuner.Tuner.tune ~termination:!bench_termination ~pool:!pool
                ~objectives ~profile bench
            in
            let wall = Unix.gettimeofday () -. t0 in
            (* axis 0 is NCD; axis 1 is the negated gadget-census size,
               so gadget count = -. fitness.(1) *)
            let front =
              List.map (fun (v, f) -> (v, f.(0), -.f.(1))) r.front
            in
            let best_ncd, gadgets_at_best =
              List.fold_left
                (fun (bn, bg) (_, n, g) -> if n > bn then (n, g) else (bn, bg))
                (neg_infinity, infinity) front
            in
            let target = gadgets_at_best /. 2.0 in
            let half_ncd =
              List.fold_left
                (fun acc (_, n, g) -> if g <= target then max acc n else acc)
                neg_infinity front
            in
            let forfeit =
              if half_ncd = neg_infinity then None
              else Some (best_ncd -. half_ncd)
            in
            printf
              "  %-18s %-9s front=%d  best NCD %.3f @ %.0f gadgets  %s  \
               (%d evaluations, %.1fs)\n%!"
              bench.Corpus.bname profile.Toolchain.Flags.profile_name
              (List.length front) best_ncd gadgets_at_best
              (match forfeit with
              | Some d ->
                Printf.sprintf "NCD given up at 50%% gadget cut: %.3f" d
              | None -> "no front point reaches a 50% gadget cut")
              r.iterations wall;
            (bench, profile, r, front, best_ncd, gadgets_at_best, forfeit, wall))
          profiles)
      benches
  in
  (* gate: every front the archive returns must be mutually non-dominated *)
  let all_non_dominated =
    List.for_all
      (fun (_, _, r, _, _, _, _, _) ->
        Search.Pareto.is_non_dominated
          (List.map (fun (v, f) -> (v, f)) r.Bintuner.Tuner.front))
      cases
  in
  printf "  fronts mutually non-dominated: %b (gate: must be true)\n"
    all_non_dominated;
  let multi_point =
    List.length
      (List.filter (fun (_, _, _, front, _, _, _, _) ->
           List.length front >= 2)
         cases)
  in
  printf "  runs with a >=2-point front: %d of %d\n" multi_point
    (List.length cases);
  let oc = open_out "BENCH_pareto.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"objectives\": [\"ncd\", \"gadgets\"],\n";
  out "  \"budget\": %d,\n" !bench_termination.Search.max_evaluations;
  out "  \"runs\": [\n";
  List.iteri
    (fun i (bench, profile, (r : Bintuner.Tuner.result), front, best_ncd,
            gadgets_at_best, forfeit, wall) ->
      let points =
        String.concat ","
          (List.map
             (fun (v, n, g) ->
               Printf.sprintf "{\"vector\": %S, \"ncd\": %.4f, \"gadgets\": %.0f}"
                 (Bintuner.Database.vector_to_string v) n g)
             front)
      in
      out
        "    {\"benchmark\": %S, \"profile\": %S, \"front_size\": %d, \
         \"best_ncd\": %.4f, \"gadgets_at_best_ncd\": %.0f, \
         \"ncd_forfeit_at_half_gadgets\": %s, \"evaluations\": %d, \
         \"objective_memo_hits\": %d, \"objective_memo_misses\": %d, \
         \"wall_seconds\": %.3f, \"front\": [%s]}%s\n"
        bench.Corpus.bname profile.Toolchain.Flags.profile_name
        (List.length front) best_ncd gadgets_at_best
        (match forfeit with Some d -> Printf.sprintf "%.4f" d | None -> "null")
        r.iterations r.objective_hits r.objective_misses wall points
        (if i = List.length cases - 1 then "" else ","))
    cases;
  out "  ],\n";
  out "  \"all_fronts_non_dominated\": %b,\n" all_non_dominated;
  out "  \"runs_with_multi_point_front\": %d\n" multi_point;
  out "}\n";
  close_out oc;
  printf "  wrote BENCH_pareto.json (%d runs)\n" (List.length cases);
  if not all_non_dominated then exit 1

(* ------------------------------------------------------------------ *)
(* NCD kernel microbenchmark (BENCH_ncd.json)                          *)
(* ------------------------------------------------------------------ *)

(* Compression throughput of each match-finder level over the corpus
   [.text] streams, plus the size-cache effect on batched pairwise NCD.
   Emits machine-readable before/after numbers to BENCH_ncd.json —
   [Greedy] is the pre-overhaul kernel, so the chained-vs-greedy speedup
   is the overhaul's measured win.  [-quick] shrinks the measurement
   window for CI smoke runs. *)
let ncd_bench () =
  print_string
    (section "NCD kernel: throughput per match-finder level + size-cache effect");
  let gcc = Toolchain.Flags.gcc in
  let streams =
    List.concat_map
      (fun bench ->
        List.map
          (fun p -> (preset_binary gcc p bench).Isa.Binary.text)
          [ "O0"; "O2" ])
      (eval_set ())
  in
  let total_bytes = List.fold_left (fun a s -> a + String.length s) 0 streams in
  printf "  corpus: %d .text streams, %d bytes\n%!" (List.length streams)
    total_bytes;
  let min_time = if !quick_mode then 0.05 else 1.5 in
  let measure level =
    (* one warm-up sweep (page in, stabilize the workspace), then timed
       whole-corpus sweeps until the window is filled *)
    let sweep () =
      List.fold_left
        (fun acc s -> acc + Compress.Lz.compressed_size ~level s)
        0 streams
    in
    let compressed = sweep () in
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    while Unix.gettimeofday () -. t0 < min_time do
      ignore (sweep () : int);
      incr reps
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let mb_per_s =
      float_of_int (total_bytes * !reps) /. dt /. (1024.0 *. 1024.0)
    in
    let ratio = float_of_int compressed /. float_of_int total_bytes in
    (mb_per_s, ratio)
  in
  let levels =
    [
      Compress.Lz.Greedy;
      Compress.Lz.Chained 32;
      Compress.Lz.Chained Compress.Lz.default_chain_depth;
      Compress.Lz.Chained 512;
    ]
  in
  let results =
    List.map
      (fun level ->
        let mb_per_s, ratio = measure level in
        printf "  %-12s %8.2f MB/s  compressed to %5.1f%% of input\n%!"
          (Compress.Lz.level_name level) mb_per_s (100.0 *. ratio);
        (level, mb_per_s, ratio))
      levels
  in
  let find_mbs level =
    let _, m, _ =
      List.find (fun (l, _, _) -> l = level) results
    in
    m
  in
  let speedup =
    find_mbs (Compress.Lz.Chained Compress.Lz.default_chain_depth)
    /. find_mbs Compress.Lz.Greedy
  in
  printf "  chained-%d vs greedy speedup: %.2fx\n" Compress.Lz.default_chain_depth
    speedup;
  (* size-cache effect: the same pairwise NCD matrix twice over one
     cache — the first pass compresses every term, the second is pure
     table hits *)
  let cache = Compress.Sizecache.create () in
  let arr = Array.of_list streams in
  ignore (Compress.Ncd.matrix ~pool:!pool ~cache arr);
  let cold_misses = Compress.Sizecache.misses cache in
  ignore (Compress.Ncd.matrix ~pool:!pool ~cache arr);
  let hits = Compress.Sizecache.hits cache in
  let lookups = hits + Compress.Sizecache.misses cache in
  let hit_rate = float_of_int hits /. float_of_int (max 1 lookups) in
  printf
    "  size cache over a %dx%d ncd matrix run twice: %d hits / %d lookups (%.0f%% hit rate, %d entries)\n"
    (Array.length arr) (Array.length arr) hits lookups (100.0 *. hit_rate)
    (Compress.Sizecache.length cache);
  (* NCD early-exit: one batch of candidates against a fixed baseline,
     scored exhaustively and then with the incumbent-armed bound
     (C(x·y) >= max(C(x),C(y))).  The incumbent sits just under the
     batch's true maximum, so the winner still runs to completion (and
     the argmax is preserved) while everything else may abort its pair
     compression — the shape of a late-search tuner batch.  Fresh caches
     per sweep: a warm cache would hide the compression being skipped. *)
  let baseline_stream, candidates =
    match streams with
    | b :: rest -> (b, Array.of_list rest)
    | [] -> ("", [||])
  in
  let exact =
    Compress.Ncd.against
      ~cache:(Compress.Sizecache.create ())
      ~baseline:baseline_stream candidates
  in
  let exact_max = Array.fold_left max neg_infinity exact in
  let incumbent = exact_max *. 0.999 in
  let measure_against ?incumbent () =
    let sweep () =
      Compress.Ncd.against
        ~cache:(Compress.Sizecache.create ())
        ?incumbent ~baseline:baseline_stream candidates
    in
    ignore (sweep () : float array);
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    while Unix.gettimeofday () -. t0 < min_time do
      ignore (sweep () : float array);
      incr reps
    done;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (Array.length candidates * !reps) /. dt
  in
  let exhaustive_cps = measure_against () in
  let bounded_cps = measure_against ~incumbent () in
  let ee_speedup = bounded_cps /. exhaustive_cps in
  let bounded =
    Compress.Ncd.against
      ~cache:(Compress.Sizecache.create ())
      ~incumbent ~baseline:baseline_stream candidates
  in
  let argmax a =
    let b = ref 0 in
    Array.iteri (fun i v -> if v > a.(!b) then b := i) a;
    !b
  in
  let argmax_preserved =
    Array.length candidates = 0
    || (argmax bounded = argmax exact
       && Array.fold_left max neg_infinity bounded = exact_max)
  in
  printf
    "  ncd early-exit vs exhaustive on %d candidates: %.1f -> %.1f cand/s \
     (%.2fx), argmax preserved %b\n"
    (Array.length candidates) exhaustive_cps bounded_cps ee_speedup
    argmax_preserved;
  let oc = open_out "BENCH_ncd.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"streams\": %d,\n" (List.length streams);
  out "  \"total_bytes\": %d,\n" total_bytes;
  out "  \"levels\": [\n";
  List.iteri
    (fun i (level, mb_per_s, ratio) ->
      out "    {\"level\": %S, \"mb_per_s\": %.2f, \"compressed_ratio\": %.4f}%s\n"
        (Compress.Lz.level_name level) mb_per_s ratio
        (if i = List.length results - 1 then "" else ","))
    results;
  out "  ],\n";
  out "  \"chained_default_vs_greedy_speedup\": %.2f,\n" speedup;
  out
    "  \"size_cache\": {\"cold_misses\": %d, \"hits\": %d, \"lookups\": %d, \"hit_rate\": %.4f},\n"
    cold_misses hits lookups hit_rate;
  out
    "  \"early_exit\": {\"candidates\": %d, \"exhaustive_cands_per_sec\": %.2f, \
     \"bounded_cands_per_sec\": %.2f, \"speedup\": %.2f, \
     \"argmax_preserved\": %b}\n"
    (Array.length candidates) exhaustive_cps bounded_cps ee_speedup
    argmax_preserved;
  out "}\n";
  close_out oc;
  printf "  wrote BENCH_ncd.json\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)
(* Serving mode: cold vs warm persistent store (BENCH_serve.json)      *)
(* ------------------------------------------------------------------ *)

(* The serving-mode payoff measured end to end: the same job through a
   daemon whose persistent artifact store is cold (first ever run) and
   then through a fresh daemon over the now-populated store directory —
   the restart proves the warm-up comes from disk, not process memory
   (the compile memo is capped to one byte so it never shadows the
   store).  Store traffic is lossless, so outcomes must be identical;
   only wall-clock and the hit counters may move. *)
let serve_bench () =
  print_string
    (section "Serving mode: tuning wall-clock, cold vs warm artifact store");
  let budget = !bench_termination.Search.max_evaluations in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let benches =
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    take 2 (eval_set ())
  in
  let cases =
    List.map
      (fun (bench : Corpus.benchmark) ->
        let dir = Filename.temp_file "bintuner-serve" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let job =
              Printf.sprintf "tune bench=%s profile=gcc budget=%d"
                bench.Corpus.bname budget
            in
            let run_daemon () =
              let srv =
                Bintuner.Server.create
                  ~jobs:(Parallel.Pool.default_size ())
                  ~store_dir:dir ~memo_max_bytes:1 ()
              in
              Fun.protect
                ~finally:(fun () -> Bintuner.Server.close srv)
                (fun () ->
                  ignore (Bintuner.Server.handle_line srv job);
                  match Bintuner.Server.completed srv with
                  | [ j ] -> j
                  | _ -> failwith ("serve bench: job failed on " ^ bench.bname))
            in
            let cold = run_daemon () in
            let warm = run_daemon () in
            let identical =
              cold.Bintuner.Server.best_vector = warm.Bintuner.Server.best_vector
              && cold.best_ncd = warm.best_ncd
              && cold.iterations = warm.iterations
            in
            let speedup = cold.wall_seconds /. warm.wall_seconds in
            printf
              "  %-18s cold %6.2fs -> warm %6.2fs (%.2fx)  store hits \
               %d/%d  identical=%b\n%!"
              bench.Corpus.bname cold.wall_seconds warm.wall_seconds speedup
              warm.store_hits
              (warm.store_hits + warm.store_misses)
              identical;
            (bench, cold, warm, speedup, identical)))
      benches
  in
  let oc = open_out "BENCH_serve.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"budget\": %d,\n" budget;
  out "  \"cases\": [\n";
  List.iteri
    (fun i (bench, cold, warm, speedup, identical) ->
      let side (j : Bintuner.Server.job_summary) =
        Printf.sprintf
          "{\"wall_seconds\": %.3f, \"store_hits\": %d, \"store_misses\": %d, \
           \"compilations\": %d}"
          j.Bintuner.Server.wall_seconds j.store_hits j.store_misses
          j.compilations
      in
      out
        "    {\"benchmark\": %S, \"profile\": \"gcc-10.2\", \"cold\": %s, \
         \"warm\": %s, \"wall_speedup\": %.2f, \"identical_outcome\": %b}%s\n"
        bench.Corpus.bname (side cold) (side warm) speedup identical
        (if i = List.length cases - 1 then "" else ","))
    cases;
  out "  ]\n";
  out "}\n";
  close_out oc;
  printf "  wrote BENCH_serve.json (%d cold/warm pairs)\n" (List.length cases)

(* ------------------------------------------------------------------ *)
(* Binary insight: gadget census and dead code per preset per arch     *)
(* ------------------------------------------------------------------ *)

(* Aggregates the binsight inspect pipeline over the evaluation set:
   for each (arch, preset) every benchmark is compiled with ground-truth
   instruction boundaries, re-disassembled and censused, and the sums
   feed the EXPERIMENTS.md gadget-census baseline table.  Any
   disassembly mismatch anywhere is a hard failure.  [-quick] restricts
   the sweep to x86-64 at O0/O3. *)
let binsight () =
  print_string
    (section "Binary insight: gadget census and dead code per preset per arch");
  let profile = Toolchain.Flags.gcc in
  let archs =
    if !quick_mode then [ Isa.Insn.X86_64 ]
    else [ Isa.Insn.X86_64; Isa.Insn.X86_32; Isa.Insn.Arm; Isa.Insn.Mips ]
  in
  let presets =
    if !quick_mode then [ "O0"; "O3" ] else Toolchain.Flags.preset_names
  in
  let mismatches = ref 0 in
  let rows =
    List.concat_map
      (fun arch ->
        List.map
          (fun preset ->
            let text = ref 0 and insns = ref 0 and sites = ref 0 in
            let uniq = ref 0 and ret = ref 0 and jump = ref 0 in
            let call = ref 0 and dead = ref 0 in
            List.iter
              (fun bench ->
                let boundaries = Hashtbl.create 64 in
                let bin =
                  Toolchain.Pipeline.compile_preset profile ~arch ~boundaries
                    preset (Corpus.program bench)
                in
                let r =
                  Binsight.Report.inspect ~bench:bench.Corpus.bname ~preset
                    ~ground_truth:boundaries bin
                in
                mismatches := !mismatches + Binsight.Report.mismatch_count r;
                let g = r.Binsight.Report.r_gadgets in
                let ft = r.Binsight.Report.r_features in
                text := !text + String.length bin.Isa.Binary.text;
                insns := !insns + ft.Binsight.Features.insn_count;
                sites := !sites + g.Binsight.Gadgets.c_sites;
                uniq := !uniq + List.length g.c_unique;
                ret := !ret + g.c_ret;
                jump := !jump + g.c_jump;
                call := !call + g.c_call;
                dead := !dead + ft.dead_bytes)
              (eval_set ());
            [
              Isa.Insn.arch_name arch;
              preset;
              string_of_int !text;
              string_of_int !insns;
              string_of_int !sites;
              string_of_int !uniq;
              Printf.sprintf "%d/%d/%d" !ret !jump !call;
              string_of_int !dead;
              Printf.sprintf "%.2f"
                (1000.0 *. float_of_int !sites /. float_of_int (max 1 !text));
            ])
          presets)
      archs
  in
  print_string
    (Util.Render.table
       ~header:
         [
           "arch"; "preset"; "text B"; "insns"; "sites"; "unique";
           "ret/jmp/call"; "dead B"; "sites/KB";
         ]
       ~rows);
  printf "  disassembly mismatches: %d (gate: must be 0)\n" !mismatches;
  if !mismatches > 0 then exit 1

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig5", fig5);
    ("table1", table1);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table2", table2);
    ("table3", table3);
    ("table45", table45);
    ("fig10", fig10);
    ("table78", table78);
    ("speed", speed);
    ("ncd", ncd_bench);
    ("search", search_bench);
    ("serve", serve_bench);
    ("ablation", ablation);
    ("multiobj", multiobj);
    ("pareto", pareto_bench);
    ("binsight", binsight);
    ("bechamel", bechamel);
  ]

let usage () =
  printf
    "usage: main.exe [-j N] [-quick] [-verify] [-trace FILE] [-profile] [-only NAME]* [experiment...]\n\
     \  -j N         run tuning jobs and search generations on N domains\n\
     \               (default: the machine's recommended domain count;\n\
     \               results are bit-identical at every N)\n\
     \  -quick       shrink the search budget for smoke runs\n\
     \  -trace FILE  stream telemetry events (compile passes, search\n\
     \               generations, pool chunks, fitness/BinHunt spans)\n\
     \               to FILE as ndjson\n\
     \  -profile     print an aggregated telemetry summary at exit,\n\
     \               including the paper's §4.2 compile/NCD/BinHunt\n\
     \               cost split\n\
     \  -only NAME   restrict the sweep experiments (fig5, table1,\n\
     \               table3, table78) to benchmark NAME (repeatable)\n\
     \  -lz-level L  match-finder level for the NCD fitness kernel:\n\
     \               greedy | chained | chained-<depth>\n\
     \               (default: chained-128; greedy reproduces the\n\
     \               pre-overhaul kernel bit-for-bit)\n\
     \  -verify      run the IR verifier after every pass of every\n\
     \               compile; abort naming the offending pass on the\n\
     \               first broken IR invariant\n\
     known experiments: %s\n"
    (String.concat " " (List.map fst experiments))

let () =
  let rec parse args acc =
    let j, quick, trace, profile, names = acc in
    match args with
    | [] -> (j, quick, trace, profile, List.rev names)
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> parse rest (n, quick, trace, profile, names)
      | _ ->
        usage ();
        exit 2)
    | "-quick" :: rest -> parse rest (j, true, trace, profile, names)
    | "-verify" :: rest ->
      Toolchain.Pipeline.verify_default := true;
      parse rest acc
    | ("-trace" | "--trace") :: file :: rest ->
      parse rest (j, quick, Some file, profile, names)
    | ("-profile" | "--profile") :: rest ->
      parse rest (j, quick, trace, true, names)
    | ("-only" | "--only") :: name :: rest ->
      only := name :: !only;
      parse rest (j, quick, trace, profile, names)
    | ("-lz-level" | "--lz-level") :: level :: rest ->
      (match Compress.Lz.level_of_string level with
      | l -> Compress.Lz.set_default_level l
      | exception Invalid_argument _ ->
        usage ();
        exit 2);
      parse rest (j, quick, trace, profile, names)
    | ("-h" | "-help" | "--help") :: _ ->
      usage ();
      exit 0
    | name :: rest -> parse rest (j, quick, trace, profile, name :: names)
  in
  let j, quick, trace, profile, names =
    parse
      (List.tl (Array.to_list Sys.argv))
      (Parallel.Pool.default_size (), false, None, false, [])
  in
  if quick then begin
    quick_mode := true;
    bench_termination :=
      { !bench_termination with max_evaluations = 60; plateau_window = 40 }
  end;
  (* install telemetry before the pool spawns its domains so worker spans
     carry the right instance.  With neither flag the global stays the
     no-op [Telemetry.null] and tracing costs nothing. *)
  let trace_channel =
    match trace with
    | Some file -> Some (open_out file)
    | None -> None
  in
  if trace_channel <> None || profile then
    Telemetry.set_global
      (Telemetry.create
         ?sink:(Option.map (fun oc -> Telemetry.Channel oc) trace_channel)
         ());
  pool := Parallel.Pool.create j;
  printf "bench: %d worker domain(s)%s\n" j (if quick then ", quick budget" else "");
  let selected =
    match names with
    | [] -> List.map fst experiments
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        printf "unknown experiment %s (known: %s)\n" name
          (String.concat " " (List.map fst experiments)))
    selected;
  printf "\nTotal bench time: %.1fs wall\n" (Unix.gettimeofday () -. t0);
  Parallel.Pool.shutdown !pool;
  if profile then print_string (Telemetry.summary (Telemetry.global ()));
  Telemetry.flush (Telemetry.global ());
  Option.iter close_out trace_channel
