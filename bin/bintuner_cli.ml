(* The bintuner command-line interface.

     bintuner_cli compile  --bench 462.libquantum --profile gcc --preset O3
     bintuner_cli tune     --bench coreutils --profile gcc
     bintuner_cli diff     --bench openssl --profile llvm --from O3 --to O0
     bintuner_cli ncd      --bench openssl --profile llvm --from O3 --to O0
     bintuner_cli scan     --bench lightaidra
     bintuner_cli list

   Benchmarks are the built-in corpus; pass --source FILE to compile an
   arbitrary MinC translation unit instead. *)

open Cmdliner

let profile_of = function
  | "gcc" | "gcc-10.2" -> Toolchain.Flags.gcc
  | "llvm" | "llvm-11.0" -> Toolchain.Flags.llvm
  | s -> failwith ("unknown profile " ^ s ^ " (use gcc | llvm)")

let arch_of = function
  | "x86-64" -> Isa.Insn.X86_64
  | "x86-32" -> Isa.Insn.X86_32
  | "arm" -> Isa.Insn.Arm
  | "mips" -> Isa.Insn.Mips
  | s -> failwith ("unknown arch " ^ s)

let load_program ~bench ~source =
  match source with
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    ( Minic.Sema.analyze src,
      {
        Corpus.bname = Filename.basename path;
        suite = Corpus.Coreutils;
        source = src;
        workloads = [ [| 0 |]; [| 7 |] ];
      } )
  | None ->
    let b = Corpus.find bench in
    (Corpus.program b, b)

(* common options *)
let bench_arg =
  Arg.(value & opt string "462.libquantum" & info [ "bench" ] ~doc:"Corpus benchmark name.")

let source_arg =
  Arg.(value & opt (some file) None & info [ "source" ] ~doc:"MinC source file (overrides --bench).")

let profile_arg =
  Arg.(value & opt string "gcc" & info [ "profile" ] ~doc:"Compiler profile: gcc | llvm.")

let arch_arg =
  Arg.(value & opt string "x86-64" & info [ "arch" ] ~doc:"Target: x86-64 | x86-32 | arm | mips.")

let lz_level_conv =
  let parse s =
    match Compress.Lz.level_of_string s with
    | l -> Ok l
    | exception Invalid_argument m -> Error (`Msg m)
  in
  let print ppf l = Format.pp_print_string ppf (Compress.Lz.level_name l) in
  Arg.conv (parse, print)

let lz_level_arg =
  Arg.(value
       & opt lz_level_conv (Compress.Lz.default_level ())
       & info [ "lz-level" ]
           ~doc:
             "Match-finder level of the NCD fitness kernel: greedy | chained \
              | chained-<depth>.  greedy is the pre-overhaul kernel, kept \
              bit-for-bit stable; chained (the default) is faster and \
              compresses repetitive code harder.")

let verify_ir_arg =
  Arg.(value & flag
       & info [ "verify-ir" ]
           ~doc:
             "Run the IR verifier after lowering and after every IR pass; \
              abort naming the offending pass if a pass breaks an IR \
              invariant.")

let compile_cmd =
  let preset =
    Arg.(value & opt string "O2" & info [ "preset" ] ~doc:"O0|O1|O2|O3|Os.")
  in
  let run bench source profile arch preset verify_ir =
    if verify_ir then Toolchain.Pipeline.verify_default := true;
    let program, b = load_program ~bench ~source in
    let p = profile_of profile in
    let bin = Toolchain.Pipeline.compile_preset p ~arch:(arch_of arch) preset program in
    Printf.printf "%s %s %s (%s): %d bytes code, %d bytes data, %d functions\n"
      b.Corpus.bname p.profile_name preset arch
      (String.length bin.Isa.Binary.text)
      (String.length bin.Isa.Binary.data)
      (Array.length bin.Isa.Binary.functions);
    let r = Vm.Machine.run bin ~input:(List.hd b.workloads) in
    Printf.printf "run: exit=%d steps=%d output=%s" r.return_value r.steps
      (Vir.Interp.output_to_string r.output)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a benchmark at a preset and run it.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch_arg $ preset
          $ verify_ir_arg)

let tune_cmd =
  let iterations =
    Arg.(value & opt int 500
         & info [ "max-iterations" ] ~doc:"Search evaluation budget.")
  in
  let strategy_arg =
    Arg.(value
         & opt (enum (List.map (fun n -> (n, n)) Search.all_names)) "ga"
         & info [ "strategy" ]
             ~doc:
               "Search strategy: $(b,ga) (generational genetic algorithm), \
                $(b,hill) (batched steepest-ascent hill climbing), \
                $(b,anneal) (batched simulated annealing), $(b,random) \
                (random-search baseline), or $(b,ensemble) (OpenTuner-style \
                AUC-bandit over the other four).")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ]
             ~doc:
               "Worker domains for the parallel evaluation engine (0 = the \
                machine's recommended domain count).  Results are identical \
                at every value.")
  in
  let db =
    Arg.(value & opt (some string) None
         & info [ "db" ] ~doc:"Append the run to this tuning-database file.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:
               "Stream telemetry events (compile passes, GA generations, pool \
                chunks, fitness/BinHunt spans) to this file as ndjson.")
  in
  let prof =
    Arg.(value & flag
         & info [ "perf-profile" ]
             ~doc:
               "Print an aggregated telemetry summary after tuning, including \
                the compile/NCD/BinHunt cost split.")
  in
  let incremental =
    Arg.(value & opt bool true
         & info [ "incremental" ]
             ~doc:
               "Share a pass-prefix snapshot store across the run's \
                compiles, resuming each candidate from the longest \
                pipeline prefix already compiled.  Lossless — results \
                are identical on or off; only wall-clock changes.")
  in
  let ncd_bound =
    Arg.(value & flag
         & info [ "ncd-bound" ]
             ~doc:
               "Arm the NCD early-exit: stop compressing candidates that \
                provably cannot beat the batch's incumbent fitness.  \
                Preserves every batch's argmax but clamps sub-incumbent \
                scores, so full-run trajectories of score-consuming \
                strategies may differ from exhaustive evaluation.  Ignored \
                on multi-objective runs.")
  in
  let objective_conv =
    let parse s =
      match Search.Objective.parse s with
      | spec -> Ok spec
      | exception Invalid_argument m -> Error (`Msg m)
    in
    let print ppf spec =
      Format.pp_print_string ppf (Search.Objective.to_string spec)
    in
    Arg.conv (parse, print)
  in
  let objective_arg =
    Arg.(value
         & opt objective_conv Search.Objective.default
         & info [ "objective" ]
             ~doc:
               "Fitness axes with optional scalarization weights, \
                comma-separated: $(b,ncd), $(b,gadgets) (negated gadget \
                census), $(b,size) (negated code+data bytes), $(b,evasion) \
                (provenance-classifier distance).  E.g. \
                $(b,ncd,gadgets:0.5).  The default, $(b,ncd), is the \
                historical scalar path, bit-identical to earlier releases; \
                any other spec maintains a Pareto archive and reports the \
                non-dominated front alongside the weighted-sum best.")
  in
  let run bench source profile arch lz_level iterations strategy jobs db trace
      prof incremental ncd_bound objectives =
    Compress.Lz.set_default_level lz_level;
    let _, b = load_program ~bench ~source in
    let p = profile_of profile in
    let termination =
      { Search.default_termination with max_evaluations = iterations }
    in
    let j = if jobs <= 0 then Parallel.Pool.default_size () else jobs in
    let trace_channel = Option.map open_out trace in
    if trace_channel <> None || prof then
      Telemetry.set_global
        (Telemetry.create
           ?sink:(Option.map (fun oc -> Telemetry.Channel oc) trace_channel)
           ());
    let r =
      Parallel.Pool.with_pool j (fun pool ->
          Bintuner.Tuner.tune ~arch:(arch_of arch) ~termination
            ~strategy:(Search.of_name strategy) ~pool ~incremental ~ncd_bound
            ~objectives ~profile:p b)
    in
    Printf.printf
      "tuned %s with %s [%s]: %d iterations, fitness NCD %.3f, functional %b\n"
      r.benchmark r.profile_name r.strategy r.iterations r.best_ncd
      r.functional_ok;
    if not (Search.Objective.is_scalar_ncd objectives) then begin
      Printf.printf "objectives: %s  best [%s]\n"
        (String.concat "," r.objectives)
        (String.concat " "
           (List.map (Printf.sprintf "%.3f") (Array.to_list r.best_scores)));
      Printf.printf "pareto front: %d points\n" (List.length r.front);
      List.iter
        (fun (v, f) ->
          Printf.printf "  front %s [%s]\n"
            (Bintuner.Database.vector_to_string v)
            (String.concat " "
               (List.map (Printf.sprintf "%.3f") (Array.to_list f))))
        r.front
    end;
    Printf.printf "compile memo: %d of %d compile requests served from cache (-j %d)\n"
      r.cache_hits (r.cache_hits + r.compilations) j;
    if incremental then
      Printf.printf
        "prefix cache: %d of %d snapshot lookups hit (compiles resume \
         mid-pipeline)\n"
        r.incr_hits (r.incr_hits + r.incr_misses);
    List.iter (fun (n, v) -> Printf.printf "  %-3s fitness %.3f\n" n v) r.preset_ncd;
    Printf.printf "flags: %s\n"
      (String.concat " " (Bintuner.Tuner.flags_enabled p r.best_vector));
    if prof then print_string (Telemetry.summary (Telemetry.global ()));
    Telemetry.flush (Telemetry.global ());
    Option.iter close_out trace_channel;
    match db with
    | None -> ()
    | Some path ->
      let existing =
        if Sys.file_exists path then Bintuner.Database.load path else []
      in
      Bintuner.Database.save path
        (existing @ [ Bintuner.Database.of_result r p ]);
      Printf.printf "run appended to %s\n" path
  in
  Cmd.v (Cmd.info "tune" ~doc:"Run BinTuner's iterative compilation on a benchmark.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch_arg
          $ lz_level_arg $ iterations $ strategy_arg $ jobs $ db $ trace $ prof
          $ incremental $ ncd_bound $ objective_arg)

let serve_cmd =
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ]
             ~doc:
               "Worker domains of the shared session pool (0 = the machine's \
                recommended domain count).  Job results are identical at \
                every value.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ]
             ~doc:
               "Serve a Unix domain socket at this path instead of \
                stdin/stdout.")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store" ]
             ~doc:
               "Root directory of the persistent artifact store (created if \
                missing).  Compiled binaries and compressed sizes are written \
                through to it and survive daemon restarts; without it the \
                daemon shares caches across jobs but persists nothing.")
  in
  let store_mb =
    Arg.(value & opt int 256
         & info [ "store-max-mb" ]
             ~doc:"Byte budget of the persistent store, in MiB (LRU-evicted).")
  in
  let memo_mb =
    Arg.(value & opt int 128
         & info [ "memo-max-mb" ]
             ~doc:"Byte budget of the shared compile memo, in MiB.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Stream telemetry events to this file as ndjson (each \
                   job's spans carry its job id).")
  in
  let prof =
    Arg.(value & flag
         & info [ "perf-profile" ]
             ~doc:"Print an aggregated telemetry summary when the daemon \
                   exits.")
  in
  let run jobs socket store_dir store_mb memo_mb trace prof =
    let j = if jobs <= 0 then Parallel.Pool.default_size () else jobs in
    let trace_channel = Option.map open_out trace in
    if trace_channel <> None || prof then
      Telemetry.set_global
        (Telemetry.create
           ?sink:(Option.map (fun oc -> Telemetry.Channel oc) trace_channel)
           ());
    let srv =
      Bintuner.Server.create ~jobs:j ?store_dir
        ~store_max_bytes:(store_mb * 1024 * 1024)
        ~memo_max_bytes:(memo_mb * 1024 * 1024) ()
    in
    Fun.protect
      ~finally:(fun () ->
        Bintuner.Server.close srv;
        if prof then print_string (Telemetry.summary (Telemetry.global ()));
        Telemetry.flush (Telemetry.global ());
        Option.iter close_out trace_channel)
      (fun () ->
        match socket with
        | Some path -> Bintuner.Server.serve_unix srv path
        | None -> Bintuner.Server.serve_channel srv stdin stdout)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning daemon: accept jobs (submit/run/tune/status/quit, \
          one request per line, JSON responses) over stdin or a Unix socket, \
          multiplexed onto one shared pool and cache session, optionally \
          backed by a crash-safe persistent artifact store.")
    Term.(const run $ jobs $ socket $ store_dir $ store_mb $ memo_mb $ trace
          $ prof)

let diff_cmd =
  let a = Arg.(value & opt string "O3" & info [ "from" ] ~doc:"First preset.") in
  let b_ = Arg.(value & opt string "O0" & info [ "to" ] ~doc:"Second preset.") in
  let run bench source profile arch a b_ =
    let program, _ = load_program ~bench ~source in
    let p = profile_of profile in
    let arch = arch_of arch in
    let ba = Toolchain.Pipeline.compile_preset p ~arch a program in
    let bb = Toolchain.Pipeline.compile_preset p ~arch b_ program in
    let d = Diffing.Binhunt.compare_binaries ba bb in
    Printf.printf "BinHunt difference score (%s vs %s): %.3f\n" a b_ d.score;
    Printf.printf "matched: %s\n"
      (Diffing.Metrics.to_string (Diffing.Metrics.compute ba bb));
    List.iter
      (fun r ->
        Printf.printf "  %-10s Precision@1 = %.2f (%d/%d)\n"
          r.Diffing.Precision.tool r.precision r.hits r.total)
      (Diffing.Precision.evaluate_all ba bb)
  in
  Cmd.v (Cmd.info "diff" ~doc:"Compare two presets with BinHunt and all diffing tools.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch_arg $ a $ b_)

let ncd_cmd =
  let a = Arg.(value & opt string "O3" & info [ "from" ] ~doc:"First preset.") in
  let b_ = Arg.(value & opt string "O0" & info [ "to" ] ~doc:"Second preset.") in
  let run bench source profile arch lz_level a b_ =
    Compress.Lz.set_default_level lz_level;
    let program, _ = load_program ~bench ~source in
    let p = profile_of profile in
    let arch = arch_of arch in
    let ba = Toolchain.Pipeline.compile_preset p ~arch a program in
    let bb = Toolchain.Pipeline.compile_preset p ~arch b_ program in
    Printf.printf "NCD(raw bytes)      = %.3f\n" (Bintuner.Tuner.ncd_of_binaries ba bb);
    Printf.printf "NCD(opcode stream)  = %.3f (the tuner's fitness, level %s)\n"
      (Bintuner.Tuner.fitness_of_binaries ba bb)
      (Compress.Lz.level_name lz_level)
  in
  Cmd.v (Cmd.info "ncd" ~doc:"Normalized compression distance between two presets.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch_arg
          $ lz_level_arg $ a $ b_)

let scan_cmd =
  let run bench source profile arch =
    let program, _ = load_program ~bench ~source in
    let p = profile_of profile in
    let arch = arch_of arch in
    let reference = Toolchain.Pipeline.compile_preset p ~arch "O2" program in
    let goodware =
      List.map
        (fun n ->
          Toolchain.Pipeline.compile_preset p ~arch "O2"
            (Corpus.program (Corpus.find n)))
        [ "429.mcf"; "coreutils"; "openssl" ]
    in
    let fleet = Av.Scanner.train ~goodware ~seed:11 reference in
    List.iter
      (fun preset ->
        let bin = Toolchain.Pipeline.compile_preset p ~arch preset program in
        Printf.printf "%-3s detections: %d/%d\n" preset
          (Av.Scanner.detections fleet bin)
          Av.Scanner.fleet_size)
      Toolchain.Flags.preset_names
  in
  Cmd.v (Cmd.info "scan" ~doc:"Train the AV fleet on the -O2 build and scan every preset.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch_arg)

let verify_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ]
             ~doc:"Restrict the sweep to one benchmark (default: whole corpus).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random-vector seed.")
  in
  let vectors =
    Arg.(value & opt int 3
         & info [ "vectors" ]
             ~doc:"Constraint-repaired random flag vectors per profile.")
  in
  let run bench seed nvec =
    let benches =
      match bench with Some n -> [ Corpus.find n ] | None -> Corpus.all
    in
    let archs = [ Isa.Insn.X86_64; Isa.Insn.X86_32; Isa.Insn.Arm; Isa.Insn.Mips ] in
    let total = ref 0 and failed = ref 0 in
    List.iter
      (fun b ->
        let program = Corpus.program b in
        List.iter
          (fun p ->
            let rng = Util.Rng.create seed in
            let random_vectors =
              List.init nvec (fun _ ->
                  let raw =
                    Array.init
                      (Array.length p.Toolchain.Flags.flags)
                      (fun _ -> Util.Rng.bool rng)
                  in
                  Toolchain.Constraints.repair p rng raw)
            in
            List.iter
              (fun arch ->
                let attempt label thunk =
                  incr total;
                  try ignore (thunk ())
                  with Toolchain.Pipeline.Verification_failed msg ->
                    incr failed;
                    Printf.printf "FAIL %s %s %s %s:\n%s\n" b.Corpus.bname
                      p.Toolchain.Flags.profile_name (Isa.Insn.arch_name arch)
                      label msg
                in
                List.iter
                  (fun preset ->
                    attempt preset (fun () ->
                        Toolchain.Pipeline.compile_preset p ~arch preset
                          program))
                  Toolchain.Flags.preset_names;
                List.iteri
                  (fun i v ->
                    attempt
                      (Printf.sprintf "random-%d" i)
                      (fun () ->
                        Toolchain.Pipeline.compile_flags p ~arch v program))
                  random_vectors)
              archs)
          Toolchain.Flags.profiles)
      benches;
    Printf.printf "verified %d compiles over %d benchmarks: %d failure(s)\n"
      !total (List.length benches) !failed;
    if !failed > 0 then exit 1
  in
  let run bench seed nvec =
    Toolchain.Pipeline.verify_default := true;
    Fun.protect
      ~finally:(fun () -> Toolchain.Pipeline.verify_default := false)
      (fun () -> run bench seed nvec)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Compile the corpus under every preset, profile, arch and a few \
          random valid flag vectors with the IR verifier on after every \
          pass.")
    Term.(const run $ bench $ seed $ vectors)

let analyze_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ]
             ~doc:"Restrict linting to one benchmark (default: whole corpus).")
  in
  let allowlist =
    Arg.(value & opt (some file) None
         & info [ "allowlist" ]
             ~doc:
               "File of known findings (one per line, as printed); findings \
                on the list are suppressed and the exit status only reflects \
                new ones.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Emit the findings as one machine-readable JSON object \
                (findings with benchmark/func/category/detail/suppressed, \
                plus fresh and suppressed counts) instead of the line \
                rendering.  Exit status is unchanged: nonzero iff any \
                fresh finding.")
  in
  let run bench source allowlist json =
    let allowed = Hashtbl.create 64 in
    (match allowlist with
    | None -> ()
    | Some path ->
      let ic = open_in path in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && not (String.length line > 0 && line.[0] = '#') then
             Hashtbl.replace allowed line ()
         done
       with End_of_file -> ());
      close_in ic);
    let benches =
      match (bench, source) with
      | _, Some _ ->
        let program, b = load_program ~bench:"" ~source in
        [ (b, program) ]
      | Some n, None ->
        let b = Corpus.find n in
        [ (b, Corpus.program b) ]
      | None, None -> List.map (fun b -> (b, Corpus.program b)) Corpus.all
    in
    let fresh = ref 0 and suppressed = ref 0 in
    let collected = ref [] in
    List.iter
      (fun ((b : Corpus.benchmark), program) ->
        (* lint the raw lowering: -O0 IR, before any pass can fold away a
           source-level oddity the lint is meant to flag *)
        let ir =
          Vir.Lower.lower_program
            ~options:
              { Vir.Lower.merge_conditionals = false; vectorize = false }
            program
        in
        List.iter
          (fun (f : Analysis.Lint.finding) ->
            let line =
              Printf.sprintf "%s/%s" b.Corpus.bname
                (Analysis.Lint.finding_to_string f)
            in
            let supp = Hashtbl.mem allowed line in
            if supp then incr suppressed else incr fresh;
            if json then
              collected :=
                Util.Json.Obj
                  [
                    ("benchmark", Util.Json.Str b.Corpus.bname);
                    ("func", Util.Json.Str f.func);
                    ("category", Util.Json.Str f.category);
                    ("detail", Util.Json.Str f.detail);
                    ("suppressed", Util.Json.Bool supp);
                  ]
                :: !collected
            else if not supp then print_endline line)
          (Analysis.Lint.lint_program ir))
      benches;
    if json then
      Util.Json.to_channel stdout
        (Util.Json.Obj
           [
             ("findings", Util.Json.List (List.rev !collected));
             ("fresh", Util.Json.Int !fresh);
             ("suppressed", Util.Json.Int !suppressed);
           ])
    else
      Printf.printf "lint: %d finding(s), %d suppressed by allowlist\n" !fresh
        !suppressed;
    if !fresh > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the pedantic MinC lint (unused locals, dead stores, \
          always-true conditions, unreachable switch arms) over the corpus.")
    Term.(const run $ bench $ source_arg $ allowlist $ json_flag)

let inspect_cmd =
  let preset =
    Arg.(value & opt string "O2" & info [ "preset" ] ~doc:"O0|O1|O2|O3|Os.")
  in
  let arch =
    Arg.(value & opt string "x86-64"
         & info [ "arch" ]
             ~doc:"Target: x86-64 | x86-32 | arm | mips | all.")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Inspect the whole corpus (overrides --bench/--source).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ]
             ~doc:
               "Write the reports as a JSON array to this file ($(b,-) = \
                stdout) instead of printing the human summaries.")
  in
  let gadget_k =
    Arg.(value & opt int Binsight.Gadgets.default_k
         & info [ "gadget-k" ]
             ~doc:"Maximum instructions per gadget in the census.")
  in
  let run bench source profile arch preset all json gadget_k =
    let p = profile_of profile in
    let archs =
      match arch with
      | "all" -> [ Isa.Insn.X86_64; Isa.Insn.X86_32; Isa.Insn.Arm; Isa.Insn.Mips ]
      | a -> [ arch_of a ]
    in
    let benches =
      if all then List.map (fun b -> (Corpus.program b, b)) Corpus.all
      else [ load_program ~bench ~source ]
    in
    let mismatches = ref 0 in
    let reports =
      (* Always compile fresh with ground-truth boundary export: the
         emit-snapshot cache cannot serve boundary-carrying compiles. *)
      List.concat_map
        (fun (program, (b : Corpus.benchmark)) ->
          List.map
            (fun arch ->
              let boundaries = Hashtbl.create 64 in
              let bin =
                Toolchain.Pipeline.compile_preset p ~arch ~boundaries preset
                  program
              in
              let r =
                Binsight.Report.inspect ~bench:b.Corpus.bname ~preset
                  ~gadget_k ~ground_truth:boundaries bin
              in
              mismatches := !mismatches + Binsight.Report.mismatch_count r;
              r)
            archs)
        benches
    in
    (match json with
    | None ->
      List.iter (fun r -> print_string (Binsight.Report.summary r)) reports
    | Some path ->
      let j = Util.Json.List (List.map Binsight.Report.to_json reports) in
      if path = "-" then Util.Json.to_channel stdout j
      else begin
        let oc = open_out path in
        Util.Json.to_channel oc j;
        close_out oc;
        Printf.printf "wrote %d report(s) to %s\n" (List.length reports) path
      end);
    if !mismatches > 0 then begin
      Printf.eprintf "inspect: %d disassembly mismatch(es)\n" !mismatches;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Statically analyze compiled binaries: verified disassembly \
          (recursive descent cross-checked against the linear sweep and \
          the compiler's true instruction boundaries), gadget census, \
          call-graph reachability, stack-depth bounds and provenance \
          features.  Exits nonzero on any disassembly mismatch.")
    Term.(const run $ bench_arg $ source_arg $ profile_arg $ arch $ preset
          $ all $ json $ gadget_k)

(* The optimizer-pass smoke gate: compile the whole corpus per profile at
   an -O2-equivalent vector with the flag-gated analysis passes enabled,
   and require every pass's telemetry counter to fire at least once.  A
   pass that never fires anywhere is a dead knob in the search space —
   exactly the regression this gate (run from tools/ci.sh) exists to
   catch. *)
let passfire_cmd =
  let counters =
    [
      ("-ftree-ccp", "-fsccp", "pass.sccp.folds");
      ("-ftree-pre", "-fnewgvn", "pass.gvn.replaced");
      ("-ftree-loop-im", "-flicm-aggressive", "pass.licm_dom.hoisted");
    ]
  in
  let run () =
    let failures = ref 0 in
    List.iter
      (fun p ->
        let vector = Array.copy (Option.get (Toolchain.Flags.preset p "O2")) in
        List.iter
          (fun (gcc_name, llvm_name, _) ->
            let name =
              if p.Toolchain.Flags.profile_name = "gcc-10.2" then gcc_name
              else llvm_name
            in
            vector.(Toolchain.Flags.flag_index p name) <- true)
          counters;
        if not (Toolchain.Constraints.valid p vector) then
          failwith "passfire: O2 + new passes is not a valid vector";
        let t = Telemetry.create () in
        Telemetry.set_global t;
        List.iter
          (fun b ->
            ignore
              (Toolchain.Pipeline.compile_flags p vector (Corpus.program b)))
          Corpus.all;
        Telemetry.set_global Telemetry.null;
        List.iter
          (fun (_, _, counter) ->
            let v = Telemetry.counter_value t counter in
            Printf.printf "%-9s %-22s %d\n" p.Toolchain.Flags.profile_name
              counter v;
            if v = 0 then incr failures)
          counters)
      Toolchain.Flags.profiles;
    if !failures > 0 then begin
      Printf.printf "passfire: %d counter(s) never fired\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "passfire"
       ~doc:
         "Compile the corpus at -O2 plus the flag-gated analysis passes and \
          check each pass's telemetry counter fires at least once per \
          profile.")
    Term.(const run $ const ())

let list_cmd =
  let run () =
    List.iter
      (fun b ->
        Printf.printf "%-18s %s\n" b.Corpus.bname (Corpus.suite_name b.suite))
      Corpus.all;
    Printf.printf "\nprofiles: %s\n"
      (String.concat ", "
         (List.map
            (fun p ->
              Printf.sprintf "%s (%d flags)" p.Toolchain.Flags.profile_name
                (Array.length p.flags))
            Toolchain.Flags.profiles))
  in
  Cmd.v (Cmd.info "list" ~doc:"List corpus benchmarks and compiler profiles.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "bintuner_cli" ~version:"1.0.0"
      ~doc:"Auto-tuning of binary code differences (PLDI'21 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; tune_cmd; serve_cmd; diff_cmd; ncd_cmd; scan_cmd; verify_cmd; analyze_cmd; inspect_cmd; passfire_cmd; list_cmd ]))
