(* The flag-gated analysis-driven optimizer passes (SCCP, GVN, dominator
   LICM), locked down by property tests before they are allowed into the
   search universe:

   - semantics preservation on *arbitrary* random CFGs (irreducible,
     unreachable, undefined-register shapes the frontend never emits),
     differentially against the reference interpreter;
   - idempotence: a second application is the identity;
   - SCCP never prunes an edge the analyses consider takeable
     (cross-checked against fresh constprop/interval solves of the
     pristine function);
   - GVN never increases the instruction count;
   - LICM only creates preheaders that dominate their loop header;

   plus structural unit tests proving each pass fires on code built to
   trigger it, and regressions for the [Loop_branch] counter-mutation
   soundness holes the new passes exposed. *)

open Vir.Ir
module CP = Analysis.Dataflow.Constprop
module IV = Analysis.Dataflow.Interval
module Iset = Analysis.Dataflow.Iset

let copy_func (f : func) : func =
  Marshal.from_string (Marshal.to_string f []) 0

(* Wrap a bare function for the interpreter: entry point, no parameters
   (reads of the former parameter register see the machine's zero-init,
   which is exactly what the analyses assume for undefined registers). *)
let mainify (f : func) : func = { (copy_func f) with fname = "main"; params = [] }

let interp ?(fuel = 200_000) (f : func) =
  try
    let r =
      Vir.Interp.run ~fuel (Test_analysis.prog_of_func f) ~input:[| 0 |]
    in
    Some (Vir.Interp.output_to_string r.output, r.return_value)
  with Vir.Interp.Out_of_fuel -> None

let passes =
  [
    ("sccp", Passes.Sccp.run);
    ("gvn", Passes.Gvn.run);
    ("licm_dom", Passes.Licm_dom.run);
  ]

(* ------------------------------------------------------------------ *)
(* Semantics preservation on random CFGs                               *)
(* ------------------------------------------------------------------ *)

let prop_semantics name pass =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: semantics preserved on random CFGs" name)
    ~count:500 QCheck.small_nat (fun seed ->
      let f = mainify (Test_analysis.random_func (seed * 13 + 5)) in
      match interp f with
      | None -> true (* original diverges: nothing to compare *)
      | Some before ->
        let g = copy_func f in
        pass g;
        (* hoisting may execute a formerly conditional instruction, so the
           bound is generous — but the transformed program must terminate
           if the original did *)
        interp ~fuel:2_000_000 g = Some before)

let prop_semantics_composed =
  QCheck.Test.make ~name:"sccp+gvn+licm_dom composed preserve semantics"
    ~count:300 QCheck.small_nat (fun seed ->
      let f = mainify (Test_analysis.random_func (seed * 29 + 3)) in
      match interp f with
      | None -> true
      | Some before ->
        let g = copy_func f in
        List.iter (fun (_, p) -> p g) passes;
        interp ~fuel:2_000_000 g = Some before)

(* ------------------------------------------------------------------ *)
(* Idempotence                                                         *)
(* ------------------------------------------------------------------ *)

let prop_idempotent name pass =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: second application is the identity" name)
    ~count:300 QCheck.small_nat (fun seed ->
      let f = Test_analysis.random_func (seed * 17 + 1) in
      pass f;
      let once = func_to_string f in
      pass f;
      func_to_string f = once)

let test_idempotent_on_fuzz () =
  (* realistic frontend IR, including calls, memory and vector code *)
  List.iter
    (fun seed ->
      List.iter
        (fun f ->
          List.iter
            (fun (name, pass) ->
              let g = copy_func f in
              pass g;
              let once = func_to_string g in
              pass g;
              Alcotest.(check string)
                (Printf.sprintf "%s idempotent on fuzz seed %d/%s" name seed
                   f.fname)
                once (func_to_string g))
            passes)
        (Test_analysis.funcs_of_fuzz seed))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* SCCP: pruned edges are statically dead                              *)
(* ------------------------------------------------------------------ *)

(* An independent re-derivation of "which successors can this block's
   terminator still take", from fresh solves of the pristine function.
   Every edge [transform] reports pruned must be absent from this set. *)
let possible_successors pristine =
  let cp_in, _ = CP.solve pristine in
  let _, iv_out = IV.solve pristine in
  fun (b : block) ->
    match Hashtbl.find_opt cp_in b.label with
    | None | Some CP.Unreached -> []
    | Some (CP.Env env0) ->
      let env = List.fold_left CP.eval_instr env0 b.instrs in
      let ienv =
        match Hashtbl.find_opt iv_out b.label with
        | Some (IV.Env e) -> Some e
        | _ -> None
      in
      let itv_of r =
        match ienv with Some e -> IV.lookup e r | None -> IV.top
      in
      (match b.term with
      | Br (c, t, e) -> (
        match CP.operand env c with
        | CP.Const v -> [ (if v <> 0 then t else e) ]
        | CP.Top -> (
          match c with
          | Reg r ->
            let itv = itv_of r in
            if itv.IV.lo > 0 || itv.IV.hi < 0 then [ t ] else [ t; e ]
          | Imm _ -> [ t; e ]))
      | Switch (v, cases, d) -> (
        match CP.operand env v with
        | CP.Const n -> [ (try List.assoc n cases with Not_found -> d) ]
        | CP.Top ->
          let itv =
            match v with Reg r -> itv_of r | Imm _ -> IV.top
          in
          d
          :: List.filter_map
               (fun (k, l) ->
                 if k >= itv.IV.lo && k <= itv.IV.hi then Some l else None)
               cases)
      | t -> successors t)

let prop_sccp_prunes_only_dead_edges =
  QCheck.Test.make ~name:"sccp: every pruned edge is statically dead"
    ~count:500 QCheck.small_nat (fun seed ->
      let f = Test_analysis.random_func (seed * 11 + 7) in
      let pristine = copy_func f in
      let stats = Passes.Sccp.transform f in
      let possible = possible_successors pristine in
      List.for_all
        (fun (src, dst) ->
          match List.find_opt (fun b -> b.label = src) pristine.blocks with
          | None -> false
          | Some b -> not (List.mem dst (possible b)))
        stats.Passes.Sccp.pruned_edges)

(* ------------------------------------------------------------------ *)
(* GVN: instruction count never increases                              *)
(* ------------------------------------------------------------------ *)

let prop_gvn_count =
  QCheck.Test.make ~name:"gvn: instruction count never increases" ~count:500
    QCheck.small_nat (fun seed ->
      let f = Test_analysis.random_func (seed * 23 + 9) in
      let before = func_instr_count f in
      Passes.Gvn.run f;
      func_instr_count f <= before)

let test_gvn_count_on_fuzz () =
  List.iter
    (fun seed ->
      List.iter
        (fun f ->
          let g = copy_func f in
          let before = func_instr_count g in
          Passes.Gvn.run g;
          Alcotest.(check bool)
            (Printf.sprintf "no growth on fuzz seed %d/%s" seed f.fname)
            true
            (func_instr_count g <= before))
        (Test_analysis.funcs_of_fuzz seed))
    [ 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* LICM: preheaders dominate their headers                             *)
(* ------------------------------------------------------------------ *)

let check_preheaders_dominate name (f : func) =
  let before_label = f.next_label in
  Passes.Licm_dom.run f;
  let dom = Passes.Cfg_utils.dominators f in
  List.for_all
    (fun b ->
      b.label < before_label
      ||
      (* every block the pass created is a preheader: a single [Jmp] to
         its header, and it must dominate that header *)
      match b.term with
      | Jmp h -> (
        b.instrs <> []
        &&
        match Hashtbl.find_opt dom h with
        | Some doms -> Iset.mem b.label doms
        | None -> false)
      | _ ->
        Alcotest.failf "%s: new block %d is not a preheader" name b.label)
    f.blocks

let prop_licm_preheaders_dominate =
  QCheck.Test.make ~name:"licm_dom: preheaders dominate their loops"
    ~count:500 QCheck.small_nat (fun seed ->
      check_preheaders_dominate "random"
        (Test_analysis.random_func (seed * 19 + 11)))

let test_licm_preheaders_on_fuzz () =
  List.iter
    (fun seed ->
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "preheaders dominate, fuzz seed %d/%s" seed
               f.fname)
            true
            (check_preheaders_dominate "fuzz" (copy_func f)))
        (Test_analysis.funcs_of_fuzz seed))
    [ 8; 9; 10 ]

(* ------------------------------------------------------------------ *)
(* Structural unit tests: each pass fires on its trigger pattern       *)
(* ------------------------------------------------------------------ *)

let mkblock = Test_analysis.mkblock

let test_sccp_folds_constant_branch () =
  let f =
    Test_analysis.mkfunc ~nregs:4
      [
        mkblock 0 [ Mov (1, Imm 5) ] (Br (Reg 1, 1, 2));
        mkblock 1 [ Print_int (Imm 1) ] (Ret (Some (Imm 0)));
        mkblock 2 [ Print_int (Imm 99) ] (Ret (Some (Imm 1)));
      ]
  in
  Passes.Sccp.run f;
  Alcotest.(check bool) "dead arm removed" false
    (List.exists
       (fun b -> List.mem (Print_int (Imm 99)) b.instrs)
       f.blocks);
  Alcotest.(check bool) "live arm kept" true
    (List.exists (fun b -> List.mem (Print_int (Imm 1)) b.instrs) f.blocks)

let test_sccp_prunes_switch_arm_by_interval () =
  (* r1 = r0 land 3 ∈ [0,3]: the arm at 5 is provably dead, the arm at 2
     is not *)
  let f =
    Test_analysis.mkfunc ~params:[ 0 ] ~nregs:4
      [
        mkblock 0
          [ Bin (And, 1, Reg 0, Imm 3) ]
          (Switch (Reg 1, [ (2, 1); (5, 2) ], 3));
        mkblock 1 [ Print_int (Imm 2) ] (Ret (Some (Imm 0)));
        mkblock 2 [ Print_int (Imm 99) ] (Ret (Some (Imm 0)));
        mkblock 3 [ Print_int (Imm 3) ] (Ret (Some (Imm 0)));
      ]
  in
  let stats = Passes.Sccp.transform f in
  Alcotest.(check (list (pair int int)))
    "exactly the out-of-range arm pruned"
    [ (0, 2) ]
    stats.Passes.Sccp.pruned_edges;
  Alcotest.(check bool) "in-range arm kept" true
    (match (List.hd f.blocks).term with
    | Switch (Reg 1, [ (2, 1) ], 3) -> true
    | _ -> false)

let test_sccp_loop_branch_counter_not_folded () =
  (* The counter of a [Loop_branch] is decremented by the terminator; the
     constprop instance must not let its initial constant survive the
     back edge (regression for the transfer-function fix). *)
  let f =
    Test_analysis.mkfunc ~nregs:3
      [
        mkblock 0 [ Mov (1, Imm 3) ] (Jmp 1);
        mkblock 1 [ Print_int (Reg 1) ] (Loop_branch (1, 1, 2));
        mkblock 2 [] (Ret (Some (Imm 0)));
      ]
  in
  let before = interp (mainify f) in
  let g = copy_func f in
  Passes.Sccp.run g;
  Alcotest.(check bool) "counter print not constant-folded" true
    (List.exists
       (fun b -> List.mem (Print_int (Reg 1)) b.instrs)
       g.blocks);
  Alcotest.(check bool) "behaviour unchanged" true
    (interp (mainify g) = before && before <> None)

let test_gvn_eliminates_dominated_redundancy () =
  let f =
    Test_analysis.mkfunc ~params:[ 0 ] ~nregs:4
      [
        mkblock 0 [ Bin (Mul, 1, Reg 0, Reg 0) ] (Br (Reg 0, 1, 2));
        mkblock 1
          [ Bin (Mul, 2, Reg 0, Reg 0); Print_int (Reg 2) ]
          (Jmp 2);
        mkblock 2 [] (Ret (Some (Reg 1)));
      ]
  in
  Passes.Gvn.run f;
  let b1 = List.find (fun b -> b.label = 1) f.blocks in
  Alcotest.(check bool) "recomputation replaced by copy" true
    (List.mem (Mov (2, Reg 1)) b1.instrs)

let test_gvn_canonicalizes_commutative_operands () =
  let f =
    Test_analysis.mkfunc ~params:[ 0 ] ~nregs:5
      [
        mkblock 0
          [ Mov (1, Imm 7); Bin (Add, 2, Reg 0, Reg 1) ]
          (Br (Reg 0, 1, 2));
        mkblock 1
          [ Bin (Add, 3, Reg 1, Reg 0); Print_int (Reg 3) ]
          (Jmp 2);
        mkblock 2 [] (Ret (Some (Reg 2)));
      ]
  in
  Passes.Gvn.run f;
  let b1 = List.find (fun b -> b.label = 1) f.blocks in
  Alcotest.(check bool) "swapped operands still match" true
    (List.mem (Mov (3, Reg 2)) b1.instrs)

let test_gvn_respects_definition_order () =
  (* r5 reads r1 *before* its definition (value 0); r6 reads it after.
     The two Adds have equal keys but different values — GVN must not
     merge them, because r1's definition does not dominate r5's site. *)
  let f =
    Test_analysis.mkfunc ~nregs:8
      [
        mkblock 0
          [
            Bin (Add, 5, Reg 1, Imm 1);
            Read_input (1, Imm 0);
            Bin (Add, 6, Reg 1, Imm 1);
            Print_int (Reg 5);
            Print_int (Reg 6);
          ]
          (Ret (Some (Imm 0)));
      ]
  in
  let g = copy_func f in
  Passes.Gvn.run g;
  Alcotest.(check string) "no unsound merge" (func_to_string f)
    (func_to_string g)

let test_licm_hoists_invariant_chain () =
  (* r2 and r3 form an invariant chain: both must leave the loop in ONE
     application (the single-round [Ir_opt.licm] needs two) *)
  let f =
    Test_analysis.mkfunc ~params:[ 0 ] ~nregs:8
      [
        mkblock 0 [ Mov (1, Imm 10) ] (Jmp 1);
        mkblock 1
          [
            Bin (Mul, 2, Reg 0, Reg 0);
            Bin (Add, 3, Reg 2, Imm 1);
            Bin (Add, 4, Reg 4, Imm 1);
            Bin (Slt, 5, Reg 4, Reg 1);
          ]
          (Br (Reg 5, 1, 2));
        mkblock 2 [] (Ret (Some (Reg 3)));
      ]
  in
  let before = interp (mainify f) in
  Passes.Licm_dom.run f;
  let b1 = List.find (fun b -> b.label = 1) f.blocks in
  let defs b = List.filter_map instr_def b.instrs in
  Alcotest.(check bool) "chain left the loop" true
    ((not (List.mem 2 (defs b1))) && not (List.mem 3 (defs b1)));
  let pre = List.find (fun b -> b.label >= 3) f.blocks in
  Alcotest.(check bool) "chain sits in the preheader, in dependency order"
    true
    (match defs pre with [ 2; 3 ] -> true | _ -> false);
  Alcotest.(check bool) "behaviour unchanged" true
    (interp (mainify f) = before && before <> None)

let test_licm_leaves_conditional_def () =
  (* r2's definition is guarded: iterations where r0 is 0 read r2 = 0 at
     the print.  Hoisting would speculate the multiply — the dominance
     check must refuse. *)
  let f =
    Test_analysis.mkfunc ~params:[ 0 ] ~nregs:8
      [
        mkblock 0 [ Mov (1, Imm 3) ] (Jmp 1);
        mkblock 1 [] (Br (Reg 0, 2, 3));
        mkblock 2 [ Bin (Mul, 2, Reg 0, Imm 5) ] (Jmp 3);
        mkblock 3 [ Print_int (Reg 2) ] (Loop_branch (1, 1, 4));
        mkblock 4 [] (Ret (Some (Imm 0)));
      ]
  in
  let g = copy_func f in
  Passes.Licm_dom.run g;
  let b2 = List.find (fun b -> b.label = 2) g.blocks in
  Alcotest.(check bool) "guarded def not hoisted" true
    (List.mem (Bin (Mul, 2, Reg 0, Imm 5)) b2.instrs)

let test_licm_loop_branch_counter_is_variant () =
  (* regression for both LICM implementations: a [Loop_branch] counter is
     loop-varying even though no in-loop *instruction* defines it *)
  let mk () =
    Test_analysis.mkfunc ~nregs:4
      [
        mkblock 0 [ Mov (1, Imm 3) ] (Jmp 1);
        mkblock 1
          [ Bin (Add, 2, Reg 1, Imm 0); Print_int (Reg 2) ]
          (Loop_branch (1, 1, 2));
        mkblock 2 [] (Ret (Some (Imm 0)));
      ]
  in
  let reference = interp (mainify (mk ())) in
  Alcotest.(check bool) "reference terminates" true (reference <> None);
  List.iter
    (fun (name, pass) ->
      let f = mk () in
      pass f;
      let b1 = List.find (fun b -> b.label = 1) f.blocks in
      Alcotest.(check bool)
        (name ^ ": counter-derived value stays in the loop")
        true
        (List.mem (Bin (Add, 2, Reg 1, Imm 0)) b1.instrs);
      Alcotest.(check bool)
        (name ^ ": behaviour unchanged")
        true
        (interp (mainify f) = reference))
    [ ("ir_opt.licm", Passes.Ir_opt.licm); ("licm_dom", Passes.Licm_dom.run) ]

(* ------------------------------------------------------------------ *)
(* Telemetry counters                                                  *)
(* ------------------------------------------------------------------ *)

let test_pass_counters_fire () =
  let t = Telemetry.create () in
  Telemetry.set_global t;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_global Telemetry.null)
    (fun () ->
      let f =
        Test_analysis.mkfunc ~params:[ 0 ] ~nregs:8
          [
            mkblock 0
              [ Mov (1, Imm 5); Bin (Mul, 2, Reg 0, Reg 0) ]
              (Br (Reg 1, 1, 3));
            mkblock 1
              [ Bin (Mul, 3, Reg 0, Reg 0); Bin (Add, 4, Reg 4, Imm 1) ]
              (Br (Reg 4, 1, 2));
            mkblock 2 [] (Ret (Some (Reg 3)));
            mkblock 3 [ Print_int (Imm 99) ] (Ret (Some (Imm 1)));
          ]
      in
      Passes.Sccp.run (copy_func f);
      Passes.Gvn.run (copy_func f);
      Passes.Licm_dom.run (copy_func f));
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " fired") true (Telemetry.counter_value t c > 0))
    [ "pass.sccp.folds"; "pass.sccp.pruned_edges"; "pass.gvn.replaced" ]

let tests =
  List.concat
    [
      List.map
        (fun (name, pass) ->
          QCheck_alcotest.to_alcotest (prop_semantics name pass))
        passes;
      List.map
        (fun (name, pass) ->
          QCheck_alcotest.to_alcotest (prop_idempotent name pass))
        passes;
      [
        QCheck_alcotest.to_alcotest prop_semantics_composed;
        QCheck_alcotest.to_alcotest prop_sccp_prunes_only_dead_edges;
        QCheck_alcotest.to_alcotest prop_gvn_count;
        QCheck_alcotest.to_alcotest prop_licm_preheaders_dominate;
        Alcotest.test_case "idempotent on fuzzed IR" `Slow
          test_idempotent_on_fuzz;
        Alcotest.test_case "gvn no growth on fuzzed IR" `Slow
          test_gvn_count_on_fuzz;
        Alcotest.test_case "licm preheaders on fuzzed IR" `Slow
          test_licm_preheaders_on_fuzz;
        Alcotest.test_case "sccp folds constant branch" `Quick
          test_sccp_folds_constant_branch;
        Alcotest.test_case "sccp prunes switch arm by interval" `Quick
          test_sccp_prunes_switch_arm_by_interval;
        Alcotest.test_case "sccp loop_branch counter" `Quick
          test_sccp_loop_branch_counter_not_folded;
        Alcotest.test_case "gvn eliminates dominated redundancy" `Quick
          test_gvn_eliminates_dominated_redundancy;
        Alcotest.test_case "gvn commutative canonicalization" `Quick
          test_gvn_canonicalizes_commutative_operands;
        Alcotest.test_case "gvn respects definition order" `Quick
          test_gvn_respects_definition_order;
        Alcotest.test_case "licm hoists invariant chain" `Quick
          test_licm_hoists_invariant_chain;
        Alcotest.test_case "licm leaves conditional def" `Quick
          test_licm_leaves_conditional_def;
        Alcotest.test_case "licm loop_branch counter" `Quick
          test_licm_loop_branch_counter_is_variant;
        Alcotest.test_case "pass telemetry counters fire" `Quick
          test_pass_counters_fire;
      ];
    ]
