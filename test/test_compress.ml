(* Tests for the LZ compressor and NCD. *)

let roundtrip s =
  Compress.Lz.decompress (Compress.Lz.compress s) = s

let test_roundtrip_basics () =
  List.iter
    (fun s -> Alcotest.(check bool) "roundtrip" true (roundtrip s))
    [
      "";
      "a";
      "ab";
      "aaaaaaaaaaaaaaaaaaaaaaaa";
      "abcabcabcabcabcabcabc";
      String.init 256 Char.chr;
      String.concat "" (List.init 40 (fun i -> Printf.sprintf "block%d" (i mod 5)));
    ]

let test_compresses_repetition () =
  let rep = String.concat "" (List.init 100 (fun _ -> "hello world ")) in
  let c = Compress.Lz.compressed_size rep in
  Alcotest.(check bool) "repetition shrinks"
    true
    (c < String.length rep / 4)

let test_random_incompressible () =
  let rng = Util.Rng.create 5 in
  let s = String.init 2000 (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  let c = Compress.Lz.compressed_size s in
  Alcotest.(check bool) "random stays large" true (c > 1800)

let prop_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip" ~count:200
    QCheck.(string_gen_of_size QCheck.Gen.(0 -- 2000) QCheck.Gen.char)
    roundtrip

let prop_roundtrip_structured =
  (* strings with heavy repetition exercise the match finder paths *)
  QCheck.Test.make ~name:"lz roundtrip structured" ~count:100
    QCheck.(list_of_size Gen.(0 -- 50) (pair (string_gen_of_size Gen.(1 -- 8) Gen.printable) small_nat))
    (fun chunks ->
      let s =
        String.concat ""
          (List.concat_map
             (fun (chunk, reps) -> List.init (reps mod 20) (fun _ -> chunk))
             chunks)
      in
      roundtrip s)

let expect_invalid label f =
  match f () with
  | (_ : string) -> Alcotest.fail (label ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_decompress_truncated () =
  (* the range decoder used to synthesize phantom zero bytes once the
     real input ran out, so a chopped stream quietly decoded to junk
     instead of failing *)
  let packed = Compress.Lz.compress "the quick brown fox jumps over the lazy dog" in
  expect_invalid "empty" (fun () -> Compress.Lz.decompress "");
  expect_invalid "header only" (fun () ->
      Compress.Lz.decompress (String.sub packed 0 4));
  expect_invalid "chopped payload" (fun () ->
      Compress.Lz.decompress (String.sub packed 0 (4 + ((String.length packed - 4) / 2))))

let test_decompress_oversized_header () =
  (* an output length larger than the coded payload supports must fail
     fast, not invent bytes that were never encoded *)
  let s = String.concat "" (List.init 30 (fun i -> Printf.sprintf "word%d " i)) in
  let packed = Compress.Lz.compress s in
  let lied =
    let n = String.length s + 4096 in
    String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xFF))
    ^ String.sub packed 4 (String.length packed - 4)
  in
  expect_invalid "oversized header" (fun () -> Compress.Lz.decompress lied)

let test_ncd_identity () =
  let s = String.concat "" (List.init 50 (fun i -> string_of_int (i * i))) in
  Alcotest.(check bool) "ncd(x,x) small" true (Compress.Ncd.distance s s < 0.2)

let test_ncd_unrelated () =
  let rng = Util.Rng.create 9 in
  let mk () = String.init 1500 (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "ncd unrelated high" true (Compress.Ncd.distance a b > 0.8)

let test_ncd_partial_overlap_ordering () =
  let rng = Util.Rng.create 13 in
  let mk n = String.init n (fun _ -> Char.chr (Util.Rng.int rng 64 + 32)) in
  let base = mk 1200 in
  let near = String.sub base 0 1000 ^ mk 200 in
  let far = mk 1200 in
  let d_near = Compress.Ncd.distance base near in
  let d_far = Compress.Ncd.distance base far in
  Alcotest.(check bool) "more overlap, smaller distance" true (d_near < d_far)

(* --- the pair-size lower bound and the capped compressor --- *)

let bound_levels = [ Compress.Lz.Greedy; Compress.Lz.Chained 128; Compress.Lz.Chained 4 ]

let pair_gen =
  (* random bytes plus a structured tail so the pair stream exercises both
     the literal and the cross-segment match paths of every finder *)
  QCheck.(
    pair
      (string_gen_of_size Gen.(0 -- 600) Gen.char)
      (pair (string_gen_of_size Gen.(0 -- 600) Gen.char) small_nat))

let structure (y, reps) = y ^ String.concat "" (List.init (reps mod 8) (fun _ -> y))

(* C(x·y) >= max(C(x), C(y)): concatenating can never compress below
   either part alone.  This is the inequality the NCD early-exit prunes
   with, so it is pinned at every level, not just the default. *)
let prop_pair_size_lower_bound =
  QCheck.Test.make ~name:"pair size >= max of solo sizes, every level" ~count:120
    pair_gen
    (fun (x, tail) ->
      let y = structure tail in
      List.for_all
        (fun level ->
          let cx = Compress.Lz.compressed_size ~level x in
          let cy = Compress.Lz.compressed_size ~level y in
          Compress.Lz.compressed_size_pair ~level x y >= max cx cy)
        bound_levels)

(* Soundness of the capped compressor against the exact one: [Size n] is
   the exact size to the bit, and [At_most u] really is an upper bound
   that also honours the cap — at every level, for caps below, at and
   above the exact size. *)
let prop_bounded_pair_sound =
  QCheck.Test.make ~name:"capped pair compression sound vs exact" ~count:80
    QCheck.(pair pair_gen small_nat)
    (fun ((x, tail), capseed) ->
      let y = structure tail in
      List.for_all
        (fun level ->
          let exact = Compress.Lz.compressed_size_pair ~level x y in
          List.for_all
            (fun cap ->
              match Compress.Lz.compressed_size_pair_bounded ~level ~cap x y with
              | Compress.Lz.Size n -> n = exact
              | Compress.Lz.At_most u -> exact <= u && u <= cap)
            [ -1; 0; exact - 1 - (capseed mod 16); exact; exact + capseed ])
        bound_levels)

(* The batch scorer with an incumbent vs exhaustive scoring: every score
   strictly above the incumbent is exact, every pruned score sits in
   [exact, incumbent], and the batch's argmax/max are preserved whenever
   anything beats the incumbent.  Pruned upper bounds must never pollute
   the shared size cache — re-scoring exhaustively through the same cache
   must still be exact. *)
let prop_against_incumbent_equivalent =
  QCheck.Test.make ~name:"ncd early-exit preserves batch argmax and winners"
    ~count:40
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) pair_gen)
        (pair (string_gen_of_size Gen.(1 -- 400) Gen.char) small_nat))
    (fun (cands, (baseline, iseed)) ->
      let xs = Array.of_list (List.map (fun (x, t) -> x ^ structure t) cands) in
      let exact_cache = Compress.Sizecache.create () in
      let exact =
        Compress.Ncd.against ~cache:exact_cache ~baseline xs
      in
      let mx = Array.fold_left max neg_infinity exact in
      (* incumbents below, within and above the batch's score range *)
      let incumbent =
        match iseed mod 4 with
        | 0 -> neg_infinity
        | 1 -> 0.0
        | 2 -> mx *. 0.9
        | _ -> mx +. 0.05
      in
      let cache = Compress.Sizecache.create () in
      let pruned = Compress.Ncd.against ~incumbent ~cache ~baseline xs in
      let sound =
        Array.for_all2
          (fun e p ->
            if e > incumbent then p = e else p >= e && p <= max incumbent e)
          exact pruned
      in
      let argmax a =
        let best = ref 0 in
        Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
        !best
      in
      let winners_kept =
        mx <= incumbent
        || (argmax pruned = argmax exact
           && Array.fold_left max neg_infinity pruned = mx)
      in
      (* the same cache, re-queried exhaustively: still exact *)
      let rescore = Compress.Ncd.against ~cache ~baseline xs in
      sound && winners_kept && rescore = exact)

let prop_ncd_range =
  QCheck.Test.make ~name:"ncd in [0, ~1.1]" ~count:60
    QCheck.(pair (string_gen_of_size Gen.(1 -- 500) Gen.char)
              (string_gen_of_size Gen.(1 -- 500) Gen.char))
    (fun (a, b) ->
      let d = Compress.Ncd.distance a b in
      d >= 0.0 && d <= 1.15)

let tests =
  [
    Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basics;
    Alcotest.test_case "compresses repetition" `Quick test_compresses_repetition;
    Alcotest.test_case "random incompressible" `Quick test_random_incompressible;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_structured;
    Alcotest.test_case "decompress truncated" `Quick test_decompress_truncated;
    Alcotest.test_case "decompress oversized header" `Quick
      test_decompress_oversized_header;
    Alcotest.test_case "ncd identity" `Quick test_ncd_identity;
    Alcotest.test_case "ncd unrelated" `Quick test_ncd_unrelated;
    Alcotest.test_case "ncd ordering" `Quick test_ncd_partial_overlap_ordering;
    QCheck_alcotest.to_alcotest prop_ncd_range;
    QCheck_alcotest.to_alcotest prop_pair_size_lower_bound;
    QCheck_alcotest.to_alcotest prop_bounded_pair_sound;
    QCheck_alcotest.to_alcotest prop_against_incumbent_equivalent;
  ]
