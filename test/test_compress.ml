(* Tests for the LZ compressor and NCD. *)

let roundtrip s =
  Compress.Lz.decompress (Compress.Lz.compress s) = s

let test_roundtrip_basics () =
  List.iter
    (fun s -> Alcotest.(check bool) "roundtrip" true (roundtrip s))
    [
      "";
      "a";
      "ab";
      "aaaaaaaaaaaaaaaaaaaaaaaa";
      "abcabcabcabcabcabcabc";
      String.init 256 Char.chr;
      String.concat "" (List.init 40 (fun i -> Printf.sprintf "block%d" (i mod 5)));
    ]

let test_compresses_repetition () =
  let rep = String.concat "" (List.init 100 (fun _ -> "hello world ")) in
  let c = Compress.Lz.compressed_size rep in
  Alcotest.(check bool) "repetition shrinks"
    true
    (c < String.length rep / 4)

let test_random_incompressible () =
  let rng = Util.Rng.create 5 in
  let s = String.init 2000 (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  let c = Compress.Lz.compressed_size s in
  Alcotest.(check bool) "random stays large" true (c > 1800)

let prop_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip" ~count:200
    QCheck.(string_gen_of_size QCheck.Gen.(0 -- 2000) QCheck.Gen.char)
    roundtrip

let prop_roundtrip_structured =
  (* strings with heavy repetition exercise the match finder paths *)
  QCheck.Test.make ~name:"lz roundtrip structured" ~count:100
    QCheck.(list_of_size Gen.(0 -- 50) (pair (string_gen_of_size Gen.(1 -- 8) Gen.printable) small_nat))
    (fun chunks ->
      let s =
        String.concat ""
          (List.concat_map
             (fun (chunk, reps) -> List.init (reps mod 20) (fun _ -> chunk))
             chunks)
      in
      roundtrip s)

let expect_invalid label f =
  match f () with
  | (_ : string) -> Alcotest.fail (label ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_decompress_truncated () =
  (* the range decoder used to synthesize phantom zero bytes once the
     real input ran out, so a chopped stream quietly decoded to junk
     instead of failing *)
  let packed = Compress.Lz.compress "the quick brown fox jumps over the lazy dog" in
  expect_invalid "empty" (fun () -> Compress.Lz.decompress "");
  expect_invalid "header only" (fun () ->
      Compress.Lz.decompress (String.sub packed 0 4));
  expect_invalid "chopped payload" (fun () ->
      Compress.Lz.decompress (String.sub packed 0 (4 + ((String.length packed - 4) / 2))))

let test_decompress_oversized_header () =
  (* an output length larger than the coded payload supports must fail
     fast, not invent bytes that were never encoded *)
  let s = String.concat "" (List.init 30 (fun i -> Printf.sprintf "word%d " i)) in
  let packed = Compress.Lz.compress s in
  let lied =
    let n = String.length s + 4096 in
    String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xFF))
    ^ String.sub packed 4 (String.length packed - 4)
  in
  expect_invalid "oversized header" (fun () -> Compress.Lz.decompress lied)

let test_ncd_identity () =
  let s = String.concat "" (List.init 50 (fun i -> string_of_int (i * i))) in
  Alcotest.(check bool) "ncd(x,x) small" true (Compress.Ncd.distance s s < 0.2)

let test_ncd_unrelated () =
  let rng = Util.Rng.create 9 in
  let mk () = String.init 1500 (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "ncd unrelated high" true (Compress.Ncd.distance a b > 0.8)

let test_ncd_partial_overlap_ordering () =
  let rng = Util.Rng.create 13 in
  let mk n = String.init n (fun _ -> Char.chr (Util.Rng.int rng 64 + 32)) in
  let base = mk 1200 in
  let near = String.sub base 0 1000 ^ mk 200 in
  let far = mk 1200 in
  let d_near = Compress.Ncd.distance base near in
  let d_far = Compress.Ncd.distance base far in
  Alcotest.(check bool) "more overlap, smaller distance" true (d_near < d_far)

let prop_ncd_range =
  QCheck.Test.make ~name:"ncd in [0, ~1.1]" ~count:60
    QCheck.(pair (string_gen_of_size Gen.(1 -- 500) Gen.char)
              (string_gen_of_size Gen.(1 -- 500) Gen.char))
    (fun (a, b) ->
      let d = Compress.Ncd.distance a b in
      d >= 0.0 && d <= 1.15)

let tests =
  [
    Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basics;
    Alcotest.test_case "compresses repetition" `Quick test_compresses_repetition;
    Alcotest.test_case "random incompressible" `Quick test_random_incompressible;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_structured;
    Alcotest.test_case "decompress truncated" `Quick test_decompress_truncated;
    Alcotest.test_case "decompress oversized header" `Quick
      test_decompress_oversized_header;
    Alcotest.test_case "ncd identity" `Quick test_ncd_identity;
    Alcotest.test_case "ncd unrelated" `Quick test_ncd_unrelated;
    Alcotest.test_case "ncd ordering" `Quick test_ncd_partial_overlap_ordering;
    QCheck_alcotest.to_alcotest prop_ncd_range;
  ]
