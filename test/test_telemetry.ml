(* Tests for the telemetry layer: no-op semantics of the disabled
   instance, aggregation, the ndjson event stream, thread-safety across
   domains, and the global-instance plumbing the tuning stack uses. *)

exception Probe

(* substring search without the [Str] dependency *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_null_is_noop () =
  let t = Telemetry.null in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  (* operations neither fail nor record anything *)
  Alcotest.(check int) "span passes value through" 41
    (Telemetry.span t "x" (fun () -> 41));
  Telemetry.count t "c";
  Telemetry.gauge t "g" 3.0;
  Alcotest.(check int) "no counter" 0 (Telemetry.counter_value t "c");
  Alcotest.(check int) "no span" 0 (Telemetry.span_calls t "x");
  Alcotest.(check bool) "summary says disabled" true
    (String.length (Telemetry.summary t) > 0);
  (* exceptions still propagate through a disabled span *)
  Alcotest.check_raises "raise through null span" Probe (fun () ->
      Telemetry.span t "x" (fun () -> raise Probe))

let test_aggregation () =
  let t = Telemetry.create () in
  Alcotest.(check bool) "enabled" true (Telemetry.enabled t);
  ignore (Telemetry.span t "work" (fun () -> 1));
  ignore (Telemetry.span t "work" (fun () -> 2));
  Telemetry.count t "events";
  Telemetry.count t ~by:4 "events";
  Telemetry.gauge t "depth" 2.0;
  Telemetry.gauge t "depth" 7.0;
  Telemetry.gauge t "depth" 3.0;
  Alcotest.(check int) "span calls" 2 (Telemetry.span_calls t "work");
  Alcotest.(check bool) "span seconds non-negative" true
    (Telemetry.span_seconds t "work" >= 0.0);
  Alcotest.(check int) "counter sums" 5 (Telemetry.counter_value t "events");
  let s = Telemetry.summary t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (contains s needle))
    [ "work"; "events"; "depth" ]

let test_span_records_on_exception () =
  let t = Telemetry.create () in
  Alcotest.check_raises "re-raised" Probe (fun () ->
      Telemetry.span t "failing" (fun () -> raise Probe));
  Alcotest.(check int) "span still recorded" 1
    (Telemetry.span_calls t "failing")

(* pull one field out of a flat one-line JSON object without a JSON
   dependency: the emitter writes ["name":"<value>"] unescaped-quote-free *)
let json_field line key =
  let marker = "\"" ^ key ^ "\":\"" in
  let m = String.length marker and n = String.length line in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then begin
      let start = i + m in
      let stop = String.index_from line start '"' in
      Some (String.sub line start (stop - start))
    end
    else find (i + 1)
  in
  find 0

let test_ndjson_stream () =
  let buf = Buffer.create 256 in
  let t = Telemetry.create ~sink:(Telemetry.Buffer buf) () in
  ignore (Telemetry.span t ~attrs:[ ("k", "v") ] "alpha" (fun () -> ()));
  Telemetry.count t "beta";
  Telemetry.gauge t "gamma" 1.5;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "three events" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a json object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check (list (option string)))
    "event names in order"
    [ Some "alpha"; Some "beta"; Some "gamma" ]
    (List.map (fun l -> json_field l "name") lines);
  (* the span line carries its attribute *)
  Alcotest.(check (option string)) "span attr" (Some "v")
    (json_field (List.hd lines) "k")

let test_ndjson_escaping () =
  let buf = Buffer.create 64 in
  let t = Telemetry.create ~sink:(Telemetry.Buffer buf) () in
  Telemetry.count t "quote\"back\\slash";
  let line = String.trim (Buffer.contents buf) in
  Alcotest.(check bool) "escaped quote" true
    (contains line "quote\\\"back\\\\slash")

let test_cost_split_in_summary () =
  let t = Telemetry.create () in
  ignore (Telemetry.span t "tuner.compile" (fun () -> ()));
  ignore (Telemetry.span t "tuner.ncd" (fun () -> ()));
  ignore (Telemetry.span t "tuner.binhunt" (fun () -> ()));
  let s = Telemetry.summary t in
  Alcotest.(check bool) "cost split present" true (contains s "cost split")

let test_multidomain_counts () =
  (* concurrent recording from several domains must neither crash nor
     lose increments *)
  let t = Telemetry.create () in
  let per_domain = 2000 and domains = 4 in
  let work () =
    for _ = 1 to per_domain do
      Telemetry.count t "hits";
      ignore (Telemetry.span t "tick" (fun () -> ()))
    done
  in
  let ds = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost counts" (domains * per_domain)
    (Telemetry.counter_value t "hits");
  Alcotest.(check int) "no lost spans" (domains * per_domain)
    (Telemetry.span_calls t "tick")

let test_global_default_disabled () =
  (* the tuning stack runs against the global instance; out of the box it
     must be the disabled null instance *)
  Alcotest.(check bool) "global starts disabled" false
    (Telemetry.enabled (Telemetry.global ()));
  ignore (Telemetry.with_span "x" (fun () -> ()));
  Telemetry.add_count "x";
  Telemetry.set_gauge "x" 1.0;
  Alcotest.(check int) "still nothing recorded" 0
    (Telemetry.counter_value (Telemetry.global ()) "x")

let test_set_global () =
  let t = Telemetry.create () in
  Telemetry.set_global t;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_global Telemetry.null)
    (fun () ->
      ignore (Telemetry.with_span "g" (fun () -> ()));
      Telemetry.add_count ~by:2 "gc";
      Telemetry.set_gauge "gg" 9.0;
      Alcotest.(check int) "span via global" 1 (Telemetry.span_calls t "g");
      Alcotest.(check int) "count via global" 2 (Telemetry.counter_value t "gc"))

let tests =
  [
    Alcotest.test_case "null is no-op" `Quick test_null_is_noop;
    Alcotest.test_case "aggregation" `Quick test_aggregation;
    Alcotest.test_case "span on exception" `Quick test_span_records_on_exception;
    Alcotest.test_case "ndjson stream" `Quick test_ndjson_stream;
    Alcotest.test_case "ndjson escaping" `Quick test_ndjson_escaping;
    Alcotest.test_case "cost split" `Quick test_cost_split_in_summary;
    Alcotest.test_case "multi-domain counts" `Quick test_multidomain_counts;
    Alcotest.test_case "global default disabled" `Quick
      test_global_default_disabled;
    Alcotest.test_case "set global" `Quick test_set_global;
  ]
