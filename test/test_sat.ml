(* Tests for the DPLL solver and the flag-constraint layer. *)

open Sat.Dpll

let test_trivial_sat () =
  match solve [ [ Pos 0 ] ] with
  | Sat a -> Alcotest.(check bool) "x0 true" true a.(0)
  | Unsat -> Alcotest.fail "expected sat"

let test_trivial_unsat () =
  match solve [ [ Pos 0 ]; [ Neg 0 ] ] with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "expected unsat"

let test_implication_chain () =
  (* x0 → x1 → x2 → x3, x0 asserted *)
  let cnf = [ [ Pos 0 ]; [ Neg 0; Pos 1 ]; [ Neg 1; Pos 2 ]; [ Neg 2; Pos 3 ] ] in
  match solve cnf with
  | Sat a ->
    Alcotest.(check bool) "x3 forced" true a.(3)
  | Unsat -> Alcotest.fail "expected sat"

let test_3sat_backtracking () =
  (* needs a decision and a backtrack *)
  let cnf =
    [ [ Pos 0; Pos 1 ]; [ Neg 0; Pos 2 ]; [ Neg 1; Neg 2 ]; [ Pos 2; Pos 1 ] ]
  in
  match solve cnf with
  | Sat a -> Alcotest.(check bool) "assignment satisfies" true (eval a cnf)
  | Unsat -> Alcotest.fail "expected sat"

let test_assumptions () =
  let cnf = [ [ Neg 0; Pos 1 ] ] in
  (match solve_with_assumptions cnf [ Pos 0; Neg 1 ] with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "x0 ∧ ¬x1 violates x0→x1");
  match solve_with_assumptions cnf [ Pos 0; Pos 1 ] with
  | Sat _ -> ()
  | Unsat -> Alcotest.fail "x0 ∧ x1 is fine"

let test_pigeonhole_2_1 () =
  (* two pigeons, one hole: p0h0, p1h0, ¬(p0h0 ∧ p1h0) *)
  match solve [ [ Pos 0 ]; [ Pos 1 ]; [ Neg 0; Neg 1 ] ] with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "expected unsat"

let prop_random_cnf_sound =
  (* whenever the solver says Sat, the assignment really satisfies *)
  let gen =
    QCheck.Gen.(
      list_size (1 -- 12)
        (list_size (1 -- 3)
           (map2 (fun v b -> if b then Pos v else Neg v) (0 -- 7) bool)))
  in
  QCheck.Test.make ~name:"dpll soundness" ~count:300
    (QCheck.make gen)
    (fun cnf ->
      let cnf = List.filter (fun c -> c <> []) cnf in
      match solve ~nvars:8 cnf with
      | Sat a -> eval a cnf
      | Unsat ->
        (* cross-check with brute force over 8 variables *)
        let rec any_assignment i a =
          if i = 8 then eval a cnf
          else begin
            a.(i) <- false;
            if any_assignment (i + 1) a then true
            else begin
              a.(i) <- true;
              any_assignment (i + 1) a
            end
          end
        in
        not (any_assignment 0 (Array.make 8 false)))

(* --- flag constraints --- *)

let test_presets_valid () =
  List.iter
    (fun p ->
      List.iter
        (fun name ->
          match Toolchain.Flags.preset p name with
          | Some v ->
            (* O3 presets may deliberately violate a pairwise conflict
               (unroll-and-jam vs distribute, as in real GCC's pass
               interactions); repair must still terminate on them *)
            let rng = Util.Rng.create 3 in
            let v' = Toolchain.Constraints.repair p rng v in
            Alcotest.(check bool)
              (p.profile_name ^ " " ^ name ^ " repairable")
              true
              (Toolchain.Constraints.valid p v')
          | None -> Alcotest.fail "missing preset")
        [ "O1"; "O2"; "Os" ])
    Toolchain.Flags.profiles

let test_violation_detection () =
  let p = Toolchain.Flags.gcc in
  let v = Array.make (Array.length p.flags) false in
  v.(Toolchain.Flags.flag_index p "-mstackrealign") <- true;
  v.(Toolchain.Flags.flag_index p "-fomit-frame-pointer") <- true;
  Alcotest.(check bool) "conflict detected" false (Toolchain.Constraints.valid p v);
  Alcotest.(check bool) "violations nonempty" true
    (Toolchain.Constraints.violations p v <> [])

let test_requires_detection () =
  let p = Toolchain.Flags.gcc in
  let v = Array.make (Array.length p.flags) false in
  v.(Toolchain.Flags.flag_index p "-fpartial-inlining") <- true;
  Alcotest.(check bool) "dependency violated" false
    (Toolchain.Constraints.valid p v)

let prop_repair_always_valid =
  QCheck.Test.make ~name:"repair yields valid vectors" ~count:100
    QCheck.(pair small_nat (list_of_size (QCheck.Gen.return 44) bool))
    (fun (seed, bits) ->
      let p = Toolchain.Flags.gcc in
      let n = Array.length p.flags in
      let v = Array.init n (fun i -> try List.nth bits i with _ -> false) in
      let rng = Util.Rng.create seed in
      Toolchain.Constraints.valid p (Toolchain.Constraints.repair p rng v))

(* Random repaired vectors over the *grown* universe (the optimizer-pass
   flags live at the tail of both profiles, past the 44 bits the property
   above draws), for both profiles. *)
let prop_repair_full_universe =
  QCheck.Test.make ~name:"repair valid over full universe, both profiles"
    ~count:150
    QCheck.(pair small_nat small_nat)
    (fun (seed, pick) ->
      let p =
        if pick mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
      in
      let n = Array.length p.Toolchain.Flags.flags in
      let rng = Util.Rng.create ((seed * 31) + 17) in
      let v = Array.init n (fun _ -> Util.Rng.bool rng) in
      let v' = Toolchain.Constraints.repair p rng v in
      Toolchain.Constraints.valid p v'
      && Toolchain.Constraints.violations p v' = [])

(* Every clause introduced for the new optimizer-pass flags, exercised in
   both directions: the lone flag violates exactly its Requires rule (or
   the conflict pair its Conflicts rule), adding the dependency clears
   it, and repair always reaches a valid vector from the broken one. *)
let test_new_pass_flag_constraints () =
  let check_requires p (flag, dep) =
    let n = Array.length p.Toolchain.Flags.flags in
    let rule = Toolchain.Flags.Requires (flag, dep) in
    let v = Array.make n false in
    v.(Toolchain.Flags.flag_index p flag) <- true;
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s without %s invalid" p.profile_name flag dep)
      false
      (Toolchain.Constraints.valid p v);
    Alcotest.(check bool)
      (Printf.sprintf "%s: the broken rule is reported" p.profile_name)
      true
      (List.mem rule (Toolchain.Constraints.violations p v));
    let rng = Util.Rng.create 7 in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s repairable" p.profile_name flag)
      true
      (Toolchain.Constraints.valid p (Toolchain.Constraints.repair p rng v));
    v.(Toolchain.Flags.flag_index p dep) <- true;
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s with %s valid" p.profile_name flag dep)
      true
      (Toolchain.Constraints.valid p v)
  in
  let check_conflict p (a, b) =
    let n = Array.length p.Toolchain.Flags.flags in
    let rule = Toolchain.Flags.Conflicts (a, b) in
    let v = Array.make n false in
    v.(Toolchain.Flags.flag_index p a) <- true;
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s alone valid" p.profile_name a)
      true
      (Toolchain.Constraints.valid p v);
    v.(Toolchain.Flags.flag_index p b) <- true;
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s + %s conflict" p.profile_name a b)
      false
      (Toolchain.Constraints.valid p v);
    Alcotest.(check bool)
      (Printf.sprintf "%s: the conflict is reported" p.profile_name)
      true
      (List.mem rule (Toolchain.Constraints.violations p v));
    let rng = Util.Rng.create 11 in
    let v' = Toolchain.Constraints.repair p rng v in
    Alcotest.(check bool)
      (Printf.sprintf "%s: conflict repairable" p.profile_name)
      true
      (Toolchain.Constraints.valid p v')
  in
  let gcc = Toolchain.Flags.gcc and llvm = Toolchain.Flags.llvm in
  List.iter (check_requires gcc)
    [
      ("-ftree-pre", "-frerun-cse-after-loop");
      ("-ftree-loop-im", "-fmove-loop-invariants");
    ];
  check_conflict gcc ("-ftree-ccp", "-finstrument-functions");
  List.iter (check_requires llvm)
    [ ("-fnewgvn", "-flate-cse"); ("-flicm-aggressive", "-flicm") ];
  check_conflict llvm ("-fsccp", "-finstrument-functions")

let tests =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "3sat backtracking" `Quick test_3sat_backtracking;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole_2_1;
    QCheck_alcotest.to_alcotest prop_random_cnf_sound;
    Alcotest.test_case "presets repairable" `Quick test_presets_valid;
    Alcotest.test_case "conflict detection" `Quick test_violation_detection;
    Alcotest.test_case "requires detection" `Quick test_requires_detection;
    QCheck_alcotest.to_alcotest prop_repair_always_valid;
    QCheck_alcotest.to_alcotest prop_repair_full_universe;
    Alcotest.test_case "new pass flag constraints" `Quick
      test_new_pass_flag_constraints;
  ]
