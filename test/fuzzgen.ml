(* A random MinC program generator for differential compiler fuzzing.

   Generated programs are well-formed by construction (all variables
   declared, array indices masked into bounds, loops bounded) and
   deterministic, so any behavioural difference between the -O0 reference
   interpretation and an optimized VX binary is a genuine compiler bug.
   This is the repository's compiler-fuzzing harness, used by
   [Test_fuzz]. *)

type ctx = {
  rng : Util.Rng.t;
  mutable scalars : string list;  (** in-scope scalar variables *)
  arrays : (string * int) list;  (** global arrays and their sizes *)
  mutable fresh : int;
  mutable depth : int;
  mutable funcs : string list;  (** callable (non-recursive) function names *)
}

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

let pick_scalar ctx =
  match ctx.scalars with
  | [] -> "seed"
  | l -> List.nth l (Util.Rng.int ctx.rng (List.length l))

let pick_array ctx =
  List.nth ctx.arrays (Util.Rng.int ctx.rng (List.length ctx.arrays))

(* Expressions are pure: calls appear only as dedicated statements, which
   keeps evaluation-order differences out of the picture. *)
let rec gen_expr ctx depth : Minic.Ast.expr =
  let open Minic.Ast in
  if depth <= 0 then
    match Util.Rng.int ctx.rng 3 with
    | 0 -> Int (Util.Rng.int ctx.rng 200 - 100)
    | 1 -> Var (pick_scalar ctx)
    | _ ->
      let name, size = pick_array ctx in
      (* mask the index into bounds *)
      Index (name, Binary (Band, gen_expr ctx 0, Int (size - 1)))
  else begin
    match Util.Rng.int ctx.rng 10 with
    | 0 | 1 | 2 ->
      let op =
        List.nth
          [ Add; Sub; Mul; Band; Bor; Bxor ]
          (Util.Rng.int ctx.rng 6)
      in
      Binary (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 3 ->
      (* division/modulo by a non-zero constant *)
      let op = if Util.Rng.bool ctx.rng then Div else Mod in
      Binary
        (op, gen_expr ctx (depth - 1), Int (1 + Util.Rng.int ctx.rng 15))
    | 4 ->
      let op = if Util.Rng.bool ctx.rng then Shl else Shr in
      Binary (op, gen_expr ctx (depth - 1), Int (Util.Rng.int ctx.rng 8))
    | 5 ->
      let op =
        List.nth [ Lt; Le; Gt; Ge; Eq; Ne ] (Util.Rng.int ctx.rng 6)
      in
      Binary (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 6 ->
      let op = if Util.Rng.bool ctx.rng then Land else Lor in
      Binary (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 7 ->
      Ternary
        ( gen_expr ctx (depth - 1),
          gen_expr ctx (depth - 1),
          gen_expr ctx (depth - 1) )
    | 8 -> Unary ((if Util.Rng.bool ctx.rng then Neg else Bnot), gen_expr ctx (depth - 1))
    | _ -> gen_expr ctx 0
  end

let rec gen_stmt ctx : Minic.Ast.stmt list =
  let open Minic.Ast in
  ctx.depth <- ctx.depth + 1;
  let result =
    match Util.Rng.int ctx.rng (if ctx.depth > 3 then 4 else 14) with
    | 0 ->
      let v = fresh ctx "v" in
      let s = [ Decl (v, Some (gen_expr ctx 2)) ] in
      ctx.scalars <- v :: ctx.scalars;
      s
    | 1 -> [ Assign (pick_scalar ctx, gen_expr ctx 2) ]
    | 2 ->
      let name, size = pick_array ctx in
      [
        Store
          ( name,
            Binary (Band, gen_expr ctx 1, Int (size - 1)),
            gen_expr ctx 2 );
      ]
    | 3 -> [ Expr_stmt (Call ("print_int", [ gen_expr ctx 2 ])) ]
    | 4 ->
      [ If (gen_expr ctx 2, gen_block ctx, if Util.Rng.bool ctx.rng then gen_block ctx else []) ]
    | 5 ->
      (* bounded counted loop, always terminates *)
      let i = fresh ctx "i" in
      let bound = 2 + Util.Rng.int ctx.rng 30 in
      ctx.scalars <- i :: ctx.scalars;
      let body = gen_block ctx in
      ctx.scalars <- List.filter (( <> ) i) ctx.scalars;
      [
        For
          ( Some (Decl (i, Some (Int 0))),
            Some (Binary (Lt, Var i, Int bound)),
            Some (Assign (i, Binary (Add, Var i, Int 1))),
            body );
      ]
    | 6 ->
      (* bounded while via a fresh down-counter the body cannot touch *)
      let body = gen_block ctx in
      let n = fresh ctx "n" in
      [
        Decl (n, Some (Int (1 + Util.Rng.int ctx.rng 12)));
        While
          ( Binary (Gt, Var n, Int 0),
            body @ [ Assign (n, Binary (Sub, Var n, Int 1)) ] );
      ]
    | 7 ->
      (* dense switch over a masked scrutinee: up to 8 case groups,
         sometimes with a second label (k and k + 8 both land here), and
         occasional fallthrough into the next group — exercising the
         jump-table lowering's full label set *)
      let cases =
        List.init
          (1 + Util.Rng.int ctx.rng 8)
          (fun k ->
            let labels =
              if Util.Rng.int ctx.rng 3 = 0 then [ k; k + 8 ] else [ k ]
            in
            let body = gen_block ctx in
            let body =
              if Util.Rng.int ctx.rng 4 = 0 then body (* fall through *)
              else body @ [ Break ]
            in
            (labels, body))
      in
      [
        Switch
          ( Binary (Band, gen_expr ctx 1, Int 15),
            cases,
            if Util.Rng.bool ctx.rng then Some (gen_block ctx) else None );
      ]
    | 9 ->
      (* explicitly nested counted loops (2–3 deep) with array traffic and
         an accumulator — the shape that drives unrolling, unroll-and-jam
         and loop-invariant code motion *)
      let acc = fresh ctx "t" in
      let acc_init = gen_expr ctx 1 in
      ctx.scalars <- acc :: ctx.scalars;
      let name, size = pick_array ctx in
      let depth_loops = 2 + Util.Rng.int ctx.rng 2 in
      let idxs = List.init depth_loops (fun _ -> fresh ctx "i") in
      let index_sum =
        List.fold_left
          (fun e i -> Binary (Add, e, Var i))
          (Int (Util.Rng.int ctx.rng 8))
          idxs
      in
      let innermost =
        [
          Assign
            ( acc,
              Binary
                ( Add,
                  Binary (Mul, Var acc, Int 7),
                  Index (name, Binary (Band, index_sum, Int (size - 1))) ) );
          Store
            ( name,
              Binary (Band, index_sum, Int (size - 1)),
              Binary (Add, Var acc, gen_expr ctx 1) );
        ]
      in
      let nest =
        List.fold_left
          (fun body i ->
            let bound = 2 + Util.Rng.int ctx.rng 4 in
            [
              For
                ( Some (Decl (i, Some (Int 0))),
                  Some (Binary (Lt, Var i, Int bound)),
                  Some (Assign (i, Binary (Add, Var i, Int 1))),
                  body );
            ])
          innermost (List.rev idxs)
      in
      Decl (acc, Some acc_init)
      :: nest
      @ [ Expr_stmt (Call ("print_int", [ Var acc ])) ]
    | 10 ->
      (* branch on a condition that is constant after folding: one arm is
         statically dead — feed for SCCP's edge pruning, and for the
         interval instance when the comparison needs range reasoning *)
      let c = Util.Rng.int ctx.rng 5 in
      [
        If
          ( Binary (Lt, Int c, Int (Util.Rng.int ctx.rng 5)),
            gen_block ctx,
            gen_block ctx );
      ]
    | 11 ->
      (* the same subexpression recomputed in a dominated branch arm: a
         cross-block redundancy the local LVN cannot see — feed for GVN *)
      let e = gen_expr ctx 2 in
      let v1 = fresh ctx "c" in
      let v2 = fresh ctx "c" in
      let s =
        [
          Decl (v1, Some e);
          If
            ( gen_expr ctx 1,
              [
                Decl (v2, Some e);
                Expr_stmt
                  (Call ("print_int", [ Binary (Bxor, Var v1, Var v2) ]));
              ],
              [] );
        ]
      in
      ctx.scalars <- v1 :: ctx.scalars;
      s
    | 12 ->
      (* a chain of loop-invariant computations inside a counted loop —
         feed for the dominator-based LICM's multi-instruction hoisting *)
      let base = fresh ctx "inv" in
      let pre = Decl (base, Some (gen_expr ctx 2)) in
      let acc = pick_scalar ctx in
      let i = fresh ctx "i" in
      let a = fresh ctx "h" in
      let b = fresh ctx "h" in
      let bound = 2 + Util.Rng.int ctx.rng 10 in
      ctx.scalars <- base :: ctx.scalars;
      [
        pre;
        For
          ( Some (Decl (i, Some (Int 0))),
            Some (Binary (Lt, Var i, Int bound)),
            Some (Assign (i, Binary (Add, Var i, Int 1))),
            [
              Decl (a, Some (Binary (Mul, Var base, Var base)));
              Decl (b, Some (Binary (Add, Binary (Mul, Var a, Int 3), Int 7)));
              Assign
                (acc, Binary (Add, Var acc, Binary (Bxor, Var b, Var i)));
            ] );
      ]
    | 8 when ctx.funcs <> [] ->
      let f = List.nth ctx.funcs (Util.Rng.int ctx.rng (List.length ctx.funcs)) in
      let v = fresh ctx "r" in
      let s =
        [ Decl (v, Some (Call (f, [ gen_expr ctx 1; gen_expr ctx 1 ]))) ]
      in
      ctx.scalars <- v :: ctx.scalars;
      s
    | _ -> [ Assign (pick_scalar ctx, gen_expr ctx 3) ]
  in
  ctx.depth <- ctx.depth - 1;
  result

and gen_block ctx : Minic.Ast.stmt list =
  let saved = ctx.scalars in
  let n = 1 + Util.Rng.int ctx.rng 4 in
  let stmts = List.concat (List.init n (fun _ -> gen_stmt ctx)) in
  ctx.scalars <- saved;
  stmts

let gen_helper ctx name : Minic.Ast.func =
  let open Minic.Ast in
  let saved = ctx.scalars in
  ctx.scalars <- [ "a"; "b" ];
  let body = gen_block ctx in
  let ret = Return (Some (gen_expr ctx 2)) in
  ctx.scalars <- saved;
  { fname = name; params = [ "a"; "b" ]; body = body @ [ ret ] }

(* Generate a complete program: two global arrays, a couple of helper
   functions, and a main that seeds state from input and prints
   checksums. *)
let generate seed : Minic.Ast.program =
  let open Minic.Ast in
  let rng = Util.Rng.create seed in
  let arrays = [ ("ga", 32); ("gb", 16) ] in
  let ctx = { rng; scalars = []; arrays; fresh = 0; depth = 0; funcs = [] } in
  let h1 = gen_helper ctx "helper1" in
  ctx.funcs <- [ "helper1" ];
  let h2 = gen_helper ctx "helper2" in
  ctx.funcs <- [ "helper1"; "helper2" ];
  ctx.scalars <- [ "seed"; "acc" ];
  let body = gen_block ctx @ gen_block ctx in
  let main =
    {
      fname = "main";
      params = [];
      body =
        [
          Decl ("seed", Some (Call ("input", [ Int 0 ])));
          Decl ("acc", Some (Int 0));
        ]
        @ body
        @ [
            For
              ( Some (Decl ("k", Some (Int 0))),
                Some (Binary (Lt, Var "k", Int 32)),
                Some (Assign ("k", Binary (Add, Var "k", Int 1))),
                [
                  Assign
                    ( "acc",
                      Binary
                        ( Add,
                          Binary (Mul, Var "acc", Int 31),
                          Index ("ga", Var "k") ) );
                ] );
            Expr_stmt (Call ("print_int", [ Var "acc" ]));
            Return (Some (Binary (Band, Var "acc", Int 255)));
          ];
    }
  in
  let prog =
    {
      globals = [ Garr ("ga", 32, []); Garr ("gb", 16, []) ];
      funcs = [ h1; h2; main ];
    }
  in
  Minic.Sema.link_stdlib prog
