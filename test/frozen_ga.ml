(* The pre-refactor GA engine ([Ga.Genetic.run] as of PR 3), frozen
   verbatim (telemetry stripped) as a differential oracle: the ported GA
   strategy running on the shared [Search] engine must reproduce this
   implementation bit-for-bit — same best vector, fitness, evaluation
   count, and history — for any rng seed, landscape, seed set, and
   batch hook.  Do not "improve" this file; its value is that it does
   not change. *)

type params = {
  population_size : int;
  mutation_rate : float;
  crossover_rate : float;
  must_mutate_count : int;
  crossover_strength : float;
  tournament_size : int;
  elitism : int;
}

let default_params =
  {
    population_size = 16;
    mutation_rate = 0.06;
    crossover_rate = 0.8;
    must_mutate_count = 1;
    crossover_strength = 0.6;
    tournament_size = 3;
    elitism = 2;
  }

type termination = {
  max_evaluations : int;
  plateau_window : int;
  plateau_epsilon : float;
}

type outcome = {
  best : bool array;
  best_fitness : float;
  evaluations : int;
  history : (int * float) list;
}

let genome_key g =
  String.init (Array.length g) (fun i -> if g.(i) then '1' else '0')

type state = {
  cache : (string, float) Hashtbl.t;
  mutable evals : int;
  mutable best : bool array;
  mutable best_fitness : float;
  mutable history_rev : (int * float) list;
  mutable recent : (int * float) list;
}

let run ?batch_fitness ~rng ~params ~termination ~ngenes ~seeds ~repair ~fitness
    () =
  let batch =
    match batch_fitness with
    | Some f -> f
    | None -> fun genomes -> Array.map fitness genomes
  in
  let st =
    {
      cache = Hashtbl.create 256;
      evals = 0;
      best = Array.make ngenes false;
      best_fitness = neg_infinity;
      history_rev = [];
      recent = [];
    }
  in
  let record genome f =
    Hashtbl.replace st.cache (genome_key genome) f;
    st.evals <- st.evals + 1;
    if f > st.best_fitness then begin
      st.best_fitness <- f;
      st.best <- Array.copy genome
    end;
    st.history_rev <- (st.evals, st.best_fitness) :: st.history_rev;
    st.recent <- (st.evals, st.best_fitness) :: st.recent
  in
  let evaluate_generation population scores =
    let seen = Hashtbl.create 16 in
    let pending = ref [] in
    Array.iter
      (fun g ->
        let key = genome_key g in
        if not (Hashtbl.mem st.cache key) && not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          pending := Array.copy g :: !pending
        end)
      population;
    let budget = max 0 (termination.max_evaluations - st.evals) in
    let pending = List.filteri (fun i _ -> i < budget) (List.rev !pending) in
    if pending <> [] then begin
      let arr = Array.of_list pending in
      let fs = batch arr in
      Array.iteri (fun i g -> record g fs.(i)) arr
    end;
    Array.iteri
      (fun i g ->
        match Hashtbl.find_opt st.cache (genome_key g) with
        | Some f -> scores.(i) <- f
        | None -> ())
      population
  in
  let plateaued () =
    if st.evals < termination.plateau_window then false
    else begin
      let horizon = st.evals - termination.plateau_window in
      st.recent <- List.filter (fun (e, _) -> e >= horizon) st.recent;
      let oldest =
        List.fold_left
          (fun acc (e, f) ->
            match acc with
            | None -> Some (e, f)
            | Some (e', _) when e < e' -> Some (e, f)
            | Some _ -> acc)
          None st.recent
      in
      match oldest with
      | Some (_, old_best) when old_best > 0.0 ->
        let gain = (st.best_fitness -. old_best) /. old_best in
        gain < termination.plateau_epsilon
      | Some (_, old_best) -> st.best_fitness <= old_best
      | None -> false
    end
  in
  let random_genome () = Array.init ngenes (fun _ -> Util.Rng.bool rng) in
  let population =
    let seeds = List.map (fun s -> repair (Array.copy s)) seeds in
    let target = max (max params.population_size 2) (List.length seeds) in
    let extra =
      List.init
        (max 0 (target - List.length seeds))
        (fun _ -> repair (random_genome ()))
    in
    Array.of_list (seeds @ extra)
  in
  let scores = Array.make (Array.length population) neg_infinity in
  evaluate_generation population scores;
  let tournament () =
    let best = ref (Util.Rng.int rng (Array.length population)) in
    for _ = 2 to params.tournament_size do
      let c = Util.Rng.int rng (Array.length population) in
      if scores.(c) > scores.(!best) then best := c
    done;
    !best
  in
  let crossover a b fa fb =
    let bias =
      if fa >= fb then params.crossover_strength
      else 1.0 -. params.crossover_strength
    in
    Array.init ngenes (fun i ->
        if Util.Rng.float rng 1.0 < bias then a.(i) else b.(i))
  in
  let mutate g =
    let flipped = ref 0 in
    for i = 0 to ngenes - 1 do
      if Util.Rng.float rng 1.0 < params.mutation_rate then begin
        g.(i) <- not g.(i);
        incr flipped
      end
    done;
    while !flipped < params.must_mutate_count do
      let i = Util.Rng.int rng ngenes in
      g.(i) <- not g.(i);
      incr flipped
    done;
    g
  in
  let continue_ () =
    st.evals < termination.max_evaluations && not (plateaued ())
  in
  let generation = ref 0 in
  while continue_ () do
    incr generation;
    let psize = Array.length population in
    let ranked =
      let idx = Array.init psize (fun i -> i) in
      Array.sort (fun i j -> compare scores.(j) scores.(i)) idx;
      idx
    in
    let next = ref [] in
    for e = 0 to min params.elitism psize - 1 do
      next := Array.copy population.(ranked.(e)) :: !next
    done;
    while List.length !next < psize do
      let i = tournament () and j = tournament () in
      let child =
        if Util.Rng.float rng 1.0 < params.crossover_rate then
          crossover population.(i) population.(j) scores.(i) scores.(j)
        else Array.copy population.(if scores.(i) >= scores.(j) then i else j)
      in
      let child = repair (mutate child) in
      next := child :: !next
    done;
    let np = Array.of_list (List.rev !next) in
    assert (Array.length np = psize);
    Array.blit np 0 population 0 psize;
    evaluate_generation population scores
  done;
  {
    best = st.best;
    best_fitness = st.best_fitness;
    evaluations = st.evals;
    history = List.rev st.history_rev;
  }
