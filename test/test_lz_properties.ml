(* The compression property-test layer locking down the NCD kernel
   overhaul.

   The match finder now comes in two levels — [Greedy], the pre-overhaul
   finder frozen as a differential oracle, and [Chained d], the
   hash-chain finder the tuning stack runs on.  Both emit the same token
   format, so one [decompress] must invert either; this file drives that
   contract with adversarial generators (periodic runs that stress the
   lazy-match deferral, repeats straddling the 32 KiB window boundary,
   incompressible noise, and concatenated corpus code sections), pins the
   frozen oracle to golden output digests, and checks the NCD metric
   sanity properties the fitness function leans on. *)

let levels =
  [ Compress.Lz.Greedy; Compress.Lz.Chained 1; Compress.Lz.Chained 128 ]

let roundtrip_all s =
  List.for_all
    (fun level ->
      Compress.Lz.decompress (Compress.Lz.compress ~level s) = s)
    levels

(* --- adversarial generators --- *)

(* period-1/2/3 runs: long strings of period p exercise the overlapping
   self-referential matches (dist < len) and the lazy deferral window *)
let gen_periodic =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "<periodic %d bytes>" (String.length s))
    QCheck.Gen.(
      let* p = 1 -- 3 in
      let* unit = string_size ~gen:printable (return p) in
      let* len = 0 -- 40_000 in
      return (String.init len (fun i -> unit.[i mod p])))

(* a motif, then ≥ 30000 bytes of filler, then the motif again: the
   back-reference distance lands on either side of the 32 KiB window
   limit, the boundary where a candidate must be rejected *)
let gen_window_boundary =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "<window %d bytes>" (String.length s))
    QCheck.Gen.(
      let* motif = string_size ~gen:printable (8 -- 40) in
      let* filler_len = 30_000 -- 36_000 in
      let* filler_char = printable in
      return (motif ^ String.make filler_len filler_char ^ motif))

let gen_random_bytes =
  QCheck.string_gen_of_size QCheck.Gen.(0 -- 8192) QCheck.Gen.char

(* concatenated corpus code sections — the exact stream shape the NCD
   C(x·y) term compresses during tuning *)
let corpus_streams =
  lazy
    (Array.of_list
       (List.concat_map
          (fun b ->
            List.map
              (fun preset ->
                (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc preset
                   (Corpus.program b))
                  .Isa.Binary.text)
              [ "O0"; "O2" ])
          (List.filteri (fun i _ -> i < 8) Corpus.all)))

let gen_corpus_pair =
  QCheck.make
    ~print:(fun (i, j) -> Printf.sprintf "corpus streams (%d, %d)" i j)
    QCheck.Gen.(pair (0 -- 1000) (0 -- 1000))

let corpus_pair (i, j) =
  let streams = Lazy.force corpus_streams in
  let n = Array.length streams in
  (streams.(i mod n), streams.(j mod n))

(* --- roundtrip at every level --- *)

let prop_roundtrip_periodic =
  QCheck.Test.make ~name:"periodic runs roundtrip at every level" ~count:60
    gen_periodic roundtrip_all

let prop_roundtrip_window =
  QCheck.Test.make ~name:"window-boundary repeats roundtrip at every level"
    ~count:40 gen_window_boundary roundtrip_all

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random bytes roundtrip at every level" ~count:60
    gen_random_bytes roundtrip_all

let prop_roundtrip_corpus_concat =
  QCheck.Test.make ~name:"concatenated corpus binaries roundtrip at every level"
    ~count:25 gen_corpus_pair (fun ij ->
      let x, y = corpus_pair ij in
      roundtrip_all (x ^ y))

(* --- cross-finder differential --- *)

(* whatever stream either finder emits, the one decoder recovers the
   same input: the finders may disagree on tokens, never on meaning *)
let prop_cross_finder =
  QCheck.Test.make ~name:"greedy and chained streams decode identically"
    ~count:60
    QCheck.(pair gen_periodic gen_random_bytes)
    (fun (a, b) ->
      let s = a ^ b in
      let via level =
        Compress.Lz.decompress (Compress.Lz.compress ~level s)
      in
      via Compress.Lz.Greedy = s
      && via (Compress.Lz.Chained 128) = s
      && via (Compress.Lz.Chained 1) = s)

(* --- the two-segment pair entry point --- *)

let prop_pair_equals_concat =
  QCheck.Test.make ~name:"compress_pair is byte-identical to compress (x ^ y)"
    ~count:30 gen_corpus_pair (fun ij ->
      let x, y = corpus_pair ij in
      List.for_all
        (fun level ->
          Compress.Lz.compress_pair ~level x y
          = Compress.Lz.compress ~level (x ^ y))
        levels)

let test_pair_edge_cases () =
  List.iter
    (fun level ->
      List.iter
        (fun (x, y) ->
          Alcotest.(check string)
            (Printf.sprintf "pair %s (%d,%d)" (Compress.Lz.level_name level)
               (String.length x) (String.length y))
            (Compress.Lz.compress ~level (x ^ y))
            (Compress.Lz.compress_pair ~level x y))
        [ ("", ""); ("", "abc"); ("abc", ""); ("a", "a"); ("ab", "abab") ])
    levels

(* --- the frozen oracle --- *)

(* Golden output digests of the [Greedy] finder.  These pin the oracle's
   exact output bytes: the table1 determinism sentinel and the
   cross-finder differential both assume [Greedy] never drifts, so a
   failure here means the frozen path was touched — re-baselining these
   constants is only legitimate together with the sentinel baseline in
   tools/ci.sh. *)
let greedy_golden =
  [
    ("empty", "7dea362b3fac8e00956a4952a3d4f474", 8);
    ("period1", "231406488184984402a2f9197b1d84e9", 18);
    ("period2", "527da3c0292d3bd9221a12b0714add52", 23);
    ("period3", "7620505bd0adbf07d9ec515ac9d99ba1", 25);
    ("random4k", "e4f08e17fe08fd63ed64852ce2c2d431", 4256);
    ("window", "3ee5415eed163fa95f6ddc806c48f891", 495);
    ("mixed", "62f877e5071783cbdacf1a0da494fc5d", 58);
  ]

let golden_inputs () =
  let rng = Util.Rng.create 42 in
  let rand n = String.init n (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  [
    ("empty", "");
    ("period1", String.make 5000 'x');
    ("period2", String.concat "" (List.init 2500 (fun _ -> "ab")));
    ("period3", String.concat "" (List.init 2000 (fun _ -> "abc")));
    ("random4k", rand 4096);
    ( "window",
      String.concat ""
        (List.init 3 (fun _ -> rand 100 ^ String.make 33000 'q' ^ "needle")) );
    ( "mixed",
      String.concat ""
        (List.init 60 (fun i -> Printf.sprintf "fn_%d(){push;pop;ret}" (i mod 7)))
    );
  ]

let test_greedy_golden_digests () =
  List.iter2
    (fun (name, s) (name', digest, size) ->
      assert (name = name');
      let c = Compress.Lz.compress ~level:Compress.Lz.Greedy s in
      Alcotest.(check string)
        (name ^ ": greedy output digest") digest
        (Digest.to_hex (Digest.string c));
      Alcotest.(check int) (name ^ ": greedy output size") size (String.length c))
    (golden_inputs ()) greedy_golden

(* --- NCD metric sanity, per level --- *)

let ncd_levels = [ Compress.Lz.Greedy; Compress.Lz.Chained 128 ]

let prop_ncd_self =
  QCheck.Test.make ~name:"ncd(x, x) near zero at every level" ~count:40
    (QCheck.string_gen_of_size QCheck.Gen.(32 -- 4000) QCheck.Gen.char)
    (fun x ->
      List.for_all
        (fun level ->
          let d = Compress.Ncd.distance ~level x x in
          d >= 0.0 && d <= 0.25)
        ncd_levels)

let prop_ncd_symmetry =
  QCheck.Test.make ~name:"ncd symmetric within epsilon at every level"
    ~count:40
    QCheck.(
      pair
        (string_gen_of_size Gen.(1 -- 2000) Gen.char)
        (string_gen_of_size Gen.(1 -- 2000) Gen.char))
    (fun (x, y) ->
      List.for_all
        (fun level ->
          abs_float
            (Compress.Ncd.distance ~level x y
            -. Compress.Ncd.distance ~level y x)
          <= 0.1)
        ncd_levels)

let prop_ncd_range =
  QCheck.Test.make ~name:"ncd in [0, 1 + eps] at every level" ~count:40
    QCheck.(
      pair
        (string_gen_of_size Gen.(0 -- 2000) Gen.char)
        (string_gen_of_size Gen.(0 -- 2000) Gen.char))
    (fun (x, y) ->
      List.for_all
        (fun level ->
          let d = Compress.Ncd.distance ~level x y in
          d >= 0.0 && d <= 1.15)
        ncd_levels)

(* --- the level knob itself --- *)

let test_level_names () =
  List.iter
    (fun (s, level) ->
      Alcotest.(check bool) (s ^ " parses") true
        (Compress.Lz.level_of_string s = level))
    [
      ("greedy", Compress.Lz.Greedy);
      ("chained", Compress.Lz.Chained Compress.Lz.default_chain_depth);
      ("chained-64", Compress.Lz.Chained 64);
      ("chained:7", Compress.Lz.Chained 7);
    ];
  List.iter
    (fun level ->
      Alcotest.(check bool)
        (Compress.Lz.level_name level ^ " roundtrips") true
        (Compress.Lz.level_of_string (Compress.Lz.level_name level) = level))
    levels;
  List.iter
    (fun bad ->
      match Compress.Lz.level_of_string bad with
      | (_ : Compress.Lz.level) ->
        Alcotest.fail (bad ^ ": expected Invalid_argument")
      | exception Invalid_argument _ -> ())
    [ "fast"; "chained-0"; "chained--3"; "chained-"; "" ]

let tests =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip_periodic;
    QCheck_alcotest.to_alcotest prop_roundtrip_window;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_roundtrip_corpus_concat;
    QCheck_alcotest.to_alcotest prop_cross_finder;
    QCheck_alcotest.to_alcotest prop_pair_equals_concat;
    Alcotest.test_case "pair edge cases" `Quick test_pair_edge_cases;
    Alcotest.test_case "greedy golden digests" `Quick test_greedy_golden_digests;
    QCheck_alcotest.to_alcotest prop_ncd_self;
    QCheck_alcotest.to_alcotest prop_ncd_symmetry;
    QCheck_alcotest.to_alcotest prop_ncd_range;
    Alcotest.test_case "level names" `Quick test_level_names;
  ]
