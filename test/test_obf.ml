(* Obfuscator-LLVM substitute: per-scheme semantic and structural tests
   (the whole-pipeline behaviour check lives in Test_compiler). *)

let prepared name =
  let cfg =
    Toolchain.Flags.resolve Toolchain.Flags.llvm Toolchain.Flags.llvm.preset_o1
  in
  Toolchain.Pipeline.apply_passes cfg (Corpus.program (Corpus.find name))

let behaviour ir input =
  let r = Vir.Interp.run ir ~input in
  (Vir.Interp.output_to_string r.output, r.return_value)

let counts (ir : Vir.Ir.program) =
  let blocks =
    List.fold_left (fun acc f -> acc + List.length f.Vir.Ir.blocks) 0 ir.funcs
  in
  (Vir.Ir.program_instr_count ir, blocks)

let scheme_test name apply structural_check () =
  let ir = prepared "429.mcf" in
  let want = behaviour ir [| 7 |] in
  let before = counts ir in
  apply ir;
  let got = behaviour ir [| 7 |] in
  Alcotest.(check string) (name ^ " output") (fst want) (fst got);
  Alcotest.(check int) (name ^ " exit") (snd want) (snd got);
  structural_check before (counts ir)

let test_substitution =
  scheme_test "substitution"
    (fun ir ->
      let rng = Util.Rng.create 3 in
      List.iter (Obf.Ollvm.substitute_instructions rng) ir.funcs)
    (fun (i0, _) (i1, _) ->
      Alcotest.(check bool) "more instructions" true (i1 > i0))

let test_bogus_cfg =
  scheme_test "bogus control flow"
    (fun ir ->
      let rng = Util.Rng.create 3 in
      List.iter (Obf.Ollvm.bogus_control_flow rng) ir.funcs)
    (fun (_, b0) (_, b1) ->
      Alcotest.(check bool) "more blocks" true (b1 > b0))

let test_flattening =
  scheme_test "flattening"
    (fun ir -> List.iter Obf.Ollvm.flatten ir.funcs)
    (fun _ (_, _) ->
      (* dispatcher structure asserted below *)
      ())

let test_flatten_has_dispatcher () =
  let ir = prepared "429.mcf" in
  List.iter Obf.Ollvm.flatten ir.funcs;
  let has_dispatcher (f : Vir.Ir.func) =
    List.length f.blocks <= 2
    || List.exists
         (fun (b : Vir.Ir.block) ->
           match b.term with
           | Vir.Ir.Switch (_, cases, _) -> List.length cases >= 2
           | _ -> false)
         f.blocks
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f.Vir.Ir.fname ^ " flattened through a dispatcher")
        true (has_dispatcher f))
    ir.funcs

let test_obfuscation_hurts_binhunt () =
  (* the paper's Figure 8(b) premise: O-LLVM output is measurably
     different from the unobfuscated build *)
  let cfg =
    Toolchain.Flags.resolve Toolchain.Flags.llvm Toolchain.Flags.llvm.preset_o1
  in
  let prog = Corpus.program (Corpus.find "429.mcf") in
  let plain_ir = Toolchain.Pipeline.apply_passes cfg prog in
  let obf_ir = Toolchain.Pipeline.apply_passes cfg prog in
  Obf.Ollvm.apply_all ~seed:9 obf_ir;
  let compile ir =
    Codegen.Emit.compile_program
      ~options:(Toolchain.Config.codegen_options cfg)
      ~arch:Isa.Insn.X86_64 ~profile:"llvm-11.0" ~opt_label:"t" ir
  in
  let plain = compile plain_ir and obf = compile obf_ir in
  Alcotest.(check bool) "binhunt sees the obfuscation" true
    (Diffing.Binhunt.diff_score obf plain > 0.25)

let test_obfuscation_deterministic () =
  let build () =
    let ir = prepared "429.mcf" in
    Obf.Ollvm.apply_all ~seed:5 ir;
    Vir.Ir.program_to_string ir
  in
  Alcotest.(check bool) "same seed, same output" true (build () = build ())

let tests =
  [
    Alcotest.test_case "instruction substitution" `Quick test_substitution;
    Alcotest.test_case "bogus control flow" `Quick test_bogus_cfg;
    Alcotest.test_case "flattening behaviour" `Quick test_flattening;
    Alcotest.test_case "flattening dispatcher" `Quick test_flatten_has_dispatcher;
    Alcotest.test_case "binhunt sensitivity" `Quick test_obfuscation_hurts_binhunt;
    Alcotest.test_case "determinism" `Quick test_obfuscation_deterministic;
  ]
