(* The incremental-compilation differential oracle.

   [Toolchain.Pipeline] may resume a compile from any pass-prefix
   snapshot a [Bintuner.Incremental] store still holds, and may satisfy
   a whole compile from a cached emitted binary.  The contract that
   makes this legal is absolute: a compile through a store — cold, warm,
   mid-eviction, or shared with compiles of other vectors, profiles and
   arches — emits a binary bit-identical to the same compile from
   scratch.  This file pins that contract for every corpus program, both
   flag profiles, random repaired vectors and every preset, plus the
   cross-profile / cross-arch staleness hazard: snapshot keys must be
   disjoint across (program, profile, arch) contexts, so interleaving
   contexts through one shared store can never serve a stale stage.

   Like the other frozen_* oracles, the value of this file is strictness:
   do not weaken the bit-identical equality to anything fuzzier. *)

let profiles = [ Toolchain.Flags.gcc; Toolchain.Flags.llvm ]

let random_vectors profile k seed =
  let rng = Util.Rng.create seed in
  let n = Array.length profile.Toolchain.Flags.flags in
  List.init k (fun _ ->
      Toolchain.Constraints.repair profile rng
        (Array.init n (fun _ -> Util.Rng.bool rng)))

(* Every corpus program x both profiles x random repaired vectors: the
   first compile through a fresh store exercises the cold path (probing,
   then publishing, every prefix), later vectors resume from whatever
   prefixes earlier vectors left behind, and the immediate recompile is
   the fully warm path (a whole-binary hit).  All three must equal the
   scratch compile exactly. *)
let test_differential_corpus () =
  List.iter
    (fun bench ->
      let prog = Corpus.program bench in
      List.iter
        (fun profile ->
          let pname = profile.Toolchain.Flags.profile_name in
          let store = Bintuner.Incremental.create () in
          let snapshot = Bintuner.Incremental.snapshot_store store in
          let vectors =
            random_vectors profile 3
              (Hashtbl.hash (bench.Corpus.bname, pname) + 17)
          in
          List.iteri
            (fun i v ->
              let label =
                Printf.sprintf "%s/%s vector %d" bench.Corpus.bname pname i
              in
              let scratch = Toolchain.Pipeline.compile_flags profile v prog in
              let through_store =
                Toolchain.Pipeline.compile_flags profile ~snapshot v prog
              in
              let warm =
                Toolchain.Pipeline.compile_flags profile ~snapshot v prog
              in
              Alcotest.(check bool)
                (label ^ ": store compile bit-identical to scratch")
                true
                (through_store = scratch);
              Alcotest.(check bool)
                (label ^ ": warm recompile bit-identical to scratch")
                true (warm = scratch))
            vectors;
          (* presets through the same store, against scratch presets *)
          List.iter
            (fun preset ->
              let scratch =
                Toolchain.Pipeline.compile_preset profile preset prog
              in
              let cached =
                Toolchain.Pipeline.compile_preset profile ~snapshot preset prog
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s preset %s bit-identical"
                   bench.Corpus.bname pname preset)
                true (cached = scratch))
            [ "O0"; "O2"; "Os" ];
          (* the warm recompiles above guarantee real traffic: a store
             that never hit would mean the resume path silently died *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: store saw hits" bench.Corpus.bname pname)
            true
            (Bintuner.Incremental.hits store > 0))
        profiles)
    Corpus.all

(* The staleness regression (fails first on any key scheme that omits
   profile or arch from the chain seed): one store shared by interleaved
   compiles of the SAME program under both profiles and several arches.
   Preset configurations resolve to near-identical step lists across
   profiles, so without the context in the seed the second context would
   resume from — or directly return — the first context's stages. *)
let test_profile_arch_interleaving () =
  let bench = Corpus.find "429.mcf" in
  let prog = Corpus.program bench in
  let store = Bintuner.Incremental.create () in
  let snapshot = Bintuner.Incremental.snapshot_store store in
  let contexts =
    (* interleaved on purpose: gcc, llvm, gcc, llvm, then arch changes *)
    [
      (Toolchain.Flags.gcc, Isa.Insn.X86_64, "O2");
      (Toolchain.Flags.llvm, Isa.Insn.X86_64, "O2");
      (Toolchain.Flags.gcc, Isa.Insn.X86_64, "O0");
      (Toolchain.Flags.llvm, Isa.Insn.X86_64, "O0");
      (Toolchain.Flags.llvm, Isa.Insn.Arm, "O2");
      (Toolchain.Flags.llvm, Isa.Insn.X86_64, "O2");
      (Toolchain.Flags.gcc, Isa.Insn.Mips, "O2");
      (Toolchain.Flags.gcc, Isa.Insn.X86_64, "O2");
    ]
  in
  List.iteri
    (fun i (profile, arch, preset) ->
      let label =
        Printf.sprintf "round %d: %s/%s/%s" i
          profile.Toolchain.Flags.profile_name (Isa.Insn.arch_name arch) preset
      in
      let scratch = Toolchain.Pipeline.compile_preset profile ~arch preset prog in
      let cached =
        Toolchain.Pipeline.compile_preset profile ~arch ~snapshot preset prog
      in
      Alcotest.(check bool) (label ^ " bit-identical") true (cached = scratch);
      (* the emitted binary must carry its own context, not a stale one *)
      Alcotest.(check string) (label ^ " profile")
        profile.Toolchain.Flags.profile_name cached.Isa.Binary.profile;
      Alcotest.(check string) (label ^ " arch") (Isa.Insn.arch_name arch)
        (Isa.Insn.arch_name cached.Isa.Binary.arch))
    contexts;
  Alcotest.(check bool) "interleaved store still produced hits" true
    (Bintuner.Incremental.hits store > 0)

(* The key-space disjointness that makes the interleaving safe, asserted
   directly on the seed: any change to program, profile or arch changes
   the chain seed. *)
let test_cache_seed_disjoint () =
  let p1 = Corpus.program (Corpus.find "429.mcf") in
  let p2 = Corpus.program (Corpus.find "462.libquantum") in
  let seed ~profile ~arch prog = Toolchain.Pipeline.cache_seed ~profile ~arch prog in
  let s_base = seed ~profile:"gcc-10.2" ~arch:Isa.Insn.X86_64 p1 in
  Alcotest.(check bool) "profile changes the seed" true
    (s_base <> seed ~profile:"llvm-11.0" ~arch:Isa.Insn.X86_64 p1);
  Alcotest.(check bool) "arch changes the seed" true
    (s_base <> seed ~profile:"gcc-10.2" ~arch:Isa.Insn.Arm p1);
  Alcotest.(check bool) "program changes the seed" true
    (s_base <> seed ~profile:"gcc-10.2" ~arch:Isa.Insn.X86_64 p2);
  Alcotest.(check string) "same context, same seed" s_base
    (seed ~profile:"gcc-10.2" ~arch:Isa.Insn.X86_64 p1)

(* A whole tuned run with the store on vs off: identical outcome (the
   tuner-level differential; the compile-level oracle above localizes
   any failure), with real snapshot traffic reported on the incremental
   side and none on the scratch side. *)
let test_tune_incremental_differential () =
  let term =
    { Search.max_evaluations = 60; plateau_window = 40; plateau_epsilon = 0.0035 }
  in
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let on = Bintuner.Tuner.tune ~termination:term ~profile bench in
      let off =
        Bintuner.Tuner.tune ~termination:term ~incremental:false ~profile bench
      in
      let label = name ^ "/" ^ profile.Toolchain.Flags.profile_name in
      Alcotest.(check (list bool))
        (label ^ ": best_vector") (Array.to_list off.best_vector)
        (Array.to_list on.best_vector);
      Alcotest.(check (float 0.0)) (label ^ ": best_ncd") off.best_ncd on.best_ncd;
      Alcotest.(check int) (label ^ ": iterations") off.iterations on.iterations;
      Alcotest.(check (list (pair int (float 0.0))))
        (label ^ ": history") off.history on.history;
      Alcotest.(check (list bool))
        (label ^ ": refined_vector")
        (Array.to_list off.refined_vector)
        (Array.to_list on.refined_vector);
      Alcotest.(check bool)
        (label ^ ": refined binaries bit-identical") true
        (off.refined_binary = on.refined_binary);
      Alcotest.(check bool) (label ^ ": incremental saw hits") true
        (on.incr_hits > 0);
      Alcotest.(check (pair int int))
        (label ^ ": no snapshot traffic when disabled") (0, 0)
        (off.incr_hits, off.incr_misses))
    [ ("462.libquantum", Toolchain.Flags.llvm); ("429.mcf", Toolchain.Flags.gcc) ]

let tests =
  [
    Alcotest.test_case "incremental differential on corpus" `Slow
      test_differential_corpus;
    Alcotest.test_case "profile/arch interleaving staleness" `Slow
      test_profile_arch_interleaving;
    Alcotest.test_case "cache seed disjointness" `Quick test_cache_seed_disjoint;
    Alcotest.test_case "tune incremental on/off differential" `Slow
      test_tune_incremental_differential;
  ]
