(* Tests for the persistent content-addressed artifact store behind
   serving mode: round-trips, the byte-bounded LRU, crash-safety
   (temp-file sweep, torn-entry quarantine), and reopen semantics
   (entries survive a restart; mtimes seed the recency order). *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "bintuner-store" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let entry_path dir key =
  let digest = Digest.to_hex (Digest.string key) in
  Filename.concat (Filename.concat dir (String.sub digest 0 2)) digest

let mkbin c =
  {
    Isa.Binary.arch = Isa.Insn.X86_64;
    profile = "gcc-10.2";
    opt_label = "test";
    text = String.make 64 c;
    data = "\001\000\000\000";
    data_words = [| 1 |];
    symbols = [| ("g", 0, 1) |];
    functions = [| ("main", 0, 64) |];
    entry = 0;
    ret_reg = 0;
  }

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      let st = Bintuner.Store.create dir in
      Alcotest.(check (option string)) "cold key" None
        (Bintuner.Store.find st "k1");
      Alcotest.(check int) "one miss" 1 (Bintuner.Store.misses st);
      Bintuner.Store.store st "k1" "payload one";
      Alcotest.(check (option string)) "served back" (Some "payload one")
        (Bintuner.Store.find st "k1");
      Alcotest.(check int) "one hit" 1 (Bintuner.Store.hits st);
      (* keep-first on a duplicate publish *)
      Bintuner.Store.store st "k1" "payload one";
      Alcotest.(check int) "duplicate not re-admitted" 1
        (Bintuner.Store.length st);
      (* binary keys never collide with raw keys: MD5 of distinct strings *)
      Bintuner.Store.store_size st "sz" 12345;
      Alcotest.(check (option int)) "size round-trip" (Some 12345)
        (Bintuner.Store.find_size st "sz");
      let bin = mkbin 'Q' in
      Bintuner.Store.store_binary st "bin" bin;
      Alcotest.(check bool) "binary round-trip" true
        (Bintuner.Store.find_binary st "bin" = Some bin);
      Alcotest.(check bool) "bytes accounted" true (Bintuner.Store.bytes st > 0))

let test_store_survives_reopen () =
  with_temp_dir (fun dir ->
      let st = Bintuner.Store.create dir in
      Bintuner.Store.store st "alpha" "AAAA";
      Bintuner.Store.store_binary st "bin" (mkbin 'R');
      (* a crashed writer's leftover must be swept at reopen *)
      let shard = Filename.dirname (entry_path dir "alpha") in
      let stale = Filename.concat shard "deadbeef.tmp.999.0" in
      let oc = open_out stale in
      output_string oc "half an entry";
      close_out oc;
      let st2 = Bintuner.Store.create dir in
      Alcotest.(check (option string)) "entry survives restart" (Some "AAAA")
        (Bintuner.Store.find st2 "alpha");
      Alcotest.(check bool) "binary survives restart" true
        (Bintuner.Store.find_binary st2 "bin" = Some (mkbin 'R'));
      Alcotest.(check bool) "stale temp file swept" false (Sys.file_exists stale))

let test_store_lru_byte_bound () =
  with_temp_dir (fun dir ->
      (* each entry: ~54-byte header + 100-byte payload; an 800-byte
         budget holds ~5 of the 20 *)
      let st = Bintuner.Store.create ~max_bytes:800 dir in
      for i = 1 to 20 do
        Bintuner.Store.store st
          (Printf.sprintf "key-%d" i)
          (String.make 100 (Char.chr (64 + i)))
      done;
      Alcotest.(check bool) "byte bound held" true
        (Bintuner.Store.bytes st <= Bintuner.Store.max_bytes st);
      Alcotest.(check bool) "evictions happened" true
        (Bintuner.Store.evictions st > 0);
      Alcotest.(check (option string)) "newest entry resident"
        (Some (String.make 100 (Char.chr 84)))
        (Bintuner.Store.find st "key-20");
      Alcotest.(check (option string)) "oldest entry evicted" None
        (Bintuner.Store.find st "key-1");
      Alcotest.(check bool) "evicted file deleted from disk" false
        (Sys.file_exists (entry_path dir "key-1"));
      (* an entry bigger than the whole budget is refused outright *)
      Bintuner.Store.store st "whale" (String.make 10_000 'w');
      Alcotest.(check (option string)) "oversized entry refused" None
        (Bintuner.Store.find st "whale"))

let test_store_torn_entry_quarantined () =
  with_temp_dir (fun dir ->
      let st = Bintuner.Store.create dir in
      Bintuner.Store.store st "victim" (String.make 200 'x');
      (* tear the entry: rewrite the file with only its first half *)
      let path = entry_path dir "victim" in
      let ic = open_in_bin path in
      let half = really_input_string ic 100 in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc half;
      close_out oc;
      Alcotest.(check (option string)) "torn entry is a miss" None
        (Bintuner.Store.find st "victim");
      Alcotest.(check int) "quarantined counter" 1
        (Bintuner.Store.quarantined st);
      Alcotest.(check bool) "bytes kept for autopsy" true
        (Sys.file_exists
           (Filename.concat (Filename.concat dir "quarantine")
              (Digest.to_hex (Digest.string "victim"))));
      Alcotest.(check bool) "entry gone from its shard" false
        (Sys.file_exists path);
      (* the recompute path: publishing again fully heals the key *)
      Bintuner.Store.store st "victim" (String.make 200 'x');
      Alcotest.(check (option string)) "recomputed entry served"
        (Some (String.make 200 'x'))
        (Bintuner.Store.find st "victim"))

let test_store_unmarshalable_binary_quarantined () =
  with_temp_dir (fun dir ->
      let st = Bintuner.Store.create dir in
      (* a valid store entry whose payload is not a marshaled binary —
         e.g. written by an incompatible build — degrades to a miss *)
      Bintuner.Store.store st "bogus" "not a marshaled Binary.t";
      Alcotest.(check bool) "find_binary misses, no exception" true
        (Bintuner.Store.find_binary st "bogus" = None);
      Alcotest.(check int) "and quarantines" 1 (Bintuner.Store.quarantined st))

let test_store_reopen_mtime_seeds_lru () =
  with_temp_dir (fun dir ->
      let st = Bintuner.Store.create dir in
      Bintuner.Store.store st "cold-key" (String.make 100 'c');
      Bintuner.Store.store st "warm-key" (String.make 100 'w');
      (* age the cold entry so a reopened store sees it as LRU *)
      let now = Unix.gettimeofday () in
      Unix.utimes (entry_path dir "cold-key") (now -. 3600.0) (now -. 3600.0);
      Unix.utimes (entry_path dir "warm-key") now now;
      (* a budget holding exactly one entry: reopen must evict the older *)
      let st2 = Bintuner.Store.create ~max_bytes:200 dir in
      Alcotest.(check int) "one entry retained" 1 (Bintuner.Store.length st2);
      Alcotest.(check (option string)) "newer entry survives"
        (Some (String.make 100 'w'))
        (Bintuner.Store.find st2 "warm-key");
      Alcotest.(check (option string)) "older entry evicted" None
        (Bintuner.Store.find st2 "cold-key"))

let tests =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store survives reopen" `Quick test_store_survives_reopen;
    Alcotest.test_case "store lru byte bound" `Quick test_store_lru_byte_bound;
    Alcotest.test_case "store torn entry quarantined" `Quick
      test_store_torn_entry_quarantined;
    Alcotest.test_case "store unmarshalable binary" `Quick
      test_store_unmarshalable_binary_quarantined;
    Alcotest.test_case "store reopen mtime lru" `Quick
      test_store_reopen_mtime_seeds_lru;
  ]
