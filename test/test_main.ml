let () =
  Alcotest.run "bintuner"
    [
      ("util", Test_util.tests);
      ("sat", Test_sat.tests);
      ("compress", Test_compress.tests);
      ("lz-properties", Test_lz_properties.tests);
      ("minic", Test_minic.tests);
      ("isa", Test_isa.tests);
      ("passes", Test_passes.tests);
      ("opt-passes", Test_opt_passes.tests);
      ("analysis", Test_analysis.tests);
      ("compiler", Test_compiler.tests);
      ("diffing", Test_diffing.tests);
      ("tuner", Test_tuner.tests);
      ("search", Test_search.tests);
      ("parallel", Test_parallel.tests);
      ("telemetry", Test_telemetry.tests);
      ("cache", Test_cache.tests);
      ("store", Test_store.tests);
      ("serve", Test_serve.tests);
      ("fuzz", Test_fuzz.tests);
      ("incremental", Frozen_incremental.tests);
      ("frozen-passes", Frozen_passes.tests);
      ("flags", Test_flags.tests);
      ("vm", Test_vm.tests);
      ("obf", Test_obf.tests);
      ("corpus", Test_corpus.tests);
      ("binsight", Test_binsight.tests);
    ]
