(* Cache-correctness tests for the compile-memo layer, the NCD size
   cache, and the persisted tuning database.

   Memoization is only legal because compilation is a pure function of
   (profile, arch, flag vector, AST) — and size caching because
   compression is a pure function of the stream bytes.  These tests pin
   that down from several directions:

   - a full [Tuner.tune] run with the memo on must equal the same run
     with the memo off, while the counters satisfy the conservation
     invariant [hits_on + compilations_on = compilations_off];
   - [Memo.find_or_compile] must return structurally identical binaries
     to a fresh pipeline compile, for random repaired vectors;
   - every (vector, ncd) pair a tuned run persists through [Database]
     must agree with a from-scratch recompile + NCD — so lookups over
     repair-induced duplicate vectors can never diverge from a fresh
     compile. *)

let term_small =
  { Search.max_evaluations = 60; plateau_window = 40; plateau_epsilon = 0.0035 }

let test_memo_on_off_equal () =
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let on = Bintuner.Tuner.tune ~termination:term_small ~profile bench in
      let off =
        Bintuner.Tuner.tune ~termination:term_small ~memoize:false ~profile
          bench
      in
      let label = name ^ "/" ^ profile.Toolchain.Flags.profile_name in
      Alcotest.(check (list bool))
        (label ^ ": best_vector") (Array.to_list on.best_vector)
        (Array.to_list off.best_vector);
      Alcotest.(check (float 0.0))
        (label ^ ": best_ncd") on.best_ncd off.best_ncd;
      Alcotest.(check int) (label ^ ": iterations") on.iterations off.iterations;
      Alcotest.(check (list (pair int (float 0.0))))
        (label ^ ": history") on.history off.history;
      Alcotest.(check (list bool))
        (label ^ ": refined_vector")
        (Array.to_list on.refined_vector)
        (Array.to_list off.refined_vector);
      (* the memo actually worked... *)
      Alcotest.(check bool) (label ^ ": memo saw hits") true (on.cache_hits >= 1);
      Alcotest.(check int) (label ^ ": no hits when disabled") 0 off.cache_hits;
      (* ...and the traffic is conserved: every request the disabled run
         compiled was either compiled or served from cache by the enabled
         run *)
      Alcotest.(check int)
        (label ^ ": hits + compilations invariant")
        off.compilations
        (on.cache_hits + on.compilations))
    [ ("462.libquantum", Toolchain.Flags.llvm); ("429.mcf", Toolchain.Flags.gcc) ]

(* [Memo.find_or_compile] vs a fresh pipeline compile, on random repaired
   vectors — twice through the memo, so the second request is a
   guaranteed cache hit. *)
let prop_memo_matches_fresh_compile =
  QCheck.Test.make ~name:"memo-served binaries equal fresh compiles" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (bseed, vseed) ->
      let bench =
        List.nth Corpus.all (bseed mod List.length Corpus.all)
      in
      let prog = Corpus.program bench in
      let profile =
        if vseed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
      in
      let rng = Util.Rng.create (vseed * 7 + 3) in
      let n = Array.length profile.flags in
      let v =
        Toolchain.Constraints.repair profile rng
          (Array.init n (fun _ -> Util.Rng.bool rng))
      in
      let memo = Bintuner.Memo.create () in
      let key =
        Bintuner.Memo.key
          ~program:(Digest.to_hex (Digest.string bench.Corpus.source))
          ~profile:profile.profile_name ~arch:Isa.Insn.X86_64 v
      in
      let compile () = Toolchain.Pipeline.compile_flags profile v prog in
      let first = Bintuner.Memo.find_or_compile memo ~key compile in
      let second = Bintuner.Memo.find_or_compile memo ~key compile in
      let fresh = compile () in
      first = fresh && second = fresh
      && Bintuner.Memo.hits memo = 1
      && Bintuner.Memo.misses memo = 1)

(* The memo's byte budget must hold while two worker domains hammer it
   with more distinct entries than the budget admits — eviction runs
   under the same lock as admission, so the bound is an invariant, not a
   steady-state.  Values served under eviction pressure stay correct. *)
let test_memo_byte_bound_under_parallelism () =
  let mkbin i =
    {
      Isa.Binary.arch = Isa.Insn.X86_64;
      profile = "gcc-10.2";
      opt_label = "test";
      text = String.make 2048 (Char.chr (65 + (i mod 26)));
      data = "";
      data_words = [||];
      symbols = [||];
      functions = [||];
      entry = 0;
      ret_reg = 0;
    }
  in
  (* each entry costs ~2 KiB + overhead, so a 16 KiB budget holds only a
     handful of the 64 distinct keys — constant eviction *)
  let memo = Bintuner.Memo.create ~max_bytes:(16 * 1024) () in
  Parallel.Pool.with_pool 2 (fun pool ->
      let results =
        Parallel.Pool.map pool
          (fun i ->
            let k = i mod 64 in
            let b =
              Bintuner.Memo.find_or_compile memo
                ~key:(Printf.sprintf "k%d" k)
                (fun () -> mkbin k)
            in
            b.Isa.Binary.text.[0])
          (Array.init 512 (fun i -> i))
      in
      Array.iteri
        (fun i c ->
          Alcotest.(check char)
            (Printf.sprintf "value %d intact" i)
            (Char.chr (65 + (i mod 64 mod 26)))
            c)
        results);
  Alcotest.(check bool) "byte bound held" true
    (Bintuner.Memo.bytes memo <= Bintuner.Memo.max_bytes memo);
  Alcotest.(check bool) "entries bounded with bytes" true
    (Bintuner.Memo.length memo * 2048 <= Bintuner.Memo.max_bytes memo);
  Alcotest.(check bool) "evictions happened" true
    (Bintuner.Memo.evictions memo > 0);
  (* every call counts exactly one hit or one miss *)
  Alcotest.(check int) "traffic conserved" 512
    (Bintuner.Memo.hits memo + Bintuner.Memo.misses memo)

(* The persisted database of a real tuned run: every recorded fitness —
   including entries for repair-induced duplicate vectors — must be
   reproducible by a from-scratch compile, and [Database.lookup] must
   return exactly the recorded value. *)
let prop_database_lookup_matches_fresh =
  let bench = Corpus.find "462.libquantum" in
  let profile = Toolchain.Flags.llvm in
  let result =
    lazy (Bintuner.Tuner.tune ~termination:term_small ~profile bench)
  in
  QCheck.Test.make ~name:"database lookups never diverge from a fresh compile"
    ~count:20 QCheck.small_nat (fun i ->
      let r = Lazy.force result in
      let run = Bintuner.Database.of_result r profile in
      let entries = Array.of_list run.entries in
      let vector, recorded = entries.(i mod Array.length entries) in
      let prog = Corpus.program bench in
      let baseline = Toolchain.Pipeline.compile_preset profile "O0" prog in
      let fresh = Toolchain.Pipeline.compile_flags profile vector prog in
      let recomputed = Bintuner.Tuner.fitness_of_binaries fresh baseline in
      Bintuner.Database.lookup run vector = Some recorded
      && recorded = [| recomputed |])

(* --- the NCD size cache --- *)

(* Cached vs uncached NCD, equal to the bit, on every corpus benchmark:
   [distance_via] over a shared Sizecache must reproduce the plain
   [distance] at the cache's level — querying each pair twice so the
   second round is served entirely from the table. *)
let test_sizecache_distance_exact () =
  let cache = Compress.Sizecache.create () in
  let level = Compress.Sizecache.level cache in
  List.iter
    (fun bench ->
      let prog = Corpus.program bench in
      let stream preset =
        Bintuner.Tuner.code_stream
          (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc preset prog)
      in
      let baseline = stream "O0" and candidate = stream "O2" in
      let uncached = Compress.Ncd.distance ~level candidate baseline in
      List.iter
        (fun round ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: cached ncd, round %d" bench.Corpus.bname round)
            uncached
            (Compress.Ncd.distance_via cache candidate baseline))
        [ 1; 2 ])
    Corpus.all;
  Alcotest.(check bool) "second rounds hit" true
    (Compress.Sizecache.hits cache >= 3 * List.length Corpus.all)

(* LRU eviction changes counters, never results: a capacity-2 cache
   cycling through many distinct streams keeps evicting, yet every
   answer equals the direct computation; re-querying an evicted key
   misses again instead of lying. *)
let test_sizecache_eviction_only_counters () =
  let cache = Compress.Sizecache.create ~capacity:2 () in
  let level = Compress.Sizecache.level cache in
  let streams =
    Array.init 12 (fun i ->
        String.concat ""
          (List.init 80 (fun k -> Printf.sprintf "op%d_%d;" (i mod 5) (k mod 7))))
  in
  for round = 1 to 3 do
    Array.iteri
      (fun i s ->
        Alcotest.(check int)
          (Printf.sprintf "size stream %d round %d" i round)
          (Compress.Lz.compressed_size ~level s)
          (Compress.Sizecache.size cache s))
      streams
  done;
  Alcotest.(check bool) "bounded" true (Compress.Sizecache.length cache <= 2);
  (* 12 distinct streams through 2 slots: every round re-misses *)
  Alcotest.(check bool) "eviction forced re-misses" true
    (Compress.Sizecache.misses cache > Array.length streams)

let test_sizecache_counters () =
  let cache = Compress.Sizecache.create () in
  Alcotest.(check (pair int int)) "fresh" (0, 0)
    (Compress.Sizecache.hits cache, Compress.Sizecache.misses cache);
  let s = String.make 500 'k' in
  ignore (Compress.Sizecache.size cache s : int);
  Alcotest.(check (pair int int)) "one miss" (0, 1)
    (Compress.Sizecache.hits cache, Compress.Sizecache.misses cache);
  ignore (Compress.Sizecache.size cache s : int);
  Alcotest.(check (pair int int)) "then one hit" (1, 1)
    (Compress.Sizecache.hits cache, Compress.Sizecache.misses cache);
  (* pair keys are ordered and distinct from solo keys *)
  ignore (Compress.Sizecache.size_pair cache s "tail" : int);
  ignore (Compress.Sizecache.size_pair cache "tail" s : int);
  Alcotest.(check (pair int int)) "ordered pair keys both miss" (1, 3)
    (Compress.Sizecache.hits cache, Compress.Sizecache.misses cache);
  Alcotest.(check int) "pair size is the concatenation's"
    (Compress.Lz.compressed_size
       ~level:(Compress.Sizecache.level cache)
       (s ^ "tail"))
    (Compress.Sizecache.size_pair cache s "tail")

(* a full tuned run reports nonzero size-cache traffic, and the cached
   fitness values match the database invariant already checked above *)
let test_tuner_reports_sizecache_traffic () =
  let r =
    Bintuner.Tuner.tune ~termination:term_small ~profile:Toolchain.Flags.gcc
      (Corpus.find "429.mcf")
  in
  Alcotest.(check bool) "ncd cache saw hits" true (r.ncd_cache_hits > 0);
  Alcotest.(check bool) "ncd cache saw misses" true (r.ncd_cache_misses > 0)

(* --- the pass-prefix snapshot store --- *)

(* Raw store semantics and the counter conservation invariant:
   every lookup is exactly one hit or one miss, duplicates keep the
   first value, and an entry larger than the whole budget is refused. *)
let test_incremental_counters () =
  let module I = Bintuner.Incremental in
  let t = I.create ~max_bytes:4096 () in
  Alcotest.(check (pair int int)) "fresh" (0, 0) (I.hits t, I.misses t);
  Alcotest.(check int) "fresh lookups" 0 (I.lookups t);
  Alcotest.(check (option string)) "cold miss" None (I.find t "k1");
  I.store t "k1" "v1";
  Alcotest.(check (option string)) "warm hit" (Some "v1") (I.find t "k1");
  I.store t "k1" "v2";
  Alcotest.(check (option string)) "keep-first" (Some "v1") (I.find t "k1");
  I.store t "big" (String.make 8192 'x');
  Alcotest.(check (option string)) "oversized refused" None (I.find t "big");
  Alcotest.(check int) "lookups = hits + misses"
    (I.hits t + I.misses t) (I.lookups t);
  Alcotest.(check bool) "bytes within budget" true
    (I.bytes t <= I.max_bytes t)

(* Eviction pressure changes counters, never results: a store far too
   small to hold every snapshot of even one compile keeps evicting
   mid-compile, yet every binary equals the scratch compile. *)
let test_incremental_eviction_only_results_intact () =
  let bench = Corpus.find "429.mcf" in
  let prog = Corpus.program bench in
  let profile = Toolchain.Flags.gcc in
  let store = Bintuner.Incremental.create ~max_bytes:(32 * 1024) () in
  let snapshot = Bintuner.Incremental.snapshot_store store in
  List.iter
    (fun preset ->
      let scratch = Toolchain.Pipeline.compile_preset profile preset prog in
      let cached =
        Toolchain.Pipeline.compile_preset profile ~snapshot preset prog
      in
      Alcotest.(check bool)
        (preset ^ ": thrashing store still bit-identical")
        true (cached = scratch))
    [ "O0"; "O1"; "O2"; "O3"; "Os"; "O2"; "O3" ];
  Alcotest.(check bool) "eviction actually happened" true
    (Bintuner.Incremental.evictions store > 0);
  Alcotest.(check bool) "stayed within budget" true
    (Bintuner.Incremental.bytes store <= Bintuner.Incremental.max_bytes store);
  Alcotest.(check int) "conservation under eviction"
    (Bintuner.Incremental.hits store + Bintuner.Incremental.misses store)
    (Bintuner.Incremental.lookups store)

(* Concurrent tuning through one shared prefix store: -j 2 must equal
   -j 1 bit-for-bit (racing workers publish and resume snapshots in
   nondeterministic order; only counters may differ). *)
let test_tune_incremental_j_independent () =
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let run j =
        Parallel.Pool.with_pool j (fun pool ->
            Bintuner.Tuner.tune ~termination:term_small ~pool ~incremental:true
              ~profile bench)
      in
      let r1 = run 1 and r2 = run 2 in
      let label = name ^ "/" ^ profile.Toolchain.Flags.profile_name ^ " j1=j2" in
      Alcotest.(check (list bool))
        (label ^ ": best_vector") (Array.to_list r1.best_vector)
        (Array.to_list r2.best_vector);
      Alcotest.(check (float 0.0)) (label ^ ": best_ncd") r1.best_ncd r2.best_ncd;
      Alcotest.(check int) (label ^ ": iterations") r1.iterations r2.iterations;
      Alcotest.(check (list (pair int (float 0.0))))
        (label ^ ": history") r1.history r2.history;
      Alcotest.(check bool)
        (label ^ ": refined binaries bit-identical") true
        (r1.refined_binary = r2.refined_binary);
      (* both runs really exercised the store *)
      Alcotest.(check bool) (label ^ ": j1 store hit") true (r1.incr_hits > 0);
      Alcotest.(check bool) (label ^ ": j2 store hit") true (r2.incr_hits > 0))
    [ ("462.libquantum", Toolchain.Flags.llvm) ]

let tests =
  [
    Alcotest.test_case "memo on/off differential" `Slow test_memo_on_off_equal;
    Alcotest.test_case "incremental store counters" `Quick
      test_incremental_counters;
    Alcotest.test_case "incremental eviction only counters" `Slow
      test_incremental_eviction_only_results_intact;
    Alcotest.test_case "tune incremental j-independent" `Slow
      test_tune_incremental_j_independent;
    Alcotest.test_case "memo byte bound under -j 2" `Quick
      test_memo_byte_bound_under_parallelism;
    QCheck_alcotest.to_alcotest prop_memo_matches_fresh_compile;
    QCheck_alcotest.to_alcotest prop_database_lookup_matches_fresh;
    Alcotest.test_case "sizecache ncd exact on corpus" `Slow
      test_sizecache_distance_exact;
    Alcotest.test_case "sizecache eviction only counters" `Quick
      test_sizecache_eviction_only_counters;
    Alcotest.test_case "sizecache counters" `Quick test_sizecache_counters;
    Alcotest.test_case "tuner reports sizecache traffic" `Slow
      test_tuner_reports_sizecache_traffic;
  ]
