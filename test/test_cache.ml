(* Cache-correctness tests for the compile-memo layer and the persisted
   tuning database.

   Memoization is only legal because compilation is a pure function of
   (profile, arch, flag vector, AST).  These tests pin that down from
   three directions:

   - a full [Tuner.tune] run with the memo on must equal the same run
     with the memo off, while the counters satisfy the conservation
     invariant [hits_on + compilations_on = compilations_off];
   - [Memo.find_or_compile] must return structurally identical binaries
     to a fresh pipeline compile, for random repaired vectors;
   - every (vector, ncd) pair a tuned run persists through [Database]
     must agree with a from-scratch recompile + NCD — so lookups over
     repair-induced duplicate vectors can never diverge from a fresh
     compile. *)

let term_small =
  { Ga.Genetic.max_evaluations = 60; plateau_window = 40; plateau_epsilon = 0.0035 }

let test_memo_on_off_equal () =
  List.iter
    (fun (name, profile) ->
      let bench = Corpus.find name in
      let on = Bintuner.Tuner.tune ~termination:term_small ~profile bench in
      let off =
        Bintuner.Tuner.tune ~termination:term_small ~memoize:false ~profile
          bench
      in
      let label = name ^ "/" ^ profile.Toolchain.Flags.profile_name in
      Alcotest.(check (list bool))
        (label ^ ": best_vector") (Array.to_list on.best_vector)
        (Array.to_list off.best_vector);
      Alcotest.(check (float 0.0))
        (label ^ ": best_ncd") on.best_ncd off.best_ncd;
      Alcotest.(check int) (label ^ ": iterations") on.iterations off.iterations;
      Alcotest.(check (list (pair int (float 0.0))))
        (label ^ ": history") on.history off.history;
      Alcotest.(check (list bool))
        (label ^ ": refined_vector")
        (Array.to_list on.refined_vector)
        (Array.to_list off.refined_vector);
      (* the memo actually worked... *)
      Alcotest.(check bool) (label ^ ": memo saw hits") true (on.cache_hits >= 1);
      Alcotest.(check int) (label ^ ": no hits when disabled") 0 off.cache_hits;
      (* ...and the traffic is conserved: every request the disabled run
         compiled was either compiled or served from cache by the enabled
         run *)
      Alcotest.(check int)
        (label ^ ": hits + compilations invariant")
        off.compilations
        (on.cache_hits + on.compilations))
    [ ("462.libquantum", Toolchain.Flags.llvm); ("429.mcf", Toolchain.Flags.gcc) ]

(* [Memo.find_or_compile] vs a fresh pipeline compile, on random repaired
   vectors — twice through the memo, so the second request is a
   guaranteed cache hit. *)
let prop_memo_matches_fresh_compile =
  QCheck.Test.make ~name:"memo-served binaries equal fresh compiles" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (bseed, vseed) ->
      let bench =
        List.nth Corpus.all (bseed mod List.length Corpus.all)
      in
      let prog = Corpus.program bench in
      let profile =
        if vseed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
      in
      let rng = Util.Rng.create (vseed * 7 + 3) in
      let n = Array.length profile.flags in
      let v =
        Toolchain.Constraints.repair profile rng
          (Array.init n (fun _ -> Util.Rng.bool rng))
      in
      let memo = Bintuner.Memo.create () in
      let key =
        Bintuner.Memo.key ~profile:profile.profile_name ~arch:Isa.Insn.X86_64 v
      in
      let compile () = Toolchain.Pipeline.compile_flags profile v prog in
      let first = Bintuner.Memo.find_or_compile memo ~key compile in
      let second = Bintuner.Memo.find_or_compile memo ~key compile in
      let fresh = compile () in
      first = fresh && second = fresh
      && Bintuner.Memo.hits memo = 1
      && Bintuner.Memo.misses memo = 1)

(* The persisted database of a real tuned run: every recorded fitness —
   including entries for repair-induced duplicate vectors — must be
   reproducible by a from-scratch compile, and [Database.lookup] must
   return exactly the recorded value. *)
let prop_database_lookup_matches_fresh =
  let bench = Corpus.find "462.libquantum" in
  let profile = Toolchain.Flags.llvm in
  let result =
    lazy (Bintuner.Tuner.tune ~termination:term_small ~profile bench)
  in
  QCheck.Test.make ~name:"database lookups never diverge from a fresh compile"
    ~count:20 QCheck.small_nat (fun i ->
      let r = Lazy.force result in
      let run = Bintuner.Database.of_result r profile in
      let entries = Array.of_list run.entries in
      let vector, recorded = entries.(i mod Array.length entries) in
      let prog = Corpus.program bench in
      let baseline = Toolchain.Pipeline.compile_preset profile "O0" prog in
      let fresh = Toolchain.Pipeline.compile_flags profile vector prog in
      let recomputed = Bintuner.Tuner.fitness_of_binaries fresh baseline in
      Bintuner.Database.lookup run vector = Some recorded
      && recomputed = recorded)

let tests =
  [
    Alcotest.test_case "memo on/off differential" `Slow test_memo_on_off_equal;
    QCheck_alcotest.to_alcotest prop_memo_matches_fresh_compile;
    QCheck_alcotest.to_alcotest prop_database_lookup_matches_fresh;
  ]
