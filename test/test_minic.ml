(* Frontend tests: lexer, parser, semantic checks. *)

open Minic

let parse_expr_string s = Ast.expr_to_string (Parser.parse_expr s)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "x += 0x1F << 2; // comment") in
  Alcotest.(check int) "token count" 7 (List.length toks);
  match toks with
  | [ IDENT "x"; PLUS_ASSIGN; INT 31; SHL; INT 2; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_char_literals () =
  match List.map fst (Lexer.tokenize "'a' '\\n' '\\''") with
  | [ INT 97; INT 10; INT 39; EOF ] -> ()
  | _ -> Alcotest.fail "char literals"

let test_lexer_string () =
  match List.map fst (Lexer.tokenize "\"hi\\n\"") with
  | [ STRING "hi\n"; EOF ] -> ()
  | _ -> Alcotest.fail "string literal"

let test_lexer_block_comment () =
  match List.map fst (Lexer.tokenize "a /* b \n c */ d") with
  | [ IDENT "a"; IDENT "d"; EOF ] -> ()
  | _ -> Alcotest.fail "block comment"

let test_lexer_errors () =
  Alcotest.check_raises "unterminated comment"
    (Lexer.Error ("unterminated comment", 1))
    (fun () -> ignore (Lexer.tokenize "/* oops"));
  Alcotest.check_raises "bad char"
    (Lexer.Error ("unexpected character '@'", 1))
    (fun () -> ignore (Lexer.tokenize "@"))

let test_expr_precedence () =
  Alcotest.(check string) "mul binds tighter" "(1 + (2 * 3))"
    (parse_expr_string "1 + 2 * 3");
  Alcotest.(check string) "shift vs compare" "((1 << 2) < 9)"
    (parse_expr_string "1 << 2 < 9");
  Alcotest.(check string) "and/or" "((a && b) || c)"
    (parse_expr_string "a && b || c");
  Alcotest.(check string) "ternary" "(a ? b : (c ? d : e))"
    (parse_expr_string "a ? b : c ? d : e");
  Alcotest.(check string) "unary minus" "(-3 + x)" (parse_expr_string "-3 + x")

let test_parse_program_shapes () =
  let p =
    Parser.parse
      {|
      int g = 4;
      int arr[3] = {1, 2};
      int msg[] = "ab";
      int f(int a, int b) { return a + b; }
      int main() {
        int x = f(g, 2);
        for (int i = 0; i < 3; i++) { x += arr[i]; }
        do { x--; } while (x > 10);
        switch (x) { case 1: case 2: break; default: x = 0; }
        return x;
      }
      |}
  in
  Alcotest.(check int) "globals" 3 (List.length p.Ast.globals);
  Alcotest.(check int) "funcs" 2 (List.length p.Ast.funcs);
  match p.Ast.globals with
  | [ Ast.Gvar ("g", 4); Ast.Garr ("arr", 3, [ 1; 2 ]); Ast.Garr ("msg", 3, [ 97; 98; 0 ]) ]
    -> ()
  | _ -> Alcotest.fail "global shapes"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  expect_error "int f( { }";
  expect_error "int f() { return; ";
  expect_error "int f() { x = ; }";
  expect_error "int a[] ;"

let test_sema_accepts_corpus () =
  List.iter
    (fun b -> ignore (Corpus.program b))
    Corpus.all

let expect_sema_error src =
  match Sema.analyze src with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.fail "sema should reject"

let test_sema_rejects () =
  expect_sema_error "int main() { return y; }";
  expect_sema_error "int main() { int x; x[0] = 1; }";
  expect_sema_error "int a[2]; int main() { a = 1; }";
  expect_sema_error "int f(int x) { return x; } int main() { return f(); }";
  expect_sema_error "int main() { break; }";
  expect_sema_error "int f() { return 0; }";
  (* no main *)
  expect_sema_error "int main(int x) { return x; }";
  expect_sema_error "int main() { return 0; } int main() { return 1; }";
  expect_sema_error
    "int main() { switch (1) { case 1: break; case 1: break; } return 0; }"

let test_stdlib_linked () =
  let p = Sema.analyze "int main() { return strlen(0); }" in
  Alcotest.(check bool) "strlen present" true
    (List.exists (fun f -> f.Ast.fname = "strlen") p.Ast.funcs);
  Alcotest.(check bool) "__mem present" true
    (List.exists
       (function Ast.Garr ("__mem", _, _) -> true | _ -> false)
       p.Ast.globals)

let test_stdlib_not_duplicated () =
  let p = Sema.analyze "int strlen(int x) { return x; } int main() { return strlen(3); }" in
  let count =
    List.length (List.filter (fun f -> f.Ast.fname = "strlen") p.Ast.funcs)
  in
  Alcotest.(check int) "user strlen wins" 1 count

let test_ast_size_measures () =
  let p = Sema.analyze "int main() { int x = 1 + 2; return x; }" in
  Alcotest.(check bool) "program size positive" true (Ast.program_size p > 0)

let prop_expr_roundtrip_parse =
  (* printing then reparsing a random expression yields the same tree *)
  let rec gen_expr depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof [ map (fun n -> Ast.Int n) (0 -- 100); return (Ast.Var "x") ]
    else
      frequency
        [
          (2, map (fun n -> Ast.Int n) (0 -- 100));
          (2, return (Ast.Var "x"));
          ( 3,
            map2
              (fun op (a, b) -> Ast.Binary (op, a, b))
              (oneofl Ast.[ Add; Sub; Mul; Div; Band; Shl; Lt; Eq; Land ])
              (pair (gen_expr (depth - 1)) (gen_expr (depth - 1))) );
          (1, map (fun a -> Ast.Unary (Ast.Bnot, a)) (gen_expr (depth - 1)));
        ]
  in
  QCheck.Test.make ~name:"expr print/parse roundtrip" ~count:200
    (QCheck.make (gen_expr 4))
    (fun e ->
      let printed = Ast.expr_to_string e in
      let reparsed = Parser.parse_expr printed in
      (* negative literal folding means Int (-n) can reparse as Unary;
         compare printed forms instead *)
      Ast.expr_to_string reparsed = printed)

let tests =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "char literals" `Quick test_lexer_char_literals;
    Alcotest.test_case "string literal" `Quick test_lexer_string;
    Alcotest.test_case "block comment" `Quick test_lexer_block_comment;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "precedence" `Quick test_expr_precedence;
    Alcotest.test_case "program shapes" `Quick test_parse_program_shapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "sema accepts corpus" `Quick test_sema_accepts_corpus;
    Alcotest.test_case "sema rejects" `Quick test_sema_rejects;
    Alcotest.test_case "stdlib linked" `Quick test_stdlib_linked;
    Alcotest.test_case "stdlib not duplicated" `Quick test_stdlib_not_duplicated;
    Alcotest.test_case "ast sizes" `Quick test_ast_size_measures;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip_parse;
  ]
