(* The strategy-contract harness: every registered strategy (ga, hill,
   anneal, random, ensemble) must honour the Search engine's contract —
   budget, repair, best/history bookkeeping, seeds-up-front, plateau
   termination, and determinism (including through a parallel batch
   hook) — plus the frozen-GA differential locking the GA port
   bit-for-bit to the pre-refactor engine. *)

let strategies () = List.map (fun n -> (n, Search.of_name n)) Search.all_names

let onemax g =
  float_of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 g)

let no_plateau budget =
  (* window past the budget: the engine can only stop on the budget *)
  { Search.max_evaluations = budget;
    plateau_window = (2 * budget) + 10;
    plateau_epsilon = 0.0 }

let run_strategy ?batch_fitness ~seed ~ngenes ~budget ~seeds ~repair ~fitness
    strategy =
  let rng = Util.Rng.create seed in
  Search.run_scalar ?batch_fitness ~rng ~termination:(no_plateau budget)
    ~problem:{ Search.ngenes; seeds; repair }
    ~fitness strategy

(* (a) the evaluation budget is never exceeded, and [evaluations]
   reports exactly the number of fitness calls *)
let prop_budget =
  QCheck.Test.make ~name:"every strategy respects the evaluation budget"
    ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (seed, b) ->
      let budget = 5 + (b mod 60) in
      List.for_all
        (fun (_, strategy) ->
          let calls = ref 0 in
          let fitness g =
            incr calls;
            float_of_int (Hashtbl.hash (Array.to_list g) mod 1000)
          in
          let o =
            run_strategy ~seed ~ngenes:12 ~budget ~seeds:[]
              ~repair:(fun g -> g) ~fitness strategy
          in
          o.Search.evaluations <= budget && !calls = o.Search.evaluations)
        (strategies ()))

(* (b) every genome a strategy proposes reaches the fitness already
   repair-fixed (the repair is idempotent, so fixed ⇔ repair g = g) *)
let prop_repair_fixed =
  QCheck.Test.make ~name:"every proposed genome is repair-fixed" ~count:20
    QCheck.small_nat
    (fun seed ->
      let repair g =
        g.(0) <- false;
        if g.(3) then g.(4) <- true;
        g
      in
      let fixed g =
        let c = repair (Array.copy g) in
        c = g
      in
      List.for_all
        (fun (_, strategy) ->
          let ok = ref true in
          let fitness g =
            if not (fixed g) then ok := false;
            onemax g
          in
          ignore
            (run_strategy ~seed ~ngenes:12 ~budget:50 ~seeds:[] ~repair
               ~fitness strategy);
          !ok)
        (strategies ()))

(* (c) best_fitness = max over history; history is monotone, one entry
   per evaluation *)
let prop_best_is_history_max =
  QCheck.Test.make ~name:"best_fitness is the history max" ~count:30
    QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun (_, strategy) ->
          let fitness g =
            float_of_int (Hashtbl.hash (seed, Array.to_list g) mod 1000)
          in
          let o =
            run_strategy ~seed ~ngenes:12 ~budget:60 ~seeds:[]
              ~repair:(fun g -> g) ~fitness strategy
          in
          let rec monotone = function
            | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
            | _ -> true
          in
          List.length o.Search.history = o.Search.evaluations
          && monotone o.Search.history
          && (o.Search.history = []
             || o.Search.best_fitness
                = List.fold_left (fun a (_, f) -> max a f) neg_infinity
                    o.Search.history)
          && abs_float (fitness o.Search.best -. o.Search.best_fitness) < 1e-9)
        (strategies ()))

(* (d) identical seed ⇒ identical outcome *)
let prop_deterministic =
  QCheck.Test.make ~name:"every strategy is deterministic in the seed"
    ~count:15 QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun (name, _) ->
          let fitness g =
            float_of_int (Hashtbl.hash (Array.to_list g) mod 1000)
          in
          let once () =
            run_strategy ~seed ~ngenes:14 ~budget:50 ~seeds:[]
              ~repair:(fun g -> g) ~fitness (Search.of_name name)
          in
          let a = once () and b = once () in
          a.Search.best = b.Search.best
          && a.Search.best_fitness = b.Search.best_fitness
          && a.Search.evaluations = b.Search.evaluations
          && a.Search.history = b.Search.history)
        (strategies ()))

(* (d, -j 2) the outcome is independent of the batch hook's parallelism *)
let test_deterministic_under_pool () =
  Parallel.Pool.with_pool 2 (fun pool ->
      List.iter
        (fun name ->
          let fitness g =
            float_of_int (Hashtbl.hash (Array.to_list g) mod 1000)
          in
          let run ?batch_fitness () =
            run_strategy ?batch_fitness ~seed:42 ~ngenes:16 ~budget:60
              ~seeds:[ Array.make 16 false; Array.make 16 true ]
              ~repair:(fun g -> g) ~fitness (Search.of_name name)
          in
          let seq = run () in
          let par =
            run ~batch_fitness:(fun gs -> Parallel.Pool.map pool fitness gs) ()
          in
          Alcotest.(check bool)
            (name ^ ": sequential = pooled")
            true
            (seq.Search.best = par.Search.best
            && seq.Search.best_fitness = par.Search.best_fitness
            && seq.Search.evaluations = par.Search.evaluations
            && seq.Search.history = par.Search.history))
        Search.all_names)

(* every strategy evaluates all seed vectors up front: the only
   high-fitness genome is the *last* seed, and the budget is too small
   for any strategy to rediscover it by search *)
let test_all_seeds_enter_every_strategy () =
  let ngenes = 48 in
  let magic = Array.init ngenes (fun i -> i mod 2 = 0) in
  let seeds =
    List.init 4 (fun k -> Array.init ngenes (fun i -> i = k)) @ [ Array.copy magic ]
  in
  List.iter
    (fun name ->
      let o =
        run_strategy ~seed:5 ~ngenes ~budget:8 ~seeds ~repair:(fun g -> g)
          ~fitness:(fun g -> if g = magic then 1000.0 else 0.0)
          (Search.of_name name)
      in
      Alcotest.(check (float 1e-9))
        (name ^ ": last seed evaluated")
        1000.0 o.Search.best_fitness;
      Alcotest.(check bool)
        (name ^ ": all five seeds scored")
        true
        (o.Search.evaluations >= 5))
    Search.all_names

(* the shared plateau window stops every strategy on a flat landscape
   long before the budget *)
let test_plateau_stops_every_strategy () =
  List.iter
    (fun name ->
      let rng = Util.Rng.create 3 in
      let o =
        Search.run_scalar ~rng
          ~termination:
            { Search.max_evaluations = 10_000;
              plateau_window = 32;
              plateau_epsilon = 0.0035 }
          ~problem:{ Search.ngenes = 12; seeds = []; repair = (fun g -> g) }
          ~fitness:(fun _ -> 1.0)
          (Search.of_name name)
      in
      Alcotest.(check bool)
        (name ^ ": plateau fires well before the budget")
        true
        (o.Search.evaluations >= 32 && o.Search.evaluations <= 500))
    Search.all_names

(* every strategy's proposals satisfy the real flag constraints when
   repaired by the real constraint solver *)
let test_strategies_respect_real_constraints () =
  let profile = Toolchain.Flags.gcc in
  let ngenes = Array.length profile.Toolchain.Flags.flags in
  List.iter
    (fun name ->
      let rng = Util.Rng.create 11 in
      let ok = ref true in
      let fitness g =
        if not (Toolchain.Constraints.valid profile g) then ok := false;
        onemax g
      in
      let seeds =
        List.filter_map
          (fun n -> Toolchain.Flags.preset profile n)
          [ "O1"; "O2"; "O3"; "Os" ]
      in
      ignore
        (Search.run_scalar ~rng ~termination:(no_plateau 40)
           ~problem:
             {
               Search.ngenes;
               seeds;
               repair = Toolchain.Constraints.repair profile rng;
             }
           ~fitness (Search.of_name name));
      Alcotest.(check bool)
        (name ^ ": every evaluated genome satisfies the constraints")
        true !ok)
    Search.all_names

(* the guided strategies actually search: each must solve (or nearly
   solve) onemax within a 500-evaluation budget *)
let test_strategies_on_onemax () =
  let run name =
    (run_strategy ~seed:21 ~ngenes:16 ~budget:500 ~seeds:[]
       ~repair:(fun g -> g) ~fitness:onemax (Search.of_name name))
      .Search.best_fitness
  in
  Alcotest.(check bool) "ga solves onemax" true (run "ga" >= 15.0);
  Alcotest.(check bool) "hill climb solves onemax" true (run "hill" >= 15.0);
  Alcotest.(check bool) "anneal near optimum" true (run "anneal" >= 13.0);
  Alcotest.(check bool) "ensemble near optimum" true (run "ensemble" >= 14.0)

(* the ensemble spreads budget across its sub-strategies: with telemetry
   enabled, every sub gets picked at least once (the round-robin
   warm-up), and the picks sum to the generation count *)
let test_ensemble_allocates_across_subs () =
  let t = Telemetry.create () in
  Telemetry.set_global t;
  Fun.protect ~finally:(fun () -> Telemetry.set_global Telemetry.null)
  @@ fun () ->
  ignore
    (run_strategy ~seed:13 ~ngenes:14 ~budget:200 ~seeds:[]
       ~repair:(fun g -> g)
       ~fitness:(fun g ->
         float_of_int (Hashtbl.hash (Array.to_list g) mod 1000))
       (Search.of_name "ensemble"));
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        ("ensemble picked " ^ sub ^ " at least once")
        true
        (Telemetry.counter_value t ("search.ensemble.pick." ^ sub) >= 1))
    [ "ga"; "hill"; "anneal"; "random" ]

(* --- the frozen-GA differential: the port is bit-identical --- *)

let frozen_vs_search ~seed ~ngenes ~budget ~window ~epsilon ~seeds ~fitness
    ~rng_repair () =
  let termination =
    { Search.max_evaluations = budget;
      plateau_window = window;
      plateau_epsilon = epsilon }
  in
  let make_repair rng g =
    if rng_repair then begin
      (* consumes the shared rng stream, like Toolchain.Constraints.repair *)
      let i = Util.Rng.int rng ngenes in
      g.(i) <- false;
      g.(0) <- false;
      g
    end
    else begin
      g.(0) <- false;
      g
    end
  in
  let frozen =
    let rng = Util.Rng.create seed in
    Frozen_ga.run ~rng ~params:Frozen_ga.default_params
      ~termination:
        {
          Frozen_ga.max_evaluations = budget;
          plateau_window = window;
          plateau_epsilon = epsilon;
        }
      ~ngenes ~seeds ~repair:(make_repair rng) ~fitness ()
  in
  let ported =
    let rng = Util.Rng.create seed in
    Search.run_scalar ~rng ~termination
      ~problem:{ Search.ngenes; seeds; repair = make_repair rng }
      ~fitness
      (Search.Genetic.strategy ())
  in
  frozen.Frozen_ga.best = ported.Search.best
  && frozen.Frozen_ga.best_fitness = ported.Search.best_fitness
  && frozen.Frozen_ga.evaluations = ported.Search.evaluations
  && frozen.Frozen_ga.history = ported.Search.history

let prop_ga_differential =
  QCheck.Test.make
    ~name:"ported GA is bit-identical to the frozen pre-refactor engine"
    ~count:40
    QCheck.(pair small_nat bool)
    (fun (seed, rng_repair) ->
      let ngenes = 10 + (seed mod 8) in
      let seeds =
        if seed mod 3 = 0 then []
        else
          [ Array.init ngenes (fun i -> i mod 2 = 0);
            Array.init ngenes (fun i -> i < 3) ]
      in
      frozen_vs_search ~seed ~ngenes
        ~budget:(30 + (seed mod 70))
        ~window:40 ~epsilon:0.0035 ~seeds
        ~fitness:(fun g ->
          float_of_int (Hashtbl.hash (seed, Array.to_list g) mod 1000)
          /. 100.0)
        ~rng_repair ())

let test_ga_differential_landscapes () =
  (* a few hand-picked regimes the random property may not hit: plateau
     landscapes, tiny budgets, seed-heavy populations *)
  List.iter
    (fun (label, seed, budget, window, epsilon, flat) ->
      let ngenes = 12 in
      let fitness =
        if flat then fun _ -> 1.0
        else fun g -> onemax g
      in
      Alcotest.(check bool) label true
        (frozen_vs_search ~seed ~ngenes ~budget ~window ~epsilon
           ~seeds:(List.init 6 (fun k -> Array.init ngenes (fun i -> i = k)))
           ~fitness ~rng_repair:true ()))
    [
      ("flat plateau", 1, 400, 32, 0.0035, true);
      ("tiny budget", 2, 4, 1000, 0.0, false);
      ("onemax long run", 3, 300, 60, 0.001, false);
    ]

(* --- the Pareto archive --- *)

(* deterministic pseudo-random (genome, fitness-vector) pools: the
   properties below need arbitrary insert sequences without threading a
   QCheck generator through arrays *)
let pareto_pool ~seed ~axes n =
  List.init n (fun i ->
      let h k = Hashtbl.hash (seed, i, k) in
      let genome = Array.init 8 (fun b -> (h (-1)) land (1 lsl b) <> 0) in
      let vec = Array.init axes (fun a -> float_of_int (h a mod 17) /. 4.0) in
      (genome, vec))

let prop_pareto_front_non_dominated =
  QCheck.Test.make
    ~name:"pareto archive: no front member dominates another" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (seed, n) ->
      let axes = 1 + (seed mod 3) in
      let t = Search.Pareto.create ~bound:8 () in
      List.iter
        (fun (g, v) -> ignore (Search.Pareto.insert t g v : bool))
        (pareto_pool ~seed ~axes (1 + (n mod 40)));
      let front = Search.Pareto.front t in
      Search.Pareto.is_non_dominated front
      && List.length front <= 8
      && List.length front >= 1)

let prop_pareto_order_insensitive =
  QCheck.Test.make
    ~name:"pareto archive: front independent of insert order (unpruned)"
    ~count:200 QCheck.small_nat
    (fun seed ->
      let pool = pareto_pool ~seed ~axes:2 30 in
      let build order =
        (* bound past the pool size: the crowding prune never fires, so
           the archive is exactly the non-dominated set of the inserts *)
        let t = Search.Pareto.create ~bound:100 () in
        List.iter (fun (g, v) -> ignore (Search.Pareto.insert t g v : bool)) order;
        List.map snd (Search.Pareto.front t)
      in
      build pool = build (List.rev pool))

let test_pareto_crowding_keeps_extremes () =
  (* an anti-correlated diagonal is all mutually non-dominated: pruning
     down to a tight bound must keep both per-axis extremes (crowding
     distance infinity), sacrificing only interior points *)
  let t = Search.Pareto.create ~bound:4 () in
  let n = 32 in
  for i = 0 to n - 1 do
    let g = Array.init 8 (fun b -> i land (1 lsl b) <> 0) in
    ignore
      (Search.Pareto.insert t g
         [| float_of_int i; float_of_int (n - 1 - i) |]
        : bool)
  done;
  let front = List.map snd (Search.Pareto.front t) in
  Alcotest.(check int) "pruned to the bound" 4 (List.length front);
  Alcotest.(check bool) "axis-0 extreme kept" true
    (List.exists (fun v -> v.(0) = float_of_int (n - 1)) front);
  Alcotest.(check bool) "axis-1 extreme kept" true
    (List.exists (fun v -> v.(1) = float_of_int (n - 1)) front)

let test_pareto_dominated_never_enters () =
  let t = Search.Pareto.create ~bound:8 () in
  let g i = Array.init 4 (fun b -> i land (1 lsl b) <> 0) in
  Alcotest.(check bool) "first point enters" true
    (Search.Pareto.insert t (g 1) [| 1.0; 1.0 |]);
  Alcotest.(check bool) "dominated point rejected" false
    (Search.Pareto.insert t (g 2) [| 0.5; 1.0 |]);
  Alcotest.(check bool) "duplicate vector rejected" false
    (Search.Pareto.insert t (g 3) [| 1.0; 1.0 |]);
  Alcotest.(check bool) "dominating point evicts" true
    (Search.Pareto.insert t (g 4) [| 2.0; 2.0 |]);
  Alcotest.(check int) "only the dominator remains" 1 (Search.Pareto.size t)

(* --- the vector engine's 1-objective path is the scalar engine --- *)

let test_vector_engine_matches_scalar_on_every_strategy () =
  (* same fitness exposed two ways: the historical scalar hook, and a
     2-axis vector whose scalarization reads axis 0.  Every strategy
     must produce the identical trajectory — strategies rank on the
     scalarized score, and the archive consumes no randomness. *)
  List.iter
    (fun name ->
      let f g = float_of_int (Hashtbl.hash (Array.to_list g) mod 1000) /. 50.0 in
      let termination = no_plateau 80 in
      let problem = { Search.ngenes = 14; seeds = []; repair = (fun g -> g) } in
      let scalar =
        let rng = Util.Rng.create 31 in
        Search.run_scalar ~rng ~termination ~problem ~fitness:f
          (Search.of_name name)
      in
      let vector =
        let rng = Util.Rng.create 31 in
        Search.run ~rng ~termination ~problem
          ~scalarize:(fun v -> v.(0))
          ~axes:[ "ncd"; "aux" ]
          ~fitness:(fun g -> [| f g; -.f g |])
          (Search.of_name name)
      in
      Alcotest.(check bool)
        (name ^ ": scalar trajectory = 1-axis-scalarized vector trajectory")
        true
        (scalar.Search.best = vector.Search.best
        && scalar.Search.best_fitness = vector.Search.best_fitness
        && scalar.Search.evaluations = vector.Search.evaluations
        && scalar.Search.history = vector.Search.history);
      Alcotest.(check bool)
        (name ^ ": vector run reports a non-dominated front")
        true
        (vector.Search.front <> []
        && Search.Pareto.is_non_dominated vector.Search.front))
    Search.all_names

(* --- plateau termination at non-positive fitness --- *)

let test_plateau_fires_on_negative_fitness () =
  (* regression: relative gain is meaningless at a non-positive
     incumbent.  A fitness crawling upward by 1e-9 per evaluation from
     -10 never plateaued under the old [best <= old_best] rule — the
     run always burned the whole budget.  The absolute-gain fallback
     must stop it at the first window check. *)
  let calls = ref 0 in
  let fitness _ =
    incr calls;
    -10.0 +. (1e-9 *. float_of_int !calls)
  in
  List.iter
    (fun name ->
      calls := 0;
      let rng = Util.Rng.create 17 in
      let o =
        Search.run_scalar ~rng
          ~termination:
            { Search.max_evaluations = 10_000;
              plateau_window = 32;
              plateau_epsilon = 0.0035 }
          ~problem:{ Search.ngenes = 10; seeds = []; repair = (fun g -> g) }
          ~fitness (Search.of_name name)
      in
      Alcotest.(check bool)
        (name ^ ": plateau fires despite sub-epsilon negative crawl")
        true
        (o.Search.evaluations >= 32 && o.Search.evaluations <= 500))
    Search.all_names

(* --- the objective spec --- *)

let test_objective_parse_and_scalarize () =
  let spec = Search.Objective.parse "ncd,gadgets:0.5" in
  Alcotest.(check (list string))
    "axis names" [ "ncd"; "gadgets" ]
    (Search.Objective.names spec);
  Alcotest.(check string) "round-trip" "ncd,gadgets:0.5"
    (Search.Objective.to_string spec);
  let s = Search.Objective.scalarize spec in
  Alcotest.(check (float 1e-12)) "weighted sum" 0.8 (s [| 0.6; 0.4 |]);
  Alcotest.(check bool) "default is the scalar-NCD spec" true
    (Search.Objective.is_scalar_ncd Search.Objective.default);
  Alcotest.(check bool) "weighted ncd is not the scalar path" false
    (Search.Objective.is_scalar_ncd (Search.Objective.parse "ncd:2"));
  List.iter
    (fun bad ->
      match Search.Objective.parse bad with
      | _ -> Alcotest.fail ("parse accepted " ^ bad)
      | exception Invalid_argument _ -> ())
    [ ""; "ncd,ncd"; "bogus"; "ncd:-1"; "ncd:0"; "gadgets:" ]

let tests =
  [
    QCheck_alcotest.to_alcotest prop_budget;
    QCheck_alcotest.to_alcotest prop_repair_fixed;
    QCheck_alcotest.to_alcotest prop_best_is_history_max;
    QCheck_alcotest.to_alcotest prop_deterministic;
    Alcotest.test_case "deterministic under -j 2" `Quick
      test_deterministic_under_pool;
    Alcotest.test_case "all seeds enter every strategy" `Quick
      test_all_seeds_enter_every_strategy;
    Alcotest.test_case "plateau stops every strategy" `Quick
      test_plateau_stops_every_strategy;
    Alcotest.test_case "strategies respect real constraints" `Quick
      test_strategies_respect_real_constraints;
    Alcotest.test_case "strategies solve onemax" `Quick
      test_strategies_on_onemax;
    Alcotest.test_case "ensemble allocates across subs" `Quick
      test_ensemble_allocates_across_subs;
    QCheck_alcotest.to_alcotest prop_ga_differential;
    Alcotest.test_case "ga differential landscapes" `Quick
      test_ga_differential_landscapes;
    QCheck_alcotest.to_alcotest prop_pareto_front_non_dominated;
    QCheck_alcotest.to_alcotest prop_pareto_order_insensitive;
    Alcotest.test_case "pareto crowding keeps extremes" `Quick
      test_pareto_crowding_keeps_extremes;
    Alcotest.test_case "pareto domination rules" `Quick
      test_pareto_dominated_never_enters;
    Alcotest.test_case "vector engine matches scalar on every strategy" `Quick
      test_vector_engine_matches_scalar_on_every_strategy;
    Alcotest.test_case "plateau fires on negative fitness" `Quick
      test_plateau_fires_on_negative_fitness;
    Alcotest.test_case "objective parse and scalarize" `Quick
      test_objective_parse_and_scalarize;
  ]
