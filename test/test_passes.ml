(* Pass-level unit tests: each flag-gated pass is exercised in isolation
   against the IR interpreter, and its structural effect is asserted
   (the transformation must actually fire on code built to trigger it). *)

let interp_of ast options passes input =
  let ir = Vir.Lower.lower_program ~options ast in
  List.iter (fun f -> List.iter (fun p -> p f) passes) ir.Vir.Ir.funcs;
  let r = Vir.Interp.run ir ~input in
  (Vir.Interp.output_to_string r.output, r.return_value, ir)

let check_same_behaviour ?(options = Vir.Lower.default_options) src passes =
  let ast = Minic.Sema.analyze src in
  let out0, rv0, _ = interp_of ast Vir.Lower.default_options [] [| 3; 4 |] in
  let out1, rv1, ir = interp_of ast options passes [| 3; 4 |] in
  Alcotest.(check string) "output" out0 out1;
  Alcotest.(check int) "return" rv0 rv1;
  ir

let loops_src =
  {|
  int a[64];
  int main() {
    int s = 0;
    for (int i = 0; i < 50; i++) { a[i] = i * input(0); }
    for (int i = 0; i < 50; i++) { s += a[i]; }
    int n = 10;
    do { s += n; n--; } while (n);
    print_int(s);
    return 0;
  }
  |}

let baseline = [ Passes.Cleanup.run_baseline ]

let test_mem2reg_removes_slots () =
  let ir = check_same_behaviour loops_src [ Passes.Cleanup.mem2reg ] in
  List.iter
    (fun f -> Alcotest.(check int) "no slots left" 0 f.Vir.Ir.nslots)
    ir.funcs

let test_lvn_folds_constants () =
  let ast = Minic.Sema.analyze "int main() { int x = 2 + 3; print_int(x * 4); return 0; }" in
  let ir = Vir.Lower.lower_program ast in
  List.iter Passes.Cleanup.run_baseline ir.funcs;
  let main = List.find (fun f -> f.Vir.Ir.fname = "main") ir.funcs in
  (* after folding, the print operand is the constant 20 *)
  let has_const_print =
    List.exists
      (fun b ->
        List.exists
          (function Vir.Ir.Print_int (Vir.Ir.Imm 20) -> true | _ -> false)
          b.Vir.Ir.instrs)
      main.blocks
  in
  Alcotest.(check bool) "folded to print 20" true has_const_print

let test_dce_removes_dead_code () =
  let ast =
    Minic.Sema.analyze
      "int main() { int dead = 5 * 1000; int live = 2; print_int(live); return 0; }"
  in
  let ir = Vir.Lower.lower_program ast in
  let before = Vir.Ir.program_instr_count ir in
  List.iter Passes.Cleanup.run_baseline ir.funcs;
  Alcotest.(check bool) "instructions removed" true
    (Vir.Ir.program_instr_count ir < before)

let test_simplify_cfg_reachability () =
  let ast =
    Minic.Sema.analyze
      "int main() { if (1) { print_int(1); } else { print_int(2); } return 0; }"
  in
  let ir = Vir.Lower.lower_program ast in
  List.iter Passes.Cleanup.run_baseline ir.funcs;
  let main = List.find (fun f -> f.Vir.Ir.fname = "main") ir.funcs in
  Alcotest.(check bool) "dead branch eliminated" true
    (List.length main.blocks <= 2)

let count_instrs pred (ir : Vir.Ir.program) =
  List.fold_left
    (fun acc (f : Vir.Ir.func) ->
      List.fold_left
        (fun acc (b : Vir.Ir.block) ->
          acc + List.length (List.filter pred b.instrs))
        acc f.blocks)
    0 ir.funcs

let count_terms pred (ir : Vir.Ir.program) =
  List.fold_left
    (fun acc (f : Vir.Ir.func) ->
      List.fold_left
        (fun acc (b : Vir.Ir.block) -> if pred b.term then acc + 1 else acc)
        acc f.blocks)
    0 ir.funcs

let test_if_convert_emits_selects () =
  let src =
    "int main() { int s = 0; for (int i = 0; i < 20; i++) { if (i & 1) { s = s + i; } else { s = s - 1; } } print_int(s); return 0; }"
  in
  let ir =
    check_same_behaviour src (baseline @ [ Passes.Ir_opt.if_convert ])
  in
  let selects =
    count_instrs (function Vir.Ir.Select _ -> true | _ -> false) ir
  in
  Alcotest.(check bool) "selects emitted" true (selects > 0)

let test_branch_count_reg_fires () =
  let src =
    "int g = 0; int main() { int n = 9; do { g += n; n--; } while (n); print_int(g); return 0; }"
  in
  let ir =
    check_same_behaviour src (baseline @ [ Passes.Ir_opt.branch_count_reg ])
  in
  let loops =
    count_terms (function Vir.Ir.Loop_branch _ -> true | _ -> false) ir
  in
  Alcotest.(check bool) "loop terminator emitted" true (loops > 0)

let test_tail_call_fires () =
  let src =
    "int even(int n); int odd(int n) { if (n == 0) { return 0; } return even(n - 1); } int even(int n) { if (n == 0) { return 1; } return odd(n - 1); } int main() { print_int(even(10)); return 0; }"
  in
  (* forward declarations are not supported: restructure with one helper *)
  ignore src;
  let src =
    "int helper(int x, int n) { if (n <= 0) { return x; } return helper(x * 2, n - 1); } int main() { print_int(helper(1, 8)); return 0; }"
  in
  let ir = check_same_behaviour src (baseline @ [ Passes.Ir_opt.tail_call ]) in
  let tails =
    count_terms (function Vir.Ir.Tail_call _ -> true | _ -> false) ir
  in
  Alcotest.(check bool) "tail call emitted" true (tails > 0)

let test_strength_reduce_removes_div () =
  let src =
    "int main() { int s = 0; for (int i = -20; i < 20; i++) { s += i / 8 + i % 8 + i * 12; } print_int(s); return 0; }"
  in
  let ir =
    check_same_behaviour src
      (baseline @ [ Passes.Ir_opt.strength_reduce; Passes.Cleanup.run_baseline ])
  in
  let divs =
    count_instrs
      (function
        | Vir.Ir.Bin ((Vir.Ir.Div | Vir.Ir.Mod), _, _, Vir.Ir.Imm _) -> true
        | _ -> false)
      ir
  in
  Alcotest.(check int) "no division by constant left" 0 divs

let test_licm_hoists () =
  let src =
    "int main() { int n = input(0); int s = 0; for (int i = 0; i < 30; i++) { s += n * 13; } print_int(s); return 0; }"
  in
  let ir = check_same_behaviour src (baseline @ [ Passes.Ir_opt.licm ]) in
  let main = List.find (fun f -> f.Vir.Ir.fname = "main") ir.funcs in
  (* the multiply must sit in a block outside the loop *)
  let loops = Passes.Cfg_utils.natural_loops main in
  let in_loop label =
    List.exists (fun l -> Passes.Cfg_utils.Iset.mem label l.Passes.Cfg_utils.body) loops
  in
  let mul_outside =
    List.exists
      (fun (b : Vir.Ir.block) ->
        (not (in_loop b.label))
        && List.exists
             (function
               | Vir.Ir.Bin (Vir.Ir.Mul, _, _, Vir.Ir.Imm 13) -> true
               | _ -> false)
             b.instrs)
      main.blocks
  in
  Alcotest.(check bool) "multiply hoisted" true mul_outside

let test_slp_packs_stores () =
  let src =
    "int a[16]; int main() { a[4] = 11; a[5] = 22; a[6] = 33; a[7] = 44; print_int(a[5]); return 0; }"
  in
  let ir = check_same_behaviour src [ Passes.Ir_opt.slp_vectorize ] in
  let packs = count_instrs (function Vir.Ir.Vpack _ -> true | _ -> false) ir in
  Alcotest.(check bool) "vpack emitted" true (packs > 0)

let test_vectorize_lowering () =
  let src =
    "int a[64]; int b[64]; int main() { int dot = 0; for (int i = 0; i < 64; i++) { a[i] = i; b[i] = i * 2; } for (int i = 0; i < 61; i++) { dot += a[i] * b[i]; } print_int(dot); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let out0, rv0, _ = interp_of ast Vir.Lower.default_options [] [||] in
  let out1, rv1, ir =
    interp_of ast { Vir.Lower.merge_conditionals = false; vectorize = true } [] [||]
  in
  Alcotest.(check string) "output" out0 out1;
  Alcotest.(check int) "return" rv0 rv1;
  let vec =
    count_instrs
      (function Vir.Ir.Vbin _ | Vir.Ir.Vload _ -> true | _ -> false)
      ir
  in
  Alcotest.(check bool) "vector instructions" true (vec > 0)

let test_unroll_reduces_backedges () =
  let src =
    "int a[40]; int main() { for (int i = 0; i < 40; i++) { a[i] = i * 3; } print_int(a[39]); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let unrolled = Passes.Ast_opt.unroll ~factor:4 ~full_limit:8 ast in
  Minic.Sema.check unrolled;
  let ir0 = Vir.Lower.lower_program ast in
  let ir1 = Vir.Lower.lower_program unrolled in
  let r0 = Vir.Interp.run ir0 ~input:[||] and r1 = Vir.Interp.run ir1 ~input:[||] in
  Alcotest.(check string) "behaviour" (Vir.Interp.output_to_string r0.output)
    (Vir.Interp.output_to_string r1.output);
  Alcotest.(check bool) "fewer dynamic branches" true (r1.steps < r0.steps)

let test_full_unroll_straightlines () =
  let src = "int a[8]; int main() { for (int i = 0; i < 8; i++) { a[i] = i; } print_int(a[7]); return 0; }" in
  let ast = Minic.Sema.analyze src in
  let unrolled = Passes.Ast_opt.unroll ~factor:4 ~full_limit:8 ast in
  let rec stmt_has_for s =
    match s with
    | Minic.Ast.For _ -> true
    | Minic.Ast.While _ | Minic.Ast.Do_while _ -> false
    | Minic.Ast.If (_, t, e) -> List.exists stmt_has_for (t @ e)
    | Minic.Ast.Block b -> List.exists stmt_has_for b
    | _ -> false
  in
  let main = List.find (fun f -> f.Minic.Ast.fname = "main") unrolled.funcs in
  Alcotest.(check bool) "for loop fully unrolled" false
    (List.exists stmt_has_for main.body)

let test_inline_eliminates_calls () =
  let src =
    "int sq(int x) { return x * x; } int main() { print_int(sq(3) + sq(4)); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let inlined = Passes.Ast_opt.inline ~max_size:20 ~rounds:1 (Passes.Ast_opt.normalize_calls ast) in
  Minic.Sema.check inlined;
  let ir = Vir.Lower.lower_program inlined in
  let r = Vir.Interp.run ir ~input:[||] in
  Alcotest.(check string) "behaviour" "25\n" (Vir.Interp.output_to_string r.output);
  let main = List.find (fun f -> f.Vir.Ir.fname = "main") ir.funcs in
  let calls_sq =
    List.exists
      (fun (b : Vir.Ir.block) ->
        List.exists
          (function Vir.Ir.Call (_, "sq", _) -> true | _ -> false)
          b.instrs)
      main.blocks
  in
  Alcotest.(check bool) "no calls to sq left" false calls_sq

let test_inline_early_returns () =
  let src =
    "int clam(int x) { if (x < 0) { return 0; } if (x > 9) { return 9; } return x; } int main() { print_int(clam(-5) + clam(20) * 10 + clam(4) * 100); return 0; }"
  in
  ignore (check_same_behaviour src []);
  let ast = Minic.Sema.analyze src in
  let inlined = Passes.Ast_opt.inline ~max_size:40 ~rounds:1 (Passes.Ast_opt.normalize_calls ast) in
  let ir = Vir.Lower.lower_program inlined in
  let r = Vir.Interp.run ir ~input:[||] in
  Alcotest.(check string) "early returns" "490\n"
    (Vir.Interp.output_to_string r.output)

let test_inline_skips_recursive () =
  let src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { print_int(fib(10)); return 0; }" in
  let ast = Minic.Sema.analyze src in
  let inlined = Passes.Ast_opt.inline ~max_size:100 ~rounds:2 (Passes.Ast_opt.normalize_calls ast) in
  Alcotest.(check bool) "fib survives" true
    (List.exists (fun f -> f.Minic.Ast.fname = "fib") inlined.funcs);
  let ir = Vir.Lower.lower_program inlined in
  let r = Vir.Interp.run ir ~input:[||] in
  Alcotest.(check string) "fib(10)" "55\n" (Vir.Interp.output_to_string r.output)

let test_unswitch_duplicates_loop () =
  let src =
    "int a[32]; int main() { int flag = input(0); int s = 0; for (int i = 0; i < 32; i++) { if (flag) { s += i; } else { s -= i; } a[i] = s; } print_int(s); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let sw = Passes.Ast_opt.unswitch ast in
  Minic.Sema.check sw;
  let ir0 = Vir.Lower.lower_program ast and ir1 = Vir.Lower.lower_program sw in
  List.iter
    (fun input ->
      let r0 = Vir.Interp.run ir0 ~input and r1 = Vir.Interp.run ir1 ~input in
      Alcotest.(check string) "unswitch behaviour"
        (Vir.Interp.output_to_string r0.output)
        (Vir.Interp.output_to_string r1.output))
    [ [| 0 |]; [| 1 |] ];
  Alcotest.(check bool) "code grew" true
    (Minic.Ast.program_size sw > Minic.Ast.program_size ast)

let test_distribute_splits () =
  let src =
    "int a[32]; int b[32]; int main() { for (int i = 0; i < 32; i++) { a[i] = 0; b[i] = i * i; } print_int(b[9] + a[3]); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let d = Passes.Ast_opt.distribute ast in
  Minic.Sema.check d;
  let ir0 = Vir.Lower.lower_program ast and ir1 = Vir.Lower.lower_program d in
  let r0 = Vir.Interp.run ir0 ~input:[||] and r1 = Vir.Interp.run ir1 ~input:[||] in
  Alcotest.(check string) "behaviour" (Vir.Interp.output_to_string r0.output)
    (Vir.Interp.output_to_string r1.output);
  (* two loops instead of one in main *)
  let count_fors stmts =
    let rec go acc s =
      match s with
      | Minic.Ast.For (_, _, _, b) -> List.fold_left go (acc + 1) b
      | Minic.Ast.While (_, b) | Minic.Ast.Do_while (b, _) ->
        List.fold_left go acc b
      | Minic.Ast.If (_, t, e) -> List.fold_left go acc (t @ e)
      | Minic.Ast.Block b -> List.fold_left go acc b
      | _ -> acc
    in
    List.fold_left go 0 stmts
  in
  let main = List.find (fun f -> f.Minic.Ast.fname = "main") d.funcs in
  Alcotest.(check int) "loop split in two" 2 (count_fors main.body)

let test_unroll_and_jam_fires () =
  let src =
    "int m[64]; int main() { for (int i = 0; i < 8; i = i + 1) { for (int j = 0; j < 8; j = j + 1) { m[i * 8 + j] = i * j + 1; } } int s = 0; for (int i = 0; i < 64; i++) { s += m[i]; } print_int(s); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let j = Passes.Ast_opt.unroll_and_jam ast in
  Minic.Sema.check j;
  let ir0 = Vir.Lower.lower_program ast and ir1 = Vir.Lower.lower_program j in
  let r0 = Vir.Interp.run ir0 ~input:[||] and r1 = Vir.Interp.run ir1 ~input:[||] in
  Alcotest.(check string) "behaviour" (Vir.Interp.output_to_string r0.output)
    (Vir.Interp.output_to_string r1.output);
  Alcotest.(check bool) "transformed" true
    (Minic.Ast.program_size j > Minic.Ast.program_size ast)

let test_builtin_expansion () =
  let src =
    "int main() { memset(10, 7, 5); memcpy(20, 10, 5); print_int(__mem[24] + __mem[14]); return 0; }"
  in
  let ast = Minic.Sema.analyze src in
  let e = Passes.Ast_opt.expand_builtins (Passes.Ast_opt.normalize_calls ast) in
  Minic.Sema.check e;
  let ir = Vir.Lower.lower_program e in
  let r = Vir.Interp.run ir ~input:[||] in
  Alcotest.(check string) "behaviour" "14\n" (Vir.Interp.output_to_string r.output);
  let main = List.find (fun f -> f.Vir.Ir.fname = "main") ir.funcs in
  let has_call name =
    List.exists
      (fun (b : Vir.Ir.block) ->
        List.exists
          (function Vir.Ir.Call (_, n, _) -> n = name | _ -> false)
          b.instrs)
      main.blocks
  in
  Alcotest.(check bool) "memset expanded" false (has_call "memset");
  Alcotest.(check bool) "memcpy expanded" false (has_call "memcpy")

let test_reorder_functions () =
  let bench = Corpus.find "coreutils" in
  let ir = Vir.Lower.lower_program (Corpus.program bench) in
  let order0 = List.map (fun f -> f.Vir.Ir.fname) ir.funcs in
  Passes.Ir_opt.reorder_functions ir;
  let order1 = List.map (fun f -> f.Vir.Ir.fname) ir.funcs in
  Alcotest.(check bool) "order changed" true (order0 <> order1);
  Alcotest.(check (list string)) "same set"
    (List.sort compare order0) (List.sort compare order1)

(* Regression for the verifier sweep: if-conversion speculates arm
   instructions above the branch, so the speculated defs read registers
   that are only assigned on some paths.  That is legal here — the junk
   flows only into select data inputs picked on exactly the defined
   paths — and the verifier's taint-to-sink analysis must accept it.
   Before the taint refinement the strict definite-assignment check
   rejected every if-converted function in the corpus (496 failures). *)
let test_verifier_accepts_if_convert () =
  Toolchain.Pipeline.verify_default := true;
  Fun.protect
    ~finally:(fun () -> Toolchain.Pipeline.verify_default := false)
    (fun () ->
      (* distilled shape: mem2reg promotes y, if_convert speculates y+1 *)
      let src =
        "int g(int a) { int y = 0; if (a > 0) { y = a * 2; } int x = 5; if \
         (a > 0) { x = y + 1; } return x; }\n\
         int main() { print_int(g(3)); print_int(g(-1)); return 0; }"
      in
      let prog = Minic.Sema.analyze src in
      List.iter
        (fun preset ->
          ignore
            (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc preset prog))
        [ "O2"; "O3" ];
      (* the corpus shape that first exposed it: mirai under llvm -O2 on
         arm had 496 sweep failures, all if_convert def-before-use *)
      let bench = Corpus.find "mirai" in
      ignore
        (Toolchain.Pipeline.compile_preset Toolchain.Flags.llvm
           ~arch:Isa.Insn.Arm "O2" (Corpus.program bench)))

let tests =
  [
    Alcotest.test_case "mem2reg" `Quick test_mem2reg_removes_slots;
    Alcotest.test_case "lvn constant folding" `Quick test_lvn_folds_constants;
    Alcotest.test_case "dce" `Quick test_dce_removes_dead_code;
    Alcotest.test_case "simplify-cfg" `Quick test_simplify_cfg_reachability;
    Alcotest.test_case "if-convert" `Quick test_if_convert_emits_selects;
    Alcotest.test_case "branch-count-reg" `Quick test_branch_count_reg_fires;
    Alcotest.test_case "tail call" `Quick test_tail_call_fires;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduce_removes_div;
    Alcotest.test_case "licm" `Quick test_licm_hoists;
    Alcotest.test_case "slp" `Quick test_slp_packs_stores;
    Alcotest.test_case "vectorize" `Quick test_vectorize_lowering;
    Alcotest.test_case "unroll" `Quick test_unroll_reduces_backedges;
    Alcotest.test_case "full unroll" `Quick test_full_unroll_straightlines;
    Alcotest.test_case "inline" `Quick test_inline_eliminates_calls;
    Alcotest.test_case "inline early returns" `Quick test_inline_early_returns;
    Alcotest.test_case "inline skips recursive" `Quick test_inline_skips_recursive;
    Alcotest.test_case "unswitch" `Quick test_unswitch_duplicates_loop;
    Alcotest.test_case "distribute" `Quick test_distribute_splits;
    Alcotest.test_case "unroll-and-jam" `Quick test_unroll_and_jam_fires;
    Alcotest.test_case "builtin expansion" `Quick test_builtin_expansion;
    Alcotest.test_case "reorder functions" `Quick test_reorder_functions;
    Alcotest.test_case "verifier accepts if-convert speculation" `Quick
      test_verifier_accepts_if_convert;
  ]
