(* Unit + property tests for the util library. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 8 (fun _ -> Util.Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Util.Rng.int64 b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_split_independent () =
  let a = Util.Rng.create 7 in
  let b = Util.Rng.split a in
  let xs = List.init 8 (fun _ -> Util.Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Util.Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Util.Rng.create 9 in
  ignore (Util.Rng.int64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Util.Rng.int64 a)
    (Util.Rng.int64 b)

let test_mean_median () =
  check_float "mean" 2.5 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Util.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "mean empty" 0.0 (Util.Stats.mean [])

let test_min_max_median () =
  let mn, mx, md = Util.Stats.min_max_median [ 3.0; 1.0; 7.0; 5.0 ] in
  check_float "min" 1.0 mn;
  check_float "max" 7.0 mx;
  check_float "median" 4.0 md

let test_pearson () =
  check_float "perfect" 1.0
    (Util.Stats.pearson [ 1.0; 2.0; 3.0 ] [ 10.0; 20.0; 30.0 ]);
  check_float "inverse" (-1.0)
    (Util.Stats.pearson [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  check_float "constant" 0.0 (Util.Stats.pearson [ 1.0; 1.0 ] [ 2.0; 3.0 ])

let test_jaccard () =
  check_float "overlap" 0.5 (Util.Stats.jaccard compare [ 1; 2; 3 ] [ 2; 3; 4 ]);
  check_float "empty" 1.0 (Util.Stats.jaccard compare ([] : int list) []);
  check_float "disjoint" 0.0 (Util.Stats.jaccard compare [ 1 ] [ 2 ]);
  check_float "duplicates collapse" 1.0
    (Util.Stats.jaccard compare [ 1; 1; 2 ] [ 2; 2; 1 ])

let test_cdf () =
  let c = Util.Stats.cdf [ 1.0; 1.0; 2.0; 4.0 ] in
  Alcotest.(check int) "distinct points" 3 (List.length c);
  let _, frac1 = List.hd c in
  check_float "first point fraction" 0.5 frac1

let test_percentile () =
  check_float "p0" 1.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] 0.0);
  check_float "p100" 3.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] 1.0);
  check_float "p50" 2.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] 0.5)

let test_percentile_clamped () =
  (* out-of-range ranks used to compute an index outside the sorted
     array: p > 1 read past the end, p < 0 crashed on a negative index *)
  check_float "p>1 clamps to max" 3.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] 1.5);
  check_float "p<0 clamps to min" 1.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] (-0.3));
  check_float "nan clamps to min" 1.0 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] Float.nan);
  check_float "singleton, any p" 7.0 (Util.Stats.percentile [ 7.0 ] 99.0)

let test_render_table () =
  let t =
    Util.Render.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains rule" true (String.contains t '-');
  Alcotest.(check bool) "contains cell" true
    (String.length t > 0 && String.contains t '3')

let prop_pearson_bounded =
  QCheck.Test.make ~name:"pearson in [-1,1]" ~count:200
    QCheck.(pair (list_of_size Gen.(2 -- 20) (float_bound_exclusive 100.0))
              (list_of_size Gen.(2 -- 20) (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      let take n l = List.filteri (fun i _ -> i < n) l in
      let r = Util.Stats.pearson (take n xs) (take n ys) in
      r >= -1.0000001 && r <= 1.0000001)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.0))
    (fun xs ->
      Util.Stats.percentile xs 0.2 <= Util.Stats.percentile xs 0.8)

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "mean/median" `Quick test_mean_median;
    Alcotest.test_case "min-max-median" `Quick test_min_max_median;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "jaccard" `Quick test_jaccard;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile clamped" `Quick test_percentile_clamped;
    Alcotest.test_case "render table" `Quick test_render_table;
    QCheck_alcotest.to_alcotest prop_pearson_bounded;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
