(* Binary static-analysis subsystem (lib/binsight) tests: the
   corpus-wide disassembler differential, the gadget-census DP vs its
   brute-force reference on fuzzed programs, frozen golden digests of
   the inspect JSON, stack-bound sanity, the Bcode analysis memo and
   the provenance feature-vector parity. *)

let archs = [ Isa.Insn.X86_64; Isa.Insn.X86_32; Isa.Insn.Arm; Isa.Insn.Mips ]

let inspect_bench ?(profile = Toolchain.Flags.gcc) ?(arch = Isa.Insn.X86_64)
    ?(preset = "O2") program name =
  let boundaries = Hashtbl.create 64 in
  let bin =
    Toolchain.Pipeline.compile_preset profile ~arch ~boundaries preset program
  in
  (bin, Binsight.Report.inspect ~bench:name ~preset ~ground_truth:boundaries bin)

(* Every corpus program, on every arch, at the extreme presets: the
   recursive descent, the linear sweep and the compiler's ground-truth
   instruction boundaries must agree exactly.  Any mismatch is a real
   defect in codec, assembler or CFG recovery. *)
let test_corpus_differential () =
  List.iter
    (fun (b : Corpus.benchmark) ->
      let program = Corpus.program b in
      List.iter
        (fun arch ->
          List.iter
            (fun preset ->
              let _, r = inspect_bench ~arch ~preset program b.bname in
              Alcotest.(check int)
                (Printf.sprintf "%s %s %s: zero mismatches" b.bname
                   (Isa.Insn.arch_name arch) preset)
                0
                (Binsight.Report.mismatch_count r))
            [ "O0"; "O3" ])
        archs)
    Corpus.all

(* The right-to-left census DP must agree with the O(text·k)
   re-decoding brute force on arbitrary compiled programs. *)
let prop_census_matches_brute =
  QCheck.Test.make ~name:"gadget census DP = brute-force reference" ~count:40
    QCheck.small_nat (fun seed ->
      let prog = Fuzzgen.generate (seed + 9000) in
      let arch = List.nth archs (seed mod 4) in
      let preset = List.nth [ "O0"; "O1"; "O2"; "O3"; "Os" ] (seed mod 5) in
      let profile =
        if seed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
      in
      let bin = Toolchain.Pipeline.compile_preset profile ~arch preset prog in
      let k = 2 + (seed mod 5) in
      let a = Binsight.Gadgets.census ~k bin in
      let b = Binsight.Gadgets.census_brute ~k bin in
      let gkey (g : Binsight.Gadgets.gadget) =
        (g.g_addr, g.g_len, g.g_insns, g.g_bytes, g.g_class)
      in
      a.c_sites = b.c_sites
      && a.c_ret = b.c_ret && a.c_jump = b.c_jump && a.c_call = b.c_call
      && List.map gkey a.c_unique = List.map gkey b.c_unique
      && a.c_per_function = b.c_per_function)

(* Frozen digests of the full inspect JSON for two corpus benchmarks at
   a fixed configuration.  A digest change means the report (disasm
   counts, census, features, provenance vector or the JSON rendering
   itself) changed and EXPERIMENTS.md baselines need re-checking. *)
let test_golden_digests () =
  List.iter
    (fun (name, expected) ->
      let b = Corpus.find name in
      let _, r = inspect_bench (Corpus.program b) b.bname in
      let s = Util.Json.to_string (Binsight.Report.to_json r) in
      Alcotest.(check string)
        (name ^ " inspect JSON digest")
        expected
        (Digest.to_hex (Digest.string s)))
    [
      ("462.libquantum", "492123db037a28916be6b4afef6a5054");
      ("openssl", "1f6f2b81900699b70619825fec5adda1");
    ]

(* Corpus functions are structured code: every stack-depth bound is
   finite and non-negative, and the entry function is always reachable
   in the recovered call graph. *)
let test_stack_bounds_finite () =
  List.iter
    (fun name ->
      let b = Corpus.find name in
      List.iter
        (fun arch ->
          let _, r = inspect_bench ~arch (Corpus.program b) b.bname in
          let feats = r.Binsight.Report.r_features in
          List.iter
            (fun (ff : Binsight.Features.func_features) ->
              match ff.ff_stack with
              | Binsight.Features.Finite d ->
                if d < 0 then
                  Alcotest.failf "%s/%s: negative stack bound %d" b.bname
                    ff.ff_name d
              | Binsight.Features.Unbounded ->
                Alcotest.failf "%s/%s: unbounded stack" b.bname ff.ff_name)
            feats.per_function;
          let bin = r.Binsight.Report.r_bin in
          let entry_name, _, _ =
            bin.Isa.Binary.functions.(bin.Isa.Binary.entry)
          in
          if List.mem entry_name feats.dead_functions then
            Alcotest.failf "%s: entry %s marked dead" b.bname entry_name)
        archs)
    [ "462.libquantum"; "429.mcf" ]

(* Re-analysing the same binary value must hit the per-domain memo and
   return the cached record itself. *)
let test_bcode_memo () =
  let b = Corpus.find "462.libquantum" in
  let bin =
    Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
      (Corpus.program b)
  in
  let a1 = Diffing.Bcode.analyze bin in
  let a2 = Diffing.Bcode.analyze bin in
  Alcotest.(check bool) "second analyze is memo-served" true (a1 == a2);
  Alcotest.(check bool)
    "analysis belongs to the binary" true
    (a1.Diffing.Bcode.binary == bin)

(* The provenance classifier's feature extractor is the binsight one. *)
let test_provenance_parity () =
  let b = Corpus.find "openssl" in
  List.iter
    (fun preset ->
      let bin =
        Toolchain.Pipeline.compile_preset Toolchain.Flags.llvm preset
          (Corpus.program b)
      in
      Alcotest.(check (array (float 0.0)))
        (preset ^ " feature vectors identical")
        (Binsight.Features.provenance_vector bin)
        (Provenance.Classify.features bin))
    [ "O0"; "O3" ]

let tests =
  [
    Alcotest.test_case "corpus disassembly differential" `Quick
      test_corpus_differential;
    QCheck_alcotest.to_alcotest prop_census_matches_brute;
    Alcotest.test_case "inspect JSON golden digests" `Quick
      test_golden_digests;
    Alcotest.test_case "stack bounds finite on corpus" `Quick
      test_stack_bounds_finite;
    Alcotest.test_case "bcode analysis memo" `Quick test_bcode_memo;
    Alcotest.test_case "provenance feature parity" `Quick
      test_provenance_parity;
  ]
