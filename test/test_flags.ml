(* Flag-universe semantics: the search space must be real.  Every flag of
   both profiles must change the produced binary of at least one probe
   benchmark, either standalone on top of -O1 or in a "heavy" context
   (unrolling + inlining) that creates its opportunities.  Flags on the
   [corpus_dormant] list are exercised by the pass-level unit tests
   ([Test_passes]) but happen not to fire on these corpus probes — the
   situation of most real GCC flags on any given program, and the long
   "other flags" tail of the paper's Figure 7. *)

let probes =
  [
    "462.libquantum";
    "coreutils";
    "623.xalancbmk_s";
    "456.hmmer";
    "605.mcf_s";
    (* global-value-numbering opportunities (cross-block redundancies the
       local LVN cannot see) only show up in the larger kernels *)
    "641.leela_s";
  ]

let corpus_dormant =
  [
    (* pure gates / default-selecting alternates *)
    "-fpeephole";
    "-freg-struct-return";
    (* subsumed by a sibling flag at the reduced flag-universe scale *)
    "-fearly-inlining";
    "-ftree-loop-vectorize";
    "-ftree-slp-vectorize";
    "-fslp-vectorize";
    "-fgvn";
    "-fcse-follow-jumps";
    "-fif-convert-aggressive";
    (* transformations whose source patterns the probe kernels lack:
       invariant loop conditionals, constant-argument mem* calls,
       memset-prefix loops, countdown do-while loops, and register
       pressure beyond the allocator pool *)
    "-funswitch-loops";
    "-floop-unswitch";
    "-ftree-loop-distribute-patterns";
    "-floop-distribute";
    "-fbuiltin";
    "-fbranch-count-reg";
    "-fcount-reg";
    "-fcall-used-r8";
    "-fcall-used-r9";
    "-fcall-used-r10";
    "-fcall-used-r11";
  ]

let binary_of profile vector bname =
  (Toolchain.Pipeline.compile_flags profile vector
     (Corpus.program (Corpus.find bname)))
    .Isa.Binary.text

let bases profile =
  let o1 = Option.get (Toolchain.Flags.preset profile "O1") in
  let heavy = Array.copy (Option.get (Toolchain.Flags.preset profile "O3")) in
  List.iter
    (fun n ->
      match Toolchain.Flags.flag_index profile n with
      | i -> heavy.(i) <- true
      | exception Not_found -> ())
    [
      "-funroll-loops";
      "-funroll-all-loops";
      "-funroll-full";
      "-funroll-count-8";
      "-funroll-max-times-8";
      "-finline-functions";
      "-freorder-blocks";
    ];
  [ o1; heavy ]

let flag_has_effect profile base idx =
  (* toggle [idx] with its dependencies enabled and conflicts resolved *)
  let prepare desired =
    let v = Array.copy base in
    List.iter
      (fun rule ->
        match rule with
        | Toolchain.Flags.Requires (a, b)
          when a = profile.Toolchain.Flags.flags.(idx).name ->
          v.(Toolchain.Flags.flag_index profile b) <- true
        | Toolchain.Flags.Requires _ | Toolchain.Flags.Conflicts _ -> ())
      profile.Toolchain.Flags.constraints;
    v.(idx) <- desired;
    List.iter
      (fun rule ->
        match rule with
        | Toolchain.Flags.Conflicts (a, b) ->
          let ia = Toolchain.Flags.flag_index profile a in
          let ib = Toolchain.Flags.flag_index profile b in
          if v.(ia) && v.(ib) then
            if ia = idx then v.(ib) <- false else v.(ia) <- false
        | Toolchain.Flags.Requires _ -> ())
      profile.Toolchain.Flags.constraints;
    v
  in
  let on = prepare true and off = prepare false in
  Toolchain.Constraints.valid profile on
  && Toolchain.Constraints.valid profile off
  && List.exists
       (fun bname -> binary_of profile on bname <> binary_of profile off bname)
       probes

let test_flags_effective profile () =
  Array.iteri
    (fun idx f ->
      if not (List.mem f.Toolchain.Flags.name corpus_dormant) then
        Alcotest.(check bool)
          (profile.Toolchain.Flags.profile_name ^ " " ^ f.name ^ " has effect")
          true
          (List.exists
             (fun base -> flag_has_effect profile base idx)
             (bases profile)))
    profile.Toolchain.Flags.flags

let test_presets_ordered () =
  (* O3 must enable strictly more flags than O1; at the full 250-flag
     scale the paper reports O3 < 48% of the universe — our reduced
     universe (44–47 flags, every one a live knob) concentrates the preset
     density, so the bound checked is proportionally looser *)
  List.iter
    (fun p ->
      let count v = Array.fold_left (fun a b -> if b then a + 1 else a) 0 v in
      let o1 = count p.Toolchain.Flags.preset_o1 in
      let o3 = count p.Toolchain.Flags.preset_o3 in
      let universe = Array.length p.flags in
      Alcotest.(check bool) "O1 < O3" true (o1 < o3);
      Alcotest.(check bool)
        (Printf.sprintf "%s O3 leaves room to search (%d/%d)" p.profile_name
           o3 universe)
        true
        (float_of_int o3 /. float_of_int universe < 0.7))
    Toolchain.Flags.profiles

let test_resolve_matches_preset_compile () =
  (* compiling via the preset API and via its raw vector agree *)
  let p = Toolchain.Flags.gcc in
  let prog = Corpus.program (Corpus.find "429.mcf") in
  let via_preset = (Toolchain.Pipeline.compile_preset p "O2" prog).Isa.Binary.text in
  let via_vector =
    (Toolchain.Pipeline.compile_flags p (Option.get (Toolchain.Flags.preset p "O2")) prog)
      .Isa.Binary.text
  in
  Alcotest.(check bool) "same binary" true (via_preset = via_vector)

let tests =
  [
    Alcotest.test_case "gcc flags effective" `Slow
      (test_flags_effective Toolchain.Flags.gcc);
    Alcotest.test_case "llvm flags effective" `Slow
      (test_flags_effective Toolchain.Flags.llvm);
    Alcotest.test_case "presets ordered" `Quick test_presets_ordered;
    Alcotest.test_case "resolve matches preset" `Quick
      test_resolve_matches_preset_compile;
  ]
