(* The static-analysis subsystem: the generic worklist solver and its
   instances (liveness, dominators, reaching definitions, constant
   propagation, intervals), the IR verifier with its pipeline gate, and
   the MinC lint.

   The solver instances that replaced in-pass fixpoint loops are locked
   differentially against the frozen pre-framework implementations in
   [Frozen_liveness]: liveness and dominator fixpoints are unique, so
   the tables must be identical on every function. *)

open Vir.Ir
module Iset = Analysis.Dataflow.Iset
module DF = Analysis.Dataflow

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let mkfunc ?(params = []) ~nregs blocks =
  {
    fname = "t";
    params;
    blocks;
    next_reg = nregs;
    next_vreg = 0;
    next_label = List.length blocks;
    nslots = 0;
    local_arrays = [];
  }

let mkblock label instrs term = { label; instrs; term }

(* A random but structurally valid CFG: labels 0..n-1, pure instructions
   over a small register pool, terminators targeting existing labels.
   Exercises unreachable blocks, self-loops and irreducible shapes the
   fuzzer's structured programs never produce. *)
let random_func seed =
  let rng = Util.Rng.create seed in
  let n = 1 + Util.Rng.int rng 8 in
  let nregs = 2 + Util.Rng.int rng 6 in
  let reg () = Util.Rng.int rng nregs in
  let target () = Util.Rng.int rng n in
  let blocks =
    List.init n (fun l ->
        let instrs =
          List.init (Util.Rng.int rng 4) (fun _ ->
              match Util.Rng.int rng 3 with
              | 0 -> Mov (reg (), Reg (reg ()))
              | 1 -> Bin (Add, reg (), Reg (reg ()), Reg (reg ()))
              | _ -> Un (Neg, reg (), Reg (reg ())))
        in
        let term =
          match Util.Rng.int rng 5 with
          | 0 -> Ret (Some (Reg (reg ())))
          | 1 | 2 -> Jmp (target ())
          | 3 -> Br (Reg (reg ()), target (), target ())
          | _ ->
            Switch (Reg (reg ()), [ (0, target ()); (7, target ()) ], target ())
        in
        mkblock l instrs term)
  in
  mkfunc ~params:[ 0 ] ~nregs blocks

let table_equal t1 t2 =
  Hashtbl.length t1 = Hashtbl.length t2
  && Hashtbl.fold
       (fun k v acc ->
         acc
         && match Hashtbl.find_opt t2 k with
            | Some v' -> Iset.equal v v'
            | None -> false)
       t1 true

let funcs_of_fuzz seed =
  let prog = Fuzzgen.generate seed in
  let ir = Vir.Lower.lower_program prog in
  let p = Toolchain.Flags.gcc in
  let cfg =
    Toolchain.Flags.resolve p (Option.get (Toolchain.Flags.preset p "O3"))
  in
  let opt = Toolchain.Pipeline.apply_passes cfg prog in
  ir.funcs @ opt.funcs

(* ------------------------------------------------------------------ *)
(* Solver properties                                                   *)
(* ------------------------------------------------------------------ *)

(* The solver terminates on arbitrary CFGs and its solution satisfies
   the liveness dataflow equations:
     out(b) = ∪ succ in(s)      in(b) = use(b) ∪ (out(b) \ def(b)) *)
let prop_liveness_fixpoint =
  QCheck.Test.make ~name:"solver: liveness solution is a fixpoint" ~count:200
    QCheck.small_nat (fun seed ->
      let f = random_func (seed * 7 + 1) in
      let live_in, live_out = DF.Liveness.solve f in
      List.for_all
        (fun b ->
          let out =
            List.fold_left
              (fun acc s -> Iset.union acc (Hashtbl.find live_in s))
              Iset.empty (successors b.term)
          in
          let use, def = Frozen_liveness.block_use_def b in
          Iset.equal out (Hashtbl.find live_out b.label)
          && Iset.equal
               (Iset.union use (Iset.diff out def))
               (Hashtbl.find live_in b.label))
        f.blocks)

let prop_liveness_frozen_random =
  QCheck.Test.make
    ~name:"solver: liveness = frozen in-pass iteration (random CFGs)"
    ~count:200 QCheck.small_nat (fun seed ->
      let f = random_func (seed * 13 + 5) in
      let in1, out1 = DF.Liveness.solve f in
      let in2, out2 = Frozen_liveness.liveness f in
      table_equal in1 in2 && table_equal out1 out2)

let prop_dominators_frozen_random =
  QCheck.Test.make
    ~name:"solver: dominators = frozen iteration (random CFGs)" ~count:200
    QCheck.small_nat (fun seed ->
      let f = random_func (seed * 29 + 3) in
      let d1 = Passes.Cfg_utils.dominators f in
      let d2 = Frozen_liveness.dominators f in
      table_equal d1 d2)

(* Differential lock on real compiler output: raw lowering and the full
   -O3 pipeline of fuzzer-generated programs. *)
let prop_liveness_frozen_fuzzed =
  QCheck.Test.make
    ~name:"solver: liveness/dominators = frozen on fuzzed programs" ~count:25
    QCheck.small_nat (fun seed ->
      List.for_all
        (fun f ->
          let in1, out1 = DF.Liveness.solve f in
          let in2, out2 = Frozen_liveness.liveness f in
          let vin1, vout1 = DF.Vliveness.solve f in
          let vin2, vout2 = Frozen_liveness.vliveness f in
          table_equal in1 in2 && table_equal out1 out2
          && table_equal vin1 vin2 && table_equal vout1 vout2
          && table_equal
               (Passes.Cfg_utils.dominators f)
               (Frozen_liveness.dominators f))
        (funcs_of_fuzz (seed + 500)))

(* ------------------------------------------------------------------ *)
(* Constant propagation and intervals                                  *)
(* ------------------------------------------------------------------ *)

let test_constprop_diamond () =
  (* r1 := 5; branch; both arms r2 := 3; join computes r3 := r1 + r2 *)
  let f =
    mkfunc ~params:[ 0 ] ~nregs:4
      [
        mkblock 0 [ Mov (1, Imm 5) ] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (2, Imm 3) ] (Jmp 3);
        mkblock 2 [ Mov (2, Imm 3) ] (Jmp 3);
        mkblock 3 [ Bin (Add, 3, Reg 1, Reg 2) ] (Ret (Some (Reg 3)));
      ]
  in
  let in_facts, out_facts = DF.Constprop.solve f in
  (match Hashtbl.find in_facts 3 with
  | DF.Constprop.Env env ->
    Alcotest.(check bool)
      "r1 = Const 5 at join" true
      (DF.Constprop.lookup env 1 = DF.Constprop.Const 5);
    Alcotest.(check bool)
      "r2 = Const 3 at join" true
      (DF.Constprop.lookup env 2 = DF.Constprop.Const 3)
  | DF.Constprop.Unreached -> Alcotest.fail "join unreached");
  match Hashtbl.find out_facts 3 with
  | DF.Constprop.Env env ->
    Alcotest.(check bool)
      "r3 = Const 8 at exit" true
      (DF.Constprop.lookup env 3 = DF.Constprop.Const 8)
  | DF.Constprop.Unreached -> Alcotest.fail "exit unreached"

let test_constprop_conflicting_join () =
  (* arms write different constants: the join must be Top *)
  let f =
    mkfunc ~params:[ 0 ] ~nregs:3
      [
        mkblock 0 [] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (1, Imm 4) ] (Jmp 3);
        mkblock 2 [ Mov (1, Imm 9) ] (Jmp 3);
        mkblock 3 [] (Ret (Some (Reg 1)));
      ]
  in
  let in_facts, _ = DF.Constprop.solve f in
  match Hashtbl.find in_facts 3 with
  | DF.Constprop.Env env ->
    Alcotest.(check bool)
      "conflicting constants join to Top" true
      (DF.Constprop.lookup env 1 = DF.Constprop.Top)
  | DF.Constprop.Unreached -> Alcotest.fail "join unreached"

let test_interval_loop_widening () =
  (* r1 counts 0,1,2,... round a loop; widening must terminate and keep
     the sound lower bound 0 while sending the unstable upper bound to
     +∞; the comparison result r2 stays within [0,1] *)
  let f =
    mkfunc ~params:[] ~nregs:3
      [
        mkblock 0 [ Mov (1, Imm 0) ] (Jmp 1);
        mkblock 1
          [ Bin (Add, 1, Reg 1, Imm 1); Bin (Slt, 2, Reg 1, Imm 10) ]
          (Br (Reg 2, 1, 2));
        mkblock 2 [] (Ret (Some (Reg 1)));
      ]
  in
  let in_facts, _ = DF.Interval.solve f in
  match Hashtbl.find in_facts 2 with
  | DF.Interval.Env env ->
    let v = DF.Interval.lookup env 1 in
    Alcotest.(check bool) "counter lower bound stays 0" true (v.DF.Interval.lo >= 0);
    let c = DF.Interval.lookup env 2 in
    Alcotest.(check bool)
      "comparison result within [0,1]" true
      (c.DF.Interval.lo >= 0 && c.DF.Interval.hi <= 1)
  | DF.Interval.Unreached -> Alcotest.fail "exit unreached"

let test_reaching_defs_diamond () =
  let f =
    mkfunc ~params:[ 0 ] ~nregs:2
      [
        mkblock 0 [] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (1, Imm 4) ] (Jmp 3);
        mkblock 2 [ Mov (1, Imm 9) ] (Jmp 3);
        mkblock 3 [] (Ret (Some (Reg 1)));
      ]
  in
  let in_facts, _ = DF.Reaching.solve f in
  let sites = Hashtbl.find in_facts 3 in
  let defs_of_r1 =
    DF.Reaching.Sset.filter (fun (_, _, r) -> r = 1) sites
  in
  Alcotest.(check int)
    "both arm definitions reach the join" 2
    (DF.Reaching.Sset.cardinal defs_of_r1);
  (* the parameter's boundary site reaches too *)
  Alcotest.(check bool)
    "parameter site reaches" true
    (DF.Reaching.Sset.exists (fun (b, _, r) -> b = -1 && r = 0) sites)

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let prog_of_func f = { globals = []; funcs = [ f ] }

let has_check errs c =
  List.exists (fun (e : Analysis.Verifier.error) -> e.check = c) errs

let test_verifier_clean () =
  let f =
    mkfunc ~params:[ 0 ] ~nregs:2
      [
        mkblock 0 [ Bin (Add, 1, Reg 0, Imm 1) ] (Ret (Some (Reg 1)));
      ]
  in
  Alcotest.(check int)
    "clean function verifies" 0
    (List.length (Analysis.Verifier.verify_func (prog_of_func f) f))

let test_verifier_structural () =
  (* a branch to a missing block *)
  let f =
    mkfunc ~params:[] ~nregs:1 [ mkblock 0 [] (Jmp 7) ]
  in
  Alcotest.(check bool)
    "missing branch target reported" true
    (has_check (Analysis.Verifier.verify_func (prog_of_func f) f) "target");
  (* call arity mismatch *)
  let callee =
    mkfunc ~params:[ 0; 1 ] ~nregs:2 [ mkblock 0 [] (Ret (Some (Imm 0))) ]
  in
  let callee = { callee with fname = "callee" } in
  let caller =
    mkfunc ~params:[] ~nregs:1
      [ mkblock 0 [ Call (Some 0, "callee", [ Imm 1 ]) ] (Ret None) ]
  in
  let p = { globals = []; funcs = [ callee; caller ] } in
  Alcotest.(check bool)
    "call arity mismatch reported" true
    (has_check (Analysis.Verifier.verify_func p caller) "call");
  (* slot out of bounds *)
  let f =
    mkfunc ~params:[] ~nregs:1
      [ mkblock 0 [ Slot_load (0, 3) ] (Ret None) ]
  in
  Alcotest.(check bool)
    "slot out of bounds reported" true
    (has_check (Analysis.Verifier.verify_func (prog_of_func f) f) "slot")

let test_verifier_undef_sink () =
  (* r1 assigned on one path only, then returned: the machine-dependent
     value escapes, which must be reported *)
  let f =
    mkfunc ~params:[ 0 ] ~nregs:2
      [
        mkblock 0 [] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (1, Imm 4) ] (Jmp 2);
        mkblock 2 [] (Ret (Some (Reg 1)));
      ]
  in
  Alcotest.(check bool)
    "partially-assigned return value reported" true
    (has_check (Analysis.Verifier.verify_func (prog_of_func f) f) "undef-use")

let test_verifier_speculation_shield () =
  (* the if-conversion shape: a speculated instruction reads a register
     assigned on only some paths, but the result flows only into a
     select data input — legal, the select picks the other arm exactly
     on the unassigned paths *)
  let f =
    mkfunc ~params:[ 0 ] ~nregs:4
      [
        mkblock 0 [ Mov (1, Imm 2) ] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (2, Imm 8) ] (Jmp 2);
        (* speculated: r3 := r2 + 1 where r2 is assigned only via L1 *)
        mkblock 2
          [
            Bin (Add, 3, Reg 2, Imm 1);
            Select (1, Reg 0, Reg 3, Reg 1);
          ]
          (Ret (Some (Reg 1)));
      ]
  in
  Alcotest.(check int)
    "select-shielded speculation verifies" 0
    (List.length (Analysis.Verifier.verify_func (prog_of_func f) f));
  (* ... but the same tainted value reaching a store is an error *)
  let g =
    mkfunc ~params:[ 0 ] ~nregs:4
      [
        mkblock 0 [ Mov (1, Imm 2) ] (Br (Reg 0, 1, 2));
        mkblock 1 [ Mov (2, Imm 8) ] (Jmp 2);
        mkblock 2
          [ Bin (Add, 3, Reg 2, Imm 1); Print_int (Reg 3) ]
          (Ret (Some (Reg 1)));
      ]
  in
  Alcotest.(check bool)
    "tainted value reaching output reported" true
    (has_check (Analysis.Verifier.verify_func (prog_of_func g) g) "undef-use")

(* Every pass prefix of every compile of fuzzer-generated programs must
   verify — the fuzz oracle extension, here on a small dedicated sweep
   (Test_fuzz runs the verifier inside its differential sweeps too). *)
let test_verifier_fuzz_prefixes () =
  List.iter
    (fun seed ->
      let prog = Fuzzgen.generate seed in
      List.iter
        (fun (p, preset) ->
          ignore
            (Toolchain.Pipeline.compile_preset p preset prog))
        [
          (Toolchain.Flags.gcc, "O2");
          (Toolchain.Flags.llvm, "O3");
        ])
    (List.init 6 (fun i -> (i * 59) + 11))

let test_verifier_fuzz_prefixes () =
  Toolchain.Pipeline.verify_default := true;
  Fun.protect
    ~finally:(fun () -> Toolchain.Pipeline.verify_default := false)
    test_verifier_fuzz_prefixes

(* ------------------------------------------------------------------ *)
(* Pipeline gate: a planted miscompile is caught and attributed        *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_broken_pass_attribution () =
  let src = "int main() { int x = 1; int y = x + 2; print_int(y); return y; }" in
  let prog = Minic.Sema.analyze src in
  (* positive control: the gate passes on a healthy pipeline *)
  ignore
    (Toolchain.Pipeline.compile ~verify:true ~arch:Isa.Insn.X86_64
       ~profile:"gcc-10.2" ~opt_label:"-O0" prog);
  (* plant a miscompile inside simplify_cfg: retarget the entry block's
     terminator at a block that does not exist *)
  Toolchain.Pipeline.test_break :=
    Some
      ( "simplify_cfg",
        fun f -> (List.hd f.blocks).term <- Jmp (f.next_label + 17) );
  Fun.protect
    ~finally:(fun () -> Toolchain.Pipeline.test_break := None)
    (fun () ->
      match
        Toolchain.Pipeline.compile ~verify:true ~arch:Isa.Insn.X86_64
          ~profile:"gcc-10.2" ~opt_label:"-O0" prog
      with
      | exception Toolchain.Pipeline.Verification_failed msg ->
        Alcotest.(check bool)
          "failure names the broken pass" true
          (contains msg "after pass 'simplify_cfg'");
        Alcotest.(check bool)
          "failure names the check" true
          (contains msg "[target]")
      | _ -> Alcotest.fail "planted miscompile was not caught")

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_of_src src =
  let prog = Minic.Sema.analyze src in
  let ir =
    Vir.Lower.lower_program
      ~options:{ Vir.Lower.merge_conditionals = false; vectorize = false }
      prog
  in
  Analysis.Lint.lint_program ir

let has_category findings c =
  List.exists (fun (f : Analysis.Lint.finding) -> f.category = c) findings

let test_lint_findings () =
  Alcotest.(check bool)
    "unused local" true
    (has_category
       (lint_of_src "int main() { int unused = 5; return 0; }")
       "unused-local");
  Alcotest.(check bool)
    "unused param" true
    (has_category
       (lint_of_src
          "int g(int a, int b) { return a; }\n\
           int main() { return g(1, 2); }")
       "unused-param");
  Alcotest.(check bool)
    "dead store" true
    (has_category
       (lint_of_src "int main() { int x = 1; x = 2; return x; }")
       "dead-store");
  Alcotest.(check bool)
    "always-true condition" true
    (has_category
       (lint_of_src
          "int main() { int i = 0; while (1) { i = i + 1; if (i > 3) { \
           return i; } } return 0; }")
       "always-true");
  Alcotest.(check bool)
    "unreachable switch arm" true
    (has_category
       (lint_of_src
          "int f(int x) { switch (x & 3) { case 0: return 1; case 5: \
           return 2; } return 3; }\n\
           int main() { return f(7); }")
       "unreachable-switch-arm");
  (* a clean program stays clean *)
  Alcotest.(check int)
    "clean program has no findings" 0
    (List.length
       (lint_of_src "int main() { int x = 1; print_int(x); return x; }"))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_liveness_fixpoint;
    QCheck_alcotest.to_alcotest prop_liveness_frozen_random;
    QCheck_alcotest.to_alcotest prop_dominators_frozen_random;
    QCheck_alcotest.to_alcotest prop_liveness_frozen_fuzzed;
    Alcotest.test_case "constprop diamond" `Quick test_constprop_diamond;
    Alcotest.test_case "constprop conflicting join" `Quick
      test_constprop_conflicting_join;
    Alcotest.test_case "interval loop widening" `Quick
      test_interval_loop_widening;
    Alcotest.test_case "reaching defs diamond" `Quick
      test_reaching_defs_diamond;
    Alcotest.test_case "verifier clean" `Quick test_verifier_clean;
    Alcotest.test_case "verifier structural" `Quick test_verifier_structural;
    Alcotest.test_case "verifier undef sink" `Quick test_verifier_undef_sink;
    Alcotest.test_case "verifier speculation shield" `Quick
      test_verifier_speculation_shield;
    Alcotest.test_case "verifier fuzz pass prefixes" `Slow
      test_verifier_fuzz_prefixes;
    Alcotest.test_case "broken pass attribution" `Quick
      test_broken_pass_attribution;
    Alcotest.test_case "lint findings" `Quick test_lint_findings;
  ]
