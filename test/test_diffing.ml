(* Tests for the diffing stack: block semantics, Hungarian assignment,
   BinHunt, the comparison tools, Precision@1, and the matched-ratio
   metrics. *)

let compile ?(profile = Toolchain.Flags.gcc) ?(preset = "O2") name =
  Toolchain.Pipeline.compile_preset profile preset
    (Corpus.program (Corpus.find name))

(* --- Hungarian assignment --- *)

let test_assignment_simple () =
  let w = [| [| 1.0; 5.0 |]; [| 5.0; 1.0 |] |] in
  Alcotest.(check (list (pair int int))) "anti-diagonal" [ (0, 1); (1, 0) ]
    (Diffing.Assignment.solve w)

let test_assignment_rectangular () =
  let w = [| [| 0.1; 0.9; 0.2 |] |] in
  Alcotest.(check (list (pair int int))) "picks max column" [ (0, 1) ]
    (Diffing.Assignment.solve w)

let test_assignment_optimal_vs_greedy () =
  (* greedy would pick (0,0)=10 then (1,1)=1 → 11; optimal is 9+9=18 *)
  let w = [| [| 10.0; 9.0 |]; [| 9.0; 1.0 |] |] in
  let pairs = Diffing.Assignment.solve w in
  let total = List.fold_left (fun acc (i, j) -> acc +. w.(i).(j)) 0.0 pairs in
  Alcotest.(check (float 1e-9)) "optimal total" 18.0 total

let test_assignment_empty () =
  Alcotest.(check (list (pair int int))) "empty" [] (Diffing.Assignment.solve [||])

let prop_assignment_beats_greedy =
  QCheck.Test.make ~name:"hungarian >= greedy" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 16) (float_bound_exclusive 10.0))
    (fun flat ->
      let w = Array.init 4 (fun i -> Array.init 4 (fun j -> List.nth flat ((4 * i) + j))) in
      let pairs = Diffing.Assignment.solve w in
      let total = List.fold_left (fun acc (i, j) -> acc +. w.(i).(j)) 0.0 pairs in
      (* greedy row-by-row matching *)
      let used = Array.make 4 false in
      let greedy = ref 0.0 in
      for i = 0 to 3 do
        let best = ref (-1) and bv = ref 0.0 in
        for j = 0 to 3 do
          if (not used.(j)) && w.(i).(j) > !bv then begin
            bv := w.(i).(j);
            best := j
          end
        done;
        if !best >= 0 then begin
          used.(!best) <- true;
          greedy := !greedy +. !bv
        end
      done;
      total >= !greedy -. 1e-9)

(* --- block semantics --- *)

let summaries_of bin =
  let c = Diffing.Bcode.analyze bin in
  let ret_reg = bin.Isa.Binary.ret_reg in
  Array.to_list c.funcs
  |> List.concat_map (fun (f : Diffing.Bcode.func) ->
         Array.to_list (Array.map (Diffing.Semantics.summarize ~ret_reg) f.blocks))

let test_semantics_self_equivalent () =
  let bin = compile "429.mcf" in
  List.iter
    (fun s ->
      Alcotest.(check bool) "reflexive" true (Diffing.Semantics.equivalent s s))
    (summaries_of bin)

let test_semantics_register_renaming () =
  (* same computation in different registers: equivalent, not same-regs *)
  let open Isa.Insn in
  let blk insns = { Diffing.Bcode.id = 0; insns; succs = [] } in
  let a =
    Diffing.Semantics.summarize ~ret_reg:0
      (blk [ Ialu (Aadd, 5, 1, Oreg 2); Ist (3, Oimm 0, Oreg 5) ])
  in
  let b =
    Diffing.Semantics.summarize ~ret_reg:0
      (blk [ Ialu (Aadd, 9, 4, Oreg 7); Ist (3, Oimm 0, Oreg 9) ])
  in
  Alcotest.(check bool) "equivalent" true (Diffing.Semantics.equivalent a b);
  Alcotest.(check bool) "different registers" false
    (Diffing.Semantics.same_registers a b)

let test_semantics_reordering () =
  let open Isa.Insn in
  let blk insns = { Diffing.Bcode.id = 0; insns; succs = [] } in
  let a =
    Diffing.Semantics.summarize ~ret_reg:0
      (blk [ Ialu (Aadd, 5, 1, Oimm 3); Ialu (Amul, 6, 2, Oimm 7) ])
  in
  let b =
    Diffing.Semantics.summarize ~ret_reg:0
      (blk [ Ialu (Amul, 6, 2, Oimm 7); Ialu (Aadd, 5, 1, Oimm 3) ])
  in
  Alcotest.(check bool) "instruction reordering invisible" true
    (Diffing.Semantics.equivalent a b);
  Alcotest.(check bool) "same registers" true
    (Diffing.Semantics.same_registers a b)

let test_semantics_fused_compare () =
  (* cmp+setcc+test+jcc vs fused cmp+jcc: same branch condition *)
  let open Isa.Insn in
  let blk insns = { Diffing.Bcode.id = 0; insns; succs = [ 1; 2 ] } in
  let unfused =
    Diffing.Semantics.summarize ~ret_reg:0
      (blk
         [ Icmp (1, Oimm 5); Isetcc (Clt, 3); Itest (3, 3); Ijcc (Cne, 64) ])
  in
  let fused =
    Diffing.Semantics.summarize ~ret_reg:0 (blk [ Icmp (1, Oimm 5); Ijcc (Clt, 32) ])
  in
  (* branch conditions coincide; outputs differ by the setcc register, so
     check fingerprint of branches via output_prints overlap *)
  let br s =
    List.filter (fun _ -> true) (Diffing.Semantics.output_prints s)
  in
  let inter =
    List.filter (fun h -> List.mem h (br fused)) (br unfused)
  in
  Alcotest.(check bool) "shared branch condition" true (inter <> [])

let test_semantics_distinguishes () =
  let open Isa.Insn in
  let blk insns = { Diffing.Bcode.id = 0; insns; succs = [] } in
  let a =
    Diffing.Semantics.summarize ~ret_reg:0 (blk [ Ist (3, Oimm 0, Oimm 1) ])
  in
  let b =
    Diffing.Semantics.summarize ~ret_reg:0 (blk [ Ist (3, Oimm 0, Oimm 2) ])
  in
  Alcotest.(check bool) "different stores differ" false
    (Diffing.Semantics.equivalent a b)

(* --- BinHunt --- *)

let test_binhunt_identity () =
  let bin = compile "429.mcf" in
  Alcotest.(check (float 1e-6)) "self distance zero" 0.0
    (Diffing.Binhunt.diff_score bin bin)

let test_binhunt_symmetryish () =
  let a = compile ~preset:"O1" "429.mcf" and b = compile ~preset:"O0" "429.mcf" in
  let d1 = Diffing.Binhunt.diff_score a b and d2 = Diffing.Binhunt.diff_score b a in
  Alcotest.(check bool) "roughly symmetric" true (abs_float (d1 -. d2) < 0.15)

let test_binhunt_monotone_ladder () =
  let o0 = compile ~preset:"O0" "coreutils" in
  let d p = Diffing.Binhunt.diff_score (compile ~preset:p "coreutils") o0 in
  let d1 = d "O1" and d3 = d "O3" in
  Alcotest.(check bool) "O3 more different than O1" true (d3 > d1);
  Alcotest.(check bool) "scores in range" true
    (d1 > 0.0 && d1 < 1.0 && d3 > 0.0 && d3 <= 1.0)

let test_binhunt_cross_program () =
  (* Different programs must look clearly different.  The absolute level
     is lower than the paper's 0.79 because MinC -O0 boilerplate is more
     uniform than real C (see DESIGN.md §5); what matters is that it sits
     well above same-program comparisons at O0/O1. *)
  let a = compile ~preset:"O0" "coreutils" and b = compile ~preset:"O0" "openssl" in
  Alcotest.(check bool) "wrong pair high" true
    (Diffing.Binhunt.diff_score a b > 0.35)

(* --- tools + precision --- *)

let test_tools_self_similarity () =
  let bin = compile "483.xalancbmk" in
  List.iter
    (fun tool ->
      let r = Diffing.Precision.evaluate tool bin bin in
      Alcotest.(check bool)
        (tool.Diffing.Tools.tool_name ^ " self precision high")
        true
        (r.Diffing.Precision.precision >= 0.6))
    Diffing.Tools.all

let test_precision_degrades_with_optimization () =
  let o0 = compile ~preset:"O0" "coreutils" in
  let o1 = compile ~preset:"O1" "coreutils" in
  let o3 = compile ~preset:"O3" "coreutils" in
  let avg bin =
    let rs = Diffing.Precision.evaluate_all bin o0 in
    Util.Stats.mean (List.map (fun r -> r.Diffing.Precision.precision) rs)
  in
  Alcotest.(check bool) "O3 harder than O1" true (avg o3 <= avg o1)

let test_metrics_ratios () =
  let o0 = compile ~preset:"O0" "429.mcf" in
  let o1 = compile ~preset:"O1" "429.mcf" in
  let m = Diffing.Metrics.compute o1 o0 in
  Alcotest.(check bool) "matched blocks bounded" true
    (m.matched_blocks <= min m.blocks_a m.blocks_b);
  Alcotest.(check bool) "matched edges bounded" true
    (m.matched_edges <= min m.edges_a m.edges_b);
  Alcotest.(check bool) "matched funcs bounded" true
    (m.matched_funcs <= min m.funcs_a m.funcs_b);
  let self = Diffing.Metrics.compute o0 o0 in
  Alcotest.(check int) "self matches all blocks" self.blocks_a
    self.matched_blocks

let tests =
  [
    Alcotest.test_case "assignment simple" `Quick test_assignment_simple;
    Alcotest.test_case "assignment rectangular" `Quick test_assignment_rectangular;
    Alcotest.test_case "assignment optimal" `Quick test_assignment_optimal_vs_greedy;
    Alcotest.test_case "assignment empty" `Quick test_assignment_empty;
    QCheck_alcotest.to_alcotest prop_assignment_beats_greedy;
    Alcotest.test_case "semantics reflexive" `Quick test_semantics_self_equivalent;
    Alcotest.test_case "semantics renaming" `Quick test_semantics_register_renaming;
    Alcotest.test_case "semantics reordering" `Quick test_semantics_reordering;
    Alcotest.test_case "semantics fused cmp" `Quick test_semantics_fused_compare;
    Alcotest.test_case "semantics distinguishes" `Quick test_semantics_distinguishes;
    Alcotest.test_case "binhunt identity" `Quick test_binhunt_identity;
    Alcotest.test_case "binhunt symmetry" `Quick test_binhunt_symmetryish;
    Alcotest.test_case "binhunt ladder" `Quick test_binhunt_monotone_ladder;
    Alcotest.test_case "binhunt cross program" `Quick test_binhunt_cross_program;
    Alcotest.test_case "tools self similarity" `Quick test_tools_self_similarity;
    Alcotest.test_case "precision degrades" `Quick test_precision_degrades_with_optimization;
    Alcotest.test_case "metrics ratios" `Quick test_metrics_ratios;
  ]
