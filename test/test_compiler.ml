(* The compiler's central correctness property: every pass pipeline, at
   every preset, for every architecture, and for random valid flag
   vectors, preserves each benchmark's observable behaviour (output
   stream + exit code), as judged by the IR interpreter and the VX VM. *)

let show (out, rv) =
  Printf.sprintf "%s|%d" (Vir.Interp.output_to_string out) rv

let reference bench =
  let ast = Corpus.program bench in
  let ir = Vir.Lower.lower_program ast in
  List.map
    (fun input ->
      let r = Vir.Interp.run ir ~input in
      show (r.output, r.return_value))
    bench.Corpus.workloads

let vm_behaviour bin bench =
  List.map
    (fun input ->
      let r = Vm.Machine.run bin ~input in
      show (r.Vm.Machine.output, r.Vm.Machine.return_value))
    bench.Corpus.workloads

(* a fast, representative subset for the heavier matrix tests *)
let fast_benchmarks =
  [ "429.mcf"; "462.libquantum"; "483.xalancbmk"; "coreutils"; "openssl"; "mirai" ]

let test_presets_preserve_semantics () =
  List.iter
    (fun bench ->
      let want = reference bench in
      List.iter
        (fun profile ->
          List.iter
            (fun preset ->
              let bin =
                Toolchain.Pipeline.compile_preset profile preset
                  (Corpus.program bench)
              in
              Alcotest.(check (list string))
                (Printf.sprintf "%s %s %s" bench.bname profile.profile_name preset)
                want (vm_behaviour bin bench))
            Toolchain.Flags.preset_names)
        Toolchain.Flags.profiles)
    (List.map Corpus.find fast_benchmarks)

let test_all_corpus_o3_semantics () =
  List.iter
    (fun bench ->
      let want = reference bench in
      let bin =
        Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O3"
          (Corpus.program bench)
      in
      Alcotest.(check (list string)) bench.bname want (vm_behaviour bin bench))
    Corpus.all

let test_all_arches_semantics () =
  let bench = Corpus.find "coreutils" in
  let want = reference bench in
  List.iter
    (fun arch ->
      let bin =
        Toolchain.Pipeline.compile_preset Toolchain.Flags.llvm ~arch "O2"
          (Corpus.program bench)
      in
      Alcotest.(check (list string))
        (Isa.Insn.arch_name arch)
        want (vm_behaviour bin bench))
    Isa.Insn.all_arches

let test_arch_binaries_differ () =
  let bench = Corpus.find "openssl" in
  let texts =
    List.map
      (fun arch ->
        (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc ~arch "O2"
           (Corpus.program bench))
          .Isa.Binary.text)
      Isa.Insn.all_arches
  in
  Alcotest.(check int) "four distinct texts" 4
    (List.length (List.sort_uniq compare texts))

let prop_random_flag_vectors_preserve_semantics =
  (* the property at the heart of BinTuner: any repaired flag vector
     compiles to a functionally identical binary *)
  QCheck.Test.make ~name:"random flag vectors preserve semantics" ~count:40
    QCheck.(pair small_nat (oneofl fast_benchmarks))
    (fun (seed, bname) ->
      let bench = Corpus.find bname in
      let profile =
        if seed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
      in
      let rng = Util.Rng.create (seed * 31 + 7) in
      let n = Array.length profile.flags in
      let v =
        Toolchain.Constraints.repair profile rng
          (Array.init n (fun _ -> Util.Rng.bool rng))
      in
      let bin = Toolchain.Pipeline.compile_flags profile v (Corpus.program bench) in
      vm_behaviour bin bench = reference bench)

let test_presets_produce_distinct_binaries () =
  let bench = Corpus.find "462.libquantum" in
  let texts =
    List.map
      (fun preset ->
        (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc preset
           (Corpus.program bench))
          .Isa.Binary.text)
      Toolchain.Flags.preset_names
  in
  Alcotest.(check int) "five distinct binaries" 5
    (List.length (List.sort_uniq compare texts))

let test_deterministic_compilation () =
  let bench = Corpus.find "coreutils" in
  let compile () =
    (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O3"
       (Corpus.program bench))
      .Isa.Binary.text
  in
  Alcotest.(check bool) "bit-identical rebuild" true (compile () = compile ())

let test_obfuscation_preserves_semantics () =
  List.iter
    (fun bname ->
      let bench = Corpus.find bname in
      let want = reference bench in
      let cfg =
        Toolchain.Flags.resolve Toolchain.Flags.llvm
          Toolchain.Flags.llvm.preset_o1
      in
      let ir = Toolchain.Pipeline.apply_passes cfg (Corpus.program bench) in
      Obf.Ollvm.apply_all ~seed:5 ir;
      let bin =
        Codegen.Emit.compile_program ~arch:Isa.Insn.X86_64 ~profile:"llvm-11.0"
          ~opt_label:"ollvm" ir
      in
      Alcotest.(check (list string)) (bname ^ " obfuscated") want
        (vm_behaviour bin bench))
    [ "462.libquantum"; "coreutils" ]

let test_obfuscation_changes_structure () =
  let bench = Corpus.find "coreutils" in
  let cfg =
    Toolchain.Flags.resolve Toolchain.Flags.llvm Toolchain.Flags.llvm.preset_o1
  in
  let plain_ir = Toolchain.Pipeline.apply_passes cfg (Corpus.program bench) in
  let obf_ir = Toolchain.Pipeline.apply_passes cfg (Corpus.program bench) in
  Obf.Ollvm.apply_all ~seed:5 obf_ir;
  Alcotest.(check bool) "obfuscation grows code" true
    (Vir.Ir.program_instr_count obf_ir > Vir.Ir.program_instr_count plain_ir)

let test_instrumented_call_graph () =
  (* -finstrument-functions must leave behaviour intact but reshape the
     call graph with wrappers *)
  let bench = Corpus.find "coreutils" in
  let profile = Toolchain.Flags.gcc in
  let v = Array.make (Array.length profile.flags) false in
  v.(Toolchain.Flags.flag_index profile "-finstrument-functions") <- true;
  let bin = Toolchain.Pipeline.compile_flags profile v (Corpus.program bench) in
  Alcotest.(check (list string)) "instrumented behaviour" (reference bench)
    (vm_behaviour bin bench);
  let c = Diffing.Bcode.analyze bin in
  Alcotest.(check bool) "wrappers present" true
    (Array.exists
       (fun f ->
         String.length f.Diffing.Bcode.name > 7
         && String.sub f.Diffing.Bcode.name 0 7 = "__real_")
       c.funcs)

let test_vm_agrees_with_interp_on_steps_direction () =
  (* optimization reduces dynamic instruction count on compute kernels *)
  let bench = Corpus.find "462.libquantum" in
  let run preset =
    let bin =
      Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc preset
        (Corpus.program bench)
    in
    (Vm.Machine.run bin ~input:[| 3 |]).Vm.Machine.steps
  in
  Alcotest.(check bool) "O3 faster than O0" true (run "O3" < run "O0")

let tests =
  [
    Alcotest.test_case "presets preserve semantics" `Slow
      test_presets_preserve_semantics;
    Alcotest.test_case "all corpus at O3" `Slow test_all_corpus_o3_semantics;
    Alcotest.test_case "all arches" `Quick test_all_arches_semantics;
    Alcotest.test_case "arch binaries differ" `Quick test_arch_binaries_differ;
    QCheck_alcotest.to_alcotest prop_random_flag_vectors_preserve_semantics;
    Alcotest.test_case "presets distinct" `Quick
      test_presets_produce_distinct_binaries;
    Alcotest.test_case "deterministic" `Quick test_deterministic_compilation;
    Alcotest.test_case "obfuscation semantics" `Quick
      test_obfuscation_preserves_semantics;
    Alcotest.test_case "obfuscation structure" `Quick
      test_obfuscation_changes_structure;
    Alcotest.test_case "instrumentation" `Quick test_instrumented_call_graph;
    Alcotest.test_case "optimization speeds up" `Quick
      test_vm_agrees_with_interp_on_steps_direction;
  ]
