(* VX virtual machine semantics: edge cases the differential tests do not
   isolate — traps, fuel, calling convention details, arithmetic corner
   cases, and the IR interpreter / VM agreement on them. *)

let compile src =
  Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O1"
    (Minic.Sema.analyze src)

let run ?(input = [||]) src =
  let r = Vm.Machine.run (compile src) ~input in
  (Vir.Interp.output_to_string r.output, r.return_value)

let test_division_semantics () =
  let out, _ =
    run
      "int main() { print_int(7 / 2); print_int(-7 / 2); print_int(7 % -2); print_int(5 / 0); print_int(5 % 0); return 0; }"
  in
  (* C-style truncation toward zero; division by zero is total (0) *)
  Alcotest.(check string) "division" "3\n-3\n1\n0\n0\n" out

let test_shift_semantics () =
  let out, _ =
    run
      "int main() { print_int(1 << 10); print_int(-16 >> 2); print_int(3 << 0); return 0; }"
  in
  Alcotest.(check string) "shifts" "1024\n-4\n3\n" out

let test_deep_recursion () =
  let _, rv =
    run
      "int down(int n) { if (n <= 0) { return 0; } return down(n - 1) + 1; } int main() { return down(5000) & 255; }"
  in
  Alcotest.(check int) "deep recursion survives" (5000 land 255) rv

let test_stack_overflow_traps () =
  let src = "int forever(int n) { return forever(n + 1); } int main() { return forever(0); }" in
  match Vm.Machine.run ~fuel:50_000_000 (compile src) ~input:[||] with
  | exception Vm.Machine.Trap _ -> ()
  | exception Vm.Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "unbounded recursion must trap or exhaust fuel"

let test_fuel_exhaustion () =
  let src = "int main() { int x = 0; while (1) { x++; } return x; }" in
  match Vm.Machine.run ~fuel:10_000 (compile src) ~input:[||] with
  | exception Vm.Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_oob_data_traps () =
  (* an out-of-bounds global store traps rather than corrupting memory;
     the index must escape the whole data segment, not just the array *)
  let src = "int a[4]; int main() { a[1000000] = 1; return 0; }" in
  match Vm.Machine.run (compile src) ~input:[||] with
  | exception Vm.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_input_conventions () =
  let out, _ =
    run ~input:[| 11; 22 |]
      "int main() { print_int(input(0)); print_int(input(1)); print_int(input(99)); print_int(input_len()); return 0; }"
  in
  Alcotest.(check string) "inputs" "11\n22\n0\n2\n" out

let test_run_function_args () =
  let bin =
    compile
      "int add3(int a, int b, int c) { return a + b + c; } int main() { return 0; }"
  in
  let fid =
    let found = ref (-1) in
    Array.iteri
      (fun i (n, _, _) -> if n = "add3" then found := i)
      bin.Isa.Binary.functions;
    !found
  in
  let r = Vm.Machine.run_function bin ~fid ~args:[ 1; 2; 3 ] ~input:[||] in
  Alcotest.(check int) "direct call" 6 r.return_value

let test_interp_vm_agree_on_corner_programs () =
  List.iter
    (fun src ->
      let prog = Minic.Sema.analyze src in
      let ir = Vir.Lower.lower_program prog in
      let ri = Vir.Interp.run ir ~input:[| 3 |] in
      let bin = Toolchain.Pipeline.compile_preset Toolchain.Flags.llvm "O3" prog in
      let rv = Vm.Machine.run bin ~input:[| 3 |] in
      Alcotest.(check string) "output parity"
        (Vir.Interp.output_to_string ri.output)
        (Vir.Interp.output_to_string rv.Vm.Machine.output);
      Alcotest.(check int) "exit parity" ri.return_value rv.Vm.Machine.return_value)
    [
      (* empty main *)
      "int main() { return 42; }";
      (* negative modulo chains *)
      "int main() { int s = 0; for (int i = -8; i < 8; i++) { s += i % 3 + i / 3; } print_int(s); return s & 7; }";
      (* switch on negative values falls to default *)
      "int main() { switch (0 - 5) { case 1: return 1; default: print_int(-1); } return 0; }";
      (* deeply nested conditionals *)
      "int main() { int x = input(0); if (x > 0) { if (x > 1) { if (x > 2) { print_int(3); } else { print_int(2); } } else { print_int(1); } } else { print_int(0); } return 0; }";
      (* shadowing in nested blocks *)
      "int main() { int x = 1; { int x = 2; print_int(x); } print_int(x); return 0; }";
      (* ternary chains with side-effect-free arms *)
      "int main() { int a = input(0); print_int(a > 2 ? a > 5 ? 9 : 7 : a); return 0; }";
      (* large constants survive encode/decode *)
      "int main() { int big = 123456789123456; print_int(big); print_int(big * 2 / 2); return 0; }";
    ]

let test_steps_counts_instructions () =
  let bin = compile "int main() { return 7; }" in
  let r = Vm.Machine.run bin ~input:[||] in
  Alcotest.(check bool) "small step count" true (r.steps > 0 && r.steps < 64)

let tests =
  [
    Alcotest.test_case "division" `Quick test_division_semantics;
    Alcotest.test_case "shifts" `Quick test_shift_semantics;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow_traps;
    Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
    Alcotest.test_case "oob traps" `Quick test_oob_data_traps;
    Alcotest.test_case "input conventions" `Quick test_input_conventions;
    Alcotest.test_case "run_function" `Quick test_run_function_args;
    Alcotest.test_case "corner programs" `Quick test_interp_vm_agree_on_corner_programs;
    Alcotest.test_case "step counting" `Quick test_steps_counts_instructions;
  ]
