(* The differential test layer for the parallel evaluation engine.

   Two kinds of guarantees are locked down here:

   1. [Parallel.Pool] mechanics: ordering, empty input, exception
      propagation, nested-map re-entrancy, deterministic map_reduce.

   2. The engine-level determinism contract: for real corpus benchmarks
      under both compiler profiles, [Tuner.tune ~j:1] and
      [Tuner.tune ~j:4] must produce bit-identical [best_vector],
      [best_ncd], [iterations], [history] — and in fact identical
      iteration databases and memo counters.  This is the property that
      makes the parallel engine safe to use for every paper artifact. *)

(* --- Pool unit tests --- *)

let test_pool_map_ordering () =
  Parallel.Pool.with_pool 4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let expected = Array.map (fun i -> i * i) xs in
      List.iter
        (fun chunk_size ->
          Alcotest.(check (array int))
            (Printf.sprintf "squares, chunk_size %d" chunk_size)
            expected
            (Parallel.Pool.map ~chunk_size pool (fun i -> i * i) xs))
        [ 1; 3; 25; 100; 1000 ];
      Alcotest.(check (array int))
        "squares, default chunking" expected
        (Parallel.Pool.map pool (fun i -> i * i) xs))

let test_pool_empty_and_singleton () =
  Parallel.Pool.with_pool 3 (fun pool ->
      Alcotest.(check (array int))
        "empty input" [||]
        (Parallel.Pool.map pool (fun i -> i + 1) [||]);
      Alcotest.(check (list int))
        "singleton list" [ 42 ]
        (Parallel.Pool.map_list pool (fun i -> i * 2) [ 21 ]))

exception Boom of int

let test_pool_exception_propagation () =
  Parallel.Pool.with_pool 4 (fun pool ->
      (* several elements fail; the lowest failing *index* must win,
         whatever the workers' timing *)
      let xs = Array.init 40 (fun i -> i) in
      let attempt () =
        ignore
          (Parallel.Pool.map ~chunk_size:1 pool
             (fun i -> if i >= 7 then raise (Boom i) else i)
             xs)
      in
      Alcotest.check_raises "lowest failing index wins" (Boom 7) attempt;
      (* the pool survives a failed batch *)
      Alcotest.(check (array int))
        "pool usable after failure"
        (Array.map (fun i -> i + 1) xs)
        (Parallel.Pool.map pool (fun i -> i + 1) xs))

let test_pool_nested_map_inlines () =
  Parallel.Pool.with_pool 4 (fun pool ->
      (* a map called from inside a worker must not deadlock: it runs
         inline and still returns ordered results *)
      let result =
        Parallel.Pool.map ~chunk_size:1 pool
          (fun base ->
            Array.fold_left ( + ) 0
              (Parallel.Pool.map pool (fun i -> (base * 10) + i)
                 (Array.init 5 (fun i -> i))))
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int))
        "nested sums"
        (Array.init 6 (fun base -> (base * 50) + 10))
        result)

let test_pool_map_reduce () =
  Parallel.Pool.with_pool 4 (fun pool ->
      let xs = Array.init 64 (fun i -> i) in
      (* non-associative, non-commutative fold: only the sequential
         input-order fold produces this value *)
      let expected =
        Array.fold_left (fun acc x -> (acc * 31) + x) 17
          (Array.map (fun i -> i * 3) xs)
      in
      Alcotest.(check int)
        "ordered fold" expected
        (Parallel.Pool.map_reduce ~chunk_size:5 pool
           ~map:(fun i -> i * 3)
           ~fold:(fun acc x -> (acc * 31) + x)
           ~init:17 xs))

let test_pool_sequential_degenerate () =
  (* size-1 pools and shutdown pools run inline with the same results *)
  let xs = Array.init 30 (fun i -> i) in
  let p1 = Parallel.Pool.create 1 in
  Alcotest.(check int) "size reported" 1 (Parallel.Pool.size p1);
  Alcotest.(check (array int))
    "inline pool" (Array.map succ xs)
    (Parallel.Pool.map p1 succ xs);
  Parallel.Pool.shutdown p1;
  let p4 = Parallel.Pool.create 4 in
  Parallel.Pool.shutdown p4;
  Parallel.Pool.shutdown p4 (* idempotent *);
  Alcotest.(check (array int))
    "shutdown pool runs inline" (Array.map succ xs)
    (Parallel.Pool.map p4 succ xs)

let test_pool_submitter_helps () =
  (* A size-2 pool spawns exactly one worker domain.  Two chunks that
     rendezvous on an atomic can only both make progress if the
     submitting domain helps drain the queue instead of blocking on the
     batch latch: the regression this pins down had the submitter parked
     in [latch_wait] while the lone worker ran the chunks one at a time,
     so the first chunk's spin-wait below never completed. *)
  Parallel.Pool.with_pool 2 (fun pool ->
      let started = Atomic.make 0 in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let results =
        Parallel.Pool.map ~chunk_size:1 pool
          (fun i ->
            Atomic.incr started;
            let rec wait () =
              if Atomic.get started >= 2 then true
              else if Unix.gettimeofday () > deadline then false
              else begin
                Domain.cpu_relax ();
                wait ()
              end
            in
            (i, wait ()))
          [| 0; 1 |]
      in
      Alcotest.(check (array (pair int bool)))
        "both chunks ran concurrently"
        [| (0, true); (1, true) |]
        results)

let test_pool_live_domain_accounting () =
  let before = Parallel.Pool.live_domains () in
  let p = Parallel.Pool.create 4 in
  Alcotest.(check int)
    "create 4 spawns 3 workers" (before + 3)
    (Parallel.Pool.live_domains ());
  Parallel.Pool.shutdown p;
  Alcotest.(check int)
    "shutdown joins them" before
    (Parallel.Pool.live_domains ());
  Parallel.Pool.shutdown p;
  Alcotest.(check int)
    "idempotent shutdown leaves the count alone" before
    (Parallel.Pool.live_domains ());
  let inline = Parallel.Pool.create 1 in
  Alcotest.(check int)
    "size-1 pools spawn nothing" before
    (Parallel.Pool.live_domains ());
  Parallel.Pool.shutdown inline

let test_poolless_tune_leaks_no_domains () =
  (* regression: a pool-less [Tuner.tune] used to create its internal
     pool and never shut it down, so repeated calls accumulated
     unjoined resources *)
  let before = Parallel.Pool.live_domains () in
  let term =
    { Search.max_evaluations = 6; plateau_window = 1000; plateau_epsilon = 0.0 }
  in
  for _ = 1 to 3 do
    ignore
      (Bintuner.Tuner.tune ~termination:term ~profile:Toolchain.Flags.llvm
         (Corpus.find "462.libquantum")
        : Bintuner.Tuner.result)
  done;
  Alcotest.(check int)
    "repeated pool-less tune calls leave no live domains" before
    (Parallel.Pool.live_domains ())

(* --- the determinism differential --- *)

let diff_term =
  { Search.max_evaluations = 60; plateau_window = 40; plateau_epsilon = 0.0035 }

let entry_list r =
  List.map
    (fun e ->
      (Array.to_list e.Bintuner.Tuner.vector, Array.to_list e.Bintuner.Tuner.fitness))
    r.Bintuner.Tuner.database

let check_tune_equal label (a : Bintuner.Tuner.result)
    (b : Bintuner.Tuner.result) =
  Alcotest.(check (list bool))
    (label ^ ": best_vector") (Array.to_list a.best_vector)
    (Array.to_list b.best_vector);
  Alcotest.(check (float 0.0))
    (label ^ ": best_ncd") a.best_ncd b.best_ncd;
  Alcotest.(check int) (label ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check (list (pair int (float 0.0))))
    (label ^ ": history") a.history b.history;
  Alcotest.(check (list bool))
    (label ^ ": refined_vector")
    (Array.to_list a.refined_vector)
    (Array.to_list b.refined_vector);
  Alcotest.(check bool)
    (label ^ ": database") true
    (entry_list a = entry_list b);
  Alcotest.(check (pair int int))
    (label ^ ": memo counters") (a.cache_hits, a.compilations)
    (b.cache_hits, b.compilations)

let diff_cases =
  [
    ("462.libquantum", Toolchain.Flags.llvm);
    ("462.libquantum", Toolchain.Flags.gcc);
    ("429.mcf", Toolchain.Flags.llvm);
    ("429.mcf", Toolchain.Flags.gcc);
    ("coreutils", Toolchain.Flags.llvm);
    ("coreutils", Toolchain.Flags.gcc);
  ]

let test_tune_j_independent () =
  Parallel.Pool.with_pool 4 (fun pool4 ->
      List.iter
        (fun (name, profile) ->
          let bench = Corpus.find name in
          let r1 =
            Bintuner.Tuner.tune ~termination:diff_term ~profile bench
          in
          let r4 =
            Bintuner.Tuner.tune ~termination:diff_term ~pool:pool4 ~profile
              bench
          in
          check_tune_equal
            (name ^ "/" ^ profile.Toolchain.Flags.profile_name)
            r1 r4)
        diff_cases)

let test_tune_fanout_j_independent () =
  (* whole tune jobs fanned out across the pool (the bench drivers' -j
     path) must equal the same jobs run sequentially *)
  let jobs =
    [ ("462.libquantum", Toolchain.Flags.llvm); ("429.mcf", Toolchain.Flags.gcc) ]
  in
  let run pool =
    Parallel.Pool.map_list ~chunk_size:1 pool
      (fun (name, profile) ->
        Bintuner.Tuner.tune ~termination:diff_term ~pool ~profile
          (Corpus.find name))
      jobs
  in
  let seq = Parallel.Pool.with_pool 1 run in
  let par = Parallel.Pool.with_pool 4 run in
  List.iter2
    (fun (a : Bintuner.Tuner.result) b ->
      check_tune_equal ("fanout " ^ a.benchmark) a b)
    seq par

let tests =
  [
    Alcotest.test_case "pool map ordering" `Quick test_pool_map_ordering;
    Alcotest.test_case "pool empty/singleton" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "pool exceptions" `Quick test_pool_exception_propagation;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map_inlines;
    Alcotest.test_case "pool map_reduce" `Quick test_pool_map_reduce;
    Alcotest.test_case "pool degenerate" `Quick test_pool_sequential_degenerate;
    Alcotest.test_case "pool submitter helps" `Quick test_pool_submitter_helps;
    Alcotest.test_case "pool live-domain accounting" `Quick
      test_pool_live_domain_accounting;
    Alcotest.test_case "pool-less tune leaks no domains" `Slow
      test_poolless_tune_leaks_no_domains;
    Alcotest.test_case "tune j-independent" `Slow test_tune_j_independent;
    Alcotest.test_case "tune fan-out j-independent" `Slow
      test_tune_fanout_j_independent;
  ]
