(* Corpus invariants: the dataset substitute has to be a usable dataset.
   Programs must parse/check, run deterministically under the reference
   interpreter within a sane instruction budget, actually depend on their
   inputs, and differ from one another. *)

let test_all_programs_check () =
  List.iter (fun b -> ignore (Corpus.program b)) Corpus.all

let run_ir b input =
  let ir = Vir.Lower.lower_program (Corpus.program b) in
  Vir.Interp.run ~fuel:60_000_000 ir ~input

let test_workloads_terminate_and_output () =
  List.iter
    (fun b ->
      List.iter
        (fun input ->
          let r = run_ir b input in
          Alcotest.(check bool)
            (b.Corpus.bname ^ " produces output")
            true
            (r.output <> []))
        b.Corpus.workloads)
    Corpus.all

let test_inputs_matter () =
  (* the workloads must drive different executions: different outputs, or
     at least different dynamic instruction counts (a coarse final
     summary — e.g. leela's win count out of 40 playouts — may coincide
     across seeds even though the computation differs) *)
  List.iter
    (fun b ->
      let runs =
        List.map
          (fun input ->
            let r = run_ir b input in
            (Vir.Interp.output_to_string r.output, r.steps))
          b.Corpus.workloads
      in
      let distinct l = List.length (List.sort_uniq compare l) >= 2 in
      Alcotest.(check bool)
        (b.Corpus.bname ^ " input-sensitive")
        true
        (distinct (List.map fst runs) || distinct (List.map snd runs)))
    Corpus.all

let test_deterministic () =
  List.iter
    (fun name ->
      let b = Corpus.find name in
      let once () = Vir.Interp.output_to_string (run_ir b [| 3 |]).output in
      Alcotest.(check string) (name ^ " deterministic") (once ()) (once ()))
    [ "445.gobmk"; "620.omnetpp_s"; "641.leela_s"; "mirai" ]

let test_programs_differ () =
  (* every pair of programs must produce different binaries at -O2 *)
  let texts =
    List.map
      (fun b ->
        (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
           (Corpus.program b))
          .Isa.Binary.text)
      Corpus.all
  in
  Alcotest.(check int) "all binaries distinct"
    (List.length Corpus.all)
    (List.length (List.sort_uniq compare texts))

let test_suites_populated () =
  let count s = List.length (List.filter (fun b -> b.Corpus.suite = s) Corpus.all) in
  Alcotest.(check int) "SPEC2006 programs" 10 (count Corpus.Spec2006);
  Alcotest.(check int) "SPEC2017 programs" 9 (count Corpus.Spec2017);
  Alcotest.(check int) "botnet programs" 3 (count Corpus.Botnet);
  Alcotest.(check int) "evaluation set" 21 (List.length Corpus.evaluation_set)

let test_optimization_matters_everywhere () =
  (* O3 must change every program's binary w.r.t. O0 — otherwise a
     benchmark contributes nothing to the study *)
  List.iter
    (fun b ->
      let p = Corpus.program b in
      let o0 = (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O0" p).Isa.Binary.text in
      let o3 = (Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O3" p).Isa.Binary.text in
      Alcotest.(check bool) (b.Corpus.bname ^ " optimizable") true (o0 <> o3))
    Corpus.all

let tests =
  [
    Alcotest.test_case "programs check" `Quick test_all_programs_check;
    Alcotest.test_case "workloads terminate" `Slow test_workloads_terminate_and_output;
    Alcotest.test_case "inputs matter" `Slow test_inputs_matter;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "programs differ" `Quick test_programs_differ;
    Alcotest.test_case "suites populated" `Quick test_suites_populated;
    Alcotest.test_case "optimization matters" `Slow test_optimization_matters_everywhere;
  ]
