(* Tests for the search stack: the GA strategy on the shared engine, the
   BinTuner loop, the AV fleet, the provenance classifier, and the NCD
   fitness.  (The strategy-contract harness covering every registered
   strategy lives in test_search.ml.) *)

let quick_term =
  { Search.max_evaluations = 120; plateau_window = 60; plateau_epsilon = 0.0035 }

let run_ga ?(params = Search.Genetic.default_params) ~rng ~termination ~ngenes
    ~seeds ~repair ~fitness () =
  Search.run_scalar ~rng ~termination
    ~problem:{ Search.ngenes; seeds; repair }
    ~fitness
    (Search.Genetic.strategy ~params ())

(* --- genetic algorithm on a known landscape --- *)

let test_ga_onemax () =
  (* fitness = number of set bits; the GA must get close to all-ones *)
  let rng = Util.Rng.create 7 in
  let outcome =
    run_ga ~rng
      ~termination:
        { Search.max_evaluations = 600; plateau_window = 200; plateau_epsilon = 0.001 }
      ~ngenes:24 ~seeds:[] ~repair:(fun g -> g)
      ~fitness:(fun g ->
        float_of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 g))
      ()
  in
  Alcotest.(check bool) "near optimum" true (outcome.Search.best_fitness >= 22.0)

let test_ga_respects_repair () =
  (* repair forces gene 0 off; the best genome must respect that *)
  let rng = Util.Rng.create 9 in
  let outcome =
    run_ga ~rng ~termination:quick_term ~ngenes:8 ~seeds:[]
      ~repair:(fun g ->
        g.(0) <- false;
        g)
      ~fitness:(fun g -> if g.(0) then 100.0 else 1.0)
      ()
  in
  Alcotest.(check bool) "gene 0 forced off" false outcome.Search.best.(0)

let test_ga_deterministic () =
  let run seed =
    let rng = Util.Rng.create seed in
    (run_ga ~rng ~termination:quick_term ~ngenes:16 ~seeds:[]
       ~repair:(fun g -> g)
       ~fitness:(fun g ->
         float_of_int (Hashtbl.hash (Array.to_list g) mod 1000))
       ())
      .Search.best_fitness
  in
  Alcotest.(check (float 1e-9)) "same seed same outcome" (run 3) (run 3)

let test_ga_history_monotone () =
  let rng = Util.Rng.create 11 in
  let outcome =
    run_ga ~rng ~termination:quick_term ~ngenes:12 ~seeds:[]
      ~repair:(fun g -> g)
      ~fitness:(fun g ->
        float_of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 g))
      ()
  in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "best-so-far is monotone" true
    (monotone outcome.Search.history)

let test_ga_keeps_all_seeds () =
  (* population sizing regression: with more seed vectors than
     [population_size], the initial population used to be truncated to
     the nominal size, silently discarding later seeds.  Plant the only
     high-fitness genome as the *last* seed with a budget too small for
     the search to rediscover it: the GA must still evaluate it. *)
  let ngenes = 48 in
  let magic = Array.init ngenes (fun i -> i mod 2 = 0) in
  let seeds =
    List.init 4 (fun k ->
        Array.init ngenes (fun i -> i = k) (* four distinct low genomes *))
    @ [ Array.copy magic ]
  in
  let rng = Util.Rng.create 5 in
  let outcome =
    run_ga ~rng
      ~params:{ Search.Genetic.default_params with population_size = 2 }
      ~termination:
        { Search.max_evaluations = 8; plateau_window = 1000; plateau_epsilon = 0.0 }
      ~ngenes ~seeds
      ~repair:(fun g -> g)
      ~fitness:(fun g -> if g = magic then 1000.0 else 0.0)
      ()
  in
  Alcotest.(check (float 1e-9)) "last seed evaluated" 1000.0
    outcome.Search.best_fitness;
  Alcotest.(check bool) "all five seeds scored" true
    (outcome.Search.evaluations >= 5)

(* --- the tuner --- *)

let tuned =
  lazy
    (Bintuner.Tuner.tune ~termination:quick_term ~profile:Toolchain.Flags.llvm
       (Corpus.find "462.libquantum"))

let test_tuner_beats_presets_on_fitness () =
  let r = Lazy.force tuned in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) ("fitness >= " ^ name) true (r.best_ncd >= v -. 1e-9))
    r.preset_ncd

let test_tuner_functional () =
  let r = Lazy.force tuned in
  Alcotest.(check bool) "tuned binary passes workloads" true r.functional_ok

let test_tuner_database () =
  let r = Lazy.force tuned in
  Alcotest.(check int) "database records every compilation" r.iterations
    (List.length r.database);
  List.iter
    (fun e ->
      Alcotest.(check bool) "fitness in range" true
        (Array.length e.Bintuner.Tuner.fitness = 1
        && e.fitness.(0) >= 0.0
        && e.fitness.(0) <= 1.2))
    r.database

let test_tuner_vector_valid () =
  let r = Lazy.force tuned in
  Alcotest.(check bool) "best vector satisfies constraints" true
    (Toolchain.Constraints.valid Toolchain.Flags.llvm r.best_vector)

let test_fitness_properties () =
  let prog = Corpus.program (Corpus.find "429.mcf") in
  let gcc = Toolchain.Flags.gcc in
  let o0 = Toolchain.Pipeline.compile_preset gcc "O0" prog in
  let o3 = Toolchain.Pipeline.compile_preset gcc "O3" prog in
  Alcotest.(check bool) "self fitness small" true
    (Bintuner.Tuner.fitness_of_binaries o0 o0 < 0.15);
  Alcotest.(check bool) "cross fitness larger" true
    (Bintuner.Tuner.fitness_of_binaries o3 o0
    > Bintuner.Tuner.fitness_of_binaries o0 o0)

(* --- iteration database --- *)

let test_database_roundtrip () =
  let r = Lazy.force tuned in
  let run = Bintuner.Database.of_result r Toolchain.Flags.llvm in
  let path = Filename.temp_file "bintuner" ".db" in
  Bintuner.Database.save path [ run; run ];
  let loaded = Bintuner.Database.load path in
  Sys.remove path;
  Alcotest.(check int) "two runs" 2 (List.length loaded);
  let l = List.hd loaded in
  Alcotest.(check string) "benchmark" run.benchmark l.Bintuner.Database.benchmark;
  Alcotest.(check int) "entries survive" (List.length run.entries)
    (List.length l.entries);
  Alcotest.(check bool) "best survives" true (l.best = run.best)

let test_database_flag_frequency () =
  let r = Lazy.force tuned in
  let run = Bintuner.Database.of_result r Toolchain.Flags.llvm in
  let freqs = Bintuner.Database.flag_frequency run in
  Alcotest.(check int) "one entry per flag"
    (Array.length Toolchain.Flags.llvm.flags)
    (List.length freqs);
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "frequency in [0,1]" true (f >= 0.0 && f <= 1.0))
    freqs;
  (* frequencies are sorted descending *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted freqs)

let save_load runs =
  let path = Filename.temp_file "bintuner" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bintuner.Database.save path runs;
      Bintuner.Database.load path)

let test_database_escaped_names () =
  (* separator characters in names used to corrupt the line parse: a
     space split the "run" header into too many fields and a comma split
     one flag name into two *)
  let run =
    {
      Bintuner.Database.benchmark = "my bench, tuned (v2)";
      profile = "gcc 10.2";
      arch = "x86-64";
      flag_names = [ "-funroll loops"; "100% weird,name"; "plain" ];
      objectives = [ "ncd" ];
      entries = [ ([| true; false; true |], [| 0.25 |]) ];
      best = [| false; true; false |];
    }
  in
  match save_load [ run ] with
  | [ l ] ->
    Alcotest.(check string) "benchmark" run.benchmark l.Bintuner.Database.benchmark;
    Alcotest.(check string) "profile" run.profile l.profile;
    Alcotest.(check (list string)) "flag names" run.flag_names l.flag_names;
    Alcotest.(check bool) "entries" true (l.entries = run.entries);
    Alcotest.(check bool) "best" true (l.best = run.best)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 run, got %d" (List.length l))

let test_database_rejects_bad_lengths () =
  (* vectors whose length disagrees with the flag universe used to load
     silently and crash later consumers (lookup, flag_frequency) *)
  let run best entries =
    {
      Bintuner.Database.benchmark = "b";
      profile = "p";
      arch = "a";
      flag_names = [ "f1"; "f2" ];
      objectives = [ "ncd" ];
      entries;
      best;
    }
  in
  let expect_failure label runs =
    match save_load runs with
    | _ -> Alcotest.fail (label ^ ": expected a load failure")
    | exception Failure _ -> ()
  in
  expect_failure "short best"
    [ run [| true |] [ ([| true; false |], [| 0.1 |]) ] ];
  expect_failure "long entry"
    [ run [| true; false |] [ ([| true; false; true |], [| 0.1 |]) ] ]

let prop_database_roundtrip =
  (* arbitrary printable names (spaces, commas, percent signs, newlines)
     round-trip through the escaped text format *)
  let name_gen = QCheck.Gen.(string_size ~gen:printable (1 -- 10)) in
  QCheck.Test.make ~name:"database roundtrip with hostile names" ~count:100
    QCheck.(
      pair
        (make ~print:Print.(list string) Gen.(list_size (0 -- 5) name_gen))
        (make ~print:Print.string name_gen))
    (fun (flag_names, benchmark) ->
      let n = List.length flag_names in
      let vec seed = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let run =
        {
          Bintuner.Database.benchmark;
          profile = "p 1";
          arch = "a";
          flag_names;
          objectives = [ "ncd" ];
          entries = [ (vec 0, [| 0.5 |]); (vec 1, [| 0.75 |]) ];
          best = vec 1;
        }
      in
      match save_load [ run ] with
      | [ l ] ->
        l.Bintuner.Database.benchmark = benchmark
        && l.flag_names = flag_names
        && l.entries = run.entries
        && l.best = run.best
      | _ -> false)

(* A writer dying mid-save (injected via the test_write_failure hook)
   must leave the existing database byte-identical and no temp file
   behind — the crash-safety contract of the tmp+rename save. *)
let test_database_atomic_save () =
  let mkrun name =
    {
      Bintuner.Database.benchmark = name;
      profile = "p";
      arch = "a";
      flag_names = [ "f1"; "f2" ];
      objectives = [ "ncd" ];
      entries = [ ([| true; false |], [| 0.25 |]); ([| false; true |], [| 0.75 |]) ];
      best = [| true; false |];
    }
  in
  let path = Filename.temp_file "bintuner" ".db" in
  Fun.protect
    ~finally:(fun () ->
      Bintuner.Database.test_write_failure := None;
      Sys.remove path)
    (fun () ->
      Bintuner.Database.save path [ mkrun "good" ];
      let read_back () =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let before = read_back () in
      Bintuner.Database.test_write_failure := Some 3;
      (match Bintuner.Database.save path [ mkrun "good"; mkrun "doomed" ] with
      | () -> Alcotest.fail "expected the injected write failure to raise"
      | exception Failure _ -> ());
      Bintuner.Database.test_write_failure := None;
      Alcotest.(check string) "existing database untouched" before (read_back ());
      Alcotest.(check bool) "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp"));
      (* and it still parses *)
      Alcotest.(check int) "still loads" 1
        (List.length (Bintuner.Database.load path)))

(* Fitness round-trips bit-exactly through save/load: the old %.6f
   writer silently flattened every NCD to six decimals, so resumed runs
   compared "equal" fitnesses that were never equal. *)
let prop_database_fitness_lossless =
  let adversarial =
    [|
      1.0 /. 3.0;
      0.1;
      0.30000000000000004;
      Float.min_float;
      Float.max_float;
      4.9e-324 (* smallest denormal *);
      epsilon_float;
      1.0 +. epsilon_float;
      -1.0 /. 3.0;
      1e300;
    |]
  in
  QCheck.Test.make ~name:"database fitness serialization is lossless"
    ~count:200
    QCheck.(pair float small_nat)
    (fun (f, i) ->
      let fitness =
        if i mod 3 = 0 then adversarial.(i mod Array.length adversarial)
        else if Float.is_finite f then f
        else 0.5
      in
      let run =
        {
          Bintuner.Database.benchmark = "b";
          profile = "p";
          arch = "a";
          flag_names = [ "f" ];
          objectives = [ "ncd" ];
          entries = [ ([| true |], [| fitness |]) ];
          best = [| true |];
        }
      in
      match save_load [ run ] with
      | [ { Bintuner.Database.entries = [ (_, [| f' |]) ]; _ } ] ->
        Int64.bits_of_float f' = Int64.bits_of_float fitness
      | _ -> false)

(* Files written before the hex-float change carry %.6f decimals; the
   loader must keep accepting them. *)
let test_database_parses_legacy_decimals () =
  let path = Filename.temp_file "bintuner" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "run b p a\nflags f1,f2\nbest 10\ne 10 0.123456\ne 01 -0.000001\nend\n";
      close_out oc;
      match Bintuner.Database.load path with
      | [ { Bintuner.Database.objectives; entries = [ (_, [| a |]); (_, [| b |]) ]; _ } ]
        ->
        Alcotest.(check (list string)) "legacy objectives" [ "ncd" ] objectives;
        Alcotest.(check (float 0.0)) "decimal entry" 0.123456 a;
        Alcotest.(check (float 0.0)) "negative decimal entry" (-0.000001) b
      | _ -> Alcotest.fail "legacy file did not load as one two-entry run")

(* A legacy scalar file must also load under an explicit scalar-NCD
   request, and keep loading after a save — the migration path: old
   database in, vector database out, nothing lost. *)
let test_database_legacy_migration_roundtrip () =
  let path = Filename.temp_file "bintuner" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "run b p a\nflags f1,f2\nbest 10\ne 10 0.123456\ne 01 0.75\nend\n";
      close_out oc;
      let loaded = Bintuner.Database.load ~objectives:[ "ncd" ] path in
      Alcotest.(check int) "legacy file loads under scalar request" 1
        (List.length loaded);
      (* re-save: the file is upgraded to the vector format in place *)
      Bintuner.Database.save path loaded;
      let again = Bintuner.Database.load ~objectives:[ "ncd" ] path in
      Alcotest.(check bool) "migrated file round-trips" true
        (List.map
           (fun r ->
             (r.Bintuner.Database.objectives, r.entries, r.best))
           again
        = List.map
            (fun r ->
              (r.Bintuner.Database.objectives, r.entries, r.best))
            loaded))

(* Mixing fitness vectors of different meaning must be impossible: a
   run tuned for other axes is rejected by an ?objectives load, and a
   file whose entries disagree with its declared axes never loads. *)
let test_database_rejects_objective_mismatch () =
  let run =
    {
      Bintuner.Database.benchmark = "b";
      profile = "p";
      arch = "a";
      flag_names = [ "f1"; "f2" ];
      objectives = [ "ncd"; "gadgets" ];
      entries = [ ([| true; false |], [| 0.5; -3.0 |]) ];
      best = [| true; false |];
    }
  in
  let path = Filename.temp_file "bintuner" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bintuner.Database.save path [ run ];
      (* the matching request and the open request both succeed *)
      (match Bintuner.Database.load ~objectives:[ "ncd"; "gadgets" ] path with
      | [ l ] ->
        Alcotest.(check (list string))
          "2-axis objectives survive" run.objectives l.objectives;
        Alcotest.(check bool) "2-axis entries survive" true
          (l.entries = run.entries)
      | _ -> Alcotest.fail "2-axis run did not round-trip");
      (match Bintuner.Database.load ~objectives:[ "ncd" ] path with
      | _ -> Alcotest.fail "scalar request accepted a 2-axis run"
      | exception Failure m ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec at i =
            i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
          in
          at 0
        in
        Alcotest.(check bool) "error names both specs" true
          (contains m "ncd,gadgets" && contains m "objectives"));
      (* entries contradicting the declared axes: corrupt, never loads *)
      let oc = open_out path in
      output_string oc "run b p a\nflags f1,f2\nobj ncd,gadgets\nbest 10\ne 10 0.5\nend\n";
      close_out oc;
      match Bintuner.Database.load path with
      | _ -> Alcotest.fail "arity mismatch loaded"
      | exception Failure _ -> ())

(* --- multi-objective tuning end to end --- *)

let test_tuner_multi_objective () =
  let objectives = Search.Objective.parse "ncd,gadgets" in
  let r =
    Bintuner.Tuner.tune
      ~termination:
        { Search.max_evaluations = 40; plateau_window = 60; plateau_epsilon = 0.0035 }
      ~objectives ~profile:Toolchain.Flags.llvm
      (Corpus.find "462.libquantum")
  in
  Alcotest.(check (list string))
    "result carries the axis names" [ "ncd"; "gadgets" ] r.objectives;
  Alcotest.(check int) "best_scores arity" 2 (Array.length r.best_scores);
  List.iter
    (fun e ->
      Alcotest.(check int) "database entry arity" 2
        (Array.length e.Bintuner.Tuner.fitness))
    r.database;
  Alcotest.(check bool) "front is non-empty" true (r.front <> []);
  Alcotest.(check bool) "front is mutually non-dominated" true
    (Search.Pareto.is_non_dominated r.front);
  (* the best genome's vector is on the front, and the scalarized best
     equals the unit-weight sum of its axes *)
  Alcotest.(check bool) "best scores appear on the front" true
    (List.exists (fun (_, f) -> f = r.best_scores) r.front);
  Alcotest.(check (float 1e-9)) "best_ncd is the scalarization"
    (r.best_scores.(0) +. r.best_scores.(1))
    r.best_ncd;
  Alcotest.(check bool) "gadget axis is a negated census (<= 0)" true
    (r.best_scores.(1) <= 0.0);
  Alcotest.(check bool) "per-axis memos saw traffic" true
    (r.objective_hits + r.objective_misses > 0);
  Alcotest.(check bool) "tuned binary still functional" true r.functional_ok

let test_tuner_multi_objective_deterministic () =
  let objectives = Search.Objective.parse "ncd,size" in
  let run () =
    let r =
      Bintuner.Tuner.tune
        ~termination:
          { Search.max_evaluations = 30; plateau_window = 60; plateau_epsilon = 0.0035 }
        ~objectives ~profile:Toolchain.Flags.gcc
        (Corpus.find "429.mcf")
    in
    (Array.to_list r.best_vector, r.best_ncd, List.map snd r.front, r.iterations)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same front and best" true (a = b)

(* --- AV fleet --- *)

let goodware =
  lazy
    (List.map
       (fun n ->
         Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
           (Corpus.program (Corpus.find n)))
       [ "429.mcf"; "coreutils"; "620.omnetpp_s"; "openssl" ])

let test_av_detects_training_sample () =
  let prog = Corpus.program (Corpus.find "lightaidra") in
  let bin = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2" prog in
  let fleet = Av.Scanner.train ~goodware:(Lazy.force goodware) ~seed:3 bin in
  Alcotest.(check int) "all scanners flag the sample" Av.Scanner.fleet_size
    (Av.Scanner.detections fleet bin)

let test_av_benign_program_clean () =
  let mal = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
      (Corpus.program (Corpus.find "lightaidra"))
  in
  let fleet = Av.Scanner.train ~goodware:(Lazy.force goodware) ~seed:3 mal in
  let benign =
    Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
      (Corpus.program (Corpus.find "605.mcf_s"))
  in
  Alcotest.(check bool) "unrelated program mostly clean" true
    (Av.Scanner.detections fleet benign <= 8)

let test_av_o3_mostly_detected () =
  let prog = Corpus.program (Corpus.find "bashlife") in
  let o2 = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2" prog in
  let o3 = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O3" prog in
  let fleet = Av.Scanner.train ~goodware:(Lazy.force goodware) ~seed:3 o2 in
  let d = Av.Scanner.detections fleet o3 in
  Alcotest.(check bool) "O3 detection near default" true
    (d >= Av.Scanner.fleet_size * 2 / 3)

let test_av_data_signatures_survive () =
  let prog = Corpus.program (Corpus.find "mirai") in
  let o2 = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2" prog in
  let os = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "Os" prog in
  let fleet = Av.Scanner.train ~goodware:(Lazy.force goodware) ~seed:3 o2 in
  let _, data, _ = Av.Scanner.detections_by_class fleet os in
  Alcotest.(check bool) "data scanners unaffected by recompilation" true
    (data >= 10)

(* --- provenance --- *)

let test_provenance_classifies_presets () =
  let gcc = Toolchain.Flags.gcc in
  (* at least two programs per label, so the rejection threshold reflects
     genuine in-class variance *)
  let training =
    List.concat_map
      (fun name ->
        let p = Corpus.program (Corpus.find name) in
        List.map
          (fun preset ->
            ( { Provenance.Classify.profile = "gcc-10.2"; preset },
              Toolchain.Pipeline.compile_preset gcc preset p ))
          Toolchain.Flags.preset_names)
      [ "coreutils"; "429.mcf"; "lightaidra" ]
  in
  let model = Provenance.Classify.train training in
  (* presets of a different program should classify to the right level *)
  let test_prog = Corpus.program (Corpus.find "openssl") in
  let hits =
    List.length
      (List.filter
         (fun preset ->
           let bin = Toolchain.Pipeline.compile_preset gcc preset test_prog in
           let lbl, _ = Provenance.Classify.classify model bin in
           lbl.preset = preset)
         [ "O0"; "O3" ])
  in
  Alcotest.(check bool) "O0/O3 recognized across programs" true (hits >= 1)

let test_provenance_feature_shape () =
  let bin =
    Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2"
      (Corpus.program (Corpus.find "429.mcf"))
  in
  let f = Provenance.Classify.features bin in
  Alcotest.(check bool) "normalized features" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) f)

let tests =
  [
    Alcotest.test_case "ga onemax" `Quick test_ga_onemax;
    Alcotest.test_case "ga repair" `Quick test_ga_respects_repair;
    Alcotest.test_case "ga deterministic" `Quick test_ga_deterministic;
    Alcotest.test_case "ga history monotone" `Quick test_ga_history_monotone;
    Alcotest.test_case "ga keeps all seeds" `Quick test_ga_keeps_all_seeds;
    Alcotest.test_case "tuner beats presets" `Slow test_tuner_beats_presets_on_fitness;
    Alcotest.test_case "tuner functional" `Slow test_tuner_functional;
    Alcotest.test_case "tuner database" `Slow test_tuner_database;
    Alcotest.test_case "tuner vector valid" `Slow test_tuner_vector_valid;
    Alcotest.test_case "fitness properties" `Quick test_fitness_properties;
    Alcotest.test_case "database roundtrip" `Slow test_database_roundtrip;
    Alcotest.test_case "database frequency" `Slow test_database_flag_frequency;
    Alcotest.test_case "database escaped names" `Quick test_database_escaped_names;
    Alcotest.test_case "database length checks" `Quick
      test_database_rejects_bad_lengths;
    QCheck_alcotest.to_alcotest prop_database_roundtrip;
    Alcotest.test_case "database atomic save" `Quick test_database_atomic_save;
    QCheck_alcotest.to_alcotest prop_database_fitness_lossless;
    Alcotest.test_case "database legacy migration" `Quick
      test_database_legacy_migration_roundtrip;
    Alcotest.test_case "database objective mismatch" `Quick
      test_database_rejects_objective_mismatch;
    Alcotest.test_case "tuner multi-objective" `Slow test_tuner_multi_objective;
    Alcotest.test_case "tuner multi-objective deterministic" `Slow
      test_tuner_multi_objective_deterministic;
    Alcotest.test_case "database legacy decimals" `Quick
      test_database_parses_legacy_decimals;
    Alcotest.test_case "av training sample" `Quick test_av_detects_training_sample;
    Alcotest.test_case "av benign clean" `Quick test_av_benign_program_clean;
    Alcotest.test_case "av O3 detected" `Quick test_av_o3_mostly_detected;
    Alcotest.test_case "av data signatures" `Quick test_av_data_signatures_survive;
    Alcotest.test_case "provenance presets" `Quick test_provenance_classifies_presets;
    Alcotest.test_case "provenance features" `Quick test_provenance_feature_shape;
  ]
