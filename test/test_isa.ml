(* Codec and binary-analysis tests. *)

open Isa.Insn

let sample_insns =
  [
    Imov (3, Oimm 0);
    Imov (5, Oimm (-7));
    Imov (5, Oimm 1234567890123456);
    Ialu (Amul, 1, 2, Oreg 3);
    Ialu (Ashr, 7, 7, Oimm 62);
    Ineg (0, 1);
    Inot (2, 3);
    Icmp (4, Oimm 100);
    Itest (5, 6);
    Isetcc (Cle, 2);
    Icmov (Cne, 3, Oreg 9);
    Ijmp 0x1234;
    Ijcc (Cge, 77);
    Ijtab (2, [ 10; 20; 30; 40; 50 ]);
    Iloop (6, 0x42);
    Ild (1, 513, Oreg 2);
    Ist (513, Oimm 4, Oreg 5);
    Ist (7, Oreg 1, Oimm (-3));
    Ildf (3, FP_rel, -24, Oimm 0);
    Istf (SP_rel, 16, Oreg 2, Oimm 9);
    Ipush (Oreg 12);
    Ipop 11;
    Icall 42;
    Icallr 15;
    Ila (4, 99);
    Iret;
    Ijmpf 3;
    Ivld (3, 5, Oreg 1);
    Ivst (5, Oimm 8, 3);
    Ivalu (Aadd, 1, 2, 3);
    Ivsplat (0, Oimm 7);
    Ivpack (1, Oimm 1, Oimm 2, Oreg 3, Oimm 4);
    Ivred (Aadd, 5, 2);
    Ivldf (1, FP_rel, -8, Oreg 0);
    Ivstf (SP_rel, 0, Oimm 4, 2);
    Iprint (Oreg 0);
    Iprintc (Oimm 10);
    Iread (1, Oimm 0);
    Ilen 2;
    Inop;
    Iinc 3;
    Idec 9;
    Ixorz 14;
  ]

(* encode a stream with correct per-instruction placement offsets *)
let encode_stream arch insns =
  let buf = Buffer.create 256 in
  List.iter
    (fun i ->
      Buffer.add_string buf (Isa.Codec.encode ~at:(Buffer.length buf) arch i))
    insns;
  Buffer.contents buf

let test_roundtrip_all_arches () =
  List.iter
    (fun arch ->
      let enc = encode_stream arch sample_insns in
      let dec = List.map snd (Isa.Codec.decode_all arch enc) in
      Alcotest.(check bool) (arch_name arch ^ " roundtrip") true (dec = sample_insns))
    all_arches

let test_arch_encodings_differ () =
  let enc arch = Isa.Codec.encode arch (Ialu (Aadd, 1, 2, Oreg 3)) in
  let all = List.map enc all_arches in
  Alcotest.(check int) "four distinct encodings" 4
    (List.length (List.sort_uniq compare all))

let test_pc_relative_stability () =
  (* the same loop body encodes identically wherever it is placed: the
     property the NCD fitness relies on *)
  let body at =
    String.concat ""
      [
        Isa.Codec.encode ~at X86_64 (Ialu (Aadd, 1, 1, Oimm 1));
        Isa.Codec.encode ~at:(at + 8) X86_64 (Icmp (1, Oimm 10));
        Isa.Codec.encode ~at:(at + 16) X86_64 (Ijcc (Clt, at));
      ]
  in
  Alcotest.(check bool) "position independent" true (body 0 = body 4096)

let test_word_alignment () =
  List.iter
    (fun arch ->
      List.iter
        (fun i ->
          let len = Isa.Codec.encoded_length arch i in
          Alcotest.(check int) "word aligned" 0 (len mod 4))
        sample_insns)
    [ Arm; Mips ]

let test_decode_rejects_garbage () =
  match Isa.Codec.decode X86_64 "\xff\xff\xff" ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ ->
    (* 0xff may decode to a valid opcode; truncation must still fail *)
    ()

let prop_roundtrip_random_mov =
  QCheck.Test.make ~name:"codec roundtrip random movs" ~count:300
    QCheck.(triple (0 -- 15) (oneofl all_arches) int)
    (fun (r, arch, n) ->
      let i = Imov (r, Oimm n) in
      let enc = Isa.Codec.encode arch i in
      let dec, next = Isa.Codec.decode arch enc ~pos:0 in
      dec = i && next = String.length enc)

(* --- binary analysis --- *)

let simple_binary () =
  let prog = Minic.Sema.analyze "int f(int x) { if (x > 0) { return x; } return -x; } int main() { print_int(f(input(0))); return 0; }" in
  Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O2" prog

let test_analyze_functions () =
  let bin = simple_binary () in
  let c = Diffing.Bcode.analyze bin in
  Alcotest.(check bool) "has f and main" true
    (Array.exists (fun f -> f.Diffing.Bcode.name = "f") c.funcs
    && Array.exists (fun f -> f.Diffing.Bcode.name = "main") c.funcs);
  Array.iter
    (fun (f : Diffing.Bcode.func) ->
      Alcotest.(check bool) (f.name ^ " has blocks") true (Array.length f.blocks > 0);
      (* every successor id is a valid block id *)
      Array.iter
        (fun (b : Diffing.Bcode.block) ->
          List.iter
            (fun s ->
              Alcotest.(check bool) "succ in range" true
                (s >= 0 && s < Array.length f.blocks))
            b.succs)
        f.blocks)
    c.funcs

let test_call_graph () =
  (* compile at O0 so the call survives inlining *)
  let prog =
    Minic.Sema.analyze
      "int f(int x) { if (x > 0) { return x; } return -x; } int main() { print_int(f(input(0))); return 0; }"
  in
  let bin = Toolchain.Pipeline.compile_preset Toolchain.Flags.gcc "O0" prog in
  let c = Diffing.Bcode.analyze bin in
  let main =
    Array.to_list c.funcs |> List.find (fun f -> f.Diffing.Bcode.name = "main")
  in
  let fid =
    let found = ref (-1) in
    Array.iteri
      (fun i (name, _, _) -> if name = "f" then found := i)
      bin.Isa.Binary.functions;
    !found
  in
  Alcotest.(check bool) "main calls f" true (List.mem fid main.calls)

let test_library_flagging () =
  let bin = simple_binary () in
  let c = Diffing.Bcode.analyze bin in
  let strlen =
    Array.to_list c.funcs |> List.find (fun f -> f.Diffing.Bcode.name = "strlen")
  in
  Alcotest.(check bool) "strlen is library" true strlen.is_library

let tests =
  [
    Alcotest.test_case "roundtrip all arches" `Quick test_roundtrip_all_arches;
    Alcotest.test_case "encodings differ" `Quick test_arch_encodings_differ;
    Alcotest.test_case "word alignment" `Quick test_word_alignment;
    Alcotest.test_case "garbage decode" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "pc-relative stability" `Quick test_pc_relative_stability;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_mov;
    Alcotest.test_case "analyze functions" `Quick test_analyze_functions;
    Alcotest.test_case "call graph" `Quick test_call_graph;
    Alcotest.test_case "library flagging" `Quick test_library_flagging;
  ]
