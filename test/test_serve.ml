(* Tests for the serve daemon: the line protocol, cross-job cache
   sharing through the shared session, the warm-store-vs-cold-one-shot
   differential (caching must be lossless), and crash recovery from a
   torn store entry.  Everything drives [Server.handle_line] in-process —
   the socket/stdin transports are thin loops over it. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "bintuner-serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let budget = 40

let job_line =
  Printf.sprintf
    "tune bench=462.libquantum profile=gcc arch=x86-64 strategy=ga budget=%d \
     seed=1"
    budget

(* one request, expecting exactly one response *)
let request srv line =
  match Bintuner.Server.handle_line srv line with
  | [ r ], keep_going -> (r, keep_going)
  | rs, _ ->
    Alcotest.fail
      (Printf.sprintf "expected 1 response to %S, got %d" line (List.length rs))

let test_serve_protocol () =
  let srv = Bintuner.Server.create () in
  Fun.protect
    ~finally:(fun () -> Bintuner.Server.close srv)
    (fun () ->
      Alcotest.(check bool) "blank line ignored" true
        (Bintuner.Server.handle_line srv "" = ([], true));
      Alcotest.(check bool) "comment ignored" true
        (Bintuner.Server.handle_line srv "# warmup script" = ([], true));
      let status, _ = request srv "status" in
      Alcotest.(check bool) "fresh status ok" true
        (contains status "\"ok\":true" && contains status "\"queued\":0");
      Alcotest.(check bool) "no store configured" true
        (contains status "\"store\":false");
      let r, _ = request srv "submit bench=no-such-benchmark" in
      Alcotest.(check bool) "unknown bench rejected" true
        (contains r "\"ok\":false" && contains r "no-such-benchmark");
      let r, _ = request srv "submit strategy=psychic" in
      Alcotest.(check bool) "unknown strategy rejected" true
        (contains r "\"ok\":false");
      let r, _ = request srv "submit budget=lots" in
      Alcotest.(check bool) "non-integer budget rejected" true
        (contains r "\"ok\":false");
      let r, _ = request srv "frobnicate" in
      Alcotest.(check bool) "unknown verb rejected" true
        (contains r "\"ok\":false");
      (* a rejected submit queues nothing *)
      Alcotest.(check int) "queue still empty" 0
        (Bintuner.Server.queue_depth srv);
      let r, _ = request srv "submit bench=462.libquantum budget=5" in
      Alcotest.(check bool) "submit acknowledges with id" true
        (contains r "\"ok\":true" && contains r "\"job\":1");
      Alcotest.(check int) "queued" 1 (Bintuner.Server.queue_depth srv);
      let status, _ = request srv "status" in
      Alcotest.(check bool) "status sees the queue" true
        (contains status "\"queued\":1" && contains status "462.libquantum");
      let r, keep_going = request srv "quit" in
      Alcotest.(check bool) "quit stops the loop" false keep_going;
      Alcotest.(check bool) "quit is polite" true (contains r "\"ok\":true"))

(* The [objective] job parameter: a malformed spec is rejected without
   killing the daemon, and a 2-axis job's summary carries the axis
   names, the best score vector and a non-dominated front. *)
let test_serve_objective_parameter () =
  let srv = Bintuner.Server.create () in
  Fun.protect
    ~finally:(fun () -> Bintuner.Server.close srv)
    (fun () ->
      let r, _ = request srv "submit bench=429.mcf objective=bogus" in
      Alcotest.(check bool) "unknown objective rejected" true
        (contains r "\"ok\":false");
      let r, _ = request srv "submit bench=429.mcf objective=ncd,ncd" in
      Alcotest.(check bool) "duplicate axis rejected" true
        (contains r "\"ok\":false");
      Alcotest.(check int) "nothing queued" 0 (Bintuner.Server.queue_depth srv);
      let r, _ =
        request srv "tune bench=429.mcf budget=25 objective=ncd,gadgets"
      in
      Alcotest.(check bool) "2-axis job ok" true (contains r "\"ok\":true");
      Alcotest.(check bool) "summary names the axes" true
        (contains r "\"objectives\":\"ncd,gadgets\"");
      Alcotest.(check bool) "summary carries the front" true
        (contains r "\"front_size\":" && contains r "\"best_scores\":");
      (match Bintuner.Server.completed srv with
      | [ j ] ->
        Alcotest.(check (list string))
          "job summary axes" [ "ncd"; "gadgets" ]
          j.Bintuner.Server.objectives;
        Alcotest.(check int) "score arity" 2 (Array.length j.best_scores);
        Alcotest.(check bool) "front non-empty and non-dominated" true
          (j.front <> [] && Search.Pareto.is_non_dominated j.front);
        Alcotest.(check bool) "objective memos saw traffic" true
          (j.objective_hits + j.objective_misses > 0)
      | l ->
        Alcotest.fail
          (Printf.sprintf "expected 1 completed job, got %d" (List.length l)));
      let status, _ = request srv "status" in
      Alcotest.(check bool) "status sums objective counters" true
        (contains status "\"objective\":"))

(* Two sequential jobs on one daemon: the second must be served largely
   from the first's shared caches — memo hits with a default session,
   persistent-store hits once the memo is too small to shadow the store. *)
let test_serve_cross_job_sharing () =
  with_temp_dir (fun dir ->
      let srv = Bintuner.Server.create ~store_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Bintuner.Server.close srv)
        (fun () ->
          let r1, _ = request srv job_line in
          let r2, _ = request srv job_line in
          Alcotest.(check bool) "both jobs ok" true
            (contains r1 "\"ok\":true" && contains r2 "\"ok\":true");
          match Bintuner.Server.completed srv with
          | [ j1; j2 ] ->
            Alcotest.(check bool) "job 1 ran cold" true
              (j1.Bintuner.Server.compilations > 0);
            (* the shared memo serves job 2 the binaries job 1 compiled *)
            Alcotest.(check bool) "job 2 hits the shared memo" true
              (j2.Bintuner.Server.cache_hits > 0);
            Alcotest.(check bool) "job 2 compiles less than job 1" true
              (j2.compilations < j1.compilations);
            Alcotest.(check string) "same best vector"
              (Bintuner.Database.vector_to_string j1.best_vector)
              (Bintuner.Database.vector_to_string j2.best_vector)
          | l ->
            Alcotest.fail
              (Printf.sprintf "expected 2 completed jobs, got %d"
                 (List.length l))))

(* The acceptance differential: a warm daemon's second job reports
   nonzero persistent-store hits and a best_vector bit-identical to a
   cold one-shot [Tuner.tune].  The memo is capped to one byte so it can
   never shadow the store — every compile request of job 2 falls through
   to disk. *)
let test_serve_warm_store_matches_cold_tune () =
  with_temp_dir (fun dir ->
      let srv = Bintuner.Server.create ~store_dir:dir ~memo_max_bytes:1 () in
      Fun.protect
        ~finally:(fun () -> Bintuner.Server.close srv)
        (fun () ->
          ignore (request srv job_line);
          ignore (request srv job_line);
          let cold =
            Bintuner.Tuner.tune
              ~termination:
                { Search.default_termination with max_evaluations = budget }
              ~strategy:(Search.of_name "ga")
              ~profile:Toolchain.Flags.gcc
              (Corpus.find "462.libquantum")
          in
          match Bintuner.Server.completed srv with
          | [ j1; j2 ] ->
            Alcotest.(check bool) "job 1 populated the store" true
              (j1.Bintuner.Server.store_misses > 0);
            Alcotest.(check bool) "job 2 reports persistent-store hits" true
              (j2.Bintuner.Server.store_hits > 0);
            Alcotest.(check string) "job 2 best vector = cold one-shot tune"
              (Bintuner.Database.vector_to_string cold.Bintuner.Tuner.best_vector)
              (Bintuner.Database.vector_to_string j2.best_vector);
            Alcotest.(check bool) "job 2 best ncd bit-identical to cold" true
              (Int64.bits_of_float j2.best_ncd
              = Int64.bits_of_float cold.Bintuner.Tuner.best_ncd);
            Alcotest.(check int) "same iteration count" cold.iterations
              j2.iterations
          | l ->
            Alcotest.fail
              (Printf.sprintf "expected 2 completed jobs, got %d"
                 (List.length l))))

(* Crash recovery: a store directory with a torn shard entry must load,
   quarantine the entry on first touch, recompute, and finish the job —
   never crash the daemon or change the answer. *)
let test_serve_recovers_from_torn_store () =
  with_temp_dir (fun dir ->
      let best1 =
        let srv = Bintuner.Server.create ~store_dir:dir ~memo_max_bytes:1 () in
        Fun.protect
          ~finally:(fun () -> Bintuner.Server.close srv)
          (fun () ->
            ignore (request srv job_line);
            match Bintuner.Server.completed srv with
            | [ j ] -> j.Bintuner.Server.best_vector
            | _ -> Alcotest.fail "expected 1 completed job")
      in
      (* tear the first shard entry we can find *)
      let torn = ref false in
      Array.iter
        (fun shard ->
          if (not !torn) && String.length shard = 2 then begin
            let sdir = Filename.concat dir shard in
            match Sys.readdir sdir with
            | [||] -> ()
            | names ->
              let path = Filename.concat sdir names.(0) in
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let half = really_input_string ic (n / 2) in
              close_in ic;
              let oc = open_out_bin path in
              output_string oc half;
              close_out oc;
              torn := true
          end)
        (Sys.readdir dir);
      Alcotest.(check bool) "found an entry to tear" true !torn;
      let srv = Bintuner.Server.create ~store_dir:dir ~memo_max_bytes:1 () in
      Fun.protect
        ~finally:(fun () -> Bintuner.Server.close srv)
        (fun () ->
          let r, _ = request srv job_line in
          Alcotest.(check bool) "daemon survives the torn entry" true
            (contains r "\"ok\":true");
          (match Bintuner.Server.completed srv with
          | [ j ] ->
            Alcotest.(check string) "answer unchanged after recovery"
              (Bintuner.Database.vector_to_string best1)
              (Bintuner.Database.vector_to_string j.Bintuner.Server.best_vector)
          | _ -> Alcotest.fail "expected 1 completed job");
          (* status reports the quarantine *)
          let status, _ = request srv "status" in
          Alcotest.(check bool) "status shows quarantined > 0" true
            (contains status "\"quarantined\":"
            && not (contains status "\"quarantined\":0,"))))

(* The session pool is shut down with the daemon: no leaked domains. *)
let test_serve_no_leaked_domains () =
  let before = Parallel.Pool.live_domains () in
  let srv = Bintuner.Server.create ~jobs:2 () in
  ignore (request srv "status");
  Bintuner.Server.close srv;
  Alcotest.(check int) "live domains restored" before
    (Parallel.Pool.live_domains ())

let tests =
  [
    Alcotest.test_case "serve protocol" `Quick test_serve_protocol;
    Alcotest.test_case "serve objective parameter" `Slow
      test_serve_objective_parameter;
    Alcotest.test_case "serve cross-job sharing" `Slow
      test_serve_cross_job_sharing;
    Alcotest.test_case "serve warm store = cold tune" `Slow
      test_serve_warm_store_matches_cold_tune;
    Alcotest.test_case "serve torn store recovery" `Slow
      test_serve_recovers_from_torn_store;
    Alcotest.test_case "serve no leaked domains" `Quick
      test_serve_no_leaked_domains;
  ]
