(* Frozen pre-framework dataflow implementations, kept verbatim as
   differential oracles for [Analysis.Dataflow].

   Until the shared worklist solver landed, [Passes.Cleanup.liveness],
   [Codegen.Emit]'s vector liveness and [Passes.Cfg_utils.dominators]
   each carried their own round-robin iterate-until-stable loop.  Those
   loops are copied here unchanged: the liveness and dominator fixpoints
   are unique, so the solver-backed replacements must reproduce these
   tables exactly, on every function [Test_analysis] throws at them. *)

open Vir.Ir
module Iset = Analysis.Dataflow.Iset

let block_use_def b =
  (* use = registers read before any write in the block *)
  let use = ref Iset.empty and def = ref Iset.empty in
  let consider_instr i =
    List.iter
      (fun r -> if not (Iset.mem r !def) then use := Iset.add r !use)
      (instr_uses i);
    match instr_def i with
    | Some d -> def := Iset.add d !def
    | None -> ()
  in
  List.iter consider_instr b.instrs;
  List.iter
    (fun r -> if not (Iset.mem r !def) then use := Iset.add r !use)
    (term_uses b.term);
  (!use, !def)

let liveness f =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace use_def b.label (block_use_def b);
      Hashtbl.replace live_in b.label Iset.empty;
      Hashtbl.replace live_out b.label Iset.empty)
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse layout order for faster convergence *)
    List.iter
      (fun b ->
        let out =
          List.fold_left
            (fun acc s ->
              match Hashtbl.find_opt live_in s with
              | Some li -> Iset.union acc li
              | None -> acc)
            Iset.empty (successors b.term)
        in
        let use, def = Hashtbl.find use_def b.label in
        let inn = Iset.union use (Iset.diff out def) in
        if not (Iset.equal out (Hashtbl.find live_out b.label)) then begin
          Hashtbl.replace live_out b.label out;
          changed := true
        end;
        if not (Iset.equal inn (Hashtbl.find live_in b.label)) then begin
          Hashtbl.replace live_in b.label inn;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  (live_in, live_out)

let vliveness (f : func) =
  let use_def = Hashtbl.create 16 in
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let use = ref Iset.empty and def = ref Iset.empty in
      List.iter
        (fun i ->
          List.iter
            (fun r -> if not (Iset.mem r !def) then use := Iset.add r !use)
            (instr_vuses i);
          match instr_vdef i with
          | Some d -> def := Iset.add d !def
          | None -> ())
        b.instrs;
      Hashtbl.replace use_def b.label (!use, !def);
      Hashtbl.replace live_in b.label Iset.empty;
      Hashtbl.replace live_out b.label Iset.empty)
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let out =
          List.fold_left
            (fun acc s ->
              match Hashtbl.find_opt live_in s with
              | Some li -> Iset.union acc li
              | None -> acc)
            Iset.empty (successors b.term)
        in
        let use, def = Hashtbl.find use_def b.label in
        let inn = Iset.union use (Iset.diff out def) in
        if not (Iset.equal out (Hashtbl.find live_out b.label)) then begin
          Hashtbl.replace live_out b.label out;
          changed := true
        end;
        if not (Iset.equal inn (Hashtbl.find live_in b.label)) then begin
          Hashtbl.replace live_in b.label inn;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  (live_in, live_out)

let reachable f =
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let seen = ref Iset.empty in
  let rec go l =
    if not (Iset.mem l !seen) then begin
      seen := Iset.add l !seen;
      match Hashtbl.find_opt block_table l with
      | Some b -> List.iter go (successors b.term)
      | None -> ()
    end
  in
  (match f.blocks with b :: _ -> go b.label | [] -> ());
  !seen

let dominators f =
  let reach = reachable f in
  let blocks = List.filter (fun b -> Iset.mem b.label reach) f.blocks in
  let labels = List.map (fun b -> b.label) blocks in
  let all = Iset.of_list labels in
  let entry = (entry_block f).label in
  let preds_tbl = predecessors f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l = entry then Hashtbl.replace dom l (Iset.singleton entry)
      else Hashtbl.replace dom l all)
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let preds =
            (try Hashtbl.find preds_tbl l with Not_found -> [])
            |> List.filter (fun p -> Iset.mem p reach)
          in
          let inter =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with
                | None -> Some dp
                | Some s -> Some (Iset.inter s dp))
              None preds
          in
          let nd =
            match inter with
            | None -> Iset.singleton l
            | Some s -> Iset.add l s
          in
          if not (Iset.equal nd (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l nd;
            changed := true
          end
        end)
      labels
  done;
  dom
