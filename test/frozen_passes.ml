(* Frozen IR oracles for the flag-gated optimizer passes.

   For every corpus benchmark, the MD5 of the printed IR after
   [simplify_cfg] + [run_baseline] + one new pass was recorded when the
   pass landed (and its output was audited by the property suite in
   [Test_opt_passes]).  Any behavioural drift in SCCP, GVN or the
   dominator LICM — or in the analyses and cleanup passes they build on —
   shows up here as a digest mismatch, pointing at the exact benchmark
   whose code changed.  Benchmarks whose digest equals a sibling table's
   entry are ones the pass leaves alone after baseline cleanup: that
   dormancy is part of the frozen behaviour too.

   To re-baseline after an *intentional* change, recompute with
   [digest_of] below and update the tables in the same commit as the
   change, with a justification. *)

let digest_of pass bench =
  let ir = Vir.Lower.lower_program (Corpus.program bench) in
  List.iter
    (fun f ->
      Passes.Cleanup.simplify_cfg f;
      Passes.Cleanup.run_baseline f;
      pass f)
    ir.Vir.Ir.funcs;
  Digest.to_hex (Digest.string (Vir.Ir.program_to_string ir))

let sccp_digests =
  [
    ("400.perlbench", "b5e51a109355db6f338749c805450da2");
    ("401.bzip2", "6c1a4027be77d0148895c6a89b4f8860");
    ("429.mcf", "5348c5a7ece9f3c0965e2b4e997f7db1");
    ("445.gobmk", "d3a89a17f1cf6b904ab92c4611daa979");
    ("456.hmmer", "16d2221f265df1ac9620632c2da28aee");
    ("458.sjeng", "7a6ea18cd8149ef2c26d175188d7cc63");
    ("462.libquantum", "be968118a6e8e6b541f95594ed4d6aee");
    ("464.h264ref", "38b40062b19c58e3c60ecb24a735b51d");
    ("473.astar", "90f00eb8f588e68a9e175490c6f9575a");
    ("483.xalancbmk", "78403c3b5ed765fd9b14066b5201c794");
    ("600.perlbench_s", "4c6ed805fda020f49343ec54ff68a9aa");
    ("605.mcf_s", "1afc06dc5c3b2b854a1687fd74d4ea8f");
    ("620.omnetpp_s", "9bf8d1bf6ee0422d2bf5a7c0ee5ff46d");
    ("623.xalancbmk_s", "181ea2fd766b71847af9509485333c32");
    ("625.x264_s", "2d9189128edf8d0b8437ea8473d603ac");
    ("631.deepsjeng_s", "4ab3cc99128c619a934cbd8570ec20cc");
    ("641.leela_s", "a14e14c94a3176b21ac419e23ae2a62f");
    ("648.exchange2_s", "62ffc9d722112f111ca2c948777b6955");
    ("657.xz_s", "24f89c162329bdea274ec31791f6f60f");
    ("coreutils", "3586e7776ad345d039d7f2f9f6919e5d");
    ("openssl", "1e935bf06f08d58f926dd17b841dbff6");
    ("lightaidra", "db382b09cb1fab6c4e8c37d33e5ed549");
    ("bashlife", "479efca83b6d2b8ade184f53f393e8de");
    ("mirai", "df5d892d75de42822c8953b4f6f7c7f0");
  ]

let gvn_digests =
  [
    ("400.perlbench", "b5e51a109355db6f338749c805450da2");
    ("401.bzip2", "6c1a4027be77d0148895c6a89b4f8860");
    ("429.mcf", "5348c5a7ece9f3c0965e2b4e997f7db1");
    ("445.gobmk", "1ac8ece7e965899e68362572df81843c");
    ("456.hmmer", "16d2221f265df1ac9620632c2da28aee");
    ("458.sjeng", "7a6ea18cd8149ef2c26d175188d7cc63");
    ("462.libquantum", "be968118a6e8e6b541f95594ed4d6aee");
    ("464.h264ref", "38b40062b19c58e3c60ecb24a735b51d");
    ("473.astar", "90f00eb8f588e68a9e175490c6f9575a");
    ("483.xalancbmk", "78403c3b5ed765fd9b14066b5201c794");
    ("600.perlbench_s", "97da88d1c1e7afb5910c10a66fa09afd");
    ("605.mcf_s", "1afc06dc5c3b2b854a1687fd74d4ea8f");
    ("620.omnetpp_s", "9bf8d1bf6ee0422d2bf5a7c0ee5ff46d");
    ("623.xalancbmk_s", "181ea2fd766b71847af9509485333c32");
    ("625.x264_s", "2d9189128edf8d0b8437ea8473d603ac");
    ("631.deepsjeng_s", "4ab3cc99128c619a934cbd8570ec20cc");
    ("641.leela_s", "fb5e512d21f31ac807d68068c8f412b8");
    ("648.exchange2_s", "62ffc9d722112f111ca2c948777b6955");
    ("657.xz_s", "24f89c162329bdea274ec31791f6f60f");
    ("coreutils", "3586e7776ad345d039d7f2f9f6919e5d");
    ("openssl", "1e935bf06f08d58f926dd17b841dbff6");
    ("lightaidra", "db382b09cb1fab6c4e8c37d33e5ed549");
    ("bashlife", "479efca83b6d2b8ade184f53f393e8de");
    ("mirai", "df5d892d75de42822c8953b4f6f7c7f0");
  ]

let licm_dom_digests =
  [
    ("400.perlbench", "b5e51a109355db6f338749c805450da2");
    ("401.bzip2", "baa3cdf5c4cee0a214590b88b993cd48");
    ("429.mcf", "5348c5a7ece9f3c0965e2b4e997f7db1");
    ("445.gobmk", "8015b09b7dfb08a9a79e1d5513c8378e");
    ("456.hmmer", "bd54df9912ae3d948d3b9c35edc0cbb2");
    ("458.sjeng", "3f169e1efcaf2a64e6a5d94480dddfe8");
    ("462.libquantum", "be968118a6e8e6b541f95594ed4d6aee");
    ("464.h264ref", "bca053fefb97b2cc57282c6a972fa936");
    ("473.astar", "90f00eb8f588e68a9e175490c6f9575a");
    ("483.xalancbmk", "78403c3b5ed765fd9b14066b5201c794");
    ("600.perlbench_s", "35dd10a5a551bb99faf9180b148fbe1f");
    ("605.mcf_s", "1afc06dc5c3b2b854a1687fd74d4ea8f");
    ("620.omnetpp_s", "9bf8d1bf6ee0422d2bf5a7c0ee5ff46d");
    ("623.xalancbmk_s", "181ea2fd766b71847af9509485333c32");
    ("625.x264_s", "f6ecdcb5dc8c932d8828a9449eb4f800");
    ("631.deepsjeng_s", "4ea3922c2505dcfecc3da91c142142f6");
    ("641.leela_s", "a14e14c94a3176b21ac419e23ae2a62f");
    ("648.exchange2_s", "1c0c619828bb055bb239a1d89db40ff1");
    ("657.xz_s", "24f89c162329bdea274ec31791f6f60f");
    ("coreutils", "378db3484d7d921a34c7141215681256");
    ("openssl", "4018a06580550380b7cc673b5dd719c7");
    ("lightaidra", "db382b09cb1fab6c4e8c37d33e5ed549");
    ("bashlife", "3ff478bec369756cf66aeb516de0710c");
    ("mirai", "0928b80d174b9d94cd49df065ebbf335");
  ]

let check (pname, pass, table) () =
  Alcotest.(check int)
    (pname ^ " table covers the corpus")
    (List.length Corpus.all) (List.length table);
  List.iter
    (fun b ->
      Alcotest.(check string)
        (Printf.sprintf "%s on %s" pname b.Corpus.bname)
        (List.assoc b.Corpus.bname table)
        (digest_of pass b))
    Corpus.all

let tests =
  List.map
    (fun ((pname, _, _) as spec) ->
      Alcotest.test_case ("frozen " ^ pname) `Slow (check spec))
    [
      ("sccp", Passes.Sccp.run, sccp_digests);
      ("gvn", Passes.Gvn.run, gvn_digests);
      ("licm_dom", Passes.Licm_dom.run, licm_dom_digests);
    ]
