(* Differential compiler fuzzing: random well-formed MinC programs must
   behave identically under the -O0 reference interpreter and under every
   optimization configuration on the VX virtual machine.

   The sequential sweeps additionally run with the between-pass IR
   verifier enabled ([with_verifier]), so every fuzzer-generated program
   must verify after every pass prefix of every compile — a structural
   oracle on top of the behavioural one.  The pooled oracle is left
   alone: [Toolchain.Pipeline.verify_default] is a plain global and must
   not be flipped around worker domains. *)

let with_verifier f =
  Toolchain.Pipeline.verify_default := true;
  Fun.protect
    ~finally:(fun () -> Toolchain.Pipeline.verify_default := false)
    f

let behaviour_ir ir input =
  let r = Vir.Interp.run ~fuel:3_000_000 ir ~input in
  Printf.sprintf "%s|%d" (Vir.Interp.output_to_string r.output) r.return_value

let behaviour_vm bin input =
  let r = Vm.Machine.run ~fuel:6_000_000 bin ~input in
  Printf.sprintf "%s|%d"
    (Vir.Interp.output_to_string r.Vm.Machine.output)
    r.Vm.Machine.return_value

let inputs = [ [| 0 |]; [| 5 |]; [| 123 |] ]

let check_seed ~preset ~profile seed =
  let prog = Fuzzgen.generate seed in
  Minic.Sema.check prog;
  let ir = Vir.Lower.lower_program prog in
  match List.map (behaviour_ir ir) inputs with
  | exception Vir.Interp.Out_of_fuel -> true (* pathological runtime: skip *)
  | reference ->
    let bin = Toolchain.Pipeline.compile_preset profile preset prog in
    List.map (behaviour_vm bin) inputs = reference

let test_fuzz_presets () =
  (* a fixed sweep across seeds, presets and profiles *)
  with_verifier @@ fun () ->
  List.iter
    (fun seed ->
      List.iter
        (fun (profile, preset) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s %s" seed
               profile.Toolchain.Flags.profile_name preset)
            true
            (check_seed ~preset ~profile seed))
        [
          (Toolchain.Flags.gcc, "O0");
          (Toolchain.Flags.gcc, "O2");
          (Toolchain.Flags.gcc, "O3");
          (Toolchain.Flags.llvm, "O3");
          (Toolchain.Flags.gcc, "Os");
        ])
    (List.init 12 (fun i -> i * 37 + 1))

let prop_fuzz_random_flags =
  QCheck.Test.make ~name:"fuzzed programs under random flag vectors" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (seed, vseed) ->
      with_verifier @@ fun () ->
      let prog = Fuzzgen.generate (seed + 1000) in
      let ir = Vir.Lower.lower_program prog in
      match List.map (behaviour_ir ir) inputs with
      | exception Vir.Interp.Out_of_fuel -> true
      | reference ->
        let profile =
          if vseed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
        in
        let rng = Util.Rng.create (vseed * 13 + 5) in
        let n = Array.length profile.flags in
        let v =
          Toolchain.Constraints.repair profile rng
            (Array.init n (fun _ -> Util.Rng.bool rng))
        in
        let bin = Toolchain.Pipeline.compile_flags profile v prog in
        List.map (behaviour_vm bin) inputs = reference)

(* The pooled differential oracle: per fuzzed program, six random
   repaired flag vectors are compiled and behaviour-checked as one
   [Parallel.Pool] batch.  Each candidate gets its own RNG stream, split
   from a master generator {e before} dispatch, so the work is both
   thread-safe and schedule-independent — the pooled verdicts must equal
   an inline sequential run using identically derived streams. *)
let fuzz_candidates ~master_seed prog =
  let ir = Vir.Lower.lower_program prog in
  match List.map (behaviour_ir ir) inputs with
  | exception Vir.Interp.Out_of_fuel -> None
  | reference ->
    let master = Util.Rng.create master_seed in
    let jobs =
      Array.init 6 (fun i ->
          let rng = Util.Rng.split master in
          let profile =
            if i mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
          in
          (profile, rng))
    in
    let check (profile, rng) =
      let n = Array.length profile.Toolchain.Flags.flags in
      let v =
        Toolchain.Constraints.repair profile rng
          (Array.init n (fun _ -> Util.Rng.bool rng))
      in
      let bin = Toolchain.Pipeline.compile_flags profile v prog in
      List.map (behaviour_vm bin) inputs = reference
    in
    Some (jobs, check)

let test_fuzz_parallel_oracle () =
  Parallel.Pool.with_pool 4 (fun pool ->
      List.iter
        (fun seed ->
          let prog = Fuzzgen.generate seed in
          Minic.Sema.check prog;
          match fuzz_candidates ~master_seed:(seed * 11 + 1) prog with
          | None -> () (* pathological runtime: skip *)
          | Some (jobs, check) ->
            let pooled = Parallel.Pool.map ~chunk_size:1 pool check jobs in
            Array.iteri
              (fun i ok ->
                Alcotest.(check bool)
                  (Printf.sprintf "seed %d candidate %d" seed i)
                  true ok)
              pooled;
            (* identically derived streams, run inline: the pool must not
               have perturbed any verdict *)
            (match fuzz_candidates ~master_seed:(seed * 11 + 1) prog with
            | None -> Alcotest.fail "reference became non-terminating"
            | Some (jobs', check') ->
              Alcotest.(check (array bool))
                (Printf.sprintf "seed %d pooled = sequential" seed)
                (Array.map check' jobs') pooled))
        (List.init 8 (fun i -> (i * 101) + 3)))

let test_fuzz_all_arches () =
  with_verifier @@ fun () ->
  List.iter
    (fun seed ->
      let prog = Fuzzgen.generate seed in
      let ir = Vir.Lower.lower_program prog in
      match List.map (behaviour_ir ir) inputs with
      | exception Vir.Interp.Out_of_fuel -> ()
      | reference ->
        List.iter
          (fun arch ->
            let bin =
              Toolchain.Pipeline.compile_preset Toolchain.Flags.llvm ~arch "O2"
                prog
            in
            Alcotest.(check (list string))
              (Printf.sprintf "seed %d %s" seed (Isa.Insn.arch_name arch))
              reference
              (List.map (behaviour_vm bin) inputs))
          Isa.Insn.all_arches)
    [ 2026; 7777; 31415 ]

(* Incremental-vs-scratch on fuzzed programs, under the IR verifier: two
   random flag vectors of the same profile compile through one shared
   snapshot store — the second typically resumes from a prefix the first
   published, and [with_verifier] makes the pipeline verify every
   resumed stage before trusting it.  Both binaries must equal their
   scratch compiles, and both must behave like the -O0 reference. *)
let prop_fuzz_incremental_vs_scratch =
  QCheck.Test.make ~name:"fuzzed incremental compiles equal scratch" ~count:15
    QCheck.(pair small_nat small_nat)
    (fun (seed, vseed) ->
      with_verifier @@ fun () ->
      let prog = Fuzzgen.generate (seed + 4000) in
      let ir = Vir.Lower.lower_program prog in
      match List.map (behaviour_ir ir) inputs with
      | exception Vir.Interp.Out_of_fuel -> true
      | reference ->
        let profile =
          if vseed mod 2 = 0 then Toolchain.Flags.gcc else Toolchain.Flags.llvm
        in
        let rng = Util.Rng.create ((vseed * 29) + 11) in
        let n = Array.length profile.Toolchain.Flags.flags in
        let vector () =
          Toolchain.Constraints.repair profile rng
            (Array.init n (fun _ -> Util.Rng.bool rng))
        in
        let v1 = vector () and v2 = vector () in
        let store = Bintuner.Incremental.create () in
        let snapshot = Bintuner.Incremental.snapshot_store store in
        List.for_all
          (fun v ->
            let scratch = Toolchain.Pipeline.compile_flags profile v prog in
            let inc =
              Toolchain.Pipeline.compile_flags profile ~snapshot v prog
            in
            inc = scratch && List.map (behaviour_vm inc) inputs = reference)
          [ v1; v2; v1 ])

(* Each new optimizer pass (SCCP, GVN, dominator LICM) — alone and all
   together — on top of O2, for both profiles.  [with_verifier] makes the
   pipeline structurally verify the IR after {e every} pass prefix of
   every compile, and the VM run is the behavioural differential on top.
   The Requires-dependencies of each flag are enabled explicitly so the
   vectors stay constraint-valid by construction. *)
let new_pass_flag_sets profile =
  if profile.Toolchain.Flags.profile_name = "gcc-10.2" then
    [
      [ "-ftree-ccp" ];
      [ "-ftree-pre"; "-frerun-cse-after-loop" ];
      [ "-ftree-loop-im"; "-fmove-loop-invariants" ];
      [
        "-ftree-ccp"; "-ftree-pre"; "-frerun-cse-after-loop";
        "-ftree-loop-im"; "-fmove-loop-invariants";
      ];
    ]
  else
    [
      [ "-fsccp" ];
      [ "-fnewgvn"; "-flate-cse" ];
      [ "-flicm-aggressive"; "-flicm" ];
      [ "-fsccp"; "-fnewgvn"; "-flate-cse"; "-flicm-aggressive"; "-flicm" ];
    ]

let test_fuzz_new_passes () =
  with_verifier @@ fun () ->
  List.iter
    (fun seed ->
      let prog = Fuzzgen.generate seed in
      Minic.Sema.check prog;
      let ir = Vir.Lower.lower_program prog in
      match List.map (behaviour_ir ir) inputs with
      | exception Vir.Interp.Out_of_fuel -> () (* pathological runtime: skip *)
      | reference ->
        List.iter
          (fun profile ->
            let base = Option.get (Toolchain.Flags.preset profile "O2") in
            List.iter
              (fun names ->
                let v = Array.copy base in
                List.iter
                  (fun n -> v.(Toolchain.Flags.flag_index profile n) <- true)
                  names;
                Alcotest.(check bool)
                  (Printf.sprintf "vector valid: %s" (String.concat "," names))
                  true
                  (Toolchain.Constraints.valid profile v);
                let bin = Toolchain.Pipeline.compile_flags profile v prog in
                Alcotest.(check (list string))
                  (Printf.sprintf "seed %d %s O2+%s" seed
                     profile.Toolchain.Flags.profile_name
                     (String.concat "," names))
                  reference
                  (List.map (behaviour_vm bin) inputs))
              (new_pass_flag_sets profile))
          [ Toolchain.Flags.gcc; Toolchain.Flags.llvm ])
    (List.init 10 (fun i -> (i * 53) + 7))

let tests =
  [
    Alcotest.test_case "fuzz presets" `Slow test_fuzz_presets;
    Alcotest.test_case "fuzz new optimizer passes" `Slow test_fuzz_new_passes;
    QCheck_alcotest.to_alcotest prop_fuzz_random_flags;
    QCheck_alcotest.to_alcotest prop_fuzz_incremental_vs_scratch;
    Alcotest.test_case "fuzz parallel oracle" `Slow test_fuzz_parallel_oracle;
    Alcotest.test_case "fuzz all arches" `Quick test_fuzz_all_arches;
  ]
