#!/bin/sh
# Serve smoke gate: boot the tuning daemon in stdin mode against a
# scratch persistent store, pipe it two identical jobs plus a `status`
# request, and assert that
#
#   - both jobs succeed and agree bit-for-bit on best_vector / best_ncd
#     / iterations (the artifact store is lossless);
#   - job 2 is served from the persistent store (store_hits > 0).  The
#     shared in-memory memo is disabled for the gate (--memo-max-mb 0
#     clamps it to one byte, which admits nothing) so a hit cannot hide
#     in memory — it must come off disk;
#   - the status report is well-formed: empty queue, two completed
#     jobs, zero quarantined store entries, and exactly the requested
#     worker domains alive — a pool of size N runs N-1 spawned domains
#     (the submitting domain participates), so -j 2 must report
#     live_domains 1: anything higher is a leak from a previous job.
#     The post-close restoration check (domains torn down with the
#     daemon) lives in test/test_serve.ml, where the observer outlives
#     the server;
#   - the daemon answers `quit` and exits cleanly.
#
# Run directly or via `make serve-smoke`; tools/ci.sh calls it too.

set -eu
cd "$(dirname "$0")/.."

serve_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir"' EXIT
serve_log="$serve_dir/serve.log"

job='tune bench=462.libquantum profile=gcc arch=x86-64 strategy=ga budget=40 seed=1'
printf '%s\n%s\nstatus\nquit\n' "$job" "$job" \
  | dune exec bin/bintuner_cli.exe -- serve \
      --store "$serve_dir/store" --memo-max-mb 0 -j 2 > "$serve_log"

[ "$(wc -l < "$serve_log")" -eq 4 ] || {
  echo "serve-smoke: FAIL — expected 4 response lines (job, job, status, quit)" >&2
  cat "$serve_log" >&2
  exit 1
}

if command -v jq >/dev/null 2>&1; then
  jq -s -e '
    (.[0].ok == true) and (.[0].compilations > 0) and (.[0].store_misses > 0)
    and (.[1].ok == true) and (.[1].store_hits > 0)
    and (.[1].best_vector == .[0].best_vector)
    and (.[1].best_ncd == .[0].best_ncd)
    and (.[1].iterations == .[0].iterations)
    and (.[2].ok == true) and (.[2].queued == 0) and (.[2].completed == 2)
    and ((.[2].jobs | length) == 2)
    and (.[2].store.hits > 0) and (.[2].store.quarantined == 0)
    and (.[2].live_domains == 1)
    and (.[3].ok == true)' "$serve_log" >/dev/null || {
    echo "serve-smoke: FAIL — daemon responses failed validation" >&2
    cat "$serve_log" >&2
    exit 1
  }
  hits=$(jq -s '.[1].store_hits' "$serve_log")
else
  python3 -c '
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1])]
assert len(rs) == 4
j1, j2, status, bye = rs
assert j1["ok"] and j1["compilations"] > 0 and j1["store_misses"] > 0, j1
assert j2["ok"] and j2["store_hits"] > 0, j2
assert j2["best_vector"] == j1["best_vector"], (j1, j2)
assert j2["best_ncd"] == j1["best_ncd"], (j1, j2)
assert j2["iterations"] == j1["iterations"], (j1, j2)
assert status["ok"] and status["queued"] == 0 and status["completed"] == 2
assert len(status["jobs"]) == 2
assert status["store"]["hits"] > 0 and status["store"]["quarantined"] == 0
assert status["live_domains"] == 1, status
assert bye["ok"]
print(j2["store_hits"])
' "$serve_log" > "$serve_dir/hits" || {
    echo "serve-smoke: FAIL — daemon responses failed validation" >&2
    cat "$serve_log" >&2
    exit 1
  }
  hits=$(cat "$serve_dir/hits")
fi

echo "serve-smoke: OK (job 2 served $hits binaries from the persistent store)"
