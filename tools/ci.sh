#!/bin/sh
# The repository's CI entry point:
#
#   1. `make check`        — build + full test suite (includes the j-differential
#                            and cache-correctness layers);
#   2. `make bench-smoke`  — scaled-down Table 1 through the parallel engine;
#   3. determinism cross-check — the table1 sentinel (an MD5 over every run's
#      best vector, NCD, iteration count, memo counters and history) must be
#      byte-identical at -j 1 and -j 2, and the memo must report cache hits.
#
# Exits non-zero on any failure.

set -eu
cd "$(dirname "$0")/.."

echo "== ci: build + tests =="
make check

echo "== ci: bench smoke (table1, quick budget, -j 2) =="
smoke_log=$(mktemp)
trap 'rm -f "$smoke_log"' EXIT
dune exec bench/main.exe -- -quick -j 2 table1 | tee "$smoke_log"

sentinel_j2=$(grep 'table1 determinism sentinel:' "$smoke_log" | awk '{print $NF}')
[ -n "$sentinel_j2" ] || { echo "ci: FAIL — no determinism sentinel in table1 output" >&2; exit 1; }

memo_hits=$(grep '^compile memo:' "$smoke_log" | awk '{print $3}')
[ "${memo_hits:-0}" -ge 1 ] || { echo "ci: FAIL — compile memo reported no cache hits" >&2; exit 1; }

echo "== ci: determinism sentinel cross-check (-j 1 vs -j 2) =="
sentinel_j1=$(dune exec bench/main.exe -- -quick -j 1 table1 \
  | grep 'table1 determinism sentinel:' | awk '{print $NF}')
if [ "$sentinel_j1" != "$sentinel_j2" ]; then
  echo "ci: FAIL — table1 results depend on -j ($sentinel_j1 vs $sentinel_j2)" >&2
  exit 1
fi

echo "ci: OK (sentinel $sentinel_j1, $memo_hits memo hits)"
