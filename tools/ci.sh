#!/bin/sh
# The repository's CI entry point:
#
#   1. `make check`        — build + full test suite (includes the j-differential
#                            and cache-correctness layers);
#   2. `make bench-smoke`  — scaled-down Table 1 through the parallel engine;
#   3. determinism cross-check — the table1 sentinel (an MD5 over every run's
#      best vector, NCD, iteration count, memo counters and history) must be
#      byte-identical at -j 1 and -j 2, the memo must report cache hits, and
#      the pass-prefix snapshot store (incremental compilation, default on —
#      so every sentinel here is computed WITH it) must report hits;
#   4. frozen-oracle sentinel — the same table1 run at -lz-level greedy
#      (the pre-overhaul match finder, kept bit-for-bit stable) must
#      reproduce the sentinel recorded before the NCD kernel overhaul;
#   5. telemetry smoke — a one-benchmark fig5 run with -trace must emit
#      parseable ndjson covering the span vocabulary (compile, pass.*,
#      search.ga.generation, pool.chunk, tuner.binhunt) and a -profile
#      cost split, while the default (telemetry-off) path emits nothing
#      and reproduces the same sentinel; the fig5 NCD batch must report
#      size-cache hits;
#   6. ncd microbench smoke — the `ncd` experiment must emit a parseable
#      BENCH_ncd.json whose chained-vs-greedy throughput speedup is > 1
#      and whose NCD early-exit batch preserves the exhaustive argmax;
#   7. static-analysis gate — the IR verifier must accept every pass of a
#      corpus-wide compile sweep (presets × profiles × archs × random
#      valid flag vectors), the pedantic lint must report nothing beyond
#      tools/lint_allowlist.txt, and a one-benchmark fig5 run with
#      -verify (the between-pass verifier on the bench hot path) must
#      succeed;
#   8. binary insight gate — `inspect --all --arch all` re-disassembles
#      every corpus binary on every arch by recursive descent and the
#      result must agree exactly with the linear sweep and with the
#      compiler's exported ground-truth instruction boundaries (zero
#      mismatches), and the emitted JSON reports must satisfy the
#      report schema (counts coherent, 24-dim provenance vector,
#      per-function feature rows matching the function count);
#   9. strategy smoke gate — every registered search strategy (ga, hill,
#      anneal, random, ensemble) must complete a small CLI tune within
#      its evaluation budget, and the GA-through-the-framework table1 run
#      is already pinned to the frozen greedy sentinel by step 4;
#  10. search microbench smoke — the `search` experiment must emit a
#      parseable BENCH_search.json covering all five strategies, each
#      within the declared budget with positive evals/sec, and the hill
#      incremental-compilation ablation must report outcomes identical
#      with the prefix store on, real snapshot hits, and an evals/sec
#      speedup above 1 (the incremental-differential gate; the committed
#      full-budget artifact records the >= 1.5x speedup).
#  11. serve smoke gate — tools/serve_smoke.sh boots the `serve` daemon
#      in stdin mode against a scratch persistent store, submits two
#      identical jobs plus a `status` request, and asserts job 2 is
#      served from the store (store_hits > 0, with the in-memory memo
#      disabled so a hit cannot hide there), both jobs agree
#      bit-for-bit, the status report is coherent, and no worker
#      domains leak; afterwards the frozen greedy table1 sentinel is
#      re-checked — a daemon run must not perturb the one-shot path.
#  12. multi-objective smoke gate — a CLI `tune --objective ncd,gadgets`
#      run must report a non-empty, mutually non-dominated Pareto front
#      that is byte-identical at -j 1 and -j 2; the `pareto` experiment
#      must emit a parseable BENCH_pareto.json (non-dominated fronts,
#      per-axis memo traffic); and the frozen greedy table1 sentinel is
#      re-checked once more — the vector engine's scalar path must stay
#      bit-for-bit the pre-refactor engine.
#
# Exits non-zero on any failure.

set -eu
cd "$(dirname "$0")/.."
root=$(pwd)

# table1 sentinel of the pre-overhaul NCD kernel at -quick -j 2.  The
# Greedy level freezes that kernel, so this value must never drift from
# compression-side changes (re-baselining for those is only legitimate
# together with the greedy golden digests in test/test_lz_properties.ml).
# It DOES move when the flag universe grows — the GA samples vectors over
# the whole universe — so re-baselines must cite the universe change and
# the table1 "flag universe" lines record the size each run searched.
# Last re-baseline: 44 -> 47 flags/profile (SCCP, GVN, dominator-LICM).
greedy_baseline=9d5c9283dcd3e56505ef6e2b9906a10b

echo "== ci: build + tests =="
make check

echo "== ci: bench smoke (table1, quick budget, -j 2) =="
smoke_log=$(mktemp)
trap 'rm -f "$smoke_log"' EXIT
dune exec bench/main.exe -- -quick -j 2 table1 | tee "$smoke_log"

sentinel_j2=$(grep 'table1 determinism sentinel:' "$smoke_log" | awk '{print $NF}')
[ -n "$sentinel_j2" ] || { echo "ci: FAIL — no determinism sentinel in table1 output" >&2; exit 1; }

memo_hits=$(grep '^compile memo:' "$smoke_log" | awk '{print $3}')
[ "${memo_hits:-0}" -ge 1 ] || { echo "ci: FAIL — compile memo reported no cache hits" >&2; exit 1; }

# the tuner's pass-prefix snapshot store defaults on, so the sentinel
# above (and the frozen greedy sentinel below) are computed WITH
# incremental compilation — any drift would mean the store is not
# lossless.  The store must also have seen real traffic.
incr_hits=$(grep '^prefix cache:' "$smoke_log" | awk '{print $3}')
[ "${incr_hits:-0}" -ge 1 ] || { echo "ci: FAIL — prefix snapshot store reported no hits" >&2; exit 1; }

echo "== ci: determinism sentinel cross-check (-j 1 vs -j 2) =="
sentinel_j1=$(dune exec bench/main.exe -- -quick -j 1 table1 \
  | grep 'table1 determinism sentinel:' | awk '{print $NF}')
if [ "$sentinel_j1" != "$sentinel_j2" ]; then
  echo "ci: FAIL — table1 results depend on -j ($sentinel_j1 vs $sentinel_j2)" >&2
  exit 1
fi

echo "== ci: frozen-oracle sentinel (-lz-level greedy vs pre-overhaul baseline) =="
sentinel_greedy=$(dune exec bench/main.exe -- -quick -j 2 -lz-level greedy table1 \
  | grep 'table1 determinism sentinel:' | awk '{print $NF}')
if [ "$sentinel_greedy" != "$greedy_baseline" ]; then
  echo "ci: FAIL — greedy sentinel drifted from the pre-overhaul baseline ($sentinel_greedy vs $greedy_baseline)" >&2
  exit 1
fi

echo "== ci: telemetry trace smoke (fig5, one benchmark) =="
trace_file=$(mktemp)
profile_log=$(mktemp)
trap 'rm -f "$smoke_log" "$trace_file" "$profile_log"' EXIT
dune exec bench/main.exe -- -quick -j 2 -only coreutils \
  -trace "$trace_file" -profile fig5 > "$profile_log"

[ -s "$trace_file" ] || { echo "ci: FAIL — -trace produced no events" >&2; exit 1; }

# every line must be a standalone JSON object with a type and a name
if command -v jq >/dev/null 2>&1; then
  bad=$(jq 'select((has("type") and has("name")) | not) | 1' "$trace_file") \
    || { echo "ci: FAIL — trace is not parseable ndjson" >&2; exit 1; }
  [ -z "$bad" ] \
    || { echo "ci: FAIL — trace event missing type/name" >&2; exit 1; }
else
  python3 -c '
import json, sys
for line in open(sys.argv[1]):
    ev = json.loads(line)
    assert "type" in ev and "name" in ev
' "$trace_file" || { echo "ci: FAIL — trace is not parseable ndjson" >&2; exit 1; }
fi

for span in '"name":"compile"' '"name":"pass.' '"name":"search.ga.generation"' \
            '"name":"pool.chunk"' '"name":"tuner.ncd"' '"name":"tuner.binhunt"'; do
  grep -q "$span" "$trace_file" \
    || { echo "ci: FAIL — trace missing expected span $span" >&2; exit 1; }
done

grep -q 'cost split' "$profile_log" \
  || { echo "ci: FAIL — -profile printed no cost split" >&2; exit 1; }

# the fig5 NCD batch runs over a shared size cache; the repeated baseline
# terms must actually hit it
ncd_hits=$(grep 'ncd size cache:' "$profile_log" | awk '{print $4}' | sort -n | tail -1)
[ "${ncd_hits:-0}" -ge 1 ] \
  || { echo "ci: FAIL — fig5 ncd size cache reported no hits" >&2; exit 1; }

# the no-op path: without the flags the same run must print no telemetry
if dune exec bench/main.exe -- -quick -j 2 -only coreutils fig5 \
     | grep -Eq 'telemetry|"type":'; then
  echo "ci: FAIL — telemetry output leaked on the default (disabled) path" >&2
  exit 1
fi

echo "== ci: IR verifier + lint gate =="
dune exec bin/bintuner_cli.exe -- verify > /dev/null \
  || { echo "ci: FAIL — IR verification sweep found a broken pass" >&2; exit 1; }
dune exec bin/bintuner_cli.exe -- analyze --allowlist tools/lint_allowlist.txt > /dev/null \
  || { echo "ci: FAIL — lint reported findings beyond tools/lint_allowlist.txt" >&2; exit 1; }
# the verifier on the bench hot path: must check every pass without
# changing any result
dune exec bench/main.exe -- -quick -j 2 -only coreutils -verify fig5 > /dev/null \
  || { echo "ci: FAIL — fig5 -verify failed" >&2; exit 1; }

echo "== ci: optimizer pass-fire smoke gate =="
# each flag-gated optimizer pass (SCCP, GVN, dominator LICM) must fire —
# telemetry counter >= 1 — somewhere on the corpus at its O2-plus-flag
# vector, for both profiles: a pass that never fires is a dead knob in
# the search universe
dune exec bin/bintuner_cli.exe -- passfire \
  || { echo "ci: FAIL — an optimizer pass never fired on the corpus" >&2; exit 1; }

echo "== ci: binary insight gate (verified disassembly over the corpus) =="
# every corpus program on all four arches: the recursive descent, the
# linear sweep and the compiler's ground-truth instruction boundaries
# must agree exactly (the inspect command exits non-zero on any
# mismatch), and the emitted JSON must satisfy the report schema
inspect_json="$root/_build/inspect_ci.json"
dune exec bin/bintuner_cli.exe -- inspect --all --arch all --preset O2 \
    --json "$inspect_json" > /dev/null \
  || { echo "ci: FAIL — inspect found disassembly mismatches" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq -e '(length >= 1)
         and all(.[]; .disasm.mismatches == 0 and .disasm.insns > 0
                      and .size.text > 0 and .gadgets.k >= 1
                      and (.gadgets.unique >= .gadgets.by_class.ret)
                      and ((.features.provenance | length) == 24)
                      and ((.features.functions | length) == .disasm.functions))' \
    "$inspect_json" >/dev/null \
    || { echo "ci: FAIL — inspect JSON failed schema validation" >&2; exit 1; }
else
  python3 -c '
import json, sys
reports = json.load(open(sys.argv[1]))
assert len(reports) >= 1
for r in reports:
    assert r["disasm"]["mismatches"] == 0, r["bench"]
    assert r["disasm"]["insns"] > 0 and r["size"]["text"] > 0
    assert r["gadgets"]["k"] >= 1
    assert r["gadgets"]["unique"] >= r["gadgets"]["by_class"]["ret"]
    assert len(r["features"]["provenance"]) == 24
    assert len(r["features"]["functions"]) == r["disasm"]["functions"]
' "$inspect_json" \
    || { echo "ci: FAIL — inspect JSON failed schema validation" >&2; exit 1; }
fi
rm -f "$inspect_json"

echo "== ci: ncd microbench smoke =="
ncd_dir=$(mktemp -d)
trap 'rm -f "$smoke_log" "$trace_file" "$profile_log"; rm -rf "$ncd_dir"' EXIT
# run from a scratch cwd so the smoke numbers never overwrite the
# committed full-run BENCH_ncd.json
(cd "$ncd_dir" && "$root/_build/default/bench/main.exe" -quick -j 2 -only coreutils ncd) \
  > "$ncd_dir/ncd.log"
[ -s "$ncd_dir/BENCH_ncd.json" ] \
  || { echo "ci: FAIL — ncd microbench wrote no BENCH_ncd.json" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq -e '(.streams >= 1) and (.total_bytes > 0) and ((.levels | length) >= 2)
         and (.chained_default_vs_greedy_speedup > 1.0) and (.size_cache.hits > 0)
         and (.early_exit.candidates >= 1)
         and (.early_exit.bounded_cands_per_sec > 0)
         and (.early_exit.argmax_preserved == true)' \
    "$ncd_dir/BENCH_ncd.json" >/dev/null \
    || { echo "ci: FAIL — BENCH_ncd.json failed validation" >&2; exit 1; }
else
  python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["streams"] >= 1 and d["total_bytes"] > 0
assert len(d["levels"]) >= 2
assert d["chained_default_vs_greedy_speedup"] > 1.0, d
assert d["size_cache"]["hits"] > 0
assert d["early_exit"]["candidates"] >= 1
assert d["early_exit"]["bounded_cands_per_sec"] > 0
assert d["early_exit"]["argmax_preserved"] is True, d["early_exit"]
' "$ncd_dir/BENCH_ncd.json" \
    || { echo "ci: FAIL — BENCH_ncd.json failed validation" >&2; exit 1; }
fi

echo "== ci: strategy smoke gate (CLI tune, all strategies) =="
# Every strategy must run end-to-end through the shared search engine and
# the batched Pool + size-cache fitness path, and must respect the
# evaluation budget handed to it.  (GA bit-identity with the pre-refactor
# engine is pinned separately: step 4's frozen greedy sentinel exercises
# the GA through the framework.)
strategy_budget=40
for s in ga hill anneal random ensemble; do
  tune_line=$(dune exec bin/bintuner_cli.exe -- tune --bench 462.libquantum \
      --profile llvm --strategy "$s" --max-iterations "$strategy_budget" \
    | grep '^tuned ')
  echo "$tune_line"
  case "$tune_line" in
    *"[$s]"*) ;;
    *) echo "ci: FAIL — tune output does not carry strategy tag [$s]" >&2; exit 1 ;;
  esac
  iters=$(echo "$tune_line" | awk '{print $6}')
  case "$iters" in
    ''|*[!0-9]*) echo "ci: FAIL — could not parse iteration count for $s" >&2; exit 1 ;;
  esac
  [ "$iters" -ge 1 ] && [ "$iters" -le "$strategy_budget" ] \
    || { echo "ci: FAIL — strategy $s ran $iters iterations against budget $strategy_budget" >&2; exit 1; }
done

echo "== ci: search microbench smoke =="
search_dir=$(mktemp -d)
trap 'rm -f "$smoke_log" "$trace_file" "$profile_log"; rm -rf "$ncd_dir" "$search_dir"' EXIT
# scratch cwd again, so the quick-budget numbers never overwrite a
# committed full-run BENCH_search.json
(cd "$search_dir" && "$root/_build/default/bench/main.exe" -quick -j 2 \
  -only 462.libquantum search) > "$search_dir/search.log"
[ -s "$search_dir/BENCH_search.json" ] \
  || { echo "ci: FAIL — search microbench wrote no BENCH_search.json" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq -e '(.budget > 0) and ((.runs | length) >= 5)
         and ([.runs[].strategy] | unique | length >= 5)
         and ([.runs[] | select(.evaluations < 1 or .evaluations > $b)] | length == 0)
         and ([.runs[] | select(.evals_per_sec <= 0)] | length == 0)
         and ((.incremental | length) >= 1)
         and ([.incremental[] | select(.identical_outcome != true)] | length == 0)
         and ([.incremental[] | select(.evals_per_sec_speedup <= 1.0)] | length == 0)
         and ([.incremental[] | select(.on.incr_hits < 1)] | length == 0)' \
    --argjson b "$(jq .budget "$search_dir/BENCH_search.json")" \
    "$search_dir/BENCH_search.json" >/dev/null \
    || { echo "ci: FAIL — BENCH_search.json failed validation" >&2; exit 1; }
else
  python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["budget"] > 0
assert len(d["runs"]) >= 5
assert len({r["strategy"] for r in d["runs"]}) >= 5
for r in d["runs"]:
    assert 1 <= r["evaluations"] <= d["budget"], r
    assert r["evals_per_sec"] > 0, r
assert len(d["incremental"]) >= 1
for c in d["incremental"]:
    assert c["identical_outcome"] is True, c
    assert c["evals_per_sec_speedup"] > 1.0, c
    assert c["on"]["incr_hits"] >= 1, c
' "$search_dir/BENCH_search.json" \
    || { echo "ci: FAIL — BENCH_search.json failed validation" >&2; exit 1; }
fi

echo "== ci: serve smoke gate (daemon + persistent store) =="
tools/serve_smoke.sh

# the daemon writes only to its scratch store, so the one-shot bench
# path must still reproduce the pre-overhaul frozen oracle afterwards
sentinel_after_serve=$(dune exec bench/main.exe -- -quick -j 2 -lz-level greedy table1 \
  | grep 'table1 determinism sentinel:' | awk '{print $NF}')
if [ "$sentinel_after_serve" != "$greedy_baseline" ]; then
  echo "ci: FAIL — greedy sentinel drifted after the serve gate ($sentinel_after_serve vs $greedy_baseline)" >&2
  exit 1
fi

echo "== ci: multi-objective smoke gate (tune --objective ncd,gadgets) =="
mo_dir=$(mktemp -d)
trap 'rm -f "$smoke_log" "$trace_file" "$profile_log"; rm -rf "$ncd_dir" "$search_dir" "$mo_dir"' EXIT
for j in 1 2; do
  dune exec bin/bintuner_cli.exe -- tune --bench 429.mcf --profile llvm \
      --max-iterations 40 -j "$j" --objective ncd,gadgets \
    | grep -E '^(tuned|objectives:|pareto front:|  front )' > "$mo_dir/tune_j$j.txt"
done
cat "$mo_dir/tune_j2.txt"
cmp -s "$mo_dir/tune_j1.txt" "$mo_dir/tune_j2.txt" \
  || { echo "ci: FAIL — multi-objective tune differs between -j 1 and -j 2" >&2; exit 1; }
front_points=$(grep -c '^  front ' "$mo_dir/tune_j2.txt")
[ "$front_points" -ge 1 ] \
  || { echo "ci: FAIL — multi-objective tune reported an empty Pareto front" >&2; exit 1; }
# mutual non-domination of the 2-axis front: the CLI prints it sorted
# lexicographically descending, so each successive point must trade NCD
# (axis 1, non-increasing) for strictly more of axis 2
grep '^  front ' "$mo_dir/tune_j2.txt" \
  | awk '{gsub(/[][]/, ""); ncd=$3; g=$4
          if (NR > 1 && (ncd > pn + 1e-9 || g <= pg + 1e-9)) bad=1
          pn=ncd; pg=g}
         END {exit bad}' \
  || { echo "ci: FAIL — CLI Pareto front is not mutually non-dominated" >&2; exit 1; }

echo "== ci: pareto microbench smoke =="
# scratch cwd so the quick numbers never clobber the committed
# full-budget BENCH_pareto.json; the experiment itself exits non-zero
# if any front the archive returns is mutually dominated
(cd "$mo_dir" && "$root/_build/default/bench/main.exe" -quick -j 2 \
  -only 462.libquantum pareto) > "$mo_dir/pareto.log"
[ -s "$mo_dir/BENCH_pareto.json" ] \
  || { echo "ci: FAIL — pareto microbench wrote no BENCH_pareto.json" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq -e '(.objectives == ["ncd", "gadgets"]) and (.budget > 0)
         and ((.runs | length) >= 2)
         and (.all_fronts_non_dominated == true)
         and ([.runs[] | select(.front_size < 1)] | length == 0)
         and ([.runs[] | select((.front | length) != .front_size)] | length == 0)
         and ([.runs[] | select(.objective_memo_misses < 1)] | length == 0)' \
    "$mo_dir/BENCH_pareto.json" >/dev/null \
    || { echo "ci: FAIL — BENCH_pareto.json failed validation" >&2; exit 1; }
else
  python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["objectives"] == ["ncd", "gadgets"]
assert d["budget"] > 0 and len(d["runs"]) >= 2
assert d["all_fronts_non_dominated"] is True
for r in d["runs"]:
    assert r["front_size"] >= 1 and len(r["front"]) == r["front_size"], r
    assert r["objective_memo_misses"] >= 1, r
' "$mo_dir/BENCH_pareto.json" \
    || { echo "ci: FAIL — BENCH_pareto.json failed validation" >&2; exit 1; }
fi

# the vector engine's 1-objective path claims bit-identity with the
# pre-refactor scalar engine: the frozen greedy oracle must still hold
sentinel_after_pareto=$(dune exec bench/main.exe -- -quick -j 2 -lz-level greedy table1 \
  | grep 'table1 determinism sentinel:' | awk '{print $NF}')
if [ "$sentinel_after_pareto" != "$greedy_baseline" ]; then
  echo "ci: FAIL — greedy sentinel drifted after the multi-objective gate ($sentinel_after_pareto vs $greedy_baseline)" >&2
  exit 1
fi

echo "ci: OK (sentinel $sentinel_j1, greedy oracle stable, $memo_hits memo hits, ncd cache hits $ncd_hits, all strategies within budget, pareto front $front_points points, $(wc -l < "$trace_file") trace events)"
