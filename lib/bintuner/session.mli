(** A long-lived tuning session — the shared caches and worker pool that
    serving mode multiplexes jobs onto.

    One-shot {!Tuner.tune} builds its pool, {!Memo}, {!Compress.Sizecache}
    and {!Incremental} store per call; passing a session instead makes
    every job read and write the same instances, so jobs over the same
    corpus hit each other's compiled binaries, compressed sizes and
    pass-prefix snapshots.  Optionally backed by a persistent {!Store},
    which also survives daemon restarts.

    Sharing is lossless: every constituent cache is keyed on full content
    identity and holds pure-function-of-key values, so a cross-job hit is
    bit-identical to a recompute.  Only the counters (and wall-clock)
    reveal the session was warm — {!Tuner.result} reports per-job counter
    {e deltas} so a job's numbers mean the same thing with or without a
    session. *)

type t

val create :
  ?jobs:int ->
  ?pool:Parallel.Pool.t ->
  ?memo_max_bytes:int ->
  ?store:Store.t ->
  unit ->
  t
(** [create ()] — a fresh session.  [jobs] (default 1) sizes the pool the
    session creates and owns; passing an explicit [pool] instead hands
    the session a caller-owned pool that {!close} will {e not} shut down.
    [memo_max_bytes] bounds the shared compile memo
    (default {!Memo.default_max_bytes}).  [store] attaches a persistent
    artifact store: compiled binaries and compressed sizes are then
    written through to disk and consulted on memo / size-cache misses. *)

val pool : t -> Parallel.Pool.t
val memo : t -> Memo.t
val incremental : t -> Incremental.t
val store : t -> Store.t option

val sizecache : t -> Compress.Lz.level -> Compress.Sizecache.t
(** The session's size cache for one compression level, created on first
    use — levels measure different sizes, so each gets its own table and
    its own key namespace in the backing store. *)

val sizecache_counts : t -> int * int
(** Aggregate (hits, misses) over every level's size cache — the
    daemon's [status] hit-rate report. *)

val close : t -> unit
(** Shut down the session's pool if the session created it (a no-op for
    a caller-supplied pool).  The caches need no teardown. *)
