(* The prefix-keyed snapshot store behind incremental compilation: a
   byte-bounded LRU over the marshaled pipeline stages that
   [Toolchain.Pipeline] snapshots after every step.

   Same structure and locking discipline as [Compress.Sizecache]: entries
   live on a doubly-linked ring through a sentinel ([sentinel.next] most
   recently used, [sentinel.prev] the eviction victim), and all
   table/ring/counter state is guarded by one mutex.  Values are
   immutable marshaled strings, so handing one to a racing worker is
   safe, and a racing double-store of the same key keeps the first entry
   (snapshots are deterministic per key, so both writers hold identical
   bytes).

   The budget is bytes, not entries: one IR snapshot dwarfs a compressed-
   size integer, and what the tuner must bound is resident memory. *)

type node = {
  key : string;
  value : string;
  mutable ring_prev : node;
  mutable ring_next : node;
}

type t = {
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  sentinel : node;
  lock : Mutex.t;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_max_bytes = 64 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) () =
  let rec sentinel =
    { key = ""; value = ""; ring_prev = sentinel; ring_next = sentinel }
  in
  {
    max_bytes = max 1 max_bytes;
    table = Hashtbl.create 256;
    sentinel;
    lock = Mutex.create ();
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink n =
  n.ring_prev.ring_next <- n.ring_next;
  n.ring_next.ring_prev <- n.ring_prev

let push_front t n =
  n.ring_next <- t.sentinel.ring_next;
  n.ring_prev <- t.sentinel;
  t.sentinel.ring_next.ring_prev <- n;
  t.sentinel.ring_next <- n

(* ring + table bookkeeping charge per entry, beyond the payload *)
let entry_overhead = 64

let find t key =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink n;
    push_front t n;
    let v = n.value in
    Mutex.unlock t.lock;
    Telemetry.add_count "incr.hit";
    Some v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Telemetry.add_count "incr.miss";
    None

let store t key value =
  let cost = String.length value + String.length key + entry_overhead in
  (* an entry the whole budget cannot hold would only evict everything
     else on its way to being evicted itself *)
  if cost <= t.max_bytes then begin
    Mutex.lock t.lock;
    if not (Hashtbl.mem t.table key) then begin
      let n =
        { key; value; ring_prev = t.sentinel; ring_next = t.sentinel }
      in
      push_front t n;
      Hashtbl.replace t.table key n;
      t.bytes <- t.bytes + cost;
      while t.bytes > t.max_bytes do
        let victim = t.sentinel.ring_prev in
        unlink victim;
        Hashtbl.remove t.table victim.key;
        t.bytes <-
          t.bytes
          - (String.length victim.value + String.length victim.key
           + entry_overhead);
        t.evictions <- t.evictions + 1
      done
    end;
    Mutex.unlock t.lock
  end

let snapshot_store t =
  { Toolchain.Pipeline.find = find t; store = store t }

let locked t read =
  Mutex.lock t.lock;
  let v = read t in
  Mutex.unlock t.lock;
  v

let hits t = locked t (fun t -> t.hits)
let misses t = locked t (fun t -> t.misses)
let lookups t = locked t (fun t -> t.hits + t.misses)
let evictions t = locked t (fun t -> t.evictions)
let length t = locked t (fun t -> Hashtbl.length t.table)
let bytes t = locked t (fun t -> t.bytes)
let max_bytes t = t.max_bytes
