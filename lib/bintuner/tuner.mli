(** BinTuner — the paper's primary contribution (§4).

    The tuner searches a compiler profile's optimization-flag space with
    the genetic algorithm, maximizing the Normalized Compression Distance
    between each candidate binary's code section and the -O0 baseline
    ("we take O0's binary code as the baseline to calculate NCD during
    BinTuner's iterative compilation", §5.1).  Candidate vectors are
    validated / repaired against the profile's flag constraints, every
    compiled binary is recorded in an in-memory iteration database, and
    the final outcome is checked for functional correctness on the
    benchmark's test workloads in the VX virtual machine. *)

type entry = {
  vector : bool array;
  fitness : float array;
      (** objective vector in [objectives] order — a singleton [|ncd|]
          on the default 1-objective spec *)
}

type result = {
  benchmark : string;
  profile_name : string;
  strategy : string;  (** registry name of the search strategy that ran *)
  arch : Isa.Insn.arch;
  objectives : string list;
      (** axis names fixing the order of every fitness vector here;
          [["ncd"]] on the default spec *)
  best_vector : bool array;
      (** the highest-fitness vector — the paper's selection rule
          ("the iterations showing the highest fitness function score") *)
  best_binary : Isa.Binary.t;
  best_ncd : float;
      (** best {e scalarized} fitness reached during the search —
          exactly the best NCD on the default 1-objective spec *)
  best_scores : float array;  (** the best genome's raw objective vector *)
  front : (bool array * float array) list;
      (** the Pareto front of (flag vector, objective vector) pairs,
          fitness descending lexicographically; a singleton on
          1-objective runs *)
  refined_vector : bool array;
      (** the BinHunt-verified pick among the top-fitness candidates,
          strata samples and the preset seeds (see DESIGN.md §5) — the
          output used for the Figure 5 family of experiments *)
  refined_binary : Isa.Binary.t;
  preset_ncd : (string * float) list;
      (** NCD vs O0 of every -Ox preset, for reference *)
  iterations : int;  (** distinct fitness evaluations, as in Table 1 *)
  history : (int * float) list;  (** best-so-far NCD per iteration *)
  wall_seconds : float;  (** wall-clock (not CPU) duration of the run *)
  functional_ok : bool;  (** tuned binary passes all test workloads *)
  cache_hits : int;
      (** compile requests served by the {!Memo} layer instead of
          recompiling (final selection re-scoring, duplicate vectors) *)
  compilations : int;
      (** compile requests that actually ran the flag-driven pipeline;
          [cache_hits + compilations] is the total number of compile
          requests the run made, a quantity independent of memoization *)
  ncd_cache_hits : int;
      (** compressed-size lookups served by the run's {!Compress.Sizecache}
          (the baseline's terms and revisited candidate streams).  Under
          racing misses the hit/miss split can depend on scheduling —
          these two counters are observational and deliberately excluded
          from the determinism sentinel and the j-differential. *)
  ncd_cache_misses : int;  (** size lookups that actually compressed *)
  incr_hits : int;
      (** pass-prefix snapshot lookups served by the run's
          {!Incremental} store (0 with [~incremental:false]).  Like the
          size-cache counters, the hit/miss split under racing workers
          is observational only — results never depend on it. *)
  incr_misses : int;  (** prefix lookups that found no snapshot *)
  store_hits : int;
      (** persistent-{!Store} lookups served from disk during this call
          (always 0 without a store-backed session).  Nonzero on a warm
          daemon's second job — the serve smoke gate checks exactly
          this. *)
  store_misses : int;  (** store lookups that found nothing servable *)
  objective_hits : int;
      (** multi-objective per-axis memo hits summed over the run's
          {!Search.Objective} evaluator (0 on the scalar-NCD path, which
          caches in the size cache instead) *)
  objective_misses : int;  (** per-axis memo misses — fresh evaluations *)
  database : entry list;  (** every (vector, fitness vector) evaluated *)
}

val ncd_of_binaries : Isa.Binary.t -> Isa.Binary.t -> float
(** NCD between two binaries' raw code sections (the paper's formula,
    verbatim). *)

val code_stream : Isa.Binary.t -> string
(** The canonical projection the fitness compresses: one byte per
    instruction of the code section (its opcode class).  The paper
    applies LZMA to the code section's raw bytes; the VX encoding carries
    far less incidental byte-level redundancy than x86 machine code, so
    compressing the raw bytes saturates NCD near 1.0 for every optimized
    build.  The opcode-class projection restores LZMA-grade structural
    signal while keeping the NCD-over-code-section mechanism intact
    (substitution documented in DESIGN.md). *)

val fitness_of_binaries : Isa.Binary.t -> Isa.Binary.t -> float
(** NCD over {!code_stream} projections — BinTuner's fitness. *)

val tune :
  ?arch:Isa.Insn.arch ->
  ?params:Search.Genetic.params ->
  ?termination:Search.termination ->
  ?seed:int ->
  ?strategy:Search.strategy ->
  ?pool:Parallel.Pool.t ->
  ?session:Session.t ->
  ?memoize:bool ->
  ?incremental:bool ->
  ?ncd_bound:bool ->
  ?lz_level:Compress.Lz.level ->
  ?objectives:Search.Objective.spec ->
  profile:Toolchain.Flags.profile ->
  Corpus.benchmark ->
  result
(** Run the full auto-tuning loop on one benchmark.  Deterministic for a
    fixed [seed] (default 1): the result is bit-identical whatever [pool]
    is passed (each generation is fitness-scored as one ordered
    [Pool.map] batch; all random draws stay in the sequential part of the
    loop) and whether or not [memoize] is on (compilation is pure, the
    memo only skips repeats — its traffic is reported in [cache_hits] /
    [compilations]).  Both properties are enforced by the differential
    test suite.  Default: no parallelism, memoization on.

    [strategy] selects the search backend (default: the GA with
    [params]; [params] is ignored when an explicit strategy is given —
    build it with {!Search.Genetic.strategy} to parameterize the GA).
    When [pool] is omitted the tuner creates a size-1 pool and shuts it
    down on every exit, normal or exceptional.

    [incremental] (default on) shares one {!Incremental} pass-prefix
    snapshot store across every compile of the run, so candidates
    resume compilation from the longest pipeline prefix an earlier
    candidate already produced.  Lossless: results are bit-identical
    with it on or off (the differential oracle pins this); only
    [incr_hits]/[incr_misses] and wall-clock change.

    [session] plugs the call into a long-lived {!Session}: the session's
    pool, compile memo, per-level size cache, incremental store and
    (when attached) persistent artifact store replace the per-call
    instances, so successive jobs over the same corpus hit each other's
    entries.  Lossless like every cache here — a warm-session result is
    bit-identical to a cold one-shot result (the serve differential test
    pins this); cache counters in the result are per-call {e deltas}, so
    they mean the same thing either way.  An explicit [pool] still takes
    precedence over the session's; [memoize:false] opts the call out of
    the shared memo.

    [lz_level] fixes the compression level of the fitness's size cache
    (default {!Compress.Lz.default_level}) — serving mode routes the
    per-job [lz-level] parameter here rather than mutating the
    process-wide default.

    [ncd_bound] (default OFF) arms the NCD early-exit: each batch is
    scored against the search's pre-batch best, and candidates that
    provably cannot beat it return a clamped score without finishing
    their pair compression.  Argmax/best per batch — and therefore
    [best_vector]/[best_ncd] trajectories driven only by strict
    improvement — are preserved exactly, but sub-incumbent score values
    are not, which perturbs strategies that consume loser scores (GA
    tournaments, annealing acceptance) and the recorded [database].
    Leave off where bit-reproducibility of full runs matters.  Ignored
    on multi-objective runs — a pruned NCD is only an upper bound,
    which would poison the Pareto archive.

    [objectives] selects the fitness axes and their scalarization
    weights ({!Search.Objective.parse} grammar: ["ncd,gadgets:0.5"]).
    The default — NCD alone at unit weight — runs the historical
    scalar path bit-identically.  Any other spec compiles each
    candidate, evaluates every axis on the binary through per-axis
    memos (one shared binsight inspection for [gadgets]/[size]; the
    provenance adversary is trained on this profile's presets for
    [evasion]), hands the engine the weighted-sum scalarization, and
    returns the non-dominated [front] alongside the scalar best. *)

val flags_enabled : Toolchain.Flags.profile -> bool array -> string list
(** Names of the flags a vector enables. *)
