(** The pass-prefix snapshot store behind incremental compilation.

    [Toolchain.Pipeline] snapshots the compilation stage after every
    pipeline step under a key chaining (program digest, profile, arch)
    with each applied step's parameterized identity; this module is the
    cache those snapshots live in — a mutex-guarded, byte-bounded LRU
    (the {!Compress.Sizecache} discipline, sized in bytes because the
    values are whole marshaled IR stages).  One store is shared by every
    worker domain of a tuning run through {!snapshot_store}, so a flag
    vector evaluated on one worker seeds prefix resumes for its
    single-bit neighbours on every other worker.

    Caching is lossless: a compile through the store — warm, cold, or
    mid-eviction — emits bytes identical to a from-scratch compile.  The
    differential oracle in the test suite ([frozen_incremental]) and the
    cache-invariant tests pin this down; hit/miss traffic is also
    reported through the [incr.hit] / [incr.miss] telemetry counters. *)

type t

val create : ?max_bytes:int -> unit -> t
(** A fresh store bounded to [max_bytes] of resident snapshot payload
    (default 64 MiB).  Least-recently-used entries are evicted once the
    budget is exceeded; an entry bigger than the whole budget is never
    admitted. *)

val snapshot_store : t -> Toolchain.Pipeline.snapshot_store
(** The closure record to inject into [Pipeline.compile_flags] /
    [compile] / [apply_passes].  Safe to share across domains. *)

val find : t -> string -> string option
(** Look a prefix key up, refreshing its recency.  Counts one hit or one
    miss. *)

val store : t -> string -> string -> unit
(** Insert a snapshot (keep-first on a racing duplicate), evicting from
    the LRU tail until the byte budget holds. *)

val hits : t -> int

val misses : t -> int

val lookups : t -> int
(** [lookups t = hits t + misses t] — the conservation invariant the
    cache tests assert. *)

val evictions : t -> int

val length : t -> int
(** Resident entries. *)

val bytes : t -> int
(** Resident payload bytes (including a fixed per-entry overhead
    charge); never exceeds {!max_bytes}. *)

val max_bytes : t -> int
