(** The tuning database of the paper's Figure 4: "these data are stored
    in a database for future exploration".

    Stores, per (benchmark, profile, architecture) tuning run: every
    evaluated flag vector with its fitness, plus the chosen best vector.
    The format is a line-oriented text file so runs can be resumed,
    compared across sessions, and mined for flag statistics without any
    external dependency. *)

type run = {
  benchmark : string;
  profile : string;
  arch : string;
  flag_names : string list;
  objectives : string list;
      (** axis names fixing the meaning/order of every fitness vector;
          [["ncd"]] for scalar runs and legacy files *)
  entries : (bool array * float array) list;
      (** (flag vector, objective vector) — arity = [objectives] *)
  best : bool array;
}

val of_result : Tuner.result -> Toolchain.Flags.profile -> run

val vector_to_string : bool array -> string
(** Canonical ['0'/'1'] rendering of a flag vector — the database file
    format, also used for cache keys and determinism digests. *)

val vector_of_string : string -> bool array
(** Inverse of {!vector_to_string}.  Raises [Failure] on other
    characters. *)

val save : string -> run list -> unit
(** Write runs to a file (overwrites).  Crash-safe: the contents go to a
    sibling [path ^ ".tmp"] file first and are renamed into place only
    once complete, so a writer dying mid-save leaves any existing
    database intact.  Fitness vectors are serialized losslessly (one
    [%h] hex float per axis, in [objectives] order), so a save → load
    round-trip reproduces every double bit-exactly. *)

val load : ?objectives:string list -> string -> run list
(** Parse a database file.  Raises [Failure] on malformed input.
    Accepts both the lossless hex floats current files carry and the
    fixed-point decimals of files written before the format change;
    files from before the multi-objective format (no [obj] line, one
    fitness per entry) load with [objectives = ["ncd"]].  Every entry's
    fitness arity must agree with the run's declared objectives, and —
    when [?objectives] is given — the declared objectives must equal the
    requested ones: a run tuned for different axes is rejected with a
    clear error rather than silently mixing vectors whose components
    mean different things. *)

val test_write_failure : int option ref
(** Test-only crash injection (the {!Toolchain.Pipeline.test_break}
    idiom): [Some n] makes {!save} raise after emitting [n] lines.  The
    atomic-save regression test uses it; leave [None] everywhere else. *)

val lookup : run -> bool array -> float array option
(** [lookup r] builds a constant-time fitness index over [r]'s entries
    (first occurrence wins) and returns a lookup function: the recorded
    objective vector if this exact flag vector was already evaluated in
    the run.  The fitness-level memo layer for resumed or mined tuning
    databases — repair-induced duplicate vectors hit it instead of
    recompiling. *)

val flag_frequency : run -> (string * float) list
(** For each flag, the fraction of the run's top-decile (by fitness,
    lexicographic on the vector — the first axis dominates, so scalar
    runs rank exactly as before) vectors that enable it — the "which
    options matter" mining the paper uses the database for, sorted
    descending. *)
