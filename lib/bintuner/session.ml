(* A long-lived tuning session: the shared substrate serving mode
   multiplexes jobs onto.  One-shot [Tuner.tune] creates its pool, memo,
   size cache and incremental store per call and drops them on exit; a
   session owns one of each and hands them to every job, so the second
   job over a corpus starts with the first job's compiles, compressed
   sizes and pass-prefix snapshots already warm.

   Sharing is safe because every constituent cache is keyed on full
   content identity — the memo and artifact store on
   (program digest, profile, arch, flag vector), the size caches on
   stream MD5 (segregated per compression level, since sizes at
   different levels are different numbers), the incremental store on the
   pipeline's program-digest cache seed — and every cached value is a
   pure function of its key.  A cross-job hit is therefore bit-identical
   to a recompute, which is what lets the serve differential test pin
   warm-session results to cold one-shot ones. *)

type t = {
  pool : Parallel.Pool.t;
  owned_pool : bool;
  memo : Memo.t;
  incremental : Incremental.t;
  store : Store.t option;
  (* one size cache per compression level, created on first use; keyed
     by [Lz.level_name] *)
  sizecaches : (string, Compress.Sizecache.t) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(jobs = 1) ?pool ?memo_max_bytes ?store () =
  let owned_pool, pool =
    match pool with
    | Some p -> (false, p)
    | None -> (true, Parallel.Pool.create (max 1 jobs))
  in
  {
    pool;
    owned_pool;
    memo = Memo.create ?max_bytes:memo_max_bytes ();
    incremental = Incremental.create ();
    store;
    sizecaches = Hashtbl.create 4;
    lock = Mutex.create ();
  }

let pool t = t.pool
let memo t = t.memo
let incremental t = t.incremental
let store t = t.store

(* Level-segregated size caches: sizes measured at different match-finder
   levels are different numbers, so each level gets its own table and its
   own backing-key namespace ("sz|<level>|<cache key>") in the store. *)
let sizecache t level =
  let name = Compress.Lz.level_name level in
  Mutex.lock t.lock;
  let cache =
    match Hashtbl.find_opt t.sizecaches name with
    | Some c -> c
    | None ->
      let backing =
        Option.map
          (fun st ->
            let tag k = "sz|" ^ name ^ "|" ^ k in
            {
              Compress.Sizecache.load = (fun k -> Store.find_size st (tag k));
              save = (fun k v -> Store.store_size st (tag k) v);
            })
          t.store
      in
      let c = Compress.Sizecache.create ~level ?backing () in
      Hashtbl.replace t.sizecaches name c;
      c
  in
  Mutex.unlock t.lock;
  cache

let sizecache_counts t =
  Mutex.lock t.lock;
  let caches = Hashtbl.fold (fun _ c acc -> c :: acc) t.sizecaches [] in
  Mutex.unlock t.lock;
  List.fold_left
    (fun (h, m) c ->
      (h + Compress.Sizecache.hits c, m + Compress.Sizecache.misses c))
    (0, 0) caches

let close t = if t.owned_pool then Parallel.Pool.shutdown t.pool
