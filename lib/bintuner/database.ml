type run = {
  benchmark : string;
  profile : string;
  arch : string;
  flag_names : string list;
  objectives : string list;
  entries : (bool array * float array) list;
  best : bool array;
}

let of_result (r : Tuner.result) (p : Toolchain.Flags.profile) =
  {
    benchmark = r.benchmark;
    profile = r.profile_name;
    arch = Isa.Insn.arch_name r.arch;
    flag_names =
      Array.to_list (Array.map (fun f -> f.Toolchain.Flags.name) p.flags);
    objectives = r.objectives;
    entries = List.map (fun e -> (e.Tuner.vector, e.Tuner.fitness)) r.database;
    best = r.best_vector;
  }

let vector_to_string v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let vector_of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> failwith (Printf.sprintf "Database: bad vector bit %C" c))

(* The on-disk format is space- and comma-delimited, so names containing
   those separators (or newlines) are percent-escaped on save and decoded
   on load — a benchmark called "my bench" must round-trip, not corrupt
   the parse of every later field. *)
let escape_name s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | ' ' | ',' | '\n' | '\r' ->
        Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_name s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> failwith (Printf.sprintf "Database: bad escape digit %C" c)
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n ->
      Buffer.add_char b (Char.chr ((16 * hex s.[!i + 1]) + hex s.[!i + 2]));
      i := !i + 2
    | '%' -> failwith "Database: truncated escape sequence"
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

(* Fitness values round-trip bit-exactly: %h is OCaml's lossless hex
   float notation, and [float_of_string] parses it alongside the %.6f
   decimals older database files carry (those stay what they were — six
   digits was already all the old writer kept).  A vector fitness is one
   [%h] per axis, space-separated, in [objectives] order. *)
let fitness_to_string f = Printf.sprintf "%h" f

(* Legacy scalar files predate the [obj] line and carry exactly one
   fitness per entry: they load as this single-axis spec. *)
let legacy_objectives = [ "ncd" ]

let test_write_failure : int option ref = ref None
(* Test-only crash injection: [Some n] makes [save] raise after emitting
   [n] lines, simulating a writer dying mid-stream.  The atomic-save
   regression test uses it to prove a crashed save never harms the
   existing database file. *)

let emit write runs =
  List.iter
    (fun r ->
      write
        (Printf.sprintf "run %s %s %s\n" (escape_name r.benchmark)
           (escape_name r.profile) (escape_name r.arch));
      write
        (Printf.sprintf "flags %s\n"
           (String.concat "," (List.map escape_name r.flag_names)));
      write
        (Printf.sprintf "obj %s\n"
           (String.concat "," (List.map escape_name r.objectives)));
      write (Printf.sprintf "best %s\n" (vector_to_string r.best));
      List.iter
        (fun (v, f) ->
          write
            (Printf.sprintf "e %s %s\n" (vector_to_string v)
               (String.concat " "
                  (List.map fitness_to_string (Array.to_list f)))))
        r.entries;
      write "end\n")
    runs

(* Crash-safe: the new contents are written to a sibling temp file and
   renamed into place only once complete, so a writer dying mid-save (or
   a full disk) leaves any existing database byte-identical instead of
   truncated.  rename(2) within one directory is atomic on POSIX. *)
let save path runs =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  let committed = ref false in
  let emitted = ref 0 in
  let write s =
    (match !test_write_failure with
    | Some n when !emitted >= n -> failwith "Database: injected write failure"
    | _ -> ());
    incr emitted;
    output_string oc s
  in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      emit write runs;
      close_out oc;
      Sys.rename tmp path;
      committed := true)

let load ?objectives:expected path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let runs = ref [] in
      let current = ref None in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ "run"; benchmark; profile; arch ] ->
             current :=
               Some
                 {
                   benchmark = unescape_name benchmark;
                   profile = unescape_name profile;
                   arch = unescape_name arch;
                   flag_names = [];
                   objectives = [];
                   entries = [];
                   best = [||];
                 }
           | [ "flags"; names ] -> (
             match !current with
             | Some r ->
               current :=
                 Some
                   {
                     r with
                     flag_names =
                       (* "flags " with nothing after it is the empty
                          universe, not one empty-named flag *)
                       (if names = "" then []
                        else
                          List.map unescape_name
                            (String.split_on_char ',' names));
                   }
             | None -> failwith "Database: flags before run")
           | [ "obj"; names ] -> (
             match !current with
             | Some r ->
               if names = "" then failwith "Database: empty objective list";
               current :=
                 Some
                   {
                     r with
                     objectives =
                       List.map unescape_name (String.split_on_char ',' names);
                   }
             | None -> failwith "Database: obj before run")
           | [ "best"; v ] -> (
             match !current with
             | Some r -> current := Some { r with best = vector_of_string v }
             | None -> failwith "Database: best before run")
           | "e" :: v :: (_ :: _ as fs) -> (
             match !current with
             | Some r ->
               current :=
                 Some
                   {
                     r with
                     entries =
                       ( vector_of_string v,
                         Array.of_list (List.map float_of_string fs) )
                       :: r.entries;
                   }
             | None -> failwith "Database: entry before run")
           | [ "end" ] -> (
             match !current with
             | Some r ->
               (* a vector whose length disagrees with the flag universe
                  would silently mis-index flags downstream: reject here *)
               let nflags = List.length r.flag_names in
               let check_len what v =
                 if Array.length v <> nflags then
                   failwith
                     (Printf.sprintf
                        "Database: %s vector length %d <> %d flags in run %s/%s"
                        what (Array.length v) nflags r.benchmark r.profile)
               in
               check_len "best" r.best;
               List.iter (fun (v, _) -> check_len "entry" v) r.entries;
               (* a pre-vector file has no [obj] line: it is a scalar-NCD
                  run and must carry exactly one fitness per entry *)
               let r =
                 if r.objectives <> [] then r
                 else begin
                   List.iter
                     (fun (_, f) ->
                       if Array.length f <> 1 then
                         failwith
                           (Printf.sprintf
                              "Database: run %s/%s has no obj line but a \
                               %d-axis fitness entry — file is corrupt"
                              r.benchmark r.profile (Array.length f)))
                     r.entries;
                   { r with objectives = legacy_objectives }
                 end
               in
               (* every fitness vector must agree with the declared axes:
                  a silent arity mismatch would mis-scalarize on resume *)
               let arity = List.length r.objectives in
               List.iter
                 (fun (_, f) ->
                   if Array.length f <> arity then
                     failwith
                       (Printf.sprintf
                          "Database: entry fitness arity %d <> %d objectives \
                           (%s) in run %s/%s"
                          (Array.length f) arity
                          (String.concat "," r.objectives)
                          r.benchmark r.profile))
                 r.entries;
               (* the caller tuning against a specific objective spec must
                  not silently mix vectors that mean different things *)
               (match expected with
               | Some want when want <> r.objectives ->
                 failwith
                   (Printf.sprintf
                      "Database: run %s/%s was tuned for objectives [%s] but \
                       [%s] requested — refusing to mix fitness vectors of \
                       different meaning (re-tune or point at a different \
                       database file)"
                      r.benchmark r.profile
                      (String.concat "," r.objectives)
                      (String.concat "," want))
               | _ -> ());
               runs := { r with entries = List.rev r.entries } :: !runs;
               current := None
             | None -> failwith "Database: end before run")
           | [ "" ] -> ()
           | _ -> failwith ("Database: bad line " ^ line)
         done
       with End_of_file -> ());
      List.rev !runs)

let lookup r =
  let tbl = Hashtbl.create (List.length r.entries) in
  (* first occurrence wins, matching the order entries were recorded *)
  List.iter
    (fun (v, f) ->
      let k = vector_to_string v in
      if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k f)
    r.entries;
  fun vector -> Hashtbl.find_opt tbl (vector_to_string vector)

let flag_frequency r =
  let ranked = List.sort (fun (_, a) (_, b) -> compare b a) r.entries in
  let n = List.length ranked in
  let top = max 1 (n / 10) in
  let picked = List.filteri (fun i _ -> i < top) ranked in
  let counts = Array.make (List.length r.flag_names) 0 in
  List.iter
    (fun (v, _) ->
      Array.iteri (fun i on -> if on then counts.(i) <- counts.(i) + 1) v)
    picked;
  List.mapi
    (fun i name -> (name, float_of_int counts.(i) /. float_of_int top))
    r.flag_names
  |> List.sort (fun (_, a) (_, b) -> compare b a)
