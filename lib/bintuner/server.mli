(** The serve daemon — tuning as a service.

    A long-running process that accepts tuning jobs over a simple line
    protocol (one request per line in, one single-line JSON object per
    response out) and multiplexes them onto one shared {!Session}, so
    successive jobs over the same corpus hit each other's compiled
    binaries, compressed sizes and pass-prefix snapshots — and, with a
    persistent {!Store} attached, so do jobs after a daemon restart.

    Requests: [submit k=v ...] (enqueue), [run] (drain the queue),
    [tune k=v ...] (submit + run), [status], [quit].  Job parameters:
    [bench], [profile], [arch], [strategy], [budget] (max evaluations),
    [lz-level], [seed], [objective] ({!Search.Objective.parse} grammar,
    e.g. [objective=ncd,gadgets:0.5]) — all optional.  Blank lines and
    [#] comments are ignored; malformed requests get an
    [{"ok":false,...}] response and never kill the daemon.

    Jobs run sequentially on the daemon thread (parallelism lives inside
    each job, on the session's pool); every job runs under a
    [serve.job] telemetry span whose ambient [job] attribute tags the
    spans it records.  {!handle_line} is the entire protocol, so tests
    drive a daemon in-process; {!serve_channel} (stdin/stdout, the CI
    smoke mode) and {!serve_unix} (Unix socket) are thin transports over
    it. *)

type t

type job_summary = {
  job_id : int;
  benchmark : string;
  profile : string;
  arch : string;
  strategy : string;
  objectives : string list;  (** axis names, fitness-vector order *)
  iterations : int;
  best_ncd : float;
  best_vector : bool array;
  best_scores : float array;  (** the best genome's objective vector *)
  front : (bool array * float array) list;  (** the job's Pareto front *)
  functional_ok : bool;
  wall_seconds : float;
  cache_hits : int;
  compilations : int;
  ncd_cache_hits : int;
  ncd_cache_misses : int;
  incr_hits : int;
  incr_misses : int;
  store_hits : int;
  store_misses : int;
  objective_hits : int;
  objective_misses : int;
}
(** One completed job: the {!Tuner.result} essentials plus the per-job
    cache-counter deltas (see {!Tuner.result} for their meaning). *)

val create :
  ?jobs:int ->
  ?store_dir:string ->
  ?store_max_bytes:int ->
  ?memo_max_bytes:int ->
  unit ->
  t
(** A fresh daemon.  [jobs] sizes the session's worker pool (default 1).
    [store_dir] attaches a persistent artifact store rooted there
    (created if missing, crash leftovers swept); without it the daemon
    still shares in-memory caches across jobs but persists nothing. *)

val session : t -> Session.t

val completed : t -> job_summary list
(** Completed jobs, oldest first. *)

val queue_depth : t -> int

val handle_line : t -> string -> string list * bool
(** Process one request line; returns the response lines (each a
    complete JSON object) and [false] iff the request was [quit].  Never
    raises on bad input. *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve requests from a channel pair until [quit] or EOF, flushing
    after every request — [serve_channel t stdin stdout] is the CI smoke
    transport. *)

val serve_unix : t -> string -> unit
(** Bind a Unix domain socket at a path (replacing any stale socket
    file), then serve connections one at a time until some client sends
    [quit].  A dropped connection returns the daemon to accept; the
    socket file is removed on the way out. *)

val close : t -> unit
(** Shut down the daemon's session (its pool).  Does not interrupt
    {!serve_unix}; call after the serve loop returns. *)
