(* The persistent, content-addressed artifact store behind serving mode.

   Layout: every entry is one file under [dir], sharded across 256
   prefix directories by the first two hex characters of the MD5 of its
   key —

       dir/
         3f/3fa4c1…e2        one entry (header line + payload)
         a0/a0ff07…9b
         quarantine/         torn entries moved aside, kept for autopsy

   An entry file is a single header line

       bintuner-store 1 <payload-byte-length> <md5-hex-of-payload>\n

   followed by the raw payload bytes.  Every write goes to a same-shard
   temp file first and is renamed into place (rename(2) within one
   directory is atomic on POSIX), so a crash mid-write can never leave a
   half-visible entry under a live name — at worst a stale ".tmp" file,
   which [create] sweeps away.  Reads validate the header's length and
   digest against the payload; a torn or corrupt entry is moved to
   quarantine/ and reported as a miss, never an error — the daemon
   recomputes and the broken bytes stay on disk for inspection.

   Recency and the byte budget live in an in-memory index (the same
   ring-LRU discipline as [Memo]/[Incremental]/[Compress.Sizecache]),
   rebuilt at [create] by scanning the shards — file mtimes seed the
   initial recency order, so a reopened store evicts cold entries first.
   Eviction deletes the entry file.  All index state is mutex-guarded;
   file reads and temp-file writes happen outside the lock so pool
   workers sharing the store never serialize on each other's IO. *)

type node = {
  digest : string;  (* hex MD5 of the key — also the file name *)
  cost : int;  (* on-disk bytes of the entry file *)
  mutable ring_prev : node;
  mutable ring_next : node;
}

type t = {
  dir : string;
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  sentinel : node;
  lock : Mutex.t;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
  mutable tmp_counter : int;
}

let default_max_bytes = 256 * 1024 * 1024

let magic = "bintuner-store 1"

let is_hex_shard name =
  String.length name = 2
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       name

let is_tmp name =
  (* temp files are "<digest>.tmp.<pid>.<n>" *)
  let rec has_sub i =
    if i + 4 > String.length name then false
    else if String.sub name i 4 = ".tmp" then true
    else has_sub (i + 1)
  in
  has_sub 0

let shard_dir t digest = Filename.concat t.dir (String.sub digest 0 2)

let entry_path t digest = Filename.concat (shard_dir t digest) digest

let quarantine_dir t = Filename.concat t.dir "quarantine"

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let unlink n =
  n.ring_prev.ring_next <- n.ring_next;
  n.ring_next.ring_prev <- n.ring_prev

let push_front t n =
  n.ring_next <- t.sentinel.ring_next;
  n.ring_prev <- t.sentinel;
  t.sentinel.ring_next.ring_prev <- n;
  t.sentinel.ring_next <- n

(* Must be called with the lock held: drop the LRU tail until the byte
   budget holds, deleting the backing files. *)
let evict_to_budget t =
  while t.bytes > t.max_bytes do
    let victim = t.sentinel.ring_prev in
    unlink victim;
    Hashtbl.remove t.table victim.digest;
    t.bytes <- t.bytes - victim.cost;
    t.evictions <- t.evictions + 1;
    (try Sys.remove (entry_path t victim.digest) with Sys_error _ -> ());
    Telemetry.add_count "store.evict"
  done

let create ?(max_bytes = default_max_bytes) dir =
  mkdir_p dir;
  let rec sentinel =
    { digest = ""; cost = 0; ring_prev = sentinel; ring_next = sentinel }
  in
  let t =
    {
      dir;
      max_bytes = max 1 max_bytes;
      table = Hashtbl.create 1024;
      sentinel;
      lock = Mutex.create ();
      bytes = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      quarantined = 0;
      tmp_counter = 0;
    }
  in
  (* Rebuild the index from disk: sweep crash leftovers (*.tmp.*), stat
     every entry, and thread the ring oldest-first so mtime seeds the
     LRU order of a reopened store. *)
  let entries = ref [] in
  Array.iter
    (fun shard ->
      if is_hex_shard shard then begin
        let sdir = Filename.concat dir shard in
        Array.iter
          (fun name ->
            let path = Filename.concat sdir name in
            if is_tmp name then (try Sys.remove path with Sys_error _ -> ())
            else
              match Unix.stat path with
              | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                entries := (name, st_size, st_mtime) :: !entries
              | _ | (exception Unix.Unix_error _) -> ())
          (try Sys.readdir sdir with Sys_error _ -> [||])
      end)
    (try Sys.readdir dir with Sys_error _ -> [||]);
  List.sort (fun (_, _, a) (_, _, b) -> compare a b) !entries
  |> List.iter (fun (digest, cost, _) ->
         if not (Hashtbl.mem t.table digest) then begin
           let n =
             { digest; cost; ring_prev = t.sentinel; ring_next = t.sentinel }
           in
           push_front t n;
           Hashtbl.replace t.table digest n;
           t.bytes <- t.bytes + cost
         end);
  Mutex.lock t.lock;
  evict_to_budget t;
  Mutex.unlock t.lock;
  t

let dir t = t.dir

let key_digest key = Digest.to_hex (Digest.string key)

(* Move a torn entry aside (keeping the bytes for autopsy) and drop it
   from the index.  Racing quarantines of the same entry are harmless:
   the loser's rename fails silently and the index op is idempotent. *)
let quarantine t digest =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table digest with
  | Some n ->
    unlink n;
    Hashtbl.remove t.table digest;
    t.bytes <- t.bytes - n.cost
  | None -> ());
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.lock;
  mkdir_p (quarantine_dir t);
  (try
     Sys.rename (entry_path t digest)
       (Filename.concat (quarantine_dir t) digest)
   with Sys_error _ -> ());
  Telemetry.add_count "store.quarantine"

(* Read and validate one entry file; [Error `Torn] for anything that
   does not parse back to its own digest. *)
let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> Error `Gone
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error `Torn
        | header -> (
          match String.split_on_char ' ' header with
          | [ m1; m2; len; md5 ] when m1 ^ " " ^ m2 = magic -> (
            match int_of_string_opt len with
            | None -> Error `Torn
            | Some len when len < 0 -> Error `Torn
            | Some len -> (
              match really_input_string ic len with
              | exception End_of_file -> Error `Torn
              | payload ->
                if
                  Digest.to_hex (Digest.string payload) = md5
                  && pos_in ic = in_channel_length ic
                then Ok payload
                else Error `Torn))
          | _ -> Error `Torn))

let find t key =
  let digest = key_digest key in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table digest with
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Telemetry.add_count "store.miss";
    None
  | Some n ->
    unlink n;
    push_front t n;
    Mutex.unlock t.lock;
    (match read_entry (entry_path t digest) with
    | Ok payload ->
      Mutex.lock t.lock;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Telemetry.add_count "store.hit";
      Some payload
    | Error `Gone ->
      (* a racing eviction deleted the file between our index lookup and
         the read — an ordinary miss, nothing to quarantine *)
      Mutex.lock t.lock;
      t.misses <- t.misses + 1;
      (match Hashtbl.find_opt t.table digest with
      | Some n ->
        unlink n;
        Hashtbl.remove t.table digest;
        t.bytes <- t.bytes - n.cost
      | None -> ());
      Mutex.unlock t.lock;
      Telemetry.add_count "store.miss";
      None
    | Error `Torn ->
      Mutex.lock t.lock;
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Telemetry.add_count "store.miss";
      quarantine t digest;
      None)

let store t key payload =
  let digest = key_digest key in
  let header =
    Printf.sprintf "%s %d %s\n" magic (String.length payload)
      (Digest.to_hex (Digest.string payload))
  in
  let cost = String.length header + String.length payload in
  (* an entry the whole budget cannot hold would only evict everything
     else on its way to being evicted itself *)
  if cost <= t.max_bytes then begin
    Mutex.lock t.lock;
    let already = Hashtbl.mem t.table digest in
    let tmp_id = t.tmp_counter in
    t.tmp_counter <- tmp_id + 1;
    Mutex.unlock t.lock;
    if not already then begin
      let sdir = shard_dir t digest in
      mkdir_p sdir;
      let tmp =
        Filename.concat sdir
          (Printf.sprintf "%s.tmp.%d.%d" digest (Unix.getpid ()) tmp_id)
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc header;
         output_string oc payload;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Mutex.lock t.lock;
      if Hashtbl.mem t.table digest then begin
        (* a racing worker published the same key first; entries are
           deterministic per key, so keep-first is exact *)
        Mutex.unlock t.lock;
        try Sys.remove tmp with Sys_error _ -> ()
      end
      else begin
        (match Sys.rename tmp (entry_path t digest) with
        | () ->
          let n =
            { digest; cost; ring_prev = t.sentinel; ring_next = t.sentinel }
          in
          push_front t n;
          Hashtbl.replace t.table digest n;
          t.bytes <- t.bytes + cost;
          evict_to_budget t
        | exception Sys_error _ -> ());
        Mutex.unlock t.lock
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Typed wrappers                                                      *)
(* ------------------------------------------------------------------ *)

(* Compiled binaries are marshaled records ([Isa.Binary.t] is pure
   data).  The payload digest already rejects torn bytes; the try guards
   against a valid-digest entry written by an incompatible build, which
   degrades to a miss rather than an exception. *)
let find_binary t key =
  match find t key with
  | None -> None
  | Some payload -> (
    match (Marshal.from_string payload 0 : Isa.Binary.t) with
    | bin -> Some bin
    | exception _ ->
      quarantine t (key_digest key);
      None)

let store_binary t key (bin : Isa.Binary.t) =
  store t key (Marshal.to_string bin [])

let find_size t key =
  match find t key with None -> None | Some s -> int_of_string_opt s

let store_size t key v = store t key (string_of_int v)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let locked t read =
  Mutex.lock t.lock;
  let v = read t in
  Mutex.unlock t.lock;
  v

let hits t = locked t (fun t -> t.hits)
let misses t = locked t (fun t -> t.misses)
let evictions t = locked t (fun t -> t.evictions)
let quarantined t = locked t (fun t -> t.quarantined)
let length t = locked t (fun t -> Hashtbl.length t.table)
let bytes t = locked t (fun t -> t.bytes)
let max_bytes t = t.max_bytes
