(* The serve daemon: tuning as a service.

   A long-running process accepts tuning jobs over a line protocol —
   one request per line, one single-line JSON object per response — and
   multiplexes them onto one shared [Session]: one worker pool, one
   compile memo, one size cache per compression level, one incremental
   snapshot store, and (when configured) one persistent on-disk [Store].
   The second job over a corpus starts with the first job's artifacts
   warm; with a store, so does the first job after a restart.

   Requests:

     submit k=v ...    enqueue a job; replies with its id + queue depth
     run               drain the queue, one response line per job
     tune k=v ...      submit + run one job
     status            queue depth, completed-job stats, cache counters
     quit              stop the daemon

   Job parameters (all optional): bench=<corpus name> profile=gcc|llvm
   arch=x86-64|x86-32|arm|mips strategy=<registry name> budget=<max
   evaluations> lz-level=<level> seed=<int>
   objective=<axes, e.g. ncd,gadgets:0.5>.  Blank lines and #-comments
   are ignored.

   Jobs run sequentially on the daemon thread (the pool parallelizes
   inside a job); [handle_line] is the whole protocol, so tests drive a
   server in-process without sockets, and the same function backs both
   the stdin/stdout mode (CI smoke) and the Unix-socket accept loop. *)

type job = {
  id : int;
  bench : Corpus.benchmark;
  profile : Toolchain.Flags.profile;
  arch : Isa.Insn.arch;
  strategy : string;
  budget : int;
  lz_level : Compress.Lz.level;
  seed : int;
  objective : Search.Objective.spec;
}

type job_summary = {
  job_id : int;
  benchmark : string;
  profile : string;
  arch : string;
  strategy : string;
  objectives : string list;
  iterations : int;
  best_ncd : float;
  best_vector : bool array;
  best_scores : float array;
  front : (bool array * float array) list;
  functional_ok : bool;
  wall_seconds : float;
  cache_hits : int;
  compilations : int;
  ncd_cache_hits : int;
  ncd_cache_misses : int;
  incr_hits : int;
  incr_misses : int;
  store_hits : int;
  store_misses : int;
  objective_hits : int;
  objective_misses : int;
}

type t = {
  session : Session.t;
  queue : job Queue.t;
  mutable next_id : int;
  mutable completed : job_summary list;  (* newest first *)
}

let create ?(jobs = 1) ?store_dir ?store_max_bytes ?memo_max_bytes () =
  let store = Option.map (Store.create ?max_bytes:store_max_bytes) store_dir in
  {
    session = Session.create ~jobs ?memo_max_bytes ?store ();
    queue = Queue.create ();
    next_id = 1;
    completed = [];
  }

let session t = t.session
let completed t = List.rev t.completed
let queue_depth t = Queue.length t.queue

let close t = Session.close t.session

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; responses are flat and small)           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"
let jstr k v = Printf.sprintf "\"%s\":\"%s\"" k (escape v)
let jint k v = Printf.sprintf "\"%s\":%d" k v
let jbool k v = Printf.sprintf "\"%s\":%b" k v

(* %.17g round-trips every finite double and is a valid JSON number *)
let jfloat k v = Printf.sprintf "\"%s\":%.17g" k v

let error_response msg = obj [ jbool "ok" false; jstr "error" msg ]

(* ------------------------------------------------------------------ *)
(* Job parsing                                                         *)
(* ------------------------------------------------------------------ *)

let profile_of_string name =
  List.find_opt
    (fun p -> p.Toolchain.Flags.profile_name = name)
    Toolchain.Flags.profiles
  |> function
  | Some p -> Ok p
  | None -> (
    (* accept the CLI's short names too *)
    match name with
    | "gcc" -> Ok Toolchain.Flags.gcc
    | "llvm" -> Ok Toolchain.Flags.llvm
    | _ -> Error ("unknown profile " ^ name))

let arch_of_string name =
  let archs = [ Isa.Insn.X86_64; Isa.Insn.X86_32; Isa.Insn.Arm; Isa.Insn.Mips ] in
  match List.find_opt (fun a -> Isa.Insn.arch_name a = name) archs with
  | Some a -> Ok a
  | None -> Error ("unknown arch " ^ name)

let parse_job t tokens =
  let bench = ref "462.libquantum" in
  let profile = ref "gcc" in
  let arch = ref "x86-64" in
  let strategy = ref "ga" in
  let budget = ref 500 in
  let lz_level = ref None in
  let seed = ref 1 in
  let objective = ref Search.Objective.default in
  let bad = ref None in
  List.iter
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> bad := Some ("malformed parameter " ^ tok ^ " (want key=value)")
      | Some i -> (
        let k = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        let int_param r =
          match int_of_string_opt v with
          | Some n -> r := n
          | None -> bad := Some (k ^ " wants an integer, got " ^ v)
        in
        match k with
        | "bench" -> bench := v
        | "profile" -> profile := v
        | "arch" -> arch := v
        | "strategy" -> strategy := v
        | "budget" | "iterations" -> int_param budget
        | "seed" -> int_param seed
        | "lz-level" | "lz_level" -> (
          match Compress.Lz.level_of_string v with
          | l -> lz_level := Some l
          | exception Invalid_argument m -> bad := Some m)
        | "objective" | "objectives" -> (
          match Search.Objective.parse v with
          | spec -> objective := spec
          | exception Invalid_argument m -> bad := Some m)
        | _ -> bad := Some ("unknown parameter " ^ k)))
    tokens;
  match !bad with
  | Some msg -> Error msg
  | None -> (
    match Corpus.find !bench with
    | exception Not_found -> Error ("unknown benchmark " ^ !bench)
    | bench -> (
      match profile_of_string !profile with
      | Error e -> Error e
      | Ok profile -> (
        match arch_of_string !arch with
        | Error e -> Error e
        | Ok arch ->
          if not (List.mem !strategy Search.all_names) then
            Error ("unknown strategy " ^ !strategy)
          else begin
            let id = t.next_id in
            t.next_id <- id + 1;
            Ok
              {
                id;
                bench;
                profile;
                arch;
                strategy = !strategy;
                budget = max 1 !budget;
                lz_level =
                  (match !lz_level with
                  | Some l -> l
                  | None -> Compress.Lz.default_level ());
                seed = !seed;
                objective = !objective;
              }
          end)))

(* ------------------------------------------------------------------ *)
(* Running jobs                                                        *)
(* ------------------------------------------------------------------ *)

let jfloats k vs =
  Printf.sprintf "\"%s\":%s" k
    (arr (List.map (Printf.sprintf "%.17g") (Array.to_list vs)))

let front_json front =
  arr
    (List.map
       (fun (v, f) ->
         obj
           [
             jstr "vector" (Database.vector_to_string v);
             jfloats "fitness" f;
           ])
       front)

let summary_fields s =
  [
    jint "job" s.job_id;
    jstr "benchmark" s.benchmark;
    jstr "profile" s.profile;
    jstr "arch" s.arch;
    jstr "strategy" s.strategy;
    jstr "objectives" (String.concat "," s.objectives);
    jint "iterations" s.iterations;
    jfloat "best_ncd" s.best_ncd;
    jstr "best_vector" (Database.vector_to_string s.best_vector);
    jfloats "best_scores" s.best_scores;
    jint "front_size" (List.length s.front);
    Printf.sprintf "\"front\":%s" (front_json s.front);
    jbool "functional_ok" s.functional_ok;
    jfloat "wall_seconds" s.wall_seconds;
    jint "cache_hits" s.cache_hits;
    jint "compilations" s.compilations;
    jint "ncd_cache_hits" s.ncd_cache_hits;
    jint "ncd_cache_misses" s.ncd_cache_misses;
    jint "incr_hits" s.incr_hits;
    jint "incr_misses" s.incr_misses;
    jint "store_hits" s.store_hits;
    jint "store_misses" s.store_misses;
    jint "objective_hits" s.objective_hits;
    jint "objective_misses" s.objective_misses;
  ]

let run_job t (j : job) =
  Telemetry.set_gauge "serve.queue_depth" (float_of_int (Queue.length t.queue));
  match
    (* every span a job records on the daemon thread carries its id *)
    Telemetry.with_ambient_attrs
      [ ("job", string_of_int j.id) ]
      (fun () ->
        Telemetry.with_span "serve.job"
          ~attrs:
            [
              ("bench", j.bench.Corpus.bname);
              ("profile", j.profile.Toolchain.Flags.profile_name);
              ("strategy", j.strategy);
            ]
          (fun () ->
            Tuner.tune ~arch:j.arch
              ~termination:
                { Search.default_termination with max_evaluations = j.budget }
              ~seed:j.seed
              ~strategy:(Search.of_name j.strategy)
              ~session:t.session ~lz_level:j.lz_level ~objectives:j.objective
              ~profile:j.profile j.bench))
  with
  | exception e ->
    Telemetry.add_count "serve.job_failed";
    error_response
      (Printf.sprintf "job %d failed: %s" j.id (Printexc.to_string e))
  | r ->
    let s =
      {
        job_id = j.id;
        benchmark = r.Tuner.benchmark;
        profile = r.profile_name;
        arch = Isa.Insn.arch_name r.arch;
        strategy = r.strategy;
        objectives = r.objectives;
        iterations = r.iterations;
        best_ncd = r.best_ncd;
        best_vector = r.best_vector;
        best_scores = r.best_scores;
        front = r.front;
        functional_ok = r.functional_ok;
        wall_seconds = r.wall_seconds;
        cache_hits = r.cache_hits;
        compilations = r.compilations;
        ncd_cache_hits = r.ncd_cache_hits;
        ncd_cache_misses = r.ncd_cache_misses;
        incr_hits = r.incr_hits;
        incr_misses = r.incr_misses;
        store_hits = r.store_hits;
        store_misses = r.store_misses;
        objective_hits = r.objective_hits;
        objective_misses = r.objective_misses;
      }
    in
    t.completed <- s :: t.completed;
    Telemetry.add_count "serve.job_done";
    obj (jbool "ok" true :: summary_fields s)

let drain t =
  let responses = ref [] in
  while not (Queue.is_empty t.queue) do
    let j = Queue.pop t.queue in
    responses := run_job t j :: !responses
  done;
  Telemetry.set_gauge "serve.queue_depth" 0.0;
  List.rev !responses

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

let status_response t =
  let memo = Session.memo t.session in
  let sc_hits, sc_misses = Session.sizecache_counts t.session in
  let store_fields =
    match Session.store t.session with
    | None -> [ jbool "store" false ]
    | Some st ->
      [
        Printf.sprintf "\"store\":%s"
          (obj
             [
               jint "hits" (Store.hits st);
               jint "misses" (Store.misses st);
               jint "evictions" (Store.evictions st);
               jint "quarantined" (Store.quarantined st);
               jint "entries" (Store.length st);
               jint "bytes" (Store.bytes st);
               jint "max_bytes" (Store.max_bytes st);
             ]);
      ]
  in
  obj
    ([
       jbool "ok" true;
       jint "queued" (Queue.length t.queue);
       Printf.sprintf "\"queue\":%s"
         (arr
            (Queue.fold
               (fun acc j ->
                 obj [ jint "job" j.id; jstr "benchmark" j.bench.Corpus.bname ]
                 :: acc)
               [] t.queue
            |> List.rev));
       jint "completed" (List.length t.completed);
       Printf.sprintf "\"jobs\":%s"
         (arr (List.rev_map (fun s -> obj (summary_fields s)) t.completed));
       Printf.sprintf "\"memo\":%s"
         (obj
            [
              jint "hits" (Memo.hits memo);
              jint "misses" (Memo.misses memo);
              jint "evictions" (Memo.evictions memo);
              jint "entries" (Memo.length memo);
              jint "bytes" (Memo.bytes memo);
            ]);
       Printf.sprintf "\"sizecache\":%s"
         (obj [ jint "hits" sc_hits; jint "misses" sc_misses ]);
       (* session-wide multi-objective traffic: per-axis memo counters
          summed over every completed job (scalar-NCD jobs contribute 0) *)
       Printf.sprintf "\"objective\":%s"
         (obj
            [
              jint "hits"
                (List.fold_left
                   (fun acc s -> acc + s.objective_hits)
                   0 t.completed);
              jint "misses"
                (List.fold_left
                   (fun acc s -> acc + s.objective_misses)
                   0 t.completed);
            ]);
       Printf.sprintf "\"incremental\":%s"
         (obj
            [
              jint "hits" (Incremental.hits (Session.incremental t.session));
              jint "misses"
                (Incremental.misses (Session.incremental t.session));
            ]);
       jint "live_domains" (Parallel.Pool.live_domains ());
     ]
    @ store_fields)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let handle_line t line =
  match split_words line with
  | [] -> ([], true)
  | verb :: _ when String.length verb > 0 && verb.[0] = '#' -> ([], true)
  | "quit" :: _ -> ([ obj [ jbool "ok" true; jstr "bye" "bintuner" ] ], false)
  | "status" :: _ -> ([ status_response t ], true)
  | "submit" :: params -> (
    match parse_job t params with
    | Error msg -> ([ error_response msg ], true)
    | Ok j ->
      Queue.push j t.queue;
      Telemetry.set_gauge "serve.queue_depth"
        (float_of_int (Queue.length t.queue));
      ( [
          obj
            [
              jbool "ok" true;
              jint "job" j.id;
              jint "queued" (Queue.length t.queue);
            ];
        ],
        true ))
  | "run" :: _ -> (drain t, true)
  | "tune" :: params -> (
    match parse_job t params with
    | Error msg -> ([ error_response msg ], true)
    | Ok j ->
      Queue.push j t.queue;
      (drain t, true))
  | verb :: _ ->
    ([ error_response ("unknown request " ^ verb) ], true)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let serve_channel t ic oc =
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line ->
      let responses, keep_going = handle_line t line in
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        responses;
      flush oc;
      if not keep_going then continue := false
  done

let serve_unix t path =
  (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let continue = ref true in
      while !continue do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* one connection at a time: jobs are sequential anyway, and a
           dropped client must not take the daemon down *)
        (try
           let rec loop () =
             match input_line ic with
             | exception End_of_file -> ()
             | line ->
               let responses, keep_going = handle_line t line in
               List.iter
                 (fun r ->
                   output_string oc r;
                   output_char oc '\n')
                 responses;
               flush oc;
               if keep_going then loop () else continue := false
           in
           loop ()
         with Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)
