type entry = {
  vector : bool array;
  fitness : float array;  (** objective vector, spec order *)
}

type result = {
  benchmark : string;
  profile_name : string;
  strategy : string;
  arch : Isa.Insn.arch;
  objectives : string list;  (** axis names, vector order *)
  best_vector : bool array;
  best_binary : Isa.Binary.t;
  best_ncd : float;  (** scalarized best — exactly the NCD on the
                         default 1-objective spec *)
  best_scores : float array;  (** the best genome's raw objective vector *)
  front : (bool array * float array) list;
      (** Pareto front of (flag vector, objective vector); a singleton
          on 1-objective runs *)
  refined_vector : bool array;
  refined_binary : Isa.Binary.t;
  preset_ncd : (string * float) list;
  iterations : int;
  history : (int * float) list;
  wall_seconds : float;
  functional_ok : bool;
  cache_hits : int;
  compilations : int;
  ncd_cache_hits : int;
  ncd_cache_misses : int;
  incr_hits : int;
  incr_misses : int;
  store_hits : int;
  store_misses : int;
  objective_hits : int;  (** per-axis memo hits (0 on the scalar path) *)
  objective_misses : int;
  database : entry list;
}

let ncd_of_binaries a b =
  Compress.Ncd.distance a.Isa.Binary.text b.Isa.Binary.text

let code_stream (bin : Isa.Binary.t) =
  let insns = Isa.Codec.decode_all bin.arch bin.text in
  let b = Buffer.create (List.length insns) in
  List.iter
    (fun (_, i) -> Buffer.add_char b (Char.chr (Diffing.Bcode.opcode_class i)))
    insns;
  Buffer.contents b

let fitness_of_binaries a b =
  Compress.Ncd.distance (code_stream a) (code_stream b)

let flags_enabled (p : Toolchain.Flags.profile) vector =
  let names = ref [] in
  Array.iteri
    (fun i on -> if on then names := p.Toolchain.Flags.flags.(i).name :: !names)
    vector;
  List.rev !names

let functional_check bench bin0 bin =
  List.for_all
    (fun input ->
      let r0 = Vm.Machine.run bin0 ~input in
      let r = Vm.Machine.run bin ~input in
      r0.Vm.Machine.output = r.Vm.Machine.output
      && r0.Vm.Machine.return_value = r.Vm.Machine.return_value)
    bench.Corpus.workloads

let tune ?(arch = Isa.Insn.X86_64) ?(params = Search.Genetic.default_params)
    ?(termination = Search.default_termination) ?(seed = 1) ?strategy ?pool
    ?session ?(memoize = true) ?(incremental = true) ?(ncd_bound = false)
    ?lz_level ?(objectives = Search.Objective.default)
    ~(profile : Toolchain.Flags.profile) (bench : Corpus.benchmark) =
  let t0 = Unix.gettimeofday () in
  if objectives = [] then invalid_arg "Tuner.tune: empty objective spec";
  (* the paper's original problem — one NCD axis at unit weight — takes
     the historical batched fast path below (incumbent early-exit and
     all) and is bit-identical to the pre-vector tuner *)
  let scalar_ncd = Search.Objective.is_scalar_ncd objectives in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Search.Genetic.strategy ~params ()
  in
  (* a pool we create ourselves is ours to shut down, on every exit; a
     session's pool (like an explicit one) outlives the call *)
  let owned_pool, pool =
    match (pool, session) with
    | Some p, _ -> (None, p)
    | None, Some s -> (None, Session.pool s)
    | None, None ->
      let p = Parallel.Pool.create 1 in
      (Some p, p)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Parallel.Pool.shutdown owned_pool)
  @@ fun () ->
  let rng = Util.Rng.create (seed + Hashtbl.hash (bench.Corpus.bname, profile.profile_name)) in
  let ast = Corpus.program bench in
  (* the pass-prefix snapshot store: every compile of this run — across
     all worker domains — reads and writes one LRU of post-step IR
     snapshots, so single-flag neighbours resume mid-pipeline instead of
     recompiling from source.  Lossless, hence safe to default on; under
     a session the store is shared so later jobs resume from prefixes
     earlier jobs produced. *)
  let prefix =
    if not incremental then None
    else
      match session with
      | Some s -> Some (Session.incremental s)
      | None -> Some (Incremental.create ())
  in
  let snapshot = Option.map Incremental.snapshot_store prefix in
  let baseline = Toolchain.Pipeline.compile_preset profile ~arch ?snapshot "O0" ast in
  let baseline_stream = code_stream baseline in
  (* every C(x) / C(x·baseline) term of this run goes through one
     content-addressed cache: the baseline's solo size is compressed
     once, and candidates the GA revisits hit instead of re-compressing.
     Under a session the cache (one per compression level) is shared —
     and, with a persistent store attached, durable. *)
  let lz_level =
    match lz_level with Some l -> l | None -> Compress.Lz.default_level ()
  in
  let ncd_cache =
    match session with
    | Some s -> Session.sizecache s lz_level
    | None -> Compress.Sizecache.create ~level:lz_level ()
  in
  let database = ref [] in
  let memo =
    match session with
    | Some s when memoize -> Session.memo s
    | _ -> Memo.create ~enabled:memoize ()
  in
  let store = Option.bind session Session.store in
  (* shared caches carry traffic from earlier jobs; snapshot the counters
     so this result reports per-job deltas (for a fresh cache the deltas
     equal the raw counters, keeping one-shot results byte-identical) *)
  let memo_hits0 = Memo.hits memo in
  let memo_misses0 = Memo.misses memo in
  let ncd_hits0 = Compress.Sizecache.hits ncd_cache in
  let ncd_misses0 = Compress.Sizecache.misses ncd_cache in
  let incr_hits0 =
    match prefix with Some p -> Incremental.hits p | None -> 0
  in
  let incr_misses0 =
    match prefix with Some p -> Incremental.misses p | None -> 0
  in
  let store_hits0 = match store with Some s -> Store.hits s | None -> 0 in
  let store_misses0 = match store with Some s -> Store.misses s | None -> 0 in
  let program = Digest.to_hex (Digest.string bench.Corpus.source) in
  let compile vector =
    let key = Memo.key ~program ~profile:profile.profile_name ~arch vector in
    Memo.find_or_compile memo ~key (fun () ->
        let build () =
          Telemetry.with_span "tuner.compile" (fun () ->
              Toolchain.Pipeline.compile_flags profile ~arch ?snapshot vector
                ast)
        in
        match store with
        | None -> build ()
        | Some st -> (
          (* the durable tier behind the memo: consulted only on a memo
             miss, written through on every fresh compile *)
          let skey = "bin|" ^ key in
          match Store.find_binary st skey with
          | Some bin -> bin
          | None ->
            let bin = build () in
            Store.store_binary st skey bin;
            bin))
  in
  (* The multi-objective evaluator: per-axis memoized evaluation over
     the compiled binary.  The [ncd] axis reuses this run's size cache
     and baseline; the [evasion] axis trains the provenance adversary on
     this profile's presets once, then scores each candidate by its
     distance to the nearest preset centroid (further = more evasive). *)
  let evaluator =
    if scalar_ncd then None
    else begin
      let ncd_hook bin =
        Compress.Ncd.distance_via ncd_cache (code_stream bin) baseline_stream
      in
      let evasion_hook =
        if
          not
            (List.exists (fun (a, _) -> a = Search.Objective.Evasion) objectives)
        then None
        else begin
          let labelled =
            List.map
              (fun name ->
                ( {
                    Provenance.Classify.profile = profile.profile_name;
                    preset = name;
                  },
                  Toolchain.Pipeline.compile_preset profile ~arch ?snapshot name
                    ast ))
              [ "O0"; "O1"; "O2"; "O3"; "Os" ]
          in
          let model =
            Telemetry.with_span "tuner.train_adversary" (fun () ->
                Provenance.Classify.train labelled)
          in
          Some (fun bin -> snd (Provenance.Classify.classify model bin))
        end
      in
      Some (Search.Objective.evaluator ~ncd:ncd_hook ?evasion:evasion_hook objectives)
    end
  in
  (* Pinned by the engine before each batch (never mid-batch), so the
     early-exit cap every worker prunes against is a pure function of
     the sequential search state. *)
  let incumbent = ref neg_infinity in
  (* One generation's worth of candidates at a time: compile + evaluation
     run in parallel across the pool (each candidate's objective vector
     is a pure function of its flag vector), then the iteration database
     is appended sequentially in input order — the scheduling of the
     batch can never leak into the result. *)
  let batch_fitness vectors =
    let vecs =
      match evaluator with
      | None ->
        (* scalar-NCD fast path: batched pair compression with the
           optional incumbent early-exit bound *)
        let streams =
          Parallel.Pool.map pool
            (fun v ->
              let bin = compile v in
              code_stream bin)
            vectors
        in
        let ncds =
          Compress.Ncd.against ~pool ~span:"tuner.ncd"
            ?incumbent:(if ncd_bound then Some !incumbent else None)
            ~cache:ncd_cache ~baseline:baseline_stream streams
        in
        Array.map (fun n -> [| n |]) ncds
      | Some ev ->
        (* multi-objective: whole axis vectors per candidate, fanned
           across the pool (the per-axis memos are mutex-guarded).  The
           NCD early-exit bound stays off here — a pruned NCD is only an
           upper bound, which would poison the Pareto archive. *)
        Parallel.Pool.map pool
          (fun v -> Search.Objective.evaluate ev (compile v))
          vectors
    in
    Array.iteri
      (fun i v ->
        database := { vector = Array.copy v; fitness = vecs.(i) } :: !database)
      vectors;
    vecs
  in
  let fitness vector = (batch_fitness [| vector |]).(0) in
  let scalarize = Search.Objective.scalarize objectives in
  let axis_names = Search.Objective.names objectives in
  let seeds =
    List.filter_map
      (fun name -> Toolchain.Flags.preset profile name)
      [ "O1"; "O2"; "O3"; "Os" ]
  in
  let outcome =
    let problem =
      {
        Search.ngenes = Array.length profile.flags;
        seeds;
        repair = Toolchain.Constraints.repair profile rng;
      }
    in
    Search.run ~batch_fitness
      ~notify_incumbent:(fun f -> incumbent := f)
      ~scalarize ~axes:axis_names ~rng ~termination ~problem ~fitness strategy
  in
  (* Final selection: the GA typically ends with a set of near-tied best
     fitness values ("multiple different versions that all reveal the
     best NCD score", §5.2).  Among the top candidates, pick the one the
     objective reference metric (BinHunt) rates as most different from
     the baseline — the paper's verification step, folded into the
     output choice. *)
  let top_candidates =
    let sorted =
      List.sort
        (fun a b -> compare (scalarize b.fitness) (scalarize a.fitness))
        !database
    in
    let seen = Hashtbl.create 16 in
    let dedup =
      List.filter
        (fun e ->
          let key = Array.to_list e.vector in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        sorted
    in
    let n = List.length dedup in
    (* the fitness optimum is a cluster of near-identical flag soups;
       stratify across the whole (fitness-sorted) database so the
       reference metric also sees structurally different near-optima,
       including the preset seeds *)
    let top = List.filteri (fun i _ -> i < 4) dedup in
    let stride = max 1 (n / 5) in
    let strata = List.filteri (fun i _ -> i mod stride = 0 && i >= 4) dedup in
    (* the -Ox seeds started the population; keep their (repaired)
       vectors in the verification set so a misaligned fitness never
       makes the final output regress below the presets it grew from *)
    let seed_entries =
      List.map
        (fun v ->
          { vector = Toolchain.Constraints.repair profile rng (Array.copy v);
            fitness = Array.make (Search.Objective.arity objectives) 0.0 })
        seeds
    in
    top @ List.filteri (fun i _ -> i < 4) strata @ seed_entries
  in
  let best_binary = compile outcome.best in
  let refined_vector, refined_binary =
    match top_candidates with
    | [] -> (outcome.best, best_binary)
    | cands ->
      (* BinHunt is two orders of magnitude dearer than the fitness
         (§4.2): score the verification set across the pool *)
      let scored =
        Parallel.Pool.map_list ~chunk_size:1 pool
          (fun e ->
            let bin = compile e.vector in
            let score =
              Telemetry.with_span "tuner.binhunt" (fun () ->
                  Diffing.Binhunt.diff_score bin baseline)
            in
            (score, e.vector, bin))
          cands
      in
      let best_score, v, b =
        List.fold_left
          (fun (bs, bv, bb) (s, v, b) ->
            if s > bs then (s, v, b) else (bs, bv, bb))
          (neg_infinity, outcome.best, best_binary)
          scored
      in
      ignore best_score;
      (v, b)
  in
  let preset_ncd =
    Parallel.Pool.map_list ~chunk_size:1 pool
      (fun name ->
        let bin = Toolchain.Pipeline.compile_preset profile ~arch ?snapshot name ast in
        (name, Compress.Ncd.distance_via ncd_cache (code_stream bin) baseline_stream))
      [ "O0"; "O1"; "O2"; "O3"; "Os" ]
  in
  {
    benchmark = bench.bname;
    profile_name = profile.profile_name;
    strategy = Search.name strategy;
    arch;
    objectives = axis_names;
    best_vector = outcome.best;
    best_binary;
    refined_vector;
    refined_binary;
    best_ncd = outcome.best_fitness;
    best_scores = outcome.best_vector;
    front = outcome.front;
    preset_ncd;
    iterations = outcome.evaluations;
    history = outcome.history;
    wall_seconds = Unix.gettimeofday () -. t0;
    functional_ok =
      functional_check bench baseline best_binary
      && functional_check bench baseline refined_binary;
    cache_hits = Memo.hits memo - memo_hits0;
    compilations = Memo.misses memo - memo_misses0;
    ncd_cache_hits = Compress.Sizecache.hits ncd_cache - ncd_hits0;
    ncd_cache_misses = Compress.Sizecache.misses ncd_cache - ncd_misses0;
    incr_hits =
      (match prefix with Some p -> Incremental.hits p - incr_hits0 | None -> 0);
    incr_misses =
      (match prefix with
      | Some p -> Incremental.misses p - incr_misses0
      | None -> 0);
    store_hits =
      (match store with Some s -> Store.hits s - store_hits0 | None -> 0);
    store_misses =
      (match store with Some s -> Store.misses s - store_misses0 | None -> 0);
    objective_hits =
      (match evaluator with
      | None -> 0
      | Some ev ->
        List.fold_left
          (fun acc (_, h, _) -> acc + h)
          0
          (Search.Objective.memo_counts ev));
    objective_misses =
      (match evaluator with
      | None -> 0
      | Some ev ->
        List.fold_left
          (fun acc (_, _, m) -> acc + m)
          0
          (Search.Objective.memo_counts ev));
    database = List.rev !database;
  }
