(** Persistent, content-addressed artifact store for serving mode.

    One-shot tuning keeps its compiled binaries and compressed sizes in
    process-local caches ({!Memo}, {!Compress.Sizecache},
    {!Incremental}) that die with the process.  The store is the durable
    layer behind a long-running {!Server}: MD5-keyed entries — compiled
    binaries and C(x)/C(xy) compressed sizes — sharded across 256
    two-hex-character prefix directories, byte-bounded with LRU eviction
    (file mtimes seed the recency order of a reopened store), and
    crash-safe end to end:

    - every write lands in a same-shard temp file and is [rename]d into
      place, so a crash can never leave a half-visible entry;
    - every read validates the entry's recorded payload length and MD5;
      a torn or corrupt entry is moved to [dir/quarantine/] and reported
      as a miss — the daemon recomputes instead of crashing;
    - stale temp files from a crashed writer are swept at {!create}.

    Everything served from the store is content the caller could
    recompute: compilation and compression are pure, so a hit is
    bit-identical to a recompute and the store is lossless by
    construction (the serve differential test pins warm-store runs to
    cold one-shot runs).  Domain-safe: index state is mutex-guarded,
    file IO runs outside the lock.  Traffic is mirrored to telemetry as
    [store.hit] / [store.miss] / [store.evict] / [store.quarantine]. *)

type t

val default_max_bytes : int
(** Byte budget used when [create]'s [?max_bytes] is omitted (256 MiB). *)

val create : ?max_bytes:int -> string -> t
(** [create dir] opens (or initializes) the store rooted at [dir],
    creating the directory if needed, sweeping crash leftovers, and
    rebuilding the LRU index from the existing shards (oldest mtime =
    first eviction victim; evicts immediately if the directory already
    exceeds the budget). *)

val dir : t -> string

val find : t -> string -> string option
(** Look a key up, refreshing its recency.  [None] on a cold key, an
    evicted entry, or a torn one (which is quarantined on the way out).
    Every call counts exactly one hit or one miss. *)

val store : t -> string -> string -> unit
(** Publish a payload under a key (keep-first on a racing duplicate —
    entries are deterministic per key), evicting from the LRU tail until
    the byte budget holds.  An entry bigger than the whole budget is
    never admitted.  Crash-safe (temp file + rename). *)

val find_binary : t -> string -> Isa.Binary.t option
(** {!find} + unmarshal of a compiled binary; an entry that fails to
    unmarshal (e.g. written by an incompatible build) is quarantined and
    reported as a miss. *)

val store_binary : t -> string -> Isa.Binary.t -> unit

val find_size : t -> string -> int option
(** {!find} + integer decode of a compressed-size entry. *)

val store_size : t -> string -> int -> unit

val hits : t -> int
(** Lookups served from disk (after validation). *)

val misses : t -> int
(** Lookups that found nothing servable (cold, evicted, or torn). *)

val evictions : t -> int
(** Entries deleted to hold the byte budget. *)

val quarantined : t -> int
(** Torn or corrupt entries moved to [dir/quarantine/] (each also counts
    as a miss on the lookup that found it). *)

val length : t -> int
(** Resident entries. *)

val bytes : t -> int
(** Resident on-disk bytes of all entries; never exceeds {!max_bytes}. *)

val max_bytes : t -> int
