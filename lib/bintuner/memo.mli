(** Compile memoization for the tuning loop.

    The GA's constraint-repair step routinely maps several distinct raw
    genomes onto the same valid flag vector, and the tuner's final
    verification re-scores vectors it already compiled during the search
    — so the same [(profile, arch, flag-vector)] triple reaches the
    compiler many times per run.  Compilation is a pure function of that
    triple (plus the benchmark's immutable AST), so a memo layer can
    serve repeats from cache without any effect on results; the
    cache-correctness tests assert exactly that, and the hit/miss
    counters are reported in {!Tuner.result} so every experiment shows
    how much compilation it avoided.

    The table is mutex-protected: a {!Parallel.Pool} batch may look up
    and insert concurrently.  Compilation itself runs outside the lock.
    One memo instance is valid for {e one} source program — the key does
    not include the AST — which is why {!Tuner.tune} creates its own. *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh, empty memo.  With [~enabled:false] every request compiles
    (and counts as a miss) — the reference the differential tests
    compare against. *)

val key : profile:string -> arch:Isa.Insn.arch -> bool array -> string
(** The canonical [(profile, arch, flag-vector)] cache key. *)

val find_or_compile : t -> key:string -> (unit -> Isa.Binary.t) -> Isa.Binary.t
(** Serve [key] from cache, or run the thunk and remember its result.
    Thread-safe; the thunk runs unlocked. *)

val hits : t -> int
(** Requests served from cache. *)

val misses : t -> int
(** Requests that ran the compiler.  [hits t + misses t] is the total
    number of compile requests made through [t].  (The fitness-level
    counterpart, layered on persisted runs, is {!Database.lookup}.) *)
