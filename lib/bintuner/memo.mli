(** Compile memoization for the tuning loop — a byte-bounded LRU.

    The GA's constraint-repair step routinely maps several distinct raw
    genomes onto the same valid flag vector, and the tuner's final
    verification re-scores vectors it already compiled during the search
    — so the same [(program, profile, arch, flag-vector)] quadruple
    reaches the compiler many times per run.  Compilation is a pure
    function of that quadruple, so a memo layer can serve repeats from
    cache without any effect on results; the cache-correctness tests
    assert exactly that, and the hit/miss counters are reported in
    {!Tuner.result} so every experiment shows how much compilation it
    avoided.

    Under daemon traffic ({!Server}) one memo lives as long as the
    process and sees every job's binaries, so — unlike the unbounded
    hashtable it once was — the table is a byte-bounded LRU with the
    same ring discipline as {!Compress.Sizecache} and {!Incremental}:
    least-recently-used binaries are evicted once the byte budget is
    exceeded, and eviction is lossless (recompiling an evicted key
    reproduces identical bytes; only counters and wall-clock move).

    The table is mutex-protected: a {!Parallel.Pool} batch may look up
    and insert concurrently.  Compilation itself runs outside the lock.
    The key includes a digest of the source program, so one memo is safe
    to share across jobs tuning different benchmarks. *)

type t

val default_max_bytes : int
(** Byte budget used when [create]'s [?max_bytes] is omitted (128 MiB). *)

val create : ?enabled:bool -> ?max_bytes:int -> unit -> t
(** A fresh, empty memo bounded to [max_bytes] of resident binary
    payload.  With [~enabled:false] every request compiles (and counts
    as a miss) — the reference the differential tests compare against. *)

val key :
  program:string -> profile:string -> arch:Isa.Insn.arch -> bool array -> string
(** The canonical [(program, profile, arch, flag-vector)] cache key;
    [program] is a digest of the benchmark's source (so memos shared
    across jobs never cross programs). *)

val find_or_compile : t -> key:string -> (unit -> Isa.Binary.t) -> Isa.Binary.t
(** Serve [key] from cache, or run the thunk, remember its result (LRU-
    evicting down to the byte budget) and return it.  Thread-safe; the
    thunk runs unlocked.  An entry bigger than the whole budget is
    returned but never admitted. *)

val hits : t -> int
(** Requests served from cache. *)

val misses : t -> int
(** Requests that ran the compiler.  [hits t + misses t] is the total
    number of compile requests made through [t].  (The fitness-level
    counterpart, layered on persisted runs, is {!Database.lookup}.) *)

val evictions : t -> int
(** Entries evicted to hold the byte budget (also counted in telemetry
    as [memo.evict]). *)

val bytes : t -> int
(** Resident payload bytes (including a fixed per-entry overhead
    charge); never exceeds {!max_bytes}. *)

val length : t -> int
(** Resident entries. *)

val max_bytes : t -> int
