(* Compile memoization as a byte-bounded LRU.

   The original memo was an unbounded Hashtbl — fine for a one-shot CLI
   run, a leak under daemon traffic, where one long-lived memo sees every
   job's compiled binaries and would retain them all forever.  It now
   carries the same ring-LRU discipline as [Compress.Sizecache] and
   [Incremental]: entries live on a doubly-linked ring through a sentinel
   ([sentinel.ring_next] most recently used, [sentinel.ring_prev] the
   eviction victim), all table/ring/counter state behind one mutex, and a
   byte budget charged per entry from the binary's resident payload.

   Eviction is lossless: compilation is pure, so a re-request of an
   evicted key recompiles to identical bytes — only the hit/miss/eviction
   counters (and wall-clock) can tell the difference.  Compilation itself
   always runs outside the lock so workers memoizing different keys never
   serialize on each other's compiles. *)

type node = {
  key : string;
  value : Isa.Binary.t;
  cost : int;
  mutable ring_prev : node;
  mutable ring_next : node;
}

type t = {
  enabled : bool;
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  sentinel : node;
  mutex : Mutex.t;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_max_bytes = 128 * 1024 * 1024

(* what an entry keeps resident: the binary's byte payloads, its word
   view, the key, plus a flat ring/table bookkeeping charge *)
let entry_overhead = 128

let binary_cost key (b : Isa.Binary.t) =
  String.length b.Isa.Binary.text
  + String.length b.data
  + (8 * Array.length b.data_words)
  + String.length key + entry_overhead

let dummy_binary =
  {
    Isa.Binary.arch = Isa.Insn.X86_64;
    profile = "";
    opt_label = "";
    text = "";
    data = "";
    data_words = [||];
    symbols = [||];
    functions = [||];
    entry = 0;
    ret_reg = 0;
  }

let create ?(enabled = true) ?(max_bytes = default_max_bytes) () =
  let rec sentinel =
    {
      key = "";
      value = dummy_binary;
      cost = 0;
      ring_prev = sentinel;
      ring_next = sentinel;
    }
  in
  {
    enabled;
    max_bytes = max 1 max_bytes;
    table = Hashtbl.create 256;
    sentinel;
    mutex = Mutex.create ();
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t read =
  Mutex.lock t.mutex;
  let v = read t in
  Mutex.unlock t.mutex;
  v

let hits t = locked t (fun t -> t.hits)
let misses t = locked t (fun t -> t.misses)
let evictions t = locked t (fun t -> t.evictions)
let bytes t = locked t (fun t -> t.bytes)
let length t = locked t (fun t -> Hashtbl.length t.table)
let max_bytes t = t.max_bytes

let key ~program ~profile ~arch vector =
  let bits =
    String.init (Array.length vector) (fun i -> if vector.(i) then '1' else '0')
  in
  program ^ "|" ^ profile ^ "|" ^ Isa.Insn.arch_name arch ^ "|" ^ bits

let unlink n =
  n.ring_prev.ring_next <- n.ring_next;
  n.ring_next.ring_prev <- n.ring_prev

let push_front t n =
  n.ring_next <- t.sentinel.ring_next;
  n.ring_prev <- t.sentinel;
  t.sentinel.ring_next.ring_prev <- n;
  t.sentinel.ring_next <- n

(* Must be called with the lock held. *)
let admit t key value =
  let cost = binary_cost key value in
  (* an entry the whole budget cannot hold would only evict everything
     else on its way to being evicted itself *)
  if cost <= t.max_bytes && not (Hashtbl.mem t.table key) then begin
    let n = { key; value; cost; ring_prev = t.sentinel; ring_next = t.sentinel } in
    push_front t n;
    Hashtbl.replace t.table key n;
    t.bytes <- t.bytes + cost;
    while t.bytes > t.max_bytes do
      let victim = t.sentinel.ring_prev in
      unlink victim;
      Hashtbl.remove t.table victim.key;
      t.bytes <- t.bytes - victim.cost;
      t.evictions <- t.evictions + 1;
      Telemetry.add_count "memo.evict"
    done
  end

let find_or_compile t ~key compile =
  if not t.enabled then begin
    Mutex.lock t.mutex;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Telemetry.add_count "memo.miss";
    compile ()
  end
  else begin
    Mutex.lock t.mutex;
    match Hashtbl.find_opt t.table key with
    | Some n ->
      t.hits <- t.hits + 1;
      unlink n;
      push_front t n;
      let bin = n.value in
      Mutex.unlock t.mutex;
      Telemetry.add_count "memo.hit";
      bin
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.mutex;
      Telemetry.add_count "memo.miss";
      (* compile outside the lock: workers memoizing different keys must
         not serialize on each other's compilations.  Keep-first on a
         racing duplicate — compilation is deterministic per key, so both
         writers hold identical binaries. *)
      let bin = compile () in
      Mutex.lock t.mutex;
      admit t key bin;
      Mutex.unlock t.mutex;
      bin
  end
