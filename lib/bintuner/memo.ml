type t = {
  enabled : bool;
  table : (string, Isa.Binary.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(enabled = true) () =
  { enabled; table = Hashtbl.create 256; mutex = Mutex.create (); hits = 0; misses = 0 }

let hits t =
  Mutex.lock t.mutex;
  let h = t.hits in
  Mutex.unlock t.mutex;
  h

let misses t =
  Mutex.lock t.mutex;
  let m = t.misses in
  Mutex.unlock t.mutex;
  m

let key ~profile ~arch vector =
  let bits =
    String.init (Array.length vector) (fun i -> if vector.(i) then '1' else '0')
  in
  profile ^ "|" ^ Isa.Insn.arch_name arch ^ "|" ^ bits

let find_or_compile t ~key compile =
  if not t.enabled then begin
    Mutex.lock t.mutex;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Telemetry.add_count "memo.miss";
    compile ()
  end
  else begin
    Mutex.lock t.mutex;
    match Hashtbl.find_opt t.table key with
    | Some bin ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      Telemetry.add_count "memo.hit";
      bin
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.mutex;
      Telemetry.add_count "memo.miss";
      (* compile outside the lock: workers memoizing different keys must
         not serialize on each other's compilations *)
      let bin = compile () in
      Mutex.lock t.mutex;
      if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key bin;
      Mutex.unlock t.mutex;
      bin
  end
