let buf_add_times b c n = for _ = 1 to n do Buffer.add_char b c done

let table ~header ~rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.make ncols 0 in
  let measure r =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      r
  in
  measure header;
  List.iter measure rows;
  let b = Buffer.create 256 in
  let emit_row r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string b "  ";
        Buffer.add_string b cell;
        if i < ncols - 1 then
          buf_add_times b ' ' (widths.(i) - String.length cell))
      r;
    Buffer.add_char b '\n'
  in
  emit_row header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  buf_add_times b '-' total;
  Buffer.add_char b '\n';
  List.iter emit_row rows;
  Buffer.contents b

let bar_chart ~title ?(width = 50) data =
  let b = Buffer.create 256 in
  Buffer.add_string b (title ^ "\n");
  let maxv = List.fold_left (fun acc (_, v) -> max acc v) 0.0 data in
  let maxv = if maxv <= 0.0 then 1.0 else maxv in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 data
  in
  let emit (label, v) =
    Buffer.add_string b "  ";
    Buffer.add_string b label;
    buf_add_times b ' ' (label_w - String.length label);
    Buffer.add_string b " |";
    let n = int_of_float (Float.round (v /. maxv *. float_of_int width)) in
    buf_add_times b '#' (max 0 n);
    Buffer.add_string b (Printf.sprintf " %.3f\n" v)
  in
  List.iter emit data;
  Buffer.contents b

let grouped_bars ~title ~series ?(width = 40) data =
  let b = Buffer.create 512 in
  Buffer.add_string b (title ^ "\n");
  let maxv =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left max acc vs)
      0.0 data
  in
  let maxv = if maxv <= 0.0 then 1.0 else maxv in
  let series_w =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series
  in
  let emit (group, vs) =
    Buffer.add_string b (" " ^ group ^ "\n");
    List.iteri
      (fun i v ->
        let name = try List.nth series i with Failure _ -> "?" in
        Buffer.add_string b "   ";
        Buffer.add_string b name;
        buf_add_times b ' ' (series_w - String.length name);
        Buffer.add_string b " |";
        let n = int_of_float (Float.round (v /. maxv *. float_of_int width)) in
        buf_add_times b '#' (max 0 n);
        Buffer.add_string b (Printf.sprintf " %.3f\n" v))
      vs
  in
  List.iter emit data;
  Buffer.contents b

let series_plot ~title ?(height = 12) ?(width = 64) series =
  let b = Buffer.create 1024 in
  Buffer.add_string b (title ^ "\n");
  let all_max =
    List.fold_left
      (fun acc (_, a) -> Array.fold_left max acc a)
      neg_infinity series
  in
  let all_min =
    List.fold_left
      (fun acc (_, a) -> Array.fold_left min acc a)
      infinity series
  in
  if series = [] || all_max = neg_infinity then Buffer.contents b
  else begin
    let lo = all_min and hi = if all_max = all_min then all_min +. 1.0 else all_max in
    let grid = Array.make_matrix height width ' ' in
    let marks = [| '*'; 'o'; '+'; 'x'; '.'; '@' |] in
    List.iteri
      (fun si (_, a) ->
        let n = Array.length a in
        if n > 0 then
          for col = 0 to width - 1 do
            let idx =
              if n = 1 then 0
              else col * (n - 1) / (max 1 (width - 1))
            in
            let v = a.(min idx (n - 1)) in
            let row =
              int_of_float
                (Float.round ((v -. lo) /. (hi -. lo) *. float_of_int (height - 1)))
            in
            let row = height - 1 - max 0 (min (height - 1) row) in
            grid.(row).(col) <- marks.(si mod Array.length marks)
          done)
      series;
    for r = 0 to height - 1 do
      let yval = hi -. (float_of_int r /. float_of_int (height - 1) *. (hi -. lo)) in
      Buffer.add_string b (Printf.sprintf "%8.3f |" yval);
      for c = 0 to width - 1 do
        Buffer.add_char b grid.(r).(c)
      done;
      Buffer.add_char b '\n'
    done;
    Buffer.add_string b "         +";
    buf_add_times b '-' width;
    Buffer.add_char b '\n';
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string b
          (Printf.sprintf "         %c = %s\n" marks.(si mod Array.length marks) name))
      series;
    Buffer.contents b
  end

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s\n" line title line
