(** Minimal deterministic JSON emitter.

    Rendering is a pure function of the value — object fields keep the
    order they were built with, floats render as ["%.1f"] for exact
    small integers and round-tripping ["%.17g"] otherwise — so emitted
    reports can be golden-digest tested.  Emission only; consumers parse
    with jq/python. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control characters);
    no surrounding quotes. *)

val to_string : t -> string
(** Compact rendering: no whitespace outside strings. *)

val to_channel : out_channel -> t -> unit
(** {!to_string} plus a trailing newline. *)
