(* Splitmix64: fast, high-quality, trivially seedable.  Reference:
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators",
   OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int (seed * 2 + 1)) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 *. bound

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
