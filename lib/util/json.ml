(* Minimal deterministic JSON emitter.

   The tree is built explicitly ([Obj] fields stay in the order given),
   so the rendered bytes are a pure function of the value — golden-digest
   tests over [bintuner_cli inspect] reports depend on that.  Emission
   only; the repo's JSON consumers (CI gates) parse with jq/python. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips every finite double and is a valid JSON number;
   non-finite values have no JSON spelling and become null *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else if Float.is_finite v then Printf.sprintf "%.17g" v
  else "null"

let add_to_buffer b v =
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float v -> Buffer.add_string b (float_repr v)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          go item)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go item)
        fields;
      Buffer.add_char b '}'
  in
  go v

let to_string v =
  let b = Buffer.create 1024 in
  add_to_buffer b v;
  Buffer.contents b

let to_channel oc v =
  let b = Buffer.create 4096 in
  add_to_buffer b v;
  Buffer.output_buffer oc b;
  output_char oc '\n'
