(** ASCII rendering of the paper's tables and figures.

    The benchmark harness regenerates every table and figure of the paper's
    evaluation section as text: tables as aligned grids, figures as
    horizontal bar charts or sparkline-style series. *)

val table : header:string list -> rows:string list list -> string
(** Render an aligned table with a header rule.  All rows are padded to the
    header width. *)

val bar_chart :
  title:string -> ?width:int -> (string * float) list -> string
(** Horizontal bar chart; bars scaled to the maximum value.  [width] is the
    maximum bar width in characters (default 50). *)

val grouped_bars :
  title:string ->
  series:string list ->
  ?width:int ->
  (string * float list) list ->
  string
(** Grouped horizontal bars: each row is a labelled group with one bar per
    series (used for Figure 5 / Figure 8 style charts). *)

val series_plot :
  title:string ->
  ?height:int ->
  ?width:int ->
  (string * float array) list ->
  string
(** Plot one or more numeric series on a shared character grid (used for
    the Figure 6 NCD-over-iterations plots and Figure 10 CDF). *)

val section : string -> string
(** A visually separated section header. *)
