(** Descriptive statistics used throughout the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths); 0.0 on the
    empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 for fewer than two samples. *)

val min_max_median : float list -> float * float * float
(** [(min, max, median)] triple, as reported in the paper's Table 1. *)

val pearson : float list -> float list -> float
(** Pearson correlation coefficient of two equal-length samples.  Returns
    0.0 when either sample is constant (undefined correlation). *)

val jaccard : ('a -> 'a -> int) -> 'a list -> 'a list -> float
(** [jaccard compare a b] is |A∩B| / |A∪B| treating the lists as sets under
    [compare].  1.0 when both are empty. *)

val cdf : float list -> (float * float) list
(** Empirical cumulative distribution: sorted [(value, fraction ≤ value)]
    pairs, one per distinct value. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], linear interpolation.
    Out-of-range [p] (including NaN) is clamped to the nearest bound
    rather than indexing outside the sample. *)
