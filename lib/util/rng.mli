(** Deterministic pseudo-random number generation.

    The whole reproduction is seeded: every stochastic component (genetic
    algorithm, sampling-based diffing tools, workload generators) draws from
    an explicit [Rng.t] so that runs are bit-for-bit reproducible.  We never
    use [Stdlib.Random]. *)

type t
(** Mutable generator state (splitmix64). *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each GA individual / tool its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
