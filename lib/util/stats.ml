let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let min_max_median xs =
  match sorted xs with
  | [] -> (0.0, 0.0, 0.0)
  | first :: _ as s ->
    let last = List.nth s (List.length s - 1) in
    (first, last, median xs)

let pearson xs ys =
  let n = List.length xs in
  if n = 0 || n <> List.length ys then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let num = ref 0.0 and dx2 = ref 0.0 and dy2 = ref 0.0 in
    List.iter2
      (fun x y ->
        let dx = x -. mx and dy = y -. my in
        num := !num +. (dx *. dy);
        dx2 := !dx2 +. (dx *. dx);
        dy2 := !dy2 +. (dy *. dy))
      xs ys;
    let denom = sqrt (!dx2 *. !dy2) in
    if denom = 0.0 then 0.0 else !num /. denom
  end

let jaccard compare a b =
  let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
  let inter = List.filter (fun x -> List.exists (fun y -> compare x y = 0) b) a in
  let ni = List.length inter in
  let nu = List.length a + List.length b - ni in
  if nu = 0 then 1.0 else float_of_int ni /. float_of_int nu

let cdf xs =
  let s = sorted xs in
  let n = float_of_int (List.length s) in
  if n = 0.0 then []
  else begin
    (* one point per distinct value, at its highest rank *)
    let rec walk i acc = function
      | [] -> List.rev acc
      | [ x ] -> List.rev ((x, float_of_int (i + 1) /. n) :: acc)
      | x :: (y :: _ as rest) ->
        if x = y then walk (i + 1) acc rest
        else walk (i + 1) ((x, float_of_int (i + 1) /. n) :: acc) rest
    in
    walk 0 [] s
  end

let percentile xs p =
  (* out-of-range ranks would index outside the array; NaN clamps to 0 *)
  let p = if p >= 0.0 then min p 1.0 else 0.0 in
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end
