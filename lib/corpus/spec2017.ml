(* MinC stand-ins for the SPECspeed 2017 Integer benchmarks.  Distinct
   kernels from their CPU2006 cousins (the paper notes CPU2017 has larger
   and more complex workloads):

   - 600.perlbench_s: regex-like NFA matcher + string interpolation;
   - 605.mcf_s: successive-shortest-path augmentation on a grid network;
   - 620.omnetpp_s: discrete event simulation with a binary-heap future
     event set and a switch-dispatched handler table;
   - 623.xalancbmk_s: recursive-descent parser building a sibling/child
     tree plus template-rule matching over it;
   - 625.x264_s: quarter-pel interpolation + CABAC-ish bit cost model;
   - 631.deepsjeng_s: board search with transposition table;
   - 641.leela_s: Monte-Carlo playouts with an LCG and union-find;
   - 648.exchange2_s: recursive sudoku-style backtracking;
   - 657.xz_s: LZ77 hash-chain match finder (the paper's Table 7 CFG-edge
     collapse subject). *)

let perlbench_600 =
  {|
int text[256] = "the quick brown fox jumps over the lazy dog and runs far away into the dark forest tonight";
int pattern[16] = "o?g";
int nfa_hits = 0;

int match_here(int t, int p) {
  // tiny regex: literal chars, ? = any single char, * = any run
  if (pattern[p] == 0) { return 1; }
  if (pattern[p] == '*') {
    int k = t;
    while (text[k] != 0) {
      if (match_here(k, p + 1)) { return 1; }
      k++;
    }
    return match_here(k, p + 1);
  }
  if (text[t] == 0) { return 0; }
  if (pattern[p] == '?' || pattern[p] == text[t]) {
    return match_here(t + 1, p + 1);
  }
  return 0;
}

int search_all() {
  int hits = 0;
  for (int t = 0; text[t] != 0; t++) {
    if (match_here(t, 0)) { hits++; }
  }
  return hits;
}

int interpolate(int seed) {
  // build a string in __mem and checksum it
  int out = 100;
  int x = seed;
  int n = 0;
  for (int i = 0; text[i] != 0; i++) {
    __mem[out + n] = text[i];
    n++;
    if (text[i] == ' ') {
      x = x * 31 + i;
      __mem[out + n] = '0' + (x & 7);
      n++;
    }
  }
  __mem[out + n] = 0;
  int sum = 0;
  for (int i = 0; i < n; i++) { sum = sum * 131 + __mem[out + i]; }
  return sum & 0xFFFFFF;
}

int main() {
  pattern[0] = 'o'; pattern[1] = '?'; pattern[2] = input(0) ? '*' : 'g';
  pattern[3] = input(0) ? 'g' : 0; pattern[4] = 0;
  print_int(search_all());
  print_int(interpolate(input(0) + 23));
  print_int(strlen(100));
  return 0;
}
|}

let mcf_605 =
  {|
int cap[1296];     // 36x36 grid arcs: right and down
int flow[1296];
int dist[650];
int parent[650];
int inqueue[650];
int queue[4096];

int node(int r, int c) { return r * 25 + c; }

int setup(int seed) {
  int x = seed;
  for (int i = 0; i < 1296; i++) {
    x = x * 48271 % 2147483647;
    cap[i] = x % 6 + 1;
    flow[i] = 0;
  }
  return 0;
}

int arc_right(int r, int c) { return r * 25 + c; }
int arc_down(int r, int c) { return 648 + r * 25 + c; }

int spfa(int n) {
  for (int v = 0; v < 650; v++) { dist[v] = 1000000000; parent[v] = -1; inqueue[v] = 0; }
  int head = 0;
  int tail = 0;
  dist[0] = 0;
  queue[tail] = 0; tail++;
  while (head < tail && tail < 4000) {
    int u = queue[head]; head++;
    inqueue[u] = 0;
    int r = u / 25;
    int c = u % 25;
    if (c < 24 && cap[arc_right(r, c)] > flow[arc_right(r, c)]) {
      int w = node(r, c + 1);
      if (dist[u] + 1 < dist[w]) {
        dist[w] = dist[u] + 1;
        parent[w] = u;
        if (!inqueue[w]) { queue[tail] = w; tail++; inqueue[w] = 1; }
      }
    }
    if (r < 24 && cap[arc_down(r, c)] > flow[arc_down(r, c)]) {
      int w = node(r + 1, c);
      if (dist[u] + 1 < dist[w]) {
        dist[w] = dist[u] + 1;
        parent[w] = u;
        if (!inqueue[w]) { queue[tail] = w; tail++; inqueue[w] = 1; }
      }
    }
  }
  return dist[n];
}

int augment(int n) {
  // push one unit along the parent chain
  int v = n;
  int pushed = 0;
  while (parent[v] >= 0) {
    int u = parent[v];
    int r = u / 25;
    int c = u % 25;
    if (v == node(r, c + 1)) { flow[arc_right(r, c)]++; }
    else { flow[arc_down(r, c)]++; }
    v = u;
    pushed++;
  }
  return pushed;
}

int main() {
  setup(input(0) + 31);
  int sink = node(24, 24);
  int total = 0;
  int units = 0;
  for (int it = 0; it < 12; it++) {
    int d = spfa(sink);
    if (d >= 1000000000) { break; }
    total += d;
    units += augment(sink);
  }
  print_int(total);
  print_int(units);
  return 0;
}
|}

let omnetpp_620 =
  {|
int heap_time[512];
int heap_kind[512];
int heap_node[512];
int heap_n = 0;
int node_state[64];
int delivered = 0;
int rngx = 0;

int rnd(int bound) {
  rngx = rngx * 1103515245 + 12345;
  int v = (rngx >> 16) & 0x7FFF;
  return v % bound;
}

int heap_push(int t, int kind, int node) {
  int i = heap_n;
  heap_n++;
  heap_time[i] = t; heap_kind[i] = kind; heap_node[i] = node;
  while (i > 0) {
    int p = (i - 1) / 2;
    if (heap_time[p] <= heap_time[i]) { break; }
    int tt = heap_time[p]; heap_time[p] = heap_time[i]; heap_time[i] = tt;
    tt = heap_kind[p]; heap_kind[p] = heap_kind[i]; heap_kind[i] = tt;
    tt = heap_node[p]; heap_node[p] = heap_node[i]; heap_node[i] = tt;
    i = p;
  }
  return heap_n;
}

int heap_pop() {
  int best = heap_time[0] * 4096 + heap_kind[0] * 64 + heap_node[0];
  heap_n--;
  heap_time[0] = heap_time[heap_n];
  heap_kind[0] = heap_kind[heap_n];
  heap_node[0] = heap_node[heap_n];
  int i = 0;
  while (1) {
    int l = i * 2 + 1;
    int r = l + 1;
    int m = i;
    if (l < heap_n && heap_time[l] < heap_time[m]) { m = l; }
    if (r < heap_n && heap_time[r] < heap_time[m]) { m = r; }
    if (m == i) { break; }
    int tt = heap_time[m]; heap_time[m] = heap_time[i]; heap_time[i] = tt;
    tt = heap_kind[m]; heap_kind[m] = heap_kind[i]; heap_kind[i] = tt;
    tt = heap_node[m]; heap_node[m] = heap_node[i]; heap_node[i] = tt;
    i = m;
  }
  return best;
}

int handle(int t, int kind, int node) {
  switch (kind) {
    case 0: {  // packet arrival: forward to a neighbour
      node_state[node] += 1;
      delivered++;
      if (heap_n < 500 && t < 4000) {
        heap_push(t + rnd(9) + 1, rnd(3), (node + 1 + rnd(5)) % 64);
      }
      break;
    }
    case 1: {  // timer: maybe emit two packets
      if (heap_n < 499 && t < 4000) {
        heap_push(t + 2 + rnd(5), 0, rnd(64));
        heap_push(t + 3 + rnd(7), 0, rnd(64));
      }
      break;
    }
    case 2: {  // state decay
      node_state[node] = node_state[node] / 2;
      break;
    }
    default: break;
  }
  return 0;
}

int main() {
  rngx = input(0) + 97;
  for (int i = 0; i < 20; i++) { heap_push(rnd(20), rnd(3), rnd(64)); }
  int events = 0;
  while (heap_n > 0 && events < 6000) {
    int packed = heap_pop();
    handle(packed / 4096, packed / 64 % 64 % 3, packed % 64);
    events++;
  }
  int sum = 0;
  for (int i = 0; i < 64; i++) { sum += node_state[i] * (i + 1); }
  print_int(events);
  print_int(delivered);
  print_int(sum);
  return 0;
}
|}

let xalancbmk_623 =
  {|
int doc[700] = "(section(title)(para)(para(bold)(ital))(list(item)(item)(item(link)))(table(row(cell)(cell))(row(cell)(cell))))";
int node_tag[256];
int node_child[256];
int node_sibling[256];
int nnodes = 0;
int pos = 0;

int new_node(int tag) {
  int n = nnodes;
  nnodes++;
  node_tag[n] = tag;
  node_child[n] = -1;
  node_sibling[n] = -1;
  return n;
}

int parse_node() {
  // doc[pos] == '('
  pos++;
  int tag = 0;
  while (doc[pos] >= 'a' && doc[pos] <= 'z') {
    tag = tag * 31 + doc[pos];
    pos++;
  }
  int me = new_node(tag & 0xFFFF);
  int last_child = -1;
  while (doc[pos] == '(' && nnodes < 250) {
    int child = parse_node();
    if (last_child < 0) { node_child[me] = child; }
    else { node_sibling[last_child] = child; }
    last_child = child;
  }
  if (doc[pos] == ')') { pos++; }
  return me;
}

int count_matches(int n, int tag) {
  if (n < 0) { return 0; }
  int self = node_tag[n] == tag ? 1 : 0;
  return self + count_matches(node_child[n], tag) + count_matches(node_sibling[n], tag);
}

int depth_of(int n) {
  if (n < 0) { return 0; }
  int d = 1 + depth_of(node_child[n]);
  int s = depth_of(node_sibling[n]);
  return d > s ? d : s;
}

int apply_templates(int n, int mode) {
  // xslt-ish: rule dispatch on tag hash
  if (n < 0) { return 0; }
  int out = 0;
  switch (node_tag[n] % 7) {
    case 0: out = 2 + apply_templates(node_child[n], mode); break;
    case 1: out = 3 * apply_templates(node_child[n], 1 - mode); break;
    case 2: out = mode + apply_templates(node_child[n], mode); break;
    case 3: out = 5; break;
    case 4: out = apply_templates(node_child[n], 0) + apply_templates(node_child[n], 1); break;
    default: out = 1 + apply_templates(node_child[n], mode); break;
  }
  return out + apply_templates(node_sibling[n], mode);
}

int main() {
  int reps = 4 + (input(0) & 3);
  int acc = 0;
  for (int r = 0; r < reps; r++) {
    nnodes = 0;
    pos = 0;
    int root = parse_node();
    acc += count_matches(root, ('p'*31+'a')*31+'r'*0);  // partial hash, rarely matches
    acc += count_matches(root, (((('c'*31+'e')*31+'l')*31+'l')) & 0xFFFF);
    acc += depth_of(root) * 100;
    acc += apply_templates(root, r & 1);
  }
  print_int(nnodes);
  print_int(acc);
  return 0;
}
|}

let x264_625 =
  {|
int ref_[1156];    // 34x34 padded frame
int half[1156];
int costs[64];

int fill(int seed) {
  int x = seed;
  for (int i = 0; i < 1156; i++) {
    x = x * 214013 + 2531011;
    ref_[i] = (x >> 16) & 255;
  }
  return 0;
}

int hpel_filter() {
  // 6-tap-ish horizontal filter, vectorizable inner loop shape
  for (int r = 2; r < 32; r++) {
    for (int c = 2; c < 32; c++) {
      int p = r * 34 + c;
      int v = ref_[p-2] - 5*ref_[p-1] + 20*ref_[p] + 20*ref_[p+1] - 5*ref_[p+2] + ref_[p+3];
      half[p] = (v + 16) / 32;
    }
  }
  int acc = 0;
  for (int i = 0; i < 1156; i++) { acc += half[i] & 255; }
  return acc;
}

int bit_cost(int v) {
  if (v < 0) { v = -v; }
  int bits = 1;
  while (v > 0) { v = v >> 1; bits += 2; }
  return bits;
}

int rd_quant() {
  // rate-distortion: quantize residuals at 8 lambda values
  int best_lambda = 0;
  int best_cost = 1000000000;
  for (int l = 1; l <= 8; l++) {
    int cost = 0;
    for (int i = 0; i < 64; i++) {
      int resid = ref_[i * 17 % 1156] - 128;
      int q = resid / (l * 2 + 1);
      int rec = q * (l * 2 + 1);
      int err = resid - rec;
      cost += err * err + l * bit_cost(q);
    }
    costs[l - 1] = cost;
    if (cost < best_cost) { best_cost = cost; best_lambda = l; }
  }
  return best_lambda * 1000000 + best_cost % 1000000;
}

int main() {
  fill(input(0) + 3);
  print_int(hpel_filter());
  print_int(rd_quant());
  return 0;
}
|}

let deepsjeng_631 =
  {|
int board[64];
int tt_key[1024];
int tt_val[1024];
int nodes = 0;
int rngx = 7;

int rnd() { rngx = rngx * 2862933555777941757 + 1442695040888963407; return (rngx >> 33) & 0xFFFF; }

int eval_board() {
  int s = 0;
  for (int i = 0; i < 64; i++) {
    int p = board[i];
    if (p == 0) { continue; }
    int center = (i / 8 >= 2 && i / 8 <= 5 && i % 8 >= 2 && i % 8 <= 5) ? 2 : 1;
    s += p * center;
  }
  return s;
}

int zobrist() {
  int h = 0;
  for (int i = 0; i < 64; i++) { h = h * 1099511628211 + board[i] + 3; }
  return h;
}

int search(int depth, int alpha, int beta) {
  nodes++;
  if (depth == 0) { return eval_board(); }
  int key = zobrist();
  int slot = key & 1023;
  if (tt_key[slot] == key && depth <= 2) { return tt_val[slot]; }
  int best = -100000;
  int tried = 0;
  for (int from = 0; from < 64 && tried < 6; from++) {
    if (board[from] > 0) {
      int to = (from + 1 + rnd() % 16) & 63;
      int captured = board[to];
      if (captured > 0) { continue; }
      board[to] = board[from];
      board[from] = 0;
      tried++;
      int v = -search(depth - 1, -beta, -alpha);
      board[from] = board[to];
      board[to] = captured;
      if (v > best) { best = v; }
      if (best > alpha) { alpha = best; }
      if (alpha >= beta) { break; }
    }
  }
  if (!tried) { return eval_board(); }
  tt_key[slot] = key;
  tt_val[slot] = best;
  return best;
}

int main() {
  rngx = input(0) + 1234567;
  for (int i = 0; i < 64; i++) { board[i] = 0; }
  for (int k = 0; k < 12; k++) { board[rnd() & 63] = (k & 3) + 1; }
  print_int(search(6, -100000, 100000));
  print_int(nodes);
  return 0;
}
|}

let leela_641 =
  {|
int parent[256];
int rank_[256];
int stones[256];
int wins = 0;
int playouts = 0;
int rngx = 0;

int rnd(int bound) {
  rngx = rngx * 2862933555777941757 + 1442695040888963407;
  int v = (rngx >> 33) & 0x7FFFFFFF;
  return v % bound;
}

int find(int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

int union_(int a, int b) {
  int ra = find(a);
  int rb = find(b);
  if (ra == rb) { return ra; }
  if (rank_[ra] < rank_[rb]) { int t = ra; ra = rb; rb = t; }
  parent[rb] = ra;
  if (rank_[ra] == rank_[rb]) { rank_[ra]++; }
  return ra;
}

int playout() {
  for (int i = 0; i < 256; i++) { parent[i] = i; rank_[i] = 0; stones[i] = 0; }
  int placed = 0;
  int black_score = 0;
  while (placed < 160) {
    int p = rnd(256);
    if (stones[p]) { continue; }
    int color = (placed & 1) + 1;
    stones[p] = color;
    placed++;
    int r = p / 16;
    int c = p % 16;
    if (c > 0 && stones[p-1] == color) { union_(p, p-1); }
    if (c < 15 && stones[p+1] == color) { union_(p, p+1); }
    if (r > 0 && stones[p-16] == color) { union_(p, p-16); }
    if (r < 15 && stones[p+16] == color) { union_(p, p+16); }
  }
  for (int p = 0; p < 256; p++) {
    if (stones[p] == 1 && find(p) == p) { black_score += 3; }
    if (stones[p] == 1) { black_score++; }
    if (stones[p] == 2) { black_score--; }
  }
  return black_score > 0 ? 1 : 0;
}

int main() {
  rngx = input(0) + 55;
  for (int g = 0; g < 40; g++) {
    wins += playout();
    playouts++;
  }
  print_int(wins);
  print_int(playouts);
  return 0;
}
|}

let exchange2_648 =
  {|
int grid[81];
int solutions = 0;
int steps = 0;

int ok(int cell, int v) {
  int r = cell / 9;
  int c = cell % 9;
  for (int i = 0; i < 9; i++) {
    if (grid[r * 9 + i] == v) { return 0; }
    if (grid[i * 9 + c] == v) { return 0; }
  }
  int br = r / 3 * 3;
  int bc = c / 3 * 3;
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 3; j++) {
      if (grid[(br + i) * 9 + bc + j] == v) { return 0; }
    }
  }
  return 1;
}

int solve(int cell) {
  steps++;
  if (steps > 60000) { return 0; }
  while (cell < 81 && grid[cell] != 0) { cell++; }
  if (cell >= 81) { solutions++; return solutions >= 2; }
  for (int v = 1; v <= 9; v++) {
    if (ok(cell, v)) {
      grid[cell] = v;
      if (solve(cell + 1)) { grid[cell] = 0; return 1; }
      grid[cell] = 0;
    }
  }
  return 0;
}

int main() {
  int seed = input(0);
  for (int i = 0; i < 81; i++) { grid[i] = 0; }
  // seed a diagonal of boxes, always consistent
  for (int b = 0; b < 3; b++) {
    int base = b * 27 + b * 3;
    int v = 1;
    for (int i = 0; i < 3; i++) {
      for (int j = 0; j < 3; j++) {
        grid[base + i * 9 + j] = (v + seed + b) % 9 + 1;
        v += 2;
      }
    }
  }
  // the diagonal fill above can violate box uniqueness; repair simply
  for (int b = 0; b < 3; b++) {
    int base = b * 27 + b * 3;
    int used[10];
    for (int i = 0; i < 10; i++) { used[i] = 0; }
    for (int i = 0; i < 3; i++) {
      for (int j = 0; j < 3; j++) {
        int cell = base + i * 9 + j;
        int v = grid[cell];
        while (used[v]) { v = v % 9 + 1; }
        grid[cell] = v;
        used[v] = 1;
      }
    }
  }
  solve(0);
  print_int(solutions);
  print_int(steps);
  return 0;
}
|}

let xz_657 =
  {|
int buf[2048];
int head[256];
int prev[2048];
int out_len[1024];
int out_dist[1024];

int gen(int seed) {
  int x = seed;
  for (int i = 0; i < 2048; i++) {
    x = x * 22695477 + 1;
    int v = (x >> 18) & 7;
    if ((x & 15) < 9 && i > 40) { v = buf[i - 20 - ((x >> 6) & 15)]; }
    buf[i] = v;
  }
  return 0;
}

int hash3(int i) {
  return (buf[i] * 33 * 33 + buf[i+1] * 33 + buf[i+2]) & 255;
}

int find_matches() {
  for (int i = 0; i < 256; i++) { head[i] = -1; }
  int ntokens = 0;
  int i = 0;
  while (i < 2040 && ntokens < 1000) {
    int h = hash3(i);
    int cand = head[h];
    int best_len = 0;
    int best_dist = 0;
    int chain = 0;
    while (cand >= 0 && chain < 16) {
      int l = 0;
      while (i + l < 2040 && buf[cand + l] == buf[i + l] && l < 64) { l++; }
      if (l > best_len) { best_len = l; best_dist = i - cand; }
      cand = prev[cand];
      chain++;
    }
    prev[i] = head[h];
    head[h] = i;
    if (best_len >= 3) {
      out_len[ntokens] = best_len;
      out_dist[ntokens] = best_dist;
      ntokens++;
      // index covered positions too (the slow part of real xz)
      int stop = i + best_len;
      i++;
      while (i < stop && i < 2040) {
        int hh = hash3(i);
        prev[i] = head[hh];
        head[hh] = i;
        i++;
      }
    }
    else {
      out_len[ntokens] = 1;
      out_dist[ntokens] = buf[i];
      ntokens++;
      i++;
    }
  }
  return ntokens;
}

int main() {
  gen(input(0) + 77);
  int n = find_matches();
  int sum_len = 0;
  int sum_dist = 0;
  for (int k = 0; k < n; k++) { sum_len += out_len[k]; sum_dist += out_dist[k] & 1023; }
  print_int(n);
  print_int(sum_len);
  print_int(sum_dist);
  return 0;
}
|}
