(* MinC stand-ins for the SPECint CPU2006 benchmarks the paper evaluates.
   Each program reproduces the computational *shape* of its namesake —
   the code structures that make particular optimizations fire on it —
   at a scale the VX virtual machine executes in well under a second:

   - 400.perlbench: hash table + switch-dispatched bytecode interpreter;
   - 401.bzip2: run-length + move-to-front + order-0 frequency coding;
   - 429.mcf: Bellman-Ford relaxation on a sparse network (the paper's
     Figure 6d/7d subject: inlining + loop-invariant motion targets);
   - 445.gobmk: board scanning with pattern matches (branchy, Figure 7b);
   - 456.hmmer: Viterbi-style dynamic programming over row-major
     matrices (unroll-and-jam / vectorization target);
   - 458.sjeng: alpha-beta game-tree search (recursion, tail calls);
   - 462.libquantum: quantum register simulation — element-wise state
     updates, dot products, division by constants (the paper's headline
     strength-reduction + vectorization case, Figure 6a/7a);
   - 464.h264ref: SAD/DCT block kernels (vectorizable inner loops);
   - 473.astar: grid shortest path with a linear-scan frontier;
   - 483.xalancbmk: XML-ish tokenizer + tree builder (switch-heavy,
     jump-table target). *)

let perlbench_400 =
  {|
int hashtab[512];
int hashval[512];
int code[64] = {1,5,2,7,3,1,4,2,5,9,6,3,7,1,8,2,1,6,2,8,3,2,4,1,5,8,6,1,7,4,8,3,
                1,9,2,3,3,8,4,6,5,2,6,7,7,9,8,8,1,1,2,4,3,5,4,9,5,7,6,6,7,2,8,5};
int stack[64];

int hash_key(int k) {
  int h = k * 2654435761;
  h = h ^ (h >> 16);
  if (h < 0) { h = -h; }
  return h % 509;
}

int ht_put(int k, int v) {
  int h = hash_key(k);
  int probes = 0;
  while (hashtab[h] != 0 && hashtab[h] != k && probes < 512) {
    h = (h + 1) % 512;
    probes++;
  }
  hashtab[h] = k;
  hashval[h] = v;
  return probes;
}

int ht_get(int k) {
  int h = hash_key(k);
  int probes = 0;
  while (probes < 512) {
    if (hashtab[h] == k) { return hashval[h]; }
    if (hashtab[h] == 0) { return -1; }
    h = (h + 1) % 512;
    probes++;
  }
  return -1;
}

int interp(int steps, int seed) {
  int sp = 0;
  int acc = seed;
  int pc = 0;
  while (steps > 0) {
    int op = code[pc & 63];
    pc++;
    steps--;
    switch (op) {
      case 1: acc = acc + 1; break;
      case 2: acc = acc * 3; break;
      case 3: if (sp < 63) { stack[sp] = acc; sp++; } break;
      case 4: if (sp > 0) { sp--; acc = acc + stack[sp]; } break;
      case 5: acc = acc ^ 255; break;
      case 6: acc = acc >> 1; break;
      case 7: ht_put(acc & 1023, pc); break;
      case 8: { int f = ht_get(acc & 1023); if (f > 0) { acc = acc + f; } break; }
      case 9: acc = acc - 7; break;
      default: acc = acc + op; break;
    }
    acc = acc & 0xFFFFFF;
  }
  return acc;
}

int main() {
  int total = 0;
  int seed = input(0) + 11;
  for (int round = 0; round < 8; round++) {
    total += interp(800, seed + round * 13);
  }
  for (int k = 1; k < 200; k++) { ht_put(k * 3, k * k); }
  for (int k = 1; k < 200; k++) {
    int v = ht_get(k * 3);
    if (v != k * k) { total += 1000000; }
  }
  print_int(total);
  return 0;
}
|}

let bzip2_401 =
  {|
int src[1024];
int rle[2048];
int mtf[2048];
int alphabet[256];
int freq[256];

int gen_input(int seed) {
  int x = seed;
  for (int i = 0; i < 1024; i++) {
    x = x * 1103515245 + 12345;
    int v = (x >> 16) & 15;
    // runs: repeat previous value often
    if ((x & 7) < 5 && i > 0) { v = src[i-1]; }
    src[i] = v;
  }
  return 0;
}

int run_length_encode() {
  int out = 0;
  int i = 0;
  while (i < 1024) {
    int v = src[i];
    int run = 1;
    while (i + run < 1024 && src[i + run] == v && run < 255) { run++; }
    rle[out] = v; out++;
    rle[out] = run; out++;
    i += run;
  }
  return out;
}

int move_to_front(int n) {
  for (int i = 0; i < 256; i++) { alphabet[i] = i; }
  for (int i = 0; i < n; i++) {
    int v = rle[i] & 255;
    int pos = 0;
    while (alphabet[pos] != v) { pos++; }
    mtf[i] = pos;
    while (pos > 0) { alphabet[pos] = alphabet[pos - 1]; pos--; }
    alphabet[0] = v;
  }
  return n;
}

int entropy_cost(int n) {
  for (int i = 0; i < 256; i++) { freq[i] = 0; }
  for (int i = 0; i < n; i++) { freq[mtf[i] & 255]++; }
  int bits = 0;
  for (int i = 0; i < 256; i++) {
    int f = freq[i];
    int symbits = 1;
    int range = 2;
    while (range < n && range <= f * 16) { range = range * 2; symbits++; }
    bits += f * (17 - symbits);
  }
  return bits;
}

int main() {
  gen_input(input(0) + 3);
  int n = run_length_encode();
  move_to_front(n);
  int cost = entropy_cost(n);
  print_int(n);
  print_int(cost);
  return 0;
}
|}

let mcf_429 =
  {|
int arc_src[600];
int arc_dst[600];
int arc_cost[600];
int dist[128];
int pot[128];

int build_network(int seed) {
  int x = seed;
  for (int a = 0; a < 600; a++) {
    x = x * 48271 % 2147483647;
    arc_src[a] = x % 128;
    x = x * 48271 % 2147483647;
    arc_dst[a] = x % 128;
    x = x * 48271 % 2147483647;
    arc_cost[a] = x % 100 + 1;
  }
  return 0;
}

int bellman_ford() {
  for (int v = 0; v < 128; v++) { dist[v] = 1000000000; }
  dist[0] = 0;
  int changed = 1;
  int rounds = 0;
  while (changed && rounds < 128) {
    changed = 0;
    for (int a = 0; a < 600; a++) {
      int u = arc_src[a];
      int w = arc_dst[a];
      int c = arc_cost[a];
      if (dist[u] + c < dist[w]) {
        dist[w] = dist[u] + c;
        changed = 1;
      }
    }
    rounds++;
  }
  return rounds;
}

int reduced_costs() {
  // node potentials: the classic mcf price update
  int total = 0;
  for (int v = 0; v < 128; v++) { pot[v] = dist[v] < 1000000000 ? dist[v] : 0; }
  for (int a = 0; a < 600; a++) {
    int rc = arc_cost[a] + pot[arc_src[a]] - pot[arc_dst[a]];
    if (rc < 0) { rc = -rc; }
    total += rc % 97;
  }
  return total;
}

int main() {
  build_network(input(0) + 17);
  int rounds = bellman_ford();
  int sum = 0;
  for (int v = 0; v < 128; v++) {
    if (dist[v] < 1000000000) { sum += dist[v]; }
  }
  print_int(rounds);
  print_int(sum);
  print_int(reduced_costs());
  return 0;
}
|}

let gobmk_445 =
  {|
int board[441];   // 21x21, border ring of -1
int influence[441];
int libs[441];
int mark[441];

int at(int row, int col) { return board[row * 21 + col]; }

int setup(int seed) {
  int x = seed;
  for (int i = 0; i < 441; i++) { board[i] = 0; mark[i] = 0; }
  for (int i = 0; i < 21; i++) {
    board[i] = -1;
    board[420 + i] = -1;
    board[i * 21] = -1;
    board[i * 21 + 20] = -1;
  }
  for (int k = 0; k < 140; k++) {
    x = x * 69069 + 1;
    int r = ((x >> 8) & 1023) % 19 + 1;
    int c = ((x >> 18) & 1023) % 19 + 1;
    board[r * 21 + c] = (x & 1) + 1;   // 1 = black, 2 = white
  }
  return 0;
}

int count_liberties(int row, int col) {
  int p = row * 21 + col;
  int n = 0;
  if (board[p - 1] == 0) { n++; }
  if (board[p + 1] == 0) { n++; }
  if (board[p - 21] == 0) { n++; }
  if (board[p + 21] == 0) { n++; }
  return n;
}

int pattern_score(int row, int col) {
  // 3x3 pattern hashing around a point, branch-heavy
  int score = 0;
  int me = at(row, col);
  if (me <= 0) { return 0; }
  int opp = 3 - me;
  if (at(row-1, col) == opp && at(row+1, col) == opp) { score += 4; }
  if (at(row, col-1) == opp && at(row, col+1) == opp) { score += 4; }
  if (at(row-1, col-1) == me && at(row+1, col+1) == me) { score += 2; }
  if (at(row-1, col+1) == me && at(row+1, col-1) == me) { score += 2; }
  if (count_liberties(row, col) == 1) { score += 9; }
  if (count_liberties(row, col) == 0) { score += 17; }
  return score;
}

int flood_group(int row, int col, int color) {
  // iterative flood fill with an explicit worklist
  int work[441];
  int wn = 0;
  int size = 0;
  work[wn] = row * 21 + col; wn++;
  while (wn > 0) {
    wn--;
    int p = work[wn];
    if (mark[p] || board[p] != color) { continue; }
    mark[p] = 1;
    size++;
    work[wn] = p - 1; wn++;
    work[wn] = p + 1; wn++;
    work[wn] = p - 21; wn++;
    work[wn] = p + 21; wn++;
  }
  return size;
}

int main() {
  setup(input(0) + 5);
  int total = 0;
  for (int r = 1; r <= 19; r++) {
    for (int c = 1; c <= 19; c++) {
      influence[r * 21 + c] = pattern_score(r, c);
      total += influence[r * 21 + c];
    }
  }
  int groups = 0;
  int biggest = 0;
  for (int r = 1; r <= 19; r++) {
    for (int c = 1; c <= 19; c++) {
      int p = r * 21 + c;
      if (board[p] > 0 && !mark[p]) {
        int size = flood_group(r, c, board[p]);
        groups++;
        if (size > biggest) { biggest = size; }
      }
    }
  }
  print_int(total);
  print_int(groups);
  print_int(biggest);
  return 0;
}
|}

let hmmer_456 =
  {|
int emit[512];    // 32 states x 16 symbols, row-major
int trans[1024];  // 32 x 32, row-major
int vcur[32];
int vprev[32];
int seq[200];

int setup(int seed) {
  int x = seed;
  for (int i = 0; i < 512; i++) { x = x * 1664525 + 1013904223; emit[i] = (x >> 20) & 63; }
  for (int i = 0; i < 1024; i++) { x = x * 1664525 + 1013904223; trans[i] = (x >> 22) & 31; }
  for (int i = 0; i < 200; i++) { x = x * 1664525 + 1013904223; seq[i] = (x >> 24) & 15; }
  return 0;
}

int viterbi(int len) {
  for (int s = 0; s < 32; s++) { vprev[s] = s == 0 ? 0 : -1000000; }
  for (int t = 0; t < len; t++) {
    int sym = seq[t];
    for (int s = 0; s < 32; s++) {
      int best = -1000000000;
      for (int q = 0; q < 32; q++) {
        int cand = vprev[q] - trans[q * 32 + s];
        if (cand > best) { best = cand; }
      }
      vcur[s] = best + emit[s * 16 + sym];
    }
    for (int s = 0; s < 32; s++) { vprev[s] = vcur[s]; }
  }
  int best = -1000000000;
  for (int s = 0; s < 32; s++) { if (vprev[s] > best) { best = vprev[s]; } }
  return best;
}

int forward_sums(int len) {
  // row-major matrix product shape: scores[i*w + j] (unroll-and-jam bait)
  int acc = 0;
  for (int i = 0; i < 32; i = i + 1) {
    for (int j = 0; j < 32; j = j + 1) {
      trans[i * 32 + j] = trans[i * 32 + j] + emit[(i & 31) * 16 + (j & 15)] * 2;
    }
  }
  for (int i = 0; i < 1024; i++) { acc += trans[i]; }
  return acc ^ len;
}

int main() {
  setup(input(0) + 29);
  print_int(viterbi(200));
  print_int(forward_sums(200));
  return 0;
}
|}

let sjeng_458 =
  {|
int board[16];    // 4x4 tic-tac-toe variant
int nodes = 0;

int winner() {
  for (int r = 0; r < 4; r++) {
    int p = board[r * 4];
    if (p != 0 && board[r*4+1] == p && board[r*4+2] == p && board[r*4+3] == p) { return p; }
  }
  for (int c = 0; c < 4; c++) {
    int p = board[c];
    if (p != 0 && board[4+c] == p && board[8+c] == p && board[12+c] == p) { return p; }
  }
  int p = board[0];
  if (p != 0 && board[5] == p && board[10] == p && board[15] == p) { return p; }
  p = board[3];
  if (p != 0 && board[6] == p && board[9] == p && board[12] == p) { return p; }
  return 0;
}

int eval_leaf() {
  int score = 0;
  for (int i = 0; i < 16; i++) {
    int w = (i == 5 || i == 6 || i == 9 || i == 10) ? 3 : 1;
    if (board[i] == 1) { score += w; }
    if (board[i] == 2) { score -= w; }
  }
  return score;
}

int alphabeta(int depth, int alpha, int beta, int player) {
  nodes++;
  int w = winner();
  if (w == 1) { return 1000 - depth; }
  if (w == 2) { return -1000 + depth; }
  if (depth >= 5) { return eval_leaf(); }
  int moved = 0;
  if (player == 1) {
    int best = -100000;
    for (int i = 0; i < 16; i++) {
      if (board[i] == 0) {
        moved = 1;
        board[i] = 1;
        int v = alphabeta(depth + 1, alpha, beta, 2);
        board[i] = 0;
        if (v > best) { best = v; }
        if (best > alpha) { alpha = best; }
        if (alpha >= beta) { break; }
      }
    }
    if (!moved) { return eval_leaf(); }
    return best;
  }
  int best = 100000;
  for (int i = 0; i < 16; i++) {
    if (board[i] == 0) {
      moved = 1;
      board[i] = 2;
      int v = alphabeta(depth + 1, alpha, beta, 1);
      board[i] = 0;
      if (v < best) { best = v; }
      if (best < beta) { beta = best; }
      if (alpha >= beta) { break; }
    }
  }
  if (!moved) { return eval_leaf(); }
  return best;
}

int main() {
  int seed = input(0);
  for (int i = 0; i < 16; i++) { board[i] = 0; }
  board[(seed * 7) & 15] = 1;
  board[(seed * 13 + 3) & 15] = 2;
  int v = alphabeta(0, -100000, 100000, 1);
  print_int(v);
  print_int(nodes);
  return 0;
}
|}

let libquantum_462 =
  {|
int state_re[1024];
int state_im[1024];
int scratch[1024];

int init_state(int seed) {
  int x = seed;
  for (int i = 0; i < 1024; i++) {
    x = x * 22695477 + 1;
    state_re[i] = (x >> 16) & 255;
    state_im[i] = (x >> 8) & 255;
  }
  return 0;
}

int gate_not(int target) {
  int mask = 1 << target;
  for (int i = 0; i < 1024; i++) { scratch[i] = state_re[i ^ mask]; }
  for (int i = 0; i < 1024; i++) { state_re[i] = scratch[i]; }
  for (int i = 0; i < 1024; i++) { scratch[i] = state_im[i ^ mask]; }
  for (int i = 0; i < 1024; i++) { state_im[i] = scratch[i]; }
  return 0;
}

int gate_phase() {
  // element-wise map with strength-reduction bait: division by constants
  for (int i = 0; i < 1024; i++) {
    state_re[i] = state_re[i] * 3 - state_im[i] / 4;
    state_im[i] = state_im[i] * 3 + state_re[i] / 8;
  }
  for (int i = 0; i < 1024; i++) {
    state_re[i] = state_re[i] % 4096;
    state_im[i] = state_im[i] % 4096;
  }
  return 0;
}

int norm() {
  int acc = 0;
  for (int i = 0; i < 1024; i++) {
    acc += state_re[i] * state_re[i] + state_im[i] * state_im[i];
  }
  return acc;
}

int toffoli_count(int n) {
  // the factorization-flavored control loop
  int count = 0;
  for (int a = 2; a < n; a++) {
    int x = n;
    while (x % a == 0 && x > 1) { x = x / a; count++; }
  }
  return count;
}

int main() {
  init_state(input(0) + 41);
  for (int round = 0; round < 6; round++) {
    gate_not(round % 10);
    gate_phase();
  }
  print_int(norm());
  print_int(toffoli_count(360 + input(0)));
  return 0;
}
|}

let h264ref_464 =
  {|
int frame_a[1024];  // 32x32 row-major
int frame_b[1024];
int block[64];
int coef[64];

int fill(int seed) {
  int x = seed;
  for (int i = 0; i < 1024; i++) {
    x = x * 134775813 + 1;
    frame_a[i] = (x >> 16) & 255;
    frame_b[i] = (frame_a[i] + ((x >> 8) & 7)) & 255;
  }
  return 0;
}

int sad_8x8(int ax, int ay, int bx, int by) {
  int sum = 0;
  for (int r = 0; r < 8; r++) {
    for (int c = 0; c < 8; c++) {
      int d = frame_a[(ay + r) * 32 + ax + c] - frame_b[(by + r) * 32 + bx + c];
      sum += d < 0 ? -d : d;
    }
  }
  return sum;
}

int motion_search() {
  int best = 1000000000;
  int where = 0;
  for (int dy = 0; dy < 4; dy++) {
    for (int dx = 0; dx < 4; dx++) {
      int s = sad_8x8(8, 8, 8 + dx, 8 + dy);
      if (s < best) { best = s; where = dy * 4 + dx; }
    }
  }
  return best * 16 + where;
}

int dct_pass() {
  for (int r = 0; r < 8; r++) {
    for (int c = 0; c < 8; c++) { block[r * 8 + c] = frame_a[r * 32 + c]; }
  }
  // butterfly-ish rows
  for (int r = 0; r < 8; r++) {
    int base = r * 8;
    for (int c = 0; c < 4; c++) {
      int s = block[base + c] + block[base + 7 - c];
      int d = block[base + c] - block[base + 7 - c];
      coef[base + c] = s;
      coef[base + 4 + c] = d * 2;
    }
  }
  int acc = 0;
  for (int i = 0; i < 64; i++) { acc += coef[i] * coef[i] / 16; }
  return acc;
}

int main() {
  fill(input(0) + 7);
  print_int(motion_search());
  print_int(dct_pass());
  return 0;
}
|}

let astar_473 =
  {|
int grid[1024];    // 32x32 costs
int dist[1024];
int open_[1024];
int nopen = 0;

int setup(int seed) {
  int x = seed;
  for (int i = 0; i < 1024; i++) {
    x = x * 1103515245 + 12345;
    grid[i] = ((x >> 16) & 7) + 1;
    dist[i] = 1000000000;
  }
  return 0;
}

int push_open(int p) { open_[nopen] = p; nopen++; return nopen; }

int pop_min() {
  // linear scan frontier (the cache-hostile astar shape)
  int besti = 0;
  for (int i = 1; i < nopen; i++) {
    if (dist[open_[i]] < dist[open_[besti]]) { besti = i; }
  }
  int p = open_[besti];
  nopen--;
  open_[besti] = open_[nopen];
  return p;
}

int relax(int p, int q) {
  if (q < 0 || q >= 1024) { return 0; }
  int nd = dist[p] + grid[q];
  if (nd < dist[q]) {
    dist[q] = nd;
    push_open(q);
    return 1;
  }
  return 0;
}

int main() {
  setup(input(0) + 19);
  dist[0] = 0;
  push_open(0);
  int pops = 0;
  while (nopen > 0 && pops < 4000) {
    int p = pop_min();
    pops++;
    int r = p / 32;
    int c = p % 32;
    if (c > 0) { relax(p, p - 1); }
    if (c < 31) { relax(p, p + 1); }
    if (r > 0) { relax(p, p - 32); }
    if (r < 31) { relax(p, p + 32); }
  }
  print_int(dist[1023]);
  print_int(pops);
  return 0;
}
|}

let xalancbmk_483 =
  {|
int doc[600] = "<root><a x='1'><b>text</b></a><c/><a x='2'><b>more</b><b>here</b></a><d><e><f>deep</f></e></d></root>";
int tag_depth = 0;
int counts[8];

int classify_char(int ch) {
  switch (ch) {
    case '<': return 1;
    case '>': return 2;
    case '/': return 3;
    case '=': return 4;
    case 39:  return 5;
    case ' ': return 6;
    case 0:   return 7;
    case 'a': case 'b': case 'c': case 'd': case 'e': case 'f': case 'g':
    case 'h': case 'i': case 'j': case 'k': case 'l': case 'm': case 'n':
    case 'o': case 'p': case 'q': case 'r': case 's': case 't': case 'u':
    case 'v': case 'w': case 'x': case 'y': case 'z': return 8;
    case '0': case '1': case '2': case '3': case '4':
    case '5': case '6': case '7': case '8': case '9': return 9;
    default: return 10;
  }
}

int tokenize() {
  int i = 0;
  int tokens = 0;
  int maxdepth = 0;
  while (doc[i] != 0 && i < 600) {
    int cls = classify_char(doc[i]);
    counts[cls & 7]++;
    switch (cls) {
      case 1: {
        if (doc[i + 1] == '/') { tag_depth--; i++; }
        else { tag_depth++; }
        tokens++;
        break;
      }
      case 2: tokens++; break;
      case 3: { if (doc[i + 1] == '>') { tag_depth--; } break; }
      case 8: {
        while (classify_char(doc[i]) == 8) { i++; }
        i--;
        tokens++;
        break;
      }
      case 9: {
        int v = 0;
        while (classify_char(doc[i]) == 9) { v = v * 10 + doc[i] - '0'; i++; }
        i--;
        tokens += v;
        break;
      }
      default: break;
    }
    if (tag_depth > maxdepth) { maxdepth = tag_depth; }
    i++;
  }
  return tokens * 100 + maxdepth;
}

int main() {
  int reps = 20 + input(0);
  int acc = 0;
  for (int r = 0; r < reps; r++) {
    tag_depth = 0;
    acc = (acc + tokenize()) & 0xFFFFF;
  }
  print_int(acc);
  for (int i = 0; i < 8; i++) { print_int(counts[i]); }
  return 0;
}
|}
