type suite = Spec2006 | Spec2017 | Coreutils | Openssl | Botnet

type benchmark = {
  bname : string;
  suite : suite;
  source : string;
  workloads : int array list;
}

let suite_name = function
  | Spec2006 -> "SPECint 2006"
  | Spec2017 -> "SPECspeed 2017"
  | Coreutils -> "Coreutils"
  | Openssl -> "OpenSSL"
  | Botnet -> "IoT botnet"

let mk bname suite source workloads = { bname; suite; source; workloads }

let std_workloads = [ [| 0 |]; [| 1 |]; [| 7 |]; [| 13; 4 |] ]

let all =
  [
    mk "400.perlbench" Spec2006 Spec2006.perlbench_400 std_workloads;
    mk "401.bzip2" Spec2006 Spec2006.bzip2_401 std_workloads;
    mk "429.mcf" Spec2006 Spec2006.mcf_429 std_workloads;
    mk "445.gobmk" Spec2006 Spec2006.gobmk_445 std_workloads;
    mk "456.hmmer" Spec2006 Spec2006.hmmer_456 std_workloads;
    mk "458.sjeng" Spec2006 Spec2006.sjeng_458 std_workloads;
    mk "462.libquantum" Spec2006 Spec2006.libquantum_462 std_workloads;
    mk "464.h264ref" Spec2006 Spec2006.h264ref_464 std_workloads;
    mk "473.astar" Spec2006 Spec2006.astar_473 std_workloads;
    mk "483.xalancbmk" Spec2006 Spec2006.xalancbmk_483 std_workloads;
    mk "600.perlbench_s" Spec2017 Spec2017.perlbench_600 std_workloads;
    mk "605.mcf_s" Spec2017 Spec2017.mcf_605 std_workloads;
    mk "620.omnetpp_s" Spec2017 Spec2017.omnetpp_620 std_workloads;
    mk "623.xalancbmk_s" Spec2017 Spec2017.xalancbmk_623 std_workloads;
    mk "625.x264_s" Spec2017 Spec2017.x264_625 std_workloads;
    mk "631.deepsjeng_s" Spec2017 Spec2017.deepsjeng_631 std_workloads;
    mk "641.leela_s" Spec2017 Spec2017.leela_641 std_workloads;
    mk "648.exchange2_s" Spec2017 Spec2017.exchange2_648 std_workloads;
    mk "657.xz_s" Spec2017 Spec2017.xz_657 std_workloads;
    mk "coreutils" Coreutils Apps.coreutils
      [ [| 0; 0 |]; [| 1; 2 |]; [| 5; 9 |]; [| 11; 3 |] ];
    mk "openssl" Openssl Apps.openssl std_workloads;
    mk "lightaidra" Botnet Botnet.lightaidra std_workloads;
    mk "bashlife" Botnet Botnet.bashlife std_workloads;
    mk "mirai" Botnet Botnet.mirai std_workloads;
  ]

let evaluation_set = List.filter (fun b -> b.suite <> Botnet) all

let botnet_set = List.filter (fun b -> b.suite = Botnet) all

let find name = List.find (fun b -> b.bname = name) all

(* mutex-protected: benchmarks are compiled from worker domains under
   the parallel tuning engine, and this cache is the one piece of shared
   mutable state on that path (the cached AST itself is immutable — all
   AST passes return fresh programs) *)
let cache : (string, Minic.Ast.program) Hashtbl.t = Hashtbl.create 24

let cache_mutex = Mutex.create ()

let program b =
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache b.bname with
      | Some p -> p
      | None ->
        let p = Minic.Sema.analyze b.source in
        Hashtbl.replace cache b.bname p;
        p)
