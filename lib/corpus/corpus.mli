(** The benchmark corpus — the reproduction's stand-in for the paper's
    dataset (SPECint CPU2006, SPECspeed 2017 Integer, Coreutils-8.30,
    OpenSSL-1.1.1, and the leaked IoT botnet sources).

    Every benchmark is a MinC program plus the test workloads used for
    functional-correctness checks ("BinTuner's outputs pass the test
    cases shipped with our dataset").  Programs are returned already
    analyzed (parsed, stdlib-linked, checked). *)

type suite = Spec2006 | Spec2017 | Coreutils | Openssl | Botnet

type benchmark = {
  bname : string;  (** e.g. "462.libquantum" *)
  suite : suite;
  source : string;  (** MinC source text *)
  workloads : int array list;  (** test inputs; at least two *)
}

val suite_name : suite -> string

val all : benchmark list
(** Every benchmark, paper order: CPU2006, CPU2017, Coreutils, OpenSSL,
    then the botnet programs. *)

val evaluation_set : benchmark list
(** The 21 programs of the paper's Figure 5 evaluation (everything except
    the botnet programs). *)

val botnet_set : benchmark list
(** LightAidra, BASHLIFE, Mirai — the §5.4 / §2.4 subjects. *)

val find : string -> benchmark
(** Lookup by name.  Raises [Not_found]. *)

val program : benchmark -> Minic.Ast.program
(** Parse + link + check (cached). *)
