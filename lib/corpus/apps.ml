(* Coreutils-8.30 and OpenSSL-1.1.1 stand-ins — the two programs the
   paper uses for the tool-comparison experiments (Figure 8).

   Coreutils is modelled busybox-style: one binary with many small
   applets dispatched on input(0).  Its shape — dozens of small
   single-purpose functions calling shared string helpers — is what makes
   function inlining the dominant flag for it in the paper (Figure 7c).

   OpenSSL is a crypto kernel suite: an MD5-flavoured compression
   function, an RC4-flavoured stream cipher, modular exponentiation, and
   Base64 — mostly straight-line arithmetic over tables, which gives the
   vectorizer and peephole passes their bite. *)

let coreutils =
  {|
int text[256] = "hello world from coreutils this is a line of sample text for the applets to chew on today";
int buf[512];
int sorted[256];

int load_text() {
  int n = 0;
  while (text[n] != 0) { __mem[n] = text[n]; n++; }
  __mem[n] = 0;
  return n;
}

int applet_echo(int n) {
  int sum = 0;
  for (int i = 0; i < n; i++) { print_char(__mem[i]); sum += __mem[i]; }
  print_char(10);
  return sum;
}

int applet_wc(int n) {
  int words = 0;
  int in_word = 0;
  for (int i = 0; i < n; i++) {
    if (__mem[i] == ' ') { in_word = 0; }
    else if (!in_word) { in_word = 1; words++; }
  }
  return words * 1000 + n;
}

int applet_sort(int n) {
  for (int i = 0; i < n; i++) { sorted[i] = __mem[i]; }
  // insertion sort, the classic small-utility loop
  for (int i = 1; i < n; i++) {
    int key = sorted[i];
    int j = i - 1;
    while (j >= 0 && sorted[j] > key) {
      sorted[j + 1] = sorted[j];
      j--;
    }
    sorted[j + 1] = key;
  }
  int check = 0;
  for (int i = 0; i < n; i++) { check = check * 31 + sorted[i]; }
  return check & 0xFFFFFF;
}

int applet_uniq(int n) {
  int distinct = 0;
  int last = -1;
  for (int i = 0; i < n; i++) {
    if (sorted[i] != last) { distinct++; last = sorted[i]; }
  }
  return distinct;
}

int applet_tr(int n) {
  // rot13 letters in place
  for (int i = 0; i < n; i++) {
    int ch = __mem[i];
    if (ch >= 'a' && ch <= 'z') {
      ch = (ch - 'a' + 13) % 26 + 'a';
    }
    __mem[i] = ch;
  }
  int check = 0;
  for (int i = 0; i < n; i++) { check = check * 33 + __mem[i]; }
  return check & 0xFFFFFF;
}

int applet_seq(int k) {
  int sum = 0;
  for (int i = 1; i <= k; i++) { sum += i; }
  return sum;
}

int applet_factor(int v) {
  int sig = 0;
  int x = v;
  int d = 2;
  while (d * d <= x) {
    while (x % d == 0) { sig = sig * 10 + d % 10; x = x / d; }
    d++;
  }
  if (x > 1) { sig = sig * 10 + x % 10; }
  return sig;
}

int applet_cksum(int n) {
  int crc = 0;
  for (int i = 0; i < n; i++) {
    crc = crc ^ (__mem[i] << 8);
    for (int b = 0; b < 8; b++) {
      if (crc & 0x8000) { crc = (crc << 1) ^ 0x1021; }
      else { crc = crc << 1; }
      crc = crc & 0xFFFF;
    }
  }
  return crc;
}

int applet_head(int n, int k) {
  int check = 0;
  int lim = min_(n, k);
  for (int i = 0; i < lim; i++) { check += __mem[i] * (i + 1); }
  return check;
}

int applet_tail(int n, int k) {
  int check = 0;
  int start = max_(0, n - k);
  for (int i = start; i < n; i++) { check += __mem[i] * (i - start + 1); }
  return check;
}

int applet_cut(int n) {
  // fields 2 and 4, space-delimited
  int field = 1;
  int check = 0;
  for (int i = 0; i < n; i++) {
    if (__mem[i] == ' ') { field++; }
    else if (field == 2 || field == 4) { check = check * 37 + __mem[i]; }
  }
  return check & 0xFFFFFF;
}

int applet_yes(int k) {
  int acc = 0;
  for (int i = 0; i < k; i++) { acc = acc * 2 + 'y'; acc = acc & 0xFFFFF; }
  return acc;
}

int dispatch(int which, int n, int arg) {
  switch (which % 12) {
    case 0: return applet_echo(n);
    case 1: return applet_wc(n);
    case 2: return applet_sort(n);
    case 3: return applet_uniq(n);
    case 4: return applet_tr(n);
    case 5: return applet_seq(arg + 50);
    case 6: return applet_factor(arg * 91 + 1234);
    case 7: return applet_cksum(n);
    case 8: return applet_head(n, arg + 5);
    case 9: return applet_tail(n, arg + 7);
    case 10: return applet_cut(n);
    default: return applet_yes(arg + 20);
  }
}

int main() {
  int n = load_text();
  int acc = 0;
  for (int a = 0; a < 12; a++) {
    acc = (acc + dispatch(a + input(0), n, a + input(1))) & 0xFFFFFFF;
  }
  print_int(acc);
  return 0;
}
|}

let openssl =
  {|
int md_state[4];
int sine[16] = {3614090360, 3905402710, 606105819, 3250441966,
                4118548399, 1200080426, 2821735955, 4249261313,
                1770035416, 2336552879, 4294925233, 2304563134,
                1804603682, 4254626195, 2792965006, 1236535329};
int sbox[256];
int keybuf[16];
int msg[64];

int rotl(int x, int n) {
  int lo = x & 0xFFFFFFFF;
  return ((lo << n) | (lo >> (32 - n))) & 0xFFFFFFFF;
}

int md_round(int blocks) {
  md_state[0] = 0x67452301;
  md_state[1] = 0xefcdab89;
  md_state[2] = 0x98badcfe;
  md_state[3] = 0x10325476;
  for (int blk = 0; blk < blocks; blk++) {
    int a = md_state[0];
    int b = md_state[1];
    int c = md_state[2];
    int d = md_state[3];
    for (int i = 0; i < 32; i++) {
      int f = (b & c) | (~b & d);
      int g = (i * 5 + blk) & 15;
      int tmp = d;
      d = c;
      c = b;
      b = (b + rotl(a + f + sine[i & 15] + msg[(blk * 16 + g) & 63], (i & 3) * 5 + 7)) & 0xFFFFFFFF;
      a = tmp;
    }
    md_state[0] = (md_state[0] + a) & 0xFFFFFFFF;
    md_state[1] = (md_state[1] + b) & 0xFFFFFFFF;
    md_state[2] = (md_state[2] + c) & 0xFFFFFFFF;
    md_state[3] = (md_state[3] + d) & 0xFFFFFFFF;
  }
  return md_state[0] ^ md_state[1] ^ md_state[2] ^ md_state[3];
}

int rc4_setup(int keylen) {
  for (int i = 0; i < 256; i++) { sbox[i] = i; }
  int j = 0;
  for (int i = 0; i < 256; i++) {
    j = (j + sbox[i] + keybuf[i % keylen]) & 255;
    int t = sbox[i];
    sbox[i] = sbox[j];
    sbox[j] = t;
  }
  return 0;
}

int rc4_stream(int n) {
  int i = 0;
  int j = 0;
  int acc = 0;
  for (int k = 0; k < n; k++) {
    i = (i + 1) & 255;
    j = (j + sbox[i]) & 255;
    int t = sbox[i];
    sbox[i] = sbox[j];
    sbox[j] = t;
    acc = (acc * 257 + sbox[(sbox[i] + sbox[j]) & 255]) & 0xFFFFFF;
  }
  return acc;
}

int mod_pow(int base, int exp, int modulus) {
  int result = 1;
  base = base % modulus;
  while (exp > 0) {
    if (exp & 1) { result = result * base % modulus; }
    exp = exp >> 1;
    base = base * base % modulus;
  }
  return result;
}

int base64_encode(int src, int n, int dst) {
  int i = 0;
  int o = dst;
  while (i + 2 < n) {
    int v = (__mem[src + i] << 16) | (__mem[src + i + 1] << 8) | __mem[src + i + 2];
    __mem[o] = (v >> 18) & 63; o++;
    __mem[o] = (v >> 12) & 63; o++;
    __mem[o] = (v >> 6) & 63; o++;
    __mem[o] = v & 63; o++;
    i += 3;
  }
  __mem[o] = 0;
  return o - dst;
}

int main() {
  int seed = input(0) + 13;
  for (int i = 0; i < 64; i++) { msg[i] = (seed * (i + 3) * 2654435761) & 0xFFFFFFFF; }
  for (int i = 0; i < 16; i++) { keybuf[i] = (seed * 31 + i * 7) & 255; }
  print_int(md_round(4));
  rc4_setup(16);
  print_int(rc4_stream(512));
  print_int(mod_pow(seed + 5, 65537, 1000003));
  for (int i = 0; i < 48; i++) { __mem[200 + i] = (seed + i * 11) & 255; }
  int m = base64_encode(200, 48, 300);
  int check = 0;
  for (int i = 0; i < m; i++) { check = check * 67 + __mem[300 + i]; }
  print_int(check & 0xFFFFFF);
  return 0;
}
|}
