(* Benign stand-ins for the IoT botnet programs of the paper's §5.4
   (LightAidra, BASHLIFE) and the §2.4 Mirai provenance study.

   Only the code *shape* matters for the detection / provenance
   experiments: configuration-string tables in the data section, a
   pseudo-random address scanner loop, a command dispatcher, and a
   credential-list walker.  Nothing here performs any I/O beyond the
   VX output buffer — the VX ISA has no network or filesystem at all. *)

let lightaidra =
  {|
int cfg_server[32] = "irc.example.invalid:6667";
int cfg_channel[12] = "#aidra";
int cfg_nick[12] = "aidra-bot";
int cred_user[64] = "admin root user guest admin support tech default";
int scan_hits[32];
int rngx = 0;

int rnd() { rngx = rngx * 1103515245 + 12345; return (rngx >> 16) & 0x7FFF; }

int checksum_config() {
  int h = 0;
  for (int i = 0; cfg_server[i] != 0; i++) { h = h * 131 + cfg_server[i]; }
  for (int i = 0; cfg_channel[i] != 0; i++) { h = h * 131 + cfg_channel[i]; }
  for (int i = 0; cfg_nick[i] != 0; i++) { h = h * 131 + cfg_nick[i]; }
  return h & 0xFFFFFF;
}

int make_address() {
  // classic class-range scanner: synthesize a dotted quad
  int a = rnd() % 223 + 1;
  int b = rnd() % 255;
  int c = rnd() % 255;
  int d = rnd() % 254 + 1;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

int probe(int addr) {
  // a fake reachability predicate over the address bits
  int x = addr;
  x = x ^ (x >> 13);
  x = x * 2057 & 0xFFFFFF;
  return (x & 63) == 7;
}

int try_credentials(int addr) {
  int attempts = 0;
  int i = 0;
  while (cred_user[i] != 0) {
    int h = addr;
    while (cred_user[i] != 0 && cred_user[i] != ' ') {
      h = h * 31 + cred_user[i];
      i++;
    }
    attempts++;
    if ((h & 255) == 13) { return attempts; }
    if (cred_user[i] == ' ') { i++; }
  }
  return -attempts;
}

int scan_loop(int budget) {
  int found = 0;
  for (int k = 0; k < budget; k++) {
    int addr = make_address();
    if (probe(addr)) {
      if (found < 32) { scan_hits[found] = addr; }
      found++;
      try_credentials(addr);
    }
  }
  return found;
}

int handle_command(int cmd, int arg) {
  switch (cmd) {
    case 1: return scan_loop(arg);
    case 2: return checksum_config();
    case 3: { rngx = arg; return 0; }
    case 4: { int s = 0; for (int i = 0; i < 32; i++) { s += scan_hits[i] & 255; } return s; }
    case 5: return make_address() & 0xFFFF;
    default: return -1;
  }
}

int main() {
  rngx = input(0) + 424242;
  int acc = 0;
  acc += handle_command(2, 0);
  acc += handle_command(1, 600);
  acc += handle_command(4, 0);
  acc += handle_command(5, 0);
  print_int(acc & 0xFFFFFFF);
  return 0;
}
|}

let bashlife =
  {|
int payload_stub[20] = "GET /shell?cd+/tmp";
int agents[40] = "curl wget tftp ftpget busybox";
int targets[512];
int ntargets = 0;
int rngx = 0;

int rnd() { rngx = rngx * 2862933555777941757 + 1442695040888963407; return (rngx >> 33) & 0x7FFFFFFF; }

int build_request(int dst, int host) {
  int n = 0;
  for (int i = 0; payload_stub[i] != 0; i++) { __mem[dst + n] = payload_stub[i]; n++; }
  __mem[dst + n] = '0' + host % 10; n++;
  __mem[dst + n] = 0;
  return n;
}

int pick_agent(int which) {
  int i = 0;
  int idx = 0;
  while (agents[i] != 0 && idx < which) {
    if (agents[i] == ' ') { idx++; }
    i++;
  }
  int h = 0;
  while (agents[i] != 0 && agents[i] != ' ') { h = h * 37 + agents[i]; i++; }
  return h & 0xFFFF;
}

int enqueue_targets(int n) {
  for (int k = 0; k < n && ntargets < 512; k++) {
    int t = rnd() & 0xFFFFFF;
    // dedupe scan targets: linear membership test
    int seen = 0;
    for (int i = 0; i < ntargets; i++) {
      if (targets[i] == t) { seen = 1; break; }
    }
    if (!seen) { targets[ntargets] = t; ntargets++; }
  }
  return ntargets;
}

int flood_simulation(int rounds) {
  // shape of the traffic generator: tight checksum loop over a buffer
  int acc = 0;
  for (int r = 0; r < rounds; r++) {
    int n = build_request(50, r);
    for (int i = 0; i < n; i++) { acc = (acc + __mem[50 + i] * (r + 1)) & 0xFFFFF; }
  }
  return acc;
}

int main() {
  rngx = input(0) + 777;
  enqueue_targets(300);
  int acc = ntargets;
  acc += pick_agent(input(0) % 5);
  acc += flood_simulation(40);
  int sum = 0;
  for (int i = 0; i < ntargets; i += 4) { sum += targets[i] & 1023; }
  print_int(acc);
  print_int(sum);
  return 0;
}
|}

let mirai =
  {|
int table_keys[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
int table_vals[256];
int cred_pairs[96] = "root:xc3511 root:vizxv admin:admin root:888888 support:support";
int state = 0;
int rngx = 0;

int rnd() { rngx = rngx * 1103515245 + 12345; return (rngx >> 16) & 0x7FFF; }

int table_init(int seed) {
  for (int i = 0; i < 256; i++) {
    table_vals[i] = (seed * (i + 1) * 2654435761) & 0xFFFF;
  }
  return 0;
}

int table_retrieve(int key) {
  // the famous mirai obfuscated config table: xor-decode on access
  int v = table_vals[key & 255];
  return v ^ 0xDEAD & 0xFFFF;
}

int scanner_next() {
  int ip = rnd() << 16 | rnd();
  // skip reserved ranges, mirai-style
  int a = (ip >> 24) & 255;
  if (a == 127 || a == 0 || a == 10 || a >= 224) { return 0; }
  return ip;
}

int telnet_state_machine(int ip) {
  int st = 0;
  int tries = 0;
  int i = 0;
  while (st != 5 && tries < 12) {
    switch (st) {
      case 0: st = (ip & 7) == 3 ? 1 : 0; tries++; if (tries > 6 && st == 0) { return 0; } break;
      case 1: { // pick credential pair
        int h = 0;
        while (cred_pairs[i] != 0 && cred_pairs[i] != ' ') { h = h * 41 + cred_pairs[i]; i++; }
        if (cred_pairs[i] == ' ') { i++; }
        else { i = 0; }
        st = (h & 15) == 5 ? 3 : 2;
        break;
      }
      case 2: st = 1; tries++; break;
      case 3: st = 4; break;
      case 4: st = 5; break;
      default: st = 5; break;
    }
  }
  return st == 5 ? 1 : 0;
}

int attack_udp_shape(int rounds) {
  int acc = 0;
  for (int r = 0; r < rounds; r++) {
    int pkt = table_retrieve(r) ^ rnd();
    acc = (acc + (pkt & 1023)) & 0xFFFFF;
  }
  return acc;
}

int main() {
  rngx = input(0) + 31337;
  table_init(input(0) + 9);
  int infected = 0;
  for (int k = 0; k < 400; k++) {
    int ip = scanner_next();
    if (ip != 0 && telnet_state_machine(ip)) { infected++; }
  }
  state = attack_udp_shape(200);
  print_int(infected);
  print_int(state);
  print_int(table_retrieve(42));
  return 0;
}
|}
