open Isa.Insn

type result = {
  output : Vir.Interp.output_item list;
  return_value : int;
  steps : int;
}

exception Trap of string

exception Out_of_fuel

let trapf fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let eval_alu op a b =
  match op with
  | Aadd -> a + b
  | Asub -> a - b
  | Amul -> a * b
  | Adiv -> if b = 0 then 0 else a / b
  | Amod -> if b = 0 then 0 else a mod b
  | Aand -> a land b
  | Aor -> a lor b
  | Axor -> a lxor b
  | Ashl -> a lsl (b land 63)
  | Ashr -> a asr (b land 63)

let cond_holds c a b =
  match c with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let sentinel = -1

let run_function ?(fuel = 100_000_000) ?(stack_words = 1 lsl 20)
    (bin : Isa.Binary.t) ~fid ~args ~input =
  let insns = Array.of_list (Isa.Codec.decode_all bin.arch bin.text) in
  let index_of_offset = Hashtbl.create (Array.length insns) in
  Array.iteri
    (fun i (off, _) -> Hashtbl.replace index_of_offset off i)
    insns;
  let goto off =
    match Hashtbl.find_opt index_of_offset off with
    | Some i -> i
    | None -> trapf "jump to unaligned offset %#x" off
  in
  let regs = Array.make 16 0 in
  let vregs = Array.init 8 (fun _ -> Array.make 4 0) in
  let data = Array.copy bin.data_words in
  let stack = Array.make stack_words 0 in
  let flag_a = ref 0 and flag_b = ref 0 in
  let out_rev = ref [] in
  let steps = ref 0 in
  let fuel = ref fuel in
  (* arguments for the entry function are pushed below the sentinel
     return address, matching the calling convention *)
  let nargs = List.length args in
  List.iteri (fun i v -> stack.(stack_words - 1 - i) <- v) args;
  regs.(Isa.Insn.sp) <- stack_words - 1 - nargs;
  stack.(stack_words - 1 - nargs) <- sentinel;
  let operand = function Oreg r -> regs.(r) | Oimm n -> n in
  let stack_at addr =
    if addr < 0 || addr >= stack_words then trapf "stack access at %d" addr;
    addr
  in
  let data_at addr =
    if addr < 0 || addr >= Array.length data then
      trapf "data access at %d" addr;
    addr
  in
  let push v =
    let sp' = regs.(Isa.Insn.sp) - 1 in
    if sp' < 0 then trapf "stack overflow";
    regs.(Isa.Insn.sp) <- sp';
    stack.(sp') <- v
  in
  let pop () =
    let sp' = regs.(Isa.Insn.sp) in
    if sp' >= stack_words then trapf "stack underflow";
    regs.(Isa.Insn.sp) <- sp' + 1;
    stack.(sp')
  in
  let frame_addr base off idx =
    let b =
      match base with
      | FP_rel -> regs.(Isa.Insn.fp)
      | SP_rel -> regs.(Isa.Insn.sp)
    in
    b + off + idx
  in
  let sym_base s =
    if s < 0 || s >= Array.length bin.symbols then trapf "bad symbol %d" s;
    let _, base, _ = bin.symbols.(s) in
    base
  in
  let entry_of fid =
    if fid < 0 || fid >= Array.length bin.functions then
      trapf "bad function id %d" fid;
    let _, addr, _ = bin.functions.(fid) in
    addr
  in
  let pc = ref (goto (entry_of fid)) in
  let running = ref true in
  while !running do
    if !fuel <= 0 then raise Out_of_fuel;
    decr fuel;
    incr steps;
    if !pc < 0 || !pc >= Array.length insns then trapf "pc out of text";
    let _, insn = insns.(!pc) in
    let next = !pc + 1 in
    (match insn with
    | Imov (d, s) ->
      regs.(d) <- operand s;
      pc := next
    | Ialu (op, d, a, b) ->
      regs.(d) <- eval_alu op regs.(a) (operand b);
      pc := next
    | Ineg (d, a) ->
      regs.(d) <- -regs.(a);
      pc := next
    | Inot (d, a) ->
      regs.(d) <- lnot regs.(a);
      pc := next
    | Icmp (a, b) ->
      flag_a := regs.(a);
      flag_b := operand b;
      pc := next
    | Itest (a, b) ->
      flag_a := regs.(a) land regs.(b);
      flag_b := 0;
      pc := next
    | Isetcc (c, d) ->
      regs.(d) <- (if cond_holds c !flag_a !flag_b then 1 else 0);
      pc := next
    | Icmov (c, d, s) ->
      if cond_holds c !flag_a !flag_b then regs.(d) <- operand s;
      pc := next
    | Ijmp t -> pc := goto t
    | Ijcc (c, t) ->
      if cond_holds c !flag_a !flag_b then pc := goto t else pc := next
    | Ijtab (r, targets) ->
      let idx = regs.(r) in
      let n = List.length targets in
      if idx < 0 || idx >= n then trapf "jump table index %d of %d" idx n;
      pc := goto (List.nth targets idx)
    | Iloop (r, t) ->
      regs.(r) <- regs.(r) - 1;
      if regs.(r) <> 0 then pc := goto t else pc := next
    | Ild (d, s, i) ->
      regs.(d) <- data.(data_at (sym_base s + operand i));
      pc := next
    | Ist (s, i, v) ->
      data.(data_at (sym_base s + operand i)) <- operand v;
      pc := next
    | Ildf (d, base, off, i) ->
      regs.(d) <- stack.(stack_at (frame_addr base off (operand i)));
      pc := next
    | Istf (base, off, i, v) ->
      stack.(stack_at (frame_addr base off (operand i))) <- operand v;
      pc := next
    | Ipush s ->
      push (operand s);
      pc := next
    | Ipop d ->
      regs.(d) <- pop ();
      pc := next
    | Icall fid ->
      let _, ret_off = insns.(!pc) |> fun (off, i) -> (i, off) in
      ignore ret_off;
      let return_to =
        if next < Array.length insns then fst insns.(next)
        else String.length bin.text
      in
      push return_to;
      pc := goto (entry_of fid)
    | Icallr r ->
      let return_to =
        if next < Array.length insns then fst insns.(next)
        else String.length bin.text
      in
      push return_to;
      pc := goto regs.(r)
    | Ila (d, fid) ->
      regs.(d) <- entry_of fid;
      pc := next
    | Iret ->
      let return_to = pop () in
      if return_to = sentinel then running := false else pc := goto return_to
    | Ijmpf fid -> pc := goto (entry_of fid)
    | Ivld (d, s, i) ->
      let base = sym_base s + operand i in
      for k = 0 to 3 do
        vregs.(d).(k) <- data.(data_at (base + k))
      done;
      pc := next
    | Ivst (s, i, v) ->
      let base = sym_base s + operand i in
      for k = 0 to 3 do
        data.(data_at (base + k)) <- vregs.(v).(k)
      done;
      pc := next
    | Ivalu (op, d, a, b) ->
      for k = 0 to 3 do
        vregs.(d).(k) <- eval_alu op vregs.(a).(k) vregs.(b).(k)
      done;
      pc := next
    | Ivsplat (d, s) ->
      let v = operand s in
      for k = 0 to 3 do
        vregs.(d).(k) <- v
      done;
      pc := next
    | Ivpack (d, a, b, c, e) ->
      vregs.(d).(0) <- operand a;
      vregs.(d).(1) <- operand b;
      vregs.(d).(2) <- operand c;
      vregs.(d).(3) <- operand e;
      pc := next
    | Ivred (op, d, v) ->
      let x = vregs.(v) in
      regs.(d) <- eval_alu op (eval_alu op x.(0) x.(1)) (eval_alu op x.(2) x.(3));
      pc := next
    | Ivldf (d, base, off, i) ->
      let a = frame_addr base off (operand i) in
      for k = 0 to 3 do
        vregs.(d).(k) <- stack.(stack_at (a + k))
      done;
      pc := next
    | Ivstf (base, off, i, v) ->
      let a = frame_addr base off (operand i) in
      for k = 0 to 3 do
        stack.(stack_at (a + k)) <- vregs.(v).(k)
      done;
      pc := next
    | Iprint s ->
      out_rev := Vir.Interp.Out_int (operand s) :: !out_rev;
      pc := next
    | Iprintc s ->
      out_rev := Vir.Interp.Out_char (operand s) :: !out_rev;
      pc := next
    | Iread (d, i) ->
      let idx = operand i in
      regs.(d) <-
        (if idx >= 0 && idx < Array.length input then input.(idx) else 0);
      pc := next
    | Ilen d ->
      regs.(d) <- Array.length input;
      pc := next
    | Inop -> pc := next
    | Iinc r ->
      regs.(r) <- regs.(r) + 1;
      pc := next
    | Idec r ->
      regs.(r) <- regs.(r) - 1;
      pc := next
    | Ixorz r ->
      regs.(r) <- 0;
      pc := next)
  done;
  {
    output = List.rev !out_rev;
    return_value = regs.(bin.ret_reg);
    steps = !steps;
  }

let run ?fuel ?stack_words (bin : Isa.Binary.t) ~input =
  run_function ?fuel ?stack_words bin ~fid:bin.entry ~args:[] ~input
