(** The VX virtual machine: executes compiled binaries.

    Machine model: 16 global general registers (R13 = stack pointer), 8
    vector registers, a flags word set only by [Icmp]/[Itest], a flat
    word-addressed data memory initialized from the binary's data
    section, and a word-addressed stack used by push/pop/call/ret and
    frame accesses.

    The VM is the ground truth for functional correctness: every tuned
    binary must produce the same output stream and exit value as the -O0
    binary on the program's test workloads (the paper's "all of
    BinTuner's outputs pass the test cases" check).  It also counts
    dynamic instructions, which Table 3's speedup comparison uses. *)

type result = {
  output : Vir.Interp.output_item list;
  return_value : int;
  steps : int;  (** dynamic instruction count *)
}

exception Trap of string
(** Invalid memory access, bad jump target, stack overflow, division
    handled per MinC semantics (never traps). *)

exception Out_of_fuel

val run :
  ?fuel:int -> ?stack_words:int -> Isa.Binary.t -> input:int array -> result
(** Execute from the binary's entry function.  Default fuel 100 million
    instructions, default stack 1 Mi words. *)

val run_function :
  ?fuel:int ->
  ?stack_words:int ->
  Isa.Binary.t ->
  fid:int ->
  args:int list ->
  input:int array ->
  result
(** Call an arbitrary function with the given stack arguments against the
    binary's initial data image — the entry point used by the IMF-SIM
    reproduction's in-memory fuzzing. *)
