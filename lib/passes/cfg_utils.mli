(** Control-flow analyses shared by the IR-level passes. *)

module Iset = Analysis.Dataflow.Iset

val reachable : Vir.Ir.func -> Iset.t
(** Labels reachable from the entry block. *)

val dominators : Vir.Ir.func -> (int, Iset.t) Hashtbl.t
(** [dominators f] maps each reachable label to the set of labels that
    dominate it (including itself).  Iterative dataflow. *)

type loop = {
  header : int;
  body : Iset.t;  (** all labels in the natural loop, including header *)
  back_edges : int list;  (** sources of the latch edges *)
}

val natural_loops : Vir.Ir.func -> loop list
(** Natural loops from back edges (target dominates source).  Loops with
    the same header are merged.  Ordered innermost-first (by body size). *)

val block_order_dfs : Vir.Ir.func -> int list
(** Reverse-postorder labels from entry — the canonical layout used by the
    block-reordering pass. *)
