(** Sparse conditional constant propagation (-fsccp / -ftree-ccp).

    Built on the {!Analysis.Dataflow.Constprop} lattice for operand
    substitution and folding, with the {!Analysis.Dataflow.Interval}
    instance pruning statically-false branches and provably-dead switch
    arms the constant lattice cannot decide. *)

type stats = {
  folds : int;  (** instructions or terminators rewritten this round *)
  pruned_edges : (int * int) list;
      (** CFG edges (source label, former target label) removed this
          round — every one is justified by the analysis facts at the
          source block, which tests cross-check independently *)
}

val transform : Vir.Ir.func -> stats
(** One monotone rewrite round: solve both analyses, substitute constant
    operands, fold fully-constant pure instructions to [Mov], fold
    decided branches/switches.  No CFG cleanup — labels are stable, so
    pruned edges can be checked against the pre-pass function. *)

val run : Vir.Ir.func -> unit
(** Iterate {!transform} with {!Cleanup.simplify_cfg} + {!Cleanup.dce}
    between rounds until nothing changes (pruning sharpens joins, which
    can expose further constants).  Idempotent.  Fires the
    [pass.sccp.folds] and [pass.sccp.pruned_edges] telemetry counters. *)
