open Vir.Ir
module Iset = Analysis.Dataflow.Iset

(* Global value numbering over the dominator tree.

   A pure expression (Bin/Un/Select) whose operands are immediates or
   single-definition registers gets a canonical key; a later instruction
   in a dominated position computing the same key is replaced by a copy
   from the first computation's destination.  Replacement is 1-for-1
   ([Mov] for the original), so the pass never grows the instruction
   count.

   Soundness does not assume SSA — only single *static* definitions:
   - a key is registered only where every register operand's definition
     has already been seen on the current dominator-tree path, so the
     operands' reads at the two sites observe the same (post-definition)
     values;
   - registers mutated by a [Loop_branch] terminator are never
     single-definition (the decrement is a def the instruction stream
     doesn't show);
   - an instruction reading its own destination is skipped outright. *)

type ekey =
  | Kbin of binop * operand * operand
  | Kun of unop * operand
  | Ksel of operand * operand * operand

let commutative = function
  | Add | Mul | And | Or | Xor | Seq | Sne -> true
  | Sub | Div | Mod | Shl | Shr | Slt | Sle | Sgt | Sge -> false

(* Static definition counts: instruction defs, an implicit def at entry
   for every parameter, and two for any [Loop_branch] counter so it can
   never look single-definition. *)
let def_counts f =
  let t = Hashtbl.create 64 in
  let bump r n =
    Hashtbl.replace t r (n + try Hashtbl.find t r with Not_found -> 0)
  in
  List.iter (fun p -> bump p 1) f.params;
  List.iter
    (fun b ->
      List.iter
        (fun i -> match instr_def i with Some d -> bump d 1 | None -> ())
        b.instrs;
      match b.term with Loop_branch (r, _, _) -> bump r 2 | _ -> ())
    f.blocks;
  t

let run f =
  let dom = Cfg_utils.dominators f in
  let counts = def_counts f in
  let single_def r = Hashtbl.find_opt counts r = Some 1 in
  let entry = match f.blocks with b :: _ -> b.label | [] -> -1 in
  (* children in the dominator tree: idom(l) is the strict dominator of l
     with the largest dominator set (strict dominators of a node are
     totally ordered, so the maximum is unique) *)
  let children = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l doms ->
      if l <> entry then begin
        let card x =
          match Hashtbl.find_opt dom x with
          | Some s -> Iset.cardinal s
          | None -> 0
        in
        let idom =
          Iset.fold
            (fun d best ->
              match best with
              | Some b when card b >= card d -> best
              | _ -> Some d)
            (Iset.remove l doms) None
        in
        match idom with
        | Some p ->
          Hashtbl.replace children p
            (l :: (try Hashtbl.find children p with Not_found -> []))
        | None -> ()
      end)
    dom;
  let block_of = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_of b.label b) f.blocks;
  let table : (ekey, int) Hashtbl.t = Hashtbl.create 64 in
  (* registers whose (unique) definition lies on the dominator-tree path
     above the current program point; parameters are defined at entry *)
  let defined = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace defined p ()) f.params;
  let key_of i =
    let ok d o =
      match o with
      | Imm _ -> true
      | Reg r -> r <> d && single_def r && Hashtbl.mem defined r
    in
    match i with
    | Bin (op, d, a, b) when ok d a && ok d b ->
      let a, b =
        if commutative op && compare b a < 0 then (b, a) else (a, b)
      in
      Some (d, Kbin (op, a, b))
    | Un (op, d, a) when ok d a -> Some (d, Kun (op, a))
    | Select (d, c, a, b) when ok d c && ok d a && ok d b ->
      Some (d, Ksel (c, a, b))
    | _ -> None
  in
  let replaced = ref 0 in
  let rec visit l =
    match Hashtbl.find_opt block_of l with
    | None -> ()
    | Some b ->
      let added_keys = ref [] in
      let added_defs = ref [] in
      b.instrs <-
        List.map
          (fun i ->
            let i =
              match key_of i with
              | Some (d, k) -> (
                match Hashtbl.find_opt table k with
                | Some rep when rep <> d ->
                  incr replaced;
                  Mov (d, Reg rep)
                | Some _ -> i
                | None ->
                  if single_def d then begin
                    Hashtbl.add table k d;
                    added_keys := k :: !added_keys
                  end;
                  i)
              | None -> i
            in
            (match instr_def i with
            | Some d when not (Hashtbl.mem defined d) ->
              Hashtbl.replace defined d ();
              added_defs := d :: !added_defs
            | _ -> ());
            i)
          b.instrs;
      List.iter visit
        (List.sort compare
           (try Hashtbl.find children l with Not_found -> []));
      List.iter (fun k -> Hashtbl.remove table k) !added_keys;
      List.iter (fun d -> Hashtbl.remove defined d) !added_defs
  in
  if f.blocks <> [] then visit entry;
  if !replaced > 0 then Telemetry.add_count ~by:!replaced "pass.gvn.replaced"
