open Vir.Ir
module Iset = Cfg_utils.Iset

(* ------------------------------------------------------------------ *)
(* simplify_cfg                                                        *)
(* ------------------------------------------------------------------ *)

let remove_unreachable f =
  let reach = Cfg_utils.reachable f in
  f.blocks <- List.filter (fun b -> Iset.mem b.label reach) f.blocks

(* Fold trivial branches: constant condition, equal targets. *)
let fold_branches f =
  List.iter
    (fun b ->
      match b.term with
      | Br (Imm c, t, e) -> b.term <- Jmp (if c <> 0 then t else e)
      | Br (c, t, e) when t = e ->
        ignore c;
        b.term <- Jmp t
      | Switch (Imm v, cases, default) ->
        let target =
          match List.assoc_opt v cases with Some l -> l | None -> default
        in
        b.term <- Jmp target
      | Switch (v, [], default) ->
        ignore v;
        b.term <- Jmp default
      | Ret _ | Jmp _ | Br _ | Switch _ | Tail_call _ | Loop_branch _ -> ())
    f.blocks

(* Thread jumps through empty blocks: an empty block whose terminator is
   [Jmp l] can be bypassed. *)
let thread_jumps f =
  let empty_target = Hashtbl.create 8 in
  List.iter
    (fun b ->
      match (b.instrs, b.term) with
      | [], Jmp l when l <> b.label -> Hashtbl.replace empty_target b.label l
      | _ -> ())
    f.blocks;
  (* resolve chains, guarding against cycles *)
  let rec resolve seen l =
    match Hashtbl.find_opt empty_target l with
    | Some next when not (List.mem next seen) -> resolve (l :: seen) next
    | Some _ | None -> l
  in
  let changed = ref false in
  List.iter
    (fun b ->
      let g l =
        let l' = resolve [] l in
        if l' <> l then changed := true;
        l'
      in
      b.term <- map_targets g b.term)
    f.blocks;
  !changed

(* Merge a block with its unique successor when that successor has a
   unique predecessor. *)
let merge_chains f =
  let preds = predecessors f in
  let entry = (entry_block f).label in
  let changed = ref false in
  let by_label = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_label b.label b) f.blocks;
  let removed = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if not (Hashtbl.mem removed b.label) then begin
        (* collect the whole single-predecessor chain, then concatenate
           the instruction segments once (appending per hop is quadratic
           on the long chains unrolling produces) *)
        let segments = ref [] in
        let rec absorb term =
          match term with
          | Jmp l when l <> entry && l <> b.label && not (Hashtbl.mem removed l)
            -> (
            match Hashtbl.find_opt preds l with
            | Some [ _ ] -> (
              match Hashtbl.find_opt by_label l with
              | Some succ ->
                segments := succ.instrs :: !segments;
                Hashtbl.replace removed l ();
                changed := true;
                absorb succ.term
              | None -> term)
            | Some _ | None -> term)
          | Ret _ | Jmp _ | Br _ | Switch _ | Tail_call _ | Loop_branch _ ->
            term
        in
        let final_term = absorb b.term in
        if !segments <> [] then begin
          b.instrs <- List.concat (b.instrs :: List.rev !segments);
          b.term <- final_term
        end
      end)
    f.blocks;
  f.blocks <- List.filter (fun b -> not (Hashtbl.mem removed b.label)) f.blocks;
  !changed

let simplify_cfg f =
  let continue_ = ref true in
  while !continue_ do
    remove_unreachable f;
    fold_branches f;
    let c1 = thread_jumps f in
    remove_unreachable f;
    let c2 = merge_chains f in
    continue_ := c1 || c2
  done

(* ------------------------------------------------------------------ *)
(* mem2reg                                                             *)
(* ------------------------------------------------------------------ *)

let mem2reg f =
  if f.nslots > 0 then begin
    let slot_reg = Array.init f.nslots (fun _ -> fresh_reg f) in
    let rewrite = function
      | Slot_load (d, s) -> Mov (d, Reg slot_reg.(s))
      | Slot_store (s, v) -> Mov (slot_reg.(s), v)
      | i -> i
    in
    List.iter (fun b -> b.instrs <- List.map rewrite b.instrs) f.blocks;
    f.nslots <- 0
  end

(* ------------------------------------------------------------------ *)
(* Local value numbering                                               *)
(* ------------------------------------------------------------------ *)

(* Keys for available expressions.  Loads are keyed by array name and
   index operand; they are invalidated by stores to the same array and,
   for globals, by calls. *)
type expr_key =
  | Kbin of binop * operand * operand
  | Kun of unop * operand
  | Kload of string * operand
  | Kslot of int
  | Kselect of operand * operand * operand

let commutative = function
  | Add | Mul | And | Or | Xor | Seq | Sne -> true
  | Sub | Div | Mod | Shl | Shr | Slt | Sle | Sgt | Sge -> false

let is_local_array f name =
  List.exists (fun (n, _, _) -> n = name) f.local_arrays

let lvn_block f b =
  let const : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let copy : (int, operand) Hashtbl.t = Hashtbl.create 32 in
  let avail : (expr_key, reg) Hashtbl.t = Hashtbl.create 32 in
  (* reverse indexes so [kill] need not scan the whole table (scanning is
     quadratic on the block sizes full unrolling produces) *)
  let mentions : (int, expr_key list) Hashtbl.t = Hashtbl.create 32 in
  let copy_dests : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let key_regs key =
    let of_op = function Reg r -> [ r ] | Imm _ -> [] in
    match key with
    | Kbin (_, a, b) -> of_op a @ of_op b
    | Kun (_, a) -> of_op a
    | Kload (_, i) -> of_op i
    | Kslot _ -> []
    | Kselect (c, x, y) -> of_op c @ of_op x @ of_op y
  in
  let index_key key v =
    List.iter
      (fun r ->
        Hashtbl.replace mentions r
          (key :: (try Hashtbl.find mentions r with Not_found -> [])))
      (v :: key_regs key)
  in
  (* resolve an operand through constants and copies *)
  let rec resolve o =
    match o with
    | Imm _ -> o
    | Reg r -> (
      match Hashtbl.find_opt const r with
      | Some n -> Imm n
      | None -> (
        match Hashtbl.find_opt copy r with
        | Some (Reg r') when r' <> r -> resolve (Reg r')
        | Some (Imm n) -> Imm n
        | Some (Reg _) | None -> o))
  in
  (* kill all facts about register r *)
  let kill r =
    Hashtbl.remove const r;
    (match Hashtbl.find_opt copy r with
    | Some (Reg s) ->
      Hashtbl.replace copy_dests s
        (List.filter (( <> ) r)
           (try Hashtbl.find copy_dests s with Not_found -> []))
    | Some (Imm _) | None -> ());
    Hashtbl.remove copy r;
    (match Hashtbl.find_opt mentions r with
    | Some keys ->
      List.iter (Hashtbl.remove avail) keys;
      Hashtbl.remove mentions r
    | None -> ());
    (* copies pointing at r are stale too *)
    match Hashtbl.find_opt copy_dests r with
    | Some dests ->
      List.iter (Hashtbl.remove copy) dests;
      Hashtbl.remove copy_dests r
    | None -> ()
  in
  let kill_loads ~also_globals name =
    let stale =
      Hashtbl.fold
        (fun k _ acc ->
          match k with
          | Kload (n, _)
            when n = name || (also_globals && not (is_local_array f n)) ->
            k :: acc
          | Kload _ | Kbin _ | Kun _ | Kslot _ | Kselect _ -> acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  let kill_all_global_loads () = kill_loads ~also_globals:true "\000none" in
  let kill_slots () =
    let stale =
      Hashtbl.fold
        (fun k _ acc ->
          match k with
          | Kslot _ -> k :: acc
          | Kload _ | Kbin _ | Kun _ | Kselect _ -> acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  let define d fact =
    kill d;
    match fact with
    | `Const n -> Hashtbl.replace const d n
    | `Copy o ->
      Hashtbl.replace copy d o;
      (match o with
      | Reg s ->
        Hashtbl.replace copy_dests s
          (d :: (try Hashtbl.find copy_dests s with Not_found -> []))
      | Imm _ -> ())
    | `Opaque -> ()
  in
  let simplify_bin op a b =
    match (op, a, b) with
    | _, Imm x, Imm y -> `Const (eval_binop op x y)
    | Add, x, Imm 0 | Add, Imm 0, x -> `Copy x
    | Sub, x, Imm 0 -> `Copy x
    | Mul, x, Imm 1 | Mul, Imm 1, x -> `Copy x
    | Mul, _, Imm 0 | Mul, Imm 0, _ -> `Const 0
    | And, _, Imm 0 | And, Imm 0, _ -> `Const 0
    | Or, x, Imm 0 | Or, Imm 0, x -> `Copy x
    | Xor, x, Imm 0 | Xor, Imm 0, x -> `Copy x
    | Shl, x, Imm 0 | Shr, x, Imm 0 -> `Copy x
    | Sub, Reg x, Reg y when x = y -> `Const 0
    | Xor, Reg x, Reg y when x = y -> `Const 0
    | _ -> `Expr
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  (* an expression that reads its own destination register must not be
     recorded as available: after the write, the key's operands denote the
     new value *)
  let key_mentions key r =
    match key with
    | Kbin (_, a, b) -> a = Reg r || b = Reg r
    | Kun (_, a) -> a = Reg r
    | Kload (_, i) -> i = Reg r
    | Kslot _ -> false
    | Kselect (c, x, y) -> c = Reg r || x = Reg r || y = Reg r
  in
  let record key d =
    if not (key_mentions key d) then begin
      Hashtbl.replace avail key d;
      index_key key d
    end
  in
  let handle i =
    match i with
    | Mov (d, src) ->
      let src = resolve src in
      (match src with
      | Imm n ->
        emit (Mov (d, src));
        define d (`Const n)
      | Reg r when r = d ->
        (* self move: keep facts, drop instruction *)
        ()
      | Reg _ ->
        emit (Mov (d, src));
        define d (`Copy src))
    | Bin (op, d, a, b) -> (
      let a = resolve a and b = resolve b in
      (* canonicalize commutative ops: immediate second *)
      let a, b =
        if commutative op then
          match (a, b) with
          | Imm _, Reg _ -> (b, a)
          | _ -> (a, b)
        else (a, b)
      in
      match simplify_bin op a b with
      | `Const n ->
        emit (Mov (d, Imm n));
        define d (`Const n)
      | `Copy o ->
        emit (Mov (d, o));
        define d (`Copy o)
      | `Expr -> (
        let key = Kbin (op, a, b) in
        match Hashtbl.find_opt avail key with
        | Some r when r <> d ->
          emit (Mov (d, Reg r));
          define d (`Copy (Reg r))
        | Some _ | None ->
          emit (Bin (op, d, a, b));
          define d `Opaque;
          record key d))
    | Un (op, d, a) -> (
      let a = resolve a in
      match a with
      | Imm n ->
        let v = eval_unop op n in
        emit (Mov (d, Imm v));
        define d (`Const v)
      | Reg _ -> (
        let key = Kun (op, a) in
        match Hashtbl.find_opt avail key with
        | Some r when r <> d ->
          emit (Mov (d, Reg r));
          define d (`Copy (Reg r))
        | Some _ | None ->
          emit (Un (op, d, a));
          define d `Opaque;
          record key d))
    | Select (d, c, x, y) -> (
      let c = resolve c and x = resolve x and y = resolve y in
      match c with
      | Imm n ->
        let v = if n <> 0 then x else y in
        emit (Mov (d, v));
        (match v with
        | Imm k -> define d (`Const k)
        | Reg _ -> define d (`Copy v))
      | Reg _ -> (
        let key = Kselect (c, x, y) in
        match Hashtbl.find_opt avail key with
        | Some r when r <> d ->
          emit (Mov (d, Reg r));
          define d (`Copy (Reg r))
        | Some _ | None ->
          emit (Select (d, c, x, y));
          define d `Opaque;
          record key d))
    | Load (d, g, idx) -> (
      let idx = resolve idx in
      let key = Kload (g, idx) in
      match Hashtbl.find_opt avail key with
      | Some r when r <> d ->
        emit (Mov (d, Reg r));
        define d (`Copy (Reg r))
      | Some _ | None ->
        emit (Load (d, g, idx));
        define d `Opaque;
        record key d)
    | Store (g, idx, v) ->
      let idx = resolve idx and v = resolve v in
      emit (Store (g, idx, v));
      kill_loads ~also_globals:false g
    | Slot_load (d, s) -> (
      let key = Kslot s in
      match Hashtbl.find_opt avail key with
      | Some r when r <> d ->
        emit (Mov (d, Reg r));
        define d (`Copy (Reg r))
      | Some _ | None ->
        emit (Slot_load (d, s));
        define d `Opaque;
        record key d)
    | Slot_store (s, v) ->
      let v = resolve v in
      emit (Slot_store (s, v));
      let stale =
        Hashtbl.fold
          (fun k _ acc ->
            match k with
            | Kslot s' when s' = s -> k :: acc
            | Kslot _ | Kload _ | Kbin _ | Kun _ | Kselect _ -> acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) stale
    | Call (dst, fn, args) ->
      let args = List.map resolve args in
      emit (Call (dst, fn, args));
      kill_all_global_loads ();
      kill_slots ();
      (match dst with Some d -> define d `Opaque | None -> ())
    | Vload (d, g, idx) ->
      emit (Vload (d, g, resolve idx));
      ignore d
    | Vstore (g, idx, v) ->
      emit (Vstore (g, resolve idx, v));
      kill_loads ~also_globals:false g
    | Vbin (op, d, a, b) -> emit (Vbin (op, d, a, b))
    | Vsplat (d, v) -> emit (Vsplat (d, resolve v))
    | Vpack (d, ops) -> emit (Vpack (d, List.map resolve ops))
    | Vreduce (op, d, v) ->
      emit (Vreduce (op, d, v));
      define d `Opaque
    | Print_int v -> emit (Print_int (resolve v))
    | Print_char v -> emit (Print_char (resolve v))
    | Read_input (d, idx) ->
      emit (Read_input (d, resolve idx));
      define d `Opaque
    | Input_len d ->
      emit (Input_len d);
      define d `Opaque
  in
  List.iter handle b.instrs;
  b.instrs <- List.rev !out;
  (* also simplify the terminator with what we know *)
  let resolve_term o =
    match o with
    | Imm _ -> o
    | Reg r -> (
      match Hashtbl.find_opt const r with
      | Some n -> Imm n
      | None -> (
        match Hashtbl.find_opt copy r with Some o' -> o' | None -> o))
  in
  b.term <-
    (match b.term with
    | Ret (Some v) -> Ret (Some (resolve_term v))
    | Br (c, t, e) -> Br (resolve_term c, t, e)
    | Switch (v, cases, d) -> Switch (resolve_term v, cases, d)
    | Tail_call (fn, args) -> Tail_call (fn, List.map resolve_term args)
    | (Ret None | Jmp _ | Loop_branch _) as t -> t)

let lvn f = List.iter (lvn_block f) f.blocks

(* ------------------------------------------------------------------ *)
(* Liveness and dead-code elimination                                  *)
(* ------------------------------------------------------------------ *)

(* Block-level liveness on the shared worklist solver; the fixpoint of the
   liveness equations is unique, so the tables are identical to the
   historical in-pass iteration (test/frozen_liveness.ml keeps that
   implementation as a differential oracle). *)
let liveness f = Analysis.Dataflow.Liveness.solve f

let dce_once f =
  let _, live_out = liveness f in
  let changed = ref false in
  List.iter
    (fun b ->
      let live = ref (Hashtbl.find live_out b.label) in
      List.iter (fun r -> live := Iset.add r !live) (term_uses b.term);
      (* walk backwards *)
      let kept =
        List.fold_left
          (fun kept i ->
            let keep =
              instr_has_side_effect i
              ||
              match instr_def i with
              | Some d -> Iset.mem d !live
              | None ->
                (* defines only a vector register; vector liveness is
                   block-local in generated code, so keep it *)
                true
            in
            if keep then begin
              (match instr_def i with
              | Some d -> live := Iset.remove d !live
              | None -> ());
              List.iter (fun r -> live := Iset.add r !live) (instr_uses i);
              i :: kept
            end
            else begin
              changed := true;
              kept
            end)
          []
          (List.rev b.instrs)
      in
      b.instrs <- kept)
    f.blocks;
  !changed

let dce f =
  let continue_ = ref true in
  while !continue_ do
    continue_ := dce_once f
  done

let run_baseline f =
  simplify_cfg f;
  mem2reg f;
  lvn f;
  dce f;
  simplify_cfg f;
  lvn f;
  dce f
