open Minic.Ast

(* ------------------------------------------------------------------ *)
(* Shared traversal helpers                                            *)
(* ------------------------------------------------------------------ *)

let rec expr_vars e =
  match e with
  | Int _ -> []
  | Var v -> [ v ]
  | Index (a, i) -> a :: expr_vars i
  | Unary (_, e) -> expr_vars e
  | Binary (_, a, b) -> expr_vars a @ expr_vars b
  | Ternary (c, a, b) -> expr_vars c @ expr_vars a @ expr_vars b
  | Call (_, args) -> List.concat_map expr_vars args

let rec expr_has_call = function
  | Int _ | Var _ -> false
  | Index (_, e) | Unary (_, e) -> expr_has_call e
  | Binary (_, a, b) -> expr_has_call a || expr_has_call b
  | Ternary (c, a, b) ->
    expr_has_call c || expr_has_call a || expr_has_call b
  | Call _ -> true

(* Variables assigned (scalars) and arrays stored to, anywhere below. *)
let rec stmt_writes s =
  match s with
  | Decl (n, _) -> ([ n ], [])
  | Array_decl (n, _, _) -> ([], [ n ])
  | Assign (n, _) -> ([ n ], [])
  | Store (a, _, _) -> ([], [ a ])
  | If (_, t, e) -> stmts_writes (t @ e)
  | While (_, b) | Do_while (b, _) -> stmts_writes b
  | For (init, _, step, b) ->
    let opt = function None -> ([], []) | Some s -> stmt_writes s in
    let i1, a1 = opt init and i2, a2 = opt step and i3, a3 = stmts_writes b in
    (i1 @ i2 @ i3, a1 @ a2 @ a3)
  | Switch (_, cases, default) ->
    let bodies = List.concat_map snd cases in
    let bodies =
      match default with None -> bodies | Some d -> bodies @ d
    in
    stmts_writes bodies
  | Return _ | Break | Continue | Expr_stmt _ -> ([], [])
  | Block b -> stmts_writes b

and stmts_writes ss =
  List.fold_left
    (fun (vs, arrs) s ->
      let v, a = stmt_writes s in
      (v @ vs, a @ arrs))
    ([], []) ss

let rec stmt_has_call s =
  match s with
  | Decl (_, Some e) | Assign (_, e) | Expr_stmt e | Return (Some e) ->
    expr_has_call e
  | Decl (_, None) | Array_decl _ | Return None | Break | Continue -> false
  | Store (_, i, v) -> expr_has_call i || expr_has_call v
  | If (c, t, e) ->
    expr_has_call c || List.exists stmt_has_call (t @ e)
  | While (c, b) | Do_while (b, c) ->
    expr_has_call c || List.exists stmt_has_call b
  | For (init, cond, step, b) ->
    let opt_s = function None -> false | Some s -> stmt_has_call s in
    let opt_e = function None -> false | Some e -> expr_has_call e in
    opt_s init || opt_e cond || opt_s step || List.exists stmt_has_call b
  | Switch (e, cases, default) ->
    expr_has_call e
    || List.exists (fun (_, b) -> List.exists stmt_has_call b) cases
    || (match default with
       | None -> false
       | Some d -> List.exists stmt_has_call d)
  | Block b -> List.exists stmt_has_call b

let rec stmt_has_jump s =
  (* break / continue / return anywhere that could escape this statement:
     break/continue inside nested loops or switches are locally bound and
     do not count. *)
  match s with
  | Break | Continue | Return _ -> true
  | If (_, t, e) -> List.exists stmt_has_jump (t @ e)
  | Block b -> List.exists stmt_has_jump b
  | While (_, b) | Do_while (b, _) -> List.exists stmt_has_return b
  | For (_, _, _, b) -> List.exists stmt_has_return b
  | Switch (_, cases, default) ->
    (* break is bound by the switch; return/continue escape *)
    List.exists
      (fun (_, b) -> List.exists stmt_has_return_or_continue b)
      cases
    || (match default with
       | None -> false
       | Some d -> List.exists stmt_has_return_or_continue d)
  | Decl _ | Array_decl _ | Assign _ | Store _ | Expr_stmt _ -> false

and stmt_has_return s =
  match s with
  | Return _ -> true
  | Break | Continue -> false
  | If (_, t, e) -> List.exists stmt_has_return (t @ e)
  | Block b | While (_, b) | Do_while (b, _) | For (_, _, _, b) ->
    List.exists stmt_has_return b
  | Switch (_, cases, default) ->
    List.exists (fun (_, b) -> List.exists stmt_has_return b) cases
    || (match default with
       | None -> false
       | Some d -> List.exists stmt_has_return d)
  | Decl _ | Array_decl _ | Assign _ | Store _ | Expr_stmt _ -> false

and stmt_has_return_or_continue s =
  stmt_has_return s
  ||
  match s with
  | Continue -> true
  | If (_, t, e) -> List.exists stmt_has_return_or_continue (t @ e)
  | Block b -> List.exists stmt_has_return_or_continue b
  | Decl _ | Array_decl _ | Assign _ | Store _ | Expr_stmt _ | Break
  | Return _ | While _ | Do_while _ | For _ | Switch _ ->
    false

(* Substitute variable *references* (not binders): rename scalars and
   arrays according to [env : string -> string]. *)
let rec subst_expr env e =
  match e with
  | Int _ -> e
  | Var v -> Var (env v)
  | Index (a, i) -> Index (env a, subst_expr env i)
  | Unary (op, e) -> Unary (op, subst_expr env e)
  | Binary (op, a, b) -> Binary (op, subst_expr env a, subst_expr env b)
  | Ternary (c, a, b) ->
    Ternary (subst_expr env c, subst_expr env a, subst_expr env b)
  | Call (f, args) -> Call (f, List.map (subst_expr env) args)

(* Map a transformation [g : stmt -> stmt list] bottom-up over a
   statement list, recursing into all nested bodies first.  [g] returns a
   replacement *list* so passes can splice declarations into the
   enclosing scope instead of hiding them in a [Block]. *)
let rec map_stmts g stmts = List.concat_map (map_stmt g) stmts

and map_stmt g s =
  let s =
    match s with
    | If (c, t, e) -> If (c, map_stmts g t, map_stmts g e)
    | While (c, b) -> While (c, map_stmts g b)
    | Do_while (b, c) -> Do_while (map_stmts g b, c)
    | For (init, cond, step, b) -> For (init, cond, step, map_stmts g b)
    | Switch (e, cases, default) ->
      Switch
        ( e,
          List.map (fun (ls, b) -> (ls, map_stmts g b)) cases,
          Option.map (map_stmts g) default )
    | Block b -> Block (map_stmts g b)
    | Decl _ | Array_decl _ | Assign _ | Store _ | Return _ | Break
    | Continue | Expr_stmt _ ->
      s
  in
  g s

let map_program g p =
  { p with funcs = List.map (fun f -> { f with body = map_stmts g f.body }) p.funcs }

(* ------------------------------------------------------------------ *)
(* Counted-loop recognition (shared by the loop passes)                *)
(* ------------------------------------------------------------------ *)

type counted = {
  ivar : string;
  declared : bool;  (** loop declares its own induction variable *)
  start : expr;
  strict : bool;  (** i < bound vs i <= bound *)
  bound : expr;
  step : int;  (** constant, ≥ 1 *)
  body : stmt list;
}

let globals_of p =
  List.fold_left
    (fun acc g ->
      match g with Gvar (n, _) | Garr (n, _, _) -> n :: acc)
    [] p.globals

(* [bound_safe] — the bound and start expressions must be re-evaluatable:
   pure, their variables not assigned in the body, and (when the body
   contains calls) not referencing globals or arrays. *)
let invariant_expr ~globals ~body e =
  let rec pure = function
    | Int _ | Var _ -> true
    | Index (_, i) -> pure i
    | Unary (_, e) -> pure e
    | Binary (_, a, b) -> pure a && pure b
    | Ternary (c, a, b) -> pure c && pure a && pure b
    | Call _ -> false
  in
  pure e
  &&
  let vars = expr_vars e in
  let assigned, stored = stmts_writes body in
  let has_call = List.exists stmt_has_call body in
  List.for_all
    (fun v ->
      (not (List.mem v assigned))
      && (not (List.mem v stored))
      && not (has_call && List.mem v globals))
    vars

let match_counted ~globals (s : stmt) : counted option =
  match s with
  | For (Some init, Some (Binary ((Lt | Le) as cmp, Var i, bound)), Some step, body)
    -> (
    let declared, start =
      match init with
      | Decl (i', Some e0) when i' = i -> (Some true, Some e0)
      | Assign (i', e0) when i' = i -> (Some false, Some e0)
      | _ -> (None, None)
    in
    let step_c =
      match step with
      | Assign (i', Binary (Add, Var i'', Int c))
        when i' = i && i'' = i && c >= 1 ->
        Some c
      | _ -> None
    in
    match (declared, start, step_c) with
    | Some declared, Some start, Some step ->
      let assigned, _ = stmts_writes body in
      let jumps = List.exists stmt_has_jump body in
      if
        (not jumps)
        && (not (List.mem i assigned))
        && invariant_expr ~globals ~body bound
        && invariant_expr ~globals ~body:[] start
      then
        Some
          { ivar = i; declared; start; strict = cmp = Lt; bound; step; body }
      else None
    | _ -> None)
  | _ -> None

let rebuild_counted c =
  let init =
    if c.declared then Decl (c.ivar, Some c.start)
    else Assign (c.ivar, c.start)
  in
  let cmp = if c.strict then Lt else Le in
  For
    ( Some init,
      Some (Binary (cmp, Var c.ivar, c.bound)),
      Some (Assign (c.ivar, Binary (Add, Var c.ivar, Int c.step))),
      c.body )

(* ------------------------------------------------------------------ *)
(* Call normalization                                                  *)
(* ------------------------------------------------------------------ *)

let normalize_calls p =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "__nc%d" !counter
  in
  (* Hoist calls out of [e]; prepends temp declarations to [acc].
     Subtrees whose evaluation is conditional (&&/|| right sides, ternary
     arms) are barriers: calls inside them stay put. *)
  let rec hoist acc e =
    match e with
    | Int _ | Var _ -> e
    | Index (a, i) -> Index (a, hoist acc i)
    | Unary (op, e) -> Unary (op, hoist acc e)
    | Binary (((Land | Lor) as op), a, b) ->
      (* left side evaluates unconditionally *)
      Binary (op, hoist acc a, b)
    | Binary (op, a, b) ->
      let a = hoist acc a in
      let b = hoist acc b in
      Binary (op, a, b)
    | Ternary (c, a, b) -> Ternary (hoist acc c, a, b)
    | Call (f, args) ->
      let args = List.map (hoist acc) args in
      let t = fresh () in
      acc := Decl (t, Some (Call (f, args))) :: !acc;
      Var t
  in
  (* hoist but keep a top-level call in place (already normalized) *)
  let hoist_rhs acc e =
    match e with
    | Call (f, args) -> Call (f, List.map (hoist acc) args)
    | _ -> hoist acc e
  in
  let with_hoisted f =
    let acc = ref [] in
    let s = f acc in
    List.rev !acc @ [ s ]
  in
  let g s =
    match s with
    | Decl (n, Some e) ->
      with_hoisted (fun acc -> Decl (n, Some (hoist_rhs acc e)))
    | Assign (n, e) -> with_hoisted (fun acc -> Assign (n, hoist_rhs acc e))
    | Store (a, i, v) ->
      with_hoisted (fun acc ->
          let i = hoist acc i in
          let v = hoist acc v in
          Store (a, i, v))
    | Return (Some e) ->
      with_hoisted (fun acc -> Return (Some (hoist_rhs acc e)))
    | Expr_stmt e -> with_hoisted (fun acc -> Expr_stmt (hoist_rhs acc e))
    | If (c, t, e) -> with_hoisted (fun acc -> If (hoist acc c, t, e))
    | Switch (e, cases, d) ->
      with_hoisted (fun acc -> Switch (hoist acc e, cases, d))
    | Decl (_, None) | Array_decl _ | While _ | Do_while _ | For _
    | Return None | Break | Continue | Block _ ->
      [ s ]
  in
  map_program g p

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* Functions that can reach themselves through the static call graph. *)
let recursive_functions p =
  let calls = Hashtbl.create 16 in
  let rec expr_calls acc = function
    | Int _ | Var _ -> acc
    | Index (_, e) | Unary (_, e) -> expr_calls acc e
    | Binary (_, a, b) -> expr_calls (expr_calls acc a) b
    | Ternary (c, a, b) -> expr_calls (expr_calls (expr_calls acc c) a) b
    | Call (f, args) -> List.fold_left expr_calls (Sset.add f acc) args
  in
  let rec stmt_calls acc s =
    match s with
    | Decl (_, Some e) | Assign (_, e) | Expr_stmt e | Return (Some e) ->
      expr_calls acc e
    | Decl (_, None) | Array_decl _ | Return None | Break | Continue -> acc
    | Store (_, i, v) -> expr_calls (expr_calls acc i) v
    | If (c, t, e) ->
      List.fold_left stmt_calls (expr_calls acc c) (t @ e)
    | While (c, b) | Do_while (b, c) ->
      List.fold_left stmt_calls (expr_calls acc c) b
    | For (init, cond, step, b) ->
      let acc = match init with None -> acc | Some s -> stmt_calls acc s in
      let acc = match cond with None -> acc | Some e -> expr_calls acc e in
      let acc = match step with None -> acc | Some s -> stmt_calls acc s in
      List.fold_left stmt_calls acc b
    | Switch (e, cases, d) ->
      let acc = expr_calls acc e in
      let acc =
        List.fold_left
          (fun acc (_, b) -> List.fold_left stmt_calls acc b)
          acc cases
      in
      (match d with None -> acc | Some b -> List.fold_left stmt_calls acc b)
    | Block b -> List.fold_left stmt_calls acc b
  in
  List.iter
    (fun f ->
      Hashtbl.replace calls f.fname
        (List.fold_left stmt_calls Sset.empty f.body))
    p.funcs;
  (* transitive closure: f recursive iff f reachable from f *)
  let reaches_self fname =
    let seen = ref Sset.empty in
    let rec go n =
      match Hashtbl.find_opt calls n with
      | None -> false
      | Some callees ->
        Sset.exists
          (fun c ->
            c = fname
            ||
            if Sset.mem c !seen then false
            else begin
              seen := Sset.add c !seen;
              go c
            end)
          callees
    in
    go fname
  in
  List.filter_map
    (fun f -> if reaches_self f.fname then Some f.fname else None)
    p.funcs

let inline ~max_size ~rounds p =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "__%s%d" prefix !counter
  in
  let do_round p =
    let recursive = recursive_functions p in
    let by_name =
      List.fold_left (fun m f -> Smap.add f.fname f m) Smap.empty p.funcs
    in
    let inlinable name =
      match Smap.find_opt name by_name with
      | Some f
        when name <> "main"
             && (not (List.mem name recursive))
             && func_size f <= max_size ->
        Some f
      | Some _ | None -> None
    in
    let changed = ref false in
    (* Rename the callee body: params and locals get fresh names. *)
    let rename_body callee args_names =
      let env0 =
        List.fold_left2
          (fun m p a -> Smap.add p a m)
          Smap.empty callee.params args_names
      in
      let lookup env n = match Smap.find_opt n env with Some x -> x | None -> n in
      let rec rn_stmts env ss =
        let _, rev =
          List.fold_left
            (fun (env, acc) s ->
              let env, s = rn_stmt env s in
              (env, s :: acc))
            (env, []) ss
        in
        List.rev rev
      and rn_stmt env s =
        match s with
        | Decl (n, init) ->
          let n' = fresh "inl" in
          let init = Option.map (subst_expr (lookup env)) init in
          (Smap.add n n' env, Decl (n', init))
        | Array_decl (n, size, init) ->
          let n' = fresh "inla" in
          (Smap.add n n' env, Array_decl (n', size, init))
        | Assign (n, e) ->
          (env, Assign (lookup env n, subst_expr (lookup env) e))
        | Store (a, i, v) ->
          ( env,
            Store
              (lookup env a, subst_expr (lookup env) i, subst_expr (lookup env) v) )
        | If (c, t, e) ->
          (env, If (subst_expr (lookup env) c, rn_stmts env t, rn_stmts env e))
        | While (c, b) ->
          (env, While (subst_expr (lookup env) c, rn_stmts env b))
        | Do_while (b, c) ->
          (env, Do_while (rn_stmts env b, subst_expr (lookup env) c))
        | For (init, cond, step, b) ->
          let env', init =
            match init with
            | None -> (env, None)
            | Some s ->
              let env', s = rn_stmt env s in
              (env', Some s)
          in
          let cond = Option.map (subst_expr (lookup env')) cond in
          let step =
            Option.map (fun s -> snd (rn_stmt env' s)) step
          in
          (env, For (init, cond, step, rn_stmts env' b))
        | Switch (e, cases, d) ->
          ( env,
            Switch
              ( subst_expr (lookup env) e,
                List.map (fun (ls, b) -> (ls, rn_stmts env b)) cases,
                Option.map (rn_stmts env) d ) )
        | Return e -> (env, Return (Option.map (subst_expr (lookup env)) e))
        | Break -> (env, Break)
        | Continue -> (env, Continue)
        | Expr_stmt e -> (env, Expr_stmt (subst_expr (lookup env) e))
        | Block b -> (env, Block (rn_stmts env b))
      in
      rn_stmts env0 callee.body
    in
    (* Replace Return with result/done writes; guard continuations. *)
    let lower_returns ~ret ~done_ body =
      let not_done = Unary (Lnot, Var done_) in
      let rec tr_list ss =
        match ss with
        | [] -> []
        | s :: rest ->
          let s' = tr s in
          let rest' = tr_list rest in
          if stmt_has_return s && rest' <> [] then
            [ s'; If (not_done, rest', []) ]
          else s' :: rest'
      and tr s =
        match s with
        | Return e ->
          let e = match e with None -> Int 0 | Some e -> e in
          Block [ Assign (ret, e); Assign (done_, Int 1) ]
        | If (c, t, e) -> If (c, tr_list t, tr_list e)
        | While (c, b) ->
          if List.exists stmt_has_return b then
            While (Binary (Land, not_done, c), tr_list b)
          else While (c, b)
        | Do_while (b, c) ->
          if List.exists stmt_has_return b then
            Do_while (tr_list b, Binary (Land, not_done, c))
          else Do_while (b, c)
        | For (init, cond, step, b) ->
          if List.exists stmt_has_return b then begin
            let cond' =
              match cond with
              | None -> Some not_done
              | Some c -> Some (Binary (Land, not_done, c))
            in
            For (init, cond', step, tr_list b)
          end
          else For (init, cond, step, b)
        | Switch (e, cases, d) ->
          (* a Return in a case both exits the switch and used to stop
             fallthrough; after rewriting it to assignments the body can
             fall into the next case, so guard every case body with the
             completion flag *)
          let has_ret =
            List.exists (fun (_, b) -> List.exists stmt_has_return b) cases
            || (match d with
               | None -> false
               | Some b -> List.exists stmt_has_return b)
          in
          let guard b =
            let b' = tr_list b in
            if has_ret then [ If (not_done, b', []) ] else b'
          in
          Switch
            ( e,
              List.map (fun (ls, b) -> (ls, guard b)) cases,
              Option.map guard d )
        | Block b -> Block (tr_list b)
        | Decl _ | Array_decl _ | Assign _ | Store _ | Break | Continue
        | Expr_stmt _ ->
          s
      in
      tr_list body
    in
    let expand callee args ~bind_result =
      changed := true;
      let arg_names = List.map (fun _ -> fresh "arg") callee.params in
      let arg_decls =
        List.map2 (fun n a -> Decl (n, Some a)) arg_names args
      in
      let ret = fresh "ret" in
      let done_ = fresh "done" in
      let body = rename_body callee arg_names in
      let needs_guard = List.exists stmt_has_return body in
      let body =
        if needs_guard then lower_returns ~ret ~done_ body
        else
          (* a body with no returns falls through; result is 0 *)
          body
      in
      let prologue =
        arg_decls @ [ Decl (ret, Some (Int 0)); Decl (done_, Some (Int 0)) ]
      in
      match bind_result with
      | None -> Block (prologue @ body)
      | Some k -> Block (prologue @ body @ [ k (Var ret) ])
    in
    let g s =
      match s with
      | Decl (n, Some (Call (f, args))) -> (
        match inlinable f with
        | Some callee ->
          [
            Decl (n, None);
            expand callee args ~bind_result:(Some (fun r -> Assign (n, r)));
          ]
        | None -> [ s ])
      | Assign (n, Call (f, args)) -> (
        match inlinable f with
        | Some callee ->
          [ expand callee args ~bind_result:(Some (fun r -> Assign (n, r))) ]
        | None -> [ s ])
      | Expr_stmt (Call (f, args)) -> (
        match inlinable f with
        | Some callee -> [ expand callee args ~bind_result:None ]
        | None -> [ s ])
      | Return (Some (Call (f, args))) -> (
        match inlinable f with
        | Some callee ->
          let t = fresh "rv" in
          [
            Decl (t, None);
            expand callee args ~bind_result:(Some (fun r -> Assign (t, r)));
            Return (Some (Var t));
          ]
        | None -> [ s ])
      | _ -> [ s ]
    in
    let p' = map_program g p in
    (p', !changed)
  in
  let rec go n p =
    if n <= 0 then p
    else
      let p', changed = do_round p in
      if changed then go (n - 1) p' else p'
  in
  go rounds p

(* ------------------------------------------------------------------ *)
(* Loop unrolling                                                      *)
(* ------------------------------------------------------------------ *)

let unroll ~factor ~full_limit p =
  assert (factor >= 2);
  let globals = globals_of p in
  let trip_count c =
    match (c.start, c.bound) with
    | Int s0, Int b ->
      let upper = if c.strict then b - 1 else b in
      if upper < s0 then Some 0 else Some (((upper - s0) / c.step) + 1)
    | _ -> None
  in
  let g s =
    match match_counted ~globals s with
    | None -> [ s ]
    | Some c -> (
      let i = c.ivar in
      let step_stmt = Assign (i, Binary (Add, Var i, Int c.step)) in
      let init =
        if c.declared then Decl (i, Some c.start) else Assign (i, c.start)
      in
      let body_size = stmts_size c.body in
      match trip_count c with
      | Some trip when trip <= full_limit && trip * body_size <= 400 ->
        (* full unroll: straight-line code (with the usual compiler
           growth cap — unbounded expansion makes compile time quadratic
           and buys no further binary difference) *)
        let iter =
          List.concat (List.init trip (fun _ -> c.body @ [ step_stmt ]))
        in
        if c.declared then [ Block (init :: iter) ] else init :: iter
      | _ when body_size * factor > 600 -> [ s ]
      | Some _ | None ->
        (* guarded partial unroll + remainder loop *)
        let cmp = if c.strict then Lt else Le in
        let guard =
          Binary
            ( cmp,
              Binary (Add, Var i, Int ((factor - 1) * c.step)),
              c.bound )
        in
        let unrolled_body =
          List.concat (List.init factor (fun _ -> c.body @ [ step_stmt ]))
        in
        let remainder =
          While (Binary (cmp, Var i, c.bound), c.body @ [ step_stmt ])
        in
        let seq = [ init; While (guard, unrolled_body); remainder ] in
        if c.declared then [ Block seq ] else seq)
  in
  map_program g p

(* ------------------------------------------------------------------ *)
(* Loop peeling                                                        *)
(* ------------------------------------------------------------------ *)

let peel p =
  let globals = globals_of p in
  let g s =
    match match_counted ~globals s with
    | None -> [ s ]
    | Some c ->
      let i = c.ivar in
      let cmp = if c.strict then Lt else Le in
      let cond = Binary (cmp, Var i, c.bound) in
      let step_stmt = Assign (i, Binary (Add, Var i, Int c.step)) in
      let init =
        if c.declared then Decl (i, Some c.start) else Assign (i, c.start)
      in
      let seq =
        [
          init;
          If
            ( cond,
              c.body @ [ step_stmt; While (cond, c.body @ [ step_stmt ]) ],
              [] );
        ]
      in
      if c.declared then [ Block seq ] else seq
  in
  map_program g p

(* ------------------------------------------------------------------ *)
(* Loop unswitching                                                    *)
(* ------------------------------------------------------------------ *)

let unswitch p =
  let globals = globals_of p in
  (* no array reads in the condition: stores in the body could change
     them even when the array itself is never the target of a store we
     can see (aliased local names) *)
  let rec no_index = function
    | Int _ | Var _ -> true
    | Index _ -> false
    | Unary (_, e) -> no_index e
    | Binary (_, a, b) -> no_index a && no_index b
    | Ternary (x, a, b) -> no_index x && no_index a && no_index b
    | Call _ -> false
  in
  let invariant_cond ~body c =
    no_index c && invariant_expr ~globals ~body c
  in
  let split_body body =
    (* find first top-level invariant If *)
    let rec go pre = function
      | [] -> None
      | If (c, t, e) :: rest when invariant_cond ~body c ->
        Some (List.rev pre, c, t, e, rest)
      | s :: rest -> go (s :: pre) rest
    in
    go [] body
  in
  let g s =
    match s with
    | While (cond, body) -> (
      match split_body body with
      | Some (pre, c, t, e, post) ->
        [
          If
            ( c,
              [ While (cond, pre @ t @ post) ],
              [ While (cond, pre @ e @ post) ] );
        ]
      | None -> [ s ])
    | For (init, cond, step, body) -> (
      match split_body body with
      | Some (pre, c, t, e, post) ->
        (* the induction variable may appear in c only if never assigned,
           which match on invariant_expr already guarantees (it checks
           assignments including the step?) — the step assigns i outside
           [body], so exclude conditions mentioning the loop's own
           induction variable explicitly. *)
        let step_writes =
          match step with
          | Some st -> fst (stmt_writes st)
          | None -> []
        in
        let init_writes =
          match init with
          | Some st -> fst (stmt_writes st)
          | None -> []
        in
        let cv = expr_vars c in
        if
          List.exists (fun v -> List.mem v cv) (step_writes @ init_writes)
        then [ s ]
        else
          [
            If
              ( c,
                [ For (init, cond, step, pre @ t @ post) ],
                [ For (init, cond, step, pre @ e @ post) ] );
          ]
      | None -> [ s ])
    | _ -> [ s ]
  in
  map_program g p

(* ------------------------------------------------------------------ *)
(* Loop distribution (memset/memcpy pattern split-off)                 *)
(* ------------------------------------------------------------------ *)

let distribute p =
  let globals = globals_of p in
  let g s =
    match match_counted ~globals s with
    | None -> [ s ]
    | Some c -> (
      let is_init_store = function
        | Store (_, Var v, Int _) when v = c.ivar -> true
        | _ -> false
      in
      let rec split pre = function
        | st :: rest when is_init_store st -> split (st :: pre) rest
        | rest -> (List.rev pre, rest)
      in
      match split [] c.body with
      | [], _ | _, [] -> [ s ]
      | inits, rest ->
        let init_arrays =
          List.filter_map
            (function Store (a, _, _) -> Some a | _ -> None)
            inits
        in
        (* the remainder must not touch the initialized arrays, and must
           not disturb the loop bounds (match_counted already checked
           bound invariance over the whole body, which includes rest) *)
        let rest_reads =
          List.concat_map
            (fun s -> fst (stmts_writes [ s ]) @ snd (stmts_writes [ s ]))
            rest
        in
        let rest_mentions =
          List.concat_map
            (fun s ->
              match s with
              | Assign (_, e) | Decl (_, Some e) | Expr_stmt e
              | Return (Some e) ->
                expr_vars e
              | Store (a, i, v) -> (a :: expr_vars i) @ expr_vars v
              | _ -> [])
            rest
          @ rest_reads
        in
        if List.exists (fun a -> List.mem a rest_mentions) init_arrays then
          [ s ]
        else
          [
            rebuild_counted { c with body = inits };
            rebuild_counted { c with body = rest };
          ])
  in
  map_program g p

(* ------------------------------------------------------------------ *)
(* Unroll and jam                                                      *)
(* ------------------------------------------------------------------ *)

(* Safety for jamming two consecutive outer iterations: every access to a
   *stored* array must be the row-major cell [arr[i*w + j]], so the cells
   touched by outer iterations i and i+1 are disjoint and same-iteration
   reads see their own writes.  Loads from arrays nobody stores to are
   unrestricted. *)
let jam_safe ~i ~j body =
  let _, stored = stmts_writes body in
  let row_major = function
    | Binary (Add, Binary (Mul, Var i', Int _), Var j') -> i' = i && j' = j
    | _ -> false
  in
  let rec expr_ok e =
    match e with
    | Int _ | Var _ -> true
    | Index (a, idx) ->
      expr_ok idx && ((not (List.mem a stored)) || row_major idx)
    | Unary (_, e) -> expr_ok e
    | Binary (_, a, b) -> expr_ok a && expr_ok b
    | Ternary (c, a, b) -> expr_ok c && expr_ok a && expr_ok b
    | Call _ -> false
  in
  let rec stmt_ok s =
    match s with
    | Store (a, idx, v) ->
      List.mem a stored && row_major idx && expr_ok idx && expr_ok v
    | Assign (_, e) | Decl (_, Some e) | Expr_stmt e -> expr_ok e
    | Decl (_, None) -> true
    | If (c, t, e) -> expr_ok c && List.for_all stmt_ok (t @ e)
    | Block b -> List.for_all stmt_ok b
    | Array_decl _ | While _ | Do_while _ | For _ | Switch _ | Return _
    | Break | Continue ->
      false
  in
  List.for_all stmt_ok body

let rename_var_refs ~from_ ~to_ stmts =
  let env v = if v = from_ then to_ else v in
  let rec rn s =
    match s with
    | Decl (n, e) -> Decl (n, Option.map (subst_expr env) e)
    | Array_decl _ -> s
    | Assign (n, e) -> Assign (env n, subst_expr env e)
    | Store (a, i, v) -> Store (env a, subst_expr env i, subst_expr env v)
    | If (c, t, e) -> If (subst_expr env c, List.map rn t, List.map rn e)
    | While (c, b) -> While (subst_expr env c, List.map rn b)
    | Do_while (b, c) -> Do_while (List.map rn b, subst_expr env c)
    | For (init, cond, step, b) ->
      For
        ( Option.map rn init,
          Option.map (subst_expr env) cond,
          Option.map rn step,
          List.map rn b )
    | Switch (e, cases, d) ->
      Switch
        ( subst_expr env e,
          List.map (fun (ls, b) -> (ls, List.map rn b)) cases,
          Option.map (List.map rn) d )
    | Return e -> Return (Option.map (subst_expr env) e)
    | Break | Continue -> s
    | Expr_stmt e -> Expr_stmt (subst_expr env e)
    | Block b -> Block (List.map rn b)
  in
  List.map rn stmts

let unroll_and_jam p =
  let globals = globals_of p in
  let counter = ref 0 in
  let g s =
    match match_counted ~globals s with
    | Some outer when outer.step = 1 -> (
      match outer.body with
      | [ (For _ as inner_stmt) ] -> (
        match match_counted ~globals inner_stmt with
        | Some inner
          when stmts_size inner.body <= 150
               && inner.declared
               && (not (List.mem outer.ivar (expr_vars inner.start)))
               && (not (List.mem outer.ivar (expr_vars inner.bound)))
               && (not (List.mem inner.ivar (expr_vars outer.bound)))
               && jam_safe ~i:outer.ivar ~j:inner.ivar inner.body
               &&
               (* any scalar the inner body assigns must be its own
                  declaration, so the two jammed copies do not share
                  state (copy 2 re-declares, shadowing copy 1) *)
               (let assigned, _ = stmts_writes inner.body in
                let declared =
                  List.filter_map
                    (function Decl (n, _) -> Some n | _ -> None)
                    inner.body
                in
                List.for_all (fun v -> List.mem v declared) assigned) ->
          incr counter;
          let i = outer.ivar in
          let i2 = Printf.sprintf "__uj%d" !counter in
          let copy2 = rename_var_refs ~from_:i ~to_:i2 inner.body in
          let jammed_inner =
            rebuild_counted { inner with body = inner.body @ copy2 }
          in
          let cmp = if outer.strict then Lt else Le in
          let init =
            if outer.declared then Decl (i, Some outer.start)
            else Assign (i, outer.start)
          in
          let seq =
            [
              init;
              While
                ( Binary (cmp, Binary (Add, Var i, Int 1), outer.bound),
                  [
                    Decl (i2, Some (Binary (Add, Var i, Int 1)));
                    jammed_inner;
                    Assign (i, Binary (Add, Var i, Int 2));
                  ] );
              While
                ( Binary (cmp, Var i, outer.bound),
                  [ inner_stmt; Assign (i, Binary (Add, Var i, Int 1)) ] );
            ]
          in
          if outer.declared then [ Block seq ] else seq
        | Some _ | None -> [ s ])
      | _ -> [ s ])
    | Some _ | None -> [ s ]
  in
  map_program g p


(* ------------------------------------------------------------------ *)
(* Builtin expansion                                                   *)
(* ------------------------------------------------------------------ *)

let expand_builtins p =
  let limit = 16 in
  let mem = "__mem" in
  let has_mem =
    List.exists
      (function Garr (n, _, _) -> n = mem | Gvar _ -> false)
      p.globals
  in
  if not has_mem then p
  else begin
    let expand f args =
      match (f, args) with
      | "memset", [ Int dst; v; Int count ]
        when count >= 0 && count <= limit && not (expr_has_call v) ->
        Some
          (List.init count (fun k -> Store (mem, Int (dst + k), v)), Int dst)
      | "memcpy", [ Int dst; Int src; Int count ]
        when count >= 0 && count <= limit ->
        Some
          ( List.init count (fun k ->
                Store (mem, Int (dst + k), Index (mem, Int (src + k)))),
            Int dst )
      | _ -> None
    in
    let g s =
      match s with
      | Expr_stmt (Call (f, args)) -> (
        match expand f args with
        | Some (stores, _) -> stores
        | None -> [ s ])
      | Assign (n, Call (f, args)) -> (
        match expand f args with
        | Some (stores, result) -> stores @ [ Assign (n, result) ]
        | None -> [ s ])
      | Decl (n, Some (Call (f, args))) -> (
        match expand f args with
        | Some (stores, result) -> stores @ [ Decl (n, Some result) ]
        | None -> [ s ])
      | _ -> [ s ]
    in
    map_program g p
  end

(* ------------------------------------------------------------------ *)
(* Function instrumentation                                            *)
(* ------------------------------------------------------------------ *)

let instrument p =
  let skip = [ "__instr_enter"; "__instr_exit" ] in
  let has_instr_helpers =
    List.exists (fun f -> List.mem f.fname skip) p.funcs
  in
  let counter_global = "__instr_depth" in
  let helpers =
    [
      {
        fname = "__instr_enter";
        params = [ "f" ];
        body =
          [
            Assign (counter_global, Binary (Add, Var counter_global, Var "f"));
            Return (Some (Int 0));
          ];
      };
      {
        fname = "__instr_exit";
        params = [ "f" ];
        body =
          [
            Assign (counter_global, Binary (Sub, Var counter_global, Var "f"));
            Return (Some (Int 0));
          ];
      };
    ]
  in
  let p =
    if has_instr_helpers then p
    else
      {
        globals = p.globals @ [ Gvar (counter_global, 0) ];
        funcs = p.funcs @ helpers;
      }
  in
  let wrapped, real =
    List.fold_left
      (fun (ws, rs) f ->
        if List.mem f.fname skip then (ws, f :: rs)
        else begin
          let fid = List.length ws + 1 in
          let real_name = "__real_" ^ f.fname in
          let wrapper =
            {
              fname = f.fname;
              params = f.params;
              body =
                [
                  Expr_stmt (Call ("__instr_enter", [ Int fid ]));
                  Decl
                    ( "__r",
                      Some
                        (Call (real_name, List.map (fun a -> Var a) f.params))
                    );
                  Expr_stmt (Call ("__instr_exit", [ Int fid ]));
                  Return (Some (Var "__r"));
                ];
            }
          in
          (wrapper :: ws, { f with fname = real_name } :: rs)
        end)
      ([], []) p.funcs
  in
  { p with funcs = List.rev real @ List.rev wrapped }
