(** Aggressive loop-invariant code motion (-flicm-aggressive /
    -ftree-loop-im).

    Natural loops come from the dominator instance (via
    {!Cfg_utils.natural_loops}); whole chains of pure invariant
    computations (Bin/Un/Mov/Select) hoist into a fresh preheader in one
    application.  A candidate's definition must dominate every use of
    its register, so the pass never speculates a conditionally executed
    definition — sound on arbitrary CFGs, not just frontend output. *)

val run : Vir.Ir.func -> unit
(** In-place; idempotent.  Fires the [pass.licm_dom.hoisted] telemetry
    counter. *)
