open Vir.Ir
module Iset = Cfg_utils.Iset

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)
(* ------------------------------------------------------------------ *)

let is_pow2 c = c > 0 && c land (c - 1) = 0

let log2 c =
  let rec go n acc = if n <= 1 then acc else go (n asr 1) (acc + 1) in
  go c 0

let popcount c =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go c 0

let bit_positions c =
  let rec go n i acc =
    if n = 0 then List.rev acc
    else if n land 1 = 1 then go (n asr 1) (i + 1) (i :: acc)
    else go (n asr 1) (i + 1) acc
  in
  go c 0 []

(* Exact truncating division by 2^k: bias negative dividends before the
   arithmetic shift.  sign = x >> 62 is all-ones for negative x (OCaml
   native ints are 63-bit). *)
let div_pow2_seq f d x k =
  let sign = fresh_reg f in
  let bias = fresh_reg f in
  let sum = fresh_reg f in
  [
    Bin (Shr, sign, x, Imm 62);
    Bin (And, bias, Reg sign, Imm ((1 lsl k) - 1));
    Bin (Add, sum, x, Reg bias);
    Bin (Shr, d, Reg sum, Imm k);
  ]

let reduce_instr f i =
  match i with
  | Bin (Mul, d, x, Imm c) | Bin (Mul, d, Imm c, x) ->
    if c = 0 then Some [ Mov (d, Imm 0) ]
    else if c = 1 then Some [ Mov (d, x) ]
    else if is_pow2 c then Some [ Bin (Shl, d, x, Imm (log2 c)) ]
    else if c > 2 && is_pow2 (c + 1) then begin
      (* c = 2^k - 1:  d = (x << k) - x *)
      let t = fresh_reg f in
      Some [ Bin (Shl, t, x, Imm (log2 (c + 1))); Bin (Sub, d, Reg t, x) ]
    end
    else if c > 0 && popcount c = 2 then begin
      match bit_positions c with
      | [ a; b ] ->
        let ta = fresh_reg f and tb = fresh_reg f in
        let shift_or_copy t k =
          if k = 0 then Mov (t, x) else Bin (Shl, t, x, Imm k)
        in
        Some [ shift_or_copy ta a; shift_or_copy tb b; Bin (Add, d, Reg ta, Reg tb) ]
      | _ -> None
    end
    else None
  | Bin (Div, d, x, Imm c) ->
    if c = 1 then Some [ Mov (d, x) ]
    else if is_pow2 c then Some (div_pow2_seq f d x (log2 c))
    else None
  | Bin (Mod, d, x, Imm c) ->
    if c = 1 then Some [ Mov (d, Imm 0) ]
    else if is_pow2 c then begin
      (* r = x - (x / c) * c *)
      let q = fresh_reg f in
      let scaled = fresh_reg f in
      Some
        (div_pow2_seq f q x (log2 c)
        @ [ Bin (Shl, scaled, Reg q, Imm (log2 c)); Bin (Sub, d, x, Reg scaled) ])
    end
    else None
  | _ -> None

let strength_reduce f =
  List.iter
    (fun b ->
      b.instrs <-
        List.concat_map
          (fun i ->
            match reduce_instr f i with Some seq -> seq | None -> [ i ])
          b.instrs)
    f.blocks

(* ------------------------------------------------------------------ *)
(* If-conversion (cmov)                                                *)
(* ------------------------------------------------------------------ *)

(* An arm is convertible when it is short, branch-free, and side-effect
   free so it can be executed speculatively.  Loads are excluded: a
   speculated load could fault where the original program would not. *)
let speculable_arm limit blk =
  List.length blk.instrs <= limit
  && List.for_all
       (function
         | Bin _ | Un _ | Mov _ | Select _ -> true
         | Load _ | Store _ | Slot_load _ | Slot_store _ | Call _ | Vload _
         | Vstore _ | Vbin _ | Vsplat _ | Vpack _ | Vreduce _ | Print_int _
         | Print_char _ | Read_input _ | Input_len _ ->
           false)
       blk.instrs

(* Rename the registers an arm defines so both arms can run before the
   select.  Returns the rewritten instructions and the final mapping from
   original destination register to its renamed stand-in. *)
let rename_arm f blk =
  let env = Hashtbl.create 8 in
  let map_use o =
    match o with
    | Imm _ -> o
    | Reg r -> (
      match Hashtbl.find_opt env r with Some r' -> Reg r' | None -> o)
  in
  let def d =
    let d' = fresh_reg f in
    Hashtbl.replace env d d';
    d'
  in
  let instrs =
    List.map
      (fun i ->
        match i with
        | Bin (op, d, a, b) ->
          let a = map_use a and b = map_use b in
          Bin (op, def d, a, b)
        | Un (op, d, a) ->
          let a = map_use a in
          Un (op, def d, a)
        | Mov (d, a) ->
          let a = map_use a in
          Mov (def d, a)
        | Select (d, c, x, y) ->
          let c = map_use c and x = map_use x and y = map_use y in
          Select (def d, c, x, y)
        | _ -> assert false)
      blk.instrs
  in
  (instrs, env)

let if_convert f =
  let changed = ref false in
  let limit = 6 in
  let convert () =
    let preds = predecessors f in
    let by_label = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace by_label b.label b) f.blocks;
    let single_pred l =
      match Hashtbl.find_opt preds l with Some [ _ ] -> true | _ -> false
    in
    let arm_of l =
      match Hashtbl.find_opt by_label l with
      | Some blk when single_pred l && speculable_arm limit blk -> (
        match blk.term with Jmp j -> Some (blk, j) | _ -> None)
      | Some _ | None -> None
    in
    let any = ref false in
    List.iter
      (fun b ->
        if not !any then
          match b.term with
          | Br (c, t, e) when t <> e -> (
            let emit_selects cond arms join =
              (* arms: [(instrs, env, taken_when_cond_true)] *)
              let all_instrs =
                List.concat_map (fun (is, _, _) -> is) arms
              in
              let dests =
                List.sort_uniq compare
                  (List.concat_map
                     (fun (_, env, _) ->
                       Hashtbl.fold (fun d _ acc -> d :: acc) env [])
                     arms)
              in
              let lookup pick_true d =
                let rec find = function
                  | [] -> Reg d
                  | (_, env, when_true) :: rest ->
                    if when_true = pick_true then
                      match Hashtbl.find_opt env d with
                      | Some d' -> Reg d'
                      | None -> find rest
                    else find rest
                in
                find arms
              in
              let selects =
                List.map
                  (fun d -> Select (d, cond, lookup true d, lookup false d))
                  dests
              in
              b.instrs <- b.instrs @ all_instrs @ selects;
              b.term <- Jmp join;
              changed := true;
              any := true
            in
            match (arm_of t, arm_of e) with
            | Some (tb, jt), Some (eb, je) when jt = je && jt <> t && jt <> e
              ->
              (* diamond *)
              let ti, tenv = rename_arm f tb in
              let ei, eenv = rename_arm f eb in
              emit_selects c [ (ti, tenv, true); (ei, eenv, false) ] jt
            | Some (tb, jt), None when jt = e ->
              (* triangle: then-arm falls into the else target *)
              let ti, tenv = rename_arm f tb in
              emit_selects c [ (ti, tenv, true) ] e
            | None, Some (eb, je) when je = t ->
              let ei, eenv = rename_arm f eb in
              emit_selects c [ (ei, eenv, false) ] t
            | _ -> ())
          | _ -> ())
      f.blocks;
    !any
  in
  (* convert one site at a time so predecessor info stays fresh *)
  let rec loop n = if n > 0 && convert () then loop (n - 1) in
  loop 64;
  if !changed then begin
    Cleanup.simplify_cfg f;
    Cleanup.lvn f;
    Cleanup.dce f
  end

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion                                          *)
(* ------------------------------------------------------------------ *)

let licm f =
  (* Process loops outermost-first: a preheader created for an inner loop
     sits inside its enclosing loops but is not part of their (precomputed)
     body sets, so definitions moved there would wrongly look invariant to
     an outer loop processed later. *)
  let loops = List.rev (Cfg_utils.natural_loops f) in
  (* count definitions of each register across the whole function *)
  let def_count = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match instr_def i with
          | Some d ->
            Hashtbl.replace def_count d
              (1 + try Hashtbl.find def_count d with Not_found -> 0)
          | None -> ())
        b.instrs)
    f.blocks;
  List.iter
    (fun { Cfg_utils.header; body; _ } ->
      let loop_blocks = List.filter (fun b -> Iset.mem b.label body) f.blocks in
      let defined_in_loop = Hashtbl.create 32 in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match instr_def i with
              | Some d -> Hashtbl.replace defined_in_loop d ()
              | None -> ())
            b.instrs;
          (* a [Loop_branch] counter is decremented by the terminator on
             every iteration — loop-varying even with no instruction def *)
          match b.term with
          | Loop_branch (r, _, _) -> Hashtbl.replace defined_in_loop r ()
          | _ -> ())
        loop_blocks;
      (* A hoistable instruction: pure computation, defined exactly once
         in the function, every register operand defined outside the loop
         (one round; chains of invariant computations hoist across
         repeated pipeline applications). *)
      let is_hoistable i =
        match i with
        | Bin (_, d, a, b2) ->
          Hashtbl.find_opt def_count d = Some 1
          && List.for_all
               (fun o ->
                 match o with
                 | Imm _ -> true
                 | Reg r -> not (Hashtbl.mem defined_in_loop r))
               [ a; b2 ]
        | Un (_, d, a) | Mov (d, a) ->
          Hashtbl.find_opt def_count d = Some 1
          && (match a with
             | Imm _ -> true
             | Reg r -> not (Hashtbl.mem defined_in_loop r))
        | Select _ | Load _ | Store _ | Slot_load _ | Slot_store _ | Call _
        | Vload _ | Vstore _ | Vbin _ | Vsplat _ | Vpack _ | Vreduce _
        | Print_int _ | Print_char _ | Read_input _ | Input_len _ ->
          false
      in
      let hoisted = ref [] in
      List.iter
        (fun b ->
          let keep, out =
            List.partition (fun i -> not (is_hoistable i)) b.instrs
          in
          if out <> [] then begin
            b.instrs <- keep;
            hoisted := !hoisted @ out
          end)
        loop_blocks;
      if !hoisted <> [] then begin
        (* build a preheader: redirect entry edges from outside the loop *)
        let pre_label = fresh_label f in
        let pre =
          { label = pre_label; instrs = !hoisted; term = Jmp header }
        in
        List.iter
          (fun b ->
            if not (Iset.mem b.label body) then
              b.term <-
                map_targets (fun l -> if l = header then pre_label else l) b.term)
          f.blocks;
        (* insert the preheader immediately before the header in layout *)
        let rec insert = function
          | [] -> [ pre ]
          | b :: rest when b.label = header -> pre :: b :: rest
          | b :: rest -> b :: insert rest
        in
        f.blocks <- insert f.blocks
      end)
    loops

(* ------------------------------------------------------------------ *)
(* Tail-call optimization                                              *)
(* ------------------------------------------------------------------ *)

let tail_call f =
  List.iter
    (fun b ->
      match b.term with
      | Ret (Some (Reg r)) -> (
        match List.rev b.instrs with
        | Call (Some r', callee, args) :: rest when r' = r ->
          b.instrs <- List.rev rest;
          b.term <- Tail_call (callee, args)
        | _ -> ())
      | _ -> ())
    f.blocks

(* ------------------------------------------------------------------ *)
(* Branch on count register                                            *)
(* ------------------------------------------------------------------ *)

let branch_count_reg f =
  (* how many times is register r read anywhere in the function? *)
  let use_count r =
    List.fold_left
      (fun acc b ->
        let acc =
          List.fold_left
            (fun acc i ->
              acc + List.length (List.filter (( = ) r) (instr_uses i)))
            acc b.instrs
        in
        acc + List.length (List.filter (( = ) r) (term_uses b.term)))
      0 f.blocks
  in
  List.iter
    (fun b ->
      match b.term with
      | Br (Reg n, t, e) -> (
        match List.rev b.instrs with
        (* n = n - 1; br n  →  loop n *)
        | Bin (Sub, n', Reg n'', Imm 1) :: rest when n' = n && n'' = n ->
          b.instrs <- List.rev rest;
          b.term <- Loop_branch (n, t, e)
        (* t = n - 1; n = t; br t  →  loop n   (when t is otherwise dead) *)
        | Mov (n', Reg t') :: Bin (Sub, t'', Reg n'', Imm 1) :: rest
          when t' = n && t'' = n && n'' = n' && use_count n = 2 ->
          b.instrs <- List.rev rest;
          b.term <- Loop_branch (n', t, e)
        | _ -> ())
      | _ -> ())
    f.blocks

(* ------------------------------------------------------------------ *)
(* SLP vectorization of adjacent constant-index stores                 *)
(* ------------------------------------------------------------------ *)

let slp_vectorize f =
  let rewrite instrs =
    let rec go acc = function
      | Store (g1, Imm k1, v1)
        :: Store (g2, Imm k2, v2)
        :: Store (g3, Imm k3, v3)
        :: Store (g4, Imm k4, v4)
        :: rest
        when g1 = g2 && g2 = g3 && g3 = g4 && k2 = k1 + 1 && k3 = k1 + 2
             && k4 = k1 + 3
             && List.for_all
                  (function Imm _ -> true | Reg _ -> false)
                  [ v1; v2; v3; v4 ] ->
        let v = fresh_vreg f in
        go
          (Vstore (g1, Imm k1, v) :: Vpack (v, [ v1; v2; v3; v4 ]) :: acc)
          rest
      | i :: rest -> go (i :: acc) rest
      | [] -> List.rev acc
    in
    go [] instrs
  in
  List.iter (fun b -> b.instrs <- rewrite b.instrs) f.blocks

(* ------------------------------------------------------------------ *)
(* Layout passes                                                       *)
(* ------------------------------------------------------------------ *)

let order_by f labels =
  let by_label = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_label b.label b) f.blocks;
  let picked = List.filter_map (Hashtbl.find_opt by_label) labels in
  let rest =
    List.filter (fun b -> not (List.mem b.label labels)) f.blocks
  in
  f.blocks <- picked @ rest

let reorder_blocks f = order_by f (Cfg_utils.block_order_dfs f)

let partition_blocks f =
  reorder_blocks f;
  let loops = Cfg_utils.natural_loops f in
  let hot =
    List.fold_left
      (fun acc { Cfg_utils.body; _ } -> Iset.union acc body)
      Iset.empty loops
  in
  match f.blocks with
  | entry :: rest ->
    let hot_blocks, cold_blocks =
      List.partition (fun b -> Iset.mem b.label hot) rest
    in
    f.blocks <- (entry :: hot_blocks) @ cold_blocks
  | [] -> ()

let reorder_functions p =
  let call_count = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Call (_, callee, _) ->
                Hashtbl.replace call_count callee
                  (1 + try Hashtbl.find call_count callee with Not_found -> 0)
              | _ -> ())
            b.instrs;
          match b.term with
          | Tail_call (callee, _) ->
            Hashtbl.replace call_count callee
              (1 + try Hashtbl.find call_count callee with Not_found -> 0)
          | _ -> ())
        f.blocks)
    p.funcs;
  let count f =
    match Hashtbl.find_opt call_count f.fname with Some n -> n | None -> 0
  in
  p.funcs <-
    List.stable_sort (fun a b -> compare (count b) (count a)) p.funcs
