(** Global value numbering with redundancy elimination (-fgvn / -ftree-pre).

    Dominator-tree-scoped value numbering over pure VIR expressions
    (Bin/Un/Select with canonicalized commutative operands): a dominated
    recomputation of an available expression becomes a [Mov] from the
    dominating result.  Replacement is one-for-one, so the instruction
    count never increases; a cleanup pass (required by the flag's SAT
    constraint) propagates and kills the copies. *)

val run : Vir.Ir.func -> unit
(** In-place; idempotent (copies are never value-numbered).  Fires the
    [pass.gvn.replaced] telemetry counter. *)
