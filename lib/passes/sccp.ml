open Vir.Ir
module CP = Analysis.Dataflow.Constprop
module IV = Analysis.Dataflow.Interval

(* Sparse conditional constant propagation on the shared dataflow
   instances.  The constprop lattice drives operand substitution and
   instruction folding; the interval instance additionally prunes branch
   and switch edges the constant lattice alone cannot prove dead (a
   condition known nonzero without a known value, a switch arm outside
   the scrutinee's range).

   The transform is deliberately split from the driver: [transform] does
   one monotone rewrite round and reports what it pruned, so tests can
   cross-check every pruned edge against fresh analysis facts on the
   pristine function; [run] iterates rounds with CFG cleanup in between,
   because pruning an edge sharpens the join at its former target and can
   expose further constants. *)

type stats = { folds : int; pruned_edges : (int * int) list }

let transform f =
  let cp_in, _ = CP.solve f in
  let _, iv_out = IV.solve f in
  let folds = ref 0 in
  let pruned = ref [] in
  List.iter
    (fun b ->
      match Hashtbl.find_opt cp_in b.label with
      | None | Some CP.Unreached ->
        (* statically dead block: leave it for simplify_cfg *)
        ()
      | Some (CP.Env env0) ->
        let env = ref env0 in
        let subst o =
          match o with
          | Imm _ -> o
          | Reg r -> (
            match CP.lookup !env r with CP.Const v -> Imm v | CP.Top -> o)
        in
        b.instrs <-
          List.map
            (fun i ->
              let i' = map_operands subst i in
              let i' =
                match i' with
                | Bin (op, d, Imm a, Imm b') ->
                  Mov (d, Imm (eval_binop op a b'))
                | Un (op, d, Imm a) -> Mov (d, Imm (eval_unop op a))
                | Select (d, Imm c, x, y) -> Mov (d, if c <> 0 then x else y)
                | other -> other
              in
              (* advance on the original instruction: the rewrite preserves
                 its effect on the environment *)
              env := CP.eval_instr !env i;
              if i' <> i then incr folds;
              i')
            b.instrs;
        (* The terminator executes on the post-instruction state — NOT the
           solver's out-fact, which has already cleared a [Loop_branch]
           counter for the benefit of successors. *)
        let old_term = b.term in
        let t = term_map_operands subst old_term in
        let interval_env () =
          match Hashtbl.find_opt iv_out b.label with
          | Some (IV.Env ienv) -> Some ienv
          | Some IV.Unreached | None -> None
        in
        let t =
          match t with
          | Br (Imm c, a, b') -> Jmp (if c <> 0 then a else b')
          | Br (Reg r, a, b') -> (
            (* sign-definite condition: nonzero picks the true arm *)
            match interval_env () with
            | Some ienv ->
              let itv = IV.lookup ienv r in
              if itv.IV.lo > 0 || itv.IV.hi < 0 then Jmp a else Br (Reg r, a, b')
            | None -> t)
          | Switch (Imm v, cases, d) ->
            Jmp (try List.assoc v cases with Not_found -> d)
          | Switch (Reg r, cases, d) -> (
            match interval_env () with
            | Some ienv ->
              let itv = IV.lookup ienv r in
              let keep =
                List.filter
                  (fun (k, _) -> k >= itv.IV.lo && k <= itv.IV.hi)
                  cases
              in
              if keep = [] then Jmp d
              else if List.length keep < List.length cases then
                Switch (Reg r, keep, d)
              else t
            | None -> t)
          | other -> other
        in
        if t <> old_term then begin
          b.term <- t;
          incr folds;
          let new_succs = successors t in
          List.iter
            (fun s ->
              if not (List.mem s new_succs) then
                pruned := (b.label, s) :: !pruned)
            (successors old_term)
        end)
    f.blocks;
  { folds = !folds; pruned_edges = List.rev !pruned }

let run f =
  let folds = ref 0 and pruned = ref 0 in
  (* Every rewrite is one-way (operands go Reg→Imm, instructions decay to
     Mov, edge sets shrink), so the fixpoint exists; the bound is a
     backstop, far above the pruning depth of any real function. *)
  let rec go n =
    if n > 0 then begin
      let s = transform f in
      folds := !folds + s.folds;
      pruned := !pruned + List.length s.pruned_edges;
      if s.folds > 0 then begin
        Cleanup.simplify_cfg f;
        Cleanup.dce f;
        go (n - 1)
      end
    end
  in
  go 32;
  if !folds > 0 then Telemetry.add_count ~by:!folds "pass.sccp.folds";
  if !pruned > 0 then Telemetry.add_count ~by:!pruned "pass.sccp.pruned_edges"
