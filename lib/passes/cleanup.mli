(** Baseline scalar cleanups — the passes every real optimization level
    above -O0 runs.  All operate in place on a {!Vir.Ir.func} or program.

    These are not flag-gated individually in the paper's sense (they are
    part of -O1 and above in both compiler profiles); the flag-gated
    transformation passes in {!Ast_opt} and {!Ir_opt} rely on them to
    clean up the code they generate. *)

val simplify_cfg : Vir.Ir.func -> unit
(** Remove unreachable blocks, thread trivial jumps, fold constant and
    same-target branches, and merge single-predecessor chains.  Runs to a
    fixpoint. *)

val mem2reg : Vir.Ir.func -> unit
(** Promote every frame slot to a dedicated virtual register (MinC takes
    no addresses, so every slot is promotable).  Leaves copies behind for
    {!lvn} to clean up. *)

val lvn : Vir.Ir.func -> unit
(** Local value numbering per basic block: constant folding and
    propagation, copy propagation, common-subexpression elimination
    (including redundant loads, invalidated by stores and calls), and a
    few algebraic simplifications. *)

val dce : Vir.Ir.func -> unit
(** Global dead-code elimination driven by liveness analysis over the
    CFG.  Removes side-effect-free instructions whose destination is
    dead.  Runs to a fixpoint. *)

val run_baseline : Vir.Ir.func -> unit
(** The standard clean sequence: simplify_cfg, mem2reg, lvn, dce,
    simplify_cfg — applied after lowering and between transformation
    passes. *)

val liveness :
  Vir.Ir.func -> (int, Cfg_utils.Iset.t) Hashtbl.t * (int, Cfg_utils.Iset.t) Hashtbl.t
(** [(live_in, live_out)] register sets per block label.  Exposed for the
    register allocator. *)
