(** Flag-gated source-level (AST) transformation passes.

    These implement the inter-procedural and loop optimizations the paper
    identifies as the main sources of binary code difference (§3.1):
    function inlining, loop unrolling / peeling / unswitching /
    distribution / unroll-and-jam, builtin expansion, and function
    instrumentation.  All passes are semantics-preserving; each returns a
    new program. *)

val normalize_calls : Minic.Ast.program -> Minic.Ast.program
(** Hoist nested calls into temporaries so every call appears as the
    right-hand side of an assignment/declaration or as a bare statement.
    Loop conditions and steps are left alone (their calls are simply not
    inlined).  Run before {!inline} and {!expand_builtins}. *)

val inline :
  max_size:int -> rounds:int -> Minic.Ast.program -> Minic.Ast.program
(** Inline non-recursive callees of size ≤ [max_size] at normalized call
    sites, [rounds] times.  Return statements in the callee become writes
    to the result temporary guarded by a completion flag, so arbitrary
    control flow inlines correctly.  [-finline-small-functions] uses a
    small [max_size]; [-finline-functions] a large one. *)

val unroll :
  factor:int -> full_limit:int -> Minic.Ast.program -> Minic.Ast.program
(** Unroll counted [for] loops by [factor] (with a scalar remainder
    loop); loops with a compile-time trip count ≤ [full_limit] are fully
    unrolled.  Code-growth caps mirror real compilers' unroll limits.
    [-funroll-loops]. *)

val peel : Minic.Ast.program -> Minic.Ast.program
(** Peel the first iteration of counted loops.  [-fpeel-loops]. *)

val unswitch : Minic.Ast.program -> Minic.Ast.program
(** Hoist loop-invariant conditionals out of loops, duplicating the loop
    body on both branches.  [-funswitch-loops]. *)

val distribute : Minic.Ast.program -> Minic.Ast.program
(** Split constant-initialization stores out of mixed loops into their
    own (memset-shaped) loops.  [-ftree-loop-distribute-patterns]. *)

val unroll_and_jam : Minic.Ast.program -> Minic.Ast.program
(** Unroll 2× the outer loop of a 2-deep nest and fuse the inner bodies.
    [-floop-unroll-and-jam]. *)

val expand_builtins : Minic.Ast.program -> Minic.Ast.program
(** Expand [memset]/[memcpy] calls with constant arguments and small
    counts into straight-line stores (the strcpy-as-mov-sequence effect
    of Figure 3d).  Requires {!normalize_calls} first. *)

val instrument : Minic.Ast.program -> Minic.Ast.program
(** [-finstrument-functions]: wrap every user function in an entry/exit
    bookkeeping shim, redirecting all calls through the wrapper. *)
