open Vir.Ir
module Iset = Set.Make (Int)

let reachable f =
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let seen = ref Iset.empty in
  let rec go l =
    if not (Iset.mem l !seen) then begin
      seen := Iset.add l !seen;
      match Hashtbl.find_opt block_table l with
      | Some b -> List.iter go (successors b.term)
      | None -> ()
    end
  in
  (match f.blocks with b :: _ -> go b.label | [] -> ());
  !seen

let dominators f =
  let reach = reachable f in
  let blocks = List.filter (fun b -> Iset.mem b.label reach) f.blocks in
  let labels = List.map (fun b -> b.label) blocks in
  let all = Iset.of_list labels in
  let entry = (entry_block f).label in
  let preds_tbl = predecessors f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l = entry then Hashtbl.replace dom l (Iset.singleton entry)
      else Hashtbl.replace dom l all)
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let preds =
            (try Hashtbl.find preds_tbl l with Not_found -> [])
            |> List.filter (fun p -> Iset.mem p reach)
          in
          let inter =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with
                | None -> Some dp
                | Some s -> Some (Iset.inter s dp))
              None preds
          in
          let nd =
            match inter with
            | None -> Iset.singleton l
            | Some s -> Iset.add l s
          in
          if not (Iset.equal nd (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l nd;
            changed := true
          end
        end)
      labels
  done;
  dom

type loop = {
  header : int;
  body : Iset.t;
  back_edges : int list;
}

let natural_loops f =
  let dom = dominators f in
  let reach = reachable f in
  let preds_tbl = predecessors f in
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  (* back edge: s → h where h dominates s *)
  let back = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Iset.mem b.label reach then
        List.iter
          (fun succ ->
            match Hashtbl.find_opt dom b.label with
            | Some doms when Iset.mem succ doms ->
              let cur = try Hashtbl.find back succ with Not_found -> [] in
              Hashtbl.replace back succ (b.label :: cur)
            | Some _ | None -> ())
          (successors b.term))
    f.blocks;
  let loop_of_header header latches =
    (* body = header ∪ nodes that reach a latch without passing header *)
    let body = ref (Iset.singleton header) in
    let rec up l =
      if not (Iset.mem l !body) then begin
        body := Iset.add l !body;
        let preds = try Hashtbl.find preds_tbl l with Not_found -> [] in
        List.iter up (List.filter (fun p -> Iset.mem p reach) preds)
      end
    in
    List.iter up latches;
    { header; body = !body; back_edges = latches }
  in
  let loops =
    Hashtbl.fold (fun h latches acc -> loop_of_header h latches :: acc) back []
  in
  List.sort (fun a b -> compare (Iset.cardinal a.body) (Iset.cardinal b.body)) loops

let block_order_dfs f =
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let seen = ref Iset.empty in
  let order = ref [] in
  let rec go l =
    if not (Iset.mem l !seen) then begin
      seen := Iset.add l !seen;
      (match Hashtbl.find_opt block_table l with
      | Some b -> List.iter go (successors b.term)
      | None -> ());
      order := l :: !order
    end
  in
  (match f.blocks with b :: _ -> go b.label | [] -> ());
  !order
