open Vir.Ir
module Iset = Analysis.Dataflow.Iset

let reachable f =
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let seen = ref Iset.empty in
  let rec go l =
    if not (Iset.mem l !seen) then begin
      seen := Iset.add l !seen;
      match Hashtbl.find_opt block_table l with
      | Some b -> List.iter go (successors b.term)
      | None -> ()
    end
  in
  (match f.blocks with b :: _ -> go b.label | [] -> ());
  !seen

(* Dominator sets on the shared worklist solver (greatest fixpoint of
   dom(b) = {b} ∪ ⋂ preds).  The historical contract is preserved: the
   table has entries for reachable blocks only, and every set contains
   only reachable labels. *)
let dominators f =
  let reach = reachable f in
  let full = Analysis.Dataflow.Dominators.solve f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Iset.mem b.label reach then
        Hashtbl.replace dom b.label
          (Iset.inter reach (Hashtbl.find full b.label)))
    f.blocks;
  dom

type loop = {
  header : int;
  body : Iset.t;
  back_edges : int list;
}

let natural_loops f =
  let dom = dominators f in
  let reach = reachable f in
  let preds_tbl = predecessors f in
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  (* back edge: s → h where h dominates s *)
  let back = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Iset.mem b.label reach then
        List.iter
          (fun succ ->
            match Hashtbl.find_opt dom b.label with
            | Some doms when Iset.mem succ doms ->
              let cur = try Hashtbl.find back succ with Not_found -> [] in
              Hashtbl.replace back succ (b.label :: cur)
            | Some _ | None -> ())
          (successors b.term))
    f.blocks;
  let loop_of_header header latches =
    (* body = header ∪ nodes that reach a latch without passing header *)
    let body = ref (Iset.singleton header) in
    let rec up l =
      if not (Iset.mem l !body) then begin
        body := Iset.add l !body;
        let preds = try Hashtbl.find preds_tbl l with Not_found -> [] in
        List.iter up (List.filter (fun p -> Iset.mem p reach) preds)
      end
    in
    List.iter up latches;
    { header; body = !body; back_edges = latches }
  in
  let loops =
    Hashtbl.fold (fun h latches acc -> loop_of_header h latches :: acc) back []
  in
  List.sort (fun a b -> compare (Iset.cardinal a.body) (Iset.cardinal b.body)) loops

let block_order_dfs f =
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let seen = ref Iset.empty in
  let order = ref [] in
  let rec go l =
    if not (Iset.mem l !seen) then begin
      seen := Iset.add l !seen;
      (match Hashtbl.find_opt block_table l with
      | Some b -> List.iter go (successors b.term)
      | None -> ());
      order := l :: !order
    end
  in
  (match f.blocks with b :: _ -> go b.label | [] -> ());
  !order
