open Vir.Ir
module Iset = Analysis.Dataflow.Iset

(* Aggressive loop-invariant code motion on the dominator instance.

   Differences from the single-round bet in {!Ir_opt.licm}:
   - whole invariant *chains* hoist in one application (an operand
     defined inside the loop is fine if its defining instruction is
     itself marked invariant);
   - pure [Select]s are candidates, not just Bin/Un/Mov;
   - a candidate's definition must dominate every use of its register,
     which makes the pass sound on arbitrary CFGs — a conditionally
     executed single def whose register is read on other paths (where it
     still holds 0) is never speculated into the preheader;
   - [Loop_branch] counters are treated as loop-varying and
     multiply-defined, since the terminator's decrement is a def the
     instruction stream doesn't show.

   Loops are processed outermost-first, as in {!Ir_opt.licm}: an inner
   loop's preheader is outside its enclosing loops' precomputed bodies,
   so instructions moved there must not be re-examined by an outer loop
   working from stale body sets.  Dominators and def/use sites are
   recomputed per loop because each preheader changes the CFG. *)

let pure_candidate = function
  | Bin _ | Un _ | Mov _ | Select _ -> true
  | Load _ | Store _ | Slot_load _ | Slot_store _ | Call _ | Vload _
  | Vstore _ | Vbin _ | Vsplat _ | Vpack _ | Vreduce _ | Print_int _
  | Print_char _ | Read_input _ | Input_len _ ->
    false

let run f =
  let hoisted_total = ref 0 in
  let process { Cfg_utils.header; body; _ } =
    let dom = Cfg_utils.dominators f in
    let def_count = Hashtbl.create 64 in
    let def_site = Hashtbl.create 64 in
    let use_sites = Hashtbl.create 64 in
    let bump r n =
      Hashtbl.replace def_count r
        (n + try Hashtbl.find def_count r with Not_found -> 0)
    in
    List.iter (fun p -> bump p 1) f.params;
    List.iter
      (fun b ->
        List.iteri
          (fun idx i ->
            (match instr_def i with
            | Some d ->
              bump d 1;
              Hashtbl.replace def_site d (b.label, idx)
            | None -> ());
            List.iter
              (fun r ->
                Hashtbl.replace use_sites r
                  ((b.label, idx)
                  :: (try Hashtbl.find use_sites r with Not_found -> [])))
              (instr_uses i))
          b.instrs;
        List.iter
          (fun r ->
            Hashtbl.replace use_sites r
              ((b.label, max_int)
              :: (try Hashtbl.find use_sites r with Not_found -> [])))
          (term_uses b.term);
        match b.term with Loop_branch (r, _, _) -> bump r 2 | _ -> ())
      f.blocks;
    let defined_in_loop = Hashtbl.create 32 in
    List.iter
      (fun b ->
        if Iset.mem b.label body then begin
          List.iter
            (fun i ->
              match instr_def i with
              | Some d -> Hashtbl.replace defined_in_loop d ()
              | None -> ())
            b.instrs;
          match b.term with
          | Loop_branch (r, _, _) -> Hashtbl.replace defined_in_loop r ()
          | _ -> ()
        end)
      f.blocks;
    let marked = Hashtbl.create 16 in
    let order = ref [] in
    (* every use of [d] must be dominated by its definition site *)
    let def_dominates_uses d (dl, di) =
      List.for_all
        (fun (ul, ui) ->
          if ul = dl then di < ui
          else
            match Hashtbl.find_opt dom ul with
            | Some doms -> Iset.mem dl doms
            | None -> false (* use in an unreachable block: give up *))
        (try Hashtbl.find use_sites d with Not_found -> [])
    in
    let invariant_reg r =
      not (Hashtbl.mem defined_in_loop r) || Hashtbl.mem marked r
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          if Iset.mem b.label body then
            List.iteri
              (fun idx i ->
                match instr_def i with
                | Some d
                  when (not (Hashtbl.mem marked d))
                       && pure_candidate i
                       && Hashtbl.find_opt def_count d = Some 1
                       && (not (List.mem d (instr_uses i)))
                       && List.for_all invariant_reg (instr_uses i)
                       && def_dominates_uses d (b.label, idx) ->
                  Hashtbl.replace marked d ();
                  (* marking order is a topological order of the chain:
                     an instruction only qualifies once its marked
                     operands already are *)
                  order := i :: !order;
                  changed := true
                | _ -> ())
              b.instrs)
        f.blocks
    done;
    if Hashtbl.length marked > 0 then begin
      List.iter
        (fun b ->
          if Iset.mem b.label body then
            b.instrs <-
              List.filter
                (fun i ->
                  match instr_def i with
                  | Some d -> not (Hashtbl.mem marked d)
                  | None -> true)
                b.instrs)
        f.blocks;
      let pre_label = fresh_label f in
      let pre =
        { label = pre_label; instrs = List.rev !order; term = Jmp header }
      in
      List.iter
        (fun b ->
          if not (Iset.mem b.label body) then
            b.term <-
              map_targets (fun l -> if l = header then pre_label else l) b.term)
        f.blocks;
      let rec insert = function
        | [] -> [ pre ]
        | b :: rest when b.label = header -> pre :: b :: rest
        | b :: rest -> b :: insert rest
      in
      f.blocks <- insert f.blocks;
      hoisted_total := !hoisted_total + Hashtbl.length marked
    end
  in
  List.iter process (List.rev (Cfg_utils.natural_loops f));
  if !hoisted_total > 0 then
    Telemetry.add_count ~by:!hoisted_total "pass.licm_dom.hoisted"
