(** Flag-gated IR-level transformation passes.

    Together with {!Ast_opt} these implement the optimization effects the
    paper studies: branch-free code via if-conversion (Figure 2b),
    decrement-and-branch loops ([-fbranch-count-reg]), strength reduction
    of multiplication/division/modulo by constants (Figure 3a), tail-call
    optimization (§3.1.1), SLP vectorization of adjacent stores, loop-
    invariant code motion, and the block/function layout passes. *)

val strength_reduce : Vir.Ir.func -> unit
(** Rewrite [*, /, %] by suitable constants into shift/add sequences
    (division and modulo restricted to powers of two; multiplication
    handles any constant with ≤ 2 set bits and 2^k−1 patterns). *)

val if_convert : Vir.Ir.func -> unit
(** Convert two-sided (diamond) and one-sided (triangle) branches whose
    arms are single register assignments into branch-free {!Vir.Ir.Select}
    instructions (cmov). *)

val licm : Vir.Ir.func -> unit
(** Hoist loop-invariant pure instructions into freshly created loop
    preheaders ([-fmove-loop-invariants]). *)

val tail_call : Vir.Ir.func -> unit
(** Replace call-then-return sequences with {!Vir.Ir.Tail_call}
    terminators (the jump-instead-of-call effect of §3.1.1). *)

val branch_count_reg : Vir.Ir.func -> unit
(** Fuse decrement + branch-if-nonzero into {!Vir.Ir.Loop_branch} (the
    x86 [loop] instruction; [-fbranch-count-reg]). *)

val slp_vectorize : Vir.Ir.func -> unit
(** Pack runs of 4 stores to consecutive constant indices of one array
    into a vector store ([-fslp-vectorize]). *)

val reorder_blocks : Vir.Ir.func -> unit
(** Lay blocks out in reverse postorder to maximize fallthrough
    ([-freorder-blocks]). *)

val partition_blocks : Vir.Ir.func -> unit
(** Reverse postorder, then move loop-free "cold" blocks behind the hot
    (loop) section ([-freorder-blocks-and-partition]). *)

val reorder_functions : Vir.Ir.program -> unit
(** Emit functions in descending static-call-count order instead of
    source order ([-freorder-functions]). *)
