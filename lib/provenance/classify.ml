type label = {
  profile : string;
  preset : string;
}

type model = {
  centroids : (label * float array) list;
  mutable threshold : float;
}

let nfeat = Diffing.Bcode.n_opcode_classes + 8

let features (bin : Isa.Binary.t) =
  let v = Array.make nfeat 0.0 in
  let insns = Isa.Codec.decode_all bin.arch bin.text in
  let n = max 1 (List.length insns) in
  List.iter
    (fun (_, i) ->
      let k = Diffing.Bcode.opcode_class i in
      v.(k) <- v.(k) +. 1.0;
      let extra = Diffing.Bcode.n_opcode_classes in
      match i with
      | Isa.Insn.Inop -> v.(extra) <- v.(extra) +. 1.0  (* alignment pads *)
      | Isa.Insn.Ijtab _ -> v.(extra + 1) <- v.(extra + 1) +. 1.0
      | Isa.Insn.Iloop _ -> v.(extra + 2) <- v.(extra + 2) +. 1.0
      | Isa.Insn.Icmov _ | Isa.Insn.Isetcc _ -> v.(extra + 3) <- v.(extra + 3) +. 1.0
      | Isa.Insn.Ivalu _ | Isa.Insn.Ivld _ | Isa.Insn.Ivst _ ->
        v.(extra + 4) <- v.(extra + 4) +. 1.0
      | Isa.Insn.Ipush (Isa.Insn.Oreg r) when r = Isa.Insn.fp ->
        v.(extra + 5) <- v.(extra + 5) +. 1.0  (* frame-pointer prologues *)
      | Isa.Insn.Icallr _ -> v.(extra + 6) <- v.(extra + 6) +. 1.0
      | Isa.Insn.Iinc _ | Isa.Insn.Idec _ | Isa.Insn.Ixorz _ ->
        v.(extra + 7) <- v.(extra + 7) +. 1.0  (* peephole idioms *)
      | _ -> ())
    insns;
  (* normalize by instruction count *)
  Array.map (fun x -> x /. float_of_int n) v

let distance a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := !d +. ((x -. b.(i)) ** 2.0)) a;
  sqrt !d

let train labelled =
  (* group by label, average features *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (lbl, bin) ->
      let f = features bin in
      let cur = try Hashtbl.find groups lbl with Not_found -> [] in
      Hashtbl.replace groups lbl (f :: cur))
    labelled;
  let centroids =
    Hashtbl.fold
      (fun lbl fs acc ->
        let n = List.length fs in
        let c = Array.make nfeat 0.0 in
        List.iter (fun f -> Array.iteri (fun i x -> c.(i) <- c.(i) +. x) f) fs;
        let c = Array.map (fun x -> x /. float_of_int n) c in
        (lbl, c) :: acc)
      groups []
  in
  (* threshold: 95th percentile of in-class sample→own-centroid distance *)
  let dists =
    List.map
      (fun (lbl, bin) ->
        let c = List.assoc lbl centroids in
        distance (features bin) c)
      labelled
  in
  let threshold = Util.Stats.percentile dists 0.95 *. 1.25 in
  { centroids; threshold = max threshold 0.01 }

let classify model bin =
  let f = features bin in
  let best =
    List.fold_left
      (fun acc (lbl, c) ->
        let d = distance f c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (lbl, d))
      None model.centroids
  in
  match best with
  | None -> ({ profile = "unknown"; preset = "non-default" }, infinity)
  | Some (lbl, d) ->
    if d > model.threshold then
      ({ profile = lbl.profile; preset = "non-default" }, d)
    else (lbl, d)

let set_threshold model t = model.threshold <- t
