type label = {
  profile : string;
  preset : string;
}

type model = {
  centroids : (label * float array) list;
  mutable threshold : float;
}

(* The feature extractor lives in the binary static-analysis layer; the
   classifier consumes it unchanged (the vector is bit-identical to the
   historical in-module one, so trained accuracy is unaffected). *)
let nfeat = Binsight.Features.n_provenance

let features = Binsight.Features.provenance_vector

let distance a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := !d +. ((x -. b.(i)) ** 2.0)) a;
  sqrt !d

let train labelled =
  (* group by label, average features *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (lbl, bin) ->
      let f = features bin in
      let cur = try Hashtbl.find groups lbl with Not_found -> [] in
      Hashtbl.replace groups lbl (f :: cur))
    labelled;
  let centroids =
    Hashtbl.fold
      (fun lbl fs acc ->
        let n = List.length fs in
        let c = Array.make nfeat 0.0 in
        List.iter (fun f -> Array.iteri (fun i x -> c.(i) <- c.(i) +. x) f) fs;
        let c = Array.map (fun x -> x /. float_of_int n) c in
        (lbl, c) :: acc)
      groups []
  in
  (* threshold: 95th percentile of in-class sample→own-centroid distance *)
  let dists =
    List.map
      (fun (lbl, bin) ->
        let c = List.assoc lbl centroids in
        distance (features bin) c)
      labelled
  in
  let threshold = Util.Stats.percentile dists 0.95 *. 1.25 in
  { centroids; threshold = max threshold 0.01 }

let classify model bin =
  let f = features bin in
  let best =
    List.fold_left
      (fun acc (lbl, c) ->
        let d = distance f c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (lbl, d))
      None model.centroids
  in
  match best with
  | None -> ({ profile = "unknown"; preset = "non-default" }, infinity)
  | Some (lbl, d) ->
    if d > model.threshold then
      ({ profile = lbl.profile; preset = "non-default" }, d)
    else (lbl, d)

let set_threshold model t = model.threshold <- t
