(** Compiler-provenance recovery — the BinComp / ORIGIN substitute behind
    the Figure 1(a) Mirai study.

    A nearest-centroid classifier over binary-level features (opcode-kind
    histogram, prologue shape, alignment padding, switch-lowering and
    vector/loop-instruction witnesses) trained on labelled binaries
    compiled at the known presets.  A sample whose distance to every
    preset centroid exceeds a calibrated threshold is labelled
    "non-default" — exactly the judgement the paper's study makes for
    42 % of Mirai variants. *)

type label = {
  profile : string;  (** "gcc-10.2" or "llvm-11.0" *)
  preset : string;  (** "O0" … "Os", or "non-default" *)
}

type model

val features : Isa.Binary.t -> float array
(** Alias of {!Binsight.Features.provenance_vector} — the classifier
    trains on binsight-extracted features. *)

val train : (label * Isa.Binary.t) list -> model
(** Labelled presets only. *)

val classify : model -> Isa.Binary.t -> label * float
(** Best label and its distance; the label's [preset] is ["non-default"]
    when no centroid is close enough. *)

val set_threshold : model -> float -> unit
(** Override the non-default rejection threshold (calibrated during
    training to the 95th percentile of in-class distances). *)
