(** Anti-virus fleet simulation — the VirusTotal stand-in for Table 2 and
    Figure 1(b).

    A fleet of signature scanners is trained on a known-bad sample (the
    default-compiled malware binary).  Three scanner classes reproduce
    the mechanism the paper observed:

    - code scanners (the majority) match opcode-kind subsequences of the
      text section — robust to register renaming and nearby-default
      recompiles, broken by BinTuner's pipeline-reshaping flag soups;
    - data scanners match raw byte n-grams of the data section
      (configuration strings, credential tables) — these survive any
      recompilation, which is why "the rest of anti-virus scanners can
      recognize the tuned samples" (§5.4);
    - structure scanners match call-graph fingerprints — broken by
      inlining and instrumentation. *)

type fleet

val fleet_size : int
(** Number of scanners (≈ the VirusTotal engine count). *)

val train : ?goodware:Isa.Binary.t list -> seed:int -> Isa.Binary.t -> fleet
(** Build the fleet's signature database from a reference sample.
    Candidate signatures also found in any [goodware] binary are
    discarded and redrawn — the false-positive vetting every real AV
    vendor performs. *)

val detections : fleet -> Isa.Binary.t -> int
(** How many scanners flag the sample. *)

val detections_by_class : fleet -> Isa.Binary.t -> int * int * int
(** (code, data, structure) scanner detections. *)
