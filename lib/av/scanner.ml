let fleet_size = 60

let code_scanners = 42

let data_scanners = 12

let structure_scanners = fleet_size - code_scanners - data_scanners

let () = assert (structure_scanners > 0)

type signature =
  | Code_seq of int list  (** opcode-kind sequence *)
  | Data_gram of string  (** raw data bytes *)
  | Call_shape of int  (** hashed call-graph fingerprint *)

type fleet = { sigs : signature list array }

let contains_seq hay needle =
  let n = Array.length hay and m = List.length needle in
  if m = 0 || m > n then false
  else begin
    let needle = Array.of_list needle in
    let rec at i j = j >= m || (hay.(i + j) = needle.(j) && at i (j + 1)) in
    let rec scan i = i + m <= n && (at i 0 || scan (i + 1)) in
    scan 0
  end

let contains_str hay needle =
  let n = String.length hay and m = String.length needle in
  if m = 0 || m > n then false
  else begin
    let rec at i j = j >= m || (hay.[i + j] = needle.[j] && at i (j + 1)) in
    let rec scan i = i + m <= n && (at i 0 || scan (i + 1)) in
    scan 0
  end

(* The opcode-kind stream of a binary: one small int per instruction. *)
let kind_stream (bin : Isa.Binary.t) =
  List.map
    (fun (_, i) -> Diffing.Bcode.opcode_class i)
    (Isa.Codec.decode_all bin.arch bin.text)

let call_fingerprints (bin : Isa.Binary.t) =
  let c = Diffing.Bcode.analyze bin in
  Array.to_list c.funcs
  |> List.map (fun (f : Diffing.Bcode.func) ->
         Hashtbl.hash (List.length f.calls, f.calls, Array.length f.blocks))

let train ?(goodware = []) ~seed (bin : Isa.Binary.t) =
  let rng = Util.Rng.create seed in
  let kinds = Array.of_list (kind_stream bin) in
  let nkinds = Array.length kinds in
  let data = bin.data in
  let shapes = call_fingerprints bin in
  let good_kinds =
    List.map (fun g -> Array.of_list (kind_stream g)) goodware
  in
  let good_data = List.map (fun g -> g.Isa.Binary.data) goodware in
  let good_shapes = List.concat_map call_fingerprints goodware in
  let sigs =
    Array.init fleet_size (fun scanner ->
        let srng = Util.Rng.split rng in
        if scanner < code_scanners then begin
          (* 2-4 opcode-kind sequences; candidates that also occur in the
             goodware pool are generic compiler output, not malware — a
             vendor would reject them as false-positive bait *)
          let n = 2 + Util.Rng.int srng 3 in
          List.init n (fun _ ->
              let rec draw tries =
                let len = 24 + Util.Rng.int srng 25 in
                let start = Util.Rng.int srng (max 1 (nkinds - len)) in
                let seq =
                  Array.to_list (Array.sub kinds start (min len (nkinds - start)))
                in
                let generic =
                  List.exists (fun gk -> contains_seq gk seq) good_kinds
                in
                if generic && tries < 20 then draw (tries + 1) else Code_seq seq
              in
              draw 0)
        end
        else if scanner < code_scanners + data_scanners then begin
          let n = 1 + Util.Rng.int srng 2 in
          List.init n (fun _ ->
              let rec draw tries =
                let len = 16 + Util.Rng.int srng 17 in
                let start =
                  Util.Rng.int srng (max 1 (String.length data - len))
                in
                let gram =
                  String.sub data start (min len (String.length data - start))
                in
                let generic =
                  List.exists (fun gd -> contains_str gd gram) good_data
                in
                if generic && tries < 200 then draw (tries + 1)
                else Data_gram gram
              in
              draw 0)
        end
        else begin
          let distinctive =
            List.filter (fun h -> not (List.mem h good_shapes)) shapes
          in
          let pool = if distinctive = [] then shapes else distinctive in
          List.init 2 (fun _ ->
              Call_shape (List.nth pool (Util.Rng.int srng (List.length pool))))
        end)
  in
  { sigs }

let detections_by_class fleet (bin : Isa.Binary.t) =
  let kinds = Array.of_list (kind_stream bin) in
  let shapes = call_fingerprints bin in
  let code = ref 0 and data = ref 0 and structure = ref 0 in
  Array.iteri
    (fun scanner sigs ->
      let hit =
        List.exists
          (fun s ->
            match s with
            | Code_seq seq -> contains_seq kinds seq
            | Data_gram g -> contains_str bin.data g
            | Call_shape h -> List.mem h shapes)
          sigs
      in
      if hit then
        if scanner < code_scanners then incr code
        else if scanner < code_scanners + data_scanners then incr data
        else incr structure)
    fleet.sigs;
  (!code, !data, !structure)

let detections fleet bin =
  let c, d, s = detections_by_class fleet bin in
  c + d + s
