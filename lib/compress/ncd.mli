(** Normalized Compression Distance (NCD) — BinTuner's fitness function.

    NCD(x, y) = (C(x·y) − min(C(x), C(y))) / max(C(x), C(y))

    where C is the compressed length under {!Lz} and x·y is concatenation.
    The score approximates the (uncomputable) normalized information
    distance grounded in Kolmogorov complexity: 0.0 for identical inputs,
    approaching 1.0 as the inputs share no structure.  The paper computes
    it over the raw bytes of the binaries' code sections. *)

val distance : string -> string -> float
(** [distance x y] — NCD of two byte strings.  Symmetric up to compressor
    imperfection; 0.0 when both are empty. *)

val distance_cached : (string -> int) -> string -> string -> float
(** [distance_cached csize x y] uses [csize] for the two solo terms (so a
    tuning loop can cache C(baseline)) and compresses only the
    concatenation. *)
