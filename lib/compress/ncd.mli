(** Normalized Compression Distance (NCD) — BinTuner's fitness function.

    NCD(x, y) = (C(x·y) − min(C(x), C(y))) / max(C(x), C(y))

    where C is the compressed length under {!Lz} and x·y is concatenation.
    The score approximates the (uncomputable) normalized information
    distance grounded in Kolmogorov complexity: 0.0 for identical inputs,
    approaching 1.0 as the inputs share no structure.  The paper computes
    it over the raw bytes of the binaries' code sections.

    The C(x·y) term always goes through {!Lz.compress_pair}'s two-segment
    view — no entry point here ever materializes [x ^ y].  Batch scoring
    ({!against}, {!matrix}) shares a {!Sizecache} so repeated terms are
    compressed once per content, and fans out over a [Parallel.Pool]. *)

val distance : ?level:Lz.level -> string -> string -> float
(** [distance x y] — NCD of two byte strings at [level] (default:
    [Lz.default_level ()]).  Symmetric up to compressor imperfection;
    0.0 when both are empty. *)

val distance_cached : (string -> int) -> string -> string -> float
(** [distance_cached csize x y] uses [csize] for the two solo terms (so a
    caller can supply its own memo) and compresses only the
    concatenation, at the default level.  Superseded by {!distance_via}
    for new code; kept for callers carrying their own size function. *)

val distance_via : Sizecache.t -> string -> string -> float
(** [distance_via cache x y] — NCD with all three terms memoized in
    [cache] (at the cache's level).  Equal to {!distance} at that level,
    to the bit. *)

val against :
  ?pool:Parallel.Pool.t ->
  ?span:string ->
  ?incumbent:float ->
  cache:Sizecache.t ->
  baseline:string ->
  string array ->
  float array
(** [against ~cache ~baseline xs] — [distance_via cache x baseline] for
    every [x], in input order.  The baseline's solo size is warmed before
    the fan-out.  [pool] parallelizes across workers (results are order-
    and scheduling-independent); [span] wraps each element's computation
    in a telemetry span of that name.

    [incumbent] arms the early-exit scorer: a candidate that provably
    cannot score above the incumbent may stop compressing its pair term
    early and comes back with a score that is [>= its exact NCD] and
    [<= incumbent] (never cached); every candidate whose exact NCD
    exceeds the incumbent is scored exactly, so the batch's argmax and
    max against the incumbent equal exhaustive evaluation's.  Omitted
    (or [neg_infinity]): exhaustive, byte-identical to the plain path.
    Pruned scores are not exact — keep this off anywhere sub-incumbent
    score {e values} feed decisions (Metropolis acceptance, tournament
    selection, frozen sentinels). *)

val matrix :
  ?pool:Parallel.Pool.t -> cache:Sizecache.t -> string array -> float array array
(** [matrix ~cache xs] — the full symmetric pairwise NCD matrix.  Solo
    sizes are warmed first, then the strict upper triangle is scored
    (across [pool] when given) and mirrored; the diagonal is fixed at
    [0.] (the metric's ideal self-distance, rather than the compressor's
    small positive approximation of it). *)
