(* LZ77 + order-0 adaptive arithmetic coding.

   The token stream is: per position, either a literal byte or a
   (length, distance) back-reference into a 32 KiB window.  Tokens are
   entropy-coded with a carry-less range coder (Subbotin style, 32-bit
   arithmetic done in OCaml's native ints with explicit masking) driven by
   three adaptive frequency models: main (256 literals + match marker),
   match length, and distance bucket; distance low bits are coded with a
   fixed uniform model. *)

let mask32 = 0xFFFFFFFF

let top = 1 lsl 24

let bot = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Range coder                                                         *)
(* ------------------------------------------------------------------ *)

module Encoder = struct
  type t = {
    buf : Buffer.t;
    mutable low : int;
    mutable range : int;
  }

  let create () = { buf = Buffer.create 1024; low = 0; range = mask32 }

  let rec normalize t =
    if t.low lxor ((t.low + t.range) land mask32) < top then begin
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end
    else if t.range < bot then begin
      t.range <- (-t.low) land (bot - 1);
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end

  let encode t ~cum ~freq ~total =
    t.range <- t.range / total;
    t.low <- (t.low + (cum * t.range)) land mask32;
    t.range <- (t.range * freq) land mask32;
    normalize t

  let finish t =
    for _ = 1 to 4 do
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.low <- (t.low lsl 8) land mask32
    done;
    Buffer.contents t.buf
end

module Decoder = struct
  type t = {
    src : string;
    mutable pos : int;
    mutable low : int;
    mutable code : int;
    mutable range : int;
  }

  let next_byte t =
    if t.pos < String.length t.src then begin
      let b = Char.code t.src.[t.pos] in
      t.pos <- t.pos + 1;
      b
    end
    else
      (* A valid stream is consumed exactly (the encoder's 4 flush bytes
         cover the decoder's lookahead), so running dry means the input
         is truncated or the header length lies.  Failing here stops the
         decoder from synthesizing unbounded output out of phantom zero
         bytes. *)
      invalid_arg "Lz.decompress: truncated input"

  let create src start =
    let t = { src; pos = start; low = 0; code = 0; range = mask32 } in
    for _ = 1 to 4 do
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32
    done;
    t

  let rec normalize t =
    if t.low lxor ((t.low + t.range) land mask32) < top then begin
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32;
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end
    else if t.range < bot then begin
      t.range <- (-t.low) land (bot - 1);
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32;
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end

  let decode_freq t ~total =
    t.range <- t.range / total;
    let f = ((t.code - t.low) land mask32) / t.range in
    min f (total - 1)

  let decode_update t ~cum ~freq =
    t.low <- (t.low + (cum * t.range)) land mask32;
    t.range <- (t.range * freq) land mask32;
    normalize t
end

(* ------------------------------------------------------------------ *)
(* Adaptive order-0 model                                              *)
(* ------------------------------------------------------------------ *)

module Model = struct
  type t = {
    freq : int array;
    mutable total : int;
    increment : int;
    limit : int;
  }

  let create n = { freq = Array.make n 1; total = n; increment = 24; limit = bot - 256 }

  let rescale t =
    t.total <- 0;
    for i = 0 to Array.length t.freq - 1 do
      t.freq.(i) <- (t.freq.(i) + 1) / 2;
      t.total <- t.total + t.freq.(i)
    done

  let update t s =
    t.freq.(s) <- t.freq.(s) + t.increment;
    t.total <- t.total + t.increment;
    if t.total > t.limit then rescale t

  let cum_of t s =
    let c = ref 0 in
    for i = 0 to s - 1 do
      c := !c + t.freq.(i)
    done;
    !c

  let encode t enc s =
    Encoder.encode enc ~cum:(cum_of t s) ~freq:t.freq.(s) ~total:t.total;
    update t s

  let decode t dec =
    let f = Decoder.decode_freq dec ~total:t.total in
    let s = ref 0 and c = ref 0 in
    while !c + t.freq.(!s) <= f do
      c := !c + t.freq.(!s);
      incr s
    done;
    Decoder.decode_update dec ~cum:!c ~freq:t.freq.(!s);
    update t !s;
    !s
end

(* Raw bits through the coder with a uniform model. *)
let encode_bits enc value nbits =
  for i = nbits - 1 downto 0 do
    let b = (value lsr i) land 1 in
    Encoder.encode enc ~cum:b ~freq:1 ~total:2
  done

let decode_bits dec nbits =
  let v = ref 0 in
  for _ = 1 to nbits do
    let f = Decoder.decode_freq dec ~total:2 in
    let b = if f >= 1 then 1 else 0 in
    Decoder.decode_update dec ~cum:b ~freq:1;
    v := (!v lsl 1) lor b
  done;
  !v

(* ------------------------------------------------------------------ *)
(* LZ77 match finder                                                   *)
(* ------------------------------------------------------------------ *)

let window_size = 32768

let min_match = 3

let max_match = 255 + min_match

let hash_bits = 15

let hash s i =
  let a = Char.code s.[i]
  and b = Char.code s.[i + 1]
  and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land ((1 lsl hash_bits) - 1)

(* Distance bucket: floor(log2 dist); extra bits reconstruct it exactly. *)
let dist_bucket d =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 d 0

type token =
  | Literal of char
  | Match of int * int  (** length, distance *)

let tokenize s =
  let n = String.length s in
  let head = Array.make (1 lsl hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let match_len i j =
    let lim = min max_match (n - i) in
    let rec go k = if k < lim && s.[i + k] = s.[j + k] then go (k + 1) else k in
    go 0
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash s !i in
      let cand = ref head.(h) and chain = ref 0 in
      while !cand >= 0 && !chain < 64 do
        let d = !i - !cand in
        if d > 0 && d <= window_size then begin
          let l = match_len !i !cand in
          if l > !best_len then begin
            best_len := l;
            best_dist := d
          end
        end;
        cand := prev.(!cand);
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      tokens := Match (!best_len, !best_dist) :: !tokens;
      let stop = !i + !best_len in
      (* Index the covered positions so later matches can reference them. *)
      while !i < stop do
        insert !i;
        incr i
      done
    end
    else begin
      tokens := Literal s.[!i] :: !tokens;
      insert !i;
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Container format                                                    *)
(* ------------------------------------------------------------------ *)

let header_size = 4

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32 s off =
  let byte i = Char.code s.[off + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let match_marker = 256

let compress s =
  let enc = Encoder.create () in
  let main = Model.create 257 in
  let len_model = Model.create (max_match - min_match + 1) in
  let dist_model = Model.create 16 in
  let emit = function
    | Literal c -> Model.encode main enc (Char.code c)
    | Match (len, dist) ->
      Model.encode main enc match_marker;
      Model.encode len_model enc (len - min_match);
      let bucket = dist_bucket dist in
      Model.encode dist_model enc bucket;
      if bucket > 0 then encode_bits enc (dist - (1 lsl bucket)) bucket
  in
  List.iter emit (tokenize s);
  let coded = Encoder.finish enc in
  let out = Buffer.create (String.length coded + header_size) in
  put_u32 out (String.length s);
  Buffer.add_string out coded;
  Buffer.contents out

let decompress packed =
  if String.length packed < header_size then
    invalid_arg "Lz.decompress: truncated input";
  let n = get_u32 packed 0 in
  let dec = Decoder.create packed header_size in
  let main = Model.create 257 in
  let len_model = Model.create (max_match - min_match + 1) in
  let dist_model = Model.create 16 in
  let out = Buffer.create n in
  while Buffer.length out < n do
    let s = Model.decode main dec in
    if s < match_marker then Buffer.add_char out (Char.chr s)
    else begin
      let len = Model.decode len_model dec + min_match in
      let bucket = Model.decode dist_model dec in
      let dist =
        if bucket = 0 then 1 else (1 lsl bucket) + decode_bits dec bucket
      in
      let start = Buffer.length out - dist in
      if start < 0 then invalid_arg "Lz.decompress: corrupt back-reference";
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done;
  Buffer.contents out

let compressed_size s = String.length (compress s)
