(* LZ77 + order-0 adaptive arithmetic coding.

   The token stream is: per position, either a literal byte or a
   (length, distance) back-reference into a 32 KiB window.  Tokens are
   entropy-coded with a carry-less range coder (Subbotin style, 32-bit
   arithmetic done in OCaml's native ints with explicit masking) driven by
   three adaptive frequency models: main (256 literals + match marker),
   match length, and distance bucket; distance low bits are coded with a
   fixed uniform model.

   Two match finders produce the token stream (the container format and
   the decoder are shared, so any stream either finder emits decodes with
   the same [decompress]):

   - [Greedy] is the original finder, kept bit-for-bit stable as a
     differential oracle: it walks a fixed 64-deep hash chain, takes the
     longest match immediately, and never cuts a search short.
   - [Chained depth] is the throughput finder the NCD kernel runs on: the
     chain walk is bounded by [depth], a candidate is only length-counted
     after a one-byte prefilter at the current best length, the walk stops
     early once a "nice" match is found, and match emission is lazy
     (deferred one position when the next position matches longer). *)

let mask32 = 0xFFFFFFFF

let top = 1 lsl 24

let bot = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Compression levels                                                  *)
(* ------------------------------------------------------------------ *)

type level =
  | Greedy
  | Chained of int

let default_chain_depth = 128

let default_level_ref = ref (Chained default_chain_depth)

let set_default_level l = default_level_ref := l

let default_level () = !default_level_ref

let level_name = function
  | Greedy -> "greedy"
  | Chained d -> Printf.sprintf "chained-%d" d

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "greedy" -> Greedy
  | "chained" -> Chained default_chain_depth
  | s -> (
    let depth_of prefix =
      let p = String.length prefix in
      if String.length s > p && String.sub s 0 p = prefix then
        int_of_string_opt (String.sub s p (String.length s - p))
      else None
    in
    let depth =
      match depth_of "chained-" with
      | Some d -> Some d
      | None -> depth_of "chained:"
    in
    match depth with
    | Some d when d >= 1 -> Chained d
    | _ -> invalid_arg ("Lz.level_of_string: " ^ s))

(* ------------------------------------------------------------------ *)
(* Range coder                                                         *)
(* ------------------------------------------------------------------ *)

module Encoder = struct
  type t = {
    buf : Buffer.t;
    mutable low : int;
    mutable range : int;
  }

  let create () = { buf = Buffer.create 1024; low = 0; range = mask32 }

  let rec normalize t =
    if t.low lxor ((t.low + t.range) land mask32) < top then begin
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end
    else if t.range < bot then begin
      t.range <- (-t.low) land (bot - 1);
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end

  let encode t ~cum ~freq ~total =
    t.range <- t.range / total;
    t.low <- (t.low + (cum * t.range)) land mask32;
    t.range <- (t.range * freq) land mask32;
    normalize t

  let finish t =
    for _ = 1 to 4 do
      Buffer.add_char t.buf (Char.chr ((t.low lsr 24) land 0xFF));
      t.low <- (t.low lsl 8) land mask32
    done;
    Buffer.contents t.buf
end

module Decoder = struct
  type t = {
    src : string;
    mutable pos : int;
    mutable low : int;
    mutable code : int;
    mutable range : int;
  }

  let next_byte t =
    if t.pos < String.length t.src then begin
      let b = Char.code t.src.[t.pos] in
      t.pos <- t.pos + 1;
      b
    end
    else
      (* A valid stream is consumed exactly (the encoder's 4 flush bytes
         cover the decoder's lookahead), so running dry means the input
         is truncated or the header length lies.  Failing here stops the
         decoder from synthesizing unbounded output out of phantom zero
         bytes. *)
      invalid_arg "Lz.decompress: truncated input"

  let create src start =
    let t = { src; pos = start; low = 0; code = 0; range = mask32 } in
    for _ = 1 to 4 do
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32
    done;
    t

  let rec normalize t =
    if t.low lxor ((t.low + t.range) land mask32) < top then begin
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32;
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end
    else if t.range < bot then begin
      t.range <- (-t.low) land (bot - 1);
      t.code <- ((t.code lsl 8) lor next_byte t) land mask32;
      t.range <- (t.range lsl 8) land mask32;
      t.low <- (t.low lsl 8) land mask32;
      normalize t
    end

  let decode_freq t ~total =
    t.range <- t.range / total;
    let f = ((t.code - t.low) land mask32) / t.range in
    min f (total - 1)

  let decode_update t ~cum ~freq =
    t.low <- (t.low + (cum * t.range)) land mask32;
    t.range <- (t.range * freq) land mask32;
    normalize t
end

(* ------------------------------------------------------------------ *)
(* Adaptive order-0 model                                              *)
(* ------------------------------------------------------------------ *)

module Model = struct
  type t = {
    freq : int array;
    mutable total : int;
    increment : int;
    limit : int;
  }

  let create n = { freq = Array.make n 1; total = n; increment = 24; limit = bot - 256 }

  let rescale t =
    t.total <- 0;
    for i = 0 to Array.length t.freq - 1 do
      t.freq.(i) <- (t.freq.(i) + 1) / 2;
      t.total <- t.total + t.freq.(i)
    done

  let update t s =
    t.freq.(s) <- t.freq.(s) + t.increment;
    t.total <- t.total + t.increment;
    if t.total > t.limit then rescale t

  let cum_of t s =
    let c = ref 0 in
    for i = 0 to s - 1 do
      c := !c + t.freq.(i)
    done;
    !c

  let encode t enc s =
    Encoder.encode enc ~cum:(cum_of t s) ~freq:t.freq.(s) ~total:t.total;
    update t s

  let decode t dec =
    let f = Decoder.decode_freq dec ~total:t.total in
    let s = ref 0 and c = ref 0 in
    while !c + t.freq.(!s) <= f do
      c := !c + t.freq.(!s);
      incr s
    done;
    Decoder.decode_update dec ~cum:!c ~freq:t.freq.(!s);
    update t !s;
    !s
end

(* A drop-in replacement for [Model] on the encode side that keeps the
   exact same adaptive statistics (same initial counts, increment,
   rescale rounding, totals — so it emits the same bytes for the same
   symbol sequence and the shared decoder stays in sync) but maintains a
   Fenwick tree over the frequencies: the cumulative count a symbol
   encode needs drops from an O(n) scan to O(log n).  The [Greedy] path
   deliberately does not use it — that path is the frozen pre-overhaul
   compressor, oracle for both bytes and baseline throughput. *)
module Fmodel = struct
  type t = {
    freq : int array;
    tree : int array;  (** 1-based Fenwick tree over [freq] *)
    mutable total : int;
    increment : int;
    limit : int;
  }

  let rebuild t =
    let n = Array.length t.freq in
    Array.fill t.tree 0 (n + 1) 0;
    for i = 1 to n do
      t.tree.(i) <- t.tree.(i) + t.freq.(i - 1);
      let j = i + (i land -i) in
      if j <= n then t.tree.(j) <- t.tree.(j) + t.tree.(i)
    done

  let create n =
    let t =
      {
        freq = Array.make n 1;
        tree = Array.make (n + 1) 0;
        total = n;
        increment = 24;
        limit = bot - 256;
      }
    in
    rebuild t;
    t

  (* sum of freq.(0 .. s-1) *)
  let cum_of t s =
    let c = ref 0 in
    let i = ref s in
    while !i > 0 do
      c := !c + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !c

  let rescale t =
    t.total <- 0;
    for i = 0 to Array.length t.freq - 1 do
      t.freq.(i) <- (t.freq.(i) + 1) / 2;
      t.total <- t.total + t.freq.(i)
    done;
    rebuild t

  let update t s =
    t.freq.(s) <- t.freq.(s) + t.increment;
    t.total <- t.total + t.increment;
    if t.total > t.limit then rescale t
    else begin
      let n = Array.length t.freq in
      let i = ref (s + 1) in
      while !i <= n do
        t.tree.(!i) <- t.tree.(!i) + t.increment;
        i := !i + (!i land - !i)
      done
    end

  let encode t enc s =
    Encoder.encode enc ~cum:(cum_of t s) ~freq:t.freq.(s) ~total:t.total;
    update t s
end

(* Raw bits through the coder with a uniform model. *)
let encode_bits enc value nbits =
  for i = nbits - 1 downto 0 do
    let b = (value lsr i) land 1 in
    Encoder.encode enc ~cum:b ~freq:1 ~total:2
  done

let decode_bits dec nbits =
  let v = ref 0 in
  for _ = 1 to nbits do
    let f = Decoder.decode_freq dec ~total:2 in
    let b = if f >= 1 then 1 else 0 in
    Decoder.decode_update dec ~cum:b ~freq:1;
    v := (!v lsl 1) lor b
  done;
  !v

(* ------------------------------------------------------------------ *)
(* LZ77 match finders                                                  *)
(* ------------------------------------------------------------------ *)

let window_size = 32768

let min_match = 3

let max_match = 255 + min_match

let hash_bits = 15

(* Both finders read their input through a two-segment view — [s1]
   followed by [s2] — so the NCD concatenation term C(x·y) never has to
   materialize [x ^ y].  The single-string entry points pass [s2 = ""]. *)
let seg_get s1 n1 s2 i =
  if i < n1 then String.unsafe_get s1 i else String.unsafe_get s2 (i - n1)

let hash_of a b c = ((a lsl 10) lxor (b lsl 5) lxor c) land ((1 lsl hash_bits) - 1)

type token =
  | Literal of char
  | Match of int * int  (** length, distance *)

(* The original finder, frozen: a 64-candidate chain walk with no early
   exit, no prefilter, and immediate (greedy) emission.  Its token
   decisions — and therefore its output bytes — are the pre-overhaul
   behaviour the differential tests and the table1 [Greedy] sentinel pin
   down.  Do not "optimize" this path; that is what [Chained] is for. *)
let tokenize_greedy s1 s2 =
  let n1 = String.length s1 in
  let n = n1 + String.length s2 in
  let get i = seg_get s1 n1 s2 i in
  let head = Array.make (1 lsl hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let hash i = hash_of (Char.code (get i)) (Char.code (get (i + 1))) (Char.code (get (i + 2))) in
  let match_len i j =
    let lim = min max_match (n - i) in
    let rec go k = if k < lim && get (i + k) = get (j + k) then go (k + 1) else k in
    go 0
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash !i in
      let cand = ref head.(h) and chain = ref 0 in
      while !cand >= 0 && !chain < 64 do
        let d = !i - !cand in
        if d > 0 && d <= window_size then begin
          let l = match_len !i !cand in
          if l > !best_len then begin
            best_len := l;
            best_dist := d
          end
        end;
        cand := prev.(!cand);
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      tokens := Match (!best_len, !best_dist) :: !tokens;
      let stop = !i + !best_len in
      (* Index the covered positions so later matches can reference them. *)
      while !i < stop do
        insert !i;
        incr i
      done
    end
    else begin
      tokens := Literal (get !i) :: !tokens;
      insert !i;
      incr i
    end
  done;
  List.rev !tokens

(* A match this long is good enough to stop the chain walk outright. *)
let nice_match = 160

(* Per-domain scratch for the chained finder.  The head table is 2^15
   entries — zeroing it on every call costs more than compressing a
   small stream, so entries are generation-stamped instead: a slot holds
   [base + position], and anything below the current [base] is stale.
   Nothing is ever cleared between calls; [base] advances by the input
   length each time.  Keyed by domain, so pool workers never share. *)
type workspace = {
  mutable head : int array;
  mutable prev : int array;
  mutable base : int;
  mutable scratch : Bytes.t;  (** reused backing for the pair view *)
}

let workspace_key =
  Domain.DLS.new_key (fun () ->
      {
        head = Array.make (1 lsl hash_bits) 0;
        prev = [||];
        base = 1;
        scratch = Bytes.empty;
      })

let get_workspace n =
  let ws = Domain.DLS.get workspace_key in
  if Array.length ws.prev < n then
    ws.prev <- Array.make (max n 1024) 0;
  if ws.base > max_int - (2 * n) - 2 then begin
    (* stamp overflow (practically unreachable): restart the epochs *)
    Array.fill ws.head 0 (Array.length ws.head) 0;
    ws.base <- 1
  end;
  ws

(* The two-segment view for the chained finder: x·y lands in the reused
   per-domain scratch (a blit, ~0.1% of the compression cost) so the
   tokenizer's inner loops run on one flat string with unsafe reads, and
   no per-call concatenation garbage is ever allocated. *)
let pair_view ws x y =
  let nx = String.length x and ny = String.length y in
  if ny = 0 then x
  else if nx = 0 then y
  else begin
    let n = nx + ny in
    if Bytes.length ws.scratch < n then
      ws.scratch <- Bytes.create (max n 1024);
    Bytes.blit_string x 0 ws.scratch 0 nx;
    Bytes.blit_string y 0 ws.scratch nx ny;
    Bytes.unsafe_to_string ws.scratch
  end

(* The hash-chain finder: depth-bounded walk, one-byte prefilter at the
   current best length, early exit on nice/maximal matches, and lazy
   one-step-deferred emission.  Tokens stream straight into [emit] — no
   intermediate list. *)
let tokenize_chained ~depth s n ~emit_literal ~emit_match =
  let ws = get_workspace n in
  let head = ws.head and prev = ws.prev and base = ws.base in
  ws.base <- base + n;
  (* [n <= String.length s] but may be smaller when [s] is the scratch
     view, so every read below is bounded by [n], never [String.length]. *)
  let get i = String.unsafe_get s i in
  let hash i = hash_of (Char.code (get i)) (Char.code (get (i + 1))) (Char.code (get (i + 2))) in
  (* [head.(h)] and [prev.(i)] hold stamped positions ([base + pos]); a
     value below [base] is empty or left over from an earlier call. *)
  let insert i =
    if i + min_match <= n then begin
      let h = hash i in
      prev.(i) <- head.(h);
      head.(h) <- base + i
    end
  in
  (* Longest match at [i] among the chain's candidates (all < i because
     [i] is inserted only after the search).  Returns (len, dist) with
     len = 0 when nothing reaches [min_match]. *)
  let find i =
    if i + min_match > n then (0, 0)
    else begin
      let lim = min max_match (n - i) in
      let best_len = ref (min_match - 1) and best_dist = ref 0 in
      let cand = ref head.(hash i) and budget = ref depth in
      (try
         while !cand >= base && !budget > 0 do
           let c = !cand - base in
           let d = i - c in
           (* the chain is ordered by position: every later candidate is
              further away, so one out-of-window hit ends the walk *)
           if d > window_size then raise_notrace Exit;
           (* prefilter: a candidate can only improve on [best_len] if it
              also matches at that offset — one compare rejects most *)
           if get (c + !best_len) = get (i + !best_len) then begin
             let rec go k =
               if k < lim && get (i + k) = get (c + k) then go (k + 1)
               else k
             in
             let l = go 0 in
             if l > !best_len then begin
               best_len := l;
               best_dist := d;
               if l >= nice_match || l >= lim then raise_notrace Exit
             end
           end;
           cand := prev.(c);
           decr budget
         done
       with Exit -> ());
      if !best_len >= min_match then (!best_len, !best_dist) else (0, 0)
    end
  in
  let i = ref 0 in
  let prev_len = ref 0 and prev_dist = ref 0 in
  let pending_literal = ref false in  (* position i-1 not yet emitted *)
  while !i < n do
    let len, dist = find !i in
    insert !i;
    if !prev_len >= min_match && len <= !prev_len then begin
      (* the deferred match at i-1 wins over anything starting at i *)
      emit_match !prev_len !prev_dist;
      let stop = !i - 1 + !prev_len in
      let j = ref (!i + 1) in
      while !j < stop do
        insert !j;
        incr j
      done;
      i := stop;
      prev_len := 0;
      pending_literal := false
    end
    else begin
      if !pending_literal then emit_literal (get (!i - 1));
      prev_len := len;
      prev_dist := dist;
      pending_literal := true;
      incr i
    end
  done;
  if !pending_literal then emit_literal (get (n - 1))

(* ------------------------------------------------------------------ *)
(* Container format                                                    *)
(* ------------------------------------------------------------------ *)

let header_size = 4

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32 s off =
  let byte i = Char.code s.[off + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let match_marker = 256

(* Distance bucket: floor(log2 dist); extra bits reconstruct it exactly. *)
let dist_bucket d =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 d 0

let compress_segments level s1 s2 =
  let enc = Encoder.create () in
  let coded =
    match level with
    | Greedy ->
      (* frozen pre-overhaul path: list tokenizer + linear-scan models *)
      let main = Model.create 257 in
      let len_model = Model.create (max_match - min_match + 1) in
      let dist_model = Model.create 16 in
      let emit = function
        | Literal c -> Model.encode main enc (Char.code c)
        | Match (len, dist) ->
          Model.encode main enc match_marker;
          Model.encode len_model enc (len - min_match);
          let bucket = dist_bucket dist in
          Model.encode dist_model enc bucket;
          if bucket > 0 then encode_bits enc (dist - (1 lsl bucket)) bucket
      in
      List.iter emit (tokenize_greedy s1 s2);
      Encoder.finish enc
    | Chained depth ->
      let main = Fmodel.create 257 in
      let len_model = Fmodel.create (max_match - min_match + 1) in
      let dist_model = Fmodel.create 16 in
      let emit_literal c = Fmodel.encode main enc (Char.code c) in
      let emit_match len dist =
        Fmodel.encode main enc match_marker;
        Fmodel.encode len_model enc (len - min_match);
        let bucket = dist_bucket dist in
        Fmodel.encode dist_model enc bucket;
        if bucket > 0 then encode_bits enc (dist - (1 lsl bucket)) bucket
      in
      let n = String.length s1 + String.length s2 in
      let s =
        if String.length s2 = 0 then s1
        else pair_view (Domain.DLS.get workspace_key) s1 s2
      in
      tokenize_chained ~depth:(max 1 depth) s n ~emit_literal ~emit_match;
      Encoder.finish enc
  in
  let out = Buffer.create (String.length coded + header_size) in
  put_u32 out (String.length s1 + String.length s2);
  Buffer.add_string out coded;
  Buffer.contents out

let compress ?level s =
  let level = match level with Some l -> l | None -> !default_level_ref in
  compress_segments level s ""

let compress_pair ?level x y =
  let level = match level with Some l -> l | None -> !default_level_ref in
  compress_segments level x y

let decompress packed =
  if String.length packed < header_size then
    invalid_arg "Lz.decompress: truncated input";
  let n = get_u32 packed 0 in
  let dec = Decoder.create packed header_size in
  let main = Model.create 257 in
  let len_model = Model.create (max_match - min_match + 1) in
  let dist_model = Model.create 16 in
  let out = Buffer.create n in
  while Buffer.length out < n do
    let s = Model.decode main dec in
    if s < match_marker then Buffer.add_char out (Char.chr s)
    else begin
      let len = Model.decode len_model dec + min_match in
      let bucket = Model.decode dist_model dec in
      let dist =
        if bucket = 0 then 1 else (1 lsl bucket) + decode_bits dec bucket
      in
      let start = Buffer.length out - dist in
      if start < 0 then invalid_arg "Lz.decompress: corrupt back-reference";
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done;
  Buffer.contents out

let compressed_size ?level s = String.length (compress ?level s)

let compressed_size_pair ?level x y = String.length (compress_pair ?level x y)

(* ------------------------------------------------------------------ *)
(* Capped pair compression (NCD early-exit)                            *)
(* ------------------------------------------------------------------ *)

type bounded_size =
  | Size of int
  | At_most of int

(* Worst-case coder output per remaining input byte.  A literal is one
   symbol; every adaptive frequency is >= 1 against a total capped at
   [bot - 256] < 2^16, so one symbol shrinks the range by at most ~16
   bits — two bytes of output.  A match covers >= [min_match] input
   bytes for marker + length + bucket symbols plus at most [hash_bits]
   raw extra bits, which amortizes below the literal bound.  Three
   bytes per input byte leaves margin for the carry-less coder's
   underflow truncation; [bound_slop] absorbs boundary effects. *)
let wc_bytes_per_input = 3

let bound_slop = 64

exception Early_exit of int

let compressed_size_pair_bounded ?level ~cap x y =
  let level = match level with Some l -> l | None -> !default_level_ref in
  if cap < header_size then Size (compressed_size_pair ~level x y)
  else begin
    let n = String.length x + String.length y in
    let enc = Encoder.create () in
    let consumed = ref 0 in
    (* An over-estimate of the final container size given the bytes
       emitted so far: header + emitted + worst case for what is left +
       the 4 flush bytes.  Monotonically tightening as input is
       consumed; once even the over-estimate is within [cap] the exact
       size provably is too, so compression can stop. *)
    let check () =
      let ub =
        header_size
        + Buffer.length enc.Encoder.buf
        + 4
        + (wc_bytes_per_input * (n - !consumed))
        + bound_slop
      in
      if ub <= cap then raise_notrace (Early_exit ub)
    in
    match
      (match level with
      | Greedy ->
        let main = Model.create 257 in
        let len_model = Model.create (max_match - min_match + 1) in
        let dist_model = Model.create 16 in
        let emit = function
          | Literal c ->
            Model.encode main enc (Char.code c);
            incr consumed;
            check ()
          | Match (len, dist) ->
            Model.encode main enc match_marker;
            Model.encode len_model enc (len - min_match);
            let bucket = dist_bucket dist in
            Model.encode dist_model enc bucket;
            if bucket > 0 then encode_bits enc (dist - (1 lsl bucket)) bucket;
            consumed := !consumed + len;
            check ()
        in
        List.iter emit (tokenize_greedy x y)
      | Chained depth ->
        let main = Fmodel.create 257 in
        let len_model = Fmodel.create (max_match - min_match + 1) in
        let dist_model = Fmodel.create 16 in
        let emit_literal c =
          Fmodel.encode main enc (Char.code c);
          incr consumed;
          check ()
        in
        let emit_match len dist =
          Fmodel.encode main enc match_marker;
          Fmodel.encode len_model enc (len - min_match);
          let bucket = dist_bucket dist in
          Fmodel.encode dist_model enc bucket;
          if bucket > 0 then encode_bits enc (dist - (1 lsl bucket)) bucket;
          consumed := !consumed + len;
          check ()
        in
        let s =
          if String.length y = 0 then x
          else pair_view (Domain.DLS.get workspace_key) x y
        in
        tokenize_chained ~depth:(max 1 depth) s n ~emit_literal ~emit_match)
    with
    | () -> Size (header_size + String.length (Encoder.finish enc))
    | exception Early_exit ub -> At_most ub
  end
