(** Content-addressed cache of compressed sizes for the NCD kernel.

    The tuner asks for the same [C(x)] and [C(x·y)] terms over and over —
    every generation re-scores candidates against the same baseline, and
    the GA revisits flag vectors whose compiled streams it has already
    measured.  This cache memoizes both term shapes, keyed by stream
    digest (MD5), so equal {e content} hits regardless of which binary
    produced it — replacing the old ad-hoc physical-equality
    [baseline_csize] plumbing in the tuner.

    Domain-safe: a mutex guards the table while compression runs outside
    it, and the LRU bound keeps memory flat over long sweeps.  Cached
    values are exact compressed sizes, so hitting the cache can never
    change an NCD result — only the {!hits}/{!misses} counters (also
    mirrored to telemetry as [sizecache.hit]/[sizecache.miss]) reveal it
    was there.  Under racing misses the counters may depend on
    scheduling; results never do.  The compression {!Lz.level} is fixed
    at {!create} time, so one cache never mixes sizes from different
    match finders. *)

type t

type backing = {
  load : string -> int option;
  save : string -> int -> unit;
}
(** An optional durable second tier (serving mode wires this to the
    persistent artifact store): [load] is consulted after an in-memory
    miss (a hit is promoted into the table and counted in telemetry as
    [sizecache.backing_hit]), [save] is written through on every exact
    size learned.  Both run outside the cache lock and must be safe to
    call from any domain.  The backing must only ever return exact sizes
    previously [save]d at this cache's level — the caller owns key
    disambiguation across levels. *)

val default_capacity : int
(** LRU bound used when [create]'s [?capacity] is omitted (4096). *)

val create : ?capacity:int -> ?level:Lz.level -> ?backing:backing -> unit -> t
(** [create ()] — an empty cache holding at most [capacity] entries
    (least-recently-used evicted first).  [level] defaults to
    [Lz.default_level ()] {e at creation time}. *)

val level : t -> Lz.level
(** The compression level every size in this cache was measured at. *)

val size : t -> string -> int
(** [size t x] = [Lz.compressed_size ~level:(level t) x], memoized —
    the [C(x)] term. *)

val size_pair : t -> string -> string -> int
(** [size_pair t x y] = [Lz.compressed_size_pair ~level:(level t) x y],
    memoized — the [C(x·y)] term.  The pair key is ordered: [x·y] and
    [y·x] are distinct streams with distinct sizes. *)

val peek_pair : t -> string -> string -> int option
(** Probe the pair entry without computing on a miss (counts a hit or a
    miss like {!size_pair}; an in-memory miss still consults the backing
    tier).  The NCD early-exit path probes first so a warm exact size
    short-circuits the capped compression. *)

val insert_pair : t -> string -> string -> int -> unit
(** Publish an exact pair size computed outside the cache (keep-first on
    a racing duplicate; evicts like any other insert; written through to
    the backing tier; counts nothing).  Only ever insert values equal to
    [Lz.compressed_size_pair ~level:(level t) x y] — upper bounds from a
    pruned compression must not enter the table. *)

val hits : t -> int
(** Lookups served from the table. *)

val misses : t -> int
(** Lookups that had to compress. *)

val length : t -> int
(** Entries currently resident (≤ {!capacity}). *)

val capacity : t -> int
