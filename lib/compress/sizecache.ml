(* Content-addressed LRU cache over compressed sizes.  Entries live on a
   doubly-linked ring through a sentinel node: [sentinel.next] is the
   most recently used entry, [sentinel.prev] the eviction victim.  All
   table/ring/counter state is guarded by one mutex; compression itself
   runs outside the lock (same discipline as Bintuner.Memo) so workers
   caching different streams never serialize on each other. *)

type node = {
  key : string;
  mutable value : int;
  mutable ring_prev : node;
  mutable ring_next : node;
}

(* An optional second, durable tier (e.g. [Bintuner.Store] in serving
   mode): consulted after an in-memory miss, written through on every
   exact insert.  Only ever holds exact sizes, so hitting it can no more
   change a result than hitting the table can. *)
type backing = {
  load : string -> int option;
  save : string -> int -> unit;
}

type t = {
  level : Lz.level;
  capacity : int;
  backing : backing option;
  table : (string, node) Hashtbl.t;
  sentinel : node;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ?level ?backing () =
  let level = match level with Some l -> l | None -> Lz.default_level () in
  let rec sentinel =
    { key = ""; value = 0; ring_prev = sentinel; ring_next = sentinel }
  in
  {
    level;
    capacity = max 1 capacity;
    backing;
    table = Hashtbl.create (min 1024 (max 16 capacity));
    sentinel;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
  }

let level t = t.level
let capacity t = t.capacity

let unlink n =
  n.ring_prev.ring_next <- n.ring_next;
  n.ring_next.ring_prev <- n.ring_prev

let push_front t n =
  n.ring_next <- t.sentinel.ring_next;
  n.ring_prev <- t.sentinel;
  t.sentinel.ring_next.ring_prev <- n;
  t.sentinel.ring_next <- n

(* Digests are raw 16-byte MD5 strings, so a one-byte tag keeps solo and
   pair keys from ever colliding. *)
let solo_key x = "S" ^ Digest.string x
let pair_key x y = "P" ^ Digest.string x ^ Digest.string y

(* The locked insert shared by every path that learned an exact size:
   keep-first on a racing duplicate (the compressor is deterministic, so
   keeping the existing entry is equivalent), LRU-evict past capacity. *)
let admit t key v =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.table key) then begin
    let n = { key; value = v; ring_prev = t.sentinel; ring_next = t.sentinel } in
    push_front t n;
    Hashtbl.replace t.table key n;
    if Hashtbl.length t.table > t.capacity then begin
      let victim = t.sentinel.ring_prev in
      unlink victim;
      Hashtbl.remove t.table victim.key
    end
  end;
  Mutex.unlock t.lock

(* Backing-tier probe after an in-memory miss; IO runs unlocked.  A hit
   is promoted into the table so the durable tier is only touched once
   per resident key. *)
let backing_load t key =
  match t.backing with
  | None -> None
  | Some b -> (
    match b.load key with
    | Some v ->
      admit t key v;
      Telemetry.add_count "sizecache.backing_hit";
      Some v
    | None -> None)

let backing_save t key v =
  match t.backing with None -> () | Some b -> b.save key v

let find_or_compute t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink n;
    push_front t n;
    let v = n.value in
    Mutex.unlock t.lock;
    Telemetry.add_count "sizecache.hit";
    v
  | None -> (
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Telemetry.add_count "sizecache.miss";
    match backing_load t key with
    | Some v -> v
    | None ->
      let v = compute () in
      admit t key v;
      backing_save t key v;
      v)

(* Probe-only / insert-only entry points for the NCD early-exit path:
   a pruned pair compression yields only an upper bound, which must
   never be inserted as if it were the exact size — so the caller
   probes first, computes (possibly aborting) outside the lock, and
   inserts only exact results. *)
let peek t key =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink n;
    push_front t n;
    let v = n.value in
    Mutex.unlock t.lock;
    Telemetry.add_count "sizecache.hit";
    Some v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Telemetry.add_count "sizecache.miss";
    backing_load t key

let insert t key v =
  admit t key v;
  backing_save t key v

let peek_pair t x y = peek t (pair_key x y)

let insert_pair t x y v = insert t (pair_key x y) v

let size t x =
  find_or_compute t (solo_key x) (fun () ->
      Lz.compressed_size ~level:t.level x)

let size_pair t x y =
  find_or_compute t (pair_key x y) (fun () ->
      Lz.compressed_size_pair ~level:t.level x y)

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n
