(** Lossless compression used by the NCD fitness function.

    Stands in for the paper's LZMA: an LZ77 match finder (hash-chained,
    32 KiB window) whose token stream is entropy-coded with an order-0
    adaptive arithmetic coder.  What NCD needs from the compressor is that
    repeated structure compresses well — boilerplate O0 code has a much
    higher compression ratio than heavily optimized, irregular code — and
    this combination delivers that property. *)

val compress : string -> string
(** [compress s] returns the compressed representation of [s]. *)

val decompress : string -> string
(** Inverse of {!compress}.  Raises [Invalid_argument] on corrupt input.
    Provided so tests can check the coder is genuinely lossless (NCD's
    theoretical grounding requires a real compressor, not a size
    estimator). *)

val compressed_size : string -> int
(** [compressed_size s = String.length (compress s)] but avoids
    materializing the output buffer twice.  This is the [C(x)] of the NCD
    formula. *)
