(** Lossless compression used by the NCD fitness function.

    Stands in for the paper's LZMA: an LZ77 match finder (hash-chained,
    32 KiB window) whose token stream is entropy-coded with an order-0
    adaptive arithmetic coder.  What NCD needs from the compressor is that
    repeated structure compresses well — boilerplate O0 code has a much
    higher compression ratio than heavily optimized, irregular code — and
    this combination delivers that property.

    The match finder comes in two {!level}s sharing one token format and
    one {!decompress}: {!Greedy} is the original finder, kept bit-for-bit
    stable as a differential oracle and determinism sentinel, and
    {!Chained} is the hash-chain finder the tuning stack runs on (bounded
    chain walk, candidate prefilter, early exit, lazy one-step-deferred
    matching) — faster {e and} stronger on repetitive [.text] streams. *)

type level =
  | Greedy
      (** The pre-overhaul finder, frozen: fixed 64-candidate chain walk,
          immediate emission, no early exit.  Output bytes are stable
          across releases — the property-test layer and the table1
          sentinel depend on it. *)
  | Chained of int
      (** [Chained depth] walks at most [depth] chain candidates per
          position, with lazy matching.  Larger depths trade throughput
          for ratio. *)

val default_chain_depth : int
(** Chain depth of the default level (128). *)

val default_level : unit -> level
(** The level used when an entry point's [?level] is omitted.  Starts as
    [Chained default_chain_depth]. *)

val set_default_level : level -> unit
(** Install a process-wide default level.  Call at startup (before worker
    domains spawn); the [--lz-level] CLI/bench flags route here. *)

val level_name : level -> string
(** ["greedy"] or ["chained-<depth>"]. *)

val level_of_string : string -> level
(** Inverse of {!level_name}; also accepts ["chained"] (default depth)
    and ["chained:<depth>"].  Raises [Invalid_argument] otherwise. *)

val compress : ?level:level -> string -> string
(** [compress s] returns the compressed representation of [s]. *)

val compress_pair : ?level:level -> string -> string -> string
(** [compress_pair x y] is byte-identical to [compress (x ^ y)] at the
    same level, but never materializes the concatenation — the NCD
    C(x·y) term reads both strings through a two-segment view. *)

val decompress : string -> string
(** Inverse of {!compress} (and {!compress_pair}), whatever level
    produced the stream.  Raises [Invalid_argument] on corrupt input.
    Provided so tests can check the coder is genuinely lossless (NCD's
    theoretical grounding requires a real compressor, not a size
    estimator). *)

val compressed_size : ?level:level -> string -> int
(** [compressed_size s = String.length (compress s)].  This is the [C(x)]
    of the NCD formula. *)

val compressed_size_pair : ?level:level -> string -> string -> int
(** [compressed_size_pair x y = String.length (compress (x ^ y))] without
    the copy — the [C(x·y)] term. *)

type bounded_size =
  | Size of int  (** the exact pair size; compression ran to completion *)
  | At_most of int
      (** compression stopped early: the exact size is provably at most
          this (and at most [cap]) *)

val compressed_size_pair_bounded :
  ?level:level -> cap:int -> string -> string -> bounded_size
(** Capped variant of {!compressed_size_pair} for NCD early-exit: while
    compressing, a conservative upper bound on the final size is
    maintained from the bytes already emitted and a worst-case cost for
    the input not yet consumed; as soon as that bound falls to [cap] or
    below, compression aborts with [At_most bound].  [Size n] is
    bit-equal to [compressed_size_pair x y]; [At_most u] guarantees
    [compressed_size_pair x y <= u <= cap].  A [cap] below the container
    overhead disables the abort path entirely. *)
