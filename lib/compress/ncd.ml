let combine cx cy cxy =
  let mn = min cx cy and mx = max cx cy in
  if mx = 0 then 0.0 else float_of_int (cxy - mn) /. float_of_int mx

let distance_cached csize x y =
  combine (csize x) (csize y) (Lz.compressed_size_pair x y)

let distance ?level x y =
  combine
    (Lz.compressed_size ?level x)
    (Lz.compressed_size ?level y)
    (Lz.compressed_size_pair ?level x y)

let distance_via cache x y =
  combine (Sizecache.size cache x) (Sizecache.size cache y)
    (Sizecache.size_pair cache x y)

(* The early-exit scorer: [C(x·y) >= max(C(x), C(y))] means a candidate
   whose concatenation term provably cannot exceed the size an
   [incumbent]-beating NCD would require can stop compressing the pair
   the moment that is proven.  [cap] is the largest C(x·y) still scoring
   at or below the incumbent; the capped compressor aborts once its
   over-estimate of the final size is within [cap], and the returned
   score for a pruned candidate — its bound's NCD, clamped to the
   incumbent — is exact in the only respect that matters: it cannot beat
   the incumbent, and neither can the candidate.  Winners always run to
   completion and score exactly, so argmax/best over any batch is
   preserved.  Pruned bounds never enter the size cache. *)
let distance_bounded cache ~incumbent x y =
  let cx = Sizecache.size cache x and cy = Sizecache.size cache y in
  match Sizecache.peek_pair cache x y with
  | Some cxy -> combine cx cy cxy
  | None ->
    let mn = min cx cy and mx = max cx cy in
    let cap =
      if mx = 0 || incumbent < 0.0 then -1 (* nothing useful to prune *)
      else begin
        (* the boundary of [combine cx cy c <= incumbent], solved
           directly and then nudged to be safe against float rounding *)
        let limit = (3 * (String.length x + String.length y)) + 128 in
        let c = ref (mn + int_of_float (incumbent *. float_of_int mx)) in
        if !c > limit then c := limit;
        while !c >= 0 && combine cx cy !c > incumbent do
          decr c
        done;
        while !c < limit && combine cx cy (!c + 1) <= incumbent do
          incr c
        done;
        !c
      end
    in
    (match
       Lz.compressed_size_pair_bounded ~level:(Sizecache.level cache) ~cap x y
     with
    | Lz.Size cxy ->
      Sizecache.insert_pair cache x y cxy;
      combine cx cy cxy
    | Lz.At_most ub ->
      Telemetry.add_count "ncd.early_exit";
      let d = combine cx cy ub in
      if d > incumbent then incumbent else d)

let against ?pool ?span ?incumbent ~cache ~baseline xs =
  (* warm the baseline's solo size before fanning out, so the workers'
     shared term is a guaranteed hit instead of a race of misses *)
  ignore (Sizecache.size cache baseline : int);
  let score x =
    match incumbent with
    | None -> distance_via cache x baseline
    | Some inc when inc = neg_infinity -> distance_via cache x baseline
    | Some inc -> distance_bounded cache ~incumbent:inc x baseline
  in
  let one x =
    match span with
    | None -> score x
    | Some name -> Telemetry.with_span name (fun () -> score x)
  in
  match pool with
  | None -> Array.map one xs
  | Some pool -> Parallel.Pool.map pool one xs

let matrix ?pool ~cache xs =
  let n = Array.length xs in
  (* solo sizes first (in parallel), so every pair worker hits on both
     solo terms and only compresses its own concatenation *)
  let solo x = ignore (Sizecache.size cache x : int) in
  (match pool with
  | None -> Array.iter solo xs
  | Some pool -> ignore (Parallel.Pool.map pool (fun x -> solo x) xs));
  let pairs =
    Array.of_list
      (List.concat
         (List.init n (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k)))))
  in
  let d (i, j) = distance_via cache xs.(i) xs.(j) in
  let ds =
    match pool with
    | None -> Array.map d pairs
    | Some pool -> Parallel.Pool.map pool d pairs
  in
  let m = Array.make_matrix n n 0.0 in
  Array.iteri
    (fun k (i, j) ->
      m.(i).(j) <- ds.(k);
      m.(j).(i) <- ds.(k))
    pairs;
  m
