let combine cx cy cxy =
  let mn = min cx cy and mx = max cx cy in
  if mx = 0 then 0.0 else float_of_int (cxy - mn) /. float_of_int mx

let distance_cached csize x y =
  combine (csize x) (csize y) (Lz.compressed_size_pair x y)

let distance ?level x y =
  combine
    (Lz.compressed_size ?level x)
    (Lz.compressed_size ?level y)
    (Lz.compressed_size_pair ?level x y)

let distance_via cache x y =
  combine (Sizecache.size cache x) (Sizecache.size cache y)
    (Sizecache.size_pair cache x y)

let against ?pool ?span ~cache ~baseline xs =
  (* warm the baseline's solo size before fanning out, so the workers'
     shared term is a guaranteed hit instead of a race of misses *)
  ignore (Sizecache.size cache baseline : int);
  let one x =
    match span with
    | None -> distance_via cache x baseline
    | Some name ->
      Telemetry.with_span name (fun () -> distance_via cache x baseline)
  in
  match pool with
  | None -> Array.map one xs
  | Some pool -> Parallel.Pool.map pool one xs

let matrix ?pool ~cache xs =
  let n = Array.length xs in
  (* solo sizes first (in parallel), so every pair worker hits on both
     solo terms and only compresses its own concatenation *)
  let solo x = ignore (Sizecache.size cache x : int) in
  (match pool with
  | None -> Array.iter solo xs
  | Some pool -> ignore (Parallel.Pool.map pool (fun x -> solo x) xs));
  let pairs =
    Array.of_list
      (List.concat
         (List.init n (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k)))))
  in
  let d (i, j) = distance_via cache xs.(i) xs.(j) in
  let ds =
    match pool with
    | None -> Array.map d pairs
    | Some pool -> Parallel.Pool.map pool d pairs
  in
  let m = Array.make_matrix n n 0.0 in
  Array.iteri
    (fun k (i, j) ->
      m.(i).(j) <- ds.(k);
      m.(j).(i) <- ds.(k))
    pairs;
  m
