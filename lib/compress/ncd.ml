let distance_cached csize x y =
  let cx = csize x and cy = csize y in
  let cxy = Lz.compressed_size (x ^ y) in
  let mn = min cx cy and mx = max cx cy in
  if mx = 0 then 0.0 else float_of_int (cxy - mn) /. float_of_int mx

let distance x y = distance_cached Lz.compressed_size x y
