(** Binary encoding and decoding of VX instructions.

    Each architecture has its own machine-code format:
    - x86-32: variable length, 1-byte opcodes (salt 0x00), immediates in
      1 or 4 bytes;
    - x86-64: variable length, opcode salt 0x40, immediates in 1, 4, or
      8 bytes;
    - arm: 4-byte words, opcode salt 0x80, wide immediates in trailing
      literal words;
    - mips: like arm with salt 0xC0 and a different register packing.

    Branch targets ([Ijmp]/[Ijcc]/[Iloop]/[Ijtab] operands and the jump
    table entries) are absolute byte offsets at the [insn] level, encoded
    PC-relative (to the instruction start, via [~at]) in 4 fixed bytes so
    the assembler can backpatch them and so identical code sequences are
    byte-identical wherever they land.

    [decode (encode arch is) = is] for every well-formed instruction
    list — the decoder is the reproduction's disassembler. *)

val encode : ?at:int -> Insn.arch -> Insn.insn -> string
(** Encode one instruction as if placed at byte offset [at] (default 0);
    [at] only affects the encoding of branch targets. *)

val encoded_length : Insn.arch -> Insn.insn -> int

val decode : Insn.arch -> string -> pos:int -> Insn.insn * int
(** [decode arch text ~pos] returns the instruction at byte offset [pos]
    and the offset of the next instruction.  Raises [Invalid_argument] on
    malformed bytes. *)

val decode_all : Insn.arch -> string -> (int * Insn.insn) list
(** Linear-sweep disassembly of a whole text section:
    [(offset, instruction)] pairs. *)
