open Insn

(* Instruction kind numbering (stable — the on-disk format). *)
let kind_of = function
  | Imov _ -> 0
  | Ialu _ -> 1
  | Ineg _ -> 2
  | Inot _ -> 3
  | Icmp _ -> 4
  | Itest _ -> 5
  | Isetcc _ -> 6
  | Icmov _ -> 7
  | Ijmp _ -> 8
  | Ijcc _ -> 9
  | Ijtab _ -> 10
  | Iloop _ -> 11
  | Ild _ -> 12
  | Ist _ -> 13
  | Ildf _ -> 14
  | Istf _ -> 15
  | Ipush _ -> 16
  | Ipop _ -> 17
  | Icall _ -> 18
  | Icallr _ -> 19
  | Ila _ -> 20
  | Iret -> 21
  | Ivld _ -> 22
  | Ivst _ -> 23
  | Ivalu _ -> 24
  | Ivsplat _ -> 25
  | Ivpack _ -> 26
  | Ivred _ -> 27
  | Ivldf _ -> 28
  | Ivstf _ -> 29
  | Iprint _ -> 30
  | Iprintc _ -> 31
  | Iread _ -> 32
  | Ilen _ -> 33
  | Inop -> 34
  | Iinc _ -> 35
  | Idec _ -> 36
  | Ixorz _ -> 37
  | Ijmpf _ -> 38

let nkinds = 39

let salt = function X86_32 -> 0x00 | X86_64 -> 0x40 | Arm -> 0x80 | Mips -> 0xC0

(* opcode = (kind * 5 + salt) mod 256; 5⁻¹ mod 256 = 205 *)
let opcode arch kind = (kind * 5 + salt arch) land 0xFF

let kind_of_opcode arch b =
  let k = (b - salt arch) * 205 land 0xFF in
  if k < nkinds then k else invalid_arg "Codec: bad opcode"

(* Per-arch register byte scrambling (a cosmetic encoding difference that
   makes the four architectures produce different bytes for the same
   instruction stream). *)
let enc_reg arch r =
  match arch with
  | X86_32 | X86_64 -> r
  | Arm -> (r * 2) + 1
  | Mips -> r lxor 0x55

let dec_reg arch b =
  match arch with
  | X86_32 | X86_64 -> b
  | Arm ->
    if b land 1 = 0 then invalid_arg "Codec: bad arm register byte";
    (b - 1) / 2
  | Mips -> b lxor 0x55

let alu_code = function
  | Aadd -> 0
  | Asub -> 1
  | Amul -> 2
  | Adiv -> 3
  | Amod -> 4
  | Aand -> 5
  | Aor -> 6
  | Axor -> 7
  | Ashl -> 8
  | Ashr -> 9

let alu_of_code = function
  | 0 -> Aadd
  | 1 -> Asub
  | 2 -> Amul
  | 3 -> Adiv
  | 4 -> Amod
  | 5 -> Aand
  | 6 -> Aor
  | 7 -> Axor
  | 8 -> Ashl
  | 9 -> Ashr
  | _ -> invalid_arg "Codec: bad alu code"

let cond_code = function
  | Ceq -> 0
  | Cne -> 1
  | Clt -> 2
  | Cle -> 3
  | Cgt -> 4
  | Cge -> 5

let cond_of_code = function
  | 0 -> Ceq
  | 1 -> Cne
  | 2 -> Clt
  | 3 -> Cle
  | 4 -> Cgt
  | 5 -> Cge
  | _ -> invalid_arg "Codec: bad cond code"

let fbase_code = function FP_rel -> 0 | SP_rel -> 1

let fbase_of_code = function
  | 0 -> FP_rel
  | 1 -> SP_rel
  | _ -> invalid_arg "Codec: bad frame base"

(* ------------------------------------------------------------------ *)
(* Field writers / readers                                             *)
(* ------------------------------------------------------------------ *)

type writer = { buf : Buffer.t; arch : arch; at : int }

let w_u8 w v = Buffer.add_char w.buf (Char.chr (v land 0xFF))

let w_reg w r = w_u8 w (enc_reg w.arch r)

let w_u16 w v =
  w_u8 w v;
  w_u8 w (v lsr 8)

let w_i32 w v =
  for i = 0 to 3 do
    w_u8 w (v asr (8 * i))
  done

let w_i64 w v =
  for i = 0 to 7 do
    w_u8 w (v asr (8 * i))
  done

let fits_i8 v = v >= -128 && v <= 127

let fits_i32 v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF

(* operand: mode byte 0=reg, 1=imm8 (x86-64 only), 2=imm32, 3=imm64 *)
let w_operand w = function
  | Oreg r ->
    w_u8 w 0;
    w_reg w r
  | Oimm v ->
    if w.arch = X86_64 && fits_i8 v then begin
      w_u8 w 1;
      w_u8 w (v land 0xFF)
    end
    else if fits_i32 v then begin
      w_u8 w 2;
      w_i32 w v
    end
    else begin
      w_u8 w 3;
      w_i64 w v
    end

(* Branch targets are PC-relative (to the instruction start) and encoded
   in 4 fixed bytes so the assembler can backpatch them.  PC-relative
   encoding matters beyond realism: identical code sequences placed at
   different addresses produce identical bytes, which is what lets the
   NCD fitness see shared structure between two compiles. *)
let w_target w v = w_i32 w (v - w.at)

type reader = { src : string; mutable pos : int; rarch : arch }

let r_u8 r =
  if r.pos >= String.length r.src then invalid_arg "Codec: truncated";
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

let r_reg r = dec_reg r.rarch (r_u8 r)

let r_u16 r =
  let a = r_u8 r in
  let b = r_u8 r in
  a lor (b lsl 8)

let r_i32 r =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (r_u8 r lsl (8 * i))
  done;
  (* sign-extend from 32 bits *)
  (!v lsl 31) asr 31

let r_i64 r =
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (r_u8 r lsl (8 * i))
  done;
  !v

let r_operand r =
  match r_u8 r with
  | 0 -> Oreg (r_reg r)
  | 1 ->
    let b = r_u8 r in
    Oimm ((b lsl 55) asr 55)
  | 2 -> Oimm (r_i32 r)
  | 3 -> Oimm (r_i64 r)
  | _ -> invalid_arg "Codec: bad operand mode"

let r_target ~at r =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (r_u8 r lsl (8 * i))
  done;
  (* sign-extend and rebase *)
  at + ((!v lsl 31) asr 31)

(* ------------------------------------------------------------------ *)
(* Instruction bodies                                                  *)
(* ------------------------------------------------------------------ *)

let write_body w i =
  match i with
  | Imov (d, s) ->
    w_reg w d;
    w_operand w s
  | Ialu (a, d, x, y) ->
    w_u8 w (alu_code a);
    w_reg w d;
    w_reg w x;
    w_operand w y
  | Ineg (d, x) | Inot (d, x) ->
    w_reg w d;
    w_reg w x
  | Icmp (a, b) ->
    w_reg w a;
    w_operand w b
  | Itest (a, b) ->
    w_reg w a;
    w_reg w b
  | Isetcc (c, d) ->
    w_u8 w (cond_code c);
    w_reg w d
  | Icmov (c, d, s) ->
    w_u8 w (cond_code c);
    w_reg w d;
    w_operand w s
  | Ijmp t -> w_target w t
  | Ijcc (c, t) ->
    w_u8 w (cond_code c);
    w_target w t
  | Ijtab (r, ts) ->
    w_reg w r;
    w_u16 w (List.length ts);
    List.iter (w_target w) ts
  | Iloop (r, t) ->
    w_reg w r;
    w_target w t
  | Ild (d, s, i) ->
    w_reg w d;
    w_u16 w s;
    w_operand w i
  | Ist (s, i, v) ->
    w_u16 w s;
    w_operand w i;
    w_operand w v
  | Ildf (d, b, o, i) ->
    w_reg w d;
    w_u8 w (fbase_code b);
    w_i32 w o;
    w_operand w i
  | Istf (b, o, i, v) ->
    w_u8 w (fbase_code b);
    w_i32 w o;
    w_operand w i;
    w_operand w v
  | Ipush s -> w_operand w s
  | Ipop d -> w_reg w d
  | Icall fid -> w_u16 w fid
  | Icallr r -> w_reg w r
  | Ila (d, fid) ->
    w_reg w d;
    w_u16 w fid
  | Iret -> ()
  | Ivld (d, s, i) ->
    w_u8 w d;
    w_u16 w s;
    w_operand w i
  | Ivst (s, i, v) ->
    w_u16 w s;
    w_operand w i;
    w_u8 w v
  | Ivalu (a, d, x, y) ->
    w_u8 w (alu_code a);
    w_u8 w d;
    w_u8 w x;
    w_u8 w y
  | Ivsplat (d, s) ->
    w_u8 w d;
    w_operand w s
  | Ivpack (d, a, b, c, e) ->
    w_u8 w d;
    w_operand w a;
    w_operand w b;
    w_operand w c;
    w_operand w e
  | Ivred (a, d, v) ->
    w_u8 w (alu_code a);
    w_reg w d;
    w_u8 w v
  | Ivldf (d, b, o, i) ->
    w_u8 w d;
    w_u8 w (fbase_code b);
    w_i32 w o;
    w_operand w i
  | Ivstf (b, o, i, v) ->
    w_u8 w (fbase_code b);
    w_i32 w o;
    w_operand w i;
    w_u8 w v
  | Iprint s | Iprintc s -> w_operand w s
  | Iread (d, i) ->
    w_reg w d;
    w_operand w i
  | Ilen d -> w_reg w d
  | Inop -> ()
  | Iinc r | Idec r | Ixorz r -> w_reg w r
  | Ijmpf fid -> w_u16 w fid

let read_body ~at r kind =
  let r_target r = r_target ~at r in
  match kind with
  | 0 ->
    let d = r_reg r in
    Imov (d, r_operand r)
  | 1 ->
    let a = alu_of_code (r_u8 r) in
    let d = r_reg r in
    let x = r_reg r in
    Ialu (a, d, x, r_operand r)
  | 2 ->
    let d = r_reg r in
    Ineg (d, r_reg r)
  | 3 ->
    let d = r_reg r in
    Inot (d, r_reg r)
  | 4 ->
    let a = r_reg r in
    Icmp (a, r_operand r)
  | 5 ->
    let a = r_reg r in
    Itest (a, r_reg r)
  | 6 ->
    let c = cond_of_code (r_u8 r) in
    Isetcc (c, r_reg r)
  | 7 ->
    let c = cond_of_code (r_u8 r) in
    let d = r_reg r in
    Icmov (c, d, r_operand r)
  | 8 -> Ijmp (r_target r)
  | 9 ->
    let c = cond_of_code (r_u8 r) in
    Ijcc (c, r_target r)
  | 10 ->
    let reg = r_reg r in
    let n = r_u16 r in
    Ijtab (reg, List.init n (fun _ -> r_target r))
  | 11 ->
    let reg = r_reg r in
    Iloop (reg, r_target r)
  | 12 ->
    let d = r_reg r in
    let s = r_u16 r in
    Ild (d, s, r_operand r)
  | 13 ->
    let s = r_u16 r in
    let i = r_operand r in
    Ist (s, i, r_operand r)
  | 14 ->
    let d = r_reg r in
    let b = fbase_of_code (r_u8 r) in
    let o = r_i32 r in
    Ildf (d, b, o, r_operand r)
  | 15 ->
    let b = fbase_of_code (r_u8 r) in
    let o = r_i32 r in
    let i = r_operand r in
    Istf (b, o, i, r_operand r)
  | 16 -> Ipush (r_operand r)
  | 17 -> Ipop (r_reg r)
  | 18 -> Icall (r_u16 r)
  | 19 -> Icallr (r_reg r)
  | 20 ->
    let d = r_reg r in
    Ila (d, r_u16 r)
  | 21 -> Iret
  | 22 ->
    let d = r_u8 r in
    let s = r_u16 r in
    Ivld (d, s, r_operand r)
  | 23 ->
    let s = r_u16 r in
    let i = r_operand r in
    Ivst (s, i, r_u8 r)
  | 24 ->
    let a = alu_of_code (r_u8 r) in
    let d = r_u8 r in
    let x = r_u8 r in
    Ivalu (a, d, x, r_u8 r)
  | 25 ->
    let d = r_u8 r in
    Ivsplat (d, r_operand r)
  | 26 ->
    let d = r_u8 r in
    let a = r_operand r in
    let b = r_operand r in
    let c = r_operand r in
    Ivpack (d, a, b, c, r_operand r)
  | 27 ->
    let a = alu_of_code (r_u8 r) in
    let d = r_reg r in
    Ivred (a, d, r_u8 r)
  | 28 ->
    let d = r_u8 r in
    let b = fbase_of_code (r_u8 r) in
    let o = r_i32 r in
    Ivldf (d, b, o, r_operand r)
  | 29 ->
    let b = fbase_of_code (r_u8 r) in
    let o = r_i32 r in
    let i = r_operand r in
    Ivstf (b, o, i, r_u8 r)
  | 30 -> Iprint (r_operand r)
  | 31 -> Iprintc (r_operand r)
  | 32 ->
    let d = r_reg r in
    Iread (d, r_operand r)
  | 33 -> Ilen (r_reg r)
  | 34 -> Inop
  | 35 -> Iinc (r_reg r)
  | 36 -> Idec (r_reg r)
  | 37 -> Ixorz (r_reg r)
  | 38 -> Ijmpf (r_u16 r)
  | _ -> invalid_arg "Codec: bad kind"

(* ------------------------------------------------------------------ *)
(* Arch wrappers: arm/mips pad every instruction to a 4-byte multiple   *)
(* ------------------------------------------------------------------ *)

let word_aligned = function Arm | Mips -> true | X86_32 | X86_64 -> false

let pad_byte = 0xEE

let encode ?(at = 0) arch i =
  let w = { buf = Buffer.create 16; arch; at } in
  w_u8 w (opcode arch (kind_of i));
  write_body w i;
  if word_aligned arch then begin
    while Buffer.length w.buf mod 4 <> 0 do
      w_u8 w pad_byte
    done
  end;
  Buffer.contents w.buf

let encoded_length arch i = String.length (encode arch i)

let decode arch text ~pos =
  let r = { src = text; pos; rarch = arch } in
  let kind = kind_of_opcode arch (r_u8 r) in
  let i = read_body ~at:pos r kind in
  if word_aligned arch then begin
    while
      r.pos mod 4 <> 0
      && r.pos < String.length text
      && Char.code text.[r.pos] = pad_byte
    do
      r.pos <- r.pos + 1
    done;
    if r.pos mod 4 <> 0 then invalid_arg "Codec: bad padding"
  end;
  (i, r.pos)

let decode_all arch text =
  let rec go pos acc =
    if pos >= String.length text then List.rev acc
    else begin
      let i, next = decode arch text ~pos in
      go next ((pos, i) :: acc)
    end
  in
  go 0 []
