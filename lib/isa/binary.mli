(** The binary artifact produced by the compiler and consumed by the
    diffing tools, the AV scanners, the VM, and the NCD fitness function.

    A binary carries its raw text/data bytes plus a symbol table.  The
    per-function instruction lists and CFGs exposed to the diffing tools
    are *reconstructed from the bytes* by {!analyze} (linear-sweep
    disassembly + leader analysis), the way IDA-based tools consume
    stripped binaries with known function boundaries.  Function names are
    retained solely as ground truth for Precision@1 scoring — no diffing
    tool may match on them. *)

type t = {
  arch : Insn.arch;
  profile : string;  (** producing compiler profile, e.g. "gcc-10.2" *)
  opt_label : string;  (** "-O2", "-Os", "bintuner", … (provenance) *)
  text : string;  (** raw code bytes *)
  data : string;  (** serialized initial data memory *)
  data_words : int array;  (** initial data memory, word view *)
  symbols : (string * int * int) array;
      (** data symbols: (name, base word address, size in words) *)
  functions : (string * int * int) array;
      (** (name, entry byte offset, code byte length); index = call id *)
  entry : int;  (** function id of [main] *)
  ret_reg : int;  (** ABI return register (varies with struct-return flags) *)
}

(** A basic block reconstructed from the bytes. *)
type bblock = {
  b_addr : int;  (** byte offset of the leader *)
  b_insns : (int * Insn.insn) list;
  b_succs : int list;  (** successor block addresses *)
}

(** Analysis result for one function. *)
type bfunc = {
  f_name : string;
  f_id : int;
  f_addr : int;
  f_insns : (int * Insn.insn) list;
  f_blocks : bblock list;
  f_calls : int list;  (** callee function ids, static *)
}

val flow : Insn.insn -> next:int -> int list * bool
(** Control transfers out of an instruction located just before [next],
    as [(branch targets, falls_through)].  Calls fall through (the
    callee returns); [Iret]/[Ijmpf] end the flow. *)

val analyze : t -> bfunc list
(** Disassemble and reconstruct every function's CFG. *)

val analyze_function : t -> int -> bfunc
(** Analyze a single function by id. *)

val code_of_function : t -> int -> string
(** Raw bytes of one function's body (for per-function NCD). *)

val size : t -> int
(** Total binary size in bytes (text + data). *)

val serialize_data : int array -> string
(** Pack the initial data memory into bytes (stored in [data]). *)
