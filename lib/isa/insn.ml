(* The VX instruction set — the synthetic machine both compiler profiles
   target.  Shapes follow x86-64: 16 general registers (R13 is the stack
   pointer, R12 the conventional frame pointer), condition flags set by
   cmp/test, cmov/setcc, a hardware [loop] instruction, inline jump
   tables, and 4-lane vector registers V0..V7.

   Code addresses are byte offsets into the text section.  Data lives in
   a flat word-addressed memory; data symbols are indices into the
   binary's symbol table.  Frame accesses are offsets (in words) from the
   frame base, which is either the frame pointer or the stack pointer
   (when -fomit-frame-pointer is active). *)

type arch = X86_32 | X86_64 | Arm | Mips

let arch_name = function
  | X86_32 -> "x86-32"
  | X86_64 -> "x86-64"
  | Arm -> "arm"
  | Mips -> "mips"

let all_arches = [ X86_32; X86_64; Arm; Mips ]

(* General registers available to the allocator per architecture; the VM
   always has 16.  R13 = SP, R12 = FP by convention. *)
let register_count = function
  | X86_32 -> 8
  | X86_64 | Arm | Mips -> 16

let sp = 13

let fp = 12

type alu =
  | Aadd
  | Asub
  | Amul
  | Adiv
  | Amod
  | Aand
  | Aor
  | Axor
  | Ashl
  | Ashr

type cond = Ceq | Cne | Clt | Cle | Cgt | Cge

type fbase = FP_rel | SP_rel

type operand = Oreg of int | Oimm of int

type insn =
  | Imov of int * operand
  | Ialu of alu * int * int * operand  (** dst = a ⊕ b *)
  | Ineg of int * int
  | Inot of int * int
  | Icmp of int * operand  (** set flags from a − b *)
  | Itest of int * int  (** flags from a & b *)
  | Isetcc of cond * int
  | Icmov of cond * int * operand
  | Ijmp of int
  | Ijcc of cond * int
  | Ijtab of int * int list  (** indexed jump: reg selects a target *)
  | Iloop of int * int  (** dec reg; jump if non-zero *)
  | Ild of int * int * operand  (** dst = data\[sym + idx\] *)
  | Ist of int * operand * operand  (** data\[sym + idx\] = v *)
  | Ildf of int * fbase * int * operand
      (** dst = frame\[base + off + idx\]; idx may be Oimm 0 *)
  | Istf of fbase * int * operand * operand
  | Ipush of operand
  | Ipop of int
  | Icall of int  (** function id *)
  | Icallr of int  (** indirect call through register *)
  | Ila of int * int  (** load function address (id) into register *)
  | Iret
  | Ivld of int * int * operand  (** vector load from data symbol *)
  | Ivst of int * operand * int
  | Ivalu of alu * int * int * int
  | Ivsplat of int * operand
  | Ivpack of int * operand * operand * operand * operand
  | Ivred of alu * int * int
  | Ivldf of int * fbase * int * operand  (** vector load from frame *)
  | Ivstf of fbase * int * operand * int
  | Iprint of operand
  | Iprintc of operand
  | Iread of int * operand
  | Ilen of int
  | Inop
  (* compact forms produced by the peephole pass (-fpeephole2) *)
  | Iinc of int
  | Idec of int
  | Ixorz of int  (** xor r, r — the idiomatic zeroing *)
  | Ijmpf of int
      (** tail jump to a function: transfers control without pushing a
          return address (tail-call optimization) *)

let alu_name = function
  | Aadd -> "add"
  | Asub -> "sub"
  | Amul -> "mul"
  | Adiv -> "div"
  | Amod -> "mod"
  | Aand -> "and"
  | Aor -> "or"
  | Axor -> "xor"
  | Ashl -> "shl"
  | Ashr -> "shr"

let cond_name = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Clt -> "lt"
  | Cle -> "le"
  | Cgt -> "gt"
  | Cge -> "ge"

let operand_to_string = function
  | Oreg r -> Printf.sprintf "r%d" r
  | Oimm n -> Printf.sprintf "$%d" n

let fbase_name = function FP_rel -> "fp" | SP_rel -> "sp"

let to_string i =
  let op = operand_to_string in
  match i with
  | Imov (d, s) -> Printf.sprintf "mov r%d, %s" d (op s)
  | Ialu (a, d, x, y) ->
    Printf.sprintf "%s r%d, r%d, %s" (alu_name a) d x (op y)
  | Ineg (d, x) -> Printf.sprintf "neg r%d, r%d" d x
  | Inot (d, x) -> Printf.sprintf "not r%d, r%d" d x
  | Icmp (a, b) -> Printf.sprintf "cmp r%d, %s" a (op b)
  | Itest (a, b) -> Printf.sprintf "test r%d, r%d" a b
  | Isetcc (c, d) -> Printf.sprintf "set%s r%d" (cond_name c) d
  | Icmov (c, d, s) -> Printf.sprintf "cmov%s r%d, %s" (cond_name c) d (op s)
  | Ijmp t -> Printf.sprintf "jmp %#x" t
  | Ijcc (c, t) -> Printf.sprintf "j%s %#x" (cond_name c) t
  | Ijtab (r, ts) ->
    Printf.sprintf "jtab r%d, [%s]" r
      (String.concat "; " (List.map (Printf.sprintf "%#x") ts))
  | Iloop (r, t) -> Printf.sprintf "loop r%d, %#x" r t
  | Ild (d, s, i) -> Printf.sprintf "ld r%d, sym%d[%s]" d s (op i)
  | Ist (s, i, v) -> Printf.sprintf "st sym%d[%s], %s" s (op i) (op v)
  | Ildf (d, b, o, i) ->
    Printf.sprintf "ldf r%d, %s[%d+%s]" d (fbase_name b) o (op i)
  | Istf (b, o, i, v) ->
    Printf.sprintf "stf %s[%d+%s], %s" (fbase_name b) o (op i) (op v)
  | Ipush s -> Printf.sprintf "push %s" (op s)
  | Ipop d -> Printf.sprintf "pop r%d" d
  | Icall fid -> Printf.sprintf "call f%d" fid
  | Icallr r -> Printf.sprintf "call *r%d" r
  | Ila (d, fid) -> Printf.sprintf "la r%d, f%d" d fid
  | Iret -> "ret"
  | Ivld (d, s, i) -> Printf.sprintf "vld v%d, sym%d[%s]" d s (op i)
  | Ivst (s, i, v) -> Printf.sprintf "vst sym%d[%s], v%d" s (op i) v
  | Ivalu (a, d, x, y) -> Printf.sprintf "v%s v%d, v%d, v%d" (alu_name a) d x y
  | Ivsplat (d, s) -> Printf.sprintf "vsplat v%d, %s" d (op s)
  | Ivpack (d, a, b, c, e) ->
    Printf.sprintf "vpack v%d, %s, %s, %s, %s" d (op a) (op b) (op c) (op e)
  | Ivred (a, d, v) -> Printf.sprintf "vred_%s r%d, v%d" (alu_name a) d v
  | Ivldf (d, b, o, i) ->
    Printf.sprintf "vldf v%d, %s[%d+%s]" d (fbase_name b) o (op i)
  | Ivstf (b, o, i, v) ->
    Printf.sprintf "vstf %s[%d+%s], v%d" (fbase_name b) o (op i) v
  | Iprint s -> Printf.sprintf "print %s" (op s)
  | Iprintc s -> Printf.sprintf "printc %s" (op s)
  | Iread (d, i) -> Printf.sprintf "read r%d, %s" d (op i)
  | Ilen d -> Printf.sprintf "len r%d" d
  | Inop -> "nop"
  | Iinc r -> Printf.sprintf "inc r%d" r
  | Idec r -> Printf.sprintf "dec r%d" r
  | Ixorz r -> Printf.sprintf "xor r%d, r%d" r r
  | Ijmpf fid -> Printf.sprintf "jmpf f%d" fid
