open Insn

type t = {
  arch : arch;
  profile : string;
  opt_label : string;
  text : string;
  data : string;
  data_words : int array;
  symbols : (string * int * int) array;
  functions : (string * int * int) array;
  entry : int;
  ret_reg : int;
}

type bblock = {
  b_addr : int;
  b_insns : (int * insn) list;
  b_succs : int list;
}

type bfunc = {
  f_name : string;
  f_id : int;
  f_addr : int;
  f_insns : (int * insn) list;
  f_blocks : bblock list;
  f_calls : int list;
}

let serialize_data words =
  let b = Buffer.create (Array.length words * 8) in
  Array.iter
    (fun v ->
      for i = 0 to 7 do
        Buffer.add_char b (Char.chr ((v asr (8 * i)) land 0xFF))
      done)
    words;
  Buffer.contents b

let size t = String.length t.text + String.length t.data

let code_of_function t fid =
  let _, addr, len = t.functions.(fid) in
  String.sub t.text addr len

(* Control transfers out of an instruction, as (targets, falls_through). *)
let flow insn ~next =
  match insn with
  | Ijmp target -> ([ target ], false)
  | Ijcc (_, target) -> ([ target; next ], false)
  | Iloop (r, target) ->
    ignore r;
    ([ target; next ], false)
  | Ijtab (_, targets) -> (targets, false)
  | Iret -> ([], false)
  | Ijmpf _ -> ([], false)
  | Imov _ | Ialu _ | Ineg _ | Inot _ | Icmp _ | Itest _ | Isetcc _
  | Icmov _ | Ild _ | Ist _ | Ildf _ | Istf _ | Ipush _ | Ipop _ | Icall _
  | Icallr _ | Ila _ | Ivld _ | Ivst _ | Ivalu _ | Ivsplat _ | Ivpack _
  | Ivred _ | Ivldf _ | Ivstf _ | Iprint _ | Iprintc _ | Iread _ | Ilen _
  | Inop | Iinc _ | Idec _ | Ixorz _ ->
    ([ next ], true)

let analyze_function t fid =
  let name, addr, len = t.functions.(fid) in
  let stop = addr + len in
  (* linear sweep *)
  let insns = ref [] in
  let pos = ref addr in
  while !pos < stop do
    let i, next = Codec.decode t.arch t.text ~pos:!pos in
    insns := (!pos, i) :: !insns;
    pos := next
  done;
  let insns = List.rev !insns in
  (* leaders: entry, targets of control transfers, fallthroughs after
     non-sequential instructions *)
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders addr ();
  let next_of =
    (* map from insn addr to next insn addr *)
    let tbl = Hashtbl.create 64 in
    let rec fill = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        Hashtbl.replace tbl a b;
        fill rest
      | [ (a, _) ] -> Hashtbl.replace tbl a stop
      | [] -> ()
    in
    fill insns;
    tbl
  in
  List.iter
    (fun (a, i) ->
      let next = try Hashtbl.find next_of a with Not_found -> stop in
      let targets, falls = flow i ~next in
      match i with
      | Ijmp _ | Ijcc _ | Iloop _ | Ijtab _ | Iret | Ijmpf _ ->
        List.iter
          (fun tgt -> if tgt >= addr && tgt < stop then Hashtbl.replace leaders tgt ())
          targets;
        if next < stop then Hashtbl.replace leaders next ()
      | _ -> ignore falls)
    insns;
  (* split into blocks *)
  let blocks = ref [] in
  let rec walk insns cur cur_addr =
    match insns with
    | [] ->
      if cur <> [] then
        blocks :=
          { b_addr = cur_addr; b_insns = List.rev cur; b_succs = [] }
          :: !blocks
    | (a, i) :: rest ->
      let is_leader = a <> cur_addr && Hashtbl.mem leaders a in
      if is_leader && cur <> [] then begin
        (* close the current block: falls through to a *)
        blocks :=
          { b_addr = cur_addr; b_insns = List.rev cur; b_succs = [ a ] }
          :: !blocks;
        walk ((a, i) :: rest) [] a
      end
      else begin
        let next = try Hashtbl.find next_of a with Not_found -> stop in
        let targets, _ = flow i ~next in
        let ends_block =
          match i with
          | Ijmp _ | Ijcc _ | Iloop _ | Ijtab _ | Iret | Ijmpf _ -> true
          | _ -> false
        in
        if ends_block then begin
          let succs =
            List.sort_uniq compare
              (List.filter (fun tg -> tg >= addr && tg < stop) targets)
          in
          blocks :=
            { b_addr = cur_addr; b_insns = List.rev ((a, i) :: cur); b_succs = succs }
            :: !blocks;
          walk rest [] next
        end
        else walk rest ((a, i) :: cur) cur_addr
      end
  in
  walk insns [] addr;
  let f_blocks =
    List.sort (fun a b -> compare a.b_addr b.b_addr) !blocks
    |> List.filter (fun b -> b.b_insns <> [])
  in
  let f_calls =
    List.filter_map
      (fun (_, i) ->
        match i with
        | Icall fid | Ila (_, fid) | Ijmpf fid -> Some fid
        | _ -> None)
      insns
    |> List.sort_uniq compare
  in
  { f_name = name; f_id = fid; f_addr = addr; f_insns = insns; f_blocks; f_calls }

let analyze t =
  Telemetry.with_span
    ~attrs:
      [
        ("arch", Insn.arch_name t.arch);
        ("functions", string_of_int (Array.length t.functions));
      ]
    "isa.binary.analyze"
    (fun () ->
      Telemetry.add_count "isa.binary.analyze";
      List.init (Array.length t.functions) (fun fid -> analyze_function t fid))
