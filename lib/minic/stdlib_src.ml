(* The MinC standard library.

   These functions are appended (when not already defined) to every program
   by {!Sema.link_stdlib}, as ordinary MinC source.  Compiling them like
   user code is the point: function inlining, builtin expansion and the
   other inter-procedural optimizations of the pass pipeline apply to them
   exactly as GCC's builtins interact with user calls in the paper (§3.2,
   Figure 3d).

   Array-typed parameters are expressed through the global scratch arrays
   [__mem]: MinC has no pointers, so the string functions operate on
   offsets into a single global byte array, mirroring a flat memory
   model. *)

let source =
  {|
int __mem[4096];

int strlen(int off) {
  int n = 0;
  while (__mem[off + n] != 0) { n++; }
  return n;
}

int strcpy(int dst, int src) {
  int i = 0;
  while (__mem[src + i] != 0) {
    __mem[dst + i] = __mem[src + i];
    i++;
  }
  __mem[dst + i] = 0;
  return dst;
}

int strcmp(int a, int b) {
  int i = 0;
  while (__mem[a + i] != 0 && __mem[a + i] == __mem[b + i]) { i++; }
  return __mem[a + i] - __mem[b + i];
}

int memset(int dst, int value, int count) {
  int i;
  for (i = 0; i < count; i++) { __mem[dst + i] = value; }
  return dst;
}

int memcpy(int dst, int src, int count) {
  int i;
  for (i = 0; i < count; i++) { __mem[dst + i] = __mem[src + i]; }
  return dst;
}

int abs_(int x) {
  if (x < 0) { return -x; }
  return x;
}

int min_(int a, int b) {
  if (a < b) { return a; }
  return b;
}

int max_(int a, int b) {
  if (a > b) { return a; }
  return b;
}
|}

(* Functions whose calls the builtin-expansion pass may replace with
   straight-line code when the arguments make the trip count a small
   constant (the strcpy-as-mov-sequence effect of Figure 3d). *)
let expandable = [ "memset"; "memcpy"; "strcpy" ]
