(** Recursive-descent parser for MinC.

    Grammar (C subset): top-level global scalar/array declarations and
    function definitions; statements cover declarations, assignments
    (including compound assignment and [++]/[--]), [if]/[else], [while],
    [do]/[while], three-clause [for], [switch] with fallthrough case
    groups, [break]/[continue]/[return], and expression statements.
    Expressions use C precedence, with [?:], short-circuit [&&]/[||], and
    function calls.  String literals are sugar for NUL-terminated int-array
    initializers. *)

exception Error of string * int
(** [Error (message, line)]. *)

val parse : string -> Ast.program
(** Parse a full translation unit.  Raises {!Error} or {!Lexer.Error}. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests). *)
