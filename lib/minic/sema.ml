open Ast

exception Error of string

let builtins =
  [ ("print_int", 1); ("print_char", 1); ("input", 1); ("input_len", 0) ]

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Smap = Map.Make (String)
module Sset = Set.Make (String)

let link_stdlib prog =
  let lib = Parser.parse Stdlib_src.source in
  let defined_funcs =
    List.fold_left (fun s f -> Sset.add f.fname s) Sset.empty prog.funcs
  in
  let defined_globals =
    List.fold_left
      (fun s g ->
        match g with Gvar (n, _) | Garr (n, _, _) -> Sset.add n s)
      Sset.empty prog.globals
  in
  let extra_funcs =
    List.filter (fun f -> not (Sset.mem f.fname defined_funcs)) lib.funcs
  in
  let extra_globals =
    List.filter
      (fun g ->
        match g with
        | Gvar (n, _) | Garr (n, _, _) -> not (Sset.mem n defined_globals))
      lib.globals
  in
  {
    globals = prog.globals @ extra_globals;
    funcs = prog.funcs @ extra_funcs;
  }

type kind = Scalar | Array

let check prog =
  (* global environment *)
  let globals =
    List.fold_left
      (fun env g ->
        match g with
        | Gvar (n, _) ->
          if Smap.mem n env then errorf "duplicate global %s" n;
          Smap.add n Scalar env
        | Garr (n, size, init) ->
          if Smap.mem n env then errorf "duplicate global %s" n;
          if size <= 0 then errorf "global array %s has size %d" n size;
          if List.length init > size then
            errorf "global array %s initializer overflows" n;
          Smap.add n Array env)
      Smap.empty prog.globals
  in
  let arities =
    List.fold_left
      (fun env f ->
        if Smap.mem f.fname env then errorf "duplicate function %s" f.fname;
        Smap.add f.fname (List.length f.params) env)
      Smap.empty prog.funcs
  in
  let arities =
    List.fold_left
      (fun env (n, a) ->
        if Smap.mem n env then
          errorf "function %s collides with a builtin" n
        else Smap.add n a env)
      arities builtins
  in
  (match Smap.find_opt "main" arities with
  | Some 0 -> ()
  | Some n -> errorf "main must take no parameters (has %d)" n
  | None -> errorf "no main function");
  let check_func f =
    let where = f.fname in
    let params =
      List.fold_left
        (fun env p ->
          if Smap.mem p env then
            errorf "%s: duplicate parameter %s" where p;
          Smap.add p Scalar env)
        Smap.empty f.params
    in
    let rec check_expr env e =
      match e with
      | Int _ -> ()
      | Var v -> (
        match Smap.find_opt v env with
        | Some Scalar -> ()
        | Some Array -> errorf "%s: array %s used as scalar" where v
        | None -> errorf "%s: undeclared variable %s" where v)
      | Index (a, idx) ->
        (match Smap.find_opt a env with
        | Some Array -> ()
        | Some Scalar -> errorf "%s: scalar %s indexed" where a
        | None -> errorf "%s: undeclared array %s" where a);
        check_expr env idx
      | Unary (_, e) -> check_expr env e
      | Binary (_, a, b) ->
        check_expr env a;
        check_expr env b
      | Ternary (c, a, b) ->
        check_expr env c;
        check_expr env a;
        check_expr env b
      | Call (fn, args) ->
        (match Smap.find_opt fn arities with
        | Some arity ->
          if List.length args <> arity then
            errorf "%s: %s expects %d arguments, got %d" where fn arity
              (List.length args)
        | None -> errorf "%s: call to undefined function %s" where fn);
        List.iter (check_expr env) args
    in
    (* [env] threads declarations forward through the block; [in_loop]
       guards break/continue. *)
    let rec check_stmts env ~in_loop stmts =
      ignore
        (List.fold_left
           (fun env s -> check_stmt env ~in_loop s)
           env stmts)
    and check_stmt env ~in_loop s =
      match s with
      | Decl (n, init) ->
        Option.iter (check_expr env) init;
        Smap.add n Scalar env
      | Array_decl (n, size, init) ->
        if size <= 0 then errorf "%s: array %s has size %d" where n size;
        if List.length init > size then
          errorf "%s: array %s initializer overflows" where n;
        Smap.add n Array env
      | Assign (n, e) ->
        (match Smap.find_opt n env with
        | Some Scalar -> ()
        | Some Array -> errorf "%s: assignment to array %s" where n
        | None -> errorf "%s: assignment to undeclared %s" where n);
        check_expr env e;
        env
      | Store (a, idx, e) ->
        (match Smap.find_opt a env with
        | Some Array -> ()
        | Some Scalar -> errorf "%s: scalar %s indexed in store" where a
        | None -> errorf "%s: store to undeclared array %s" where a);
        check_expr env idx;
        check_expr env e;
        env
      | If (c, t, f') ->
        check_expr env c;
        check_stmts env ~in_loop t;
        check_stmts env ~in_loop f';
        env
      | While (c, body) ->
        check_expr env c;
        check_stmts env ~in_loop:true body;
        env
      | Do_while (body, c) ->
        check_stmts env ~in_loop:true body;
        check_expr env c;
        env
      | For (init, cond, step, body) ->
        let env' =
          match init with
          | None -> env
          | Some s -> check_stmt env ~in_loop s
        in
        Option.iter (check_expr env') cond;
        (match step with
        | None -> ()
        | Some s -> ignore (check_stmt env' ~in_loop:true s));
        check_stmts env' ~in_loop:true body;
        env
      | Switch (e, cases, default) ->
        check_expr env e;
        let seen =
          List.fold_left
            (fun seen (labels, body) ->
              let seen =
                List.fold_left
                  (fun seen l ->
                    if List.mem l seen then
                      errorf "%s: duplicate case label %d" where l;
                    l :: seen)
                  seen labels
              in
              check_stmts env ~in_loop:true body;
              seen)
            [] cases
        in
        ignore seen;
        Option.iter (check_stmts env ~in_loop:true) default;
        env
      | Return e ->
        Option.iter (check_expr env) e;
        env
      | Break | Continue ->
        if not in_loop then
          errorf "%s: break/continue outside loop or switch" where;
        env
      | Expr_stmt e ->
        check_expr env e;
        env
      | Block body ->
        check_stmts env ~in_loop body;
        env
    in
    let env0 =
      Smap.union (fun _ _ local -> Some local) globals params
    in
    check_stmts env0 ~in_loop:false f.body
  in
  List.iter check_func prog.funcs

let analyze source =
  let prog = Parser.parse source in
  let prog = link_stdlib prog in
  check prog;
  prog
