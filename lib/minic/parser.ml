open Ast

exception Error of string * int

type state = { mutable toks : (Lexer.token * int) list }

let peek st =
  match st.toks with
  | (t, _) :: _ -> t
  | [] -> Lexer.EOF

let line st =
  match st.toks with
  | (_, l) :: _ -> l
  | [] -> 0

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string (peek st)),
         line st ))

let expect st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* Constant expressions: array sizes and case labels must fold to
   integers at parse time. *)
let rec const_eval st = function
  | Int n -> n
  | Unary (Neg, e) -> -const_eval st e
  | Unary (Bnot, e) -> lnot (const_eval st e)
  | Binary (Add, a, b) -> const_eval st a + const_eval st b
  | Binary (Sub, a, b) -> const_eval st a - const_eval st b
  | Binary (Mul, a, b) -> const_eval st a * const_eval st b
  | Binary (Shl, a, b) -> const_eval st a lsl const_eval st b
  | _ -> fail st "expected constant expression"

(* --- expressions: precedence climbing ------------------------------- *)

let binop_of_token = function
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.EQEQ -> Some (Eq, 6)
  | Lexer.NE -> Some (Ne, 6)
  | Lexer.AMP -> Some (Band, 5)
  | Lexer.CARET -> Some (Bxor, 4)
  | Lexer.PIPE -> Some (Bor, 3)
  | Lexer.ANDAND -> Some (Land, 2)
  | Lexer.OROR -> Some (Lor, 1)
  | _ -> None

let rec parse_primary st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Int n
  | Lexer.LPAREN ->
    advance st;
    let e = parse_ternary st in
    expect st Lexer.RPAREN ")";
    e
  | Lexer.MINUS ->
    advance st;
    (match parse_primary st with
    | Int n -> Int (-n)
    | e -> Unary (Neg, e))
  | Lexer.TILDE ->
    advance st;
    Unary (Bnot, parse_primary st)
  | Lexer.BANG ->
    advance st;
    Unary (Lnot, parse_primary st)
  | Lexer.PLUS ->
    advance st;
    parse_primary st
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      Call (name, args)
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_ternary st in
      expect st Lexer.RBRACKET "]";
      Index (name, idx)
    | _ -> Var name)
  | _ -> fail st "expected expression"

and parse_args st =
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_ternary st in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (e :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | _ -> fail st "expected , or ) in argument list"
    in
    loop []
  end

and parse_binary st min_prec =
  let lhs = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := Binary (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and parse_ternary st =
  let cond = parse_binary st 1 in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let a = parse_ternary st in
    expect st Lexer.COLON ":";
    let b = parse_ternary st in
    Ternary (cond, a, b)
  end
  else cond

(* --- statements ------------------------------------------------------ *)

let compound_op = function
  | Lexer.PLUS_ASSIGN -> Some Add
  | Lexer.MINUS_ASSIGN -> Some Sub
  | Lexer.STAR_ASSIGN -> Some Mul
  | Lexer.SLASH_ASSIGN -> Some Div
  | Lexer.PERCENT_ASSIGN -> Some Mod
  | Lexer.AMP_ASSIGN -> Some Band
  | Lexer.PIPE_ASSIGN -> Some Bor
  | Lexer.CARET_ASSIGN -> Some Bxor
  | Lexer.SHL_ASSIGN -> Some Shl
  | Lexer.SHR_ASSIGN -> Some Shr
  | _ -> None

(* Parse the part of a simple (semicolon-less) statement: assignment,
   compound assignment, increment, call.  Used by both expression
   statements and `for` clauses. *)
let rec parse_simple st =
  match peek st with
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.ASSIGN ->
      advance st;
      Assign (name, parse_ternary st)
    | Lexer.PLUSPLUS ->
      advance st;
      Assign (name, Binary (Add, Var name, Int 1))
    | Lexer.MINUSMINUS ->
      advance st;
      Assign (name, Binary (Sub, Var name, Int 1))
    | Lexer.LBRACKET -> (
      advance st;
      let idx = parse_ternary st in
      expect st Lexer.RBRACKET "]";
      match peek st with
      | Lexer.ASSIGN ->
        advance st;
        Store (name, idx, parse_ternary st)
      | Lexer.PLUSPLUS ->
        advance st;
        Store (name, idx, Binary (Add, Index (name, idx), Int 1))
      | Lexer.MINUSMINUS ->
        advance st;
        Store (name, idx, Binary (Sub, Index (name, idx), Int 1))
      | tok -> (
        match compound_op tok with
        | Some op ->
          advance st;
          let rhs = parse_ternary st in
          Store (name, idx, Binary (op, Index (name, idx), rhs))
        | None ->
          (* plain expression statement starting with an index read *)
          let e = finish_expr st (Index (name, idx)) in
          Expr_stmt e))
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      let e = finish_expr st (Call (name, args)) in
      Expr_stmt e
    | tok -> (
      match compound_op tok with
      | Some op ->
        advance st;
        let rhs = parse_ternary st in
        Assign (name, Binary (op, Var name, rhs))
      | None ->
        let e = finish_expr st (Var name) in
        Expr_stmt e))
  | Lexer.PLUSPLUS ->
    advance st;
    let name = expect_ident st in
    Assign (name, Binary (Add, Var name, Int 1))
  | Lexer.MINUSMINUS ->
    advance st;
    let name = expect_ident st in
    Assign (name, Binary (Sub, Var name, Int 1))
  | _ ->
    let e = parse_ternary st in
    Expr_stmt e

(* Continue parsing an expression whose leftmost primary was already
   consumed: fold pending binary operators and ternary around [lhs]. *)
and finish_expr st lhs =
  let lhs = ref lhs in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := Binary (op, !lhs, rhs)
    | None -> continue_ := false
  done;
  if peek st = Lexer.QUESTION then begin
    advance st;
    let a = parse_ternary st in
    expect st Lexer.COLON ":";
    let b = parse_ternary st in
    Ternary (!lhs, a, b)
  end
  else !lhs

let string_to_init s =
  List.init (String.length s) (fun i -> Char.code s.[i]) @ [ 0 ]

let rec parse_initializer_list st =
  expect st Lexer.LBRACE "{";
  if peek st = Lexer.RBRACE then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let v = const_eval st (parse_ternary st) in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev (v :: acc)
        end
        else loop (v :: acc)
      | Lexer.RBRACE ->
        advance st;
        List.rev (v :: acc)
      | _ -> fail st "expected , or } in initializer"
    in
    loop []
  end

and parse_decl st =
  (* KW_INT already consumed *)
  let name = expect_ident st in
  match peek st with
  | Lexer.LBRACKET ->
    advance st;
    let declared_size =
      if peek st = Lexer.RBRACKET then None
      else Some (const_eval st (parse_ternary st))
    in
    expect st Lexer.RBRACKET "]";
    let init =
      if peek st = Lexer.ASSIGN then begin
        advance st;
        match peek st with
        | Lexer.STRING s ->
          advance st;
          string_to_init s
        | _ -> parse_initializer_list st
      end
      else []
    in
    let size =
      match declared_size with
      | Some n -> n
      | None ->
        if init = [] then fail st "array with neither size nor initializer"
        else List.length init
    in
    if List.length init > size then fail st "initializer longer than array";
    Array_decl (name, size, init)
  | Lexer.ASSIGN ->
    advance st;
    let e = parse_ternary st in
    Decl (name, Some e)
  | _ -> Decl (name, None)

and parse_stmt st =
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    let body = parse_stmts st in
    expect st Lexer.RBRACE "}";
    Block body
  | Lexer.KW_INT ->
    advance st;
    let d = parse_decl st in
    (* int a = 1, b = 2; *)
    let rec more acc =
      if peek st = Lexer.COMMA then begin
        advance st;
        more (parse_decl st :: acc)
      end
      else List.rev acc
    in
    let ds = more [ d ] in
    expect st Lexer.SEMI ";";
    (match ds with [ one ] -> one | many -> Block many)
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN "(";
    let cond = parse_ternary st in
    expect st Lexer.RPAREN ")";
    let then_branch = parse_stmt_as_list st in
    let else_branch =
      if peek st = Lexer.KW_ELSE then begin
        advance st;
        parse_stmt_as_list st
      end
      else []
    in
    If (cond, then_branch, else_branch)
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN "(";
    let cond = parse_ternary st in
    expect st Lexer.RPAREN ")";
    let body = parse_stmt_as_list st in
    While (cond, body)
  | Lexer.KW_DO ->
    advance st;
    let body = parse_stmt_as_list st in
    expect st Lexer.KW_WHILE "while";
    expect st Lexer.LPAREN "(";
    let cond = parse_ternary st in
    expect st Lexer.RPAREN ")";
    expect st Lexer.SEMI ";";
    Do_while (body, cond)
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN "(";
    let init =
      if peek st = Lexer.SEMI then None
      else if peek st = Lexer.KW_INT then begin
        advance st;
        Some (parse_decl st)
      end
      else Some (parse_simple st)
    in
    expect st Lexer.SEMI ";";
    let cond = if peek st = Lexer.SEMI then None else Some (parse_ternary st) in
    expect st Lexer.SEMI ";";
    let step =
      if peek st = Lexer.RPAREN then None else Some (parse_simple st)
    in
    expect st Lexer.RPAREN ")";
    let body = parse_stmt_as_list st in
    For (init, cond, step, body)
  | Lexer.KW_SWITCH ->
    advance st;
    expect st Lexer.LPAREN "(";
    let scrutinee = parse_ternary st in
    expect st Lexer.RPAREN ")";
    expect st Lexer.LBRACE "{";
    let cases = ref [] in
    let default = ref None in
    while peek st <> Lexer.RBRACE do
      match peek st with
      | Lexer.KW_CASE ->
        (* collect consecutive labels into one fallthrough group *)
        let labels = ref [] in
        while peek st = Lexer.KW_CASE do
          advance st;
          let v = const_eval st (parse_ternary st) in
          expect st Lexer.COLON ":";
          labels := v :: !labels
        done;
        let body = parse_case_body st in
        cases := (List.rev !labels, body) :: !cases
      | Lexer.KW_DEFAULT ->
        advance st;
        expect st Lexer.COLON ":";
        let body = parse_case_body st in
        default := Some body
      | _ -> fail st "expected case or default in switch"
    done;
    advance st;
    Switch (scrutinee, List.rev !cases, !default)
  | Lexer.KW_RETURN ->
    advance st;
    if peek st = Lexer.SEMI then begin
      advance st;
      Return None
    end
    else begin
      let e = parse_ternary st in
      expect st Lexer.SEMI ";";
      Return (Some e)
    end
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI ";";
    Break
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI ";";
    Continue
  | Lexer.SEMI ->
    advance st;
    Block []
  | _ ->
    let s = parse_simple st in
    expect st Lexer.SEMI ";";
    s

and parse_stmt_as_list st =
  match parse_stmt st with
  | Block b -> b
  | s -> [ s ]

and parse_case_body st =
  (* statements until the next case/default/closing brace; break is kept
     and interpreted by lowering (fallthrough when absent) *)
  let rec loop acc =
    match peek st with
    | Lexer.KW_CASE | Lexer.KW_DEFAULT | Lexer.RBRACE -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmts st =
  let rec loop acc =
    match peek st with
    | Lexer.RBRACE | Lexer.EOF -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

(* --- top level ------------------------------------------------------- *)

let parse_params st =
  expect st Lexer.LPAREN "(";
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      expect st Lexer.KW_INT "int";
      let name = expect_ident st in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (name :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev (name :: acc)
      | _ -> fail st "expected , or ) in parameter list"
    in
    loop []
  end

let parse_program st =
  let globals = ref [] in
  let funcs = ref [] in
  while peek st <> Lexer.EOF do
    expect st Lexer.KW_INT "int (top-level declaration)";
    let name = expect_ident st in
    match peek st with
    | Lexer.LPAREN ->
      let params = parse_params st in
      expect st Lexer.LBRACE "{";
      let body = parse_stmts st in
      expect st Lexer.RBRACE "}";
      funcs := { fname = name; params; body } :: !funcs
    | Lexer.LBRACKET ->
      advance st;
      let declared_size =
        if peek st = Lexer.RBRACKET then None
        else Some (const_eval st (parse_ternary st))
      in
      expect st Lexer.RBRACKET "]";
      let init =
        if peek st = Lexer.ASSIGN then begin
          advance st;
          match peek st with
          | Lexer.STRING s ->
            advance st;
            string_to_init s
          | _ -> parse_initializer_list st
        end
        else []
      in
      expect st Lexer.SEMI ";";
      let size =
        match declared_size with
        | Some n -> n
        | None ->
          if init = [] then fail st "array with neither size nor initializer"
          else List.length init
      in
      globals := Garr (name, size, init) :: !globals
    | Lexer.ASSIGN ->
      advance st;
      let v = const_eval st (parse_ternary st) in
      expect st Lexer.SEMI ";";
      globals := Gvar (name, v) :: !globals
    | Lexer.SEMI ->
      advance st;
      globals := Gvar (name, 0) :: !globals
    | _ -> fail st "expected function body or global initializer"
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  parse_program st

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_ternary st in
  expect st Lexer.EOF "end of input";
  e
