(** Hand-written lexer for MinC source text. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string  (** string literal, used only in array initializers *)
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

exception Error of string * int
(** [Error (message, line)]. *)

val tokenize : string -> (token * int) list
(** [tokenize source] returns the token stream with line numbers.
    Raises {!Error} on malformed input.  Handles [//] and [/* */]
    comments, decimal / hex integers, character literals (['a'] becomes an
    [INT]), and string literals. *)

val token_to_string : token -> string
