(* Abstract syntax of MinC, the C subset every benchmark in the corpus is
   written in.  Semantics: all values are machine integers (OCaml native
   ints standing in for a 64-bit register), arrays are one-dimensional and
   statically sized; there are no pointers beyond array indexing.  Division
   and modulo by zero evaluate to zero (total semantics keep the VM and all
   diffing-tool samplers deterministic). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** short-circuit && *)
  | Lor  (** short-circuit || *)

type unop = Neg | Bnot | Lnot

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** arr\[e\] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Ternary of expr * expr * expr

type stmt =
  | Decl of string * expr option  (** int x; / int x = e; *)
  | Array_decl of string * int * int list  (** int a\[n\] = {…}; *)
  | Assign of string * expr
  | Store of string * expr * expr  (** arr\[i\] = e; *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Switch of expr * (int list * stmt list) list * stmt list option
      (** cases may carry several labels (fallthrough groups); optional
          default *)
  | Return of expr option
  | Break
  | Continue
  | Expr_stmt of expr
  | Block of stmt list

type func = { fname : string; params : string list; body : stmt list }

type global =
  | Gvar of string * int
  | Garr of string * int * int list  (** name, size, initializer prefix *)

type program = { globals : global list; funcs : func list }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let unop_name = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

let rec expr_to_string = function
  | Int n -> string_of_int n
  | Var v -> v
  | Index (a, e) -> Printf.sprintf "%s[%s]" a (expr_to_string e)
  | Unary (op, e) -> Printf.sprintf "%s(%s)" (unop_name op) (expr_to_string e)
  | Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op)
      (expr_to_string b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f
      (String.concat ", " (List.map expr_to_string args))
  | Ternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)

(* Structural size measures, used by inlining heuristics and tests. *)

let rec expr_size = function
  | Int _ | Var _ -> 1
  | Index (_, e) | Unary (_, e) -> 1 + expr_size e
  | Binary (_, a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> acc + expr_size e) 0 args
  | Ternary (c, a, b) -> 1 + expr_size c + expr_size a + expr_size b

let rec stmt_size = function
  | Decl (_, None) -> 1
  | Decl (_, Some e) -> 1 + expr_size e
  | Array_decl (_, _, _) -> 1
  | Assign (_, e) -> 1 + expr_size e
  | Store (_, i, e) -> 1 + expr_size i + expr_size e
  | If (c, t, f) -> 1 + expr_size c + stmts_size t + stmts_size f
  | While (c, b) -> 1 + expr_size c + stmts_size b
  | Do_while (b, c) -> 1 + expr_size c + stmts_size b
  | For (init, cond, step, b) ->
    let opt_stmt = function None -> 0 | Some s -> stmt_size s in
    let opt_expr = function None -> 0 | Some e -> expr_size e in
    1 + opt_stmt init + opt_expr cond + opt_stmt step + stmts_size b
  | Switch (e, cases, default) ->
    let case_size acc (_, body) = acc + stmts_size body in
    let base = 1 + expr_size e + List.fold_left case_size 0 cases in
    (match default with None -> base | Some d -> base + stmts_size d)
  | Return None -> 1
  | Return (Some e) -> 1 + expr_size e
  | Break | Continue -> 1
  | Expr_stmt e -> 1 + expr_size e
  | Block b -> stmts_size b

and stmts_size stmts = List.fold_left (fun acc s -> acc + stmt_size s) 0 stmts

let func_size f = stmts_size f.body

let program_size p =
  List.fold_left (fun acc f -> acc + func_size f) 0 p.funcs
