type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

exception Error of string * int

let keyword_of_ident = function
  | "int" | "char" | "long" | "void" -> Some KW_INT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let escape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> raise (Error (Printf.sprintf "unknown escape \\%c" c, line))

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let advance k = i := !i + k in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      advance 1
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance 1
    else if c = '/' && peek 1 = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && peek 1 = '*' then begin
      advance 2;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = '/' then begin
          closed := true;
          advance 2
        end
        else advance 1
      done;
      if not !closed then raise (Error ("unterminated comment", !line))
    end
    else if is_digit c then begin
      if c = '0' && (peek 1 = 'x' || peek 1 = 'X') then begin
        let start = !i + 2 in
        let j = ref start in
        while !j < n && is_hex_digit src.[!j] do
          incr j
        done;
        if !j = start then raise (Error ("malformed hex literal", !line));
        emit (INT (int_of_string ("0x" ^ String.sub src start (!j - start))));
        i := !j
      end
      else begin
        let start = !i in
        let j = ref start in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        emit (INT (int_of_string (String.sub src start (!j - start))));
        i := !j
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      let j = ref start in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      (match keyword_of_ident word with
      | Some kw -> emit kw
      | None -> emit (IDENT word));
      i := !j
    end
    else if c = '\'' then begin
      let value, consumed =
        match peek 1 with
        | '\\' -> (Char.code (escape_char !line (peek 2)), 4)
        | '\'' -> raise (Error ("empty character literal", !line))
        | ch -> (Char.code ch, 3)
      in
      if peek (consumed - 1) <> '\'' then
        raise (Error ("unterminated character literal", !line));
      emit (INT value);
      advance consumed
    end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while !j < n && not !closed do
        match src.[!j] with
        | '"' ->
          closed := true;
          incr j
        | '\\' ->
          if !j + 1 >= n then raise (Error ("unterminated string", !line));
          Buffer.add_char b (escape_char !line src.[!j + 1]);
          j := !j + 2
        | '\n' -> raise (Error ("newline in string literal", !line))
        | ch ->
          Buffer.add_char b ch;
          incr j
      done;
      if not !closed then raise (Error ("unterminated string", !line));
      emit (STRING (Buffer.contents b));
      i := !j
    end
    else begin
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let tok3 =
        match three with
        | "<<=" -> Some SHL_ASSIGN
        | ">>=" -> Some SHR_ASSIGN
        | _ -> None
      in
      match tok3 with
      | Some t ->
        emit t;
        advance 3
      | None ->
        let tok2 =
          match two with
          | "<<" -> Some SHL
          | ">>" -> Some SHR
          | "<=" -> Some LE
          | ">=" -> Some GE
          | "==" -> Some EQEQ
          | "!=" -> Some NE
          | "&&" -> Some ANDAND
          | "||" -> Some OROR
          | "+=" -> Some PLUS_ASSIGN
          | "-=" -> Some MINUS_ASSIGN
          | "*=" -> Some STAR_ASSIGN
          | "/=" -> Some SLASH_ASSIGN
          | "%=" -> Some PERCENT_ASSIGN
          | "&=" -> Some AMP_ASSIGN
          | "|=" -> Some PIPE_ASSIGN
          | "^=" -> Some CARET_ASSIGN
          | "++" -> Some PLUSPLUS
          | "--" -> Some MINUSMINUS
          | _ -> None
        in
        (match tok2 with
        | Some t ->
          emit t;
          advance 2
        | None ->
          let tok1 =
            match c with
            | '(' -> LPAREN
            | ')' -> RPAREN
            | '{' -> LBRACE
            | '}' -> RBRACE
            | '[' -> LBRACKET
            | ']' -> RBRACKET
            | ';' -> SEMI
            | ',' -> COMMA
            | ':' -> COLON
            | '?' -> QUESTION
            | '+' -> PLUS
            | '-' -> MINUS
            | '*' -> STAR
            | '/' -> SLASH
            | '%' -> PERCENT
            | '&' -> AMP
            | '|' -> PIPE
            | '^' -> CARET
            | '~' -> TILDE
            | '!' -> BANG
            | '<' -> LT
            | '>' -> GT
            | '=' -> ASSIGN
            | _ ->
              raise (Error (Printf.sprintf "unexpected character %C" c, !line))
          in
          emit tok1;
          advance 1)
    end
  done;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_INT -> "int"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | PIPE_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EOF -> "<eof>"
