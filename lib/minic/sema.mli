(** Semantic analysis for MinC programs.

    Checks performed:
    - every called function is defined (after stdlib linking) and called
      with the right arity; builtins ([print_int], [print_char], [input],
      [input_len]) have fixed arities;
    - every variable is declared before use (params, locals, globals);
    - array indexing only applies to array-typed names, scalar reads only
      to scalars;
    - no duplicate function, parameter, or global names;
    - a [main] function with zero parameters exists;
    - [break]/[continue] appear only inside loops or switches.  *)

exception Error of string

val builtins : (string * int) list
(** Built-in functions handled directly by the compiler backend:
    name and arity.  [print_int x] and [print_char c] append to the
    program's output stream; [input i] reads word [i] of the input
    workload; [input_len ()] is its length. *)

val link_stdlib : Ast.program -> Ast.program
(** Append the {!Stdlib_src} functions and globals that the program does
    not itself define. *)

val check : Ast.program -> unit
(** Validate a linked program.  Raises {!Error} with a descriptive message
    on the first violation. *)

val analyze : string -> Ast.program
(** [analyze source] = parse, link stdlib, check.  The entry point used by
    the compiler driver. *)
