open Isa.Insn
module Ir = Vir.Ir
module Iset = Passes.Cfg_utils.Iset

type switch_strategy = Jump_table | Binary_search | Linear

type options = {
  switch_strategy : switch_strategy;
  jump_table_min : int;
  peephole : bool;
  align_functions : bool;
  align_loops : bool;
  omit_frame_pointer : bool;
  stack_realign : bool;
  long_calls : bool;
  allocatable_regs : int;
  return_reg : int;
}

let default_options =
  {
    switch_strategy = Jump_table;
    jump_table_min = 4;
    peephole = false;
    align_functions = false;
    align_loops = false;
    omit_frame_pointer = false;
    stack_realign = false;
    long_calls = false;
    allocatable_regs = 16;
    return_reg = 0;
  }

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let scratch0 = 15

let scratch1 = 14

(* ------------------------------------------------------------------ *)
(* Register allocation                                                 *)
(* ------------------------------------------------------------------ *)

type alloc = Preg of int | Spill of int  (** machine register or frame index *)

(* Linear scan over coarse live intervals.  [intervals] is
   (vreg, start, stop, crosses_call); returns vreg → alloc plus the list
   of used callee-saved registers and the number of spill slots. *)
let linear_scan ~caller_pool ~callee_pool ~first_spill intervals =
  let assignment = Hashtbl.create 64 in
  let free_caller = ref caller_pool in
  let free_callee = ref callee_pool in
  let active = ref [] in
  let next_spill = ref first_spill in
  let used_callee = ref [] in
  let sorted =
    List.sort (fun (_, s1, _, _) (_, s2, _, _) -> compare s1 s2) intervals
  in
  let release reg =
    if List.mem reg caller_pool then free_caller := reg :: !free_caller
    else if List.mem reg callee_pool then free_callee := reg :: !free_callee
  in
  let expire now =
    let still, done_ =
      List.partition (fun (_, _, stop, _) -> stop >= now) !active
    in
    active := still;
    List.iter
      (fun (v, _, _, _) ->
        match Hashtbl.find_opt assignment v with
        | Some (Preg r) -> release r
        | Some (Spill _) | None -> ())
      done_
  in
  List.iter
    (fun (v, start, stop, crosses) ->
      expire start;
      let pool = if crosses then free_callee else free_caller in
      let alt = if crosses then [] else !free_callee in
      let take =
        match !pool with
        | r :: rest ->
          pool := rest;
          Some r
        | [] -> (
          (* non-call-crossing intervals may borrow a callee-saved reg *)
          match alt with
          | r :: rest when not crosses ->
            free_callee := rest;
            Some r
          | _ -> None)
      in
      match take with
      | Some r ->
        if List.mem r callee_pool && not (List.mem r !used_callee) then
          used_callee := r :: !used_callee;
        Hashtbl.replace assignment v (Preg r);
        active := (v, start, stop, crosses) :: !active
      | None ->
        (* spill the active interval with the furthest end among those in
           a compatible pool, or this one *)
        let candidates =
          List.filter
            (fun (v', _, _, crosses') ->
              (crosses' = crosses || ((not crosses) && crosses'))
              &&
              match Hashtbl.find_opt assignment v' with
              | Some (Preg _) -> true
              | Some (Spill _) | None -> false)
            !active
        in
        let furthest =
          List.fold_left
            (fun best ((_, _, stop', _) as cand) ->
              match best with
              | None -> Some cand
              | Some (_, _, bstop, _) ->
                if stop' > bstop then Some cand else best)
            None candidates
        in
        (match furthest with
        | Some ((v', _, stop', _) as victim) when stop' > stop ->
          (* steal the victim's register *)
          let r =
            match Hashtbl.find assignment v' with
            | Preg r -> r
            | Spill _ -> assert false
          in
          Hashtbl.replace assignment v' (Spill !next_spill);
          incr next_spill;
          active := List.filter (fun a -> a != victim) !active;
          Hashtbl.replace assignment v (Preg r);
          active := (v, start, stop, crosses) :: !active
        | Some _ | None ->
          Hashtbl.replace assignment v (Spill !next_spill);
          incr next_spill))
    sorted;
  (assignment, List.sort compare !used_callee, !next_spill - first_spill)

(* Compute coarse live intervals from block-level liveness. *)
let intervals_of_func (f : Ir.func) =
  let live_in, live_out = Passes.Cleanup.liveness f in
  let start_tbl = Hashtbl.create 64 in
  let stop_tbl = Hashtbl.create 64 in
  let call_positions = ref [] in
  let touch r p =
    (match Hashtbl.find_opt start_tbl r with
    | Some s when s <= p -> ()
    | Some _ | None -> Hashtbl.replace start_tbl r p);
    match Hashtbl.find_opt stop_tbl r with
    | Some s when s >= p -> ()
    | Some _ | None -> Hashtbl.replace stop_tbl r p
  in
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let bstart = !pos in
      incr pos;
      List.iter
        (fun i ->
          List.iter (fun r -> touch r !pos) (Ir.instr_uses i);
          (match Ir.instr_def i with Some d -> touch d !pos | None -> ());
          (match i with
          | Ir.Call _ -> call_positions := !pos :: !call_positions
          | _ -> ());
          incr pos)
        b.instrs;
      List.iter (fun r -> touch r !pos) (Ir.term_uses b.term);
      (match b.term with
      | Ir.Loop_branch (r, _, _) -> touch r !pos
      | _ -> ());
      let bend = !pos in
      incr pos;
      (match Hashtbl.find_opt live_in b.label with
      | Some s -> Iset.iter (fun r -> touch r bstart) s
      | None -> ());
      match Hashtbl.find_opt live_out b.label with
      | Some s -> Iset.iter (fun r -> touch r bend) s
      | None -> ())
    f.blocks;
  (* parameters are defined at entry *)
  List.iter (fun p -> touch p 0) f.params;
  let calls = !call_positions in
  Hashtbl.fold
    (fun r start acc ->
      let stop = Hashtbl.find stop_tbl r in
      let crosses = List.exists (fun c -> c > start && c < stop) calls in
      (r, start, stop, crosses) :: acc)
    start_tbl []

(* Vector register intervals.  Vector values cross blocks (a reduction
   accumulator lives from its splat in the preheader, through the loop
   body, to the reduce after the loop), so block-level vector liveness is
   required — position-only intervals break as soon as a layout pass
   reorders the blocks. *)
let vliveness (f : Ir.func) = Analysis.Dataflow.Vliveness.solve f

let vintervals_of_func (f : Ir.func) =
  let live_in, live_out = vliveness f in
  let start_tbl = Hashtbl.create 8 in
  let stop_tbl = Hashtbl.create 8 in
  let touch r p =
    (match Hashtbl.find_opt start_tbl r with
    | Some s when s <= p -> ()
    | Some _ | None -> Hashtbl.replace start_tbl r p);
    match Hashtbl.find_opt stop_tbl r with
    | Some s when s >= p -> ()
    | Some _ | None -> Hashtbl.replace stop_tbl r p
  in
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let bstart = !pos in
      incr pos;
      List.iter
        (fun i ->
          List.iter (fun r -> touch r !pos) (Ir.instr_vuses i);
          (match Ir.instr_vdef i with Some d -> touch d !pos | None -> ());
          incr pos)
        b.instrs;
      let bend = !pos in
      incr pos;
      (match Hashtbl.find_opt live_in b.label with
      | Some s -> Iset.iter (fun r -> touch r bstart) s
      | None -> ());
      match Hashtbl.find_opt live_out b.label with
      | Some s -> Iset.iter (fun r -> touch r bend) s
      | None -> ())
    f.blocks;
  Hashtbl.fold
    (fun r start acc -> (r, start, Hashtbl.find stop_tbl r, false) :: acc)
    start_tbl []

(* ------------------------------------------------------------------ *)
(* Emission context                                                    *)
(* ------------------------------------------------------------------ *)

type item =
  | Ins of insn  (** branch targets are symbolic label ids *)
  | Lbl of int
  | Align of int

type fctx = {
  opts : options;
  arch : arch;
  func : Ir.func;
  alloc : (int, alloc) Hashtbl.t;
  valloc : (int, alloc) Hashtbl.t;
  fids : (string, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;  (** global data symbol ids *)
  local_bases : (string, int) Hashtbl.t;  (** local array name → frame index *)
  nslots : int;
  frame_size : int;
  ncs : int;  (** callee-saved registers pushed (incl. FP slot exclusion) *)
  use_fp : bool;
  used_callee : int list;
  nparams : int;
  mutable push_depth : int;
  mutable items : item list;  (** reversed *)
  mutable next_label : int;  (** internal labels, distinct from block ids *)
  live_out : (int, Iset.t) Hashtbl.t;
}

let emit ctx i = ctx.items <- Ins i :: ctx.items

let emit_label ctx l = ctx.items <- Lbl l :: ctx.items

let fresh_internal ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

(* Frame addressing.  Word index [fi] counts upward from the bottom of
   the frame so that array elements and vector accesses occupy ascending
   addresses: FP-relative address = fp − ncs − frame_size + fi;
   SP-relative = sp + fi (+ pending pushes). *)
let frame_access ctx fi =
  if ctx.use_fp then (FP_rel, fi - ctx.ncs - ctx.frame_size)
  else (SP_rel, fi + ctx.push_depth)

let arg_access ctx k =
  if ctx.use_fp then (FP_rel, 2 + k)
  else (SP_rel, ctx.frame_size + ctx.ncs + 1 + k + ctx.push_depth)

(* Resolve an IR register for reading; may emit a reload into [scratch]. *)
let read_reg ctx r ~scratch =
  match Hashtbl.find_opt ctx.alloc r with
  | Some (Preg m) -> m
  | Some (Spill fi) ->
    let base, off = frame_access ctx fi in
    emit ctx (Ildf (scratch, base, off, Oimm 0));
    scratch
  | None ->
    (* never-defined register: materialize 0 (matches interpreter) *)
    emit ctx (Imov (scratch, Oimm 0));
    scratch

let read_operand ctx o ~scratch =
  match o with
  | Ir.Imm n -> Oimm n
  | Ir.Reg r -> Oreg (read_reg ctx r ~scratch)

(* Destination register: returns the machine register to compute into and
   a completion thunk that stores spills. *)
let write_reg ctx d =
  match Hashtbl.find_opt ctx.alloc d with
  | Some (Preg m) -> (m, fun () -> ())
  | Some (Spill fi) ->
    ( scratch0,
      fun () ->
        let base, off = frame_access ctx fi in
        emit ctx (Istf (base, off, Oimm 0, Oreg scratch0)) )
  | None -> (scratch0, fun () -> ())

let vreg_of ctx v =
  match Hashtbl.find_opt ctx.valloc v with
  | Some (Preg m) -> m
  | Some (Spill _) | None ->
    errorf "%s: vector register pressure exceeds hardware" ctx.func.fname

(* Data reference: global symbol or local (frame) array. *)
type data_ref = Dsym of int | Dframe of int

let data_ref ctx name =
  match Hashtbl.find_opt ctx.local_bases name with
  | Some fi -> Dframe fi
  | None -> (
    match Hashtbl.find_opt ctx.syms name with
    | Some id -> Dsym id
    | None -> errorf "%s: unknown array %s" ctx.func.fname name)

let alu_of_binop = function
  | Ir.Add -> Aadd
  | Ir.Sub -> Asub
  | Ir.Mul -> Amul
  | Ir.Div -> Adiv
  | Ir.Mod -> Amod
  | Ir.And -> Aand
  | Ir.Or -> Aor
  | Ir.Xor -> Axor
  | Ir.Shl -> Ashl
  | Ir.Shr -> Ashr
  | Ir.Slt | Ir.Sle | Ir.Sgt | Ir.Sge | Ir.Seq | Ir.Sne ->
    invalid_arg "alu_of_binop: comparison"

let cond_of_binop = function
  | Ir.Slt -> Clt
  | Ir.Sle -> Cle
  | Ir.Sgt -> Cgt
  | Ir.Sge -> Cge
  | Ir.Seq -> Ceq
  | Ir.Sne -> Cne
  | _ -> invalid_arg "cond_of_binop"

let is_comparison = function
  | Ir.Slt | Ir.Sle | Ir.Sgt | Ir.Sge | Ir.Seq | Ir.Sne -> true
  | Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Mod | Ir.And | Ir.Or | Ir.Xor
  | Ir.Shl | Ir.Shr ->
    false

let negate_cond = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

(* ------------------------------------------------------------------ *)
(* Instruction selection                                               *)
(* ------------------------------------------------------------------ *)

let fid_of ctx name =
  match Hashtbl.find_opt ctx.fids name with
  | Some id -> id
  | None -> errorf "%s: call to unknown function %s" ctx.func.fname name

let emit_call_push_args ctx args =
  List.iter
    (fun a ->
      let o = read_operand ctx a ~scratch:scratch0 in
      emit ctx (Ipush o);
      ctx.push_depth <- ctx.push_depth + 1)
    (List.rev args)

let rec emit_instr ctx (i : Ir.instr) =
  match i with
  | Ir.Mov (d, src) ->
    let o = read_operand ctx src ~scratch:scratch0 in
    let m, fin = write_reg ctx d in
    if o <> Oreg m then emit ctx (Imov (m, o));
    fin ()
  | Ir.Bin (op, d, a, b) when is_comparison op ->
    let ra = read_reg_operand ctx a ~scratch:scratch0 in
    let ob = read_operand ctx b ~scratch:scratch1 in
    emit ctx (Icmp (ra, ob));
    let m, fin = write_reg ctx d in
    emit ctx (Isetcc (cond_of_binop op, m));
    fin ()
  | Ir.Bin (op, d, a, b) ->
    let ra = read_reg_operand ctx a ~scratch:scratch0 in
    let ob = read_operand ctx b ~scratch:scratch1 in
    let m, fin = write_reg ctx d in
    emit ctx (Ialu (alu_of_binop op, m, ra, ob));
    fin ()
  | Ir.Un (op, d, a) ->
    let ra = read_reg_operand ctx a ~scratch:scratch0 in
    let m, fin = write_reg ctx d in
    emit ctx (match op with Ir.Neg -> Ineg (m, ra) | Ir.Not -> Inot (m, ra));
    fin ()
  | Ir.Select (d, c, a, b) ->
    (* test c; mov d, b; cmovne d, a.  Only Icmp/Itest modify flags in
       VX, so spill reloads may be interleaved freely.  Scratch usage:
       rc → scratch0 (dead after the test), a → scratch1, b → loaded
       directly into the destination register (which is scratch0 when d
       itself spills). *)
    let rc = read_reg_operand ctx c ~scratch:scratch0 in
    emit ctx (Itest (rc, rc));
    let m, fin = write_reg ctx d in
    let oa = read_operand ctx a ~scratch:scratch1 in
    if oa = Oreg m then begin
      (* d aliases a: keep a in place and select the other way round *)
      let ob = read_operand ctx b ~scratch:scratch0 in
      emit ctx (Icmov (Ceq, m, ob))
    end
    else begin
      (match b with
      | Ir.Reg r -> (
        match Hashtbl.find_opt ctx.alloc r with
        | Some (Preg mb) -> if mb <> m then emit ctx (Imov (m, Oreg mb))
        | Some (Spill fi) ->
          let base, off = frame_access ctx fi in
          emit ctx (Ildf (m, base, off, Oimm 0))
        | None -> emit ctx (Imov (m, Oimm 0)))
      | Ir.Imm n -> emit ctx (Imov (m, Oimm n)));
      emit ctx (Icmov (Cne, m, oa))
    end;
    fin ()
  | Ir.Load (d, name, idx) -> (
    let oi = read_operand ctx idx ~scratch:scratch0 in
    let m, fin = write_reg ctx d in
    (match data_ref ctx name with
    | Dsym s -> emit ctx (Ild (m, s, oi))
    | Dframe fi ->
      let base, off = frame_access ctx fi in
      emit ctx (Ildf (m, base, off, oi)));
    fin ())
  | Ir.Store (name, idx, v) -> (
    let oi = read_operand ctx idx ~scratch:scratch0 in
    let ov = read_operand ctx v ~scratch:scratch1 in
    match data_ref ctx name with
    | Dsym s -> emit ctx (Ist (s, oi, ov))
    | Dframe fi ->
      let base, off = frame_access ctx fi in
      emit ctx (Istf (base, off, oi, ov)))
  | Ir.Slot_load (d, s) ->
    let m, fin = write_reg ctx d in
    let base, off = frame_access ctx s in
    emit ctx (Ildf (m, base, off, Oimm 0));
    fin ()
  | Ir.Slot_store (s, v) ->
    let ov = read_operand ctx v ~scratch:scratch0 in
    let base, off = frame_access ctx s in
    emit ctx (Istf (base, off, Oimm 0, ov))
  | Ir.Call (dst, fn, args) -> (
    let fid = fid_of ctx fn in
    let nargs = List.length args in
    emit_call_push_args ctx args;
    if ctx.opts.long_calls then begin
      emit ctx (Ila (scratch0, fid));
      emit ctx (Icallr scratch0)
    end
    else emit ctx (Icall fid);
    if nargs > 0 then emit ctx (Ialu (Aadd, sp, sp, Oimm nargs));
    ctx.push_depth <- ctx.push_depth - nargs;
    match dst with
    | None -> ()
    | Some d ->
      let m, fin = write_reg ctx d in
      if m <> ctx.opts.return_reg then
        emit ctx (Imov (m, Oreg ctx.opts.return_reg));
      fin ())
  | Ir.Vload (d, name, idx) -> (
    let oi = read_operand ctx idx ~scratch:scratch0 in
    let vd = vreg_of ctx d in
    match data_ref ctx name with
    | Dsym s -> emit ctx (Ivld (vd, s, oi))
    | Dframe fi ->
      let base, off = frame_access ctx fi in
      emit ctx (Ivldf (vd, base, off, oi)))
  | Ir.Vstore (name, idx, v) -> (
    let oi = read_operand ctx idx ~scratch:scratch0 in
    let vv = vreg_of ctx v in
    match data_ref ctx name with
    | Dsym s -> emit ctx (Ivst (s, oi, vv))
    | Dframe fi ->
      let base, off = frame_access ctx fi in
      emit ctx (Ivstf (base, off, oi, vv)))
  | Ir.Vbin (op, d, a, b) ->
    emit ctx
      (Ivalu (alu_of_binop op, vreg_of ctx d, vreg_of ctx a, vreg_of ctx b))
  | Ir.Vsplat (d, v) ->
    let o = read_operand ctx v ~scratch:scratch0 in
    emit ctx (Ivsplat (vreg_of ctx d, o))
  | Ir.Vpack (d, ops) -> (
    match ops with
    | [ a; b; c; e ] ->
      (* the SLP pass only packs immediates, so at most two register
         operands can ever need a reload here *)
      let spilled o =
        match o with
        | Ir.Reg r -> (
          match Hashtbl.find_opt ctx.alloc r with
          | Some (Spill _) | None -> true
          | Some (Preg _) -> false)
        | Ir.Imm _ -> false
      in
      let nspilled =
        List.length (List.filter spilled [ a; b; c; e ])
      in
      if nspilled > 2 then
        errorf "%s: vpack with %d spilled operands" ctx.func.fname nspilled;
      let scr = ref [ scratch0; scratch1 ] in
      let rd o =
        if spilled o then begin
          match !scr with
          | s :: rest ->
            scr := rest;
            read_operand ctx o ~scratch:s
          | [] -> assert false
        end
        else read_operand ctx o ~scratch:scratch0
      in
      let oa = rd a in
      let ob = rd b in
      let oc = rd c in
      let oe = rd e in
      emit ctx (Ivpack (vreg_of ctx d, oa, ob, oc, oe))
    | _ -> errorf "%s: vpack arity" ctx.func.fname)
  | Ir.Vreduce (op, d, v) ->
    let vv = vreg_of ctx v in
    let m, fin = write_reg ctx d in
    emit ctx (Ivred (alu_of_binop op, m, vv));
    fin ()
  | Ir.Print_int v ->
    let o = read_operand ctx v ~scratch:scratch0 in
    emit ctx (Iprint o)
  | Ir.Print_char v ->
    let o = read_operand ctx v ~scratch:scratch0 in
    emit ctx (Iprintc o)
  | Ir.Read_input (d, idx) ->
    let oi = read_operand ctx idx ~scratch:scratch0 in
    let m, fin = write_reg ctx d in
    emit ctx (Iread (m, oi));
    fin ()
  | Ir.Input_len d ->
    let m, fin = write_reg ctx d in
    emit ctx (Ilen m);
    fin ()

and read_reg_operand ctx o ~scratch =
  match o with
  | Ir.Reg r -> read_reg ctx r ~scratch
  | Ir.Imm n ->
    emit ctx (Imov (scratch, Oimm n));
    scratch

(* ------------------------------------------------------------------ *)
(* Epilogue / terminators                                              *)
(* ------------------------------------------------------------------ *)

(* Restore callee-saved registers and the stack, without the final ret
   (shared by Ret and tail calls). *)
let emit_epilogue ctx =
  if ctx.use_fp then begin
    (* callee-saved were pushed right after fp: restore them FP-relative,
       then unwind through the frame pointer *)
    List.iteri
      (fun j r -> emit ctx (Ildf (r, FP_rel, -(j + 1), Oimm 0)))
      ctx.used_callee;
    emit ctx (Imov (sp, Oreg fp));
    emit ctx (Ipop fp)
  end
  else begin
    emit ctx (Ialu (Aadd, sp, sp, Oimm ctx.frame_size));
    List.iter (fun r -> emit ctx (Ipop r)) (List.rev ctx.used_callee)
  end

let emit_ret ctx v =
  (match v with
  | None -> ()
  | Some o ->
    let ov = read_operand ctx o ~scratch:scratch0 in
    if ov <> Oreg ctx.opts.return_reg then
      emit ctx (Imov (ctx.opts.return_reg, ov)));
  emit_epilogue ctx;
  emit ctx Iret

let emit_tail_call ctx fn args =
  let fid = fid_of ctx fn in
  let nargs = List.length args in
  if nargs > ctx.nparams then begin
    (* cannot reuse the incoming argument area: degrade to call + ret *)
    emit_call_push_args ctx args;
    emit ctx (Icall fid);
    if nargs > 0 then emit ctx (Ialu (Aadd, sp, sp, Oimm nargs));
    ctx.push_depth <- ctx.push_depth - nargs;
    emit_epilogue ctx;
    emit ctx Iret
  end
  else begin
    (* overwrite our own argument slots, unwind, and jump *)
    emit_call_push_args ctx args;
    for k = 0 to nargs - 1 do
      emit ctx (Ipop scratch0);
      ctx.push_depth <- ctx.push_depth - 1;
      let base, off = arg_access ctx k in
      emit ctx (Istf (base, off, Oimm 0, Oreg scratch0))
    done;
    emit_epilogue ctx;
    emit ctx (Ijmpf fid)
  end

(* Switch lowering.  [rv] holds the scrutinee. *)
let emit_switch ctx rv cases default ~block_sym =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cases in
  match sorted with
  | [] -> emit ctx (Ijmp (block_sym default))
  | (kmin, _) :: _ ->
    let kmax = fst (List.nth sorted (List.length sorted - 1)) in
    let ncases = List.length sorted in
    let range = kmax - kmin + 1 in
    let dense = range <= 4 * ncases && range >= 1 in
    let strategy =
      match ctx.opts.switch_strategy with
      | Jump_table when ncases >= ctx.opts.jump_table_min && dense ->
        `Table
      | Binary_search when ncases >= 3 -> `Bsearch
      | Jump_table | Binary_search | Linear -> `Linear
    in
    (match strategy with
    | `Table ->
      emit ctx (Ialu (Asub, scratch0, rv, Oimm kmin));
      emit ctx (Icmp (scratch0, Oimm 0));
      emit ctx (Ijcc (Clt, block_sym default));
      emit ctx (Icmp (scratch0, Oimm range));
      emit ctx (Ijcc (Cge, block_sym default));
      let table =
        List.init range (fun i ->
            match List.assoc_opt (kmin + i) sorted with
            | Some l -> block_sym l
            | None -> block_sym default)
      in
      emit ctx (Ijtab (scratch0, table))
    | `Bsearch ->
      let arr = Array.of_list sorted in
      let rec go lo hi =
        if lo > hi then emit ctx (Ijmp (block_sym default))
        else if hi - lo < 2 then begin
          (* a couple of labels: linear compares *)
          for i = lo to hi do
            let k, l = arr.(i) in
            emit ctx (Icmp (rv, Oimm k));
            emit ctx (Ijcc (Ceq, block_sym l))
          done;
          emit ctx (Ijmp (block_sym default))
        end
        else begin
          let mid = (lo + hi) / 2 in
          let k, l = arr.(mid) in
          emit ctx (Icmp (rv, Oimm k));
          emit ctx (Ijcc (Ceq, block_sym l));
          let right = fresh_internal ctx in
          emit ctx (Ijcc (Cgt, right));
          go lo (mid - 1);
          emit_label ctx right;
          go (mid + 1) hi
        end
      in
      go 0 (Array.length arr - 1)
    | `Linear ->
      List.iter
        (fun (k, l) ->
          emit ctx (Icmp (rv, Oimm k));
          emit ctx (Ijcc (Ceq, block_sym l)))
        sorted;
      emit ctx (Ijmp (block_sym default)))

(* Try to fuse a trailing comparison with the branch. *)
let fused_condition ctx (b : Ir.block) =
  match (b.term, List.rev b.instrs) with
  | Ir.Br (Ir.Reg c, t, e), Ir.Bin (op, c', a, bb) :: rest
    when c' = c && is_comparison op
         && not
              (Iset.mem c
                 (match Hashtbl.find_opt ctx.live_out b.label with
                 | Some s -> s
                 | None -> Iset.empty)) ->
    Some (List.rev rest, op, a, bb, t, e)
  | _ -> None

let emit_terminator ctx (b : Ir.block) ~next_label ~block_sym =
  match b.term with
  | Ir.Ret v -> emit_ret ctx v
  | Ir.Tail_call (fn, args) -> emit_tail_call ctx fn args
  | Ir.Jmp l -> if Some l <> next_label then emit ctx (Ijmp (block_sym l))
  | Ir.Br (c, t, e) -> (
    match c with
    | Ir.Imm n ->
      let target = if n <> 0 then t else e in
      if Some target <> next_label then emit ctx (Ijmp (block_sym target))
    | Ir.Reg r ->
      let rc = read_reg ctx r ~scratch:scratch0 in
      emit ctx (Itest (rc, rc));
      if Some e = next_label then emit ctx (Ijcc (Cne, block_sym t))
      else if Some t = next_label then emit ctx (Ijcc (Ceq, block_sym e))
      else begin
        emit ctx (Ijcc (Cne, block_sym t));
        emit ctx (Ijmp (block_sym e))
      end)
  | Ir.Loop_branch (r, body, exit_) -> (
    match Hashtbl.find_opt ctx.alloc r with
    | Some (Preg m) ->
      emit ctx (Iloop (m, block_sym body));
      if Some exit_ <> next_label then emit ctx (Ijmp (block_sym exit_))
    | Some (Spill fi) ->
      (* decrement in memory, then branch *)
      let base, off = frame_access ctx fi in
      emit ctx (Ildf (scratch0, base, off, Oimm 0));
      emit ctx (Ialu (Asub, scratch0, scratch0, Oimm 1));
      emit ctx (Istf (base, off, Oimm 0, Oreg scratch0));
      emit ctx (Itest (scratch0, scratch0));
      emit ctx (Ijcc (Cne, block_sym body));
      if Some exit_ <> next_label then emit ctx (Ijmp (block_sym exit_))
    | None ->
      (* counter never defined: treat as zero, loop exits immediately *)
      if Some exit_ <> next_label then emit ctx (Ijmp (block_sym exit_)))
  | Ir.Switch (v, cases, default) ->
    let rv = read_reg_operand ctx v ~scratch:scratch0 in
    emit_switch ctx rv cases default ~block_sym

(* ------------------------------------------------------------------ *)
(* Per-function code generation                                        *)
(* ------------------------------------------------------------------ *)

let emit_branch_or_fused ctx b ~next_label ~block_sym =
  match fused_condition ctx b with
  | Some (instrs, op, a, bb, t, e) ->
    List.iter (emit_instr ctx) instrs;
    let ra = read_reg_operand ctx a ~scratch:scratch0 in
    let ob = read_operand ctx bb ~scratch:scratch1 in
    emit ctx (Icmp (ra, ob));
    let cc = cond_of_binop op in
    if Some e = next_label then emit ctx (Ijcc (cc, block_sym t))
    else if Some t = next_label then
      emit ctx (Ijcc (negate_cond cc, block_sym e))
    else begin
      emit ctx (Ijcc (cc, block_sym t));
      emit ctx (Ijmp (block_sym e))
    end
  | None ->
    List.iter (emit_instr ctx) b.instrs;
    emit_terminator ctx b ~next_label ~block_sym

let compile_function ~opts ~arch ~fids ~syms (f : Ir.func) =
  let reg_cap = min opts.allocatable_regs (register_count arch) in
  let use_fp = not opts.omit_frame_pointer in
  let caller_pool =
    List.filter
      (fun r -> r < reg_cap && r <> fp && r <> sp && r < 4)
      [ 0; 1; 2; 3 ]
    @ (if opts.return_reg < 4 then [] else [])
  in
  let caller_pool =
    if List.mem opts.return_reg caller_pool || opts.return_reg >= reg_cap
    then caller_pool
    else caller_pool @ [ opts.return_reg ]
  in
  let callee_pool =
    List.filter
      (fun r ->
        r < reg_cap && r <> sp && r <> opts.return_reg
        && (r <> fp || not use_fp))
      [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
  in
  (* frame layout: IR slots, local arrays, spills *)
  let local_bases = Hashtbl.create 4 in
  let arrays_total =
    List.fold_left
      (fun acc (name, size, _) ->
        Hashtbl.replace local_bases name (f.nslots + acc);
        acc + size)
      0 f.local_arrays
  in
  let first_spill = f.nslots + arrays_total in
  let intervals = intervals_of_func f in
  let alloc, used_callee, nspills =
    linear_scan ~caller_pool ~callee_pool ~first_spill intervals
  in
  let vintervals = vintervals_of_func f in
  let valloc, _, vspills =
    linear_scan
      ~caller_pool:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
      ~callee_pool:[] ~first_spill:0 vintervals
  in
  if vspills > 0 then
    errorf "%s: vector register pressure exceeds hardware" f.fname;
  let frame_size = first_spill + nspills in
  let _, live_out = Passes.Cleanup.liveness f in
  let ctx =
    {
      opts;
      arch;
      func = f;
      alloc;
      valloc;
      fids;
      syms;
      local_bases;
      nslots = f.nslots;
      frame_size;
      ncs = List.length used_callee;
      use_fp;
      used_callee;
      nparams = List.length f.params;
      push_depth = 0;
      items = [];
      next_label = 1_000_000;  (* distinct from IR block labels *)
      live_out;
    }
  in
  let block_sym l = l in
  (* prologue *)
  if use_fp then begin
    emit ctx (Ipush (Oreg fp));
    emit ctx (Imov (fp, Oreg sp))
  end;
  List.iter (fun r -> emit ctx (Ipush (Oreg r))) used_callee;
  if frame_size > 0 then emit ctx (Ialu (Asub, sp, sp, Oimm frame_size));
  if opts.stack_realign && use_fp then
    emit ctx (Ialu (Aand, sp, sp, Oimm (-2)));
  (* zero the slot + local-array area so reads of uninitialized memory
     agree with the IR interpreter *)
  let zero_top = f.nslots + arrays_total in
  if zero_top > 0 then begin
    if zero_top <= 8 then
      for fi = 0 to zero_top - 1 do
        let base, off = frame_access ctx fi in
        emit ctx (Istf (base, off, Oimm 0, Oimm 0))
      done
    else begin
      (* store upward from the lowest address of the zero area *)
      let base, off = frame_access ctx 0 in
      emit ctx (Imov (scratch0, Oimm 0));
      let l = fresh_internal ctx in
      emit_label ctx l;
      emit ctx (Istf (base, off, Oreg scratch0, Oimm 0));
      emit ctx (Ialu (Aadd, scratch0, scratch0, Oimm 1));
      emit ctx (Icmp (scratch0, Oimm zero_top));
      emit ctx (Ijcc (Clt, l))
    end
  end;
  (* local array initializers *)
  List.iter
    (fun (name, _, init) ->
      let base_fi = Hashtbl.find local_bases name in
      List.iteri
        (fun k v ->
          if v <> 0 then begin
            let base, off = frame_access ctx base_fi in
            emit ctx (Istf (base, off, Oimm k, Oimm v))
          end)
        init)
    f.local_arrays;
  (* load parameters into their assigned homes *)
  List.iteri
    (fun k p ->
      match Hashtbl.find_opt alloc p with
      | Some (Preg m) ->
        let base, off = arg_access ctx k in
        emit ctx (Ildf (m, base, off, Oimm 0))
      | Some (Spill fi) ->
        let base, off = arg_access ctx k in
        emit ctx (Ildf (scratch0, base, off, Oimm 0));
        let base', off' = frame_access ctx fi in
        emit ctx (Istf (base', off', Oimm 0, Oreg scratch0))
      | None -> ())
    f.params;
  (* loop headers, for alignment *)
  let loop_headers =
    if opts.align_loops then
      List.fold_left
        (fun acc l -> Iset.add l.Passes.Cfg_utils.header acc)
        Iset.empty
        (Passes.Cfg_utils.natural_loops f)
    else Iset.empty
  in
  (* body blocks in layout order *)
  let rec emit_blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
      if Iset.mem b.label loop_headers then ctx.items <- Align 16 :: ctx.items;
      emit_label ctx b.label;
      let next_label =
        match rest with b' :: _ -> Some b'.Ir.label | [] -> None
      in
      emit_branch_or_fused ctx b ~next_label ~block_sym;
      emit_blocks rest
  in
  emit_blocks f.blocks;
  List.rev ctx.items

(* ------------------------------------------------------------------ *)
(* Peephole                                                            *)
(* ------------------------------------------------------------------ *)

let peephole_item = function
  | Ins (Imov (r, Oimm 0)) -> Ins (Ixorz r)
  | Ins (Ialu (Aadd, d, a, Oimm 1)) when d = a -> Ins (Iinc d)
  | Ins (Ialu (Asub, d, a, Oimm 1)) when d = a -> Ins (Idec d)
  | Ins (Icmp (r, Oimm 0)) -> Ins (Itest (r, r))
  | item -> item

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let retarget g = function
  | Ijmp t -> Ijmp (g t)
  | Ijcc (c, t) -> Ijcc (c, g t)
  | Iloop (r, t) -> Iloop (r, g t)
  | Ijtab (r, ts) -> Ijtab (r, List.map g ts)
  | i -> i

(* Two-pass assembly: pass 1 computes label offsets (alignment padding
   uses whole nops, so pass 2 reproduces the same layout exactly); pass 2
   encodes with resolved branch targets — target fields have a fixed
   4-byte encoding, so resolution never changes lengths. *)
let layout_function arch items ~base =
  let labels = Hashtbl.create 32 in
  let nop_len = Isa.Codec.encoded_length arch Inop in
  let off = ref base in
  List.iter
    (fun item ->
      match item with
      | Lbl l -> Hashtbl.replace labels l !off
      | Align n ->
        let pad = (n - (!off mod n)) mod n in
        let nops = (pad + nop_len - 1) / nop_len in
        off := !off + (nops * nop_len)
      | Ins i -> off := !off + Isa.Codec.encoded_length arch i)
    items;
  (labels, !off - base)

(* [on_insn] receives the text offset of every emitted instruction start
   (alignment nops included) — the ground-truth boundary oracle the
   binsight disassembly differential checks against. *)
let assemble_function ?on_insn arch items ~base =
  let labels, _ = layout_function arch items ~base in
  let buf = Buffer.create 1024 in
  let nop_len = Isa.Codec.encoded_length arch Inop in
  let note o = match on_insn with Some f -> f o | None -> () in
  let off = ref base in
  List.iter
    (fun item ->
      match item with
      | Lbl _ -> ()
      | Align n ->
        let pad = (n - (!off mod n)) mod n in
        let nops = (pad + nop_len - 1) / nop_len in
        for _ = 1 to nops do
          note !off;
          Buffer.add_string buf (Isa.Codec.encode arch Inop);
          off := !off + nop_len
        done
      | Ins i ->
        let resolve l =
          match Hashtbl.find_opt labels l with
          | Some o -> o
          | None -> errorf "assemble: undefined label %d" l
        in
        note !off;
        let encoded = Isa.Codec.encode ~at:!off arch (retarget resolve i) in
        Buffer.add_string buf encoded;
        off := !off + String.length encoded)
    items;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                           *)
(* ------------------------------------------------------------------ *)

let compile_program ?(options = default_options) ?boundaries ~arch ~profile
    ~opt_label (p : Ir.program) =
  let opts = options in
  (* data layout *)
  let syms = Hashtbl.create 16 in
  let symbols = ref [] in
  let data_size = ref 0 in
  List.iteri
    (fun i (name, g) ->
      Hashtbl.replace syms name i;
      let size =
        match g with
        | Ir.Gscalar _ -> 1
        | Ir.Garray (n, _) -> n
      in
      symbols := (name, !data_size, size) :: !symbols;
      data_size := !data_size + size)
    p.globals;
  let data_words = Array.make (max !data_size 1) 0 in
  List.iter2
    (fun (_, g) (_, base, _) ->
      match g with
      | Ir.Gscalar v -> data_words.(base) <- v
      | Ir.Garray (_, init) ->
        List.iteri (fun k v -> data_words.(base + k) <- v) init)
    p.globals
    (List.rev !symbols);
  let fids = Hashtbl.create 16 in
  List.iteri (fun i f -> Hashtbl.replace fids f.Ir.fname i) p.funcs;
  let entry =
    match Hashtbl.find_opt fids "main" with
    | Some id -> id
    | None -> errorf "no main function"
  in
  (* compile and lay out each function *)
  let text = Buffer.create 4096 in
  let functions = ref [] in
  let word = match arch with Arm | Mips -> 4 | X86_32 | X86_64 -> 1 in
  List.iter
    (fun f ->
      let items = compile_function ~opts ~arch ~fids ~syms f in
      let items =
        if opts.peephole then List.map peephole_item items else items
      in
      (* function start alignment *)
      let nop_len = Isa.Codec.encoded_length arch Inop in
      let align_to = if opts.align_functions then 16 else word in
      while Buffer.length text mod align_to <> 0 do
        Buffer.add_string text (Isa.Codec.encode arch Inop);
        ignore nop_len
      done;
      let base = Buffer.length text in
      let offs = ref [] in
      let on_insn =
        match boundaries with
        | None -> None
        | Some _ -> Some (fun o -> offs := o :: !offs)
      in
      let code = assemble_function ?on_insn arch items ~base in
      (match boundaries with
      | Some tbl -> Hashtbl.replace tbl f.Ir.fname (List.rev !offs)
      | None -> ());
      Buffer.add_string text code;
      functions := (f.Ir.fname, base, String.length code) :: !functions)
    p.funcs;
  {
    Isa.Binary.arch;
    profile;
    opt_label;
    text = Buffer.contents text;
    data = Isa.Binary.serialize_data data_words;
    data_words;
    symbols = Array.of_list (List.rev !symbols);
    functions = Array.of_list (List.rev !functions);
    entry;
    ret_reg = opts.return_reg;
  }
