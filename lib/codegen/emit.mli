(** VIR → VX code generation.

    Responsibilities: linear-scan register allocation with spilling,
    frame layout (IR slots, local arrays, spill slots), the stack-based
    calling convention (args pushed right-to-left, return address pushed
    by [Icall], result in the ABI return register), prologue/epilogue
    with callee-saved register save/restore, switch lowering (jump table
    / binary search / linear scan), compare-branch fusion, optional
    peephole rewrites, optional function/loop alignment padding, and
    final assembly with branch target backpatching.

    Several {!options} fields correspond directly to the optimization
    flags whose binary effect the paper studies: [switch_strategy]
    ([-fjump-tables]), [peephole] ([-fpeephole2]), [align_functions] /
    [align_loops], [omit_frame_pointer], [stack_realign]
    ([-mstackrealign], requires a frame pointer), [long_calls]
    ([-mlong-call]), [allocatable_regs] (register-pressure ABI flags) and
    [return_reg] (struct-return ABI flags). *)

type switch_strategy = Jump_table | Binary_search | Linear

type options = {
  switch_strategy : switch_strategy;
  jump_table_min : int;  (** minimum case count for a table *)
  peephole : bool;
  align_functions : bool;
  align_loops : bool;
  omit_frame_pointer : bool;
  stack_realign : bool;
  long_calls : bool;
  allocatable_regs : int;
  return_reg : int;
}

val default_options : options
(** -O0-flavoured defaults: linear switches for < 4 cases else jump
    table, no peephole, no alignment, frame pointer kept, 16 registers,
    result in R0. *)

exception Error of string

val compile_program :
  ?options:options ->
  ?boundaries:(string, int list) Hashtbl.t ->
  arch:Isa.Insn.arch ->
  profile:string ->
  opt_label:string ->
  Vir.Ir.program ->
  Isa.Binary.t
(** Generate a complete binary.  The input program must contain [main].
    When [boundaries] is given, each function name is mapped to the
    ascending text offsets of its instruction starts (alignment nops
    included) — the ground-truth oracle for the binsight disassembly
    differential.  Raises {!Error} on malformed IR (unknown callee,
    vector register pressure beyond the hardware, …). *)
