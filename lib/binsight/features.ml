(* Static feature extraction over a recovered binary.

   Three families:
   - call-graph reachability from the entry function → dead functions
     and dead-function bytes (a size fitness primitive: code the linker
     kept but nothing can reach);
   - per-function static stack-depth bounds: an interval analysis of the
     stack-pointer displacement over the recursive-descent CFG, run
     through the generic {!Analysis.Dataflow.Make_graph} worklist engine
     (the same solver the IR passes use, instantiated for binary code);
   - opcode-class histograms plus the BinPro-style provenance vector —
     [provenance_vector] is the feature extractor [Provenance.Classify]
     trains on, moved here so classifiers consume binsight features. *)

open Isa.Insn
module Itv = Analysis.Dataflow.Interval

type stack_bound = Finite of int | Unbounded

type func_features = {
  ff_name : string;
  ff_addr : int;
  ff_len : int;
  ff_reachable : bool;
  ff_stack : stack_bound;  (** peak words pushed beyond function entry *)
  ff_insns : int;
  ff_blocks : int;
}

type t = {
  histogram : int array;  (** opcode-class counts over the whole text *)
  insn_count : int;
  dead_functions : string list;
  dead_bytes : int;
  per_function : func_features list;
  provenance : float array;
}

(* ------------------------------------------------------------------ *)
(* Provenance vector (formerly Provenance.Classify.features)           *)
(* ------------------------------------------------------------------ *)

let n_provenance = Diffing.Bcode.n_opcode_classes + 8

let provenance_vector (bin : Isa.Binary.t) =
  let v = Array.make n_provenance 0.0 in
  let insns = Isa.Codec.decode_all bin.arch bin.text in
  let n = max 1 (List.length insns) in
  List.iter
    (fun (_, i) ->
      let k = Diffing.Bcode.opcode_class i in
      v.(k) <- v.(k) +. 1.0;
      let extra = Diffing.Bcode.n_opcode_classes in
      match i with
      | Inop -> v.(extra) <- v.(extra) +. 1.0 (* alignment pads *)
      | Ijtab _ -> v.(extra + 1) <- v.(extra + 1) +. 1.0
      | Iloop _ -> v.(extra + 2) <- v.(extra + 2) +. 1.0
      | Icmov _ | Isetcc _ -> v.(extra + 3) <- v.(extra + 3) +. 1.0
      | Ivalu _ | Ivld _ | Ivst _ -> v.(extra + 4) <- v.(extra + 4) +. 1.0
      | Ipush (Oreg r) when r = fp ->
        v.(extra + 5) <- v.(extra + 5) +. 1.0 (* frame-pointer prologues *)
      | Icallr _ -> v.(extra + 6) <- v.(extra + 6) +. 1.0
      | Iinc _ | Idec _ | Ixorz _ ->
        v.(extra + 7) <- v.(extra + 7) +. 1.0 (* peephole idioms *)
      | _ -> ())
    insns;
  (* normalize by instruction count *)
  Array.map (fun x -> x /. float_of_int n) v

(* ------------------------------------------------------------------ *)
(* Static stack-depth bounds                                           *)
(* ------------------------------------------------------------------ *)

(* Whether [i] writes scalar register [r] through its ordinary
   destination operand (push/pop displacement is modelled separately). *)
let writes i r =
  match i with
  | Imov (d, _)
  | Ialu (_, d, _, _)
  | Ineg (d, _)
  | Inot (d, _)
  | Isetcc (_, d)
  | Icmov (_, d, _)
  | Ild (d, _, _)
  | Ildf (d, _, _, _)
  | Ipop d
  | Ila (d, _)
  | Ivred (_, d, _)
  | Iread (d, _)
  | Ilen d
  | Iinc d
  | Idec d
  | Ixorz d ->
    d = r
  | _ -> false

(* Abstract machine state: [dep] is the interval of words pushed since
   function entry, [fp_dep] the depth captured by the last
   [mov fp, sp] (so the epilogue's [mov sp, fp] restores it exactly). *)
type state = { dep : Itv.itv; fp_dep : Itv.itv }

type fact = Unreached | S of state

let step (s : state) i =
  match i with
  | Ipush _ -> { s with dep = Itv.add s.dep (Itv.const 1) }
  | Ipop d ->
    let s = { s with dep = Itv.add s.dep (Itv.const (-1)) } in
    if d = sp then { s with dep = Itv.top }
    else if d = fp then { s with fp_dep = Itv.top }
    else s
  | Idec r when r = sp ->
    (* sp grows downward: dec allocates one word *)
    { s with dep = Itv.add s.dep (Itv.const 1) }
  | Iinc r when r = sp ->
    (* inc drops one word without reading it (pop-no-load) *)
    { s with dep = Itv.add s.dep (Itv.const (-1)) }
  | Imov (d, Oreg r) when d = fp && r = sp -> { s with fp_dep = s.dep }
  | Imov (d, Oreg r) when d = sp && r = fp -> { s with dep = s.fp_dep }
  | Ialu (Asub, d, a, Oimm m) when d = sp && a = sp ->
    { s with dep = Itv.add s.dep (Itv.const m) }
  | Ialu (Aadd, d, a, Oimm m) when d = sp && a = sp ->
    { s with dep = Itv.add s.dep (Itv.const (-m)) }
  | Ialu (Aand, d, a, _) when d = sp && a = sp ->
    (* stack realign rounds down to an even word boundary: grows ≤ 1 *)
    { s with dep = Itv.hull s.dep (Itv.add s.dep (Itv.const 1)) }
  | _ ->
    let s = if writes i sp then { s with dep = Itv.top } else s in
    if writes i fp then { s with fp_dep = Itv.top } else s

(* Peak stack use while executing the block from state [s]: the call
   return address counts as one transient word. *)
let block_peak s insns =
  let peak = ref s.dep.Itv.hi in
  let s = ref s in
  List.iter
    (fun (ia : Disasm.insn_at) ->
      (match ia.i_insn with
      | Icall _ | Icallr _ ->
        peak := max !peak (Itv.add !s.dep (Itv.const 1)).Itv.hi
      | _ -> ());
      s := step !s ia.i_insn;
      peak := max !peak !s.dep.Itv.hi)
    insns;
  !peak

module G = struct
  type graph = {
    by_addr : (int, Disasm.bblock) Hashtbl.t;
    order : int list;
    preds : (int, int list) Hashtbl.t;
    entry : int;
  }

  type t = graph
  type node = int

  let nodes g = g.order
  let succs g a = (Hashtbl.find g.by_addr a).Disasm.rb_succs
  let preds g a = try Hashtbl.find g.preds a with Not_found -> []
end

module D = struct
  module G = G

  type t = fact

  let direction = Analysis.Dataflow.Forward
  let boundary _ = S { dep = Itv.const 0; fp_dep = Itv.top }
  let is_boundary (g : G.t) a = a = g.G.entry
  let bottom _ = Unreached

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | S x, S y -> x = y
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | S x, S y ->
      S { dep = Itv.hull x.dep y.dep; fp_dep = Itv.hull x.fp_dep y.fp_dep }

  let widen_itv (o : Itv.itv) (n : Itv.itv) =
    {
      Itv.lo = (if n.Itv.lo < o.Itv.lo then min_int else o.Itv.lo);
      hi = (if n.Itv.hi > o.Itv.hi then max_int else o.Itv.hi);
    }

  let widen a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | S o, S n ->
      S { dep = widen_itv o.dep n.dep; fp_dep = widen_itv o.fp_dep n.fp_dep }

  let transfer (g : G.t) a fct =
    match fct with
    | Unreached -> Unreached
    | S s ->
      let b = Hashtbl.find g.G.by_addr a in
      S
        (List.fold_left
           (fun s (ia : Disasm.insn_at) -> step s ia.i_insn)
           s b.Disasm.rb_insns)
end

module Solver = Analysis.Dataflow.Make_graph (D)

let stack_bound (fd : Disasm.func_disasm) : stack_bound =
  match fd.d_blocks with
  | [] -> Finite 0
  | blocks ->
    let by_addr = Hashtbl.create 32 in
    let preds = Hashtbl.create 32 in
    List.iter
      (fun (b : Disasm.bblock) -> Hashtbl.replace by_addr b.rb_addr b)
      blocks;
    List.iter
      (fun (b : Disasm.bblock) ->
        List.iter
          (fun s ->
            let cur = try Hashtbl.find preds s with Not_found -> [] in
            Hashtbl.replace preds s (cur @ [ b.Disasm.rb_addr ]))
          b.rb_succs)
      blocks;
    let g =
      {
        G.by_addr;
        order = List.map (fun (b : Disasm.bblock) -> b.rb_addr) blocks;
        preds;
        entry = fd.d_addr;
      }
    in
    let in_facts, _ = Solver.solve g in
    let peak =
      List.fold_left
        (fun acc (b : Disasm.bblock) ->
          match Hashtbl.find_opt in_facts b.rb_addr with
          | None | Some Unreached -> acc
          | Some (S s) -> max acc (block_peak s b.rb_insns))
        0 blocks
    in
    if peak = max_int then Unbounded else Finite peak

(* ------------------------------------------------------------------ *)
(* Call-graph reachability                                             *)
(* ------------------------------------------------------------------ *)

let reachable_set (bin : Isa.Binary.t) (d : Disasm.t) =
  let calls = Array.make (Array.length bin.functions) [] in
  List.iteri
    (fun i (fd : Disasm.func_disasm) ->
      if i < Array.length calls then calls.(i) <- fd.d_calls)
    d.funcs;
  let seen = Array.make (Array.length bin.functions) false in
  let rec visit fid =
    if fid >= 0 && fid < Array.length seen && not (seen.(fid)) then begin
      seen.(fid) <- true;
      List.iter visit calls.(fid)
    end
  in
  visit bin.entry;
  seen

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract (bin : Isa.Binary.t) (d : Disasm.t) : t =
  Telemetry.with_span
    ~attrs:[ ("arch", arch_name bin.arch) ]
    "binsight.features"
    (fun () ->
      let insns = Isa.Codec.decode_all bin.arch bin.text in
      let histogram = Array.make Diffing.Bcode.n_opcode_classes 0 in
      List.iter
        (fun (_, i) ->
          let k = Diffing.Bcode.opcode_class i in
          histogram.(k) <- histogram.(k) + 1)
        insns;
      let reachable = reachable_set bin d in
      let dead = ref [] in
      let dead_bytes = ref 0 in
      Array.iteri
        (fun fid (name, _, len) ->
          if not reachable.(fid) then begin
            dead := name :: !dead;
            dead_bytes := !dead_bytes + len
          end)
        bin.functions;
      let per_function =
        List.mapi
          (fun fid (fd : Disasm.func_disasm) ->
            {
              ff_name = fd.d_name;
              ff_addr = fd.d_addr;
              ff_len = fd.d_len;
              ff_reachable =
                fid < Array.length reachable && reachable.(fid);
              ff_stack = stack_bound fd;
              ff_insns = List.length fd.d_insns;
              ff_blocks = List.length fd.d_blocks;
            })
          d.funcs
      in
      {
        histogram;
        insn_count = List.length insns;
        dead_functions = List.rev !dead;
        dead_bytes = !dead_bytes;
        per_function;
        provenance = provenance_vector bin;
      })
