(** Static feature extraction over a recovered binary: call-graph
    reachability (dead-function bytes), per-function stack-depth bounds
    (interval analysis over the recursive-descent CFG via the generic
    {!Analysis.Dataflow.Make_graph} engine), opcode-class histograms and
    the BinPro-style provenance vector consumed by
    [Provenance.Classify]. *)

type stack_bound = Finite of int | Unbounded

type func_features = {
  ff_name : string;
  ff_addr : int;
  ff_len : int;
  ff_reachable : bool;
  ff_stack : stack_bound;  (** peak words pushed beyond function entry *)
  ff_insns : int;
  ff_blocks : int;
}

type t = {
  histogram : int array;  (** opcode-class counts over the whole text *)
  insn_count : int;
  dead_functions : string list;  (** in function-id order *)
  dead_bytes : int;
  per_function : func_features list;
  provenance : float array;
}

val n_provenance : int
(** Length of {!provenance_vector}: the 16 opcode classes plus 8
    idiom counters. *)

val provenance_vector : Isa.Binary.t -> float array
(** The classifier feature vector: per-class and per-idiom instruction
    frequencies normalized by instruction count.  This is the extractor
    [Provenance.Classify] trains on. *)

val stack_bound : Disasm.func_disasm -> stack_bound
(** Static bound on the words a function pushes beyond its entry depth
    (call return addresses count one transient word); [Unbounded] when
    the interval analysis widens to infinity (e.g. unbalanced pushes in
    a loop). *)

val extract : Isa.Binary.t -> Disasm.t -> t
