(** One-stop binary inspection: verified disassembly + gadget census +
    static features, rendered as deterministic JSON (golden-digest
    stable) or as a human summary.  Emits [binsight.*] telemetry spans
    and counters. *)

type t = {
  r_bench : string;
  r_preset : string;
  r_bin : Isa.Binary.t;
  r_disasm : Disasm.t;
  r_gadgets : Gadgets.census;
  r_features : Features.t;
}

val inspect :
  ?bench:string ->
  ?preset:string ->
  ?gadget_k:int ->
  ?ground_truth:(string, int list) Hashtbl.t ->
  Isa.Binary.t ->
  t

val mismatch_count : t -> int

val to_json : t -> Util.Json.t

val summary : t -> string
(** Multi-line human rendering, one trailing newline; lists every
    mismatch explicitly. *)
