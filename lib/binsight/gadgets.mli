(** Code-reuse gadget census ("Not So Fast"-style fitness primitive).

    A gadget is a suffix of at most [k] straight-line instructions
    ending in a return or indirect control transfer ([Iret], [Ijtab],
    [Icallr]), found by attempting a decode at every byte offset of the
    text section — on word-aligned arches unaligned starts simply fail
    to decode.  The census counts start sites, deduplicates gadgets by
    byte content, classifies them by terminator, and reports
    per-function site density. *)

type gclass = Gret | Gjump | Gcall

val class_name : gclass -> string

type gadget = {
  g_addr : int;  (** lowest offset the byte sequence occurs at *)
  g_len : int;  (** byte length *)
  g_insns : int;  (** instruction count, ≤ k *)
  g_bytes : string;
  g_class : gclass;
}

type census = {
  c_k : int;
  c_sites : int;  (** offsets at which some gadget starts *)
  c_unique : gadget list;  (** deduplicated by byte content, ascending *)
  c_ret : int;  (** unique gadgets per class *)
  c_jump : int;
  c_call : int;
  c_per_function : (string * int * float) list;
      (** (name, sites within the function, sites per code byte) *)
}

val default_k : int
(** 4 — short enough that every gadget is usable, long enough to count
    non-trivial tails. *)

val census : ?k:int -> Isa.Binary.t -> census
(** Right-to-left dynamic program, O(text) decodes. *)

val census_brute : ?k:int -> Isa.Binary.t -> census
(** O(text·k) re-decoding reference implementation; must agree with
    {!census} exactly (QCheck-pinned). *)
