(** Verified recursive-descent disassembly.

    Re-disassembles every function by following control flow from its
    entry (branches, fallthroughs, calls, [Ijtab] jump-table targets)
    and cross-checks the result against the linear sweep
    ({!Isa.Binary.analyze}) and, when supplied, the compiler's
    ground-truth instruction boundaries (from
    [Toolchain.Pipeline.compile ~boundaries]).  Any {!mismatch} is a
    real defect in codec, assembler or CFG recovery; the ci.sh inspect
    gate keeps the corpus at zero.  Bytes the descent never reaches
    (alignment nops after unconditional transfers) are reported as
    unreachable statistics, not mismatches. *)

type insn_at = { i_addr : int; i_insn : Isa.Insn.insn; i_next : int }

type bblock = {
  rb_addr : int;
  rb_insns : insn_at list;
  rb_succs : int list;  (** successor leader addresses, ascending *)
}

type mismatch = {
  m_func : string;
  m_addr : int;
  m_kind : string;
      (** ["decode-error"], ["overrun"], ["not-in-linear"],
          ["insn-differs"] or ["ground-truth"] *)
  m_detail : string;
}

type func_disasm = {
  d_name : string;
  d_addr : int;
  d_len : int;
  d_insns : insn_at list;  (** reachable instructions, ascending *)
  d_blocks : bblock list;  (** ascending by leader address *)
  d_calls : int list;  (** callee function ids (from the linear sweep) *)
  d_unreachable : int;  (** bytes never reached by the descent *)
  d_mismatches : mismatch list;
}

type t = {
  funcs : func_disasm list;  (** in function-id order *)
  total_insns : int;
  total_unreachable : int;
  mismatches : mismatch list;
}

val recover : ?ground_truth:(string, int list) Hashtbl.t -> Isa.Binary.t -> t
(** [ground_truth] maps function name → ascending true instruction-start
    offsets, as filled in by [Pipeline.compile ~boundaries]. *)
