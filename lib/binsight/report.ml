(* One-stop binary inspection: verified disassembly + gadget census +
   static features, rendered as deterministic JSON (field order and
   float formatting are fixed by [Util.Json], so reports golden-digest
   cleanly) or as a human summary for the CLI. *)

module J = Util.Json

type t = {
  r_bench : string;
  r_preset : string;
  r_bin : Isa.Binary.t;
  r_disasm : Disasm.t;
  r_gadgets : Gadgets.census;
  r_features : Features.t;
}

let inspect ?(bench = "") ?(preset = "") ?(gadget_k = Gadgets.default_k)
    ?ground_truth (bin : Isa.Binary.t) : t =
  Telemetry.with_span
    ~attrs:
      [
        ("arch", Isa.Insn.arch_name bin.arch);
        ("bench", bench);
        ("preset", preset);
      ]
    "binsight.inspect"
    (fun () ->
      let r_disasm = Disasm.recover ?ground_truth bin in
      let r_gadgets = Gadgets.census ~k:gadget_k bin in
      let r_features = Features.extract bin r_disasm in
      { r_bench = bench; r_preset = preset; r_bin = bin; r_disasm; r_gadgets;
        r_features })

let mismatch_count (r : t) = List.length r.r_disasm.mismatches

let stack_json = function
  | Features.Finite n -> J.Int n
  | Features.Unbounded -> J.Null

let to_json (r : t) : J.t =
  let bin = r.r_bin in
  let d = r.r_disasm in
  let g = r.r_gadgets in
  let f = r.r_features in
  J.Obj
    [
      ("bench", J.Str r.r_bench);
      ("preset", J.Str r.r_preset);
      ("arch", J.Str (Isa.Insn.arch_name bin.arch));
      ("profile", J.Str bin.profile);
      ("opt_label", J.Str bin.opt_label);
      ( "size",
        J.Obj
          [
            ("text", J.Int (String.length bin.text));
            ("data", J.Int (String.length bin.data));
            ("total", J.Int (Isa.Binary.size bin));
          ] );
      ( "disasm",
        J.Obj
          [
            ("functions", J.Int (List.length d.funcs));
            ("insns", J.Int d.total_insns);
            ("unreachable_bytes", J.Int d.total_unreachable);
            ("mismatches", J.Int (List.length d.mismatches));
            ( "mismatch_details",
              J.List
                (List.map
                   (fun (m : Disasm.mismatch) ->
                     J.Obj
                       [
                         ("func", J.Str m.m_func);
                         ("addr", J.Int m.m_addr);
                         ("kind", J.Str m.m_kind);
                         ("detail", J.Str m.m_detail);
                       ])
                   d.mismatches) );
          ] );
      ( "gadgets",
        J.Obj
          [
            ("k", J.Int g.c_k);
            ("sites", J.Int g.c_sites);
            ("unique", J.Int (List.length g.c_unique));
            ( "by_class",
              J.Obj
                [
                  ("ret", J.Int g.c_ret);
                  ("jump", J.Int g.c_jump);
                  ("call", J.Int g.c_call);
                ] );
            ( "per_function",
              J.List
                (List.map
                   (fun (name, sites, density) ->
                     J.Obj
                       [
                         ("name", J.Str name);
                         ("sites", J.Int sites);
                         ("density", J.Float density);
                       ])
                   g.c_per_function) );
          ] );
      ( "features",
        J.Obj
          [
            ("insn_count", J.Int f.Features.insn_count);
            ( "opcode_histogram",
              J.List
                (Array.to_list (Array.map (fun n -> J.Int n) f.histogram)) );
            ( "dead_functions",
              J.List (List.map (fun n -> J.Str n) f.dead_functions) );
            ("dead_bytes", J.Int f.dead_bytes);
            ( "functions",
              J.List
                (List.map
                   (fun (ff : Features.func_features) ->
                     J.Obj
                       [
                         ("name", J.Str ff.ff_name);
                         ("addr", J.Int ff.ff_addr);
                         ("len", J.Int ff.ff_len);
                         ("insns", J.Int ff.ff_insns);
                         ("blocks", J.Int ff.ff_blocks);
                         ("reachable", J.Bool ff.ff_reachable);
                         ("stack_words", stack_json ff.ff_stack);
                       ])
                   f.per_function) );
            ( "provenance",
              J.List
                (Array.to_list (Array.map (fun x -> J.Float x) f.provenance))
            );
          ] );
    ]

let summary (r : t) : string =
  let bin = r.r_bin in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let label =
    if r.r_bench = "" then Isa.Insn.arch_name bin.arch
    else Printf.sprintf "%s %s %s" r.r_bench (Isa.Insn.arch_name bin.arch)
           (if r.r_preset = "" then bin.opt_label else r.r_preset)
  in
  line "%s: %d bytes text, %d functions, %d insns" label
    (String.length bin.text)
    (Array.length bin.functions)
    r.r_disasm.total_insns;
  line "  disasm: %d mismatches, %d unreachable bytes"
    (mismatch_count r) r.r_disasm.total_unreachable;
  line "  gadgets(k=%d): %d sites, %d unique (ret %d / jump %d / call %d)"
    r.r_gadgets.c_k r.r_gadgets.c_sites
    (List.length r.r_gadgets.c_unique)
    r.r_gadgets.c_ret r.r_gadgets.c_jump r.r_gadgets.c_call;
  line "  dead: %d functions, %d bytes"
    (List.length r.r_features.dead_functions)
    r.r_features.dead_bytes;
  List.iter
    (fun (m : Disasm.mismatch) ->
      line "  MISMATCH %s@%d [%s] %s" m.m_func m.m_addr m.m_kind m.m_detail)
    r.r_disasm.mismatches;
  Buffer.contents b
