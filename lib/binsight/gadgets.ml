(* Code-reuse gadget census over a binary's text section, after Brown et
   al.'s "Not So Fast" methodology: a gadget is a suffix of at most [k]
   straight-line instructions ending in a return or indirect control
   transfer, found by attempting a decode at *every* byte offset (on the
   word-aligned arches unaligned starts simply fail to decode, as on real
   fixed-width ISAs).

   The production scan is a single right-to-left dynamic program: decode
   advances strictly forward, so [steps.(pos)] (instructions from [pos]
   to its terminator, when ≤ k) depends only on offsets greater than
   [pos].  [census_brute] re-decodes the whole chain at every offset —
   O(text·k) — and exists purely as the QCheck reference the property
   tests compare against. *)

open Isa.Insn

type gclass = Gret | Gjump | Gcall

let class_name = function Gret -> "ret" | Gjump -> "jump" | Gcall -> "call"

type gadget = {
  g_addr : int;  (** lowest offset the byte sequence occurs at *)
  g_len : int;  (** byte length *)
  g_insns : int;  (** instruction count, ≤ k *)
  g_bytes : string;
  g_class : gclass;
}

type census = {
  c_k : int;
  c_sites : int;  (** offsets at which some gadget starts *)
  c_unique : gadget list;  (** deduplicated by byte content, ascending *)
  c_ret : int;  (** unique gadgets per class *)
  c_jump : int;
  c_call : int;
  c_per_function : (string * int * float) list;
      (** (name, sites within the function, sites per code byte) *)
}

let default_k = 4

let classify_term = function
  | Iret -> Some Gret
  | Ijtab _ -> Some Gjump
  | Icallr _ -> Some Gcall
  | _ -> None

(* Shared collection pass: [gadget_at pos] reports (instruction count,
   class, end offset) of the gadget starting at [pos], if any.  Both
   implementations funnel through this so the property test compares the
   chain computation itself. *)
let collect ~k (bin : Isa.Binary.t) gadget_at =
  let text = bin.text in
  let n = String.length text in
  let site = Array.make (max 1 n) false in
  let sites = ref 0 in
  let uniq = Hashtbl.create 256 in
  let order = ref [] in
  for pos = 0 to n - 1 do
    match gadget_at pos with
    | None -> ()
    | Some (g_insns, g_class, endp) ->
      site.(pos) <- true;
      incr sites;
      let g_bytes = String.sub text pos (endp - pos) in
      if not (Hashtbl.mem uniq g_bytes) then begin
        Hashtbl.replace uniq g_bytes ();
        order :=
          { g_addr = pos; g_len = endp - pos; g_insns; g_bytes; g_class }
          :: !order
      end
  done;
  let c_unique = List.rev !order in
  let count c =
    List.length (List.filter (fun g -> g.g_class = c) c_unique)
  in
  let c_per_function =
    Array.to_list bin.functions
    |> List.map (fun (name, addr, len) ->
           let s = ref 0 in
           for p = addr to min (addr + len) n - 1 do
             if site.(p) then incr s
           done;
           (name, !s, float_of_int !s /. float_of_int (max 1 len)))
  in
  {
    c_k = k;
    c_sites = !sites;
    c_unique;
    c_ret = count Gret;
    c_jump = count Gjump;
    c_call = count Gcall;
    c_per_function;
  }

let census ?(k = default_k) (bin : Isa.Binary.t) =
  Telemetry.with_span
    ~attrs:[ ("arch", arch_name bin.arch) ]
    "binsight.gadgets"
    (fun () ->
      let text = bin.text in
      let n = String.length text in
      (* steps.(pos): instructions from pos to its terminator when ≤ k,
         else 0; tclass/endp valid iff steps > 0.  steps.(n) stays 0 so a
         chain falling off the end never counts. *)
      let steps = Array.make (n + 1) 0 in
      let tclass = Array.make (n + 1) Gret in
      let endp = Array.make (n + 1) 0 in
      for pos = n - 1 downto 0 do
        match Isa.Codec.decode bin.arch text ~pos with
        | exception Invalid_argument _ -> ()
        | i, next -> (
          match classify_term i with
          | Some c ->
            steps.(pos) <- 1;
            tclass.(pos) <- c;
            endp.(pos) <- next
          | None ->
            let _, falls = Isa.Binary.flow i ~next in
            if falls && steps.(next) > 0 && steps.(next) < k then begin
              steps.(pos) <- steps.(next) + 1;
              tclass.(pos) <- tclass.(next);
              endp.(pos) <- endp.(next)
            end)
      done;
      let c =
        collect ~k bin (fun pos ->
            if steps.(pos) > 0 then
              Some (steps.(pos), tclass.(pos), endp.(pos))
            else None)
      in
      Telemetry.add_count ~by:(List.length c.c_unique)
        "binsight.gadgets.unique";
      c)

let census_brute ?(k = default_k) (bin : Isa.Binary.t) =
  let text = bin.text in
  let gadget_at pos =
    let rec go p consumed =
      if consumed >= k then None
      else
        match Isa.Codec.decode bin.arch text ~pos:p with
        | exception Invalid_argument _ -> None
        | i, next -> (
          match classify_term i with
          | Some c -> Some (consumed + 1, c, next)
          | None ->
            let _, falls = Isa.Binary.flow i ~next in
            if falls then go next (consumed + 1) else None)
    in
    go pos 0
  in
  collect ~k bin gadget_at
