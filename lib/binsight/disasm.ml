(* Verified recursive-descent disassembly.

   [recover] re-disassembles every function by following control flow
   from its entry — branches, fallthroughs, calls (which return) and
   [Ijtab] jump-table targets — and cross-checks the result against the
   linear sweep ([Isa.Binary.analyze]) and, when supplied, against the
   compiler's ground-truth instruction boundaries (threaded out of
   codegen via [Pipeline.compile ~boundaries]).

   On this ISA the two disassemblies must agree instruction for
   instruction on everything the descent reaches, and the linear sweep
   must agree with ground truth on every boundary: any [mismatch] is a
   real defect in the codec, the assembler or the CFG recovery, and the
   ci.sh inspect gate keeps the corpus at zero.  Bytes ground truth
   knows about but the descent never reaches (alignment nops after
   unconditional control transfers, jump-table shadows) are *not*
   mismatches; they are reported as [d_unreachable] statistics, the
   verified-disassembly analogue of dead bytes. *)

open Isa.Insn

type insn_at = { i_addr : int; i_insn : insn; i_next : int }

type bblock = {
  rb_addr : int;
  rb_insns : insn_at list;
  rb_succs : int list;  (** successor leader addresses, ascending *)
}

type mismatch = {
  m_func : string;
  m_addr : int;
  m_kind : string;
      (** ["decode-error"], ["overrun"], ["not-in-linear"],
          ["insn-differs"] or ["ground-truth"] *)
  m_detail : string;
}

type func_disasm = {
  d_name : string;
  d_addr : int;
  d_len : int;
  d_insns : insn_at list;  (** reachable instructions, ascending *)
  d_blocks : bblock list;  (** ascending by leader address *)
  d_calls : int list;  (** callee function ids (from the linear sweep) *)
  d_unreachable : int;  (** bytes never reached by the descent *)
  d_mismatches : mismatch list;
}

type t = {
  funcs : func_disasm list;
  total_insns : int;
  total_unreachable : int;
  mismatches : mismatch list;
}

let is_control = function
  | Ijmp _ | Ijcc _ | Iloop _ | Ijtab _ | Iret | Ijmpf _ -> true
  | _ -> false

let recover_function (bin : Isa.Binary.t) ~ground_truth
    (bf : Isa.Binary.bfunc) : func_disasm =
  let name = bf.f_name in
  let _, addr, len = bin.functions.(bf.f_id) in
  let stop = addr + len in
  let mismatches = ref [] in
  let bad kind m_addr fmt =
    Printf.ksprintf
      (fun m_detail ->
        mismatches := { m_func = name; m_addr; m_kind = kind; m_detail } :: !mismatches)
      fmt
  in
  (* --- recursive descent --- *)
  let visited : (int, insn_at) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  Queue.add addr work;
  while not (Queue.is_empty work) do
    let a = Queue.take work in
    if a >= addr && a < stop && not (Hashtbl.mem visited a) then begin
      match Isa.Codec.decode bin.arch bin.text ~pos:a with
      | exception Invalid_argument msg -> bad "decode-error" a "%s" msg
      | i, next ->
        if next > stop then
          bad "overrun" a "instruction runs past function end (%d > %d)" next
            stop
        else begin
          Hashtbl.replace visited a { i_addr = a; i_insn = i; i_next = next };
          let targets, falls = Isa.Binary.flow i ~next in
          List.iter
            (fun t -> if t >= addr && t < stop then Queue.add t work)
            targets;
          if falls && next < stop then Queue.add next work
        end
    end
  done;
  let insns =
    Hashtbl.fold (fun _ ia acc -> ia :: acc) visited []
    |> List.sort (fun a b -> compare a.i_addr b.i_addr)
  in
  (* --- cross-check against the linear sweep --- *)
  let linear = Hashtbl.create 64 in
  List.iter (fun (a, i) -> Hashtbl.replace linear a i) bf.f_insns;
  List.iter
    (fun ia ->
      match Hashtbl.find_opt linear ia.i_addr with
      | None ->
        bad "not-in-linear" ia.i_addr
          "descent reached offset %d inside a linear-sweep instruction"
          ia.i_addr
      | Some li ->
        if li <> ia.i_insn then
          bad "insn-differs" ia.i_addr
            "descent and linear sweep decode different instructions")
    insns;
  (* --- cross-check linear sweep against compiler ground truth --- *)
  (match ground_truth with
  | None -> ()
  | Some gt -> (
    match Hashtbl.find_opt gt name with
    | None -> bad "ground-truth" addr "no ground-truth boundaries for function"
    | Some offs ->
      let swept = List.map fst bf.f_insns in
      if offs <> swept then begin
        let s_gt = List.filter (fun o -> not (List.mem o swept)) offs in
        let s_ls = List.filter (fun o -> not (List.mem o offs)) swept in
        List.iter
          (fun o -> bad "ground-truth" o "true boundary missed by linear sweep")
          s_gt;
        List.iter
          (fun o -> bad "ground-truth" o "linear-sweep boundary is not a true one")
          s_ls;
        if s_gt = [] && s_ls = [] then
          bad "ground-truth" addr "boundary order differs"
      end));
  (* --- unreachable bytes (statistic, not a mismatch) --- *)
  let unreachable =
    List.fold_left
      (fun acc (a, i) ->
        if Hashtbl.mem visited a then acc
        else acc + Isa.Codec.encoded_length bin.arch i)
      0 bf.f_insns
  in
  (* --- block recovery over the reachable instructions --- *)
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders addr ();
  List.iter
    (fun ia ->
      if is_control ia.i_insn then begin
        let targets, _ = Isa.Binary.flow ia.i_insn ~next:ia.i_next in
        List.iter
          (fun t ->
            if t >= addr && t < stop then Hashtbl.replace leaders t ())
          targets;
        if ia.i_next < stop && Hashtbl.mem visited ia.i_next then
          Hashtbl.replace leaders ia.i_next ()
      end)
    insns;
  let blocks = ref [] in
  let close rb_addr cur rb_succs =
    if cur <> [] then
      blocks :=
        { rb_addr; rb_insns = List.rev cur; rb_succs = List.sort_uniq compare rb_succs }
        :: !blocks
  in
  let rec walk l cur cur_addr =
    match l with
    | [] -> close cur_addr cur []
    | ia :: rest when cur = [] ->
      (* a fresh block starts wherever the next reachable instruction
         lies — the nominal fallthrough may itself be unreachable *)
      if is_control ia.i_insn then begin
        let targets, _ = Isa.Binary.flow ia.i_insn ~next:ia.i_next in
        let succs = List.filter (fun t -> t >= addr && t < stop) targets in
        close ia.i_addr [ ia ] succs;
        walk rest [] ia.i_next
      end
      else walk rest [ ia ] ia.i_addr
    | ia :: rest ->
      if ia.i_addr <> cur_addr && Hashtbl.mem leaders ia.i_addr && cur <> []
      then begin
        (* reachable fallthrough into a leader *)
        let prev = List.hd cur in
        let succs = if prev.i_next = ia.i_addr then [ ia.i_addr ] else [] in
        close cur_addr cur succs;
        walk l [] ia.i_addr
      end
      else if is_control ia.i_insn then begin
        let targets, _ = Isa.Binary.flow ia.i_insn ~next:ia.i_next in
        let succs = List.filter (fun t -> t >= addr && t < stop) targets in
        close cur_addr (ia :: cur) succs;
        walk rest [] ia.i_next
      end
      else walk rest (ia :: cur) cur_addr
  in
  (match insns with [] -> () | ia :: _ -> walk insns [] ia.i_addr);
  let d_blocks =
    List.sort (fun a b -> compare a.rb_addr b.rb_addr) !blocks
  in
  {
    d_name = name;
    d_addr = addr;
    d_len = len;
    d_insns = insns;
    d_blocks;
    d_calls = bf.f_calls;
    d_unreachable = unreachable;
    d_mismatches = List.rev !mismatches;
  }

let recover ?ground_truth (bin : Isa.Binary.t) : t =
  Telemetry.with_span
    ~attrs:[ ("arch", arch_name bin.arch) ]
    "binsight.disasm"
    (fun () ->
      let bfuncs = Isa.Binary.analyze bin in
      let funcs = List.map (recover_function bin ~ground_truth) bfuncs in
      let total_insns =
        List.fold_left (fun acc f -> acc + List.length f.d_insns) 0 funcs
      in
      let total_unreachable =
        List.fold_left (fun acc f -> acc + f.d_unreachable) 0 funcs
      in
      let mismatches = List.concat_map (fun f -> f.d_mismatches) funcs in
      Telemetry.add_count ~by:(List.length mismatches) "binsight.mismatches";
      { funcs; total_insns; total_unreachable; mismatches })
