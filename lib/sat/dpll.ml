type literal = Pos of int | Neg of int

type clause = literal list

type cnf = clause list

type result =
  | Sat of bool array
  | Unsat

let var = function Pos v | Neg v -> v

let negate = function Pos v -> Neg v | Neg v -> Pos v

let sat_under assignment = function
  | Pos v -> assignment.(v) = Some true
  | Neg v -> assignment.(v) = Some false

let falsified_under assignment = function
  | Pos v -> assignment.(v) = Some false
  | Neg v -> assignment.(v) = Some true

let eval_clause assignment c =
  List.exists (function Pos v -> assignment.(v) | Neg v -> not assignment.(v)) c

let eval assignment cnf = List.for_all (eval_clause assignment) cnf

let max_var cnf =
  List.fold_left
    (fun acc c -> List.fold_left (fun acc l -> max acc (var l)) acc c)
    (-1) cnf

(* Unit propagation: repeatedly assign forced literals.  Always returns the
   trail of variables it assigned (so the caller can undo it on backtrack),
   paired with a conflict indicator. *)
let propagate assignment cnf =
  let trail = ref [] in
  let conflict = ref false in
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    let check_clause c =
      if (not !conflict) && not (List.exists (sat_under assignment) c) then begin
        let unassigned =
          List.filter (fun l -> assignment.(var l) = None) c
        in
        match unassigned with
        | [] -> conflict := true
        | [ l ] ->
          let v = var l in
          assignment.(v) <- Some (match l with Pos _ -> true | Neg _ -> false);
          trail := v :: !trail;
          changed := true
        | _ :: _ :: _ -> ()
      end
    in
    List.iter check_clause cnf
  done;
  (!trail, !conflict)

let solve_assigned nvars cnf initial =
  let assignment = Array.make nvars None in
  List.iter
    (fun l ->
      let v = var l in
      assignment.(v) <- Some (match l with Pos _ -> true | Neg _ -> false))
    initial;
  (* Check initial assignment does not immediately falsify a clause made of
     assigned literals only. *)
  let initially_conflicting =
    List.exists (fun c -> List.for_all (falsified_under assignment) c) cnf
  in
  if initially_conflicting then Unsat
  else begin
    let undo trail = List.iter (fun v -> assignment.(v) <- None) trail in
    let rec search () =
      let trail, conflict = propagate assignment cnf in
      if conflict then begin
        undo trail;
        false
      end
      else begin
        let next_unassigned =
          let rec find i =
            if i >= nvars then None
            else if assignment.(i) = None then Some i
            else find (i + 1)
          in
          find 0
        in
        (match next_unassigned with
        | None -> true
        | Some v ->
          let try_value b =
            assignment.(v) <- Some b;
            if search () then true
            else begin
              assignment.(v) <- None;
              false
            end
          in
          if try_value false || try_value true then true
          else begin
            undo trail;
            false
          end)
      end
    in
    if search () then
      Sat (Array.map (function Some b -> b | None -> false) assignment)
    else Unsat
  end

let solve ?nvars cnf =
  let nvars = match nvars with Some n -> n | None -> max_var cnf + 1 in
  if nvars <= 0 then Sat [||] else solve_assigned nvars cnf []

let solve_with_assumptions ?nvars cnf assumptions =
  let nvars =
    match nvars with
    | Some n -> n
    | None ->
      let m = max_var cnf in
      let m =
        List.fold_left (fun acc l -> max acc (var l)) m assumptions
      in
      m + 1
  in
  if nvars <= 0 then Sat [||] else solve_assigned nvars cnf assumptions
