(** A small DPLL SAT solver.

    Stands in for the paper's use of Z3: BinTuner encodes compiler-flag
    dependency and conflict rules as logical formulas and checks each newly
    generated optimization sequence against them.  Flag constraints are
    purely propositional, so DPLL with unit propagation suffices.

    Variables are non-negative integers.  A literal is [Pos v] or [Neg v]. *)

type literal = Pos of int | Neg of int

type clause = literal list
(** A disjunction of literals. *)

type cnf = clause list
(** A conjunction of clauses. *)

type result =
  | Sat of bool array  (** A satisfying assignment indexed by variable. *)
  | Unsat

val var : literal -> int
(** Underlying variable of a literal. *)

val negate : literal -> literal

val eval_clause : bool array -> clause -> bool
(** [eval_clause assignment c] — true iff some literal is satisfied. *)

val eval : bool array -> cnf -> bool
(** Evaluate a full CNF under a total assignment. *)

val solve : ?nvars:int -> cnf -> result
(** Decide satisfiability.  [nvars] (default: 1 + max variable mentioned)
    sizes the assignment array; unconstrained variables default to false. *)

val solve_with_assumptions : ?nvars:int -> cnf -> literal list -> result
(** [solve_with_assumptions cnf assumptions] decides satisfiability of the
    CNF with each assumption added as a unit clause.  This is how BinTuner
    asks "is this concrete flag vector consistent with the rules?" and, on
    failure, searches for a nearby repair. *)
