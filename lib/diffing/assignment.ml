(* O(n³) Hungarian algorithm (Jonker-style potentials), maximizing. *)

let solve weights =
  let nrows = Array.length weights in
  if nrows = 0 then []
  else begin
    let ncols = Array.fold_left (fun m r -> max m (Array.length r)) 0 weights in
    let n = max nrows ncols in
    (* cost matrix for minimization, padded square *)
    let big = 1e18 in
    let maxw =
      Array.fold_left
        (fun m row -> Array.fold_left max m row)
        0.0 weights
    in
    let cost i j =
      if i < nrows && j < Array.length weights.(i) then maxw -. weights.(i).(j)
      else maxw
    in
    (* potentials and matching, 1-indexed internals *)
    let u = Array.make (n + 1) 0.0 in
    let v = Array.make (n + 1) 0.0 in
    let p = Array.make (n + 1) 0 in
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) big in
      let used = Array.make (n + 1) false in
      let continue_ = ref true in
      while !continue_ do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref big in
        let j1 = ref 0 in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = cost (i0 - 1) (j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue_ := false
      done;
      (* augmenting path *)
      let j = ref !j0 in
      while !j <> 0 do
        let j1 = way.(!j) in
        p.(!j) <- p.(j1);
        j := j1
      done
    done;
    let pairs = ref [] in
    for j = 1 to n do
      let i = p.(j) in
      if i >= 1 && i <= nrows && j <= ncols then begin
        let i0 = i - 1 and j0 = j - 1 in
        if
          j0 < Array.length weights.(i0)
          && weights.(i0).(j0) > 0.0
        then pairs := (i0, j0) :: !pairs
      end
    done;
    List.sort compare !pairs
  end
