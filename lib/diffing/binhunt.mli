(** BinHunt (Gao, Reiter, Song — ICICS'08), reproduced per the paper's
    Appendix A, the objective reference metric for every Figure 5 / Table
    4 / Table 5 experiment:

    1. basic-block matching: 1.0 for functionally equivalent blocks using
       the same registers, 0.9 with different registers, 0.0 otherwise
       (equivalence via the symbolic summaries of {!Semantics});
    2. CFG matching score: Σ matched block scores ÷ min(|CFG₁|, |CFG₂|),
       with the matching found by a backtracking subgraph-isomorphism
       search seeded at the entry blocks;
    3. call-graph matching score: Σ CFG scores of matched functions ÷
       min(|CG₁|, |CG₂|) (maximum-weight assignment);
    4. difference score = 1.0 − CG matching score (higher = more
       different). *)

type detail = {
  score : float;  (** the difference score, 0.0–1.0 *)
  matched_functions : (int * int * float) list;
      (** function index pairs with their CFG matching scores *)
  matched_blocks : int;  (** total matched basic-block pairs *)
  total_blocks : int * int;
  matched_edges : int;  (** CFG edges preserved by the block matching *)
  total_edges : int * int;
}

val compare_binaries : Isa.Binary.t -> Isa.Binary.t -> detail

val diff_score : Isa.Binary.t -> Isa.Binary.t -> float
(** Just the difference score. *)

val cfg_match : ret_reg:int -> Bcode.func -> Bcode.func -> float * (int * int) list
(** Score and block matching for one function pair (exposed for the
    function-level tools and tests). *)
