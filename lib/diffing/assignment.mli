(** Maximum-weight bipartite assignment (Hungarian algorithm).

    Used by BinHunt's call-graph matching and by the BinSlayer
    reproduction, which is precisely "BinDiff improved with the Hungarian
    algorithm for accurate graph matching". *)

val solve : float array array -> (int * int) list
(** [solve w] with [w.(i).(j)] the benefit of pairing row [i] with column
    [j] (rows ≤ columns after internal padding) returns the pairing that
    maximizes total benefit, as (row, column) pairs — only pairs with
    positive benefit are returned. *)
