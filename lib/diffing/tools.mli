(** The prominent binary diffing tools of the paper's §5.3 comparative
    evaluation, re-implemented over the VX binary representation.  Each
    tool exposes the same interface: given two analyzed binaries, a
    similarity score for any function pair.  The {!Precision} module
    turns these into Precision@1, the metric Figure 8 reports.

    The seven tools cover the representation classes of §3:
    - Asm2Vec: lexical-semantics function embeddings from CFG random
      walks (token co-occurrence vectors, cosine similarity);
    - INNEREYE: basic-block embeddings aligned greedily across functions;
    - VulSeeker: per-function CFG + DFG numeric feature vectors;
    - BinDiff: the industry heuristic — 3-level statistical features
      with exact-signature then nearest-feature matching;
    - BinSlayer: BinDiff's features with Hungarian bipartite matching of
      basic blocks;
    - CoP: longest common subsequence of semantically equivalent blocks
      along a canonical path linearization;
    - Multi-MH: basic-block input/output sampling signatures;
    - IMF-SIM: in-memory fuzzing of whole functions in the VX VM. *)

type tool = {
  tool_name : string;
  similarity : Bcode.t -> Bcode.t -> int -> int -> float;
      (** [similarity a b i j] scores function [i] of [a] against
          function [j] of [b]; higher is more similar.  Implementations
          may cache per-binary analyses internally. *)
}

val asm2vec : tool

val innereye : tool

val vulseeker : tool

val bindiff : tool

val binslayer : tool

val cop : tool

val multimh : tool

val imfsim : tool

val all : tool list
(** The seven comparison tools of Figure 8 (BinDiff is used by
    BinSlayer and reported separately in some experiments). *)
