type ratios = {
  matched_blocks : int;
  blocks_a : int;
  blocks_b : int;
  matched_edges : int;
  edges_a : int;
  edges_b : int;
  matched_funcs : int;
  funcs_a : int;
  funcs_b : int;
  binhunt_score : float;
}

let compute bin_a bin_b =
  let d = Binhunt.compare_binaries bin_a bin_b in
  let ca = Bcode.analyze bin_a and cb = Bcode.analyze bin_b in
  let user funcs =
    Array.to_list funcs |> List.filter (fun f -> not f.Bcode.is_library)
  in
  let matched_funcs =
    List.length
      (List.filter
         (fun (i, _, s) -> (not ca.funcs.(i).Bcode.is_library) && s >= 0.5)
         d.matched_functions)
  in
  let ba, bb = d.total_blocks and ea, eb = d.total_edges in
  {
    matched_blocks = d.matched_blocks;
    blocks_a = ba;
    blocks_b = bb;
    matched_edges = d.matched_edges;
    edges_a = ea;
    edges_b = eb;
    matched_funcs;
    funcs_a = List.length (user ca.funcs);
    funcs_b = List.length (user cb.funcs);
    binhunt_score = d.score;
  }

let to_string r =
  Printf.sprintf "(%d/%d, %d/%d, %d/%d)" r.matched_blocks
    (min r.blocks_a r.blocks_b) r.matched_edges
    (min r.edges_a r.edges_b)
    r.matched_funcs
    (min r.funcs_a r.funcs_b)
