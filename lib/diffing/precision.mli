(** Precision@1 evaluation (paper §5.3).

    Given two binaries compiled from the same source under different
    settings, each tool ranks, for every user (non-library) function of
    the first binary, the candidate functions of the second.  A hit is a
    rank-1 candidate whose ground-truth name matches.  Precision@1 is
    hits / number of user functions with a true counterpart — exactly the
    normalization the paper uses to compare tools with incompatible
    similarity metrics. *)

type report = {
  tool : string;
  hits : int;
  total : int;
  precision : float;
}

val evaluate : Tools.tool -> Isa.Binary.t -> Isa.Binary.t -> report

val evaluate_all :
  ?tools:Tools.tool list -> Isa.Binary.t -> Isa.Binary.t -> report list
