(** The matched-code-representation ratios of the paper's Tables 7/8:
    for a pair of binaries from the same source, the fraction of matched
    basic blocks, matched CFG edges, and matched non-library functions
    under BinHunt's matching. *)

type ratios = {
  matched_blocks : int;
  blocks_a : int;
  blocks_b : int;
  matched_edges : int;
  edges_a : int;
  edges_b : int;
  matched_funcs : int;  (** non-library function pairs with score ≥ 0.5 *)
  funcs_a : int;  (** non-library functions in the first binary *)
  funcs_b : int;
  binhunt_score : float;
}

val compute : Isa.Binary.t -> Isa.Binary.t -> ratios

val to_string : ratios -> string
(** "(mB/tB, mE/tE, mF/tF)" in the tables' tuple format. *)
