(** Shared binary-analysis layer for the diffing tools.

    Wraps {!Isa.Binary.analyze} into the representation every tool
    consumes: per-function basic blocks (with integer ids), CFG edges,
    and a token stream per instruction.  Function and block matching by
    the tools never uses [name] — it is ground truth for Precision@1
    only.  Library functions (the MinC stdlib linked into every program)
    are flagged so evaluations can restrict themselves to user code, as
    the paper's "non-library functions" metric does. *)

type block = {
  id : int;  (** index within the function *)
  insns : Isa.Insn.insn list;
  succs : int list;  (** successor block ids *)
}

type func = {
  name : string;  (** ground truth only *)
  is_library : bool;
  entry_id : int;
  blocks : block array;
  edges : (int * int) list;
  calls : int list;  (** callee function indices *)
  code_bytes : string;
}

type t = {
  binary : Isa.Binary.t;
  funcs : func array;
}

val library_names : string list
(** Names of the always-linked MinC stdlib functions. *)

val analyze : Isa.Binary.t -> t

val tokens_of_insn : Isa.Insn.insn -> string list
(** Lexical token stream of one instruction: mnemonic, register names,
    normalized immediates ("imm" for large constants, literal text for
    small ones), symbol placeholders.  Used by the learning-based tools
    (Asm2Vec / INNEREYE) exactly as they lexify real assembly. *)

val opcode_class : Isa.Insn.insn -> int
(** Coarse instruction class (0..15): arithmetic, logic, compare, move,
    load, store, branch, call, vector, …  Used by the statistical
    tools. *)

val n_opcode_classes : int
