type detail = {
  score : float;
  matched_functions : (int * int * float) list;
  matched_blocks : int;
  total_blocks : int * int;
  matched_edges : int;
  total_edges : int * int;
}

(* Per-function analysis: block summaries, whole-block fingerprints, and
   per-output fingerprints (sorted) for partial-credit scoring. *)
type prepared = {
  pfunc : Bcode.func;
  summaries : Semantics.summary array;
  prints : int array;  (** fingerprint per block *)
  outs : int array array;  (** sorted per-output fingerprints per block *)
}

let prepare ~ret_reg (f : Bcode.func) =
  let summaries = Array.map (Semantics.summarize ~ret_reg) f.blocks in
  {
    pfunc = f;
    summaries;
    prints = Array.map Semantics.fingerprint summaries;
    outs =
      Array.map
        (fun s ->
          let l = List.sort compare (Semantics.output_prints s) in
          Array.of_list l)
        summaries;
  }

(* Weighted Dice overlap of two sorted multisets.  [w] maps an output
   fingerprint to its information weight: outputs ubiquitous across the
   binaries (a bare increment, return 0) say nothing about whether two
   blocks stem from the same source, while rare outputs (a multiply by a
   program-specific constant, a store to a particular symbol) are strong
   evidence. *)
let dice ~w a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 && nb = 0 then 1.0
  else begin
    let i = ref 0 and j = ref 0 in
    let common = ref 0.0 and total = ref 0.0 in
    Array.iter (fun p -> total := !total +. w p) a;
    Array.iter (fun p -> total := !total +. w p) b;
    while !i < na && !j < nb do
      let c = compare a.(!i) b.(!j) in
      if c = 0 then begin
        common := !common +. w a.(!i);
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    if !total = 0.0 then 0.0 else 2.0 *. !common /. !total
  end

(* Basic-block matching score.  Fully equivalent blocks follow BinHunt's
   appendix exactly (1.0 same registers, 0.9 otherwise); blocks that
   compute mostly the same canonical outputs — the situation after block
   merging or partial rewriting — receive proportional partial credit,
   standing in for the prover finding a partial input-output
   correspondence. *)
let match_threshold = 0.45

let block_score ~w pa a pb b =
  if Semantics.equivalent pa.summaries.(a) pb.summaries.(b) then
    if Semantics.same_registers pa.summaries.(a) pb.summaries.(b) then 1.0
    else 0.9
  else begin
    let d = dice ~w pa.outs.(a) pb.outs.(b) in
    if d >= match_threshold then 0.9 *. d else 0.0
  end

(* IDF-flavoured weights over a set of prepared functions: weight of a
   fingerprint halves with each extra occurrence beyond the expected two
   (once on each side). *)
let idf_weights (funcs : prepared list) =
  let freq = Hashtbl.create 256 in
  List.iter
    (fun p ->
      Array.iter
        (Array.iter (fun x ->
             Hashtbl.replace freq x
               (1 + try Hashtbl.find freq x with Not_found -> 0)))
        p.outs)
    funcs;
  fun x ->
    let f = try Hashtbl.find freq x with Not_found -> 1 in
    if f <= 2 then 1.0 else 2.0 /. float_of_int f

(* Backtracking CFG matching.  The matching is grown from seed pairs of
   equivalent blocks; for each matched pair we try to pair up equivalent
   unmatched successors, exploring alternatives under a step budget and
   keeping the best (highest-scoring) matching found. *)
let cfg_match_prepared ~w pa pb =
  let na = Array.length pa.pfunc.blocks and nb = Array.length pb.pfunc.blocks in
  if na = 0 || nb = 0 then (0.0, [])
  else begin
    let ma = Array.make na (-1) and mb = Array.make nb (-1) in
    let budget = ref 4000 in
    let best_score = ref 0.0 in
    let best_pairs = ref [] in
    let current_score = ref 0.0 in
    let current_pairs = ref [] in
    let record () =
      if !current_score > !best_score then begin
        best_score := !current_score;
        best_pairs := !current_pairs
      end
    in
    let do_match a b s =
      ma.(a) <- b;
      mb.(b) <- a;
      current_score := !current_score +. s;
      current_pairs := (a, b) :: !current_pairs
    in
    let undo_match a b s =
      ma.(a) <- -1;
      mb.(b) <- -1;
      current_score := !current_score -. s;
      current_pairs := List.tl !current_pairs
    in
    (* expand the matching along CFG edges from a queue of matched pairs *)
    let rec expand queue =
      decr budget;
      if !budget <= 0 then record ()
      else
        match queue with
        | [] -> record ()
        | (a, b) :: rest ->
          let sa =
            List.filter (fun s -> ma.(s) < 0) pa.pfunc.blocks.(a).succs
          in
          let sb =
            List.filter (fun s -> mb.(s) < 0) pb.pfunc.blocks.(b).succs
          in
          pair_succs sa sb rest
    (* try to pair each unmatched successor of a with one of b, allowing
       skips; explores alternatives while the budget lasts *)
    and pair_succs sa sb rest =
      match sa with
      | [] -> expand rest
      | x :: sa_rest ->
        let tried = ref false in
        List.iter
          (fun y ->
            if !budget > 0 && ma.(x) < 0 && mb.(y) < 0 then begin
              let s = block_score ~w pa x pb y in
              if s > 0.0 then begin
                tried := true;
                do_match x y s;
                pair_succs sa_rest (List.filter (( <> ) y) sb)
                  ((x, y) :: rest);
                undo_match x y s
              end
            end)
          sb;
        (* also consider leaving x unmatched *)
        if (not !tried) || !budget > 0 then pair_succs sa_rest sb rest
    in
    (* After exploring from a seed, commit the best matching found so the
       next seed extends it (greedy cover of the graphs by matched
       regions, with backtracking inside each region). *)
    let commit () =
      let keep = !best_pairs in
      Array.fill ma 0 na (-1);
      Array.fill mb 0 nb (-1);
      current_pairs := [];
      current_score := 0.0;
      List.iter
        (fun (a, b) ->
          let s = block_score ~w pa a pb b in
          do_match a b s)
        keep
    in
    let try_seed a b =
      if ma.(a) < 0 && mb.(b) < 0 then begin
        let s = block_score ~w pa a pb b in
        if s > 0.0 then begin
          do_match a b s;
          record ();
          expand [ (a, b) ];
          commit ()
        end
      end
    in
    if pa.pfunc.entry_id >= 0 && pb.pfunc.entry_id >= 0 then
      try_seed pa.pfunc.entry_id pb.pfunc.entry_id;
    (* Remaining seeds must carry evidence: each unmatched block of [a]
       may anchor a region at its best-scoring partner, provided the
       block is substantial (trivial rets and empty joins would otherwise
       put a floor under every comparison; they still join matchings by
       CFG expansion). *)
    Array.iteri
      (fun a _ ->
        if ma.(a) < 0 && Array.length pa.outs.(a) >= 2 then begin
          let best = ref (-1) and best_score = ref 0.0 in
          for b = 0 to nb - 1 do
            if mb.(b) < 0 && Array.length pb.outs.(b) >= 2 then begin
              let s = block_score ~w pa a pb b in
              if s > !best_score then begin
                best_score := s;
                best := b
              end
            end
          done;
          if !best >= 0 && !best_score >= 0.8 then try_seed a !best
        end)
      pa.prints;
    record ();
    commit ();
    let pairs = !current_pairs in
    let score = !current_score /. float_of_int (min na nb) in
    (min score 1.0, pairs)
  end

let cfg_match ~ret_reg fa fb =
  let pa = prepare ~ret_reg fa and pb = prepare ~ret_reg fb in
  cfg_match_prepared ~w:(idf_weights [ pa; pb ]) pa pb

let compare_binaries bin_a bin_b =
  let ca = Bcode.analyze bin_a and cb = Bcode.analyze bin_b in
  let ra = bin_a.Isa.Binary.ret_reg and rb = bin_b.Isa.Binary.ret_reg in
  let pa = Array.map (prepare ~ret_reg:ra) ca.funcs in
  let pb = Array.map (prepare ~ret_reg:rb) cb.funcs in
  let na = Array.length pa and nb = Array.length pb in
  (* quick fingerprint-overlap filter *)
  let overlap a b =
    let sb = Hashtbl.create 16 in
    Array.iter (fun x -> Hashtbl.replace sb x ()) pb.(b).prints;
    Array.exists (fun x -> Hashtbl.mem sb x) pa.(a).prints
  in
  let w =
    idf_weights (Array.to_list pa @ Array.to_list pb)
  in
  let cfg_cache = Hashtbl.create 64 in
  let cfg a b =
    match Hashtbl.find_opt cfg_cache (a, b) with
    | Some r -> r
    | None ->
      let r =
        if overlap a b then cfg_match_prepared ~w pa.(a) pb.(b) else (0.0, [])
      in
      Hashtbl.replace cfg_cache (a, b) r;
      r
  in
  let weights =
    Array.init na (fun i -> Array.init nb (fun j -> fst (cfg i j)))
  in
  let pairs = Assignment.solve weights in
  let matched_functions =
    List.map (fun (i, j) -> (i, j, weights.(i).(j))) pairs
  in
  let cg_score =
    List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 matched_functions
    /. float_of_int (min na nb)
  in
  let matched_blocks =
    List.fold_left
      (fun acc (i, j) -> acc + List.length (snd (cfg i j)))
      0 pairs
  in
  let matched_edges =
    List.fold_left
      (fun acc (i, j) ->
        let _, bpairs = cfg i j in
        let medge =
          List.fold_left
            (fun acc (u, mu) ->
              let succs_u = pa.(i).pfunc.blocks.(u).succs in
              acc
              + List.length
                  (List.filter
                     (fun v ->
                       match List.assoc_opt v bpairs with
                       | Some mv ->
                         List.mem mv pb.(j).pfunc.blocks.(mu).succs
                       | None -> false)
                     succs_u))
            0 bpairs
        in
        acc + medge)
      0 pairs
  in
  let count_blocks funcs =
    Array.fold_left (fun acc p -> acc + Array.length p.pfunc.blocks) 0 funcs
  in
  let count_edges funcs =
    Array.fold_left (fun acc p -> acc + List.length p.pfunc.edges) 0 funcs
  in
  {
    score = max 0.0 (1.0 -. cg_score);
    matched_functions;
    matched_blocks;
    total_blocks = (count_blocks pa, count_blocks pb);
    matched_edges;
    total_edges = (count_edges pa, count_edges pb);
  }

let diff_score a b = (compare_binaries a b).score
