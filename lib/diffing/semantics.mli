(** Symbolic basic-block semantics.

    Executes a basic block's instructions symbolically and produces a
    canonical summary of its behaviour: the expressions written to each
    output location (registers, memory), the ordered side-effect stream
    (stores, pushes, calls, prints), and the branch condition, all with
    input locations renamed in first-use order.  Two blocks that compute
    the same function of their inputs — possibly with different register
    assignments, instruction order, spill slots, or fused vs. materialized
    comparisons — normalize to the same summary.

    This is the reproduction of BinHunt's symbolic-execution + theorem-
    prover block matching (§2.3): equivalence is decided on normalized
    expressions rather than by an SMT query, which captures register
    swapping and reordering but (deliberately, like the original) not
    deep arithmetic rewrites — the paper shows exactly those defeating
    basic-block–centric tools. *)

type summary

val summarize : ret_reg:int -> Bcode.block -> summary
(** Symbolic summary of one block.  [ret_reg] is the ABI return register
    (used to model call results). *)

val equivalent : summary -> summary -> bool
(** Same canonical behaviour. *)

val same_registers : summary -> summary -> bool
(** The concrete output register names also coincide (BinHunt assigns
    matched blocks 1.0 in this case, 0.9 otherwise). *)

val fingerprint : summary -> int
(** Hash usable for grouping candidate equivalent blocks. *)

val io_samples : ret_reg:int -> seed:int -> Bcode.block -> int array
(** Concretely evaluate the block's summary on [n] pseudo-random input
    valuations (Multi-MH's basic-block sampling): returns a signature
    vector of hashed outputs, one per sample. *)

val output_prints : summary -> int list
(** One fingerprint per canonical output expression / observable effect —
    a finer-grained unit than whole blocks, robust to block merging. *)

val sample_per_output : ret_reg:int -> seed:int -> Bcode.block -> int list
(** Multi-MH at output granularity: one hashed I/O-sample signature per
    output expression of the block. *)
