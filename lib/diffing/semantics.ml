open Isa.Insn

(* Symbolic expressions.  [Input k] is the k-th distinct input location
   read by the block, numbered in first-read order — this is what makes
   summaries register-allocation independent. *)
type expr =
  | Num of int
  | Input of int
  | Op of string * expr list
  | Callres of int  (** result of the k-th call in the block *)
  | Opaque of int  (** size-capped subtree, by hash *)

type effect =
  | Estore of string * expr * expr
  | Epush of expr
  | Ecall of int  (** callee function id *)
  | Ecallr of expr
  | Eprint of expr
  | Eprintc of expr

type summary = {
  outputs : (string * expr) list;  (** canonical location → value, sorted *)
  effects : effect list;
  branch : expr option;  (** normalized branch condition, if conditional *)
  out_regs : int list;  (** concrete registers written (sorted) *)
}

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let max_nodes = 40

let rec size = function
  | Num _ | Input _ | Callres _ | Opaque _ -> 1
  | Op (_, args) -> 1 + List.fold_left (fun a e -> a + size e) 0 args

let commutative = function
  | "add" | "mul" | "and" | "or" | "xor" | "eq" | "ne" -> true
  | _ -> false

let alu_str = alu_name

let mk_op name args =
  let args =
    if commutative name then List.sort compare args else args
  in
  (* constant folding for fully-constant operands *)
  let folded =
    match (name, args) with
    | "add", [ Num a; Num b ] -> Some (Num (a + b))
    | "sub", [ Num a; Num b ] -> Some (Num (a - b))
    | "mul", [ Num a; Num b ] -> Some (Num (a * b))
    | "and", [ Num a; Num b ] -> Some (Num (a land b))
    | "or", [ Num a; Num b ] -> Some (Num (a lor b))
    | "xor", [ Num a; Num b ] -> Some (Num (a lxor b))
    | "shl", [ Num a; Num b ] -> Some (Num (a lsl (b land 63)))
    | "shr", [ Num a; Num b ] -> Some (Num (a asr (b land 63)))
    | "add", [ Num 0; x ] | "add", [ x; Num 0 ] -> Some x
    | "sub", [ x; Num 0 ] -> Some x
    | "mul", [ Num 1; x ] | "mul", [ x; Num 1 ] -> Some x
    | _ -> None
  in
  match folded with
  | Some e -> e
  | None ->
    let e = Op (name, args) in
    if size e > max_nodes then Opaque (Hashtbl.hash e) else e

(* ------------------------------------------------------------------ *)
(* Symbolic machine state                                              *)
(* ------------------------------------------------------------------ *)

type flags = Fcmp of expr * expr | Ftest of expr | Fnone

type state = {
  regs : (int, expr) Hashtbl.t;
  vregs : (int, expr) Hashtbl.t;
  (* written memory (region, canonical idx) → value; reads check here
     first, then become Input-like loads *)
  mem : (string * expr, expr) Hashtbl.t;
  mutable inputs : (string * expr) list;  (** location key → Input index *)
  mutable flags : flags;
  mutable effects_rev : effect list;
  mutable ncalls : int;
  ret_reg : int;
}

let input_key_reg r = ("reg", Num r)

(* Get the Input index for a location, registering it on first read. *)
let input_of st key =
  let rec find i = function
    | [] -> None
    | k :: _ when k = key -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 (List.rev st.inputs) with
  | Some i -> Input i
  | None ->
    st.inputs <- key :: st.inputs;
    Input (List.length st.inputs - 1)

let read_reg st r =
  match Hashtbl.find_opt st.regs r with
  | Some e -> e
  | None -> input_of st (input_key_reg r)

let read_vreg st v =
  match Hashtbl.find_opt st.vregs v with
  | Some e -> e
  | None -> input_of st ("vreg", Num v)

let operand st = function
  | Oreg r -> read_reg st r
  | Oimm n -> Num n

let region_of_sym s = Printf.sprintf "sym%d" s

let region_of_fbase = function FP_rel -> "frame" | SP_rel -> "frame"

(* Frame addresses: fold base offset into the index expression.  FP- and
   SP-relative addressing land in the same region; offsets usually differ
   across layouts, which is fine — locations are canonicalized through
   the Input numbering on first read. *)
let frame_addr st base off idx =
  let base_sym =
    match base with
    | FP_rel -> input_of st (input_key_reg Isa.Insn.fp)
    | SP_rel -> input_of st (input_key_reg Isa.Insn.sp)
  in
  mk_op "add" [ base_sym; mk_op "add" [ Num off; idx ] ]

let mem_read st region idx =
  match Hashtbl.find_opt st.mem (region, idx) with
  | Some v -> v
  | None ->
    (* reading memory this block has not written: a fresh input keyed by
       the location *)
    input_of st (region, idx)

let mem_write st region idx v =
  Hashtbl.replace st.mem (region, idx) v;
  st.effects_rev <- Estore (region, idx, v) :: st.effects_rev

let fresh_call_result st =
  let k = st.ncalls in
  st.ncalls <- k + 1;
  Callres k

let clobber_caller_saved st =
  (* calls may clobber r0-r3 and the scratches; the return value lands in
     the ABI register *)
  List.iter
    (fun r -> Hashtbl.replace st.regs r (mk_op "clobber" [ Num r; fresh_call_result st ]))
    [ 0; 1; 2; 3; 14; 15 ];
  Hashtbl.replace st.regs st.ret_reg (fresh_call_result st)

let cond_expr st cc =
  let name =
    match cc with
    | Ceq -> "eq"
    | Cne -> "ne"
    | Clt -> "lt"
    | Cle -> "le"
    | Cgt -> "gt"
    | Cge -> "ge"
  in
  match st.flags with
  | Fcmp (a, b) -> mk_op name [ a; b ]
  | Ftest e -> (
    (* test e; jcc — over a boolean e this is just e or its negation *)
    match cc with
    | Cne -> e
    | Ceq -> mk_op "not" [ e ]
    | Clt | Cle | Cgt | Cge -> mk_op name [ e; Num 0 ])
  | Fnone -> mk_op name [ input_of st ("flags", Num 0); Num 0 ]

let exec st i =
  match i with
  | Imov (d, s) -> Hashtbl.replace st.regs d (operand st s)
  | Ialu (a, d, x, y) ->
    Hashtbl.replace st.regs d
      (mk_op (alu_str a) [ read_reg st x; operand st y ])
  | Ineg (d, x) -> Hashtbl.replace st.regs d (mk_op "sub" [ Num 0; read_reg st x ])
  | Inot (d, x) -> Hashtbl.replace st.regs d (mk_op "not" [ read_reg st x ])
  | Icmp (a, b) -> st.flags <- Fcmp (read_reg st a, operand st b)
  | Itest (a, b) ->
    let ea = read_reg st a and eb = read_reg st b in
    st.flags <- (if ea = eb then Ftest ea else Ftest (mk_op "and" [ ea; eb ]))
  | Isetcc (c, d) -> Hashtbl.replace st.regs d (cond_expr st c)
  | Icmov (c, d, s) ->
    Hashtbl.replace st.regs d
      (mk_op "select" [ cond_expr st c; operand st s; read_reg st d ])
  | Ijmp _ | Ijcc (_, _) | Ijtab _ -> ()
  | Iloop (r, _) ->
    Hashtbl.replace st.regs r (mk_op "sub" [ read_reg st r; Num 1 ])
  | Ild (d, s, i) ->
    Hashtbl.replace st.regs d (mem_read st (region_of_sym s) (operand st i))
  | Ist (s, i, v) -> mem_write st (region_of_sym s) (operand st i) (operand st v)
  | Ildf (d, b, o, i) ->
    let addr = frame_addr st b o (operand st i) in
    Hashtbl.replace st.regs d (mem_read st (region_of_fbase b) addr)
  | Istf (b, o, i, v) ->
    let addr = frame_addr st b o (operand st i) in
    mem_write st (region_of_fbase b) addr (operand st v)
  | Ipush s -> st.effects_rev <- Epush (operand st s) :: st.effects_rev
  | Ipop d -> Hashtbl.replace st.regs d (fresh_call_result st)
  | Icall fid ->
    st.effects_rev <- Ecall fid :: st.effects_rev;
    clobber_caller_saved st
  | Icallr r ->
    st.effects_rev <- Ecallr (read_reg st r) :: st.effects_rev;
    clobber_caller_saved st
  | Ila (d, fid) -> Hashtbl.replace st.regs d (mk_op "funaddr" [ Num fid ])
  | Iret -> ()
  | Ijmpf fid -> st.effects_rev <- Ecall fid :: st.effects_rev
  | Ivld (d, s, i) ->
    Hashtbl.replace st.vregs d
      (mk_op "vld" [ mem_read st (region_of_sym s) (operand st i) ])
  | Ivst (s, i, v) ->
    mem_write st (region_of_sym s) (mk_op "vaddr" [ operand st i ])
      (read_vreg st v)
  | Ivalu (a, d, x, y) ->
    Hashtbl.replace st.vregs d
      (mk_op ("v" ^ alu_str a) [ read_vreg st x; read_vreg st y ])
  | Ivsplat (d, s) -> Hashtbl.replace st.vregs d (mk_op "vsplat" [ operand st s ])
  | Ivpack (d, a, b, c, e) ->
    Hashtbl.replace st.vregs d
      (mk_op "vpack" [ operand st a; operand st b; operand st c; operand st e ])
  | Ivred (a, d, v) ->
    Hashtbl.replace st.regs d (mk_op ("vred" ^ alu_str a) [ read_vreg st v ])
  | Ivldf (d, b, o, i) ->
    let addr = frame_addr st b o (operand st i) in
    Hashtbl.replace st.vregs d (mk_op "vld" [ mem_read st (region_of_fbase b) addr ])
  | Ivstf (b, o, i, v) ->
    let addr = frame_addr st b o (operand st i) in
    mem_write st (region_of_fbase b) (mk_op "vaddr" [ addr ]) (read_vreg st v)
  | Iprint s -> st.effects_rev <- Eprint (operand st s) :: st.effects_rev
  | Iprintc s -> st.effects_rev <- Eprintc (operand st s) :: st.effects_rev
  | Iread (d, i) ->
    Hashtbl.replace st.regs d (mk_op "inputword" [ operand st i ])
  | Ilen d -> Hashtbl.replace st.regs d (mk_op "inputlen" [])
  | Inop -> ()
  | Iinc r -> Hashtbl.replace st.regs r (mk_op "add" [ read_reg st r; Num 1 ])
  | Idec r -> Hashtbl.replace st.regs r (mk_op "sub" [ read_reg st r; Num 1 ])
  | Ixorz r -> Hashtbl.replace st.regs r (Num 0)

(* Rename the Input occurrences of one expression in first-occurrence
   order: each output/effect expression becomes independent of how many
   other inputs the surrounding block happened to read first.  Block
   merging and instruction reordering change block-level input numbering
   but not expression shape, so canonical summaries survive both. *)
let canon_expr e =
  let seen = Hashtbl.create 8 in
  let rec go e =
    match e with
    | Num _ | Opaque _ | Callres _ -> e
    | Input i ->
      (match Hashtbl.find_opt seen i with
      | Some j -> Input j
      | None ->
        let j = Hashtbl.length seen in
        Hashtbl.replace seen i j;
        Input j)
    | Op (name, args) -> Op (name, List.map go args)
  in
  go e

let canon_effect = function
  | Estore (r, i, v) -> Estore (r, canon_expr i, canon_expr v)
  | Epush e -> Epush (canon_expr e)
  | Ecall f -> Ecall f
  | Ecallr e -> Ecallr (canon_expr e)
  | Eprint e -> Eprint (canon_expr e)
  | Eprintc e -> Eprintc (canon_expr e)

(* A conditional branch and its negation are the same comparison with the
   targets swapped; which polarity the binary carries is pure layout
   (fallthrough direction).  Canonicalize to the smaller of the two
   representations. *)
let negate_expr = function
  | Op ("lt", args) -> Some (Op ("ge", args))
  | Op ("ge", args) -> Some (Op ("lt", args))
  | Op ("le", args) -> Some (Op ("gt", args))
  | Op ("gt", args) -> Some (Op ("le", args))
  | Op ("eq", args) -> Some (Op ("ne", args))
  | Op ("ne", args) -> Some (Op ("eq", args))
  | Op ("not", [ e ]) -> Some e
  | e -> Some (Op ("not", [ e ]))

let canon_branch e =
  match negate_expr e with
  | Some n -> if compare e n <= 0 then e else n
  | None -> e

let summarize ~ret_reg (b : Bcode.block) =
  let st =
    {
      regs = Hashtbl.create 16;
      vregs = Hashtbl.create 4;
      mem = Hashtbl.create 8;
      inputs = [];
      flags = Fnone;
      effects_rev = [];
      ncalls = 0;
      ret_reg;
    }
  in
  List.iter (exec st) b.insns;
  let branch =
    match List.rev b.insns with
    | Ijcc (c, _) :: _ -> Some (cond_expr st c)
    | Iloop (_, _) :: _ -> Some (mk_op "loopcond" [])
    | _ -> None
  in
  (* Canonical outputs: the *set* of distinct values the block computes
     into registers or private frame cells.  Identity copies (a location
     holding exactly an unmodified input) and call-clobber artifacts are
     dropped; where a value lives — register, spill slot, or -O0 local
     slot — is allocation noise, which is exactly what BinHunt's prover
     abstracts away when matching functionally equivalent blocks. *)
  let interesting e =
    match e with
    | Input _ -> false
    | Op ("clobber", _) -> false
    | Num _ | Op _ | Callres _ | Opaque _ -> true
  in
  let out_regs = ref [] in
  let outputs = ref [] in
  Hashtbl.iter
    (fun r e ->
      if r <> Isa.Insn.sp then begin
        out_regs := r :: !out_regs;
        if interesting e then outputs := e :: !outputs
      end)
    st.regs;
  Hashtbl.iter
    (fun (region, _) v ->
      if region = "frame" && interesting v then outputs := v :: !outputs)
    st.mem;
  (* observable effects only: frame stores are private state *)
  let effects =
    List.filter
      (function
        | Estore ("frame", _, _) -> false
        | Estore _ | Epush _ | Ecall _ | Ecallr _ | Eprint _ | Eprintc _ ->
          true)
      (List.rev st.effects_rev)
  in
  let sorted_outputs =
    List.sort_uniq compare (List.map (fun e -> ("out", canon_expr e)) !outputs)
  in
  {
    outputs = sorted_outputs;
    effects = List.map canon_effect effects;
    branch = Option.map (fun e -> canon_branch (canon_expr e)) branch;
    out_regs = List.sort compare !out_regs;
  }

let equivalent a b =
  a.outputs = b.outputs && a.effects = b.effects && a.branch = b.branch

let same_registers a b = a.out_regs = b.out_regs

let fingerprint s = Hashtbl.hash (s.outputs, s.effects, s.branch)

(* ------------------------------------------------------------------ *)
(* Concrete I/O sampling (Multi-MH style)                              *)
(* ------------------------------------------------------------------ *)

let nsamples = 8

let rec eval_expr rng_values = function
  | Num n -> n
  | Input i ->
    if i < Array.length rng_values then rng_values.(i)
    else (i * 2654435761) land 0xFFFFFF
  | Op (name, args) ->
    let vs = List.map (eval_expr rng_values) args in
    let h = List.fold_left (fun acc v -> (acc * 1000003) + v) 0 vs in
    (match (name, vs) with
    | "add", [ a; b ] -> a + b
    | "sub", [ a; b ] -> a - b
    | "mul", [ a; b ] -> a * b
    | "div", [ a; b ] -> if b = 0 then 0 else a / b
    | "mod", [ a; b ] -> if b = 0 then 0 else a mod b
    | "and", [ a; b ] -> a land b
    | "or", [ a; b ] -> a lor b
    | "xor", [ a; b ] -> a lxor b
    | "shl", [ a; b ] -> a lsl (b land 63)
    | "shr", [ a; b ] -> a asr (b land 63)
    | "not", [ a ] -> lnot a
    | "eq", [ a; b ] -> if a = b then 1 else 0
    | "ne", [ a; b ] -> if a <> b then 1 else 0
    | "lt", [ a; b ] -> if a < b then 1 else 0
    | "le", [ a; b ] -> if a <= b then 1 else 0
    | "gt", [ a; b ] -> if a > b then 1 else 0
    | "ge", [ a; b ] -> if a >= b then 1 else 0
    | "select", [ c; x; y ] -> if c <> 0 then x else y
    | _ -> Hashtbl.hash (name, h) land 0xFFFFFF)
  | Callres k -> (k * 40503) land 0xFFFF
  | Opaque h -> h land 0xFFFFFF

let io_samples ~ret_reg ~seed (b : Bcode.block) =
  let s = summarize ~ret_reg b in
  let rng = Util.Rng.create seed in
  Array.init nsamples (fun _ ->
      let values = Array.init 16 (fun _ -> Util.Rng.int rng 1000) in
      let out_hash =
        List.fold_left
          (fun acc (_, e) -> (acc * 1000003) + eval_expr values e)
          0 s.outputs
      in
      let eff_hash =
        List.fold_left
          (fun acc eff ->
            match eff with
            | Estore (r, i, v) ->
              (acc * 31)
              + Hashtbl.hash (r, eval_expr values i, eval_expr values v)
            | Epush e -> (acc * 37) + eval_expr values e
            | Ecall f -> (acc * 41) + f
            | Ecallr e -> (acc * 43) + eval_expr values e
            | Eprint e -> (acc * 47) + eval_expr values e
            | Eprintc e -> (acc * 53) + eval_expr values e)
          out_hash s.effects
      in
      eff_hash land 0x3FFFFFFF)

let output_prints s =
  (* summaries are already canonical per expression *)
  List.map (fun (_, e) -> Hashtbl.hash e) s.outputs
  @ List.map (fun eff -> Hashtbl.hash ("eff", eff)) s.effects
  @ (match s.branch with
    | None -> []
    | Some b -> [ Hashtbl.hash ("br", b) ])

let sample_per_output ~ret_reg ~seed (b : Bcode.block) =
  let s = summarize ~ret_reg b in
  let rng = Util.Rng.create seed in
  let valuations =
    Array.init 4 (fun _ -> Array.init 16 (fun _ -> Util.Rng.int rng 1000))
  in
  List.map
    (fun (_, e) ->
      Array.fold_left
        (fun acc values -> (acc * 1000003) + eval_expr values e)
        0 valuations
      land 0x3FFFFFFF)
    s.outputs
