type report = {
  tool : string;
  hits : int;
  total : int;
  precision : float;
}

(* Functions with the "__real_" instrumentation prefix correspond to the
   same source function as their unprefixed name. *)
let canonical name =
  if String.length name > 7 && String.sub name 0 7 = "__real_" then
    String.sub name 7 (String.length name - 7)
  else name

let evaluate (tool : Tools.tool) bin_a bin_b =
  let ca = Bcode.analyze bin_a and cb = Bcode.analyze bin_b in
  let nb = Array.length cb.funcs in
  let hits = ref 0 and total = ref 0 in
  Array.iteri
    (fun i (fa : Bcode.func) ->
      if not fa.is_library then begin
        let truth = canonical fa.name in
        let exists_in_b =
          Array.exists
            (fun (fb : Bcode.func) -> canonical fb.name = truth)
            cb.funcs
        in
        if exists_in_b then begin
          incr total;
          let best = ref (-1) and best_score = ref neg_infinity in
          for j = 0 to nb - 1 do
            let s = tool.similarity ca cb i j in
            if s > !best_score then begin
              best_score := s;
              best := j
            end
          done;
          if !best >= 0 && canonical cb.funcs.(!best).name = truth then
            incr hits
        end
      end)
    ca.funcs;
  {
    tool = tool.tool_name;
    hits = !hits;
    total = !total;
    precision =
      (if !total = 0 then 0.0 else float_of_int !hits /. float_of_int !total);
  }

let evaluate_all ?(tools = Tools.all) bin_a bin_b =
  List.map (fun t -> evaluate t bin_a bin_b) tools
