open Isa.Insn

type block = {
  id : int;
  insns : insn list;
  succs : int list;
}

type func = {
  name : string;
  is_library : bool;
  entry_id : int;
  blocks : block array;
  edges : (int * int) list;
  calls : int list;
  code_bytes : string;
}

type t = {
  binary : Isa.Binary.t;
  funcs : func array;
}

let library_names =
  [
    "strlen"; "strcpy"; "strcmp"; "memset"; "memcpy"; "abs_"; "min_"; "max_";
    "__instr_enter"; "__instr_exit";
  ]

let analyze_uncached (bin : Isa.Binary.t) =
  let bfuncs = Isa.Binary.analyze bin in
  let funcs =
    List.map
      (fun (bf : Isa.Binary.bfunc) ->
        let addr_to_id = Hashtbl.create 16 in
        List.iteri
          (fun i (bb : Isa.Binary.bblock) ->
            Hashtbl.replace addr_to_id bb.b_addr i)
          bf.f_blocks;
        let id_of a =
          match Hashtbl.find_opt addr_to_id a with
          | Some i -> i
          | None -> -1
        in
        let blocks =
          Array.of_list
            (List.mapi
               (fun i (bb : Isa.Binary.bblock) ->
                 {
                   id = i;
                   insns = List.map snd bb.b_insns;
                   succs =
                     List.filter (fun s -> s >= 0)
                       (List.map id_of bb.b_succs);
                 })
               bf.f_blocks)
        in
        let edges =
          Array.to_list blocks
          |> List.concat_map (fun b -> List.map (fun s -> (b.id, s)) b.succs)
        in
        {
          name = bf.f_name;
          is_library =
            List.mem bf.f_name library_names
            || (String.length bf.f_name > 7
               && String.sub bf.f_name 0 7 = "__real_"
               && List.mem
                    (String.sub bf.f_name 7 (String.length bf.f_name - 7))
                    library_names);
          entry_id = id_of bf.f_addr;
          blocks;
          edges;
          calls = bf.f_calls;
          code_bytes = Isa.Binary.code_of_function bin bf.f_id;
        })
      bfuncs
  in
  { binary = bin; funcs = Array.of_list funcs }

(* Every diffing tool (NCD metrics, BinHunt, precision scoring, the AV
   scanners) starts from [analyze] on the same handful of binaries within
   one run, each re-deriving the same CFGs.  [Isa.Binary.t] is immutable
   and the tuner holds binaries as shared values, so a tiny per-domain
   cache keyed by physical equality removes the repeated work without any
   hashing of the byte payload.  Keyed per domain (as with the pipeline's
   AST digest slot) so parallel workers never contend. *)
let memo_slots = 8

let memo : (t list ref) Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let analyze (bin : Isa.Binary.t) =
  let slot = Domain.DLS.get memo in
  match List.find_opt (fun r -> r.binary == bin) !slot with
  | Some r ->
    Telemetry.add_count "diffing.bcode.memo_hit";
    r
  | None ->
    Telemetry.add_count "diffing.bcode.memo_miss";
    let r =
      Telemetry.with_span
        ~attrs:[ ("arch", Isa.Insn.arch_name bin.Isa.Binary.arch) ]
        "diffing.bcode.analyze"
        (fun () -> analyze_uncached bin)
    in
    let keep =
      List.filteri (fun i _ -> i < memo_slots - 1) !slot
    in
    slot := r :: keep;
    r

(* Constants are kept literally up to 16 bits (they survive compilation
   and are what real lexical tools anchor on); larger ones fold to a
   coarse bucket. *)
let tok_imm n =
  if n >= -65536 && n <= 65535 then string_of_int n
  else Printf.sprintf "imm%d" (Hashtbl.hash n land 7)

let tok_operand = function
  | Oreg r -> [ Printf.sprintf "r%d" r ]
  | Oimm n -> [ tok_imm n ]

let tok_reg r = Printf.sprintf "r%d" r

let tok_sym s = Printf.sprintf "sym%d" s

let tok_fn f = Printf.sprintf "f%d" f

let tokens_of_insn i =
  match i with
  | Imov (d, s) -> ("mov" :: tok_reg d :: tok_operand s)
  | Ialu (a, d, x, y) -> (alu_name a :: tok_reg d :: tok_reg x :: tok_operand y)
  | Ineg (d, x) -> [ "neg"; tok_reg d; tok_reg x ]
  | Inot (d, x) -> [ "not"; tok_reg d; tok_reg x ]
  | Icmp (a, b) -> ("cmp" :: tok_reg a :: tok_operand b)
  | Itest (a, b) -> [ "test"; tok_reg a; tok_reg b ]
  | Isetcc (c, d) -> [ "set" ^ cond_name c; tok_reg d ]
  | Icmov (c, d, s) -> (("cmov" ^ cond_name c) :: tok_reg d :: tok_operand s)
  | Ijmp _ -> [ "jmp"; "loc" ]
  | Ijcc (c, _) -> [ "j" ^ cond_name c; "loc" ]
  | Ijtab (r, ts) -> [ "jtab"; tok_reg r; string_of_int (List.length ts) ]
  | Iloop (r, _) -> [ "loop"; tok_reg r; "loc" ]
  | Ild (d, s, i) -> ("ld" :: tok_reg d :: tok_sym s :: tok_operand i)
  | Ist (s, i, v) -> ("st" :: tok_sym s :: (tok_operand i @ tok_operand v))
  | Ildf (d, b, _, i) -> ("ldf" :: tok_reg d :: fbase_name b :: tok_operand i)
  | Istf (b, _, i, v) -> ("stf" :: fbase_name b :: (tok_operand i @ tok_operand v))
  | Ipush s -> ("push" :: tok_operand s)
  | Ipop d -> [ "pop"; tok_reg d ]
  | Icall f -> [ "call"; tok_fn f ]
  | Icallr r -> [ "callr"; tok_reg r ]
  | Ila (d, f) -> [ "la"; tok_reg d; tok_fn f ]
  | Iret -> [ "ret" ]
  | Ijmpf f -> [ "jmpf"; tok_fn f ]
  | Ivld (d, s, i) -> (Printf.sprintf "vld v%d" d :: tok_sym s :: tok_operand i)
  | Ivst (s, i, v) -> ("vst" :: tok_sym s :: (tok_operand i @ [ Printf.sprintf "v%d" v ]))
  | Ivalu (a, d, x, y) ->
    [ "v" ^ alu_name a; Printf.sprintf "v%d" d; Printf.sprintf "v%d" x;
      Printf.sprintf "v%d" y ]
  | Ivsplat (d, s) -> (Printf.sprintf "vsplat v%d" d :: tok_operand s)
  | Ivpack (d, a, b, c, e) ->
    (Printf.sprintf "vpack v%d" d
    :: (tok_operand a @ tok_operand b @ tok_operand c @ tok_operand e))
  | Ivred (a, d, v) ->
    [ "vred_" ^ alu_name a; tok_reg d; Printf.sprintf "v%d" v ]
  | Ivldf (d, b, _, i) ->
    (Printf.sprintf "vldf v%d" d :: fbase_name b :: tok_operand i)
  | Ivstf (b, _, i, v) ->
    ("vstf" :: fbase_name b :: (tok_operand i @ [ Printf.sprintf "v%d" v ]))
  | Iprint s -> ("print" :: tok_operand s)
  | Iprintc s -> ("printc" :: tok_operand s)
  | Iread (d, i) -> ("read" :: tok_reg d :: tok_operand i)
  | Ilen d -> [ "len"; tok_reg d ]
  | Inop -> [ "nop" ]
  | Iinc r -> [ "inc"; tok_reg r ]
  | Idec r -> [ "dec"; tok_reg r ]
  | Ixorz r -> [ "xorz"; tok_reg r ]

let n_opcode_classes = 16

let opcode_class i =
  match i with
  | Ialu ((Aadd | Asub), _, _, _) | Iinc _ | Idec _ | Ineg _ -> 0
  | Ialu ((Amul | Adiv | Amod), _, _, _) -> 1
  | Ialu ((Aand | Aor | Axor), _, _, _) | Inot _ | Ixorz _ -> 2
  | Ialu ((Ashl | Ashr), _, _, _) -> 3
  | Imov _ -> 4
  | Icmp _ | Itest _ -> 5
  | Isetcc _ | Icmov _ -> 6
  | Ijmp _ | Ijcc _ | Iloop _ -> 7
  | Ijtab _ -> 8
  | Ild _ | Ildf _ -> 9
  | Ist _ | Istf _ -> 10
  | Ipush _ | Ipop _ -> 11
  | Icall _ | Icallr _ | Ila _ | Ijmpf _ | Iret -> 12
  | Ivld _ | Ivst _ | Ivalu _ | Ivsplat _ | Ivpack _ | Ivred _ | Ivldf _
  | Ivstf _ ->
    13
  | Iprint _ | Iprintc _ | Iread _ | Ilen _ -> 14
  | Inop -> 15
