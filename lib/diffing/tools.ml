type tool = {
  tool_name : string;
  similarity : Bcode.t -> Bcode.t -> int -> int -> float;
}

(* Per-binary caches keyed by the binary's text (physical equality would
   be fragile across calls; text bytes identify the artifact). *)
let cache_key (c : Bcode.t) = c.binary.Isa.Binary.text

let with_cache compute =
  let tbl = Hashtbl.create 8 in
  fun c ->
    let key = cache_key c in
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
      let v = compute c in
      if Hashtbl.length tbl > 64 then Hashtbl.reset tbl;
      Hashtbl.replace tbl key v;
      v

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
      dot := !dot +. (x *. b.(i));
      na := !na +. (x *. x);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. sqrt (!na *. !nb)

(* ------------------------------------------------------------------ *)
(* Asm2Vec: token-sequence embeddings from CFG random walks            *)
(* ------------------------------------------------------------------ *)

let embed_dim = 128

let hash_token t = Hashtbl.hash t mod embed_dim

(* Rare, source-derived tokens (call targets, data symbols, literal
   constants) discriminate between look-alike functions; mnemonics and
   register names are near-uniform noise.  Real lexical tools learn this
   weighting; we apply it directly. *)
let token_weight t =
  if t = "" then 0.0
  else
    match t.[0] with
    | 'f' when String.length t > 1 && t.[1] >= '0' && t.[1] <= '9' -> 6.0
    | 's' when String.length t > 3 && String.sub t 0 3 = "sym" -> 6.0
    | 'r' | 'v' when String.length t > 1 && t.[1] >= '0' && t.[1] <= '9' ->
      0.25  (* register names: allocation noise *)
    | '0' .. '9' | '-' ->
      (* literal constants: ubiquitous small ones are noise, distinctive
         ones are strong anchors *)
      (try
         let n = int_of_string t in
         if abs n <= 8 then 0.5 else 4.0
       with Failure _ -> 1.0)
    | _ -> 1.0

let asm2vec_embed =
  with_cache (fun (c : Bcode.t) ->
      Array.map
        (fun (f : Bcode.func) ->
          let v = Array.make embed_dim 0.0 in
          let rng = Util.Rng.create (Hashtbl.hash f.code_bytes) in
          let nblocks = Array.length f.blocks in
          if nblocks > 0 then begin
            (* several random walks through the CFG; token bigrams within
               each walk model the lexical-semantic neighbourhoods the
               PV-DM model of Asm2Vec learns *)
            for _ = 1 to 8 do
              let cur = ref (if f.entry_id >= 0 then f.entry_id else 0) in
              let steps = ref 0 in
              let prev_tok = ref "^" in
              while !steps < 24 do
                incr steps;
                let b = f.blocks.(!cur) in
                List.iter
                  (fun insn ->
                    let toks = Bcode.tokens_of_insn insn in
                    List.iter
                      (fun t ->
                        let w = token_weight t in
                        v.(hash_token t) <- v.(hash_token t) +. w;
                        v.(hash_token (!prev_tok ^ "|" ^ t)) <-
                          v.(hash_token (!prev_tok ^ "|" ^ t)) +. (0.5 *. w);
                        prev_tok := t)
                      toks)
                  b.insns;
                match b.succs with
                | [] -> steps := 1000
                | succs -> cur := List.nth succs (Util.Rng.int rng (List.length succs))
              done
            done
          end;
          v)
        c.funcs)

let asm2vec =
  {
    tool_name = "Asm2Vec";
    similarity =
      (fun a b i j -> cosine (asm2vec_embed a).(i) (asm2vec_embed b).(j));
  }

(* ------------------------------------------------------------------ *)
(* INNEREYE: block embeddings + greedy alignment                       *)
(* ------------------------------------------------------------------ *)

let block_embed (b : Bcode.block) =
  let v = Array.make embed_dim 0.0 in
  List.iter
    (fun insn ->
      List.iter
        (fun t -> v.(hash_token t) <- v.(hash_token t) +. token_weight t)
        (Bcode.tokens_of_insn insn))
    b.insns;
  v

let innereye_embed =
  with_cache (fun (c : Bcode.t) ->
      Array.map
        (fun (f : Bcode.func) -> Array.map block_embed f.blocks)
        c.funcs)

let innereye =
  {
    tool_name = "INNEREYE";
    similarity =
      (fun a b i j ->
        let ea = (innereye_embed a).(i) and eb = (innereye_embed b).(j) in
        if Array.length ea = 0 || Array.length eb = 0 then 0.0
        else begin
          (* each block in the smaller function greedily finds its best
             counterpart; similarity = mean best cosine *)
          let small, large = if Array.length ea <= Array.length eb then (ea, eb) else (eb, ea) in
          let total =
            Array.fold_left
              (fun acc blk ->
                let best =
                  Array.fold_left
                    (fun best cand -> max best (cosine blk cand))
                    0.0 large
                in
                acc +. best)
              0.0 small
          in
          total /. float_of_int (Array.length small)
          *. (float_of_int (Array.length small) /. float_of_int (Array.length large))
        end);
  }

(* ------------------------------------------------------------------ *)
(* VulSeeker: CFG + DFG numeric feature vectors                        *)
(* ------------------------------------------------------------------ *)

let vulseeker_features =
  with_cache (fun (c : Bcode.t) ->
      Array.map
        (fun (f : Bcode.func) ->
          let counts = Array.make Bcode.n_opcode_classes 0.0 in
          let ninsns = ref 0 in
          Array.iter
            (fun (b : Bcode.block) ->
              List.iter
                (fun insn ->
                  incr ninsns;
                  let k = Bcode.opcode_class insn in
                  counts.(k) <- counts.(k) +. 1.0)
                b.insns)
            f.blocks;
          (* dfg-flavoured features: defs and uses of registers *)
          let defs = ref 0 and imms = ref 0 in
          Array.iter
            (fun (b : Bcode.block) ->
              List.iter
                (fun insn ->
                  match insn with
                  | Isa.Insn.Imov (_, Isa.Insn.Oimm _) ->
                    incr defs;
                    incr imms
                  | Isa.Insn.Imov _ | Isa.Insn.Ialu _ -> incr defs
                  | _ -> ())
                b.insns)
            f.blocks;
          Array.append counts
            [|
              float_of_int (Array.length f.blocks);
              float_of_int (List.length f.edges);
              float_of_int (List.length f.calls);
              float_of_int !ninsns;
              float_of_int !defs;
              float_of_int !imms;
            |])
        c.funcs)

(* constant multiset per function: semantic anchors in the DFG *)
let vulseeker_consts =
  with_cache (fun (c : Bcode.t) ->
      Array.map
        (fun (f : Bcode.func) ->
          let consts = ref [] in
          Array.iter
            (fun (b : Bcode.block) ->
              List.iter
                (fun insn ->
                  List.iter
                    (fun t ->
                      match int_of_string_opt t with
                      | Some n when abs n > 8 -> consts := n :: !consts
                      | _ -> ())
                    (Bcode.tokens_of_insn insn))
                b.insns)
            f.blocks;
          List.sort_uniq compare !consts)
        c.funcs)

let vulseeker =
  {
    tool_name = "VulSeeker";
    similarity =
      (fun a b i j ->
        let fa = (vulseeker_features a).(i) and fb = (vulseeker_features b).(j) in
        let structural = cosine fa fb in
        let consts =
          let ca = (vulseeker_consts a).(i) and cb = (vulseeker_consts b).(j) in
          if ca = [] && cb = [] then 0.5
          else Util.Stats.jaccard compare ca cb
        in
        (0.5 *. structural) +. (0.5 *. consts));
  }

(* ------------------------------------------------------------------ *)
(* BinDiff: 3-level statistical signatures                             *)
(* ------------------------------------------------------------------ *)

let bindiff_sig =
  with_cache (fun (c : Bcode.t) ->
      Array.map
        (fun (f : Bcode.func) ->
          let ninsns =
            Array.fold_left
              (fun acc (b : Bcode.block) -> acc + List.length b.insns)
              0 f.blocks
          in
          ( Array.length f.blocks,
            List.length f.edges,
            List.length f.calls,
            ninsns,
            f.calls ))
        c.funcs)

let bindiff =
  {
    tool_name = "BinDiff";
    similarity =
      (fun a b i j ->
        let ba, ea, ca, ia, calls_a = (bindiff_sig a).(i) in
        let bb, eb, cb, ib, calls_b = (bindiff_sig b).(j) in
        let call_overlap =
          if calls_a = [] && calls_b = [] then 0.5
          else Util.Stats.jaccard compare calls_a calls_b
        in
        let mnem = cosine (vulseeker_features a).(i) (vulseeker_features b).(j) in
        if (ba, ea, ca) = (bb, eb, cb) then
          (* exact structural signature: near-certain match, refined by
             instruction count, call set and mnemonic histogram *)
          1.0
          -. (float_of_int (abs (ia - ib)) /. float_of_int (max 1 (ia + ib)))
          +. call_overlap +. mnem
        else begin
          let rel x y =
            1.0
            -. (float_of_int (abs (x - y)) /. float_of_int (max 1 (max x y)))
          in
          (0.15 *. (rel ba bb +. rel ea eb +. rel ca cb +. rel ia ib))
          +. (0.5 *. call_overlap) +. (0.5 *. mnem)
        end);
  }

(* ------------------------------------------------------------------ *)
(* BinSlayer: Hungarian matching of block embeddings                   *)
(* ------------------------------------------------------------------ *)

let binslayer =
  {
    tool_name = "BinSlayer";
    similarity =
      (fun a b i j ->
        let ea = (innereye_embed a).(i) and eb = (innereye_embed b).(j) in
        let na = Array.length ea and nb = Array.length eb in
        if na = 0 || nb = 0 then 0.0
        else if na > 60 || nb > 60 then
          (* cap the cubic assignment on giant functions: fall back to the
             statistical score *)
          bindiff.similarity a b i j
        else begin
          let w =
            Array.init na (fun x -> Array.init nb (fun y -> cosine ea.(x) eb.(y)))
          in
          let pairs = Assignment.solve w in
          let total =
            List.fold_left (fun acc (x, y) -> acc +. w.(x).(y)) 0.0 pairs
          in
          total /. float_of_int (max na nb)
        end);
  }

(* ------------------------------------------------------------------ *)
(* CoP: LCS over semantically equivalent block sequences               *)
(* ------------------------------------------------------------------ *)

let cop_prints =
  with_cache (fun (c : Bcode.t) ->
      let ret_reg = c.binary.Isa.Binary.ret_reg in
      Array.map
        (fun (f : Bcode.func) ->
          (* canonical linearization in layout order, at the granularity
             of individual output computations so block merging does not
             break the alignment *)
          Array.of_list
            (List.concat_map
               (fun b ->
                 Semantics.output_prints (Semantics.summarize ~ret_reg b))
               (Array.to_list f.blocks)))
        c.funcs)

let lcs a b =
  let n = Array.length a and m = Array.length b in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 1 to n do
    for j = 1 to m do
      dp.(i).(j) <-
        (if a.(i - 1) = b.(j - 1) then dp.(i - 1).(j - 1) + 1
         else max dp.(i - 1).(j) dp.(i).(j - 1))
    done
  done;
  dp.(n).(m)

let cop =
  {
    tool_name = "CoP";
    similarity =
      (fun a b i j ->
        let pa = (cop_prints a).(i) and pb = (cop_prints b).(j) in
        let n = Array.length pa and m = Array.length pb in
        if n = 0 || m = 0 then 0.0
        else float_of_int (lcs pa pb) /. float_of_int (min n m));
  }

(* ------------------------------------------------------------------ *)
(* Multi-MH: block I/O sampling signatures                             *)
(* ------------------------------------------------------------------ *)

let multimh_sigs =
  with_cache (fun (c : Bcode.t) ->
      let ret_reg = c.binary.Isa.Binary.ret_reg in
      Array.map
        (fun (f : Bcode.func) ->
          Array.to_list f.blocks
          |> List.concat_map (Semantics.sample_per_output ~ret_reg ~seed:99))
        c.funcs)

let multimh =
  {
    tool_name = "Multi-MH";
    similarity =
      (fun a b i j ->
        let sa = (multimh_sigs a).(i) and sb = (multimh_sigs b).(j) in
        if sa = [] || sb = [] then 0.0
        else Util.Stats.jaccard compare sa sb);
  }

(* ------------------------------------------------------------------ *)
(* IMF-SIM: in-memory function fuzzing                                 *)
(* ------------------------------------------------------------------ *)

let imf_nprobes = 6

(* Signature of one function under random-argument probing: the return
   value (or a trap marker) for each probe.  Argument counts are unknown
   at the binary level, so IMF-SIM probes with a fixed-width argument
   frame, exactly like the original's register/stack seeding. *)
let imfsim_sigs =
  with_cache (fun (c : Bcode.t) ->
      let bin = c.binary in
      Array.mapi
        (fun fid (_ : Bcode.func) ->
          let rng = Util.Rng.create 4242 in
          List.init imf_nprobes (fun _ ->
              let args = List.init 4 (fun _ -> Util.Rng.int rng 64) in
              try
                let r =
                  Vm.Machine.run_function ~fuel:60_000 bin ~fid ~args
                    ~input:[| 5; 9 |]
                in
                List.fold_left
                  (fun acc o ->
                    (acc * 1000003)
                    + (match o with
                      | Vir.Interp.Out_int n -> n land 0xFFFFFF
                      | Vir.Interp.Out_char c -> c + 7))
                  (r.Vm.Machine.return_value land 0xFFFFFF)
                  r.Vm.Machine.output
              with
              | Vm.Machine.Trap _ -> -1
              | Vm.Machine.Out_of_fuel -> -2))
        c.funcs)

let imfsim =
  {
    tool_name = "IMF-SIM";
    similarity =
      (fun a b i j ->
        let sa = (imfsim_sigs a).(i) and sb = (imfsim_sigs b).(j) in
        let agree =
          List.fold_left2
            (fun acc x y -> if x = y then acc + 1 else acc)
            0 sa sb
        in
        float_of_int agree /. float_of_int imf_nprobes);
  }

let all = [ asm2vec; innereye; vulseeker; bindiff; binslayer; cop; multimh; imfsim ]
